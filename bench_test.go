package fvp_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§VI). Each figure benchmark regenerates the artifact
// over the full 60-workload study list with a reduced instruction budget
// per run (the shape of the results is stable well below the paper's
// trace lengths; use cmd/experiments for full-length reproductions) and
// reports the headline number as a custom metric:
//
//	geo_gain_pct — geometric-mean IPC gain of the headline configuration
//	coverage_pct — mean fraction of loads value-predicted
//
// Micro-benchmarks for the substrate data structures follow at the end.

import (
	"context"
	"io"
	"testing"

	"fvp"
	"fvp/internal/branch"
	"fvp/internal/cache"
	"fvp/internal/core"
	"fvp/internal/dram"
	"fvp/internal/harness"
	"fvp/internal/isa"
	"fvp/internal/memdep"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/simd"
	"fvp/internal/telemetry"
	"fvp/internal/trace"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// benchOpt is the reduced per-run budget used by the figure benchmarks.
var benchOpt = harness.Options{WarmupInsts: 30_000, MeasureInsts: 80_000}

// headline runs predictor spec over the suite and reports gain/coverage.
func headline(b *testing.B, cfg ooo.Config, spec harness.Spec) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		pairs := r.Compare(cfg, spec)
		b.ReportMetric((harness.Geomean(pairs)-1)*100, "geo_gain_pct")
		b.ReportMetric(harness.MeanCoverage(pairs)*100, "coverage_pct")
	}
}

// BenchmarkTable1Storage regenerates the Table-I storage budget.
func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.New(core.DefaultConfig())
		total := 0
		for _, it := range f.StorageBreakdown() {
			total += it.Bits
		}
		b.ReportMetric(float64(total)/8/1024, "KB")
	}
}

// BenchmarkTable2CoreParams renders the Table-II configuration dump.
func BenchmarkTable2CoreParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := fvp.RunExperiment("table2", io.Discard, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Workloads builds and validates the whole study list.
func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := workload.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6FVPSkylake — FVP gain & coverage on Skylake (paper: +3.3% @ 25%).
func BenchmarkFig6FVPSkylake(b *testing.B) { headline(b, ooo.Skylake(), harness.SpecFVP) }

// BenchmarkFig7FVPSkylake2X — FVP on the scaled core (paper: +8.6% @ 24%).
func BenchmarkFig7FVPSkylake2X(b *testing.B) { headline(b, ooo.Skylake2X(), harness.SpecFVP) }

// BenchmarkFig8PerWorkload regenerates the per-workload IPC/coverage series.
func BenchmarkFig8PerWorkload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		pairs := r.Compare(ooo.Skylake(), harness.SpecFVP)
		best := 1.0
		for _, p := range pairs {
			if s := p.Speedup(); s > best {
				best = s
			}
		}
		b.ReportMetric((best-1)*100, "max_gain_pct")
	}
}

// BenchmarkFig9Scaling regenerates the Skylake vs Skylake-2X series and
// reports the scaled core's extra benefit.
func BenchmarkFig9Scaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		sky := harness.Geomean(r.Compare(ooo.Skylake(), harness.SpecFVP))
		sky2 := harness.Geomean(r.Compare(ooo.Skylake2X(), harness.SpecFVP))
		b.ReportMetric((sky-1)*100, "skylake_gain_pct")
		b.ReportMetric((sky2-1)*100, "skylake2x_gain_pct")
	}
}

// fig10Specs are the five prior-art bars of Figs 10/11.
var fig10Specs = []harness.Spec{
	harness.SpecMR8KB, harness.SpecComp8KB, harness.SpecFVP,
	harness.SpecMR1KB, harness.SpecComp1KB,
}

// BenchmarkFig10PriorArtSkylake — the area-vs-performance comparison
// (paper: FVP at 1.2 KB ≈ the 8 KB predictors, ≈2× the 1 KB ones).
func BenchmarkFig10PriorArtSkylake(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		for _, s := range fig10Specs {
			g := harness.Geomean(r.Compare(ooo.Skylake(), s))
			b.ReportMetric((g-1)*100, string(s)+"_pct")
		}
	}
}

// BenchmarkFig11PriorArtSkylake2X repeats Fig 10 on the scaled core.
func BenchmarkFig11PriorArtSkylake2X(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		for _, s := range fig10Specs {
			g := harness.Geomean(r.Compare(ooo.Skylake2X(), s))
			b.ReportMetric((g-1)*100, string(s)+"_pct")
		}
	}
}

// BenchmarkFig12Criticality — criticality-policy sensitivity (paper:
// L1-Miss-Only ≈ 0 < L1-Miss < FVP ≲ Oracle).
func BenchmarkFig12Criticality(b *testing.B) {
	specs := []harness.Spec{
		harness.SpecFVPL1MissOnl, harness.SpecFVPL1Miss,
		harness.SpecFVP, harness.SpecFVPOracle,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		for _, s := range specs {
			g := harness.Geomean(r.Compare(ooo.Skylake(), s))
			b.ReportMetric((g-1)*100, string(s)+"_pct")
		}
	}
}

// BenchmarkFig13Components — register- vs memory-dependence contribution
// (paper: server gains come from memory dependences).
func BenchmarkFig13Components(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		reg := harness.Geomean(r.Compare(ooo.Skylake(), harness.SpecFVPRegOnly))
		mem := harness.Geomean(r.Compare(ooo.Skylake(), harness.SpecFVPMemOnly))
		b.ReportMetric((reg-1)*100, "register_pct")
		b.ReportMetric((mem-1)*100, "memory_pct")
	}
}

// BenchmarkExpAllTypes — §VI-A2: predicting non-loads adds nothing.
func BenchmarkExpAllTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		g := harness.Geomean(r.Compare(ooo.Skylake(), harness.SpecFVPAllTypes))
		b.ReportMetric((g-1)*100, "alltypes_pct")
	}
}

// BenchmarkExpBranchChains — §VI-A3: mispredicting-branch chains don't pay.
func BenchmarkExpBranchChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		g := harness.Geomean(r.Compare(ooo.Skylake(), harness.SpecFVPBrChains))
		b.ReportMetric((g-1)*100, "branchchains_pct")
	}
}

// BenchmarkExpEpochSweep — §VI-C1 criticality-epoch sensitivity, on a
// representative subset (the sweep over the full list is cmd/experiments
// -id epoch).
func BenchmarkExpEpochSweep(b *testing.B) {
	subset := subsetWorkloads("omnetpp", "cassandra", "sphinx3", "leela")
	for i := 0; i < b.N; i++ {
		for _, epoch := range []uint64{25_000, 400_000, 6_400_000} {
			epoch := epoch
			r := harness.NewRunner(benchOpt)
			r.Workloads = subset
			pf := func() vp.Predictor {
				c := core.DefaultConfig()
				c.Epoch = epoch
				return core.New(c)
			}
			g := harness.Geomean(r.CompareWith(ooo.Skylake(), "FVP-epoch-bench", pf))
			b.ReportMetric((g-1)*100, "epoch_pct")
		}
	}
}

// BenchmarkExpTableSizes — §VI-D: VT/VF size sensitivity on a subset.
func BenchmarkExpTableSizes(b *testing.B) {
	subset := subsetWorkloads("omnetpp", "cassandra", "sphinx3", "astar")
	for i := 0; i < b.N; i++ {
		for _, sz := range []struct{ vt, vf int }{{48, 40}, {96, 128}} {
			sz := sz
			r := harness.NewRunner(benchOpt)
			r.Workloads = subset
			pf := func() vp.Predictor {
				c := core.DefaultConfig()
				c.VTEntries = sz.vt
				c.MR.VFEntries = sz.vf
				return core.New(c)
			}
			g := harness.Geomean(r.CompareWith(ooo.Skylake(), "FVP-size-bench", pf))
			b.ReportMetric((g-1)*100, "size_pct")
		}
	}
}

// BenchmarkExpStallBreakdown — extension: top-down cycle accounting under
// FVP on a representative subset.
func BenchmarkExpStallBreakdown(b *testing.B) {
	subset := subsetWorkloads("omnetpp", "cassandra", "mcf", "leela")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		r.Workloads = subset
		pairs := r.Compare(ooo.Skylake(), harness.SpecFVP)
		var dram, dramF uint64
		for _, p := range pairs {
			dram += p.Base.Stats.Breakdown[ooo.CycMemDRAM]
			dramF += p.Pred.Stats.Breakdown[ooo.CycMemDRAM]
		}
		if dram > 0 {
			b.ReportMetric(100*float64(dramF)/float64(dram), "dram_stalls_remaining_pct")
		}
	}
}

// BenchmarkExpAblation — extension: FVP gain with the baseline's
// prefetchers disabled (dependences get longer, FVP gains more).
func BenchmarkExpAblation(b *testing.B) {
	subset := subsetWorkloads("omnetpp", "astar", "sphinx3", "cassandra")
	for i := 0; i < b.N; i++ {
		cfg := ooo.Skylake()
		cfg.Mem.StridePCBits = 0
		cfg.Mem.Streams = 0
		cfg.Name = "Skylake-nopf"
		r := harness.NewRunner(benchOpt)
		r.Workloads = subset
		g := harness.Geomean(r.Compare(cfg, harness.SpecFVP))
		b.ReportMetric((g-1)*100, "no_prefetch_gain_pct")
	}
}

// BenchmarkExpBaselinePredictors — extension: the wider shoot-out
// (LVP / VTAGE / EVES vs FVP) on a subset.
func BenchmarkExpBaselinePredictors(b *testing.B) {
	subset := subsetWorkloads("omnetpp", "hmmer", "cassandra", "lbm")
	specs := []harness.Spec{harness.SpecLVP, harness.SpecVTAGE, harness.SpecEVES, harness.SpecFVP}
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchOpt)
		r.Workloads = subset
		for _, s := range specs {
			g := harness.Geomean(r.Compare(ooo.Skylake(), s))
			b.ReportMetric((g-1)*100, string(s)+"_pct")
		}
	}
}

func subsetWorkloads(names ...string) []workload.Workload {
	out := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		if w, ok := workload.ByName(n); ok {
			out = append(out, w)
		}
	}
	return out
}

// ----------------------------------------------------------------------
// Substrate micro-benchmarks.

// replaySource records insts instructions of workload name into the packed
// trace format and returns a looping in-memory reader over them: the
// default input for the cycle-loop benchmarks, so workload generation
// happens once at setup and the timed region measures only the timing
// model (see DESIGN.md "Data-oriented core").
func replaySource(tb testing.TB, p *prog.Program, insts uint64) *trace.MemReader {
	tb.Helper()
	data, n, err := trace.Record(prog.NewExec(p), insts)
	if err != nil || n < insts {
		tb.Fatalf("record %d insts: got %d, err %v", insts, n, err)
	}
	src, err := trace.NewMemReader(data, true)
	if err != nil {
		tb.Fatal(err)
	}
	return src
}

// BenchmarkCoreCycleLoop isolates the OOO core's steady-state cycle loop:
// one core is constructed outside the timed region and each iteration
// advances the same simulation by another 50k retired instructions, so
// ns/op and allocs/op reflect only in-loop scheduler work — no setup, no
// cache warm-up, no predictor construction, and (since the SoA refactor)
// no functional workload generation: the instruction stream is a
// pre-recorded packed trace replayed from memory. This is the number the
// data-oriented-core speedup claim is measured against (see BENCH_core.json).
func BenchmarkCoreCycleLoop(b *testing.B) {
	const instsPerOp = 50_000
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	ex := replaySource(b, p, 400_000)
	c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	c.Run(instsPerOp) // reach steady state before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(uint64(i+2) * instsPerOp)
	}
	b.ReportMetric(float64(instsPerOp*b.N)/b.Elapsed().Seconds(), "inst/s")
}

// TestCycleLoopAllocs pins the steady-state allocation rate of the cycle
// loop the way BenchmarkCoreCycleLoop measures it: one warmed core advancing
// 50k retired instructions per run from a looping replay source. The SoA
// window, index-carrying scheduler queues, and replay input leave only
// incidental growth (dependence-list and fetch-buffer reslicing that
// occasionally regrows); the bound has headroom over the observed
// single-digit rate but fails loudly if per-instruction allocation ever
// sneaks back into the loop.
func TestCycleLoopAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const instsPerRun = 50_000
	const maxAllocsPerRun = 37
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	ex := replaySource(t, p, 400_000)
	c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	target := uint64(instsPerRun)
	c.Run(target) // reach steady state before counting
	avg := testing.AllocsPerRun(5, func() {
		target += instsPerRun
		c.Run(target)
	})
	if avg > maxAllocsPerRun {
		t.Errorf("steady-state cycle loop: %.1f allocs per %d insts, want <= %d",
			avg, instsPerRun, maxAllocsPerRun)
	}
}

// BenchmarkCoreCycleLoopMemBound is BenchmarkCoreCycleLoop on an mcf-class
// DRAM-bound pointer chaser — the workload category where the cycle loop
// used to spin through hundreds of empty iterations per head-of-window
// miss, and where idle-cycle elision therefore pays most. Run it with
// -tags ooo_noskip to measure the ticking path; the default build must be
// ≥1.5× its inst/s (fvpbench records both in BENCH_core.json). skip_ratio
// reports the fraction of simulated cycles covered by clock jumps.
func BenchmarkCoreCycleLoopMemBound(b *testing.B) {
	const instsPerOp = 20_000 // mcf-class IPC is ~0.08: ~250k cycles per op
	w, _ := workload.ByName("mcf-17")
	p := w.Build()
	ex := replaySource(b, p, 200_000)
	c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st0 := c.Run(instsPerOp) // reach steady state before timing
	st1 := st0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st1 = c.Run(uint64(i+2) * instsPerOp)
	}
	b.ReportMetric(float64(instsPerOp*b.N)/b.Elapsed().Seconds(), "inst/s")
	if dc := st1.Cycles - st0.Cycles; dc > 0 {
		b.ReportMetric(float64(st1.SkippedCycles-st0.SkippedCycles)/float64(dc), "skip_ratio")
	}
}

// BenchmarkCoreCycleLoopSampled repeats BenchmarkCoreCycleLoop with an
// interval sampler attached, quantifying the observer's attached cost.
// The guard the telemetry layer is held to is the other direction: with
// no observer attached (the benchmark above), ns/op must stay within 2%
// of the BENCH_core.json baseline — the per-cycle hook is one predictable
// compare against a sentinel, nothing more.
func BenchmarkCoreCycleLoopSampled(b *testing.B) {
	const instsPerOp = 50_000
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	ex := replaySource(b, p, 400_000)
	c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	c.Run(instsPerOp) // reach steady state before timing
	c.SetObserver(&telemetry.Sampler{Discard: true}, ooo.DefaultObserverInterval)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(uint64(i+2) * instsPerOp)
	}
	b.ReportMetric(float64(instsPerOp*b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSimulatorThroughput measures core-model speed in simulated
// instructions per second on a representative workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := prog.NewExec(p)
		c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), ex, p.BuildMemory())
		c.WarmCaches(p.WarmRanges)
		c.Run(50_000)
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkFunctionalExecutor measures the trace generator alone.
func BenchmarkFunctionalExecutor(b *testing.B) {
	w, _ := workload.ByName("cassandra")
	p := w.Build()
	ex := prog.NewExec(p)
	var d isa.DynInst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Next(&d)
	}
}

// BenchmarkFVPLookup measures the predictor's front-end lookup path.
func BenchmarkFVPLookup(b *testing.B) {
	f := core.New(core.DefaultConfig())
	d := isa.DynInst{PC: 0x400100, Op: isa.OpLoad, Dst: 1, Src1: 2, Addr: 0x8000, Value: 7}
	ctx := &vp.Ctx{}
	for i := 0; i < 2000; i++ {
		f.Train(&d, ctx, vp.TrainInfo{NearHead: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(&d, ctx)
	}
}

// BenchmarkCompositeLookup measures the four-component prior-art lookup.
func BenchmarkCompositeLookup(b *testing.B) {
	c := vp.NewComposite8KB(1)
	d := isa.DynInst{PC: 0x400100, Op: isa.OpLoad, Dst: 1, Src1: 2, Addr: 0x8000, Value: 7}
	ctx := &vp.Ctx{
		MemPeek:    func(uint64) uint64 { return 7 },
		CacheLevel: func(uint64) int { return 0 },
	}
	for i := 0; i < 2000; i++ {
		c.Train(&d, ctx, vp.TrainInfo{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(&d, ctx)
	}
}

// BenchmarkTAGEPredict measures the branch predictor hot path.
func BenchmarkTAGEPredict(b *testing.B) {
	tg := branch.NewTAGE(branch.DefaultTAGEConfig())
	var g branch.GlobalHistory
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taken := i%3 == 0
		_, st := tg.Predict(0x400000, &g)
		snap := g.Snapshot()
		tg.Update(0x400000, &snap, st, taken)
		g.Push(0x400000, taken)
	}
}

// BenchmarkCacheAccess measures one L1 lookup+fill round.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "B", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*64) % (256 << 10)
		if hit, _, _ := c.Lookup(uint64(i), addr, false); !hit {
			c.Fill(addr, uint64(i), false, false)
		}
	}
}

// BenchmarkDRAMAccess measures the bank-timing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.DDR4_2133())
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = d.Access(now, uint64(i)*64)
	}
}

// BenchmarkServiceCacheHit measures the fvpd service's cache-hit fast
// path: after one priming simulation, every further submit of the same
// RunSpec must be answered from the content-addressed cache at submit
// time (hash + LRU lookup + job bookkeeping, no simulation). This
// anchors the service's perf trajectory: hit latency is what a sweep
// pays for every redundant point.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc := simd.New(simd.Config{Workers: 2, MaxFinishedJobs: 512})
	defer svc.Close()
	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP,
		WarmupInsts: 20_000, MeasureInsts: 50_000}

	prime, err := svc.Submit(simd.RunRequest{RunSpec: spec})
	if err != nil {
		b.Fatal(err)
	}
	if st, err := svc.Wait(context.Background(), prime.ID); err != nil || st.State != simd.StateDone {
		b.Fatalf("priming run: state=%s err=%v", st.State, err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := svc.Submit(simd.RunRequest{RunSpec: spec})
		if err != nil {
			b.Fatal(err)
		}
		if st.State != simd.StateDone || !st.Cached || st.Metrics == nil {
			b.Fatalf("submit %d not served from cache: %+v", i, st)
		}
	}
	b.StopTimer()
	snap := svc.Snapshot()
	if snap.CacheMisses != 1 || snap.CacheHits != uint64(b.N) {
		b.Fatalf("hits=%d misses=%d, want %d/1", snap.CacheHits, snap.CacheMisses, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hits/s")
}

// BenchmarkStoreSets measures the dependence-predictor dispatch path.
func BenchmarkStoreSets(b *testing.B) {
	s := memdep.New(12, 8)
	s.Violation(0x400, 0x500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DispatchStore(0x500, uint64(i))
		s.DispatchLoad(0x400)
		s.CompleteStore(0x500, uint64(i))
	}
}
