// Package fvp is the public façade of the Focused Value Prediction
// reproduction (Bandishte et al., ISCA 2020). It exposes:
//
//   - the 60-workload study list (Table III) as named, generated kernels,
//   - the two simulated machines (Skylake and the scaled-up Skylake-2X,
//     Table II),
//   - the predictor zoo: FVP itself (≈1.2 KB), Memory Renaming and the
//     DLVP+EVES Composite predictor at 8 KB / 1 KB budgets, plus FVP
//     ablations (register-only, memory-only, criticality policies),
//   - Run/Compare entry points returning IPC, coverage and accuracy, and
//   - the per-figure experiment drivers that regenerate every table and
//     figure of the paper's evaluation section.
//
// Quick start:
//
//	m, _ := fvp.Run(fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP})
//	b, _ := fvp.Run(fvp.RunSpec{Workload: "omnetpp"})
//	fmt.Printf("speedup %.1f%%\n", (m.IPC/b.IPC-1)*100)
package fvp

import (
	"context"
	"fmt"
	"io"

	"fvp/internal/core"
	"fvp/internal/harness"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/sample"
	"fvp/internal/suggest"
	"fvp/internal/telemetry"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// IntervalMetrics is one completed telemetry sampling interval: counters are
// deltas over the interval, occupancies point readings at its end. See
// telemetry.Sample for field documentation; the JSON form is the fvpsim
// -intervals schema.
type IntervalMetrics = telemetry.Sample

// Observer receives the interval time series of a run. Attach one via
// RunSpec.Observer; it costs strictly nothing when nil (the cycle loop's
// check is a single always-false compare). OnInterval runs on the
// simulating goroutine and must not block.
type Observer interface {
	OnInterval(IntervalMetrics)
}

// DefaultObserverInterval is the sampling period used when
// RunSpec.ObserverInterval is 0.
const DefaultObserverInterval = ooo.DefaultObserverInterval

// PipeTrace captures bounded per-instruction pipeline timelines and exports
// Chrome trace-event JSON (load the file at ui.perfetto.dev). Attach via
// RunSpec.Tracer, then call WriteChromeTrace after the run.
type PipeTrace = telemetry.PipeTrace

// NewPipeTrace returns a pipeline tracer capturing the first maxInsts
// distinct instructions of the measured region (0 selects
// telemetry.DefaultTraceInsts).
func NewPipeTrace(maxInsts int) *PipeTrace { return telemetry.NewPipeTrace(maxInsts) }

// UnknownNameError reports a RunSpec field that names no known workload,
// machine, or predictor, with the closest valid name when one is
// plausible. Callers that translate errors into protocol responses (the
// fvpd service maps it to HTTP 400) can detect it with errors.As.
type UnknownNameError struct {
	// Kind is "workload", "machine", or "predictor".
	Kind string
	// Name is the value that failed to resolve.
	Name string
	// Suggestion is the closest valid name, or "" if nothing is close.
	Suggestion string
}

func (e *UnknownNameError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("fvp: no such %s %q (did you mean %q?)", e.Kind, e.Name, e.Suggestion)
	}
	return fmt.Sprintf("fvp: no such %s %q", e.Kind, e.Name)
}

// unknownName builds the error, filling in the closest-candidate hint.
func unknownName(kind, name string, candidates []string) error {
	s, _ := suggest.Closest(name, candidates)
	return &UnknownNameError{Kind: kind, Name: name, Suggestion: s}
}

func workloadNames() []string {
	ws := workload.All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

func predictorNames() []string {
	ps := Predictors()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = string(p)
	}
	return out
}

// Machine selects a simulated core configuration.
type Machine string

// The two baselines of the paper (§V).
const (
	// Skylake is the 4-wide, 224-entry-ROB baseline (Table II).
	Skylake Machine = "skylake"
	// Skylake2X doubles every out-of-order resource and bandwidth.
	Skylake2X Machine = "skylake2x"
)

// coreConfig maps a Machine to the timing-model configuration.
func coreConfig(m Machine) (ooo.Config, error) {
	switch m {
	case Skylake, "":
		return ooo.Skylake(), nil
	case Skylake2X:
		return ooo.Skylake2X(), nil
	}
	return ooo.Config{}, unknownName("machine", string(m), []string{string(Skylake), string(Skylake2X)})
}

// Predictor names a value-predictor configuration.
type Predictor string

// Predictor configurations evaluated in the paper.
const (
	// PredNone is the no-value-prediction baseline.
	PredNone Predictor = "none"
	// PredFVP is Focused Value Prediction at its paper sizing (~1.2 KB).
	PredFVP Predictor = "fvp"
	// PredFVPRegOnly disables FVP's Memory-Renaming component (Fig 13).
	PredFVPRegOnly Predictor = "fvp-reg-only"
	// PredFVPMemOnly keeps only the Memory-Renaming component (Fig 13).
	PredFVPMemOnly Predictor = "fvp-mem-only"
	// PredFVPL1Miss uses the FVP-L1-Miss criticality policy (Fig 12).
	PredFVPL1Miss Predictor = "fvp-l1-miss"
	// PredFVPL1MissOnly predicts only L1-missing loads (Fig 12).
	PredFVPL1MissOnly Predictor = "fvp-l1-miss-only"
	// PredFVPOracle uses graph-buffering oracle criticality (Fig 12).
	PredFVPOracle Predictor = "fvp-oracle"
	// PredMR8KB is standalone Memory Renaming at ≈8 KB (Figs 10/11).
	PredMR8KB Predictor = "mr-8kb"
	// PredMR1KB is standalone Memory Renaming at ≈1 KB.
	PredMR1KB Predictor = "mr-1kb"
	// PredComposite8KB is the DLVP+EVES Composite predictor at ≈8 KB.
	PredComposite8KB Predictor = "composite-8kb"
	// PredComposite1KB is the Composite predictor at ≈1 KB.
	PredComposite1KB Predictor = "composite-1kb"
	// PredLVP is a plain tagged last-value predictor (baseline study).
	PredLVP Predictor = "lvp"
	// PredStride is the classic stride value predictor (§VI-B note).
	PredStride Predictor = "stride"
	// PredVTAGE is a standalone VTAGE (Perais & Seznec, cited prior art).
	PredVTAGE Predictor = "vtage"
	// PredEVES is an EVES-style VTAGE+E-Stride predictor (cited prior art).
	PredEVES Predictor = "eves"
)

// Predictors lists every named configuration.
func Predictors() []Predictor {
	return []Predictor{
		PredNone, PredFVP, PredFVPRegOnly, PredFVPMemOnly, PredFVPL1Miss,
		PredFVPL1MissOnly, PredFVPOracle, PredMR8KB, PredMR1KB,
		PredComposite8KB, PredComposite1KB, PredLVP, PredStride,
		PredVTAGE, PredEVES,
	}
}

func predFactory(p Predictor) (harness.PredFactory, error) {
	switch p {
	case PredNone, "":
		return nil, nil
	case PredFVP:
		return harness.Factory(harness.SpecFVP), nil
	case PredFVPRegOnly:
		return harness.Factory(harness.SpecFVPRegOnly), nil
	case PredFVPMemOnly:
		return harness.Factory(harness.SpecFVPMemOnly), nil
	case PredFVPL1Miss:
		return harness.Factory(harness.SpecFVPL1Miss), nil
	case PredFVPL1MissOnly:
		return harness.Factory(harness.SpecFVPL1MissOnl), nil
	case PredFVPOracle:
		return harness.Factory(harness.SpecFVPOracle), nil
	case PredMR8KB:
		return harness.Factory(harness.SpecMR8KB), nil
	case PredMR1KB:
		return harness.Factory(harness.SpecMR1KB), nil
	case PredComposite8KB:
		return harness.Factory(harness.SpecComp8KB), nil
	case PredComposite1KB:
		return harness.Factory(harness.SpecComp1KB), nil
	case PredLVP:
		return harness.Factory(harness.SpecLVP), nil
	case PredStride:
		return harness.Factory(harness.SpecStride), nil
	case PredVTAGE:
		return harness.Factory(harness.SpecVTAGE), nil
	case PredEVES:
		return harness.Factory(harness.SpecEVES), nil
	}
	return nil, unknownName("predictor", string(p), predictorNames())
}

// StorageBytes returns the state budget of a predictor configuration in
// bytes (0 for the baseline).
func StorageBytes(p Predictor) (int, error) {
	pf, err := predFactory(p)
	if err != nil {
		return 0, err
	}
	if pf == nil {
		return 0, nil
	}
	return pf().StorageBits() / 8, nil
}

// WorkloadInfo describes one study-list entry.
type WorkloadInfo struct {
	// Name is the paper's application name ("omnetpp", "cassandra", ...).
	Name string
	// Category is the Table-III family.
	Category string
}

// Workloads returns the 60-entry study list (Table III).
func Workloads() []WorkloadInfo {
	ws := workload.All()
	out := make([]WorkloadInfo, len(ws))
	for i, w := range ws {
		out[i] = WorkloadInfo{Name: w.Name, Category: string(w.Category)}
	}
	return out
}

// RunSpec describes one simulation.
type RunSpec struct {
	// Workload is a study-list name (see Workloads).
	Workload string `json:"workload"`
	// Machine defaults to Skylake.
	Machine Machine `json:"machine,omitempty"`
	// Predictor defaults to PredNone (the baseline).
	Predictor Predictor `json:"predictor,omitempty"`
	// WarmupInsts and MeasureInsts default to 100k/300k.
	WarmupInsts  uint64 `json:"warmup_insts,omitempty"`
	MeasureInsts uint64 `json:"measure_insts,omitempty"`
	// WarmupMode selects "detailed" (default) or "functional" warmup —
	// functional fast-forwards the warmup region through the machine's
	// warming taps at O(instructions) cost (see DESIGN.md).
	WarmupMode string `json:"warmup_mode,omitempty"`
	// Regions splits the measured region into this many checkpoint-
	// restored slices simulated in parallel and stitched (default 1).
	Regions int `json:"regions,omitempty"`
	// RegionWorkers bounds how many regions simulate concurrently
	// (0 = GOMAXPROCS). A local resource knob: it never changes results,
	// so it is not part of the wire schema or the result-cache key.
	// Sampled runs reuse it to bound concurrent sample units.
	RegionWorkers int `json:"-"`

	// SampleUnits, when set (or when SampleTargetCI is set), switches the
	// run to SMARTS-style sampled simulation: only SampleUnits systematic
	// sample units of the measured region are simulated in detail, the
	// rest is fast-forwarded, and Metrics carries a confidence interval
	// for the population estimate. Minimum 2 (a single unit has no
	// variance estimate); 0 with SampleTargetCI set starts auto-tuning at
	// the default unit count.
	SampleUnits int `json:"sample_units,omitempty"`
	// SampleUnitInsts is the detailed length of each sample unit
	// (0 = 1000 instructions).
	SampleUnitInsts uint64 `json:"sample_unit_insts,omitempty"`
	// SampleWarmupInsts is the per-unit functional warmup window
	// (0 = 200k instructions — see DESIGN.md on why units need
	// long-history warming).
	SampleWarmupInsts uint64 `json:"sample_warmup_insts,omitempty"`
	// SampleTargetCI, when > 0, auto-tunes the unit count: it doubles
	// until the IPC estimate's relative 95% CI half-width is at most this
	// (e.g. 0.02 for ±2%) or SampleMaxUnits is reached.
	SampleTargetCI float64 `json:"sample_target_ci,omitempty"`
	// SampleMaxUnits caps auto-tune growth (0 = 128).
	SampleMaxUnits int `json:"sample_max_units,omitempty"`
	// SampleSeed selects the systematic phase offset; results are
	// deterministic for a fixed seed.
	SampleSeed uint64 `json:"sample_seed,omitempty"`

	// Observer, if non-nil, streams interval metrics from the measured
	// region (attached after warmup). It is a local hook, not part of the
	// wire schema or the result-cache key, and never perturbs timing.
	Observer Observer `json:"-"`
	// ObserverInterval is the sampling period in cycles; 0 selects
	// DefaultObserverInterval.
	ObserverInterval uint64 `json:"-"`
	// Tracer, if non-nil, records per-instruction pipeline timelines over
	// the measured region for Chrome-trace export. Local hook, like
	// Observer.
	Tracer *PipeTrace `json:"-"`
}

// Normalized returns the spec with every default made explicit, so two
// specs that describe the same simulation compare (and hash) equal. This
// is what the fvpd result cache keys on.
func (s RunSpec) Normalized() RunSpec {
	if s.Machine == "" {
		s.Machine = Skylake
	}
	if s.Predictor == "" {
		s.Predictor = PredNone
	}
	def := harness.DefaultOptions()
	if s.WarmupInsts == 0 {
		s.WarmupInsts = def.WarmupInsts
	}
	if s.MeasureInsts == 0 {
		s.MeasureInsts = def.MeasureInsts
	}
	if s.WarmupMode == "" {
		s.WarmupMode = string(harness.WarmupDetailed)
	}
	if s.Regions < 1 {
		s.Regions = 1
	}
	if s.SampleUnits != 0 || s.SampleTargetCI != 0 {
		if s.SampleUnits == 0 {
			s.SampleUnits = sample.DefaultUnits
		}
		if s.SampleUnitInsts == 0 {
			s.SampleUnitInsts = sample.DefaultUnitInsts
		}
		if s.SampleWarmupInsts == 0 {
			s.SampleWarmupInsts = harness.DefaultSampleWarmupInsts
		}
		if s.SampleMaxUnits == 0 {
			s.SampleMaxUnits = sample.DefaultMaxUnits
		}
	}
	return s
}

// Budget caps enforced by Validate. A single simulated instruction costs
// real time on the order of 100 ns, so a request at the cap is minutes of
// work — anything beyond it is almost certainly a unit mistake (cycles or
// nanoseconds pasted into an instruction-count field), and services should
// reject it before queueing.
const (
	// MaxWarmupInsts caps RunSpec.WarmupInsts.
	MaxWarmupInsts = 1_000_000_000
	// MaxMeasureInsts caps RunSpec.MeasureInsts.
	MaxMeasureInsts = 1_000_000_000
	// MaxRegions caps RunSpec.Regions: beyond this, per-region warmup
	// overhead dominates and the stitched result stops resembling the
	// monolithic run.
	MaxRegions = 64
	// MaxSampleUnits caps RunSpec.SampleUnits and SampleMaxUnits: beyond
	// this, per-unit warmup work dwarfs the detailed savings.
	MaxSampleUnits = 1024
)

// WarmupModes lists the accepted RunSpec.WarmupMode values, for CLIs and
// service-side validation messages.
func WarmupModes() []string { return harness.WarmupModes() }

// InvalidSpecError reports a RunSpec field whose value is out of range —
// names resolve, but the requested work is malformed or beyond the
// service budget caps. The fvpd service maps it to HTTP 400; detect it
// with errors.As.
type InvalidSpecError struct {
	// Field is the spec field's JSON name ("warmup_insts", ...).
	Field string
	// Value is the rejected value and Limit the cap it exceeded (0 when
	// the problem isn't a cap).
	Value, Limit uint64
	// Reason says what's wrong, for human eyes.
	Reason string
}

func (e *InvalidSpecError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("fvp: invalid spec: %s=%d exceeds limit %d", e.Field, e.Value, e.Limit)
	}
	return fmt.Sprintf("fvp: invalid spec: %s: %s", e.Field, e.Reason)
}

// Validate resolves every name in the spec without simulating, returning
// an *UnknownNameError (with a did-you-mean hint) for the first field
// that doesn't resolve, or an *InvalidSpecError for a field whose value
// is out of range. Services use it to reject bad requests before queueing
// work.
func Validate(spec RunSpec) error {
	if _, ok := workload.ByName(spec.Workload); !ok {
		return unknownName("workload", spec.Workload, workloadNames())
	}
	if _, err := coreConfig(spec.Machine); err != nil {
		return err
	}
	if _, err := predFactory(spec.Predictor); err != nil {
		return err
	}
	if spec.WarmupInsts > MaxWarmupInsts {
		return &InvalidSpecError{Field: "warmup_insts", Value: spec.WarmupInsts, Limit: MaxWarmupInsts}
	}
	if spec.MeasureInsts > MaxMeasureInsts {
		return &InvalidSpecError{Field: "measure_insts", Value: spec.MeasureInsts, Limit: MaxMeasureInsts}
	}
	switch spec.WarmupMode {
	case "", string(harness.WarmupDetailed), string(harness.WarmupFunctional):
	default:
		return unknownName("warmup mode", spec.WarmupMode, harness.WarmupModes())
	}
	if spec.Regions < 0 {
		return &InvalidSpecError{Field: "regions", Reason: "region count < 1"}
	}
	if spec.Regions > MaxRegions {
		return &InvalidSpecError{Field: "regions", Value: uint64(spec.Regions), Limit: MaxRegions}
	}
	if spec.Regions > 1 {
		if measure := spec.Normalized().MeasureInsts; uint64(spec.Regions) > measure {
			return &InvalidSpecError{
				Field: "regions", Value: uint64(spec.Regions), Limit: measure,
				Reason: "more regions than measured instructions",
			}
		}
		if spec.Observer != nil || spec.Tracer != nil {
			return &InvalidSpecError{
				Field:  "regions",
				Reason: "per-interval observation requires a single region",
			}
		}
	}
	return validateSampling(spec)
}

// validateSampling checks the sample_* spec fields (no-op when sampling is
// disabled). The structural rules mirror harness.Options.Validate so bad
// requests are rejected at the service boundary, before queueing.
func validateSampling(spec RunSpec) error {
	if spec.SampleUnits == 0 && spec.SampleTargetCI == 0 {
		return nil
	}
	if spec.SampleUnits < 0 || spec.SampleUnits == 1 {
		return &InvalidSpecError{
			Field:  "sample_units",
			Reason: "at least two sample units are needed for a variance estimate",
		}
	}
	if spec.SampleUnits > MaxSampleUnits {
		return &InvalidSpecError{Field: "sample_units", Value: uint64(spec.SampleUnits), Limit: MaxSampleUnits}
	}
	if spec.SampleTargetCI < 0 || spec.SampleTargetCI >= 1 {
		return &InvalidSpecError{
			Field:  "sample_target_ci",
			Reason: fmt.Sprintf("relative CI target %v outside [0, 1)", spec.SampleTargetCI),
		}
	}
	if spec.SampleMaxUnits < 0 {
		return &InvalidSpecError{Field: "sample_max_units", Reason: "unit cap < 0"}
	}
	if spec.SampleMaxUnits > MaxSampleUnits {
		return &InvalidSpecError{Field: "sample_max_units", Value: uint64(spec.SampleMaxUnits), Limit: MaxSampleUnits}
	}
	if spec.SampleUnitInsts > MaxMeasureInsts {
		return &InvalidSpecError{Field: "sample_unit_insts", Value: spec.SampleUnitInsts, Limit: MaxMeasureInsts}
	}
	if spec.SampleWarmupInsts > MaxWarmupInsts {
		return &InvalidSpecError{Field: "sample_warmup_insts", Value: spec.SampleWarmupInsts, Limit: MaxWarmupInsts}
	}
	n := spec.Normalized()
	if budget := uint64(n.SampleUnits) * n.SampleUnitInsts; budget > n.MeasureInsts {
		return &InvalidSpecError{
			Field: "sample_units", Value: budget, Limit: n.MeasureInsts,
			Reason: "detailed budget sample_units*sample_unit_insts exceeds the measured region",
		}
	}
	if spec.Regions > 1 {
		return &InvalidSpecError{
			Field:  "sample_units",
			Reason: "sampling and region-parallel runs are mutually exclusive",
		}
	}
	if spec.Observer != nil || spec.Tracer != nil {
		return &InvalidSpecError{
			Field:  "sample_units",
			Reason: "per-interval observation requires a contiguous (non-sampled) run",
		}
	}
	return nil
}

// Metrics is the measured outcome of a run. The JSON field names are the
// wire schema of the fvpd service and fvpsim -json.
type Metrics struct {
	// IPC is retired instructions per cycle over the measured region.
	IPC float64 `json:"ipc"`
	// Coverage is predicted loads / all loads (the paper's metric).
	Coverage float64 `json:"coverage"`
	// Accuracy is correct / validated predictions.
	Accuracy float64 `json:"accuracy"`
	// Cycles and Insts cover the measured region.
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
	// Loads is the retired load count.
	Loads uint64 `json:"loads"`
	// VPFlushes counts pipeline flushes from value mispredictions.
	VPFlushes uint64 `json:"vp_flushes"`
	// BranchMispredicts counts resolved front-end mispredictions.
	BranchMispredicts uint64 `json:"branch_mispredicts"`
	// Forwards counts store→load forwarding events in the LSQ.
	Forwards uint64 `json:"forwards"`
	// LoadsByLevel counts demand loads served by L1/L2/LLC/memory.
	LoadsByLevel [4]uint64 `json:"loads_by_level"`
	// CycleBreakdown attributes every cycle to a top-down bucket; see
	// CycleBucketNames for labels. Buckets sum to Cycles.
	CycleBreakdown [9]uint64 `json:"cycle_breakdown"`
	// SkippedCycles counts cycles the simulator clock-jumped instead of
	// ticking, in SkipEvents jumps — a simulator-speed meter, not a machine
	// property: skipped cycles are fully accounted in Cycles and
	// CycleBreakdown, and both fields are 0 when idle-cycle elision is off
	// (-tags ooo_noskip or ooo.Config.DisableIdleElision).
	SkippedCycles uint64 `json:"skipped_cycles"`
	SkipEvents    uint64 `json:"skip_events"`
	// WarmupMode records which warmup path produced the run ("detailed"
	// or "functional").
	WarmupMode string `json:"warmup_mode,omitempty"`
	// FFInsts counts functionally fast-forwarded instructions (functional
	// warmup plus the checkpoint scan of a region-parallel run) and
	// FFInstsPerSec their wall-clock throughput — the simulator-speed
	// meters of the fast-forward path. Both 0 for purely detailed runs.
	FFInsts       uint64  `json:"ff_insts,omitempty"`
	FFInstsPerSec float64 `json:"ff_insts_per_sec,omitempty"`
	// Sampling is the statistical summary of a sampled run (nil for
	// full-detail runs). For sampled runs the point metrics above are the
	// instruction-weighted stitch of the sample units.
	Sampling *SamplingMetrics `json:"sampling,omitempty"`
}

// SampleEstimate is the population estimate of one metric from per-unit
// observations: the mean, its standard error, and the 95% confidence
// interval half-width in absolute and relative terms.
type SampleEstimate struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	CIHalf float64 `json:"ci_half"`
	RelCI  float64 `json:"rel_ci"`
}

// SamplingMetrics summarizes a sampled run for the wire schema: the final
// plan shape, the auto-tune outcome, and per-metric confidence intervals.
type SamplingMetrics struct {
	// Units is the final sample-unit count, UnitInsts the detailed length
	// of each, WarmupInsts the per-unit warmup window, Seed the systematic
	// phase seed.
	Units       int    `json:"units"`
	UnitInsts   uint64 `json:"unit_insts"`
	WarmupInsts uint64 `json:"warmup_insts"`
	Seed        uint64 `json:"seed"`
	// TargetCI echoes the auto-tune target (0 = fixed unit count); Rounds
	// counts auto-tune iterations; Converged is false only when the unit
	// cap was hit with the IPC interval still wider than TargetCI.
	TargetCI  float64 `json:"target_ci,omitempty"`
	Rounds    int     `json:"rounds"`
	Converged bool    `json:"converged"`
	// SampledInsts counts instructions simulated in detail across units.
	SampledInsts uint64 `json:"sampled_insts"`
	// IPC, Coverage and Accuracy are the per-unit population estimates.
	IPC      SampleEstimate `json:"ipc"`
	Coverage SampleEstimate `json:"coverage"`
	Accuracy SampleEstimate `json:"accuracy"`
}

// CycleBucketNames labels Metrics.CycleBreakdown.
func CycleBucketNames() [9]string { return ooo.BucketNames }

func (s RunSpec) options() harness.Options {
	opt := harness.DefaultOptions()
	if s.WarmupInsts > 0 {
		opt.WarmupInsts = s.WarmupInsts
	}
	if s.MeasureInsts > 0 {
		opt.MeasureInsts = s.MeasureInsts
	}
	if s.Observer != nil {
		opt.OnSample = s.Observer.OnInterval
		opt.SampleInterval = s.ObserverInterval
	}
	if s.Tracer != nil {
		opt.Tracer = s.Tracer
	}
	if s.WarmupMode != "" {
		opt.WarmupMode = harness.WarmupMode(s.WarmupMode)
	}
	if s.Regions > 0 {
		opt.Regions = s.Regions
	}
	if s.RegionWorkers > 0 {
		opt.RegionWorkers = s.RegionWorkers
	}
	if s.SampleUnits != 0 || s.SampleTargetCI != 0 {
		opt.Sampling = harness.Sampling{
			Units:       s.SampleUnits,
			UnitInsts:   s.SampleUnitInsts,
			WarmupInsts: s.SampleWarmupInsts,
			TargetCI:    s.SampleTargetCI,
			MaxUnits:    s.SampleMaxUnits,
			Seed:        s.SampleSeed,
		}
	}
	return opt
}

// toEstimate converts the internal estimator form to the wire form.
func toEstimate(m sample.Metric) SampleEstimate {
	return SampleEstimate{Mean: m.Mean, StdErr: m.StdErr, CIHalf: m.CIHalf, RelCI: m.RelCI}
}

func toMetrics(r harness.Result) Metrics {
	var sm *SamplingMetrics
	if sr := r.Sampling; sr != nil {
		sm = &SamplingMetrics{
			Units:        sr.PlannedUnits,
			UnitInsts:    sr.UnitInsts,
			WarmupInsts:  sr.WarmupInsts,
			Seed:         sr.Seed,
			TargetCI:     sr.TargetCI,
			Rounds:       sr.Rounds,
			Converged:    sr.Converged,
			SampledInsts: sr.SampledInsts,
			IPC:          toEstimate(sr.IPC),
			Coverage:     toEstimate(sr.Coverage),
			Accuracy:     toEstimate(sr.Accuracy),
		}
	}
	return Metrics{
		Sampling:          sm,
		IPC:               r.IPC,
		Coverage:          r.Coverage,
		Accuracy:          r.Accuracy,
		Cycles:            r.Stats.Cycles,
		Insts:             r.Stats.Retired,
		Loads:             r.Stats.RetiredLoads,
		VPFlushes:         r.Stats.VPFlushes,
		BranchMispredicts: r.Stats.BranchMispredicts,
		Forwards:          r.Stats.Forwards,
		LoadsByLevel:      r.Stats.LoadsByLevel,
		CycleBreakdown:    r.Stats.Breakdown,
		SkippedCycles:     r.Stats.SkippedCycles,
		SkipEvents:        r.Stats.SkipEvents,
		WarmupMode:        string(r.WarmupMode),
		FFInsts:           r.FFInsts,
		FFInstsPerSec:     ffRate(r.FFInsts, r.FFSeconds),
	}
}

// ffRate guards the throughput division (sub-microsecond fast-forwards
// round to zero seconds).
func ffRate(insts uint64, seconds float64) float64 {
	if insts == 0 || seconds <= 0 {
		return 0
	}
	return float64(insts) / seconds
}

// Run simulates one workload per spec and returns its metrics.
func Run(spec RunSpec) (Metrics, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cooperative cancellation: the simulator's cycle
// loop polls ctx, so deadline expiry or cancellation stops the run within
// a few thousand simulated cycles and returns ctx's error.
func RunContext(ctx context.Context, spec RunSpec) (Metrics, error) {
	if err := Validate(spec); err != nil {
		return Metrics{}, err
	}
	w, _ := workload.ByName(spec.Workload)
	cfg, err := coreConfig(spec.Machine)
	if err != nil {
		return Metrics{}, err
	}
	pf, err := predFactory(spec.Predictor)
	if err != nil {
		return Metrics{}, err
	}
	r, err := harness.RunOneCtx(ctx, w, cfg, pf, spec.options())
	if err != nil {
		return Metrics{}, err
	}
	return toMetrics(r), nil
}

// Comparison pairs a predictor run with its baseline.
type Comparison struct {
	Workload string
	Category string
	Base     Metrics
	Pred     Metrics
}

// Speedup is Pred.IPC / Base.IPC.
func (c Comparison) Speedup() float64 {
	if c.Base.IPC == 0 {
		return 1
	}
	return c.Pred.IPC / c.Base.IPC
}

// Compare runs baseline and predictor for one workload.
func Compare(spec RunSpec) (Comparison, error) {
	return CompareContext(context.Background(), spec)
}

// CompareContext is Compare with cooperative cancellation (see
// RunContext); both the baseline and the predictor run honor ctx.
func CompareContext(ctx context.Context, spec RunSpec) (Comparison, error) {
	base := spec
	base.Predictor = PredNone
	b, err := RunContext(ctx, base)
	if err != nil {
		return Comparison{}, err
	}
	p, err := RunContext(ctx, spec)
	if err != nil {
		return Comparison{}, err
	}
	w, _ := workload.ByName(spec.Workload)
	return Comparison{Workload: spec.Workload, Category: string(w.Category), Base: b, Pred: p}, nil
}

// ToRecord flattens a run into the harness report row — the one
// machine-readable schema shared by the experiment drivers, fvpsim -json,
// and scripts plotting either. base may be nil for a standalone run, in
// which case BaseIPC and Speedup are 0 ("no baseline measured").
func ToRecord(spec RunSpec, base *Metrics, pred Metrics) harness.ReportRecord {
	spec = spec.Normalized()
	category := ""
	if w, ok := workload.ByName(spec.Workload); ok {
		category = string(w.Category)
	}
	coreName := string(spec.Machine)
	if cfg, err := coreConfig(spec.Machine); err == nil {
		coreName = cfg.Name
	}
	cycles := float64(pred.Cycles)
	if cycles == 0 {
		cycles = 1
	}
	mem := float64(pred.CycleBreakdown[ooo.CycMemL1] +
		pred.CycleBreakdown[ooo.CycMemL2] +
		pred.CycleBreakdown[ooo.CycMemLLC] +
		pred.CycleBreakdown[ooo.CycMemDRAM] +
		pred.CycleBreakdown[ooo.CycStoreFwd])
	rec := harness.ReportRecord{
		Workload:  spec.Workload,
		Category:  category,
		Core:      coreName,
		Predictor: string(spec.Predictor),
		PredIPC:   pred.IPC,
		Coverage:  pred.Coverage,
		Accuracy:  pred.Accuracy,
		VPFlushes: pred.VPFlushes,
		Retiring:  float64(pred.CycleBreakdown[ooo.CycRetiring]) / cycles,
		MemStall:  mem / cycles,
		Frontend:  float64(pred.CycleBreakdown[ooo.CycFrontend]) / cycles,

		SkippedCycles: pred.SkippedCycles,
		SkipRatio:     float64(pred.SkippedCycles) / cycles,

		WarmupMode:    pred.WarmupMode,
		FFInstsPerSec: pred.FFInstsPerSec,
	}
	if sm := pred.Sampling; sm != nil {
		rec.SampleUnits = sm.Units
		rec.SampledInsts = sm.SampledInsts
		rec.IPCRelCI = sm.IPC.RelCI
	}
	if base != nil {
		rec.BaseIPC = base.IPC
		if base.IPC > 0 {
			rec.Speedup = pred.IPC / base.IPC
		}
	}
	return rec
}

// SuiteSpec describes a suite-wide baseline-vs-predictor sweep. The zero
// value (plus a Predictor) means: full study list, Skylake, default run
// lengths, GOMAXPROCS-wide parallelism.
type SuiteSpec struct {
	// Machine defaults to Skylake.
	Machine Machine `json:"machine,omitempty"`
	// Predictor is the arm compared against the PredNone baseline.
	Predictor Predictor `json:"predictor,omitempty"`
	// WarmupInsts and MeasureInsts default to 100k/300k.
	WarmupInsts  uint64 `json:"warmup_insts,omitempty"`
	MeasureInsts uint64 `json:"measure_insts,omitempty"`
	// WarmupMode applies to every run of the sweep ("" = detailed).
	WarmupMode string `json:"warmup_mode,omitempty"`
	// Workloads restricts the sweep to a subset of the study list; nil or
	// empty selects all 60 entries.
	Workloads []string `json:"workloads,omitempty"`
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// SampleUnits/SampleUnitInsts/SampleTargetCI/SampleSeed apply
	// SMARTS-style sampled simulation to every run of the sweep (see the
	// RunSpec fields of the same names).
	SampleUnits     int     `json:"sample_units,omitempty"`
	SampleUnitInsts uint64  `json:"sample_unit_insts,omitempty"`
	SampleTargetCI  float64 `json:"sample_target_ci,omitempty"`
	SampleSeed      uint64  `json:"sample_seed,omitempty"`
}

// CompareSuiteContext runs baseline and predictor over the suite's
// workloads (in parallel) and returns per-workload comparisons in input
// order. ctx cancellation stops every in-flight simulation within a few
// thousand simulated cycles.
func CompareSuiteContext(ctx context.Context, spec SuiteSpec) ([]Comparison, error) {
	cfg, err := coreConfig(spec.Machine)
	if err != nil {
		return nil, err
	}
	pf, err := predFactory(spec.Predictor)
	if err != nil {
		return nil, err
	}
	if spec.WarmupInsts > MaxWarmupInsts {
		return nil, &InvalidSpecError{Field: "warmup_insts", Value: spec.WarmupInsts, Limit: MaxWarmupInsts}
	}
	if spec.MeasureInsts > MaxMeasureInsts {
		return nil, &InvalidSpecError{Field: "measure_insts", Value: spec.MeasureInsts, Limit: MaxMeasureInsts}
	}
	switch spec.WarmupMode {
	case "", string(harness.WarmupDetailed), string(harness.WarmupFunctional):
	default:
		return nil, unknownName("warmup mode", spec.WarmupMode, harness.WarmupModes())
	}
	ws := workload.All()
	if len(spec.Workloads) > 0 {
		ws = make([]workload.Workload, len(spec.Workloads))
		for i, name := range spec.Workloads {
			w, ok := workload.ByName(name)
			if !ok {
				return nil, unknownName("workload", name, workloadNames())
			}
			ws[i] = w
		}
	}
	runSpec := RunSpec{WarmupInsts: spec.WarmupInsts, MeasureInsts: spec.MeasureInsts,
		WarmupMode:  spec.WarmupMode,
		SampleUnits: spec.SampleUnits, SampleUnitInsts: spec.SampleUnitInsts,
		SampleTargetCI: spec.SampleTargetCI, SampleSeed: spec.SampleSeed}
	if err := validateSampling(runSpec); err != nil {
		return nil, err
	}
	opt := runSpec.options()
	opt.Parallelism = spec.Parallelism
	pairs, err := harness.RunComparisonCtx(ctx, ws, cfg, pf, opt)
	if err != nil {
		return nil, err
	}
	out := make([]Comparison, len(pairs))
	for i, p := range pairs {
		out[i] = Comparison{
			Workload: p.Base.Workload,
			Category: string(p.Base.Category),
			Base:     toMetrics(p.Base),
			Pred:     toMetrics(p.Pred),
		}
	}
	return out, nil
}

// CompareSuite runs baseline and predictor over every workload (in
// parallel) and returns per-workload comparisons in study-list order.
//
// Deprecated: Use CompareSuiteContext, which takes a SuiteSpec (self-
// describing fields instead of four positional numbers) and supports
// cancellation and workload subsets. This wrapper remains for source
// compatibility.
func CompareSuite(machine Machine, pred Predictor, warmup, measure uint64) ([]Comparison, error) {
	return CompareSuiteContext(context.Background(), SuiteSpec{
		Machine:      machine,
		Predictor:    pred,
		WarmupInsts:  warmup,
		MeasureInsts: measure,
	})
}

// Geomean returns the geometric-mean speedup of comparisons.
func Geomean(cs []Comparison) float64 {
	pairs := make([]harness.Pair, len(cs))
	for i, c := range cs {
		pairs[i] = harness.Pair{
			Base: harness.Result{IPC: c.Base.IPC},
			Pred: harness.Result{IPC: c.Pred.IPC},
		}
	}
	return harness.Geomean(pairs)
}

// ExperimentInfo names one paper artifact that can be regenerated.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists every reproducible table and figure.
func Experiments() []ExperimentInfo {
	es := harness.Experiments()
	out := make([]ExperimentInfo, len(es))
	for i, e := range es {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// RunExperiment regenerates one table/figure, writing its report to out.
// warmup/measure of 0 select the defaults (100k/300k instructions).
func RunExperiment(id string, out io.Writer, warmup, measure uint64) error {
	return RunExperimentContext(context.Background(), id, out, warmup, measure)
}

// RunExperimentContext is RunExperiment with cooperative cancellation:
// every simulation behind the experiment polls ctx, and the first
// cancellation error is returned (the partial report already written to
// out should be discarded).
func RunExperimentContext(ctx context.Context, id string, out io.Writer, warmup, measure uint64) error {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		return fmt.Errorf("fvp: unknown experiment %q (see fvp.Experiments)", id)
	}
	opt := RunSpec{WarmupInsts: warmup, MeasureInsts: measure}.options()
	r := harness.NewRunnerCtx(ctx, opt)
	if err := e.Run(r, out); err != nil {
		return err
	}
	return r.Err()
}

// StorageItem is a row of the Table-I budget breakdown.
type StorageItem struct {
	Name    string
	Entries int
	Bits    int
}

// FVPStorage returns the Table-I storage breakdown of the default FVP
// configuration (≈1.2 KB total).
func FVPStorage() []StorageItem {
	f := core.New(core.DefaultConfig())
	items := f.StorageBreakdown()
	out := make([]StorageItem, len(items))
	for i, it := range items {
		out[i] = StorageItem{Name: it.Name, Entries: it.Entries, Bits: it.Bits}
	}
	return out
}

// BuildWorkloadSource returns a fresh instruction source plus the initial
// memory image for a named workload — the low-level hook for users driving
// internal tooling (e.g. cmd/tracegen) or custom analyses over the
// functional trace without the timing model.
func BuildWorkloadSource(name string) (*prog.Exec, *prog.Memory, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, nil, unknownName("workload", name, workloadNames())
	}
	p := w.Build()
	return prog.NewExec(p), p.BuildMemory(), nil
}

// ensure the façade's predictor names stay in sync with the framework.
var _ vp.Predictor = (*core.FVP)(nil)
