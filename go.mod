module fvp

go 1.22
