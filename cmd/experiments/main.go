// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id fig6            # one artifact
//	experiments -all                # everything (slow)
//	experiments -list               # show available artifacts
//	experiments -id fig10 -insts 500000 -warmup 200000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"fvp"
)

// writeSuiteCSV dumps the per-workload FVP comparison as CSV for plotting.
func writeSuiteCSV(ctx context.Context, path string, machine fvp.Machine, warmup, insts uint64) error {
	cs, err := fvp.CompareSuiteContext(ctx, fvp.SuiteSpec{
		Machine:      machine,
		Predictor:    fvp.PredFVP,
		WarmupInsts:  warmup,
		MeasureInsts: insts,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "workload,category,base_ipc,fvp_ipc,speedup,coverage")
	for _, c := range cs {
		fmt.Fprintf(f, "%s,%s,%.4f,%.4f,%.4f,%.4f\n",
			c.Workload, c.Category, c.Base.IPC, c.Pred.IPC, c.Speedup(), c.Pred.Coverage)
	}
	return nil
}

func main() {
	var (
		id     = flag.String("id", "", "experiment id (fig6, table1, epoch, ...)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiments")
		warmup = flag.Uint64("warmup", 0, "warmup instructions per run (0 = default 100k)")
		insts  = flag.Uint64("insts", 0, "measured instructions per run (0 = default 300k)")
		csv    = flag.String("csv", "", "write the per-workload FVP comparison (Fig 8 data) to this CSV file")
		prof   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	)
	flag.Parse()

	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Ctrl-C stops the in-flight simulations cooperatively instead of
	// leaving a half-written artifact behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *csv != "" {
		if err := writeSuiteCSV(ctx, *csv, fvp.Skylake, *warmup, *insts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csv)
		return
	}

	if *list || (!*all && *id == "") {
		fmt.Println("experiments:")
		for _, e := range fvp.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(eid, title string) {
		fmt.Printf("==== %s — %s ====\n", eid, title)
		start := time.Now()
		if err := fvp.RunExperimentContext(ctx, eid, os.Stdout, *warmup, *insts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *all {
		for _, e := range fvp.Experiments() {
			run(e.ID, e.Title)
		}
		return
	}
	for _, e := range fvp.Experiments() {
		if e.ID == *id {
			run(e.ID, e.Title)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
	os.Exit(1)
}
