// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id fig6            # one artifact
//	experiments -all                # everything (slow)
//	experiments -list               # show available artifacts
//	experiments -id fig10 -insts 500000 -warmup 200000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"fvp"
)

// writeSuiteCSV dumps the per-workload FVP comparison as CSV for plotting.
// With sampling enabled each arm is a sampled estimate and the rows carry
// the IPC confidence intervals alongside the point values.
func writeSuiteCSV(ctx context.Context, path string, machine fvp.Machine, warmup, insts uint64, sampUnits int, sampCI float64, sampSeed uint64) error {
	cs, err := fvp.CompareSuiteContext(ctx, fvp.SuiteSpec{
		Machine:        machine,
		Predictor:      fvp.PredFVP,
		WarmupInsts:    warmup,
		MeasureInsts:   insts,
		SampleUnits:    sampUnits,
		SampleTargetCI: sampCI,
		SampleSeed:     sampSeed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "workload,category,base_ipc,fvp_ipc,speedup,coverage,base_ipc_rel_ci,fvp_ipc_rel_ci")
	for _, c := range cs {
		var baseCI, predCI float64
		if c.Base.Sampling != nil {
			baseCI = c.Base.Sampling.IPC.RelCI
		}
		if c.Pred.Sampling != nil {
			predCI = c.Pred.Sampling.IPC.RelCI
		}
		fmt.Fprintf(f, "%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			c.Workload, c.Category, c.Base.IPC, c.Pred.IPC, c.Speedup(), c.Pred.Coverage, baseCI, predCI)
	}
	return nil
}

func main() {
	var (
		id     = flag.String("id", "", "experiment id (fig6, table1, epoch, ...)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiments")
		warmup = flag.Uint64("warmup", 0, "warmup instructions per run (0 = default 100k)")
		insts  = flag.Uint64("insts", 0, "measured instructions per run (0 = default 300k)")
		csv    = flag.String("csv", "", "write the per-workload FVP comparison (Fig 8 data) to this CSV file")
		sampU  = flag.Int("sample-units", 0, "with -csv: estimate each run from this many detailed sample units (0 = full detail)")
		sampCI = flag.Float64("sample-ci", 0, "with -csv: target relative 95% IPC CI half-width, growing units until met (0 = off)")
		sampS  = flag.Uint64("sample-seed", 0, "with -csv: sampling phase seed")
		prof   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	)
	flag.Parse()

	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Ctrl-C stops the in-flight simulations cooperatively instead of
	// leaving a half-written artifact behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *csv != "" {
		if err := writeSuiteCSV(ctx, *csv, fvp.Skylake, *warmup, *insts, *sampU, *sampCI, *sampS); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csv)
		return
	}

	if *list || (!*all && *id == "") {
		fmt.Println("experiments:")
		for _, e := range fvp.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(eid, title string) {
		fmt.Printf("==== %s — %s ====\n", eid, title)
		start := time.Now()
		if err := fvp.RunExperimentContext(ctx, eid, os.Stdout, *warmup, *insts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *all {
		for _, e := range fvp.Experiments() {
			run(e.ID, e.Title)
		}
		return
	}
	for _, e := range fvp.Experiments() {
		if e.ID == *id {
			run(e.ID, e.Title)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
	os.Exit(1)
}
