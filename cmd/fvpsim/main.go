// Command fvpsim runs one workload on one simulated machine with one value
// predictor and prints the measured metrics, optionally against the
// no-prediction baseline.
//
// Usage:
//
//	fvpsim -workload omnetpp -machine skylake -predictor fvp -compare
//	fvpsim -workload omnetpp -predictor fvp -json
//	fvpsim -workload omnetpp -predictor fvp -trace trace.json
//	fvpsim -workload omnetpp -predictor fvp -intervals ipc.json
//	fvpsim -workload omnetpp -predictor fvp -warmup-mode functional -regions 4
//	fvpsim -workload omnetpp -predictor fvp -insts 10000000 -sample-units 16
//	fvpsim -workload omnetpp -predictor fvp -insts 10000000 -sample-ci 0.02
//	fvpsim -suite -predictor fvp -workload omnetpp,mcf,gcc
//	fvpsim -server http://localhost:8080 -workload omnetpp -predictor fvp
//	fvpsim -list
//
// With -server the simulation is submitted to a running fvpd daemon
// (sharing its result cache) instead of executing locally. With -json the
// result is emitted as one machine-readable report row (the same schema
// the experiment drivers write); without -compare the baseline fields are
// zero.
//
// With -trace the run records per-instruction pipeline timelines for the
// first -trace-insts instructions of the measured region and writes
// Chrome trace-event JSON — open the file at https://ui.perfetto.dev to
// see fetch→rename→issue→complete→retire slices per instruction, with
// value-prediction and flush events marked. With -intervals the run's
// interval telemetry (IPC, coverage, stall breakdown, occupancies over
// time) is written as a JSON array. Both are local-only: they read the
// simulated machine directly and cannot cross the fvpd wire.
//
// With -sample-units or -sample-ci the measured region is estimated by
// SMARTS-style statistical sampling instead of simulated in full detail:
// K systematic sample units run in detail (in parallel, up to -parallel
// workers) and the gaps fast-forward functionally. The output then carries
// a 95% confidence interval on IPC; -sample-ci 0.02 grows the unit count
// until the interval is within ±2%. Sampling pays off when -insts is
// paper-scale (millions) — see EXPERIMENTS.md for interpreting the CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fvp"
	"fvp/internal/simd/client"
)

func main() {
	var (
		wl         = flag.String("workload", "omnetpp", "workload name (see -list); with -suite, a comma-separated subset or \"all\"")
		machine    = flag.String("machine", "skylake", "skylake | skylake2x")
		pred       = flag.String("predictor", "fvp", "predictor configuration (see -list)")
		warmup     = flag.Uint64("warmup", 100_000, "warmup instructions")
		insts      = flag.Uint64("insts", 300_000, "measured instructions")
		warmMode   = flag.String("warmup-mode", "", "detailed | functional (default detailed; functional fast-forwards warmup at O(insts))")
		regions    = flag.Int("regions", 0, "split the measured region into this many checkpointed slices simulated in parallel (0/1 = monolithic)")
		parallel   = flag.Int("parallel", 0, "concurrent region/sample-unit workers (with -regions or -sample-units) or concurrent workloads (with -suite); 0 = GOMAXPROCS")
		sampUnits  = flag.Int("sample-units", 0, "estimate the measured region from this many detailed sample units instead of full detail (0 = off)")
		sampCI     = flag.Float64("sample-ci", 0, "target relative 95% CI half-width on IPC, e.g. 0.02 for ±2%; grows the unit count until met (0 = off)")
		sampSeed   = flag.Uint64("sample-seed", 0, "sampling phase seed (results are deterministic per seed)")
		compare    = flag.Bool("compare", false, "also run the baseline and report speedup")
		suite      = flag.Bool("suite", false, "run baseline-vs-predictor over the workloads and report per-workload speedups")
		jsonOut    = flag.Bool("json", false, "emit the result as one JSON report row")
		tracePath  = flag.String("trace", "", "write a Chrome/Perfetto pipeline trace of the measured region to this file")
		traceInsts = flag.Int("trace-insts", 0, "instructions captured by -trace (0 = default window)")
		ivPath     = flag.String("intervals", "", "write interval telemetry (JSON array of samples) to this file")
		interval   = flag.Uint64("interval", 0, "sampling period in cycles for -intervals (0 = default)")
		server     = flag.String("server", "", "fvpd base URL; submit there instead of simulating locally")
		tenant     = flag.String("tenant", "", "tenant ID to submit runs under (with -server; subject to the daemon's quotas)")
		clusterOn  = flag.Bool("cluster", false, "print the server's cluster membership and forwarding health, then exit (with -server)")
		latency    = flag.Bool("latency", false, "print the server's request-latency p50/p99 (fvpd_request_seconds), then exit (with -server)")
		slo        = flag.Duration("slo", 0, "latency SLO target to judge -latency output against (0 = report only)")
		list       = flag.Bool("list", false, "list workloads and predictors, then exit")
	)
	flag.Parse()

	if *latency {
		if *server == "" {
			fail(fmt.Errorf("-latency needs -server"))
		}
		sum, err := client.New(*server).RequestLatency(context.Background())
		if err != nil {
			fail(err)
		}
		fmt.Printf("requests %d  mean %s  p50 %s  p99 %s\n",
			sum.Count, fmtSecs(sum.Mean()), fmtSecs(sum.P50), fmtSecs(sum.P99))
		if *slo > 0 {
			verdict := "MET"
			if sum.P99 > slo.Seconds() {
				verdict = "MISSED"
			}
			fmt.Printf("SLO %s: %s (p99 %s)\n", *slo, verdict, fmtSecs(sum.P99))
			if verdict == "MISSED" {
				os.Exit(1)
			}
		}
		return
	}

	if *clusterOn {
		if *server == "" {
			fail(fmt.Errorf("-cluster needs -server"))
		}
		st, err := client.New(*server).Cluster(context.Background())
		if err != nil {
			fail(err)
		}
		if st.Self == "" {
			fmt.Println("single-node deployment (no -peers)")
			return
		}
		fmt.Printf("node %s, %d vnodes/node\n", st.Self, st.VNodes)
		for _, p := range st.Peers {
			mark := " "
			if p.Self {
				mark = "*"
			}
			fmt.Printf("%s %-12s %-24s health=%-9s inflight=%d forwarded=%d errors=%d",
				mark, p.ID, p.URL, p.Health, p.Inflight, p.Forwarded, p.ForwardErrors)
			if p.LastError != "" {
				fmt.Printf(" last-error=%q", p.LastError)
			}
			fmt.Println()
		}
		return
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range fvp.Workloads() {
			fmt.Printf("  %-18s %s\n", w.Name, w.Category)
		}
		fmt.Println("predictors:")
		for _, p := range fvp.Predictors() {
			bytes, _ := fvp.StorageBytes(p)
			fmt.Printf("  %-18s %5d B\n", p, bytes)
		}
		return
	}
	ctx := context.Background()

	if *suite {
		runSuite(ctx, *wl, *machine, *pred, *warmup, *insts, *warmMode, *parallel, *sampUnits, *sampCI, *sampSeed)
		return
	}

	spec := fvp.RunSpec{
		Workload:       *wl,
		Machine:        fvp.Machine(*machine),
		Predictor:      fvp.Predictor(*pred),
		WarmupInsts:    *warmup,
		MeasureInsts:   *insts,
		WarmupMode:     *warmMode,
		Regions:        *regions,
		RegionWorkers:  *parallel,
		SampleUnits:    *sampUnits,
		SampleTargetCI: *sampCI,
		SampleSeed:     *sampSeed,
	}

	run := fvp.RunContext
	if *server != "" {
		if *tracePath != "" || *ivPath != "" {
			fail(fmt.Errorf("-trace and -intervals are local-only (they read the simulated machine directly); drop -server"))
		}
		c := client.New(*server)
		run = func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			return c.RunWith(ctx, spec, client.SubmitOptions{Tenant: *tenant})
		}
	}

	var trace *fvp.PipeTrace
	if *tracePath != "" {
		trace = fvp.NewPipeTrace(*traceInsts)
		spec.Tracer = trace
	}
	var ivLog *intervalLog
	if *ivPath != "" {
		ivLog = &intervalLog{}
		spec.Observer = ivLog
		spec.ObserverInterval = *interval
	}

	var base *fvp.Metrics
	if *compare {
		baseSpec := spec
		baseSpec.Predictor = fvp.PredNone
		baseSpec.Tracer = nil // taps observe the predictor run only
		baseSpec.Observer = nil
		b, err := run(ctx, baseSpec)
		if err != nil {
			fail(err)
		}
		base = &b
	}
	m, err := run(ctx, spec)
	if err != nil {
		fail(err)
	}

	if trace != nil {
		if err := writeTrace(*tracePath, trace); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvpsim: wrote %d-instruction pipeline trace to %s (open at ui.perfetto.dev)\n",
			trace.Insts(), *tracePath)
	}
	if ivLog != nil {
		if err := writeJSONFile(*ivPath, ivLog.samples); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvpsim: wrote %d interval samples to %s\n", len(ivLog.samples), *ivPath)
	}

	if *jsonOut {
		rec := fvp.ToRecord(spec, base, m)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fail(err)
		}
		return
	}

	if *compare {
		c := fvp.Comparison{Workload: *wl, Base: *base, Pred: m}
		fmt.Printf("%s on %s (%s):\n", *wl, *machine, *pred)
		fmt.Printf("  baseline IPC  %.3f\n", c.Base.IPC)
		fmt.Printf("  predictor IPC %.3f  (%+.2f%%)\n", c.Pred.IPC, (c.Speedup()-1)*100)
		fmt.Printf("  coverage      %.1f%% of loads, accuracy %.2f%%, flushes %d\n",
			c.Pred.Coverage*100, c.Pred.Accuracy*100, c.Pred.VPFlushes)
		fmt.Printf("  loads by level (base) L1=%d L2=%d LLC=%d MEM=%d\n",
			c.Base.LoadsByLevel[0], c.Base.LoadsByLevel[1], c.Base.LoadsByLevel[2], c.Base.LoadsByLevel[3])
		printSampling(m, *insts)
		return
	}
	fmt.Printf("%s on %s (%s): IPC=%.3f cycles=%d insts=%d loads=%d\n",
		*wl, *machine, *pred, m.IPC, m.Cycles, m.Insts, m.Loads)
	printSampling(m, *insts)
	fmt.Printf("  coverage %.1f%% accuracy %.2f%% vp-flushes %d branch-mispredicts %d forwards %d\n",
		m.Coverage*100, m.Accuracy*100, m.VPFlushes, m.BranchMispredicts, m.Forwards)
	fmt.Printf("  loads by level L1=%d L2=%d LLC=%d MEM=%d\n",
		m.LoadsByLevel[0], m.LoadsByLevel[1], m.LoadsByLevel[2], m.LoadsByLevel[3])
	fmt.Printf("  cycle breakdown:")
	names := fvp.CycleBucketNames()
	for i, n := range m.CycleBreakdown {
		if n == 0 {
			continue
		}
		fmt.Printf(" %s=%.0f%%", names[i], 100*float64(n)/float64(m.Cycles))
	}
	fmt.Println()
}

// printSampling appends the sampled run's confidence interval to the
// human-readable output.
func printSampling(m fvp.Metrics, measure uint64) {
	s := m.Sampling
	if s == nil {
		return
	}
	fmt.Printf("  sampled: %d units × %d insts (%d of %d in detail), IPC ±%.2f%% (95%% CI)",
		s.Units, s.UnitInsts, s.SampledInsts, measure, s.IPC.RelCI*100)
	if s.TargetCI > 0 && !s.Converged {
		fmt.Printf("  [NOT CONVERGED to ±%.2f%% after %d rounds]", s.TargetCI*100, s.Rounds)
	}
	fmt.Println()
}

// runSuite is the -suite mode: baseline-vs-predictor across workloads.
func runSuite(ctx context.Context, wl, machine, pred string, warmup, insts uint64, warmMode string, parallel, sampUnits int, sampCI float64, sampSeed uint64) {
	spec := fvp.SuiteSpec{
		Machine:        fvp.Machine(machine),
		Predictor:      fvp.Predictor(pred),
		WarmupInsts:    warmup,
		MeasureInsts:   insts,
		WarmupMode:     warmMode,
		Parallelism:    parallel,
		SampleUnits:    sampUnits,
		SampleTargetCI: sampCI,
		SampleSeed:     sampSeed,
	}
	if wl != "" && wl != "all" {
		spec.Workloads = strings.Split(wl, ",")
	}
	cs, err := fvp.CompareSuiteContext(ctx, spec)
	if err != nil {
		fail(err)
	}
	sampled := sampUnits != 0 || sampCI != 0
	fmt.Printf("%-18s %-10s %10s %10s %9s %9s", "workload", "category", "base IPC", "pred IPC", "speedup", "coverage")
	if sampled {
		fmt.Printf(" %9s", "ipc CI")
	}
	fmt.Println()
	for _, c := range cs {
		fmt.Printf("%-18s %-10s %10.3f %10.3f %+8.2f%% %8.1f%%",
			c.Workload, c.Category, c.Base.IPC, c.Pred.IPC, (c.Speedup()-1)*100, c.Pred.Coverage*100)
		if sampled && c.Pred.Sampling != nil {
			fmt.Printf("  ±%.2f%%", c.Pred.Sampling.IPC.RelCI*100)
		}
		fmt.Println()
	}
	fmt.Printf("geomean speedup %+.2f%%\n", (fvp.Geomean(cs)-1)*100)
}

// intervalLog collects the run's interval telemetry for -intervals.
type intervalLog struct {
	samples []fvp.IntervalMetrics
}

func (l *intervalLog) OnInterval(m fvp.IntervalMetrics) { l.samples = append(l.samples, m) }

func writeTrace(path string, tr *fvp.PipeTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fmtSecs renders a latency in the most readable unit.
func fmtSecs(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fvpsim:", err)
	os.Exit(1)
}
