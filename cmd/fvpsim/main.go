// Command fvpsim runs one workload on one simulated machine with one value
// predictor and prints the measured metrics, optionally against the
// no-prediction baseline.
//
// Usage:
//
//	fvpsim -workload omnetpp -machine skylake -predictor fvp -compare
//	fvpsim -workload omnetpp -predictor fvp -json
//	fvpsim -server http://localhost:8080 -workload omnetpp -predictor fvp
//	fvpsim -list
//
// With -server the simulation is submitted to a running fvpd daemon
// (sharing its result cache) instead of executing locally. With -json the
// result is emitted as one machine-readable report row (the same schema
// the experiment drivers write); without -compare the baseline fields are
// zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fvp"
	"fvp/internal/simd/client"
)

func main() {
	var (
		wl      = flag.String("workload", "omnetpp", "workload name (see -list)")
		machine = flag.String("machine", "skylake", "skylake | skylake2x")
		pred    = flag.String("predictor", "fvp", "predictor configuration (see -list)")
		warmup  = flag.Uint64("warmup", 100_000, "warmup instructions")
		insts   = flag.Uint64("insts", 300_000, "measured instructions")
		compare = flag.Bool("compare", false, "also run the baseline and report speedup")
		jsonOut = flag.Bool("json", false, "emit the result as one JSON report row")
		server  = flag.String("server", "", "fvpd base URL; submit there instead of simulating locally")
		list    = flag.Bool("list", false, "list workloads and predictors, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range fvp.Workloads() {
			fmt.Printf("  %-18s %s\n", w.Name, w.Category)
		}
		fmt.Println("predictors:")
		for _, p := range fvp.Predictors() {
			bytes, _ := fvp.StorageBytes(p)
			fmt.Printf("  %-18s %5d B\n", p, bytes)
		}
		return
	}

	spec := fvp.RunSpec{
		Workload:     *wl,
		Machine:      fvp.Machine(*machine),
		Predictor:    fvp.Predictor(*pred),
		WarmupInsts:  *warmup,
		MeasureInsts: *insts,
	}

	run := fvp.RunContext
	if *server != "" {
		run = client.New(*server).Run
	}
	ctx := context.Background()

	var base *fvp.Metrics
	if *compare {
		baseSpec := spec
		baseSpec.Predictor = fvp.PredNone
		b, err := run(ctx, baseSpec)
		if err != nil {
			fail(err)
		}
		base = &b
	}
	m, err := run(ctx, spec)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		rec := fvp.ToRecord(spec, base, m)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fail(err)
		}
		return
	}

	if *compare {
		c := fvp.Comparison{Workload: *wl, Base: *base, Pred: m}
		fmt.Printf("%s on %s (%s):\n", *wl, *machine, *pred)
		fmt.Printf("  baseline IPC  %.3f\n", c.Base.IPC)
		fmt.Printf("  predictor IPC %.3f  (%+.2f%%)\n", c.Pred.IPC, (c.Speedup()-1)*100)
		fmt.Printf("  coverage      %.1f%% of loads, accuracy %.2f%%, flushes %d\n",
			c.Pred.Coverage*100, c.Pred.Accuracy*100, c.Pred.VPFlushes)
		fmt.Printf("  loads by level (base) L1=%d L2=%d LLC=%d MEM=%d\n",
			c.Base.LoadsByLevel[0], c.Base.LoadsByLevel[1], c.Base.LoadsByLevel[2], c.Base.LoadsByLevel[3])
		return
	}
	fmt.Printf("%s on %s (%s): IPC=%.3f cycles=%d insts=%d loads=%d\n",
		*wl, *machine, *pred, m.IPC, m.Cycles, m.Insts, m.Loads)
	fmt.Printf("  coverage %.1f%% accuracy %.2f%% vp-flushes %d branch-mispredicts %d forwards %d\n",
		m.Coverage*100, m.Accuracy*100, m.VPFlushes, m.BranchMispredicts, m.Forwards)
	fmt.Printf("  loads by level L1=%d L2=%d LLC=%d MEM=%d\n",
		m.LoadsByLevel[0], m.LoadsByLevel[1], m.LoadsByLevel[2], m.LoadsByLevel[3])
	fmt.Printf("  cycle breakdown:")
	names := fvp.CycleBucketNames()
	for i, n := range m.CycleBreakdown {
		if n == 0 {
			continue
		}
		fmt.Printf(" %s=%.0f%%", names[i], 100*float64(n)/float64(m.Cycles))
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fvpsim:", err)
	os.Exit(1)
}
