// Command tracegen dumps a workload's dynamic micro-op trace to the binary
// trace format (internal/trace) or prints summary statistics / a
// disassembly-style listing of the first instructions.
//
// Usage:
//
//	tracegen -workload cassandra -n 1000000 -o cassandra.fvptrace
//	tracegen -workload mcf -n 50000 -stats
//	tracegen -workload omnetpp -n 20 -print
//	tracegen -suite traces/ -n 30000
//
// -suite dumps every golden-matrix workload (workload.GoldenMatrix) to
// <dir>/<name>.fvptrace in one invocation — the inputs for the replay
// bench path and the CI replay matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fvp"
	"fvp/internal/isa"
	"fvp/internal/prog"
	"fvp/internal/trace"
	"fvp/internal/workload"
)

// dumpSuite writes n instructions of every golden-matrix workload to
// dir/<name>.fvptrace.
func dumpSuite(dir string, n uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range workload.GoldenMatrix() {
		w, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown golden workload %q", name)
		}
		p := w.Build()
		data, got, err := trace.Record(prog.NewExec(p), n)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(dir, name+".fvptrace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d instructions (%d bytes, %.2f B/inst) to %s\n",
			got, len(data), float64(len(data))/float64(got), path)
	}
	return nil
}

func main() {
	var (
		wl    = flag.String("workload", "omnetpp", "workload name")
		n     = flag.Uint64("n", 1_000_000, "instructions to generate")
		out   = flag.String("o", "", "output trace file (binary format)")
		stats = flag.Bool("stats", false, "print instruction-mix statistics")
		list  = flag.Bool("print", false, "print each instruction (use small -n)")
		suite = flag.String("suite", "", "dump all golden-matrix workloads to this directory (-n insts each)")
	)
	flag.Parse()

	if *suite != "" {
		if err := dumpSuite(*suite, *n); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	ex, _, err := fvp.BuildWorkloadSource(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var tw *trace.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		tw, err = trace.NewWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}

	var mix [isa.NumOps]uint64
	var taken, branches uint64
	var d isa.DynInst
	var done uint64
	for done < *n && ex.Next(&d) {
		done++
		mix[d.Op]++
		if d.Op.IsBranch() {
			branches++
			if d.Taken {
				taken++
			}
		}
		if *list {
			fmt.Println(d.String())
		}
		if tw != nil {
			if err := tw.Append(&d); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d instructions to %s\n", done, *out)
	}
	if *stats {
		fmt.Printf("%s: %d instructions\n", *wl, done)
		for op := 0; op < isa.NumOps; op++ {
			if mix[op] == 0 {
				continue
			}
			fmt.Printf("  %-6s %9d (%.1f%%)\n", isa.Op(op), mix[op],
				100*float64(mix[op])/float64(done))
		}
		if branches > 0 {
			fmt.Printf("  taken branches: %.1f%%\n", 100*float64(taken)/float64(branches))
		}
	}
}
