// Command fvpbench runs a fixed core-performance benchmark matrix and
// writes BENCH_core.json, the repo's simulator-performance trajectory
// artifact. It measures two things:
//
//  1. The steady-state OOO cycle loop (the same measurement as
//     BenchmarkCoreCycleLoop in bench_test.go): simulated instructions per
//     wall-clock second and heap allocations per 50k-instruction chunk,
//     compared against the recorded pre-event-driven-scheduler reference.
//  2. The same loop on an mcf-class DRAM-bound pointer chaser, once with
//     idle-cycle elision (the default build) and once on the ticking path
//     (Config.DisableIdleElision), recording the elision speedup and the
//     skip_ratio — the fraction of simulated cycles covered by clock jumps.
//  3. A full-suite FVP-vs-baseline sweep: aggregate simulation throughput
//     (sim MIPS across all parallel runs) and the geomean IPC speedup —
//     the paper's headline metric — so a perf regression that also changes
//     results is visible in the same artifact. Each per-workload row now
//     carries its skip_ratio, so the artifact shows which workload
//     categories the elision fast path accelerates.
//
// Usage:
//
//	fvpbench                       # full matrix -> BENCH_core.json
//	fvpbench -quick                # 8-workload suite, fewer cycle-loop ops
//	fvpbench -out /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fvp/internal/core"
	"fvp/internal/harness"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/workload"
)

// cycleLoopInstsPerOp matches BenchmarkCoreCycleLoop so the numbers are
// directly comparable with `go test -bench=CoreCycleLoop`.
const cycleLoopInstsPerOp = 50_000

// memBound names the DRAM-bound cycle-loop workload and matches
// BenchmarkCoreCycleLoopMemBound (smaller chunks: mcf-class IPC is ~0.08,
// so 20k instructions is already ~250k simulated cycles).
const (
	memBoundWorkload   = "mcf-17"
	memBoundInstsPerOp = 20_000
)

// reference is the cycle-loop measurement recorded on the development host
// immediately before the event-driven scheduler landed (per-cycle full-window
// scans, no core reuse). Absolute inst/s is host-dependent; allocs/op is not,
// which is why both are recorded.
var reference = CycleLoop{
	Workload:    "omnetpp",
	InstsPerOp:  cycleLoopInstsPerOp,
	InstPerSec:  1_636_350,
	AllocsPerOp: 51_813,
	BytesPerOp:  14_460_000,
	Note:        "pre-event-driven scheduler (full-window scans), Xeon @ 2.10GHz",
}

// CycleLoop is the steady-state cycle-loop measurement. SkipRatio is the
// fraction of simulated cycles covered by idle-elision clock jumps during
// the timed region (0 on the ticking path).
type CycleLoop struct {
	Workload    string  `json:"workload"`
	InstsPerOp  uint64  `json:"insts_per_op"`
	Ops         int     `json:"ops,omitempty"`
	InstPerSec  float64 `json:"inst_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SkipRatio   float64 `json:"skip_ratio"`
	Note        string  `json:"note,omitempty"`
}

// Suite is the full-sweep measurement.
type Suite struct {
	Core         string            `json:"core"`
	Workloads    int               `json:"workloads"`
	WarmupInsts  uint64            `json:"warmup_insts"`
	MeasureInsts uint64            `json:"measure_insts"`
	WallSeconds  float64           `json:"wall_seconds"`
	SimMIPS      float64           `json:"sim_mips"`
	GeomeanFVP   float64           `json:"geomean_fvp_speedup"`
	PerWorkload  []WorkloadSpeedup `json:"per_workload"`
}

// WorkloadSpeedup is one row of the sweep. SkipRatio is taken from the FVP
// run: high values mark the memory-bound workloads where idle-cycle elision
// absorbs most of the simulated time.
type WorkloadSpeedup struct {
	Name      string  `json:"name"`
	BaseIPC   float64 `json:"base_ipc"`
	FVPIPC    float64 `json:"fvp_ipc"`
	Speedup   float64 `json:"speedup"`
	SkipRatio float64 `json:"skip_ratio"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	CycleLoop          CycleLoop `json:"core_cycle_loop"`
	Reference          CycleLoop `json:"reference"`
	SpeedupVsReference float64   `json:"speedup_vs_reference"`
	AllocsReduction    float64   `json:"allocs_reduction_factor"`

	// The mem-bound loop measured with elision on and again on the ticking
	// path; MemBoundElisionSpeedup is their inst/s ratio (acceptance floor
	// for the idle-elision fast path is 1.5x).
	CycleLoopMemBound        CycleLoop `json:"core_cycle_loop_mem_bound"`
	CycleLoopMemBoundTicking CycleLoop `json:"core_cycle_loop_mem_bound_ticking"`
	MemBoundElisionSpeedup   float64   `json:"mem_bound_elision_speedup"`

	Suite Suite `json:"suite"`
}

// measureCycleLoop reproduces BenchmarkCoreCycleLoop outside the testing
// package: one core built and warmed outside the timed region, each op
// advancing the same simulation by another chunk of retired instructions.
// disableElide forces the per-cycle ticking path even on the default build
// (the two paths produce bit-identical RunStats; see internal/ooo/elide.go).
func measureCycleLoop(wlName string, instsPerOp uint64, ops int, disableElide bool) CycleLoop {
	w, ok := workload.ByName(wlName)
	if !ok {
		fatalf("workload %q not found", wlName)
	}
	p := w.Build()
	ex := prog.NewExec(p)
	cfg := ooo.Skylake()
	cfg.DisableIdleElision = disableElide
	c := ooo.New(cfg, core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st0 := c.Run(instsPerOp) // reach steady state before timing
	st1 := st0

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		st1 = c.Run(uint64(i+2) * instsPerOp)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	n := float64(ops)
	cl := CycleLoop{
		Workload:    wlName,
		InstsPerOp:  instsPerOp,
		Ops:         ops,
		InstPerSec:  float64(instsPerOp) * n / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}
	if dc := st1.Cycles - st0.Cycles; dc > 0 {
		cl.SkipRatio = float64(st1.SkippedCycles-st0.SkippedCycles) / float64(dc)
	}
	return cl
}

// measureSuite sweeps FVP vs baseline over ws and reports aggregate
// simulation throughput plus the paper's geomean speedup.
func measureSuite(ws []workload.Workload, opt harness.Options) Suite {
	start := time.Now()
	pairs := harness.RunComparison(ws, ooo.Skylake(), harness.Factory(harness.SpecFVP), opt)
	wall := time.Since(start).Seconds()

	// Two runs (baseline + FVP) per workload, each warmup+measure long.
	simInsts := float64(2*len(ws)) * float64(opt.WarmupInsts+opt.MeasureInsts)
	s := Suite{
		Core:         "Skylake",
		Workloads:    len(ws),
		WarmupInsts:  opt.WarmupInsts,
		MeasureInsts: opt.MeasureInsts,
		WallSeconds:  wall,
		SimMIPS:      simInsts / wall / 1e6,
		GeomeanFVP:   harness.Geomean(pairs),
	}
	for _, p := range pairs {
		row := WorkloadSpeedup{
			Name:    p.Base.Workload,
			BaseIPC: p.Base.IPC,
			FVPIPC:  p.Pred.IPC,
			Speedup: p.Speedup(),
		}
		if p.Pred.Stats.Cycles > 0 {
			row.SkipRatio = float64(p.Pred.Stats.SkippedCycles) / float64(p.Pred.Stats.Cycles)
		}
		s.PerWorkload = append(s.PerWorkload, row)
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fvpbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		out   = flag.String("out", "BENCH_core.json", "output path")
		ops   = flag.Int("ops", 20, "cycle-loop measurement chunks")
		quick = flag.Bool("quick", false, "8-workload suite and fewer chunks")
	)
	flag.Parse()

	ws := workload.All()
	opt := harness.Options{WarmupInsts: 20_000, MeasureInsts: 60_000, ReuseCores: true}
	if *quick {
		ws = ws[:8]
		*ops = 8
	}

	fmt.Printf("fvpbench: cycle loop (%d ops x %d insts on %s)...\n",
		*ops, cycleLoopInstsPerOp, reference.Workload)
	cl := measureCycleLoop(reference.Workload, cycleLoopInstsPerOp, *ops, false)
	fmt.Printf("  %.0f inst/s, %.1f allocs/op, %.0f B/op, skip ratio %.3f\n",
		cl.InstPerSec, cl.AllocsPerOp, cl.BytesPerOp, cl.SkipRatio)

	fmt.Printf("fvpbench: mem-bound cycle loop (%d ops x %d insts on %s, elided vs ticking)...\n",
		*ops, memBoundInstsPerOp, memBoundWorkload)
	mb := measureCycleLoop(memBoundWorkload, memBoundInstsPerOp, *ops, false)
	mbTick := measureCycleLoop(memBoundWorkload, memBoundInstsPerOp, *ops, true)
	mbTick.Note = "ticking path (Config.DisableIdleElision)"
	elisionSpeedup := mb.InstPerSec / mbTick.InstPerSec
	fmt.Printf("  elided %.0f inst/s (skip ratio %.3f) vs ticking %.0f inst/s: %.2fx\n",
		mb.InstPerSec, mb.SkipRatio, mbTick.InstPerSec, elisionSpeedup)

	fmt.Printf("fvpbench: suite sweep (%d workloads x {baseline, FVP})...\n", len(ws))
	suite := measureSuite(ws, opt)
	fmt.Printf("  %.2f sim MIPS aggregate, geomean FVP speedup %.4f, %.1fs wall\n",
		suite.SimMIPS, suite.GeomeanFVP, suite.WallSeconds)

	rep := Report{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		NumCPU:             runtime.NumCPU(),
		CycleLoop:          cl,
		Reference:          reference,
		SpeedupVsReference: cl.InstPerSec / reference.InstPerSec,
		AllocsReduction:    reference.AllocsPerOp / maxf(cl.AllocsPerOp, 1),

		CycleLoopMemBound:        mb,
		CycleLoopMemBoundTicking: mbTick,
		MemBoundElisionSpeedup:   elisionSpeedup,

		Suite: suite,
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("fvpbench: wrote %s (%.2fx vs pre-scheduler reference, allocs %.0fx lower)\n",
		*out, rep.SpeedupVsReference, rep.AllocsReduction)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
