// Command fvpbench runs a fixed core-performance benchmark matrix and
// writes BENCH_core.json, the repo's simulator-performance trajectory
// artifact. It measures two things:
//
//  1. The steady-state OOO cycle loop (the same measurement as
//     BenchmarkCoreCycleLoop in bench_test.go): simulated instructions per
//     wall-clock second and heap allocations per 50k-instruction chunk,
//     compared against the recorded pre-event-driven-scheduler reference.
//     The default input is a packed binary trace replayed from memory; a
//     replay section records the same loop driven by the functional
//     generator, so the artifact shows how much of simulation time was
//     workload generation.
//  2. The same loop on an mcf-class DRAM-bound pointer chaser, once with
//     idle-cycle elision (the default build) and once on the ticking path
//     (Config.DisableIdleElision), recording the elision speedup and the
//     skip_ratio — the fraction of simulated cycles covered by clock jumps.
//  3. A full-suite FVP-vs-baseline sweep: aggregate simulation throughput
//     (sim MIPS across all parallel runs) and the geomean IPC speedup —
//     the paper's headline metric — so a perf regression that also changes
//     results is visible in the same artifact. Each per-workload row now
//     carries its skip_ratio, so the artifact shows which workload
//     categories the elision fast path accelerates.
//  4. The fast-forward subsystem: warmup-phase throughput detailed vs
//     functional (floor 5x), a paper-scale suite pass with each warmup
//     mode (end-to-end wall-clock ratio), and the region-parallel scaling
//     curve (K=1,2,4,8 checkpointed regions on K workers).
//  5. The fvpd store backends: result-record put latency (the disk
//     backend's fsync cost) and service-level cache-hit submit latency,
//     memory vs disk — cache hits must stay fsync-free on both.
//     The service section floods the real HTTP surface of a disk-backed
//     two-node cluster through the non-owner node, once per-request and
//     once with the edge micro-batcher and forward coalescer on,
//     recording sustained submits/sec and client-observed p50/p99 — the
//     batcher's amortization of per-hop forwards, admission, and fsync'd
//     JobStore appends, measured end to end.
//  6. The statistical sampling engine: one paper-scale region measured in
//     full detail and again as a SMARTS-style sampled estimate (speedup
//     floor 10x), plus a sampled suite sweep whose sim MIPS credits the
//     whole estimated region — the two-digit-MIPS headline.
//
// With -gate the freshly measured suite throughputs are compared against a
// recorded BENCH_core.json and the run exits nonzero on a >5% sim MIPS
// drop — the CI perf-regression gate.
//
// Usage:
//
//	fvpbench                       # full matrix -> BENCH_core.json
//	fvpbench -quick                # 8-workload suite, fewer cycle-loop ops
//	fvpbench -quick -gate BENCH_core.json
//	fvpbench -out /tmp/bench.json
//	fvpbench -quick -cpuprofile fvpbench.pprof   # CI flamegraph artifact
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fvp"
	"fvp/internal/cluster"
	"fvp/internal/core"
	"fvp/internal/harness"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/simd"
	"fvp/internal/store"
	"fvp/internal/store/disk"
	"fvp/internal/telemetry"
	"fvp/internal/trace"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// cycleLoopInstsPerOp matches BenchmarkCoreCycleLoop so the numbers are
// directly comparable with `go test -bench=CoreCycleLoop`.
const cycleLoopInstsPerOp = 50_000

// memBound names the DRAM-bound cycle-loop workload and matches
// BenchmarkCoreCycleLoopMemBound (smaller chunks: mcf-class IPC is ~0.08,
// so 20k instructions is already ~250k simulated cycles).
const (
	memBoundWorkload   = "mcf-17"
	memBoundInstsPerOp = 20_000
)

// Fast-forward and region-scaling section parameters. The warmup window
// matches benchWarmInsts in harness/warmup_test.go; the paper-scale suite
// pass uses the DefaultOptions 100k/300k split the acceptance numbers are
// quoted at.
const (
	ffWorkload        = "omnetpp"
	ffWarmInsts       = 100_000
	regionWorkload    = "omnetpp"
	paperWarmInsts    = 100_000
	paperMeasureInsts = 300_000
)

// reference is the cycle-loop measurement recorded on the development host
// immediately before the event-driven scheduler landed (per-cycle full-window
// scans, no core reuse). Absolute inst/s is host-dependent; allocs/op is not,
// which is why both are recorded.
var reference = CycleLoop{
	Workload:    "omnetpp",
	InstsPerOp:  cycleLoopInstsPerOp,
	InstPerSec:  1_636_350,
	AllocsPerOp: 51_813,
	BytesPerOp:  14_460_000,
	Note:        "pre-event-driven scheduler (full-window scans), Xeon @ 2.10GHz",
}

// replayWindowFactor sizes the recorded steady-state window for replay-
// driven cycle-loop measurements: replayWindowFactor*instsPerOp packed
// instructions recorded once at setup, then looped (matching the
// replaySource helper in bench_test.go — 400k insts for the 50k-chunk
// loop).
const replayWindowFactor = 8

// ReplaySection compares the cycle loop's two input paths on the same
// workload: micro-ops produced by the functional generator inside the
// timed region versus the same stream pre-recorded into the packed binary
// trace format and replayed from memory (the default input since the
// data-oriented core landed; the golden replay matrix pins the two paths
// bit-identical). Speedup is replay inst/s over generator inst/s — the
// share of simulation time that was workload generation, not timing model.
type ReplaySection struct {
	Generator CycleLoop `json:"generator"`
	Replay    CycleLoop `json:"replay"`
	Speedup   float64   `json:"replay_speedup"`
}

// CycleLoop is the steady-state cycle-loop measurement. SkipRatio is the
// fraction of simulated cycles covered by idle-elision clock jumps during
// the timed region (0 on the ticking path).
type CycleLoop struct {
	Workload    string  `json:"workload"`
	InstsPerOp  uint64  `json:"insts_per_op"`
	Ops         int     `json:"ops,omitempty"`
	InstPerSec  float64 `json:"inst_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SkipRatio   float64 `json:"skip_ratio"`
	Note        string  `json:"note,omitempty"`
}

// Suite is the full-sweep measurement. For a sampled sweep (SampleUnits
// set) SimMIPS credits the whole estimated region per run — the quantity
// sampling exists to buy — while only units×unit_insts of it ran in
// detail.
type Suite struct {
	Core            string            `json:"core"`
	Workloads       int               `json:"workloads"`
	WarmupInsts     uint64            `json:"warmup_insts"`
	MeasureInsts    uint64            `json:"measure_insts"`
	WarmupMode      string            `json:"warmup_mode,omitempty"`
	SampleUnits     int               `json:"sample_units,omitempty"`
	SampleUnitInsts uint64            `json:"sample_unit_insts,omitempty"`
	WallSeconds     float64           `json:"wall_seconds"`
	SimMIPS         float64           `json:"sim_mips"`
	GeomeanFVP      float64           `json:"geomean_fvp_speedup"`
	PerWorkload     []WorkloadSpeedup `json:"per_workload,omitempty"`
}

// SampledRun is the one-region full-detail-vs-sampled comparison: the same
// (warmup, measure) slice simulated both ways. IPCError is the sampled
// estimate's relative distance from the full-detail IPC; it should sit
// within IPCRelCI (the estimate's own 95% interval) — when it does, the
// speedup came at a statistically honest price.
type SampledRun struct {
	Workload           string  `json:"workload"`
	WarmupInsts        uint64  `json:"warmup_insts"`
	MeasureInsts       uint64  `json:"measure_insts"`
	Units              int     `json:"units"`
	UnitInsts          uint64  `json:"unit_insts"`
	FullWallSeconds    float64 `json:"full_wall_seconds"`
	SampledWallSeconds float64 `json:"sampled_wall_seconds"`
	Speedup            float64 `json:"speedup"`
	FullIPC            float64 `json:"full_ipc"`
	SampledIPC         float64 `json:"sampled_ipc"`
	IPCRelCI           float64 `json:"ipc_rel_ci"`
	IPCError           float64 `json:"ipc_error"`
}

// SamplingSection is the statistical-sampling part of the artifact.
type SamplingSection struct {
	SpeedupVsDetail SampledRun `json:"speedup_vs_detail"`
	Suite           Suite      `json:"suite"`
}

// FastForward is the warmup-phase throughput measurement: the same warmup
// window driven once through the detailed pipeline and once through the
// functional warming taps (ooo.Core.WarmFunctional), on a fresh core each
// way. The speedup floor for the fast-forward subsystem is 5x.
type FastForward struct {
	Workload             string  `json:"workload"`
	WarmupInsts          uint64  `json:"warmup_insts"`
	DetailedInstPerSec   float64 `json:"detailed_inst_per_sec"`
	FunctionalInstPerSec float64 `json:"functional_inst_per_sec"`
	Speedup              float64 `json:"speedup"`
}

// RegionRow is one point of the region-parallel scaling curve: the same
// (warmup, measure) slice split into K checkpointed regions simulated by K
// workers. IPC is the stitched aggregate — deterministic for a fixed K
// regardless of worker count, but not identical across K (each region
// re-warms from cold structures).
type RegionRow struct {
	Regions     int     `json:"regions"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup_vs_k1"`
	IPC         float64 `json:"ipc"`
}

// ParallelRegions is the region-scaling section.
type ParallelRegions struct {
	Workload     string      `json:"workload"`
	WarmupInsts  uint64      `json:"warmup_insts"`
	MeasureInsts uint64      `json:"measure_insts"`
	Rows         []RegionRow `json:"rows"`
	Note         string      `json:"note,omitempty"`
}

// WorkloadSpeedup is one row of the sweep. SkipRatio is taken from the FVP
// run: high values mark the memory-bound workloads where idle-cycle elision
// absorbs most of the simulated time.
type WorkloadSpeedup struct {
	Name      string  `json:"name"`
	BaseIPC   float64 `json:"base_ipc"`
	FVPIPC    float64 `json:"fvp_ipc"`
	Speedup   float64 `json:"speedup"`
	SkipRatio float64 `json:"skip_ratio"`
}

// Service-section parameters: the micro-batcher settings the batched
// flood runs under, also recorded in the artifact's environment block.
// BatchMax matches the client count so a full complement of parked
// submitters flushes immediately instead of waiting out the window.
const (
	svcBatchWindow = 2 * time.Millisecond
	svcBatchMax    = 16
	svcClients     = 16
	// svcSpeedupFloor is the gate's minimum batched/per-request
	// throughput ratio — the request-plane acceptance floor.
	svcSpeedupFloor = 2.0
)

// ServiceBench is one request-plane flood measurement: sustained submit
// throughput through the real HTTP surface of a disk-backed two-node
// cluster, entered at the non-owner, with client-observed latency
// quantiles.
type ServiceBench struct {
	Mode          string  `json:"mode"` // "per_request" | "batched"
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	SubmitsPerSec float64 `json:"submits_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
}

// ServiceSection compares the two request-plane modes on an identical
// sweep-shaped flood. BatchedSpeedup is the submits/sec ratio — the
// micro-batcher's amortization of per-hop HTTP forwards, admission, and
// fsync'd JobStore appends (acceptance floor 2x).
type ServiceSection struct {
	Backend        string       `json:"backend"`
	Topology       string       `json:"topology"`
	BatchWindow    string       `json:"batch_window"`
	BatchMax       int          `json:"batch_max"`
	PerRequest     ServiceBench `json:"per_request"`
	Batched        ServiceBench `json:"batched"`
	BatchedSpeedup float64      `json:"batched_speedup"`
}

// RequestPlaneEnv records the service-path settings the Service section
// was measured under — part of the environment block so request-plane
// numbers are comparable across hosts and configurations.
type RequestPlaneEnv struct {
	BatchWindow    string `json:"batch_window"`
	BatchMax       int    `json:"batch_max"`
	Replicas       int    `json:"replicas"`
	ReplicateAfter int    `json:"replicate_after"`
}

// StoreBench is one fvpd store-backend row: the durable-write cost
// (ResultPut includes the disk backend's per-record fsync) and the
// service-level cache-hit submit latency (which must not fsync on either
// backend — a hit is a read).
type StoreBench struct {
	Backend             string  `json:"backend"`
	Ops                 int     `json:"ops"`
	ResultPutNsPerOp    float64 `json:"result_put_ns_per_op"`
	CachedSubmitNsPerOp float64 `json:"cached_submit_ns_per_op"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's worker-thread cap at measurement
	// time; with NumCPU it makes throughput comparable across hosts.
	GOMAXPROCS int `json:"gomaxprocs"`
	// RequestPlane is the batch/replication configuration the Service
	// section ran under.
	RequestPlane RequestPlaneEnv `json:"request_plane"`

	CycleLoop          CycleLoop `json:"core_cycle_loop"`
	Reference          CycleLoop `json:"reference"`
	SpeedupVsReference float64   `json:"speedup_vs_reference"`
	AllocsReduction    float64   `json:"allocs_reduction_factor"`

	// Replay is the packed-trace-vs-generator input comparison; CycleLoop
	// above is its replay row (replay is the default input path).
	Replay ReplaySection `json:"replay"`

	// The mem-bound loop measured with elision on and again on the ticking
	// path; MemBoundElisionSpeedup is their inst/s ratio (acceptance floor
	// for the idle-elision fast path is 1.5x).
	CycleLoopMemBound        CycleLoop `json:"core_cycle_loop_mem_bound"`
	CycleLoopMemBoundTicking CycleLoop `json:"core_cycle_loop_mem_bound_ticking"`
	MemBoundElisionSpeedup   float64   `json:"mem_bound_elision_speedup"`

	// The warmup phase measured both ways (floor 5x), plus a paper-scale
	// (100k warmup / 300k measure) suite pass with each warmup mode;
	// SuiteWarmupSpeedup is their end-to-end wall-clock ratio.
	FastForward        FastForward `json:"fast_forward"`
	SuitePaper         Suite       `json:"suite_paper"`
	SuiteFunctional    Suite       `json:"suite_functional"`
	SuiteWarmupSpeedup float64     `json:"suite_warmup_speedup"`

	ParallelRegions ParallelRegions `json:"parallel_regions"`

	// Sampling is the statistical-sampling engine: the full-vs-sampled
	// speedup on one paper-scale region (floor 10x) and the sampled suite
	// sweep (two-digit sim MIPS).
	Sampling SamplingSection `json:"sampling"`

	// Store is the fvpd backend comparison: memory vs crash-safe disk.
	Store []StoreBench `json:"store"`

	// Service is the request-plane flood: per-request vs micro-batched
	// submit throughput through the HTTP surface.
	Service ServiceSection `json:"service"`

	Suite Suite `json:"suite"`
}

// measureStore times one store backend. newStores must return a fresh
// backend each call (a new temp dir for disk).
func measureStore(backend string, newStores func() (store.Stores, error), ops int) StoreBench {
	sb := StoreBench{Backend: backend, Ops: ops}

	// Durable result-put latency: distinct keys, a realistic encoded-
	// Metrics-sized value. On disk every put is an fsync'd append.
	st, err := newStores()
	if err != nil {
		fatalf("store %s: %v", backend, err)
	}
	val := bytes.Repeat([]byte("x"), 384)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := st.Results.Put(fmt.Sprintf("bench-%05d", i), val); err != nil {
			fatalf("store %s: put: %v", backend, err)
		}
	}
	sb.ResultPutNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)
	st.Close()

	// Service-level cache-hit latency: one simulated run populates the
	// cache, then identical submits are served terminal at admit time. A
	// hit is a store read, so disk must track memory closely here.
	st2, err := newStores()
	if err != nil {
		fatalf("store %s: %v", backend, err)
	}
	svc := simd.New(simd.Config{
		Workers: 1, Stores: st2,
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
		},
	})
	defer svc.Close()
	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
	first, err := svc.Submit(simd.RunRequest{RunSpec: spec})
	if err != nil {
		fatalf("store %s: submit: %v", backend, err)
	}
	if _, err := svc.Wait(context.Background(), first.ID); err != nil {
		fatalf("store %s: wait: %v", backend, err)
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := svc.Submit(simd.RunRequest{RunSpec: spec}); err != nil {
			fatalf("store %s: cached submit: %v", backend, err)
		}
	}
	sb.CachedSubmitNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)
	return sb
}

// swapHandler lets an httptest.Server exist (URL in hand) before the
// cluster node whose handler it will serve: peers reference each other
// by URL, so the servers must come up first.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// measureService floods the HTTP surface of a disk-backed two-node
// cluster with a sweep of unique specs, entered at the node that owns
// none of them, so every submit must cross one forward hop to its
// owner — the shape of a sweep fleet hitting its nearest node.
// Simulation workers are gated shut for the flood's duration, so the
// measurement isolates the sustained submit path: HTTP handling on both
// nodes, the forward hop, admission, and the owner's fsync'd JobStore
// append. batched toggles the edge micro-batcher and the forward
// coalescer; everything else is identical, so the throughput ratio is
// the batcher's contribution — one forwarded /v1 call and one fsync'd
// append per flush instead of one per request.
func measureService(batched bool, clients, requests int) ServiceBench {
	sb := ServiceBench{Mode: "per_request", Clients: clients, Requests: requests}
	if batched {
		sb.Mode = "batched"
	}
	dir, err := os.MkdirTemp("", "fvpbench-svc-*")
	if err != nil {
		fatalf("service: %v", err)
	}
	defer os.RemoveAll(dir)

	gate := make(chan struct{})
	ids := []string{"a", "b"}
	peers := make(map[string]string, len(ids))
	shs := make([]*swapHandler, len(ids))
	srvs := make([]*httptest.Server, len(ids))
	for i := range ids {
		shs[i] = &swapHandler{}
		srvs[i] = httptest.NewServer(shs[i])
		defer srvs[i].Close()
		peers[ids[i]] = srvs[i].URL
	}
	nodes := make([]*cluster.Node, len(ids))
	for i, id := range ids {
		stores, err := disk.Open(filepath.Join(dir, id), disk.Options{CacheEntries: requests + 16})
		if err != nil {
			fatalf("service: %v", err)
		}
		cfg := simd.Config{
			Workers: 1, QueueSize: requests + 16, Stores: stores, NodeID: id,
			Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
				return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
			},
		}
		ccfg := cluster.Config{Service: nil, Self: id, Peers: peers}
		if batched {
			cfg.BatchWindow, cfg.BatchMax = svcBatchWindow, svcBatchMax
			ccfg.BatchWindow, ccfg.BatchMax = svcBatchWindow, svcBatchMax
		}
		svc := simd.New(cfg)
		defer svc.Close()
		ccfg.Service = svc
		node, err := cluster.New(ccfg)
		if err != nil {
			fatalf("service: cluster: %v", err)
		}
		nodes[i] = node
		shs[i].set(node.Handler())
	}
	// The flood enters at node a, so every spec must hash to node b:
	// scan measure_insts values until enough b-owned points are found.
	insts := make([]int64, 0, requests)
	for v := int64(1_000_000); len(insts) < requests; v++ {
		spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 100, MeasureInsts: uint64(v)}
		if nodes[0].Owner(simd.SpecKey(spec)) == "b" {
			insts = append(insts, v)
		}
	}

	// Keep-alive pool sized to the client count so connection churn on
	// the client hop doesn't mask the hop being measured.
	tr := &http.Transport{MaxIdleConnsPerHost: clients}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr}

	hist := telemetry.NewLatency()
	var seq, failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1) - 1
				if i >= int64(requests) {
					return
				}
				body := fmt.Sprintf(
					`{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":%d}`,
					insts[i])
				t0 := time.Now()
				resp, err := hc.Post(srvs[0].URL+"/v1/runs", "application/json", strings.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0).Seconds())
				if resp.StatusCode >= 300 {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(gate) // release the queued jobs before the deferred Closes
	if n := failed.Load(); n > 0 {
		fatalf("service %s: %d of %d submits failed", sb.Mode, n, requests)
	}
	snap := hist.Snapshot()
	sb.SubmitsPerSec = float64(requests) / wall
	sb.P50Micros = snap.Quantile(0.50) * 1e6
	sb.P99Micros = snap.Quantile(0.99) * 1e6
	return sb
}

// measureCycleLoop reproduces BenchmarkCoreCycleLoop outside the testing
// package: one core built and warmed outside the timed region, each op
// advancing the same simulation by another chunk of retired instructions.
// With replay set (the default input path, matching the benchmark) the
// instruction stream is recorded once into the packed trace format and
// looped from memory, so the timed region measures only the timing model;
// with it clear the functional generator runs inside the loop (the
// ReplaySection comparison row). disableElide forces the per-cycle ticking
// path even on the default build (the two paths produce bit-identical
// RunStats; see internal/ooo/elide.go).
func measureCycleLoop(wlName string, instsPerOp uint64, ops int, disableElide, replay bool) CycleLoop {
	w, ok := workload.ByName(wlName)
	if !ok {
		fatalf("workload %q not found", wlName)
	}
	p := w.Build()
	var ex ooo.InstSource = prog.NewExec(p)
	if replay {
		window := replayWindowFactor * instsPerOp
		data, n, err := trace.Record(prog.NewExec(p), window)
		if err != nil || n < window {
			fatalf("record %s: got %d/%d insts, err %v", wlName, n, window, err)
		}
		src, err := trace.NewMemReader(data, true)
		if err != nil {
			fatalf("replay %s: %v", wlName, err)
		}
		ex = src
	}
	cfg := ooo.Skylake()
	cfg.DisableIdleElision = disableElide
	c := ooo.New(cfg, core.New(core.DefaultConfig()), ex, p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st0 := c.Run(instsPerOp) // reach steady state before timing
	st1 := st0

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		st1 = c.Run(uint64(i+2) * instsPerOp)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	n := float64(ops)
	cl := CycleLoop{
		Workload:    wlName,
		InstsPerOp:  instsPerOp,
		Ops:         ops,
		InstPerSec:  float64(instsPerOp) * n / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}
	if dc := st1.Cycles - st0.Cycles; dc > 0 {
		cl.SkipRatio = float64(st1.SkippedCycles-st0.SkippedCycles) / float64(dc)
	}
	return cl
}

// measureFastForward times the warmup window once on the detailed pipeline
// and once on the functional warming taps, each from a freshly reset core.
// It mirrors BenchmarkWarmupFunctional / BenchmarkWarmupDetailed exactly
// (same workload, window and vp.None predictor) so the artifact and the
// named benchmarks report the same quantity.
func measureFastForward(wlName string, warmInsts uint64, ops int) FastForward {
	w, ok := workload.ByName(wlName)
	if !ok {
		fatalf("workload %q not found", wlName)
	}
	p := w.Build()
	c := ooo.New(ooo.Skylake(), vp.None{}, prog.NewExec(p), p.BuildMemory())

	time1 := func(warm func(*ooo.Core)) float64 {
		var total time.Duration
		for i := 0; i < ops; i++ {
			c.Reset(vp.None{}, prog.NewExec(p), p.BuildMemory())
			start := time.Now()
			warm(c)
			total += time.Since(start)
		}
		return float64(warmInsts) * float64(ops) / total.Seconds()
	}
	ff := FastForward{
		Workload:             wlName,
		WarmupInsts:          warmInsts,
		DetailedInstPerSec:   time1(func(c *ooo.Core) { c.Run(warmInsts) }),
		FunctionalInstPerSec: time1(func(c *ooo.Core) { c.WarmFunctional(warmInsts) }),
	}
	ff.Speedup = ff.FunctionalInstPerSec / ff.DetailedInstPerSec
	return ff
}

// measureParallelRegions runs one long (warmup, measure) slice split into
// K functionally-warmed regions simulated by K workers, for K = 1,2,4,8.
func measureParallelRegions(wlName string, warm, measure uint64) ParallelRegions {
	w, ok := workload.ByName(wlName)
	if !ok {
		fatalf("workload %q not found", wlName)
	}
	pr := ParallelRegions{Workload: wlName, WarmupInsts: warm, MeasureInsts: measure}
	if runtime.NumCPU() < 8 {
		pr.Note = fmt.Sprintf("host has %d CPU(s); worker counts above that serialize",
			runtime.NumCPU())
	}
	for _, k := range []int{1, 2, 4, 8} {
		opt := harness.Options{
			WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true,
			WarmupMode: harness.WarmupFunctional,
		}
		if k > 1 {
			opt.Regions = k
			opt.RegionWorkers = k
		}
		start := time.Now()
		res := harness.RunOne(w, ooo.Skylake(), harness.Factory(harness.SpecFVP), opt)
		row := RegionRow{
			Regions:     k,
			Workers:     k,
			WallSeconds: time.Since(start).Seconds(),
			IPC:         res.IPC,
		}
		if len(pr.Rows) > 0 {
			row.Speedup = pr.Rows[0].WallSeconds / row.WallSeconds
		} else {
			row.Speedup = 1
		}
		pr.Rows = append(pr.Rows, row)
	}
	return pr
}

// measureSampledRun times one paper-scale region in full detail and again
// as a sampled estimate of the same region.
func measureSampledRun(wlName string, warm, measure uint64, units int, unitInsts uint64) SampledRun {
	w, ok := workload.ByName(wlName)
	if !ok {
		fatalf("workload %q not found", wlName)
	}
	opt := harness.Options{WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true}
	start := time.Now()
	full := harness.RunOne(w, ooo.Skylake(), harness.Factory(harness.SpecFVP), opt)
	fullWall := time.Since(start).Seconds()

	opt.Sampling = harness.Sampling{Units: units, UnitInsts: unitInsts, Seed: 1}
	start = time.Now()
	sampled := harness.RunOne(w, ooo.Skylake(), harness.Factory(harness.SpecFVP), opt)
	sampledWall := time.Since(start).Seconds()

	sr := SampledRun{
		Workload:           wlName,
		WarmupInsts:        warm,
		MeasureInsts:       measure,
		Units:              units,
		UnitInsts:          unitInsts,
		FullWallSeconds:    fullWall,
		SampledWallSeconds: sampledWall,
		Speedup:            fullWall / sampledWall,
		FullIPC:            full.IPC,
		SampledIPC:         sampled.IPC,
		IPCRelCI:           sampled.Sampling.IPC.RelCI,
	}
	if full.IPC > 0 {
		sr.IPCError = (sampled.IPC - full.IPC) / full.IPC
	}
	return sr
}

// measureSuite sweeps FVP vs baseline over ws and reports aggregate
// simulation throughput plus the paper's geomean speedup.
func measureSuite(ws []workload.Workload, opt harness.Options, perWorkload bool) Suite {
	start := time.Now()
	pairs := harness.RunComparison(ws, ooo.Skylake(), harness.Factory(harness.SpecFVP), opt)
	wall := time.Since(start).Seconds()

	// Two runs (baseline + FVP) per workload, each warmup+measure long.
	simInsts := float64(2*len(ws)) * float64(opt.WarmupInsts+opt.MeasureInsts)
	s := Suite{
		Core:            "Skylake",
		Workloads:       len(ws),
		WarmupInsts:     opt.WarmupInsts,
		MeasureInsts:    opt.MeasureInsts,
		WarmupMode:      string(opt.WarmupMode),
		SampleUnits:     opt.Sampling.Units,
		SampleUnitInsts: opt.Sampling.UnitInsts,
		WallSeconds:     wall,
		SimMIPS:         simInsts / wall / 1e6,
		GeomeanFVP:      harness.Geomean(pairs),
	}
	if !perWorkload {
		return s
	}
	for _, p := range pairs {
		row := WorkloadSpeedup{
			Name:    p.Base.Workload,
			BaseIPC: p.Base.IPC,
			FVPIPC:  p.Pred.IPC,
			Speedup: p.Speedup(),
		}
		if p.Pred.Stats.Cycles > 0 {
			row.SkipRatio = float64(p.Pred.Stats.SkippedCycles) / float64(p.Pred.Stats.Cycles)
		}
		s.PerWorkload = append(s.PerWorkload, row)
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fvpbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		out        = flag.String("out", "BENCH_core.json", "output path")
		ops        = flag.Int("ops", 20, "cycle-loop measurement chunks")
		quick      = flag.Bool("quick", false, "8-workload suite and fewer chunks")
		gate       = flag.String("gate", "", "compare against this recorded BENCH_core.json and exit nonzero on a >5% sim MIPS drop")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	ws := workload.All()
	opt := harness.Options{WarmupInsts: 20_000, MeasureInsts: 60_000, ReuseCores: true}
	if *quick {
		ws = ws[:8]
		*ops = 8
	}

	fmt.Printf("fvpbench: cycle loop (%d ops x %d insts on %s, replay vs generator input)...\n",
		*ops, cycleLoopInstsPerOp, reference.Workload)
	cl := measureCycleLoop(reference.Workload, cycleLoopInstsPerOp, *ops, false, true)
	clGen := measureCycleLoop(reference.Workload, cycleLoopInstsPerOp, *ops, false, false)
	clGen.Note = "functional generator inside the timed region"
	replaySec := ReplaySection{Generator: clGen, Replay: cl}
	if clGen.InstPerSec > 0 {
		replaySec.Speedup = cl.InstPerSec / clGen.InstPerSec
	}
	fmt.Printf("  replay %.0f inst/s, %.1f allocs/op, %.0f B/op, skip ratio %.3f\n",
		cl.InstPerSec, cl.AllocsPerOp, cl.BytesPerOp, cl.SkipRatio)
	fmt.Printf("  generator %.0f inst/s (replay %.2fx)\n", clGen.InstPerSec, replaySec.Speedup)

	fmt.Printf("fvpbench: mem-bound cycle loop (%d ops x %d insts on %s, elided vs ticking)...\n",
		*ops, memBoundInstsPerOp, memBoundWorkload)
	mb := measureCycleLoop(memBoundWorkload, memBoundInstsPerOp, *ops, false, true)
	mbTick := measureCycleLoop(memBoundWorkload, memBoundInstsPerOp, *ops, true, true)
	mbTick.Note = "ticking path (Config.DisableIdleElision)"
	elisionSpeedup := mb.InstPerSec / mbTick.InstPerSec
	fmt.Printf("  elided %.0f inst/s (skip ratio %.3f) vs ticking %.0f inst/s: %.2fx\n",
		mb.InstPerSec, mb.SkipRatio, mbTick.InstPerSec, elisionSpeedup)

	fmt.Printf("fvpbench: suite sweep (%d workloads x {baseline, FVP})...\n", len(ws))
	suite := measureSuite(ws, opt, true)
	fmt.Printf("  %.2f sim MIPS aggregate, geomean FVP speedup %.4f, %.1fs wall\n",
		suite.SimMIPS, suite.GeomeanFVP, suite.WallSeconds)

	fmt.Printf("fvpbench: fast-forward warmup (%s, %d insts, detailed vs functional)...\n",
		ffWorkload, ffWarmInsts)
	ff := measureFastForward(ffWorkload, ffWarmInsts, max(*ops/4, 2))
	fmt.Printf("  detailed %.0f inst/s vs functional %.0f inst/s: %.2fx\n",
		ff.DetailedInstPerSec, ff.FunctionalInstPerSec, ff.Speedup)

	paperOpt := opt
	paperOpt.WarmupInsts, paperOpt.MeasureInsts = paperWarmInsts, paperMeasureInsts
	if *quick {
		paperOpt.WarmupInsts, paperOpt.MeasureInsts = paperWarmInsts/4, paperMeasureInsts/4
	}
	fmt.Printf("fvpbench: paper-scale suite (%d/%d), detailed vs functional warmup...\n",
		paperOpt.WarmupInsts, paperOpt.MeasureInsts)
	suitePaper := measureSuite(ws, paperOpt, false)
	funOpt := paperOpt
	funOpt.WarmupMode = harness.WarmupFunctional
	suiteFun := measureSuite(ws, funOpt, false)
	suiteSpeedup := suitePaper.WallSeconds / suiteFun.WallSeconds
	fmt.Printf("  detailed %.1fs vs functional %.1fs wall: %.2fx\n",
		suitePaper.WallSeconds, suiteFun.WallSeconds, suiteSpeedup)

	regWarm, regMeasure := uint64(50_000), uint64(800_000)
	if *quick {
		regWarm, regMeasure = 20_000, 200_000
	}
	fmt.Printf("fvpbench: parallel regions (%s, %d/%d, K=1,2,4,8)...\n",
		regionWorkload, regWarm, regMeasure)
	regions := measureParallelRegions(regionWorkload, regWarm, regMeasure)
	for _, r := range regions.Rows {
		fmt.Printf("  K=%d: %.2fs wall (%.2fx), stitched IPC %.4f\n",
			r.Regions, r.WallSeconds, r.Speedup, r.IPC)
	}

	// Sampling section. The speedup row keeps its paper-scale region even
	// in quick mode: the 10x floor only exists when the measured region
	// dwarfs the fixed per-unit warmup cost, so shrinking it would measure
	// nothing. The sampled suite shrinks like the other suite passes.
	sampWarm, sampMeasure := uint64(100_000), uint64(100_000_000)
	suiteSampMeasure := uint64(20_000_000)
	if *quick {
		suiteSampMeasure = 4_000_000
	}
	fmt.Printf("fvpbench: sampled vs full detail (%s, %d insts)...\n", ffWorkload, sampMeasure)
	sampRun := measureSampledRun(ffWorkload, sampWarm, sampMeasure, 16, 2_000)
	fmt.Printf("  full %.1fs vs sampled %.1fs: %.1fx, IPC %.4f vs %.4f ±%.1f%% (err %+.1f%%)\n",
		sampRun.FullWallSeconds, sampRun.SampledWallSeconds, sampRun.Speedup,
		sampRun.FullIPC, sampRun.SampledIPC, sampRun.IPCRelCI*100, sampRun.IPCError*100)

	sampOpt := opt
	sampOpt.WarmupInsts, sampOpt.MeasureInsts = sampWarm, suiteSampMeasure
	sampOpt.Sampling = harness.Sampling{Units: 16, UnitInsts: 2_000, Seed: 1}
	fmt.Printf("fvpbench: sampled suite sweep (%d workloads x {baseline, FVP}, %d insts each)...\n",
		len(ws), suiteSampMeasure)
	suiteSampled := measureSuite(ws, sampOpt, false)
	fmt.Printf("  %.2f sim MIPS aggregate, geomean FVP speedup %.4f, %.1fs wall\n",
		suiteSampled.SimMIPS, suiteSampled.GeomeanFVP, suiteSampled.WallSeconds)

	storeOps := 400
	if *quick {
		storeOps = 100
	}
	fmt.Printf("fvpbench: store backends (%d ops, memory vs disk)...\n", storeOps)
	storeRows := []StoreBench{
		measureStore("memory", func() (store.Stores, error) {
			return store.Stores{
				Jobs:    store.NewMemoryJobStore(),
				Results: store.NewMemoryResultStore(storeOps+16, 0),
				Blobs:   store.NewMemoryBlobStore(0),
			}, nil
		}, storeOps),
		measureStore("disk", func() (store.Stores, error) {
			dir, err := os.MkdirTemp("", "fvpbench-store-*")
			if err != nil {
				return store.Stores{}, err
			}
			return disk.Open(dir, disk.Options{CacheEntries: storeOps + 16})
		}, storeOps),
	}
	for _, r := range storeRows {
		fmt.Printf("  %s: result put %.0f ns/op, cached submit %.0f ns/op\n",
			r.Backend, r.ResultPutNsPerOp, r.CachedSubmitNsPerOp)
	}

	svcRequests := 2048
	if *quick {
		svcRequests = 512
	}
	fmt.Printf("fvpbench: service flood (2-node cluster, %d clients x %d submits via non-owner, per-request vs batched)...\n",
		svcClients, svcRequests)
	svcSection := ServiceSection{
		Backend:     "disk",
		Topology:    "2-node cluster, flood via non-owner",
		BatchWindow: svcBatchWindow.String(),
		BatchMax:    svcBatchMax,
		PerRequest:  measureService(false, svcClients, svcRequests),
		Batched:     measureService(true, svcClients, svcRequests),
	}
	if svcSection.PerRequest.SubmitsPerSec > 0 {
		svcSection.BatchedSpeedup = svcSection.Batched.SubmitsPerSec / svcSection.PerRequest.SubmitsPerSec
	}
	fmt.Printf("  per-request %.0f submits/s (p50 %.0fµs p99 %.0fµs) vs batched %.0f submits/s (p50 %.0fµs p99 %.0fµs): %.2fx\n",
		svcSection.PerRequest.SubmitsPerSec, svcSection.PerRequest.P50Micros, svcSection.PerRequest.P99Micros,
		svcSection.Batched.SubmitsPerSec, svcSection.Batched.P50Micros, svcSection.Batched.P99Micros,
		svcSection.BatchedSpeedup)

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		RequestPlane: RequestPlaneEnv{
			BatchWindow:    svcBatchWindow.String(),
			BatchMax:       svcBatchMax,
			Replicas:       0, // the flood runs single-node; cluster replication is off
			ReplicateAfter: 3,
		},
		CycleLoop:          cl,
		Reference:          reference,
		SpeedupVsReference: cl.InstPerSec / reference.InstPerSec,
		AllocsReduction:    reference.AllocsPerOp / maxf(cl.AllocsPerOp, 1),
		Replay:             replaySec,

		CycleLoopMemBound:        mb,
		CycleLoopMemBoundTicking: mbTick,
		MemBoundElisionSpeedup:   elisionSpeedup,

		FastForward:        ff,
		SuitePaper:         suitePaper,
		SuiteFunctional:    suiteFun,
		SuiteWarmupSpeedup: suiteSpeedup,
		ParallelRegions:    regions,
		Sampling:           SamplingSection{SpeedupVsDetail: sampRun, Suite: suiteSampled},
		Store:              storeRows,
		Service:            svcSection,

		Suite: suite,
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("fvpbench: wrote %s (%.2fx vs pre-scheduler reference, allocs %.0fx lower)\n",
		*out, rep.SpeedupVsReference, rep.AllocsReduction)

	if *gate != "" {
		if err := checkGate(*gate, rep); err != nil {
			fatalf("gate: %v", err)
		}
	}
}

// gateDropTolerance is how far a throughput number may fall below the
// recorded baseline before -gate fails the run.
const gateDropTolerance = 0.05

// checkGate compares the fresh measurement's suite throughputs against a
// recorded artifact. Only ratios of like measurements are gated (both
// sides must use the same mode — the checked-in baseline is regenerated by
// the same CI recipe that gates against it), and only a drop beyond the
// tolerance fails; a baseline without a section (older schema) skips that
// comparison.
func checkGate(path string, rep Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	checks := []struct {
		name     string
		got, ref float64
	}{
		{"suite.sim_mips", rep.Suite.SimMIPS, base.Suite.SimMIPS},
		{"suite_functional.sim_mips", rep.SuiteFunctional.SimMIPS, base.SuiteFunctional.SimMIPS},
		{"sampling.suite.sim_mips", rep.Sampling.Suite.SimMIPS, base.Sampling.Suite.SimMIPS},
		{"service.batched.submits_per_sec", rep.Service.Batched.SubmitsPerSec, base.Service.Batched.SubmitsPerSec},
	}
	failed := false
	for _, c := range checks {
		if c.ref <= 0 {
			fmt.Printf("fvpbench: gate %-26s skipped (not in baseline)\n", c.name)
			continue
		}
		ratio := c.got / c.ref
		status := "ok"
		if ratio < 1-gateDropTolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("fvpbench: gate %-26s %8.2f vs baseline %8.2f (%+.1f%%) %s\n",
			c.name, c.got, c.ref, (ratio-1)*100, status)
	}
	// The batched/per-request ratio is held to an absolute floor rather
	// than a baseline delta: unlike raw submits/sec it is
	// machine-independent (both arms pay the same HTTP and fsync costs),
	// so a drop below the floor means the micro-batcher itself regressed.
	if base.Service.BatchedSpeedup > 0 {
		status := "ok"
		if rep.Service.BatchedSpeedup < svcSpeedupFloor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("fvpbench: gate %-26s %8.2fx vs floor %8.2fx %s\n",
			"service.batched_speedup", rep.Service.BatchedSpeedup, svcSpeedupFloor, status)
	}
	if failed {
		return fmt.Errorf("benchmark gate failed against %s", path)
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
