// Command fvpd serves the FVP simulator as a batch-simulation service:
// an HTTP/JSON API over a bounded job queue, a worker pool, and a
// content-addressed result cache with single-flight deduplication, so
// design-space sweeps from many clients share one simulation per unique
// (workload, machine, predictor, run-length, sampling-plan) point.
// Sampled runs — specs carrying sample_units or sample_target_ci — are
// first-class: the sampling plan is part of the cache key (a sampled
// estimate never masquerades as a full-detail result), the returned
// metrics carry the confidence intervals, and the detailed fraction of
// the fleet's sampled work is exported as fvpd_sim_sampled_insts_total.
//
// Usage:
//
//	fvpd -addr :8080 -workers 8 -queue 64 -cache 4096
//	fvpd -data-dir /var/lib/fvpd    # durable: jobs and cache survive restarts
//
// With -data-dir the job queue, result cache, and trace artifacts live in
// crash-safe file stores under the directory: jobs that were queued or
// running when the process died are re-dispatched on the next boot, and
// cached results keep serving hits across restarts. Without it everything
// is in-memory, exactly as before.
//
// Endpoints: POST /v1/runs (single or batch, ?wait=1 to block),
// GET /v1/runs/{id} (status, result, and live progress),
// DELETE /v1/runs/{id}, GET /v1/workloads, GET /v1/predictors,
// GET /v1/metrics (Prometheus text), GET /healthz. The pre-versioning
// unversioned paths still answer, with a Deprecation header. With -pprof
// the Go profiling handlers are additionally served under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fvp/internal/simd"
	"fvp/internal/store/disk"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation workers (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "run-queue capacity (0 = 4×workers)")
		cache      = flag.Int("cache", 0, "result-cache entries (0 = 1024)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result-cache byte budget (0 = entries-only)")
		dataDir    = flag.String("data-dir", "", "durable store directory (empty = in-memory only)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		pprofOn    = flag.Bool("pprof", false, "serve Go profiling handlers under /debug/pprof/")
	)
	flag.Parse()

	cfg := simd.Config{Workers: *workers, QueueSize: *queue, CacheSize: *cache, CacheBytes: *cacheBytes}
	if *dataDir != "" {
		entries := *cache
		if entries <= 0 {
			entries = simd.DefaultCacheSize
		}
		stores, err := disk.Open(*dataDir, disk.Options{CacheEntries: entries, CacheBytes: *cacheBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fvpd: opening data dir:", err)
			os.Exit(1)
		}
		cfg.Stores = stores
	}
	svc := simd.New(cfg)
	if *dataDir != "" {
		if n := svc.Snapshot().JobsRecovered; n > 0 {
			fmt.Fprintf(os.Stderr, "fvpd: re-dispatched %d jobs recovered from %s\n", n, *dataDir)
		}
	}
	handler := svc.Handler()
	if *pprofOn {
		// Profiling is opt-in: the handlers expose goroutine dumps and CPU
		// profiles, which don't belong on an unattended public port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fvpd: listening on %s (%d workers)\n", *addr, svc.Workers())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fvpd:", err)
		svc.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain queued
	// and in-flight simulations; past the budget they are canceled via
	// their contexts and finish in the canceled state.
	fmt.Fprintln(os.Stderr, "fvpd: shutting down, draining jobs...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fvpd: http shutdown:", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "fvpd: drain:", err)
	}
	fmt.Fprintln(os.Stderr, "fvpd: bye")
}
