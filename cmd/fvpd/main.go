// Command fvpd serves the FVP simulator as a batch-simulation service:
// an HTTP/JSON API over a bounded job queue, a worker pool, and a
// content-addressed result cache with single-flight deduplication, so
// design-space sweeps from many clients share one simulation per unique
// (workload, machine, predictor, run-length, sampling-plan) point.
// Sampled runs — specs carrying sample_units or sample_target_ci — are
// first-class: the sampling plan is part of the cache key (a sampled
// estimate never masquerades as a full-detail result), the returned
// metrics carry the confidence intervals, and the detailed fraction of
// the fleet's sampled work is exported as fvpd_sim_sampled_insts_total.
//
// Usage:
//
//	fvpd -addr :8080 -workers 8 -queue 64 -cache 4096
//	fvpd -data-dir /var/lib/fvpd    # durable: jobs and cache survive restarts
//	fvpd -node-id a -peers "a=http://a:8080,b=http://b:8080" \
//	    -tenant-quota "ci=5:64:3,sweep=20:200"    # 2-node cluster, quotas
//
// With -data-dir the job queue, result cache, and trace artifacts live in
// crash-safe file stores under the directory: jobs that were queued or
// running when the process died are re-dispatched on the next boot, and
// cached results keep serving hits across restarts. Without it everything
// is in-memory, exactly as before.
//
// With -peers (the same static "id=url,..." list on every node, -node-id
// naming this one) the nodes form a coordinator-free cluster: specs are
// consistent-hashed to an owner node so dedup and caching shard with the
// content address, non-owners forward over the ordinary /v1 API, and an
// unreachable owner degrades to local execution behind a circuit breaker
// (GET /v1/cluster shows per-peer health). -tenant-quota /
// -tenant-default-quota attach per-tenant token buckets and weighted
// fair queueing, turning over-quota submits into per-tenant
// 429+Retry-After instead of the global 503.
//
// Endpoints: POST /v1/runs (single or batch, ?wait=1 to block),
// GET /v1/runs/{id} (status, result, and live progress),
// DELETE /v1/runs/{id}, GET /v1/workloads, GET /v1/predictors,
// GET /v1/cluster (ring membership and peer health),
// GET /v1/metrics (Prometheus text), GET /healthz. The pre-versioning
// unversioned paths still answer, with a Deprecation header. With -pprof
// the Go profiling handlers are additionally served under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fvp/internal/cluster"
	"fvp/internal/simd"
	"fvp/internal/store/disk"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation workers (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "run-queue capacity (0 = 4×workers)")
		cache      = flag.Int("cache", 0, "result-cache entries (0 = 1024)")
		cacheBytes = flag.Int64("cache-bytes", 0, "result-cache byte budget (0 = entries-only)")
		dataDir    = flag.String("data-dir", "", "durable store directory (empty = in-memory only)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		pprofOn    = flag.Bool("pprof", false, "serve Go profiling handlers under /debug/pprof/")
		nodeID     = flag.String("node-id", "", "this node's cluster ID (required with -peers)")
		peersFlag  = flag.String("peers", "", "cluster members as id=url,... (all nodes, this one included)")
		tenantQ    = flag.String("tenant-quota", "", "per-tenant quotas as tenant=rate[:burst[:weight]],...")
		tenantDefQ = flag.String("tenant-default-quota", "", "quota for tenants not named in -tenant-quota, as rate[:burst[:weight]]")
		batchWin   = flag.Duration("batch-window", 0, "micro-batch window: coalesce concurrent submits (and cluster forwards) arriving within this window into one admission/store/forward transaction (0 = off)")
		batchMax   = flag.Int("batch-max", 0, "max requests coalesced per micro-batch; a full window flushes early (0 = 256)")
		replicas   = flag.Int("replicas", 0, "push hot results to this many ring successors and serve replicated keys locally on non-owners (with -peers; 0 = off)")
		replAfter  = flag.Int("replicate-after", 0, "submits an owner must see for a key before replicating its result (0 = 3)")
		sloTarget  = flag.Duration("slo-target", 0, "latency SLO target annotated on the fvpd_request_seconds HELP text (0 = none)")
	)
	flag.Parse()

	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fvpd: "+format+"\n", args...)
		os.Exit(1)
	}
	peers, err := cluster.ParsePeers(*peersFlag)
	if err != nil {
		fatalf("%v", err)
	}
	tenants := simd.TenantConfig{}
	if *tenantQ != "" {
		if tenants.Quotas, err = simd.ParseTenantQuotas(*tenantQ); err != nil {
			fatalf("%v", err)
		}
	}
	if *tenantDefQ != "" {
		q, err := simd.ParseQuotaSpec(*tenantDefQ)
		if err != nil {
			fatalf("%v", err)
		}
		tenants.Default = &q
	}

	cfg := simd.Config{
		Workers: *workers, QueueSize: *queue, CacheSize: *cache, CacheBytes: *cacheBytes,
		NodeID: *nodeID, Tenants: tenants,
		BatchWindow: *batchWin, BatchMax: *batchMax, SLOTarget: *sloTarget,
	}
	if *dataDir != "" {
		entries := *cache
		if entries <= 0 {
			entries = simd.DefaultCacheSize
		}
		stores, err := disk.Open(*dataDir, disk.Options{CacheEntries: entries, CacheBytes: *cacheBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fvpd: opening data dir:", err)
			os.Exit(1)
		}
		cfg.Stores = stores
	}
	svc := simd.New(cfg)
	if *dataDir != "" {
		if n := svc.Snapshot().JobsRecovered; n > 0 {
			fmt.Fprintf(os.Stderr, "fvpd: re-dispatched %d jobs recovered from %s\n", n, *dataDir)
		}
	}
	node, err := cluster.New(cluster.Config{
		Service: svc, Self: *nodeID, Peers: peers,
		Replicas: *replicas, ReplicateAfter: *replAfter,
		BatchWindow: *batchWin, BatchMax: *batchMax,
	})
	if err != nil {
		svc.Close()
		fatalf("%v", err)
	}
	handler := node.Handler()
	if len(peers) > 1 {
		fmt.Fprintf(os.Stderr, "fvpd: cluster mode, node %q of %d peers\n", *nodeID, len(peers))
	}
	if *pprofOn {
		// Profiling is opt-in: the handlers expose goroutine dumps and CPU
		// profiles, which don't belong on an unattended public port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fvpd: listening on %s (%d workers)\n", *addr, svc.Workers())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fvpd:", err)
		svc.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain queued
	// and in-flight simulations; past the budget they are canceled via
	// their contexts and finish in the canceled state.
	fmt.Fprintln(os.Stderr, "fvpd: shutting down, draining jobs...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fvpd: http shutdown:", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "fvpd: drain:", err)
	}
	fmt.Fprintln(os.Stderr, "fvpd: bye")
}
