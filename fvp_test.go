package fvp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestWorkloadsListed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 60 {
		t.Fatalf("workloads = %d, want 60 (Table III)", len(ws))
	}
	cats := map[string]int{}
	for _, w := range ws {
		cats[w.Category]++
	}
	if len(cats) != 4 {
		t.Errorf("categories = %v", cats)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunSpec{Workload: "nope"}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run(RunSpec{Workload: "mcf", Machine: "vax"}); err == nil {
		t.Error("unknown machine must error")
	}
	if _, err := Run(RunSpec{Workload: "mcf", Predictor: "psychic"}); err == nil {
		t.Error("unknown predictor must error")
	}
}

func TestRunAndCompare(t *testing.T) {
	c, err := Compare(RunSpec{
		Workload:     "hmmer",
		Predictor:    PredFVP,
		WarmupInsts:  5_000,
		MeasureInsts: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Base.IPC <= 0 || c.Pred.IPC <= 0 {
		t.Fatalf("IPC: %+v", c)
	}
	if c.Base.Insts != 20_000 {
		t.Errorf("measured %d instructions", c.Base.Insts)
	}
	if s := c.Speedup(); s < 0.5 || s > 2 {
		t.Errorf("implausible speedup %v", s)
	}
}

func TestStorageBytes(t *testing.T) {
	fvpBytes, err := StorageBytes(PredFVP)
	if err != nil {
		t.Fatal(err)
	}
	if fvpBytes < 900 || fvpBytes > 1400 {
		t.Errorf("FVP storage = %d B, paper says ≈1.2 KB", fvpBytes)
	}
	comp8, _ := StorageBytes(PredComposite8KB)
	comp1, _ := StorageBytes(PredComposite1KB)
	if comp8 < 6*comp1 {
		t.Errorf("composite budgets: 8KB=%d 1KB=%d", comp8, comp1)
	}
	if n, _ := StorageBytes(PredNone); n != 0 {
		t.Errorf("baseline storage = %d", n)
	}
	if _, err := StorageBytes("x"); err == nil {
		t.Error("unknown predictor must error")
	}
}

func TestPredictorsAllResolvable(t *testing.T) {
	for _, p := range Predictors() {
		if _, err := StorageBytes(p); err != nil {
			t.Errorf("predictor %s: %v", p, err)
		}
	}
}

func TestExperimentsListed(t *testing.T) {
	es := Experiments()
	if len(es) < 15 {
		t.Fatalf("experiments = %d", len(es))
	}
	if err := RunExperiment("no-such", &bytes.Buffer{}, 0, 0); err == nil {
		t.Error("unknown experiment must error")
	}
	// The static tables run instantly end-to-end through the public API.
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Critical Instruction Table") {
		t.Errorf("table1 via public API:\n%s", buf.String())
	}
}

func TestFVPStorageTable(t *testing.T) {
	items := FVPStorage()
	if len(items) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(items))
	}
	names := map[string]bool{}
	for _, it := range items {
		names[it.Name] = true
		if it.Bits <= 0 || it.Entries <= 0 {
			t.Errorf("bad row %+v", it)
		}
	}
	for _, want := range []string{"Critical Instruction Table", "Value Table",
		"MR Store/Load Table", "MR Value File", "RAT-PC"} {
		if !names[want] {
			t.Errorf("Table I row %q missing", want)
		}
	}
}

func TestBuildWorkloadSource(t *testing.T) {
	ex, mem, err := BuildWorkloadSource("omnetpp")
	if err != nil || ex == nil || mem == nil {
		t.Fatalf("ex=%v mem=%v err=%v", ex, mem, err)
	}
	if _, _, err := BuildWorkloadSource("nope"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestValidateBudgetCaps(t *testing.T) {
	_, err := Run(RunSpec{Workload: "mcf", MeasureInsts: MaxMeasureInsts + 1})
	var ise *InvalidSpecError
	if !errors.As(err, &ise) {
		t.Fatalf("over-budget measure: err = %v, want *InvalidSpecError", err)
	}
	if ise.Field != "measure_insts" || ise.Limit != MaxMeasureInsts {
		t.Errorf("typed error fields: %+v", ise)
	}
	if ise.Error() == "" {
		t.Error("empty error text")
	}
	if _, err := Run(RunSpec{Workload: "mcf", WarmupInsts: MaxWarmupInsts + 1,
		MeasureInsts: 1000}); !errors.As(err, &ise) {
		t.Errorf("over-budget warmup: err = %v, want *InvalidSpecError", err)
	}
	// The caps are inclusive: a spec at the cap is valid.
	if err := Validate(RunSpec{Workload: "mcf", Machine: Skylake,
		Predictor: PredNone, MeasureInsts: MaxMeasureInsts}); err != nil {
		t.Errorf("spec at the cap must validate: %v", err)
	}
}

func TestCompareSuiteContextSubset(t *testing.T) {
	cs, err := CompareSuiteContext(context.Background(), SuiteSpec{
		Predictor:    PredFVP,
		WarmupInsts:  2_000,
		MeasureInsts: 10_000,
		Workloads:    []string{"hmmer", "mcf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(cs))
	}
	got := map[string]bool{}
	for _, c := range cs {
		got[c.Workload] = true
		if c.Base.IPC <= 0 || c.Pred.IPC <= 0 {
			t.Errorf("%s: %+v", c.Workload, c)
		}
	}
	if !got["hmmer"] || !got["mcf"] {
		t.Errorf("workloads covered: %v", got)
	}

	if _, err := CompareSuiteContext(context.Background(), SuiteSpec{
		Predictor: PredFVP, Workloads: []string{"nope"},
	}); err == nil {
		t.Error("unknown workload in subset must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareSuiteContext(ctx, SuiteSpec{Predictor: PredFVP,
		Workloads: []string{"hmmer"}, MeasureInsts: 10_000}); err == nil {
		t.Error("canceled context must error")
	}
}

// TestRunSpecTaps drives the telemetry taps through the public façade:
// interval samples must cover the measured region exactly, and the trace
// must capture instructions — without perturbing the run's metrics.
func TestRunSpecTaps(t *testing.T) {
	spec := RunSpec{Workload: "hmmer", Predictor: PredFVP,
		WarmupInsts: 2_000, MeasureInsts: 20_000}
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	var samples []IntervalMetrics
	tapped := spec
	tapped.Observer = observerFunc(func(m IntervalMetrics) { samples = append(samples, m) })
	tapped.ObserverInterval = 2_000
	tapped.Tracer = NewPipeTrace(128)
	m, err := Run(tapped)
	if err != nil {
		t.Fatal(err)
	}
	if m != plain {
		t.Errorf("taps perturbed the run:\n  plain  %+v\n  tapped %+v", plain, m)
	}
	if len(samples) < 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	var insts uint64
	for _, s := range samples {
		insts += s.Insts
	}
	if insts != m.Insts {
		t.Errorf("interval insts sum to %d, run measured %d", insts, m.Insts)
	}
	if n := tapped.Tracer.Insts(); n != 128 {
		t.Errorf("trace captured %d instructions, want full 128 window", n)
	}
}

type observerFunc func(IntervalMetrics)

func (f observerFunc) OnInterval(m IntervalMetrics) { f(m) }

func TestGeomeanHelper(t *testing.T) {
	cs := []Comparison{
		{Base: Metrics{IPC: 1}, Pred: Metrics{IPC: 2}},
		{Base: Metrics{IPC: 2}, Pred: Metrics{IPC: 1}},
	}
	if g := Geomean(cs); g < 0.99 || g > 1.01 {
		t.Errorf("geomean = %v", g)
	}
}
