package fvp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadsListed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 60 {
		t.Fatalf("workloads = %d, want 60 (Table III)", len(ws))
	}
	cats := map[string]int{}
	for _, w := range ws {
		cats[w.Category]++
	}
	if len(cats) != 4 {
		t.Errorf("categories = %v", cats)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunSpec{Workload: "nope"}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run(RunSpec{Workload: "mcf", Machine: "vax"}); err == nil {
		t.Error("unknown machine must error")
	}
	if _, err := Run(RunSpec{Workload: "mcf", Predictor: "psychic"}); err == nil {
		t.Error("unknown predictor must error")
	}
}

func TestRunAndCompare(t *testing.T) {
	c, err := Compare(RunSpec{
		Workload:     "hmmer",
		Predictor:    PredFVP,
		WarmupInsts:  5_000,
		MeasureInsts: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Base.IPC <= 0 || c.Pred.IPC <= 0 {
		t.Fatalf("IPC: %+v", c)
	}
	if c.Base.Insts != 20_000 {
		t.Errorf("measured %d instructions", c.Base.Insts)
	}
	if s := c.Speedup(); s < 0.5 || s > 2 {
		t.Errorf("implausible speedup %v", s)
	}
}

func TestStorageBytes(t *testing.T) {
	fvpBytes, err := StorageBytes(PredFVP)
	if err != nil {
		t.Fatal(err)
	}
	if fvpBytes < 900 || fvpBytes > 1400 {
		t.Errorf("FVP storage = %d B, paper says ≈1.2 KB", fvpBytes)
	}
	comp8, _ := StorageBytes(PredComposite8KB)
	comp1, _ := StorageBytes(PredComposite1KB)
	if comp8 < 6*comp1 {
		t.Errorf("composite budgets: 8KB=%d 1KB=%d", comp8, comp1)
	}
	if n, _ := StorageBytes(PredNone); n != 0 {
		t.Errorf("baseline storage = %d", n)
	}
	if _, err := StorageBytes("x"); err == nil {
		t.Error("unknown predictor must error")
	}
}

func TestPredictorsAllResolvable(t *testing.T) {
	for _, p := range Predictors() {
		if _, err := StorageBytes(p); err != nil {
			t.Errorf("predictor %s: %v", p, err)
		}
	}
}

func TestExperimentsListed(t *testing.T) {
	es := Experiments()
	if len(es) < 15 {
		t.Fatalf("experiments = %d", len(es))
	}
	if err := RunExperiment("no-such", &bytes.Buffer{}, 0, 0); err == nil {
		t.Error("unknown experiment must error")
	}
	// The static tables run instantly end-to-end through the public API.
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Critical Instruction Table") {
		t.Errorf("table1 via public API:\n%s", buf.String())
	}
}

func TestFVPStorageTable(t *testing.T) {
	items := FVPStorage()
	if len(items) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(items))
	}
	names := map[string]bool{}
	for _, it := range items {
		names[it.Name] = true
		if it.Bits <= 0 || it.Entries <= 0 {
			t.Errorf("bad row %+v", it)
		}
	}
	for _, want := range []string{"Critical Instruction Table", "Value Table",
		"MR Store/Load Table", "MR Value File", "RAT-PC"} {
		if !names[want] {
			t.Errorf("Table I row %q missing", want)
		}
	}
}

func TestBuildWorkloadSource(t *testing.T) {
	ex, mem, err := BuildWorkloadSource("omnetpp")
	if err != nil || ex == nil || mem == nil {
		t.Fatalf("ex=%v mem=%v err=%v", ex, mem, err)
	}
	if _, _, err := BuildWorkloadSource("nope"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestGeomeanHelper(t *testing.T) {
	cs := []Comparison{
		{Base: Metrics{IPC: 1}, Pred: Metrics{IPC: 2}},
		{Base: Metrics{IPC: 2}, Pred: Metrics{IPC: 1}},
	}
	if g := Geomean(cs); g < 0.99 || g > 1.01 {
		t.Errorf("geomean = %v", g)
	}
}
