// Predictor-compare pits FVP against the prior-art predictors of the
// paper's Figs 10–11 — standalone Memory Renaming (Tyson & Austin) and the
// DLVP+EVES Composite predictor (Sheikh & Hower) at 8 KB and 1 KB — on a
// server-style workload, where the area-vs-performance argument is
// sharpest.
package main

import (
	"fmt"
	"log"

	"fvp"
)

func main() {
	const wl = "cassandra"
	preds := []fvp.Predictor{
		fvp.PredMR8KB,
		fvp.PredComposite8KB,
		fvp.PredFVP,
		fvp.PredMR1KB,
		fvp.PredComposite1KB,
	}

	base, err := fvp.Run(fvp.RunSpec{Workload: wl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on Skylake — baseline IPC %.3f\n\n", wl, base.IPC)
	fmt.Printf("%-16s %9s %9s %9s %9s\n", "predictor", "storage", "IPC", "gain", "coverage")
	for _, p := range preds {
		m, err := fvp.Run(fvp.RunSpec{Workload: wl, Predictor: p})
		if err != nil {
			log.Fatal(err)
		}
		bytes, _ := fvp.StorageBytes(p)
		fmt.Printf("%-16s %7.1fKB %9.3f %+8.2f%% %8.1f%%\n",
			p, float64(bytes)/1024, m.IPC, (m.IPC/base.IPC-1)*100, m.Coverage*100)
	}
	fmt.Println("\nThe paper's point: FVP at ~1.2 KB keeps up with 8 KB predictors")
	fmt.Println("because it spends its few entries only on critical-path loads.")
}
