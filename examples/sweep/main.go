// Sweep reproduces the paper's sensitivity studies in miniature on a small
// workload subset: the Value-Table/Value-File size sweep (§VI-D) and the
// Skylake → Skylake-2X scaling of FVP's benefit (§VI-A, Fig 9).
package main

import (
	"fmt"
	"log"
	"math"

	"fvp"
)

var workloads = []string{"omnetpp", "cassandra", "sphinx3", "leela"}

func gain(machine fvp.Machine, pred fvp.Predictor) float64 {
	sumLog := 0.0
	for _, w := range workloads {
		c, err := fvp.Compare(fvp.RunSpec{
			Workload:     w,
			Machine:      machine,
			Predictor:    pred,
			WarmupInsts:  80_000,
			MeasureInsts: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		sumLog += math.Log(c.Speedup())
	}
	return math.Exp(sumLog/float64(len(workloads)))*100 - 100
}

func main() {
	fmt.Printf("subset: %v\n\n", workloads)

	fmt.Println("machine scaling (paper Fig 9: FVP helps the scaled core much more):")
	fmt.Printf("  Skylake    : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVP))
	fmt.Printf("  Skylake-2X : %+.2f%%\n", gain(fvp.Skylake2X, fvp.PredFVP))

	fmt.Println("\ncomponent ablation (paper Fig 13):")
	fmt.Printf("  register deps only : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVPRegOnly))
	fmt.Printf("  memory deps only   : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVPMemOnly))
	fmt.Printf("  full FVP           : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVP))

	fmt.Println("\ncriticality policies (paper Fig 12):")
	fmt.Printf("  L1-miss-only  : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVPL1MissOnly))
	fmt.Printf("  L1-miss chain : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVPL1Miss))
	fmt.Printf("  retire-stall  : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVP))
	fmt.Printf("  oracle DDG    : %+.2f%%\n", gain(fvp.Skylake, fvp.PredFVPOracle))
}
