// Criticality reconstructs the paper's running example (§III, Figs 1–2):
// a nine-instruction window whose critical path runs through a delinquent
// LLC-missing load I8, and shows how value-predicting different
// instructions on its dependence chain shortens the critical path —
// reproducing the 241 → 212 → 205-cycle progression the paper derives.
package main

import (
	"fmt"

	"fvp/internal/ddg"
	"fvp/internal/isa"
)

// The example program of Fig. 1(a), one micro-op per paper instruction:
//
//	I1: ECX = load(mem)    LLC hit, 30 cycles
//	I2: EDX = ECX + 4      1 cycle... (paper charges 5 to the chain steps)
//	I3: EBX = load(mem)    L1 hit
//	I4: EDX = EDX ^ EBX    feeds I8's address
//	I5: R9  = load(mem)    independent chain
//	I6: R10 = R9 * 3
//	I7: R11 = R10 + 1
//	I8: RAX = load(EDX)    LLC miss, 200 cycles
//	I9: RBX = RAX + 1      forward dependent
func buildExample() []isa.DynInst {
	mk := func(seq uint64, op isa.Op, dst, s1, s2 isa.Reg, addr uint64) isa.DynInst {
		return isa.DynInst{
			Seq: seq, PC: 0x400000 + seq*4, Op: op,
			Dst: dst, Src1: s1, Src2: s2, Addr: addr, MemSize: 8,
		}
	}
	return []isa.DynInst{
		mk(0, isa.OpLoad, 1, 10, 0, 0x9000), // I1: 30-cycle load
		mk(1, isa.OpALU, 2, 1, 0, 0),        // I2
		mk(2, isa.OpLoad, 3, 11, 0, 0x9100), // I3: L1 hit
		mk(3, isa.OpALU, 2, 2, 3, 0),        // I4
		mk(4, isa.OpLoad, 4, 12, 0, 0x9200), // I5
		mk(5, isa.OpALU, 5, 4, 0, 0),        // I6
		mk(6, isa.OpALU, 6, 5, 0, 0),        // I7
		mk(7, isa.OpLoad, 7, 2, 0, 0x9300),  // I8: 200-cycle miss
		mk(8, isa.OpALU, 8, 7, 0, 0),        // I9
	}
}

// latencies charges the paper's per-instruction execution costs; predicted
// marks instructions whose results are value-predicted (their outgoing
// dependence edges cost ~1 cycle instead of their latency).
func pathLength(predicted map[uint64]bool) uint64 {
	insts := buildExample()
	lat := map[uint64]uint64{0: 30, 1: 5, 2: 5, 3: 5, 4: 5, 5: 5, 6: 5, 7: 200, 8: 1}
	cfg := ddg.Config{
		ROBSize:       224,
		FetchWidth:    4,
		CommitWidth:   8,
		FrontEndDepth: 0,
		Latency:       func(d *isa.DynInst) uint64 { return lat[d.Seq] },
		Predicted:     func(d *isa.DynInst) bool { return predicted[d.Seq] },
	}
	g := ddg.Build(insts, cfg)
	return g.Length()
}

func main() {
	base := pathLength(nil)
	fmt.Printf("critical path, no prediction:              %3d cycles (paper: 241)\n", base)

	fmt.Println("\ncritical instructions (E nodes on the path):")
	g := ddg.Build(buildExample(), ddg.Config{
		FrontEndDepth: 0,
		Latency: func(d *isa.DynInst) uint64 {
			return map[uint64]uint64{0: 30, 1: 5, 2: 5, 3: 5, 4: 5, 5: 5, 6: 5, 7: 200, 8: 1}[d.Seq]
		},
	})
	for _, s := range g.CriticalSeqs() {
		fmt.Printf("  I%d\n", s+1)
	}

	predictI8 := pathLength(map[uint64]bool{7: true})
	fmt.Printf("\npredicting only the miss I8:               %3d cycles (saves just the I9 edge)\n", predictI8)

	predictI1 := pathLength(map[uint64]bool{0: true})
	fmt.Printf("predicting I1 (LLC-hit load on the chain): %3d cycles (paper: 212, +13%% speedup)\n", predictI1)

	predictI4 := pathLength(map[uint64]bool{3: true})
	fmt.Printf("predicting I4 (closest to the root):       %3d cycles (paper: 205, +24%% speedup)\n", predictI4)

	all := map[uint64]bool{}
	for s := uint64(0); s < 9; s++ {
		all[s] = true
	}
	fmt.Printf("predicting everything:                     %3d cycles (barely better than I4 alone)\n",
		pathLength(all))

	fmt.Println("\nper-instruction slack (cycles each execution could slip):")
	slack := g.Slack()
	for i, s := range slack {
		mark := " "
		if s == 0 {
			mark = "*" // zero slack = critical
		}
		fmt.Printf("  I%d%s slack=%d\n", i+1, mark, s)
	}

	fmt.Println("\n=> one well-chosen prediction (I4) captures almost the whole win —")
	fmt.Println("   the insight behind Focused Value Prediction.")
}
