// Quickstart: run one workload with and without Focused Value Prediction
// on the Skylake baseline and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"fvp"
)

func main() {
	spec := fvp.RunSpec{
		Workload:     "omnetpp",
		Machine:      fvp.Skylake,
		Predictor:    fvp.PredFVP,
		WarmupInsts:  100_000,
		MeasureInsts: 300_000,
	}
	c, err := fvp.Compare(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %s (%s)\n", c.Workload, c.Category)
	fmt.Printf("baseline:   IPC %.3f\n", c.Base.IPC)
	fmt.Printf("with FVP:   IPC %.3f  (%+.2f%%)\n", c.Pred.IPC, (c.Speedup()-1)*100)
	fmt.Printf("coverage:   %.1f%% of loads value-predicted\n", c.Pred.Coverage*100)
	fmt.Printf("accuracy:   %.2f%% (flushes: %d)\n", c.Pred.Accuracy*100, c.Pred.VPFlushes)

	// The whole predictor fits in ~1.2 KB (paper Table I).
	fmt.Println("\nFVP storage budget:")
	total := 0
	for _, it := range fvp.FVPStorage() {
		fmt.Printf("  %-26s %4d entries  %6d bits\n", it.Name, it.Entries, it.Bits)
		total += it.Bits
	}
	fmt.Printf("  %-26s %19d bits (≈%.1f KB)\n", "total", total, float64(total)/8/1024)
}
