// Package memdep implements the store-sets memory-dependence predictor of
// Chrysos & Emer, which the simulated core uses as its "aggressive memory
// disambiguation predictor" (paper Table II). Loads issue speculatively past
// stores with unresolved addresses unless the predictor has learned, from
// past ordering violations, that the load belongs to a store's set.
package memdep

// StoreSets is the SSIT + LFST pair.
//
// SSIT (store-set ID table) maps instruction PCs (loads and stores) to a
// store-set ID. LFST (last fetched store table) maps a store-set ID to the
// sequence number of the most recently dispatched store in that set. A load
// whose PC has a valid SSID must wait for LFST[SSID]; a store with a valid
// SSID inherits the same ordering and then becomes the set's last store.
type StoreSets struct {
	ssit     []uint32 // 0 = invalid, otherwise SSID+1
	ssitMask uint64
	lfst     []lfstEntry
	nextSSID uint32

	Violations  uint64
	Assignments uint64
}

type lfstEntry struct {
	seq   uint64
	valid bool
}

// New builds a predictor with 2^ssitBits SSIT entries and 2^lfstBits store
// sets.
func New(ssitBits, lfstBits uint) *StoreSets {
	return &StoreSets{
		ssit:     make([]uint32, 1<<ssitBits),
		ssitMask: 1<<ssitBits - 1,
		lfst:     make([]lfstEntry, 1<<lfstBits),
	}
}

func (s *StoreSets) idx(pc uint64) uint64 { return (pc >> 2) & s.ssitMask }

func (s *StoreSets) ssidOf(pc uint64) (uint32, bool) {
	v := s.ssit[s.idx(pc)]
	if v == 0 {
		return 0, false
	}
	return (v - 1) % uint32(len(s.lfst)), true
}

// DispatchLoad is called when a load enters the window. It returns the
// sequence number of the store the load must wait for, if any.
func (s *StoreSets) DispatchLoad(pc uint64) (waitFor uint64, ok bool) {
	ssid, valid := s.ssidOf(pc)
	if !valid {
		return 0, false
	}
	e := s.lfst[ssid]
	return e.seq, e.valid
}

// DispatchStore is called when a store enters the window. It returns the
// older store this one must order after (store-store ordering within a set)
// and records this store as the set's last.
func (s *StoreSets) DispatchStore(pc, seq uint64) (waitFor uint64, ok bool) {
	ssid, valid := s.ssidOf(pc)
	if !valid {
		return 0, false
	}
	e := s.lfst[ssid]
	s.lfst[ssid] = lfstEntry{seq: seq, valid: true}
	return e.seq, e.valid
}

// CompleteStore clears the LFST entry if this store is still the set's last
// (so later loads stop waiting on an already-executed store).
func (s *StoreSets) CompleteStore(pc, seq uint64) {
	ssid, valid := s.ssidOf(pc)
	if !valid {
		return
	}
	if e := s.lfst[ssid]; e.valid && e.seq == seq {
		s.lfst[ssid] = lfstEntry{}
	}
}

// Violation trains the predictor after the core detected that the load at
// loadPC issued before a conflicting older store at storePC. Both PCs are
// merged into one store set per the store-sets assignment rules.
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	s.Violations++
	li, si := s.idx(loadPC), s.idx(storePC)
	lv, sv := s.ssit[li], s.ssit[si]
	switch {
	case lv == 0 && sv == 0:
		s.nextSSID++
		id := s.nextSSID
		s.ssit[li], s.ssit[si] = id, id
		s.Assignments++
	case lv != 0 && sv == 0:
		s.ssit[si] = lv
	case lv == 0 && sv != 0:
		s.ssit[li] = sv
	default:
		// Both assigned: converge on the smaller ID (declining merge).
		if lv < sv {
			s.ssit[si] = lv
		} else {
			s.ssit[li] = sv
		}
	}
}

// WarmLoad is the functional-warmup tap for a load: the same SSIT/LFST
// consultation a dispatch would do, keeping lookup statistics and table
// touch order identical to a detailed run's in-order dispatch stream.
func (s *StoreSets) WarmLoad(pc uint64) {
	s.DispatchLoad(pc)
}

// WarmStore is the functional-warmup tap for a store: dispatch followed by
// immediate completion, since functional execution retires in order and a
// store is never pending past the next instruction. Note the inherent
// limit of functional warming here: SSIT assignments come only from
// ordering violations, which cannot occur without out-of-order issue, so
// store-sets training still begins with detailed execution — warming keeps
// the LFST protocol state consistent, nothing more.
func (s *StoreSets) WarmStore(pc, seq uint64) {
	s.DispatchStore(pc, seq)
	s.CompleteStore(pc, seq)
}

// Reset restores the just-constructed state (empty SSIT and LFST, zeroed
// counters) without reallocating the tables.
func (s *StoreSets) Reset() {
	for i := range s.ssit {
		s.ssit[i] = 0
	}
	for i := range s.lfst {
		s.lfst[i] = lfstEntry{}
	}
	s.nextSSID = 0
	s.Violations = 0
	s.Assignments = 0
}

// Flush invalidates all LFST entries (on pipeline squash the recorded store
// sequence numbers may refer to squashed stores).
func (s *StoreSets) Flush() {
	for i := range s.lfst {
		s.lfst[i] = lfstEntry{}
	}
}
