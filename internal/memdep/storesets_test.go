package memdep

import (
	"testing"
	"testing/quick"
)

func TestColdPredictorImposesNothing(t *testing.T) {
	s := New(10, 6)
	if _, ok := s.DispatchLoad(0x400); ok {
		t.Error("untrained predictor must not order loads")
	}
	if _, ok := s.DispatchStore(0x500, 1); ok {
		t.Error("untrained predictor must not order stores")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := New(10, 6)
	s.Violation(0x400, 0x500)
	// The store dispatches, registering itself as the set's last store.
	if _, ok := s.DispatchStore(0x500, 42); ok {
		t.Error("first store dispatch should find no prior store")
	}
	// The load must now wait for it.
	seq, ok := s.DispatchLoad(0x400)
	if !ok || seq != 42 {
		t.Errorf("load waits for %d,%v want 42", seq, ok)
	}
}

func TestCompleteStoreClearsLFST(t *testing.T) {
	s := New(10, 6)
	s.Violation(0x400, 0x500)
	s.DispatchStore(0x500, 42)
	s.CompleteStore(0x500, 42)
	if _, ok := s.DispatchLoad(0x400); ok {
		t.Error("completed store must not gate loads")
	}
}

func TestCompleteStoreStaleSeqIgnored(t *testing.T) {
	s := New(10, 6)
	s.Violation(0x400, 0x500)
	s.DispatchStore(0x500, 42)
	s.DispatchStore(0x500, 50) // newer instance takes over
	s.CompleteStore(0x500, 42) // stale completion must not clear 50
	seq, ok := s.DispatchLoad(0x400)
	if !ok || seq != 50 {
		t.Errorf("load waits for %d,%v want 50", seq, ok)
	}
}

func TestStoreStoreOrderingWithinSet(t *testing.T) {
	s := New(10, 6)
	s.Violation(0x400, 0x500)
	s.Violation(0x400, 0x600) // merge second store into the set
	s.DispatchStore(0x500, 10)
	seq, ok := s.DispatchStore(0x600, 11)
	if !ok || seq != 10 {
		t.Errorf("second store orders after %d,%v want 10", seq, ok)
	}
}

func TestMergeRules(t *testing.T) {
	s := New(10, 6)
	// Both unassigned → new set.
	s.Violation(0x100, 0x200)
	if s.Assignments != 1 {
		t.Errorf("assignments = %d", s.Assignments)
	}
	// Load assigned, store not → store joins load's set.
	s.Violation(0x100, 0x300)
	s.DispatchStore(0x300, 7)
	if seq, ok := s.DispatchLoad(0x100); !ok || seq != 7 {
		t.Errorf("store did not join load's set (seq=%d ok=%v)", seq, ok)
	}
	// Store assigned, load not → load joins store's set.
	s.Violation(0x180, 0x300)
	s.DispatchStore(0x300, 9)
	if seq, ok := s.DispatchLoad(0x180); !ok || seq != 9 {
		t.Errorf("load did not join store's set (seq=%d ok=%v)", seq, ok)
	}
	if s.Violations != 3 {
		t.Errorf("violations = %d", s.Violations)
	}
}

func TestFlushClearsLFSTOnly(t *testing.T) {
	s := New(10, 6)
	s.Violation(0x400, 0x500)
	s.DispatchStore(0x500, 42)
	s.Flush()
	if _, ok := s.DispatchLoad(0x400); ok {
		t.Error("flush must clear in-flight store records")
	}
	// The SSIT association itself survives the flush.
	s.DispatchStore(0x500, 60)
	if seq, ok := s.DispatchLoad(0x400); !ok || seq != 60 {
		t.Errorf("association lost across flush (seq=%d ok=%v)", seq, ok)
	}
}

// Property: after Violation(l, s) and a store dispatch, the load always
// waits on that store.
func TestViolationAlwaysOrdersProperty(t *testing.T) {
	f := func(lpc, spc uint16, seq uint8) bool {
		if lpc == spc {
			return true // degenerate alias
		}
		s := New(8, 5)
		s.Violation(uint64(lpc)<<2, uint64(spc)<<2)
		s.DispatchStore(uint64(spc)<<2, uint64(seq))
		got, ok := s.DispatchLoad(uint64(lpc) << 2)
		return ok && got == uint64(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
