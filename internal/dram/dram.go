// Package dram models the main-memory timing of the simulated machine: a
// DDR4-2133-like controller with two channels, two ranks per channel, eight
// banks per rank, 2 KiB row buffers and 15-15-15-39 (tCAS-tRCD-tRP-tRAS)
// timing (paper Table II). All times are expressed in core cycles: at a
// 3.2 GHz core and a 1066 MHz memory command clock, one memory cycle is
// three core cycles.
package dram

// Config describes the memory organization and timing.
type Config struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// Timing in memory-clock cycles.
	TCAS, TRCD, TRP, TRAS int
	// CoreCyclesPerMemCycle converts memory cycles to core cycles.
	CoreCyclesPerMemCycle int
	// BurstCycles is the data-transfer occupancy per 64B line, in memory
	// cycles (BL8 on a 64-bit bus = 4 bus clocks).
	BurstCycles int
}

// DDR4_2133 is the paper's memory configuration.
func DDR4_2133() Config {
	return Config{
		Channels:              2,
		RanksPerChan:          2,
		BanksPerRank:          8,
		RowBytes:              2048,
		TCAS:                  15,
		TRCD:                  15,
		TRP:                   15,
		TRAS:                  39,
		CoreCyclesPerMemCycle: 3,
		BurstCycles:           4,
	}
}

type bank struct {
	openRow   uint64
	rowValid  bool
	readyAt   uint64 // bank busy until (core cycles)
	actAt     uint64 // when the open row was activated (for tRAS)
	RowHits   uint64
	RowMisses uint64
}

// Controller is the DRAM timing model. It is not a full command scheduler:
// requests are served per-bank first-come-first-served, which captures row
// locality, bank parallelism and channel bandwidth — the properties that
// make loads "delinquent" — without modelling command-bus arbitration.
type Controller struct {
	cfg   Config
	banks []bank // [channel][rank][bank] flattened

	Reads     uint64
	RowHits   uint64
	RowMisses uint64
	// TotalLatency accumulates per-read core-cycle latency for averaging.
	TotalLatency uint64
}

// New builds a controller from cfg.
func New(cfg Config) *Controller {
	n := cfg.Channels * cfg.RanksPerChan * cfg.BanksPerRank
	if n <= 0 {
		panic("dram: empty organization")
	}
	return &Controller{cfg: cfg, banks: make([]bank, n)}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset restores the just-constructed state (all rows closed, banks idle,
// stats zeroed) without reallocating the bank array.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = bank{}
	}
	c.Reads = 0
	c.RowHits = 0
	c.RowMisses = 0
	c.TotalLatency = 0
}

// mapAddr splits a physical line address into (bank index, row).
// Address bits: [line offset][channel][bank][rank][column within row][row].
func (c *Controller) mapAddr(addr uint64) (bankIdx int, row uint64) {
	line := addr >> 6
	ch := int(line) % c.cfg.Channels
	line /= uint64(c.cfg.Channels)
	bk := int(line) % c.cfg.BanksPerRank
	line /= uint64(c.cfg.BanksPerRank)
	rk := int(line) % c.cfg.RanksPerChan
	line /= uint64(c.cfg.RanksPerChan)
	colLines := c.cfg.RowBytes / 64
	row = line / colLines
	bankIdx = (ch*c.cfg.RanksPerChan+rk)*c.cfg.BanksPerRank + bk
	return bankIdx, row
}

func (c *Controller) mem(n int) uint64 {
	return uint64(n * c.cfg.CoreCyclesPerMemCycle)
}

// Access issues a read (or writeback) for the line containing addr at core
// cycle now and returns the core cycle the data has transferred. Row-buffer
// state and bank occupancy persist across calls.
func (c *Controller) Access(now uint64, addr uint64) uint64 {
	bi, row := c.mapAddr(addr)
	b := &c.banks[bi]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var done uint64
	if b.rowValid && b.openRow == row {
		// Row hit: CAS + burst.
		b.RowHits++
		c.RowHits++
		done = start + c.mem(c.cfg.TCAS) + c.mem(c.cfg.BurstCycles)
	} else {
		// Row miss: honour tRAS on the open row, then precharge,
		// activate, CAS.
		b.RowMisses++
		c.RowMisses++
		if b.rowValid {
			minPre := b.actAt + c.mem(c.cfg.TRAS)
			if minPre > start {
				start = minPre
			}
			start += c.mem(c.cfg.TRP)
		}
		b.actAt = start
		b.openRow = row
		b.rowValid = true
		done = start + c.mem(c.cfg.TRCD) + c.mem(c.cfg.TCAS) + c.mem(c.cfg.BurstCycles)
	}
	b.readyAt = done
	c.Reads++
	c.TotalLatency += done - now
	return done
}

// AvgLatency returns the mean core-cycle latency of all reads so far.
func (c *Controller) AvgLatency() float64 {
	if c.Reads == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.Reads)
}

// RowHitRate returns row-buffer hits per access.
func (c *Controller) RowHitRate() float64 {
	total := c.RowHits + c.RowMisses
	if total == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(total)
}
