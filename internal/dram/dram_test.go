package dram

import "testing"

func TestRowHitFasterThanMiss(t *testing.T) {
	c := New(DDR4_2133())
	// Consecutive lines interleave across channels; the next line of the
	// SAME bank/row is one full channel×rank×bank stride away.
	cfg := c.Config()
	colStride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * 64
	first := c.Access(0, 0)              // row miss (activate)
	second := c.Access(first, colStride) // same row: hit
	hitLat := second - first
	missLat := first - 0
	if hitLat >= missLat {
		t.Errorf("row hit (%d) must be faster than row miss (%d)", hitLat, missLat)
	}
	if c.RowHits != 1 || c.RowMisses != 1 {
		t.Errorf("hits=%d misses=%d", c.RowHits, c.RowMisses)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := New(DDR4_2133())
	cfg := c.Config()
	// Two different rows of the same bank: stride one full row per bank
	// set. Compute an address pair mapping to the same bank, different
	// row: same channel/bank/rank bits, row bit flipped.
	rowStride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * cfg.RowBytes
	a, b := uint64(0), rowStride
	ba, _ := c.mapAddr(a)
	bb, _ := c.mapAddr(b)
	if ba != bb {
		t.Fatalf("test addresses map to banks %d and %d", ba, bb)
	}
	d1 := c.Access(0, a)
	d2 := c.Access(0, b) // issued same cycle, must wait for bank
	if d2 <= d1 {
		t.Errorf("same-bank accesses must serialize: %d then %d", d1, d2)
	}
}

func TestBankParallelism(t *testing.T) {
	c := New(DDR4_2133())
	// Consecutive lines map to different channels/banks: issued at the
	// same cycle they should overlap substantially.
	d1 := c.Access(0, 0)
	d2 := c.Access(0, 64)
	if d2 > d1+3 { // different channel: nearly identical finish time
		t.Errorf("different-bank accesses should overlap: %d vs %d", d1, d2)
	}
}

func TestMapAddrDistributes(t *testing.T) {
	c := New(DDR4_2133())
	counts := make(map[int]int)
	for i := 0; i < 1024; i++ {
		b, _ := c.mapAddr(uint64(i * 64))
		counts[b]++
	}
	nBanks := c.Config().Channels * c.Config().RanksPerChan * c.Config().BanksPerRank
	if len(counts) != nBanks {
		t.Errorf("sequential lines touch %d banks, want %d", len(counts), nBanks)
	}
	for b, n := range counts {
		if n != 1024/nBanks {
			t.Errorf("bank %d has %d accesses, want uniform %d", b, n, 1024/nBanks)
		}
	}
}

func TestTRASHonored(t *testing.T) {
	cfg := DDR4_2133()
	c := New(cfg)
	rowStride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * cfg.RowBytes
	c.Access(0, 0)
	// Immediately force a precharge of the same bank: the activate of
	// the new row cannot begin before tRAS expires.
	d2 := c.Access(0, rowStride)
	minDone := uint64((cfg.TRAS + cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.BurstCycles) *
		cfg.CoreCyclesPerMemCycle)
	if d2 < minDone {
		t.Errorf("second access done at %d, must be ≥ %d (tRAS+tRP+tRCD+tCAS+burst)", d2, minDone)
	}
}

func TestAvgLatencyAndStats(t *testing.T) {
	c := New(DDR4_2133())
	if c.AvgLatency() != 0 || c.RowHitRate() != 0 {
		t.Error("fresh controller must report zero stats")
	}
	c.Access(0, 0)
	c.Access(200, 64)
	if c.Reads != 2 {
		t.Errorf("reads = %d", c.Reads)
	}
	if c.AvgLatency() <= 0 {
		t.Error("average latency must be positive")
	}
}

func TestEmptyOrganizationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty organization must panic")
		}
	}()
	New(Config{})
}

func TestLatencyMagnitudes(t *testing.T) {
	// The paper's example charges ~200 cycles for a memory access at
	// 3.2 GHz; a single row-miss access here should be in the
	// 100–200 core-cycle ballpark before on-die return overheads.
	c := New(DDR4_2133())
	d := c.Access(0, 0x123440)
	if d < 80 || d > 250 {
		t.Errorf("row-miss latency %d cycles out of the expected ballpark", d)
	}
}
