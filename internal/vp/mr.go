package vp

import (
	"fmt"

	"fvp/internal/isa"
)

// MR implements Memory Renaming (Tyson & Austin): it learns store→load PC
// pairs from LSQ forwarding events and, once confident, predicts the load's
// value to be the associated store's data — before the load's address is
// even computed. The association is held implicitly: the store's and the
// load's Store/Load-cache entries point at the same Value File slot; the
// store deposits its identity (and later its data) there, and the load
// picks it up.
//
// MR is used standalone as the paper's first prior-art baseline (8 KB and
// 1 KB configurations, Figs 10/11) and embedded inside FVP (internal/core)
// for its memory-dependence component.
type MR struct {
	cfg    MRConfig
	sl     []slEntry // store/load PC cache
	slMask uint64
	vf     []vfEntry // value file
	nextVF int
	tick   uint64
	// Critical, when non-nil, gates load-side renaming to loads the
	// filter approves (FVP restricts MR to focused loads; standalone MR
	// renames everything).
	Critical func(loadPC uint64) bool

	Associations uint64 // learned pairs
	Renames      uint64 // load lookups that produced a prediction
}

type slEntry struct {
	tag   uint16
	valid bool
	conf  uint8 // 3-bit
	lru   uint8 // 2-bit (kept as the paper sizes it; aged modulo 4)
	vfIdx int32
}

type vfEntry struct {
	storeSeq  uint64
	storePC   uint64
	data      uint64
	seqValid  bool
	dataValid bool
}

// MRConfig sizes the structure.
type MRConfig struct {
	// SLEntries is the Store/Load PC cache size (direct-mapped).
	SLEntries int
	// VFEntries is the Value File size.
	VFEntries int
	// ConfThreshold is the confidence needed to rename (3-bit counter).
	ConfThreshold uint8
}

// PaperMRConfig is the FVP-internal sizing from Table I: 136-entry
// Store/Load cache, 40-entry Value File.
func PaperMRConfig() MRConfig {
	return MRConfig{SLEntries: 136, VFEntries: 40, ConfThreshold: 7}
}

// MR8KBConfig is the large standalone baseline (≈8 KB).
func MR8KBConfig() MRConfig {
	return MRConfig{SLEntries: 2048, VFEntries: 760, ConfThreshold: 7}
}

// MR1KBConfig is the area-matched standalone baseline (≈1 KB).
func MR1KBConfig() MRConfig {
	return MRConfig{SLEntries: 256, VFEntries: 56, ConfThreshold: 7}
}

// NewMR builds a Memory Renaming predictor.
func NewMR(cfg MRConfig) *MR {
	if cfg.SLEntries <= 0 || cfg.VFEntries <= 0 {
		panic("vp: empty MR configuration")
	}
	m := &MR{cfg: cfg}
	n := cfg.SLEntries
	for n&(n-1) != 0 {
		n &= n - 1
	}
	m.sl = make([]slEntry, n)
	m.slMask = uint64(n - 1)
	m.vf = make([]vfEntry, cfg.VFEntries)
	for i := range m.sl {
		m.sl[i].vfIdx = -1
	}
	return m
}

func (m *MR) at(pc uint64) *slEntry { return &m.sl[(pc>>2)&m.slMask] }

// Name implements Predictor.
func (m *MR) Name() string { return fmt.Sprintf("MR-%d/%d", len(m.sl), len(m.vf)) }

// Lookup implements Predictor. Loads with a confident association read the
// Value File; stores deposit their sequence number there (their Lookup
// returns no prediction but has the allocation side effect, mirroring the
// hardware where stores access the MR at allocation).
func (m *MR) Lookup(d *isa.DynInst, _ *Ctx) Prediction {
	e := m.at(d.PC)
	if !e.valid || e.tag != tag11(d.PC) || e.vfIdx < 0 {
		return Prediction{}
	}
	if d.Op.IsStore() {
		if e.conf >= m.cfg.ConfThreshold {
			m.vf[e.vfIdx] = vfEntry{storeSeq: d.Seq, storePC: d.PC, seqValid: true}
		}
		return Prediction{}
	}
	if !d.Op.IsLoad() || e.conf < m.cfg.ConfThreshold {
		return Prediction{}
	}
	if m.Critical != nil && !m.Critical(d.PC) {
		return Prediction{}
	}
	v := &m.vf[e.vfIdx]
	if !v.seqValid || v.storeSeq >= d.Seq {
		return Prediction{}
	}
	m.Renames++
	return Prediction{
		Valid:       true,
		Value:       v.data,
		StoreLinked: true,
		StoreSeq:    v.storeSeq,
		DataReady:   v.dataValid,
	}
}

// Train implements Predictor. A store that owns a Value File slot deposits
// its data when it executes; a renamed load that validated wrong loses
// confidence.
func (m *MR) Train(d *isa.DynInst, _ *Ctx, info TrainInfo) {
	e := m.at(d.PC)
	if !e.valid || e.tag != tag11(d.PC) || e.vfIdx < 0 {
		return
	}
	if d.Op.IsStore() {
		v := &m.vf[e.vfIdx]
		if v.seqValid && v.storeSeq == d.Seq {
			v.data = d.Value
			v.dataValid = true
		}
		return
	}
	if d.Op.IsLoad() && info.WasPredicted && !info.Correct {
		e.conf = 0
	}
}

// OnForward implements Predictor: the LSQ observed storePC forwarding to
// loadPC. Both PCs converge on one Value File slot and gain confidence.
func (m *MR) OnForward(loadPC, storePC uint64) {
	ls, ss := m.at(loadPC), m.at(storePC)
	m.tick++

	lOK := ls.valid && ls.tag == tag11(loadPC)
	sOK := ss.valid && ss.tag == tag11(storePC)
	switch {
	case lOK && sOK && ls.vfIdx == ss.vfIdx:
		// Confirmed pair: build confidence on both sides.
		if ls.conf < 7 {
			ls.conf++
		}
		if ss.conf < 7 {
			ss.conf++
		}
	case sOK:
		// Store known: point the load at the store's slot.
		*ls = slEntry{tag: tag11(loadPC), valid: true, vfIdx: ss.vfIdx}
	default:
		// New pair: allocate a Value File slot round-robin.
		idx := int32(m.nextVF)
		m.nextVF = (m.nextVF + 1) % len(m.vf)
		m.vf[idx] = vfEntry{}
		*ss = slEntry{tag: tag11(storePC), valid: true, vfIdx: idx}
		*ls = slEntry{tag: tag11(loadPC), valid: true, vfIdx: idx}
		m.Associations++
	}
}

// OnRetire implements Predictor.
func (m *MR) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor (Value-File links are validated by sequence
// number; no speculative cursor to repair).
func (m *MR) OnFlush() {}

// StorageBits implements Predictor, using the paper's Table-I accounting:
// Store/Load entries are tag(11)+conf(3)+LRU(2); Value File entries are
// data(64)+store ID(6).
func (m *MR) StorageBits() int {
	return len(m.sl)*(11+3+2) + len(m.vf)*(64+6)
}
