package vp

import (
	"testing"

	"fvp/internal/isa"
)

func load(pc, addr, value uint64) *isa.DynInst {
	return &isa.DynInst{PC: pc, Op: isa.OpLoad, Dst: 2, Src1: 1, Addr: addr, Value: value, MemSize: 8}
}

func alu(pc, value uint64) *isa.DynInst {
	return &isa.DynInst{PC: pc, Op: isa.OpALU, Dst: 3, Src1: 1, Value: value}
}

// trainN trains p with n identical executions of d.
func trainN(p Predictor, d *isa.DynInst, n int) {
	ctx := &Ctx{}
	for i := 0; i < n; i++ {
		p.Train(d, ctx, TrainInfo{})
	}
}

func TestNonePredictsNothing(t *testing.T) {
	var n None
	if p := n.Lookup(load(0x400, 0x1000, 5), &Ctx{}); p.Valid {
		t.Error("None must not predict")
	}
	if n.StorageBits() != 0 {
		t.Error("None has no storage")
	}
}

func TestMeterMetrics(t *testing.T) {
	m := Meter{Loads: 100, PredictedLoads: 25, Correct: 99, Wrong: 1}
	if m.Coverage() != 0.25 {
		t.Errorf("coverage = %v", m.Coverage())
	}
	if m.Accuracy() != 0.99 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
	var z Meter
	if z.Coverage() != 0 || z.Accuracy() != 0 {
		t.Error("zero meter must not divide by zero")
	}
}

func TestLVPLearnsConstant(t *testing.T) {
	l := NewLVP(32, 2, 1)
	d := load(0x400, 0x1000, 42)
	// Probabilistic confidence (1/16): needs many repeats.
	trainN(l, d, 600)
	p := l.Lookup(d, &Ctx{})
	if !p.Valid || p.Value != 42 {
		t.Fatalf("LVP after 600 repeats: %+v", p)
	}
}

func TestLVPRejectsChangingValue(t *testing.T) {
	l := NewLVP(32, 2, 1)
	ctx := &Ctx{}
	for i := 0; i < 600; i++ {
		d := load(0x400, 0x1000, uint64(i))
		l.Train(d, ctx, TrainInfo{})
	}
	if p := l.Lookup(load(0x400, 0x1000, 0), ctx); p.Valid {
		t.Error("LVP must not predict a changing value")
	}
}

func TestLVPLoadsOnly(t *testing.T) {
	l := NewLVP(32, 2, 1)
	d := alu(0x500, 7)
	trainN(l, d, 600)
	if p := l.Lookup(d, &Ctx{}); p.Valid {
		t.Error("LoadsOnly LVP predicted an ALU op")
	}
	l.LoadsOnly = false
	trainN(l, d, 600)
	if p := l.Lookup(d, &Ctx{}); !p.Valid || p.Value != 7 {
		t.Errorf("all-types LVP: %+v", p)
	}
}

func TestLVPConfidenceResetOnChange(t *testing.T) {
	l := NewLVP(32, 2, 1)
	d := load(0x400, 0x1000, 42)
	trainN(l, d, 600)
	l.Train(load(0x400, 0x1000, 43), &Ctx{}, TrainInfo{})
	if p := l.Lookup(d, &Ctx{}); p.Valid {
		t.Error("one value change must reset confidence")
	}
}

func TestStrideLearnsSequence(t *testing.T) {
	s := NewStride(6)
	ctx := &Ctx{}
	for i := 0; i < 10; i++ {
		s.Train(load(0x400, 0x1000, uint64(100+i*8)), ctx, TrainInfo{})
	}
	p := s.Lookup(load(0x400, 0x1000, 0), ctx)
	if !p.Valid || p.Value != 100+10*8 {
		t.Errorf("stride prediction: %+v, want value %d", p, 100+10*8)
	}
}

func TestStrideRejectsIrregular(t *testing.T) {
	s := NewStride(6)
	ctx := &Ctx{}
	vals := []uint64{5, 90, 13, 77, 41, 8}
	for _, v := range vals {
		s.Train(load(0x400, 0x1000, v), ctx, TrainInfo{})
	}
	if p := s.Lookup(load(0x400, 0x1000, 0), ctx); p.Valid {
		t.Error("stride must not predict an irregular sequence")
	}
}

func TestCVPContextSeparation(t *testing.T) {
	c := NewCVP(64, nil, 1)
	d := load(0x400, 0x1000, 0)
	ctxA := &Ctx{Hist: 0b1010}
	ctxB := &Ctx{Hist: 0b0101}
	for i := 0; i < 900; i++ {
		d.Value = 111
		c.Train(d, ctxA, TrainInfo{})
		d.Value = 222
		c.Train(d, ctxB, TrainInfo{})
	}
	pa := c.Lookup(d, ctxA)
	pb := c.Lookup(d, ctxB)
	if !pa.Valid || pa.Value != 111 {
		t.Errorf("context A: %+v", pa)
	}
	if !pb.Valid || pb.Value != 222 {
		t.Errorf("context B: %+v", pb)
	}
}

func TestSAPPredictsViaAddress(t *testing.T) {
	s := NewSAP(6)
	mem := map[uint64]uint64{0x1020: 777}
	ctx := &Ctx{
		MemPeek:    func(a uint64) uint64 { return mem[a] },
		CacheLevel: func(a uint64) int { return 0 },
	}
	for i := 0; i < 8; i++ {
		s.Train(load(0x400, uint64(0x1000+i*4), 0), ctx, TrainInfo{})
	}
	// Next address is 0x1020; the value there is 777.
	p := s.Lookup(load(0x400, 0, 0), ctx)
	if !p.Valid || p.Value != 777 {
		t.Errorf("SAP: %+v", p)
	}
}

func TestSAPRespectsCacheLevel(t *testing.T) {
	s := NewSAP(6)
	ctx := &Ctx{
		MemPeek:    func(a uint64) uint64 { return 1 },
		CacheLevel: func(a uint64) int { return 3 }, // uncached
	}
	for i := 0; i < 8; i++ {
		s.Train(load(0x400, uint64(0x1000+i*4), 0), ctx, TrainInfo{})
	}
	if p := s.Lookup(load(0x400, 0, 0), ctx); p.Valid {
		t.Error("SAP must not predict when the line is uncached (DLVP probes the cache)")
	}
}

func TestCAPLearnsContextAddress(t *testing.T) {
	c := NewCAP(6, 16)
	mem := map[uint64]uint64{0x2000: 5, 0x3000: 9}
	mk := func(hist uint64) *Ctx {
		return &Ctx{
			Hist:       hist,
			MemPeek:    func(a uint64) uint64 { return mem[a] },
			CacheLevel: func(a uint64) int { return 1 },
		}
	}
	for i := 0; i < 8; i++ {
		c.Train(load(0x400, 0x2000, 0), mk(0xF), TrainInfo{})
		c.Train(load(0x400, 0x3000, 0), mk(0x0), TrainInfo{})
	}
	if p := c.Lookup(load(0x400, 0, 0), mk(0xF)); !p.Valid || p.Value != 5 {
		t.Errorf("CAP hist=F: %+v", p)
	}
	if p := c.Lookup(load(0x400, 0, 0), mk(0x0)); !p.Valid || p.Value != 9 {
		t.Errorf("CAP hist=0: %+v", p)
	}
}

func TestCompositePriority(t *testing.T) {
	c := NewComposite8KB(1)
	d := load(0x400, 0x1000, 42)
	trainN(c, d, 900)
	p := c.Lookup(d, &Ctx{})
	if !p.Valid || p.Value != 42 {
		t.Errorf("composite: %+v", p)
	}
}

func TestCompositeStorageBudgets(t *testing.T) {
	b8 := NewComposite8KB(1).StorageBits() / 8
	b1 := NewComposite1KB(1).StorageBits() / 8
	if b8 < 6<<10 || b8 > 10<<10 {
		t.Errorf("Composite-8KB budget = %d bytes", b8)
	}
	if b1 < 512 || b1 > 1536 {
		t.Errorf("Composite-1KB budget = %d bytes", b1)
	}
	if b8 < 6*b1 {
		t.Errorf("8KB (%d) should be ≈8× the 1KB config (%d)", b8, b1)
	}
}

func TestMRStorageBudgets(t *testing.T) {
	b8 := NewMR(MR8KBConfig()).StorageBits() / 8
	b1 := NewMR(MR1KBConfig()).StorageBits() / 8
	if b8 < 6<<10 || b8 > 12<<10 {
		t.Errorf("MR-8KB budget = %d bytes", b8)
	}
	if b1 < 512 || b1 > 1536 {
		t.Errorf("MR-1KB budget = %d bytes", b1)
	}
}
