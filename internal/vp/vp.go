// Package vp defines the value-prediction framework the core drives —
// the Predictor interface and the shared measurement plumbing — plus the
// prior-art predictors FVP is compared against in the paper's evaluation:
// Last-Value (LVP), stride, a VTAGE-like context predictor (CVP), the
// DLVP-style stride/context address predictors (SAP/CAP), their Composite
// combination (Sheikh & Hower, HPCA'19) and standalone Memory Renaming
// (Tyson & Austin). The paper's own predictor lives in internal/core.
package vp

import "fvp/internal/isa"

// Prediction is the outcome of a front-end lookup for one instruction.
type Prediction struct {
	// Valid is true when the predictor supplies a prediction.
	Valid bool
	// Value is the predicted result, used both to wake consumers and to
	// validate at execute. For store-linked predictions the core
	// overwrites it with the forwarding store's data.
	Value uint64
	// StoreLinked marks a Memory-Renaming prediction: the value comes
	// from the store identified by StoreSeq rather than from a table.
	// When DataReady is false the store has not executed yet, and the
	// load's consumers wake only when it does.
	StoreLinked bool
	// StoreSeq is the dynamic sequence number of the associated store.
	StoreSeq uint64
	// DataReady is true when Value already holds the store's data.
	DataReady bool
}

// Ctx carries the core-side state a predictor may consult. One Ctx is
// reused per core; fields are refreshed before each call.
type Ctx struct {
	// Hist is the outcome of the last 32 conditional branches (bit 0 =
	// most recent), the context FVP and the CVP key on.
	Hist uint64
	// Parents holds the PCs of the instructions that produced this
	// instruction's register sources, recovered from the RAT-PC
	// extension at rename (0 = none / zero register).
	Parents [2]uint64
	// NumParents is how many Parents entries are valid.
	NumParents int
	// MemPeek reads the retired architectural memory image (what DLVP's
	// early cache probe would return). Nil when unavailable.
	MemPeek func(addr uint64) uint64
	// CacheLevel reports where addr currently resides: 0=L1, 1=L2,
	// 2=LLC, 3=memory. Address predictors only deliver a value when the
	// line is cached (the DLVP probe reads the data cache, not DRAM).
	CacheLevel func(addr uint64) int
}

// TrainInfo carries the execution-time facts training hooks use.
type TrainInfo struct {
	// NearHead is true when the instruction executed while within the
	// commit width of the ROB head — the retirement-stall criticality
	// signal (paper §IV-A1).
	NearHead bool
	// L1Miss / LLCMiss describe a load's service level.
	L1Miss  bool
	LLCMiss bool
	// Forwarded is true when this load instance received its data from
	// an older in-flight store via the LSQ (it has a live memory
	// dependence, §III-A/§IV-D).
	Forwarded bool
	// OracleCritical is set by the graph-buffering oracle policy when the
	// instruction's execution lies on the measured critical path.
	OracleCritical bool
	// MispredictedBranchChain is set when the instruction feeds a
	// mispredicting branch (§VI-A3 experiment).
	MispredictedBranchChain bool
	// WasPredicted / Correct report what happened to this instruction's
	// own value prediction, for confidence management.
	WasPredicted bool
	Correct      bool
}

// Predictor is a value predictor as seen by the core.
//
// Call protocol, per dynamic instruction: Lookup at allocation (front-end),
// Train at execution writeback, OnRetire at commit. OnForward fires when the
// LSQ forwards store data to a load.
type Predictor interface {
	// Name identifies the configuration in reports ("FVP", "Comp-8KB"...).
	Name() string
	// Lookup returns a prediction for d at allocation time.
	Lookup(d *isa.DynInst, ctx *Ctx) Prediction
	// Train observes d's execution (actual value, addresses, criticality
	// signals).
	Train(d *isa.DynInst, ctx *Ctx, info TrainInfo)
	// OnForward observes a store→load forwarding event in the LSQ.
	OnForward(loadPC, storePC uint64)
	// OnRetire observes in-order commit (drives epoch counters).
	OnRetire(d *isa.DynInst)
	// OnFlush observes a pipeline squash: speculatively-advanced
	// predictor state (DLVP-style address cursors) must be repaired,
	// exactly as hardware restores checkpointed predictor state.
	OnFlush()
	// StorageBits returns the predictor's total state budget in bits,
	// for like-for-like area comparisons (paper Table I, Figs 10/11).
	StorageBits() int
}

// Warmer is an optional fast-warming interface a Predictor may implement.
// During functional warmup the core calls WarmObserve once per retired
// instruction instead of the full Lookup/Train/OnRetire triple; a
// predictor whose tables can be trained more cheaply from the
// architectural stream (or not at all) can shortcut here. Predictors that
// do not implement Warmer are warmed through the full call protocol, which
// is always correct — it performs exactly the table updates a detailed
// run's in-order train path would.
type Warmer interface {
	WarmObserve(d *isa.DynInst, ctx *Ctx, info TrainInfo)
}

// None is the no-prediction baseline. Its zero value is ready to use.
type None struct{}

// Name implements Predictor.
func (None) Name() string { return "baseline" }

// Lookup implements Predictor (never predicts).
func (None) Lookup(*isa.DynInst, *Ctx) Prediction { return Prediction{} }

// Train implements Predictor.
func (None) Train(*isa.DynInst, *Ctx, TrainInfo) {}

// OnForward implements Predictor.
func (None) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (None) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (None) OnFlush() {}

// WarmObserve implements Warmer: the baseline has no tables to warm, so
// functional warmup skips even the no-op protocol calls.
func (None) WarmObserve(*isa.DynInst, *Ctx, TrainInfo) {}

// StorageBits implements Predictor.
func (None) StorageBits() int { return 0 }

// Meter accumulates value-prediction outcome statistics; the core owns one
// and feeds it from validation.
type Meter struct {
	// Loads is the number of retired load instructions.
	Loads uint64
	// Insts is the number of retired instructions.
	Insts uint64
	// PredictedLoads counts retired loads that carried a prediction.
	PredictedLoads uint64
	// PredictedOther counts retired non-loads that carried a prediction.
	PredictedOther uint64
	// Correct and Wrong count validated predictions.
	Correct uint64
	Wrong   uint64
	// Flushes counts pipeline flushes caused by value mispredictions.
	Flushes uint64
}

// Coverage returns predicted loads per load, the paper's coverage metric.
func (m *Meter) Coverage() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.PredictedLoads) / float64(m.Loads)
}

// Accuracy returns correct predictions per validated prediction.
func (m *Meter) Accuracy() float64 {
	total := m.Correct + m.Wrong
	if total == 0 {
		return 0
	}
	return float64(m.Correct) / float64(total)
}
