package vp

import "testing"

func TestVTAGEBaseLastValue(t *testing.T) {
	v := NewVTAGE(64, 32, 1)
	d := load(0x400, 0x1000, 42)
	trainN(v, d, 900)
	p := v.Lookup(d, &Ctx{})
	if !p.Valid || p.Value != 42 {
		t.Errorf("VTAGE constant value: %+v", p)
	}
}

func TestVTAGEContextValues(t *testing.T) {
	v := NewVTAGE(64, 64, 1)
	d := load(0x400, 0x1000, 0)
	ctxA, ctxB := &Ctx{Hist: 0xAAAA}, &Ctx{Hist: 0x5555}
	for i := 0; i < 900; i++ {
		d.Value = 7
		v.Train(d, ctxA, TrainInfo{})
		d.Value = 9
		v.Train(d, ctxB, TrainInfo{})
	}
	if p := v.Lookup(d, ctxA); !p.Valid || p.Value != 7 {
		t.Errorf("VTAGE ctx A: %+v", p)
	}
	if p := v.Lookup(d, ctxB); !p.Valid || p.Value != 9 {
		t.Errorf("VTAGE ctx B: %+v", p)
	}
}

func TestEVESStrideComponent(t *testing.T) {
	e := NewEVES(64, 32, 6, 1)
	ctx := &Ctx{}
	// Strided results defeat VTAGE (values never repeat) but E-Stride
	// captures them.
	for i := 0; i < 50; i++ {
		e.Train(load(0x400, 0x1000, uint64(100+i*16)), ctx, TrainInfo{})
	}
	p := e.Lookup(load(0x400, 0x1000, 0), ctx)
	if !p.Valid || p.Value != 100+50*16 {
		t.Errorf("EVES stride: %+v, want %d", p, 100+50*16)
	}
}

func TestEVESFallsBackToVTAGE(t *testing.T) {
	e := NewEVES(64, 32, 6, 1)
	d := load(0x400, 0x1000, 42)
	trainN(e, d, 900)
	if p := e.Lookup(d, &Ctx{}); !p.Valid || p.Value != 42 {
		t.Errorf("EVES constant: %+v", p)
	}
}

func TestVTAGEEVESStorage(t *testing.T) {
	v := NewVTAGE(256, 96, 1).StorageBits() / 8
	e := NewEVES(256, 80, 6, 1).StorageBits() / 8
	// Reference sizings should land in the multi-KB class of the cited
	// predictors (EVES ≈ 8 KB in the paper).
	if v < 4<<10 || v > 12<<10 {
		t.Errorf("VTAGE budget %d bytes", v)
	}
	if e < 4<<10 || e > 12<<10 {
		t.Errorf("EVES budget %d bytes", e)
	}
	if NewVTAGE(64, 32, 1).Name() != "VTAGE" || NewEVES(64, 32, 6, 1).Name() != "EVES" {
		t.Error("names")
	}
}
