package vp

import "fvp/internal/isa"

// VTAGE (Perais & Seznec, HPCA'14) is the tagged geometric-history value
// predictor the paper cites as prior art: a PC-indexed base (last-value)
// table backed by tagged tables keyed on progressively longer branch
// history. This standalone build composes the LVP base with the CVP tagged
// tables; the Composite predictor uses the same parts with the DLVP address
// predictors added.
type VTAGE struct {
	base *LVP
	tage *CVP
}

// NewVTAGE builds a predictor with the given base entries and per-table
// tagged entries (4 history lengths).
func NewVTAGE(baseEntries, taggedPerTable int, seed uint64) *VTAGE {
	return &VTAGE{
		base: NewLVP(baseEntries, 2, seed),
		tage: NewCVP(taggedPerTable, nil, seed+1),
	}
}

// Name implements Predictor.
func (v *VTAGE) Name() string { return "VTAGE" }

// Lookup implements Predictor: longest-history hit wins, base as fallback.
func (v *VTAGE) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if p := v.tage.Lookup(d, ctx); p.Valid {
		return p
	}
	return v.base.Lookup(d, ctx)
}

// Train implements Predictor.
func (v *VTAGE) Train(d *isa.DynInst, ctx *Ctx, info TrainInfo) {
	v.base.Train(d, ctx, info)
	v.tage.Train(d, ctx, info)
}

// OnForward implements Predictor.
func (v *VTAGE) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (v *VTAGE) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (v *VTAGE) OnFlush() {
	v.base.OnFlush()
	v.tage.OnFlush()
}

// StorageBits implements Predictor.
func (v *VTAGE) StorageBits() int { return v.base.StorageBits() + v.tage.StorageBits() }

// EVES (Seznec, CVP-1 2018) augments VTAGE with an enhanced stride
// component (E-Stride) that captures monotonically striding results —
// the configuration the paper derives the Composite's value side from.
type EVES struct {
	vtage  *VTAGE
	stride *Stride
}

// NewEVES builds an EVES-style predictor (≈8 KB at the defaults used by
// harness.SpecEVES).
func NewEVES(baseEntries, taggedPerTable int, strideBits uint, seed uint64) *EVES {
	return &EVES{
		vtage:  NewVTAGE(baseEntries, taggedPerTable, seed),
		stride: NewStride(strideBits),
	}
}

// Name implements Predictor.
func (e *EVES) Name() string { return "EVES" }

// Lookup implements Predictor: E-Stride first (it captures values VTAGE
// cannot — results that never repeat), then the VTAGE side.
func (e *EVES) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if p := e.stride.Lookup(d, ctx); p.Valid {
		return p
	}
	return e.vtage.Lookup(d, ctx)
}

// Train implements Predictor.
func (e *EVES) Train(d *isa.DynInst, ctx *Ctx, info TrainInfo) {
	e.vtage.Train(d, ctx, info)
	e.stride.Train(d, ctx, info)
}

// OnForward implements Predictor.
func (e *EVES) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (e *EVES) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (e *EVES) OnFlush() {
	e.vtage.OnFlush()
	e.stride.OnFlush()
}

// StorageBits implements Predictor.
func (e *EVES) StorageBits() int { return e.vtage.StorageBits() + e.stride.StorageBits() }
