package vp

import (
	"fmt"

	"fvp/internal/isa"
)

// SAP is the Stride Address Predictor component of the Composite predictor
// (Sheikh & Hower, after DLVP): it predicts a load's *address* from a
// per-PC stride, probes the data cache early for the value at that address
// and uses it as the value prediction. A prediction is only made when the
// line is cached (the early probe reads the cache, not DRAM) and the
// stride is confident.
type SAP struct {
	entries []sapEntry
	mask    uint64
	// MaxLevel is the deepest cache level the early probe may read
	// (0=L1, 1=L2, 2=LLC).
	MaxLevel int
}

type sapEntry struct {
	tag     uint16
	valid   bool
	last    uint64 // address of the newest (by sequence) trained instance
	maxSeq  uint64 // newest instance seen at train (trains arrive OOO)
	spec    uint64 // speculative cursor advanced at lookup (in-flight instances)
	stride  int64
	conf    uint8
	pending uint8 // predictions issued but not yet validated
}

const (
	sapConfMax = 3
	// sapEntryBits: tag 11 + last addr 64 + stride 16 + conf 2.
	sapEntryBits = 11 + 64 + 16 + 2
)

// NewSAP builds a direct-mapped stride address predictor with 2^bits
// entries.
func NewSAP(bits uint) *SAP {
	return &SAP{
		entries:  make([]sapEntry, 1<<bits),
		mask:     1<<bits - 1,
		MaxLevel: 2,
	}
}

func (s *SAP) at(pc uint64) *sapEntry { return &s.entries[(pc>>2)&s.mask] }

// Name implements Predictor.
func (s *SAP) Name() string { return fmt.Sprintf("SAP-%d", len(s.entries)) }

// Lookup implements Predictor.
func (s *SAP) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if !d.Op.IsLoad() || ctx.MemPeek == nil || ctx.CacheLevel == nil {
		return Prediction{}
	}
	e := s.at(d.PC)
	if !e.valid || e.tag != tag11(d.PC) || e.conf < sapConfMax {
		return Prediction{}
	}
	// Advance the speculative cursor: with several in-flight instances of
	// one load PC, each prediction must target its own future address
	// (DLVP updates its table speculatively at fetch).
	addr := uint64(int64(e.spec) + e.stride)
	e.spec = addr
	if ctx.CacheLevel(addr) > s.MaxLevel {
		// Dropped (line uncached): the cursor still advances for the
		// next instance, but no validation will come back, so the
		// outstanding count must not grow.
		return Prediction{}
	}
	if e.pending < 255 {
		e.pending++
	}
	return Prediction{Valid: true, Value: ctx.MemPeek(addr)}
}

// Train implements Predictor. Address predictors train on the load's
// *address* stream, not its value stream.
func (s *SAP) Train(d *isa.DynInst, _ *Ctx, info TrainInfo) {
	if !d.Op.IsLoad() {
		return
	}
	e := s.at(d.PC)
	if !e.valid || e.tag != tag11(d.PC) {
		*e = sapEntry{tag: tag11(d.PC), valid: true, last: d.Addr, spec: d.Addr, maxSeq: d.Seq}
		return
	}
	if info.WasPredicted && e.pending > 0 {
		e.pending--
	}
	if d.Seq < e.maxSeq {
		// Out-of-order completion of an older instance: its delta is
		// meaningless for stride learning and its address is stale for
		// the cursor. Only a misprediction acts (stop predicting until
		// the stride re-confirms in order).
		if info.WasPredicted && !info.Correct {
			e.conf = 0
		}
		return
	}
	e.maxSeq = d.Seq
	delta := int64(d.Addr) - int64(e.last)
	if delta == e.stride {
		if e.conf < sapConfMax {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 0
	}
	e.last = d.Addr
	// Resynchronize the speculative cursor while unconfident, whenever no
	// prediction is outstanding, and after a validation miss (flush
	// replays can otherwise leave it permanently drifted).
	if e.conf < sapConfMax || e.pending == 0 || (info.WasPredicted && !info.Correct) {
		e.spec = d.Addr
		e.pending = 0
	}
}

// OnForward implements Predictor.
func (s *SAP) OnForward(uint64, uint64) {}

// OnFlush implements Predictor: squashed in-flight instances will replay
// and re-advance the cursors, so every speculative cursor rewinds to its
// architectural anchor (hardware restores the checkpointed DLVP state).
func (s *SAP) OnFlush() {
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid {
			e.spec = e.last
			e.pending = 0
		}
	}
}

// OnRetire implements Predictor.
func (s *SAP) OnRetire(*isa.DynInst) {}

// StorageBits implements Predictor.
func (s *SAP) StorageBits() int { return len(s.entries) * sapEntryBits }

// CAP is the Context Address Predictor component: like SAP but the
// predicted address is keyed on PC plus folded global branch history, which
// captures loads whose address correlates with the control-flow path
// (pointer loads selected by branches).
type CAP struct {
	entries  []capEntry
	mask     uint64
	histBits uint
	// MaxLevel bounds the early cache probe as for SAP.
	MaxLevel int
}

type capEntry struct {
	tag   uint16
	valid bool
	addr  uint64
	conf  uint8
}

const (
	capConfMax = 3
	// capEntryBits: tag 11 + addr 64 + conf 2.
	capEntryBits = 11 + 64 + 2
)

// NewCAP builds a direct-mapped context address predictor with 2^bits
// entries keyed on histBits of branch history.
func NewCAP(bits, histBits uint) *CAP {
	return &CAP{
		entries:  make([]capEntry, 1<<bits),
		mask:     1<<bits - 1,
		histBits: histBits,
		MaxLevel: 2,
	}
}

func (c *CAP) at(pc, hist uint64) *capEntry {
	bits := uint(0)
	for m := c.mask; m != 0; m >>= 1 {
		bits++
	}
	i := ((pc >> 2) ^ foldHist(hist, c.histBits, bits)) & c.mask
	return &c.entries[i]
}

func (c *CAP) tagOf(pc, hist uint64) uint16 {
	return uint16(((pc >> 2) ^ foldHist(hist, c.histBits, 11)<<1) & (1<<11 - 1))
}

// Name implements Predictor.
func (c *CAP) Name() string { return fmt.Sprintf("CAP-%d", len(c.entries)) }

// Lookup implements Predictor.
func (c *CAP) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if !d.Op.IsLoad() || ctx.MemPeek == nil || ctx.CacheLevel == nil {
		return Prediction{}
	}
	e := c.at(d.PC, ctx.Hist)
	if !e.valid || e.tag != c.tagOf(d.PC, ctx.Hist) || e.conf < capConfMax {
		return Prediction{}
	}
	if ctx.CacheLevel(e.addr) > c.MaxLevel {
		return Prediction{}
	}
	return Prediction{Valid: true, Value: ctx.MemPeek(e.addr)}
}

// Train implements Predictor.
func (c *CAP) Train(d *isa.DynInst, ctx *Ctx, _ TrainInfo) {
	if !d.Op.IsLoad() {
		return
	}
	e := c.at(d.PC, ctx.Hist)
	if !e.valid || e.tag != c.tagOf(d.PC, ctx.Hist) {
		*e = capEntry{tag: c.tagOf(d.PC, ctx.Hist), valid: true, addr: d.Addr}
		return
	}
	if e.addr == d.Addr {
		if e.conf < capConfMax {
			e.conf++
		}
	} else {
		e.addr = d.Addr
		e.conf = 0
	}
}

// OnForward implements Predictor.
func (c *CAP) OnForward(uint64, uint64) {}

// OnFlush implements Predictor (CAP predicts fixed per-context addresses;
// no speculative state to repair).
func (c *CAP) OnFlush() {}

// OnRetire implements Predictor.
func (c *CAP) OnRetire(*isa.DynInst) {}

// StorageBits implements Predictor.
func (c *CAP) StorageBits() int { return len(c.entries) * capEntryBits }
