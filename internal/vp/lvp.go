package vp

import (
	"fmt"

	"fvp/internal/isa"
	"fvp/internal/prog"
)

// LVP is a tagged, set-associative last-value predictor with EVES-style
// probabilistic confidence: the confidence counter increments with
// probability 1/16 on each value repeat, so only very stable values reach
// the prediction threshold, keeping accuracy high (≥99 %) despite the
// 20-cycle misprediction flush.
type LVP struct {
	sets    [][]lvpEntry
	setMask uint64
	ways    int
	rng     *prog.RNG
	tick    uint64
	// LoadsOnly restricts allocation to load instructions (the common
	// configuration; §VI-A2 found no benefit beyond loads).
	LoadsOnly bool
}

type lvpEntry struct {
	tag   uint16
	valid bool
	value uint64
	conf  uint8 // 3-bit, predict at 7
	util  uint8 // 2-bit replacement utility
	lru   uint64
}

const (
	lvpConfMax = 7
	lvpTagBits = 11
	// lvpEntryBits: tag 11 + value 64 + conf 3 + util 2.
	lvpEntryBits = lvpTagBits + 64 + 3 + 2
)

// NewLVP builds a predictor with the given total entries and associativity.
func NewLVP(entries, ways int, seed uint64) *LVP {
	if ways <= 0 {
		ways = 2
	}
	nSets := entries / ways
	if nSets <= 0 {
		nSets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for nSets&(nSets-1) != 0 {
		nSets &= nSets - 1
	}
	l := &LVP{
		sets:      make([][]lvpEntry, nSets),
		setMask:   uint64(nSets - 1),
		ways:      ways,
		rng:       prog.NewRNG(seed),
		LoadsOnly: true,
	}
	for i := range l.sets {
		l.sets[i] = make([]lvpEntry, ways)
	}
	return l
}

func (l *LVP) find(pc uint64) *lvpEntry {
	set := l.sets[(pc>>2)&l.setMask]
	tag := uint16(pc>>2) & (1<<lvpTagBits - 1)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Name implements Predictor.
func (l *LVP) Name() string { return fmt.Sprintf("LVP-%d", len(l.sets)*l.ways) }

// Lookup implements Predictor.
func (l *LVP) Lookup(d *isa.DynInst, _ *Ctx) Prediction {
	if l.LoadsOnly && !d.Op.IsLoad() {
		return Prediction{}
	}
	if e := l.find(d.PC); e != nil && e.conf >= lvpConfMax {
		return Prediction{Valid: true, Value: e.value}
	}
	return Prediction{}
}

// Train implements Predictor.
func (l *LVP) Train(d *isa.DynInst, _ *Ctx, _ TrainInfo) {
	if !d.HasDest() || (l.LoadsOnly && !d.Op.IsLoad()) {
		return
	}
	l.tick++
	e := l.find(d.PC)
	if e == nil {
		l.allocate(d.PC, d.Value)
		return
	}
	e.lru = l.tick
	if e.value == d.Value {
		if e.conf < lvpConfMax && l.rng.Intn(16) == 0 {
			e.conf++
		}
		if e.util < 3 {
			e.util++
		}
	} else {
		e.value = d.Value
		e.conf = 0
		e.util = 0
	}
}

func (l *LVP) allocate(pc, value uint64) {
	set := l.sets[(pc>>2)&l.setMask]
	tag := uint16(pc>>2) & (1<<lvpTagBits - 1)
	// Prefer an invalid way, else a zero-utility LRU victim; if every
	// way is useful, decay utilities instead of thrashing.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].util == 0 && (victim < 0 || set[i].lru < set[victim].lru) {
				victim = i
			}
		}
	}
	if victim < 0 {
		for i := range set {
			set[i].util--
		}
		return
	}
	set[victim] = lvpEntry{tag: tag, valid: true, value: value, lru: l.tick}
}

// OnForward implements Predictor.
func (l *LVP) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (l *LVP) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (l *LVP) OnFlush() {}

// StorageBits implements Predictor.
func (l *LVP) StorageBits() int { return len(l.sets) * l.ways * lvpEntryBits }
