package vp

import (
	"fmt"

	"fvp/internal/isa"
)

// Stride is the classic stride value predictor (Gabbay): per PC it learns
// the delta between successive results and predicts last + stride. The
// paper notes (§VI-B) that stride prediction adds little on top of the other
// predictors; it is provided as a baseline and for ablations.
type Stride struct {
	entries []strideVPEntry
	mask    uint64
	tick    uint64
	// LoadsOnly restricts allocation to loads.
	LoadsOnly bool
}

type strideVPEntry struct {
	tag    uint16
	valid  bool
	last   uint64
	stride int64
	conf   uint8 // predict at strideConfMax
}

const (
	strideConfMax = 3
	// strideEntryBits: tag 11 + last 64 + stride 16 + conf 2.
	strideEntryBits = 11 + 64 + 16 + 2
)

// NewStride builds a direct-mapped stride predictor with 2^bits entries.
func NewStride(bits uint) *Stride {
	return &Stride{
		entries:   make([]strideVPEntry, 1<<bits),
		mask:      1<<bits - 1,
		LoadsOnly: true,
	}
}

func (s *Stride) at(pc uint64) *strideVPEntry { return &s.entries[(pc>>2)&s.mask] }

func tag11(pc uint64) uint16 { return uint16(pc>>2) & (1<<11 - 1) }

// Name implements Predictor.
func (s *Stride) Name() string { return fmt.Sprintf("Stride-%d", len(s.entries)) }

// Lookup implements Predictor.
func (s *Stride) Lookup(d *isa.DynInst, _ *Ctx) Prediction {
	if s.LoadsOnly && !d.Op.IsLoad() {
		return Prediction{}
	}
	e := s.at(d.PC)
	if e.valid && e.tag == tag11(d.PC) && e.conf >= strideConfMax {
		return Prediction{Valid: true, Value: uint64(int64(e.last) + e.stride)}
	}
	return Prediction{}
}

// Train implements Predictor.
func (s *Stride) Train(d *isa.DynInst, _ *Ctx, _ TrainInfo) {
	if !d.HasDest() || (s.LoadsOnly && !d.Op.IsLoad()) {
		return
	}
	e := s.at(d.PC)
	if !e.valid || e.tag != tag11(d.PC) {
		*e = strideVPEntry{tag: tag11(d.PC), valid: true, last: d.Value}
		return
	}
	delta := int64(d.Value) - int64(e.last)
	if delta == e.stride {
		if e.conf < strideConfMax {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 0
	}
	e.last = d.Value
}

// OnForward implements Predictor.
func (s *Stride) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (s *Stride) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (s *Stride) OnFlush() {}

// StorageBits implements Predictor.
func (s *Stride) StorageBits() int { return len(s.entries) * strideEntryBits }
