package vp

import "fvp/internal/isa"

// Composite combines the four components of Sheikh & Hower's predictor —
// LVP, CVP (the EVES side) and SAP, CAP (the DLVP side) — with fixed
// priority LVP > CVP > SAP > CAP among confident components. It maximizes
// coverage, which is exactly the design philosophy the paper contrasts FVP
// against.
type Composite struct {
	label string
	Lvp   *LVP
	Cvp   *CVP
	Sap   *SAP
	Cap   *CAP
}

// NewComposite8KB builds the ≈8 KB configuration of Figs 10/11.
func NewComposite8KB(seed uint64) *Composite {
	return &Composite{
		label: "Composite-8KB",
		Lvp:   NewLVP(256, 2, seed),
		Cvp:   NewCVP(64, nil, seed+1),
		Sap:   NewSAP(7), // 128 entries
		Cap:   NewCAP(7, 16),
	}
}

// NewComposite1KB builds the area-matched ≈1 KB configuration.
func NewComposite1KB(seed uint64) *Composite {
	return &Composite{
		label: "Composite-1KB",
		Lvp:   NewLVP(32, 2, seed),
		Cvp:   NewCVP(8, nil, seed+1),
		Sap:   NewSAP(4), // 16 entries
		Cap:   NewCAP(4, 16),
	}
}

// Name implements Predictor.
func (c *Composite) Name() string { return c.label }

// Lookup implements Predictor.
func (c *Composite) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if p := c.Lvp.Lookup(d, ctx); p.Valid {
		return p
	}
	if p := c.Cvp.Lookup(d, ctx); p.Valid {
		return p
	}
	if p := c.Sap.Lookup(d, ctx); p.Valid {
		return p
	}
	return c.Cap.Lookup(d, ctx)
}

// Train implements Predictor.
func (c *Composite) Train(d *isa.DynInst, ctx *Ctx, info TrainInfo) {
	c.Lvp.Train(d, ctx, info)
	c.Cvp.Train(d, ctx, info)
	c.Sap.Train(d, ctx, info)
	c.Cap.Train(d, ctx, info)
}

// OnForward implements Predictor.
func (c *Composite) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (c *Composite) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (c *Composite) OnFlush() {
	c.Lvp.OnFlush()
	c.Cvp.OnFlush()
	c.Sap.OnFlush()
	c.Cap.OnFlush()
}

// StorageBits implements Predictor.
func (c *Composite) StorageBits() int {
	return c.Lvp.StorageBits() + c.Cvp.StorageBits() +
		c.Sap.StorageBits() + c.Cap.StorageBits()
}
