package vp

import (
	"fmt"

	"fvp/internal/isa"
	"fvp/internal/prog"
)

// CVP is a VTAGE-like context value predictor (Perais & Seznec): several
// tagged tables indexed by PC hashed with geometrically longer slices of
// global branch history; the longest-history hit provides the value. It is
// the context component of the Composite predictor.
type CVP struct {
	tables   [][]cvpEntry
	histLens []uint
	tblMask  uint64
	rng      *prog.RNG
	// LoadsOnly restricts allocation to loads.
	LoadsOnly bool
}

type cvpEntry struct {
	tag   uint16
	valid bool
	value uint64
	conf  uint8 // 3-bit, predict at cvpConfMax
	util  uint8
}

const (
	cvpConfMax = 7
	cvpTagBits = 11
	// cvpEntryBits: tag 11 + value 64 + conf 3 + util 2.
	cvpEntryBits = cvpTagBits + 64 + 3 + 2
)

// NewCVP builds a predictor with entriesPerTable in each of len(histLens)
// tables. histLens nil selects the default {2, 8, 16, 32}.
func NewCVP(entriesPerTable int, histLens []uint, seed uint64) *CVP {
	if histLens == nil {
		histLens = []uint{2, 8, 16, 32}
	}
	n := entriesPerTable
	for n&(n-1) != 0 { // round down to power of two
		n &= n - 1
	}
	if n == 0 {
		n = 1
	}
	c := &CVP{
		tables:    make([][]cvpEntry, len(histLens)),
		histLens:  histLens,
		tblMask:   uint64(n - 1),
		rng:       prog.NewRNG(seed),
		LoadsOnly: true,
	}
	for i := range c.tables {
		c.tables[i] = make([]cvpEntry, n)
	}
	return c
}

func foldHist(h uint64, lenBits, outBits uint) uint64 {
	if lenBits < 64 {
		h &= 1<<lenBits - 1
	}
	var f uint64
	for h != 0 {
		f ^= h & (1<<outBits - 1)
		h >>= outBits
	}
	return f
}

func (c *CVP) idx(pc, hist uint64, t int) uint64 {
	bits := uint(0)
	for m := c.tblMask; m != 0; m >>= 1 {
		bits++
	}
	if bits == 0 {
		return 0
	}
	return ((pc >> 2) ^ foldHist(hist, c.histLens[t], bits)) & c.tblMask
}

func (c *CVP) tag(pc, hist uint64, t int) uint16 {
	return uint16(((pc >> 2) ^ (pc >> 13) ^ foldHist(hist, c.histLens[t], cvpTagBits)) & (1<<cvpTagBits - 1))
}

// Name implements Predictor.
func (c *CVP) Name() string {
	return fmt.Sprintf("CVP-%dx%d", len(c.tables), c.tblMask+1)
}

// Lookup implements Predictor.
func (c *CVP) Lookup(d *isa.DynInst, ctx *Ctx) Prediction {
	if c.LoadsOnly && !d.Op.IsLoad() {
		return Prediction{}
	}
	for t := len(c.tables) - 1; t >= 0; t-- {
		e := &c.tables[t][c.idx(d.PC, ctx.Hist, t)]
		if e.valid && e.tag == c.tag(d.PC, ctx.Hist, t) {
			if e.conf >= cvpConfMax {
				return Prediction{Valid: true, Value: e.value}
			}
			return Prediction{}
		}
	}
	return Prediction{}
}

// Train implements Predictor.
func (c *CVP) Train(d *isa.DynInst, ctx *Ctx, _ TrainInfo) {
	if !d.HasDest() || (c.LoadsOnly && !d.Op.IsLoad()) {
		return
	}
	// Train the provider if any; on a value change allocate a
	// longer-history entry (TAGE-style escalation).
	provider := -1
	for t := len(c.tables) - 1; t >= 0; t-- {
		e := &c.tables[t][c.idx(d.PC, ctx.Hist, t)]
		if e.valid && e.tag == c.tag(d.PC, ctx.Hist, t) {
			provider = t
			if e.value == d.Value {
				if e.conf < cvpConfMax && c.rng.Intn(16) == 0 {
					e.conf++
				}
				if e.util < 3 {
					e.util++
				}
				return
			}
			e.value = d.Value
			e.conf = 0
			if e.util > 0 {
				e.util--
			}
			break
		}
	}
	for t := provider + 1; t < len(c.tables); t++ {
		e := &c.tables[t][c.idx(d.PC, ctx.Hist, t)]
		if !e.valid || e.util == 0 {
			*e = cvpEntry{
				tag:   c.tag(d.PC, ctx.Hist, t),
				valid: true,
				value: d.Value,
			}
			return
		}
		e.util--
	}
}

// OnForward implements Predictor.
func (c *CVP) OnForward(uint64, uint64) {}

// OnRetire implements Predictor.
func (c *CVP) OnRetire(*isa.DynInst) {}

// OnFlush implements Predictor.
func (c *CVP) OnFlush() {}

// StorageBits implements Predictor.
func (c *CVP) StorageBits() int {
	return len(c.tables) * int(c.tblMask+1) * cvpEntryBits
}
