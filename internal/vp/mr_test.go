package vp

import (
	"testing"

	"fvp/internal/isa"
)

func store(pc, seq, addr, value uint64) *isa.DynInst {
	return &isa.DynInst{PC: pc, Seq: seq, Op: isa.OpStore, Src1: 1, Src2: 2, Addr: addr, Value: value, MemSize: 8}
}

func loadSeq(pc, seq, addr, value uint64) *isa.DynInst {
	d := load(pc, addr, value)
	d.Seq = seq
	return d
}

// Distinct SL-cache slots: (pc>>2) & 127 gives 0x40 and 0x41.
const (
	stPC = 0x500
	ldPC = 0x704
)

// trainPair builds SL-cache confidence with n forwarding observations.
func trainPair(m *MR, n int) {
	for i := 0; i < n; i++ {
		m.OnForward(ldPC, stPC)
	}
}

func TestMRColdNoPrediction(t *testing.T) {
	m := NewMR(PaperMRConfig())
	if p := m.Lookup(loadSeq(ldPC, 10, 0x1000, 5), &Ctx{}); p.Valid {
		t.Error("untrained MR must not predict")
	}
}

func TestMRRenamesAfterConfidence(t *testing.T) {
	m := NewMR(PaperMRConfig())
	trainPair(m, 8)
	// Store at seq 100 deposits its identity at allocation (Lookup).
	st := store(stPC, 100, 0x1000, 99)
	m.Lookup(st, &Ctx{})
	// Load at seq 105 gets the store-linked prediction.
	p := m.Lookup(loadSeq(ldPC, 105, 0x1000, 99), &Ctx{})
	if !p.Valid || !p.StoreLinked || p.StoreSeq != 100 {
		t.Fatalf("MR prediction: %+v", p)
	}
	if p.DataReady {
		t.Error("store has not executed: data must not be ready")
	}
	// Once the store executes (Train), the Value File holds its data.
	m.Train(st, &Ctx{}, TrainInfo{})
	p = m.Lookup(loadSeq(ldPC, 106, 0x1000, 99), &Ctx{})
	if !p.Valid || !p.DataReady || p.Value != 99 {
		t.Fatalf("post-execution MR prediction: %+v", p)
	}
}

func TestMRInsufficientConfidence(t *testing.T) {
	m := NewMR(PaperMRConfig())
	trainPair(m, 3) // below the 7 threshold
	m.Lookup(store(stPC, 100, 0x1000, 99), &Ctx{})
	if p := m.Lookup(loadSeq(ldPC, 105, 0x1000, 99), &Ctx{}); p.Valid {
		t.Error("MR must not rename below the confidence threshold")
	}
}

func TestMRNeverLinksYoungerStore(t *testing.T) {
	m := NewMR(PaperMRConfig())
	trainPair(m, 8)
	m.Lookup(store(stPC, 200, 0x1000, 99), &Ctx{})
	// A load OLDER than the store must not link to it.
	if p := m.Lookup(loadSeq(ldPC, 150, 0x1000, 0), &Ctx{}); p.Valid {
		t.Error("MR linked a load to a younger store")
	}
}

func TestMRMispredictResetsConfidence(t *testing.T) {
	m := NewMR(PaperMRConfig())
	trainPair(m, 8)
	m.Lookup(store(stPC, 100, 0x1000, 99), &Ctx{})
	d := loadSeq(ldPC, 105, 0x2000, 1) // different address: wrong association
	if p := m.Lookup(d, &Ctx{}); !p.Valid {
		t.Fatal("expected a (wrong) rename")
	}
	m.Train(d, &Ctx{}, TrainInfo{WasPredicted: true, Correct: false})
	m.Lookup(store(stPC, 110, 0x1000, 99), &Ctx{})
	if p := m.Lookup(loadSeq(ldPC, 115, 0x1000, 99), &Ctx{}); p.Valid {
		t.Error("confidence must reset after a wrong rename")
	}
}

func TestMRCriticalGate(t *testing.T) {
	m := NewMR(PaperMRConfig())
	m.Critical = func(pc uint64) bool { return false }
	trainPair(m, 8)
	m.Lookup(store(stPC, 100, 0x1000, 99), &Ctx{})
	if p := m.Lookup(loadSeq(ldPC, 105, 0x1000, 99), &Ctx{}); p.Valid {
		t.Error("the criticality gate must suppress renaming")
	}
	m.Critical = func(pc uint64) bool { return true }
	if p := m.Lookup(loadSeq(ldPC, 106, 0x1000, 99), &Ctx{}); !p.Valid {
		t.Error("gate open: rename expected")
	}
}

func TestMRPaperBudget(t *testing.T) {
	// Table I: SL 272 bytes + VF 350 bytes (at 128 rounded entries the SL
	// side is slightly smaller).
	bytes := NewMR(PaperMRConfig()).StorageBits() / 8
	if bytes < 500 || bytes > 700 {
		t.Errorf("paper MR budget = %d bytes, expect ≈606", bytes)
	}
}

func TestMRAssociationSurvivesOtherPairs(t *testing.T) {
	m := NewMR(MR8KBConfig())
	trainPair(m, 8)
	// Other, non-conflicting pairs train in between.
	for i := 0; i < 20; i++ {
		m.OnForward(uint64(0x4000+i*64), uint64(0x8000+i*64))
	}
	m.Lookup(store(stPC, 100, 0x1000, 99), &Ctx{})
	if p := m.Lookup(loadSeq(ldPC, 105, 0x1000, 99), &Ctx{}); !p.Valid {
		t.Error("association lost to unrelated pairs in a large table")
	}
}
