package memsys

import (
	"testing"

	"fvp/internal/cache"
	"fvp/internal/dram"
)

func testConfig() Config {
	return Config{
		L1I:             cache.Config{Name: "L1I", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, Latency: 0},
		L1D:             cache.Config{Name: "L1D", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, Latency: 5},
		L2:              cache.Config{Name: "L2", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 15},
		LLC:             cache.Config{Name: "LLC", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, Latency: 40},
		Dram:            dram.DDR4_2133(),
		MemReturnCycles: 20,
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{LvlL1: "L1", LvlL2: "L2", LvlLLC: "LLC", LvlMem: "MEM", Level(9): "?"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
}

func TestLoadMissPathAndRefill(t *testing.T) {
	h := New(testConfig())
	done, lvl := h.Load(0, 0x10000, 0x400)
	if lvl != LvlMem {
		t.Fatalf("cold load served by %v", lvl)
	}
	if done < 60 {
		t.Errorf("memory load done at %d, implausibly fast", done)
	}
	// Second access to the same line: L1 hit at hit latency.
	done2, lvl2 := h.Load(done, 0x10000, 0x400)
	if lvl2 != LvlL1 {
		t.Errorf("refilled line served by %v", lvl2)
	}
	if done2 != done+5 {
		t.Errorf("L1 hit done at %d, want %d", done2, done+5)
	}
}

func TestLoadLevels(t *testing.T) {
	h := New(testConfig())
	h.Warm(0x20000, 64, LvlLLC)
	if _, lvl := h.Load(0, 0x20000, 0x400); lvl != LvlLLC {
		t.Errorf("LLC-warmed line served by %v", lvl)
	}
	h.Warm(0x30000, 64, LvlL2)
	if _, lvl := h.Load(0, 0x30000, 0x400); lvl != LvlL2 {
		t.Errorf("L2-warmed line served by %v", lvl)
	}
	h.Warm(0x40000, 64, LvlL1)
	if _, lvl := h.Load(0, 0x40000, 0x400); lvl != LvlL1 {
		t.Errorf("L1-warmed line served by %v", lvl)
	}
}

func TestProbeLevel(t *testing.T) {
	h := New(testConfig())
	if l := h.ProbeLevel(0x50000); l != LvlMem {
		t.Errorf("uncached line probes as %v", l)
	}
	h.Warm(0x50000, 64, LvlL2)
	if l := h.ProbeLevel(0x50000); l != LvlL2 {
		t.Errorf("warmed line probes as %v", l)
	}
	// Probing must not change state.
	if l := h.ProbeLevel(0x60000); l != LvlMem {
		t.Errorf("probe = %v", l)
	}
	if h.L1D.Stats.Accesses != 0 {
		t.Error("ProbeLevel must not count as a demand access")
	}
}

func TestWarmLevelsAreInclusive(t *testing.T) {
	h := New(testConfig())
	h.Warm(0x70000, 64, LvlL1)
	if !h.L1D.Probe(0x70000) || !h.L2.Probe(0x70000) || !h.LLC.Probe(0x70000) {
		t.Error("L1 warm must also fill L2 and LLC")
	}
	h.Warm(0x80000, 64, LvlLLC)
	if h.L1D.Probe(0x80000) || h.L2.Probe(0x80000) {
		t.Error("LLC warm must not fill L1/L2")
	}
}

func TestStoreWriteAllocates(t *testing.T) {
	h := New(testConfig())
	h.Store(0, 0x90000)
	if !h.L1D.Probe(0x90000) {
		t.Error("store must write-allocate into L1D")
	}
	if h.L1D.Stats.Writebacks != 0 {
		t.Error("no writeback expected yet")
	}
}

func TestFetchPath(t *testing.T) {
	h := New(testConfig())
	done, lvl := h.Fetch(0, 0x400000)
	if lvl != LvlMem || done == 0 {
		t.Errorf("cold fetch: %d, %v", done, lvl)
	}
	done2, lvl2 := h.Fetch(done, 0x400000)
	if lvl2 != LvlL1 || done2 != done {
		t.Errorf("warm fetch: %d (want %d), %v", done2, done, lvl2)
	}
}

func TestStridePrefetcherHidesLatency(t *testing.T) {
	cfg := testConfig()
	cfg.StridePCBits = 6
	cfg.StrideDegree = 4
	h := New(cfg)
	// March with a fixed stride from one PC; after training, accesses
	// should start hitting prefetched lines.
	pfHits := 0
	now := uint64(0)
	for i := 0; i < 64; i++ {
		addr := uint64(0x100000 + i*64)
		done, lvl := h.Load(now, addr, 0x888)
		if lvl == LvlL1 && i > 8 {
			pfHits++
		}
		now = done
	}
	if pfHits == 0 {
		t.Error("stride prefetcher never converted misses into L1 hits")
	}
	if h.L1D.Stats.PrefetchFills == 0 {
		t.Error("no prefetch fills recorded")
	}
}

func TestStreamPrefetcherFillsL2(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 4
	cfg.StreamDepth = 4
	h := New(cfg)
	now := uint64(0)
	served := map[Level]int{}
	for i := 0; i < 32; i++ {
		addr := uint64(0x200000 + i*64)
		done, lvl := h.Load(now, addr, uint64(0x900+i*4)) // varying PC: no stride pf
		served[lvl]++
		now = done
	}
	if h.L2.Stats.PrefetchFills == 0 {
		t.Error("stream prefetcher filled nothing into L2")
	}
	if served[LvlMem] >= 30 {
		t.Errorf("stream prefetching did not reduce memory trips: %v", served)
	}
}

func TestDemandLoadCounters(t *testing.T) {
	h := New(testConfig())
	h.Load(0, 0xA0000, 0x400)
	h.Load(500, 0xA0000, 0x400)
	if h.DemandLoads[LvlMem] != 1 || h.DemandLoads[LvlL1] != 1 {
		t.Errorf("demand loads = %v", h.DemandLoads)
	}
}
