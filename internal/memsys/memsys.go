// Package memsys composes the cache levels, the prefetchers and the DRAM
// controller into the memory hierarchy the core issues accesses to. It is a
// latency-first model: an access returns the core cycle its data is usable
// and the level that supplied it, while the tag/row state it touched
// persists for future accesses.
package memsys

import (
	"fvp/internal/cache"
	"fvp/internal/dram"
)

// Level identifies which part of the hierarchy served an access.
type Level int

// Hierarchy levels, nearest first.
const (
	LvlL1 Level = iota
	LvlL2
	LvlLLC
	LvlMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlLLC:
		return "LLC"
	case LvlMem:
		return "MEM"
	}
	return "?"
}

// Config assembles a hierarchy.
type Config struct {
	L1I, L1D, L2, LLC cache.Config
	Dram              dram.Config
	// StridePCBits sizes the L1 stride prefetcher (2^bits entries);
	// 0 disables it.
	StridePCBits uint
	// StrideDegree is how many strides ahead the L1 prefetcher runs.
	StrideDegree int
	// Streams/StreamDepth configure the L2/LLC stream prefetcher;
	// Streams 0 disables it.
	Streams     int
	StreamDepth int
	// MemReturnCycles is the fixed on-die return-path latency added to a
	// DRAM access before data reaches the core.
	MemReturnCycles uint64
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	L1I, L1D, L2, LLC *cache.Cache
	Dram              *dram.Controller
	stride            *cache.StridePrefetcher
	stream            *cache.StreamPrefetcher
	memReturn         uint64

	// DemandLoads counts data-side demand reads by serving level.
	DemandLoads [4]uint64
}

// New builds the hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		L1I:       cache.New(cfg.L1I),
		L1D:       cache.New(cfg.L1D),
		L2:        cache.New(cfg.L2),
		LLC:       cache.New(cfg.LLC),
		Dram:      dram.New(cfg.Dram),
		memReturn: cfg.MemReturnCycles,
	}
	if cfg.StridePCBits > 0 {
		h.stride = cache.NewStridePrefetcher(cfg.StridePCBits, cfg.StrideDegree)
	}
	if cfg.Streams > 0 {
		h.stream = cache.NewStreamPrefetcher(cfg.Streams, cfg.StreamDepth, cfg.L2.LineBytes)
	}
	return h
}

// Reset restores every component to its just-constructed state so the
// hierarchy can be reused across simulation runs without reallocating the
// (multi-megabyte) line metadata.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.Dram.Reset()
	if h.stride != nil {
		h.stride.Reset()
	}
	if h.stream != nil {
		h.stream.Reset()
	}
	h.DemandLoads = [4]uint64{}
}

// ProbeLevel reports where addr's line currently resides without disturbing
// any state (LvlMem when uncached). Used by criticality heuristics and the
// DLVP-style address predictors that "peek" at the data cache.
func (h *Hierarchy) ProbeLevel(addr uint64) Level {
	switch {
	case h.L1D.Probe(addr):
		return LvlL1
	case h.L2.Probe(addr):
		return LvlL2
	case h.LLC.Probe(addr):
		return LvlLLC
	}
	return LvlMem
}

// Load performs a demand data read for addr at cycle now on behalf of the
// load at pc. It returns the cycle the data is usable and the serving level.
func (h *Hierarchy) Load(now uint64, addr, pc uint64) (done uint64, lvl Level) {
	done, lvl = h.demand(now, addr, false)
	h.DemandLoads[lvl]++
	if h.stride != nil {
		for _, pa := range h.stride.Observe(pc, addr) {
			h.prefetch(now, pa, true)
		}
	}
	if h.stream != nil && lvl >= LvlL2 {
		for _, pa := range h.stream.Observe(addr) {
			h.prefetch(now, pa, false)
		}
	}
	return done, lvl
}

// Store performs a demand data write for addr at cycle now (write-allocate,
// write-back). Store completion is off the critical path in the core model;
// the returned cycle is when the line was available to accept the write.
func (h *Hierarchy) Store(now uint64, addr uint64) (done uint64, lvl Level) {
	return h.demand(now, addr, true)
}

// Fetch performs an instruction fetch for the line containing pc.
func (h *Hierarchy) Fetch(now uint64, pc uint64) (done uint64, lvl Level) {
	hit, when, _ := h.L1I.Lookup(now, pc, false)
	if hit {
		return when, LvlL1
	}
	ready, lvl := h.belowL1(when, pc)
	h.L1I.Fill(pc, ready, false, false)
	return ready, lvl
}

// demand walks the data-side hierarchy.
func (h *Hierarchy) demand(now uint64, addr uint64, write bool) (uint64, Level) {
	hit, when, _ := h.L1D.Lookup(now, addr, write)
	if hit {
		return when, LvlL1
	}
	ready, lvl := h.belowL1(when, addr)
	h.L1D.Fill(addr, ready, write, false)
	return ready, lvl
}

// belowL1 resolves a miss that has already been charged the L1 access,
// starting the L2 access at cycle start.
func (h *Hierarchy) belowL1(start uint64, addr uint64) (uint64, Level) {
	hit, when, _ := h.L2.Lookup(start, addr, false)
	if hit {
		return when, LvlL2
	}
	hit, when3, _ := h.LLC.Lookup(when, addr, false)
	if hit {
		h.L2.Fill(addr, when3, false, false)
		return when3, LvlLLC
	}
	memDone := h.Dram.Access(when3, addr) + h.memReturn
	h.LLC.Fill(addr, memDone, false, false)
	h.L2.Fill(addr, memDone, false, false)
	return memDone, LvlMem
}

// prefetch installs addr's line without demand-stats side effects. toL1
// additionally fills the L1D (stride prefetcher); stream prefetches stop at
// the L2/LLC as in the paper's configuration.
func (h *Hierarchy) prefetch(now uint64, addr uint64, toL1 bool) {
	var ready uint64
	switch h.ProbeLevel(addr) {
	case LvlL1:
		return
	case LvlL2:
		if !toL1 {
			return
		}
		ready = now + h.L2.Config().Latency
	case LvlLLC:
		ready = now + h.LLC.Config().Latency
		h.L2.Fill(addr, ready, false, true)
	case LvlMem:
		ready = h.Dram.Access(now, addr) + h.memReturn
		h.LLC.Fill(addr, ready, false, true)
		h.L2.Fill(addr, ready, false, true)
	}
	if toL1 {
		h.L1D.Fill(addr, ready, false, true)
	}
}

// WarmLoad is the functional-warmup tap for a demand data read: it performs
// the same tag/LRU/replacement walk and prefetcher training as Load on an
// advancing pseudo-clock, but through the MSHR-free cache path (warmup
// models occupancy, not memory-level parallelism). The returned level feeds
// the warmer's criticality signals (L1Miss/LLCMiss).
func (h *Hierarchy) WarmLoad(now uint64, addr, pc uint64) (done uint64, lvl Level) {
	done, lvl = h.warmDemand(now, addr, false)
	h.DemandLoads[lvl]++
	if h.stride != nil {
		for _, pa := range h.stride.Observe(pc, addr) {
			h.prefetch(now, pa, true)
		}
	}
	if h.stream != nil && lvl >= LvlL2 {
		for _, pa := range h.stream.Observe(addr) {
			h.prefetch(now, pa, false)
		}
	}
	return done, lvl
}

// WarmStore is the functional-warmup tap for a demand data write
// (write-allocate, like Store, without MSHR accounting).
func (h *Hierarchy) WarmStore(now uint64, addr uint64) (done uint64, lvl Level) {
	return h.warmDemand(now, addr, true)
}

// WarmFetch is the functional-warmup tap for an instruction fetch.
func (h *Hierarchy) WarmFetch(now uint64, pc uint64) (done uint64, lvl Level) {
	hit, when := h.L1I.WarmAccess(now, pc, false)
	if hit {
		return when, LvlL1
	}
	ready, lvl := h.warmBelowL1(when, pc)
	h.L1I.Fill(pc, ready, false, false)
	return ready, lvl
}

// warmDemand is demand() on the MSHR-free warm path.
func (h *Hierarchy) warmDemand(now uint64, addr uint64, write bool) (uint64, Level) {
	hit, when := h.L1D.WarmAccess(now, addr, write)
	if hit {
		return when, LvlL1
	}
	ready, lvl := h.warmBelowL1(when, addr)
	h.L1D.Fill(addr, ready, write, false)
	return ready, lvl
}

// warmBelowL1 is belowL1 on the MSHR-free warm path: same level walk, same
// fill placement, same DRAM row/bank training.
func (h *Hierarchy) warmBelowL1(start uint64, addr uint64) (uint64, Level) {
	hit, when := h.L2.WarmAccess(start, addr, false)
	if hit {
		return when, LvlL2
	}
	hit, when3 := h.LLC.WarmAccess(when, addr, false)
	if hit {
		h.L2.Fill(addr, when3, false, false)
		return when3, LvlLLC
	}
	memDone := h.Dram.Access(when3, addr) + h.memReturn
	h.LLC.Fill(addr, memDone, false, false)
	h.L2.Fill(addr, memDone, false, false)
	return memDone, LvlMem
}

// Warm pre-loads the lines covering [base, base+bytes) into the given level
// and everything below it, with data ready immediately. Workload setup uses
// it to start kernels from a steady-state cache image instead of an
// unrealistically cold one.
func (h *Hierarchy) Warm(base, bytes uint64, lvl Level) {
	line := uint64(h.L1D.Config().LineBytes)
	for a := base &^ (line - 1); a < base+bytes; a += line {
		if lvl <= LvlLLC {
			h.LLC.Fill(a, 0, false, false)
		}
		if lvl <= LvlL2 {
			h.L2.Fill(a, 0, false, false)
		}
		if lvl <= LvlL1 {
			h.L1D.Fill(a, 0, false, false)
		}
	}
}
