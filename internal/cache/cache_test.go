package cache

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{
		Name: "T", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 5,
	})
}

func TestCacheHitAfterFill(t *testing.T) {
	c := smallCache()
	hit, when, _ := c.Lookup(10, 0x1000, false)
	if hit {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0x1000, 50, false, false)
	hit, when, _ = c.Lookup(100, 0x1000, false)
	if !hit {
		t.Fatal("must hit after fill")
	}
	if when != 105 {
		t.Errorf("hit ready at %d, want 105 (now + latency)", when)
	}
}

func TestCacheFillDelayRespected(t *testing.T) {
	c := smallCache()
	c.Lookup(0, 0x2000, false)
	c.Fill(0x2000, 200, false, false) // data arrives at cycle 200
	_, when, _ := c.Lookup(100, 0x2000, false)
	if when != 205 {
		t.Errorf("access before fill-arrival ready at %d, want 205", when)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := smallCache()
	c.Lookup(0, 0x1000, false)
	c.Fill(0x1000, 0, false, false)
	if hit, _, _ := c.Lookup(1, 0x103F, false); !hit {
		t.Error("same 64B line must hit")
	}
	if hit, _, _ := c.Lookup(2, 0x1040, false); hit {
		t.Error("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets, 2 ways
	// Three lines in the same set (stride = sets*line = 512).
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	for _, addr := range []uint64{a, b} {
		c.Lookup(0, addr, false)
		c.Fill(addr, 0, false, false)
	}
	c.Lookup(1, a, false) // touch a: b becomes LRU
	c.Lookup(2, d, false)
	c.Fill(d, 2, false, false) // evicts b
	if !c.Probe(a) || !c.Probe(d) {
		t.Error("a and d must be resident")
	}
	if c.Probe(b) {
		t.Error("b (LRU) should have been evicted")
	}
}

func TestCacheWritebackCounting(t *testing.T) {
	c := smallCache()
	// Dirty-fill three same-set lines: the third fill evicts a dirty line.
	for i, addr := range []uint64{0x0000, 0x0200, 0x0400} {
		c.Lookup(uint64(i), addr, true)
		c.Fill(addr, uint64(i), true, false)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheVictimAddressReported(t *testing.T) {
	c := smallCache()
	c.Lookup(0, 0x0000, true)
	c.Fill(0x0000, 0, true, false)
	c.Lookup(1, 0x0200, true)
	c.Fill(0x0200, 1, true, false)
	_, _, victim := c.Lookup(2, 0x0400, false)
	if victim != 0x0000 {
		t.Errorf("victim = %#x, want %#x (oldest dirty line)", victim, 0x0000)
	}
	c.Fill(0x0400, 2, false, false)
}

func TestCacheMSHRBackpressure(t *testing.T) {
	c := New(Config{Name: "M", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1, MSHRs: 1})
	_, start1, _ := c.Lookup(10, 0x1000, false)
	if start1 != 10 {
		t.Fatalf("first miss starts at %d", start1)
	}
	c.Fill(0x1000, 500, false, false) // occupies the only MSHR until 500
	_, start2, _ := c.Lookup(20, 0x2000, false)
	if start2 != 500 {
		t.Errorf("second miss starts at %d, want 500 (MSHR busy)", start2)
	}
	c.Fill(0x2000, 600, false, false)
}

func TestCachePrefetchStats(t *testing.T) {
	c := smallCache()
	c.Fill(0x3000, 0, false, true)
	if c.Stats.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d", c.Stats.PrefetchFills)
	}
	c.Lookup(1, 0x3000, false)
	if c.Stats.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d", c.Stats.PrefetchHits)
	}
	// Second demand hit no longer counts as a prefetch hit.
	c.Lookup(2, 0x3000, false)
	if c.Stats.PrefetchHits != 1 {
		t.Errorf("prefetch hits after demand = %d", c.Stats.PrefetchHits)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Lookup(0, 0x4000, false)
	c.Fill(0x4000, 0, false, false)
	c.Invalidate(0x4000)
	if c.Probe(0x4000) {
		t.Error("invalidated line still present")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := smallCache()
	c.Lookup(0, 0x1000, false)
	c.Fill(0x1000, 0, false, false)
	c.Lookup(1, 0x1000, false)
	if mr := c.Stats.MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", mr)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets must panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 960, Ways: 2, LineBytes: 64})
}

// Property: after Fill(addr), Probe(addr) is true until ≥ Ways distinct
// same-set fills occur.
func TestCacheFillThenProbeProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a16 := range addrs {
			addr := uint64(a16)
			c.Lookup(0, addr, false)
			c.Fill(addr, 0, false, false)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(6, 2)
	var got []uint64
	for i := 0; i < 5; i++ {
		got = p.Observe(0x400, uint64(0x1000+i*64))
	}
	if len(got) != 2 {
		t.Fatalf("prefetches = %v, want 2 addresses", got)
	}
	// Last observed addr 0x1100: next two strides.
	if got[0] != 0x1140 || got[1] != 0x1180 {
		t.Errorf("prefetch addrs = %#x", got)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := NewStridePrefetcher(6, 2)
	addrs := []uint64{0x1000, 0x8f40, 0x2310, 0x99c0, 0x0040, 0x7780}
	for _, a := range addrs {
		if out := p.Observe(0x400, a); len(out) != 0 {
			t.Fatalf("random pattern triggered prefetch %v", out)
		}
	}
}

func TestStridePrefetcherPerPC(t *testing.T) {
	p := NewStridePrefetcher(6, 1)
	// Interleave two PCs (distinct table slots) with different strides;
	// both should train.
	var outA, outB []uint64
	for i := 0; i < 6; i++ {
		// Observe's result aliases internal scratch: copy before the
		// next call.
		outA = append([]uint64(nil), p.Observe(0x400, uint64(0x1000+i*8))...)
		outB = append([]uint64(nil), p.Observe(0x504, uint64(0x9000+i*128))...)
	}
	if len(outA) != 1 || outA[0] != 0x1028+8 {
		t.Errorf("pc A prefetch %#x", outA)
	}
	if len(outB) != 1 || outB[0] != 0x9280+128 {
		t.Errorf("pc B prefetch %#x", outB)
	}
}

func TestStreamPrefetcherAscending(t *testing.T) {
	p := NewStreamPrefetcher(4, 3, 64)
	var out []uint64
	for i := 0; i < 4; i++ {
		out = p.Observe(uint64(0x20000 + i*64))
	}
	if len(out) != 3 {
		t.Fatalf("stream prefetches = %v", out)
	}
	if out[0] != 0x20000+4*64 {
		t.Errorf("first prefetch %#x", out[0])
	}
}

func TestStreamPrefetcherDescending(t *testing.T) {
	p := NewStreamPrefetcher(4, 2, 64)
	var out []uint64
	for i := 10; i >= 6; i-- {
		out = p.Observe(uint64(0x30000 + i*64))
	}
	if len(out) != 2 || out[0] != 0x30000+5*64 {
		t.Fatalf("descending stream prefetches = %#x", out)
	}
}

func TestStreamPrefetcherStaysInPage(t *testing.T) {
	p := NewStreamPrefetcher(4, 8, 64)
	var out []uint64
	// Ascend to the end of a 4 KiB page.
	for i := 60; i < 64; i++ {
		out = p.Observe(uint64(0x40000 + i*64))
	}
	for _, a := range out {
		if a>>12 != 0x40 {
			t.Errorf("prefetch %#x escaped the page", a)
		}
	}
}

func TestStreamPrefetcherRandomNoise(t *testing.T) {
	p := NewStreamPrefetcher(4, 4, 64)
	addrs := []uint64{0x1000, 0x53c0, 0x2180, 0x9a40, 0x0300}
	for _, a := range addrs {
		if out := p.Observe(a); len(out) != 0 {
			t.Fatalf("noise triggered prefetch %v", out)
		}
	}
}
