package cache

// StridePrefetcher is the PC-indexed stride prefetcher that sits at the L1
// data cache (Table II). For each load PC it learns last address and stride;
// after two confirmations it emits prefetch addresses a configurable degree
// ahead.
type StridePrefetcher struct {
	entries []strideEntry
	mask    uint64
	// Degree is how many strides ahead to prefetch per trigger.
	Degree  int
	scratch []uint64 // reused result buffer, valid until next Observe

	Issued uint64
}

type strideEntry struct {
	tag      uint16
	lastAddr uint64
	stride   int64
	conf     int8
}

// NewStridePrefetcher builds a table with 2^bits entries.
func NewStridePrefetcher(bits uint, degree int) *StridePrefetcher {
	if degree <= 0 {
		degree = 2
	}
	return &StridePrefetcher{
		entries: make([]strideEntry, 1<<bits),
		mask:    1<<bits - 1,
		Degree:  degree,
	}
}

// Reset restores the just-constructed state without reallocating the table.
func (p *StridePrefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
	p.Issued = 0
}

// Observe records a demand load at pc/addr and returns the prefetch
// addresses to issue (possibly none). The returned slice is valid until the
// next call.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.entries[(pc>>2)&p.mask]
	tag := uint16(pc >> 2)
	if e.tag != tag {
		*e = strideEntry{tag: tag, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < 2 {
		return nil
	}
	out := p.scratch[:0]
	next := addr
	for i := 0; i < p.Degree; i++ {
		next = uint64(int64(next) + e.stride)
		out = append(out, next)
	}
	p.scratch = out
	p.Issued += uint64(len(out))
	return out
}

// StreamPrefetcher is the multi-stream next-line prefetcher that feeds the
// L2 and LLC. It tracks up to Streams concurrent 4 KiB regions; once a
// region shows two sequential line accesses in one direction it prefetches
// Depth lines ahead.
type StreamPrefetcher struct {
	streams []stream
	// Depth is how many lines ahead a confirmed stream runs.
	Depth     int
	lineBytes uint64
	tick      uint64
	scratch   []uint64 // reused result buffer, valid until next Observe

	Issued uint64
}

type stream struct {
	page     uint64 // region base
	lastLine uint64
	dir      int64 // +1 / -1
	conf     int8
	lru      uint64
	valid    bool
}

// NewStreamPrefetcher builds a detector with the given number of stream
// slots and prefetch depth.
func NewStreamPrefetcher(streams, depth, lineBytes int) *StreamPrefetcher {
	if streams <= 0 {
		streams = 16
	}
	if depth <= 0 {
		depth = 4
	}
	return &StreamPrefetcher{
		streams:   make([]stream, streams),
		Depth:     depth,
		lineBytes: uint64(lineBytes),
	}
}

// Reset restores the just-constructed state without reallocating the slots.
func (p *StreamPrefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.tick = 0
	p.Issued = 0
}

// Observe records a demand miss at addr and returns prefetch addresses.
// The returned slice is valid until the next call.
func (p *StreamPrefetcher) Observe(addr uint64) []uint64 {
	p.tick++
	page := addr &^ 0xFFF
	lineIdx := (addr & 0xFFF) / p.lineBytes

	var s *stream
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].page == page {
			s = &p.streams[i]
			break
		}
	}
	if s == nil {
		// Allocate LRU slot.
		v := 0
		for i := range p.streams {
			if !p.streams[i].valid {
				v = i
				break
			}
			if p.streams[i].lru < p.streams[v].lru {
				v = i
			}
		}
		p.streams[v] = stream{page: page, lastLine: lineIdx, lru: p.tick, valid: true}
		return nil
	}
	s.lru = p.tick
	var dir int64
	switch {
	case lineIdx == s.lastLine+1:
		dir = 1
	case s.lastLine >= 1 && lineIdx == s.lastLine-1:
		dir = -1
	default:
		s.lastLine = lineIdx
		s.conf = 0
		return nil
	}
	if dir == s.dir {
		if s.conf < 3 {
			s.conf++
		}
	} else {
		s.dir = dir
		s.conf = 1
	}
	s.lastLine = lineIdx
	if s.conf < 2 {
		return nil
	}
	out := p.scratch[:0]
	next := int64(lineIdx)
	for i := 0; i < p.Depth; i++ {
		next += dir
		if next < 0 || next >= int64(4096/p.lineBytes) {
			break
		}
		out = append(out, page+uint64(next)*p.lineBytes)
	}
	p.scratch = out
	p.Issued += uint64(len(out))
	return out
}
