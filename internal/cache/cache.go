// Package cache implements set-associative caches with LRU replacement,
// write-back/write-allocate semantics, finite MSHRs and per-line fill
// timing, plus the stride and stream prefetchers of the simulated hierarchy
// (paper Table II: "Aggressive multi-stream prefetching into the L2 and LLC.
// PC based stride prefetcher at L1").
//
// The caches are timing-first: tag state updates eagerly at access time and
// each line remembers the cycle its data becomes usable (readyAt), so a
// demand access that races an in-flight prefetch of the same line waits for
// the fill instead of double-fetching.
package cache

// Line is one cache line's metadata.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	prefet  bool   // brought in by a prefetcher, not yet demanded
	readyAt uint64 // cycle the data arrives
	lru     uint64 // higher = more recently used
}

// Config sizes one cache level.
type Config struct {
	// Name appears in stats ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size (64 throughout the simulated machine).
	LineBytes int
	// Latency is the round-trip hit latency in core cycles.
	Latency uint64
	// MSHRs bounds concurrent outstanding misses (0 = unlimited).
	MSHRs int
}

// Stats counts cache events.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	PrefetchFills uint64
	PrefetchHits  uint64 // demand hits on prefetched lines
	Writebacks    uint64
}

// MissRate returns misses per access.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64 // LRU clock

	mshrFree []uint64 // busy-until cycle per MSHR
	// pendingMSHR is the slot reserved by the most recent missing Lookup,
	// released by the matching Fill; -1 when none. The hierarchy drives
	// Lookup/Fill as an atomic pair per level, so one slot suffices.
	pendingMSHR int

	Stats Stats
}

// New builds a cache from cfg. It panics on non-power-of-two geometry, which
// would indicate a config bug.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cache: invalid geometry for " + cfg.Name)
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("cache: set count must be a power of two for " + cfg.Name)
	}
	c := &Cache{
		cfg:         cfg,
		sets:        make([][]line, nSets),
		setMask:     uint64(nSets - 1),
		pendingMSHR: -1,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	if cfg.MSHRs > 0 {
		c.mshrFree = make([]uint64, cfg.MSHRs)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset restores the cache to its just-constructed state (all lines invalid,
// MSHRs free, stats zeroed) without reallocating the line arrays, so a cache
// can be reused across simulation runs.
func (c *Cache) Reset() {
	for i := range c.sets {
		set := c.sets[i]
		for j := range set {
			set[j] = line{}
		}
	}
	c.tick = 0
	for i := range c.mshrFree {
		c.mshrFree[i] = 0
	}
	c.pendingMSHR = -1
	c.Stats = Stats{}
}

// LineAddr maps a byte address to its line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

func (c *Cache) setOf(addr uint64) []line { return c.sets[(addr>>c.lineBits)&c.setMask] }

func (c *Cache) tagOf(addr uint64) uint64 { return addr >> c.lineBits }

// Probe reports whether addr is present (no state change, no stats).
func (c *Cache) Probe(addr uint64) bool {
	tag := c.tagOf(addr)
	for i := range c.setOf(addr) {
		l := &c.setOf(addr)[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Lookup performs a demand access at cycle now. On a hit it returns
// (true, readyCycle, 0): readyCycle already includes the hit latency and any
// residual fill delay. On a miss it returns (false, startCycle, victimAddr):
// startCycle is when the miss may proceed to the next level (after MSHR
// availability), and victimAddr is the dirty line that must be written back
// (0 when none). The caller must complete the miss with Fill.
func (c *Cache) Lookup(now uint64, addr uint64, write bool) (hit bool, when uint64, victim uint64) {
	c.Stats.Accesses++
	c.tick++
	tag := c.tagOf(addr)
	set := c.setOf(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Stats.Hits++
			if l.prefet {
				c.Stats.PrefetchHits++
				l.prefet = false
			}
			l.lru = c.tick
			if write {
				l.dirty = true
			}
			ready := now
			if l.readyAt > ready {
				ready = l.readyAt
			}
			return true, ready + c.cfg.Latency, 0
		}
	}
	c.Stats.Misses++
	start := c.allocMSHR(now)
	return false, start, c.victimAddr(addr)
}

// WarmAccess is the functional-warmup variant of Lookup: it updates tag,
// LRU and dirty state and counts the access like a demand reference, but
// reserves no MSHR — warmup trains occupancy and replacement state, not
// memory-level parallelism, and the warmer's pseudo-clock has no notion of
// outstanding-miss backpressure. On a miss the caller installs the line
// with Fill as usual (Fill finds no pending reservation and releases
// nothing).
func (c *Cache) WarmAccess(now uint64, addr uint64, write bool) (hit bool, when uint64) {
	c.Stats.Accesses++
	c.tick++
	tag := c.tagOf(addr)
	set := c.setOf(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Stats.Hits++
			if l.prefet {
				c.Stats.PrefetchHits++
				l.prefet = false
			}
			l.lru = c.tick
			if write {
				l.dirty = true
			}
			ready := now
			if l.readyAt > ready {
				ready = l.readyAt
			}
			return true, ready + c.cfg.Latency
		}
	}
	c.Stats.Misses++
	return false, now
}

// allocMSHR returns the cycle the miss can begin, honouring MSHR limits.
// The reservation is released by Fill via freeMSHRAt.
func (c *Cache) allocMSHR(now uint64) uint64 {
	if c.mshrFree == nil {
		return now
	}
	best := 0
	for i := 1; i < len(c.mshrFree); i++ {
		if c.mshrFree[i] < c.mshrFree[best] {
			best = i
		}
	}
	start := now
	if c.mshrFree[best] > start {
		start = c.mshrFree[best]
	}
	// Tentatively hold until far future; Fill shortens it.
	c.mshrFree[best] = start + 1
	c.pendingMSHR = best
	return start
}

func (c *Cache) victimAddr(addr uint64) uint64 {
	set := c.setOf(addr)
	v := c.pickVictim(set)
	l := &set[v]
	if l.valid && l.dirty {
		return l.tag << c.lineBits
	}
	return 0
}

func (c *Cache) pickVictim(set []line) int {
	v := 0
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	return v
}

// Fill installs addr's line with data arriving at readyAt. write marks the
// line dirty immediately (write-allocate). prefetched tags the line as
// prefetcher-installed for stats. It releases the MSHR reserved by the
// preceding Lookup miss.
func (c *Cache) Fill(addr uint64, readyAt uint64, write, prefetched bool) {
	c.tick++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	// Already present (e.g. racing prefetch): refresh timing only.
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			if readyAt < l.readyAt {
				l.readyAt = readyAt
			}
			if write {
				l.dirty = true
			}
			c.releaseMSHR(readyAt)
			return
		}
	}
	v := c.pickVictim(set)
	l := &set[v]
	if l.valid && l.dirty {
		c.Stats.Writebacks++
	}
	*l = line{
		tag:     tag,
		valid:   true,
		dirty:   write,
		prefet:  prefetched,
		readyAt: readyAt,
		lru:     c.tick,
	}
	if prefetched {
		c.Stats.PrefetchFills++
	}
	c.releaseMSHR(readyAt)
}

func (c *Cache) releaseMSHR(at uint64) {
	if c.mshrFree == nil || c.pendingMSHR < 0 {
		return
	}
	c.mshrFree[c.pendingMSHR] = at
	c.pendingMSHR = -1
}

// Invalidate drops addr's line if present (used by tests).
func (c *Cache) Invalidate(addr uint64) {
	tag := c.tagOf(addr)
	set := c.setOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = line{}
		}
	}
}
