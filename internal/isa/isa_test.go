package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := RegZero.String(); got != "zero" {
		t.Errorf("RegZero.String() = %q, want zero", got)
	}
	if got := Reg(7).String(); got != "r7" {
		t.Errorf("Reg(7).String() = %q, want r7", got)
	}
}

func TestRegValid(t *testing.T) {
	if !Reg(0).Valid() || !Reg(NumArchRegs-1).Valid() {
		t.Error("in-range registers must be valid")
	}
	if Reg(NumArchRegs).Valid() {
		t.Error("out-of-range register must be invalid")
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                                  Op
		load, store, mem, branch, cond, ind bool
		hasDest                             bool
	}{
		{OpNop, false, false, false, false, false, false, false},
		{OpALU, false, false, false, false, false, false, true},
		{OpIMul, false, false, false, false, false, false, true},
		{OpIDiv, false, false, false, false, false, false, true},
		{OpFP, false, false, false, false, false, false, true},
		{OpFPDiv, false, false, false, false, false, false, true},
		{OpLoad, true, false, true, false, false, false, true},
		{OpStore, false, true, true, false, false, false, false},
		{OpBranch, false, false, false, true, true, false, false},
		{OpJump, false, false, false, true, false, false, false},
		{OpCall, false, false, false, true, false, false, true},
		{OpRet, false, false, false, true, false, true, false},
		{OpIndirect, false, false, false, true, false, true, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", c.op, c.op.IsStore())
		}
		if c.op.IsMem() != c.mem {
			t.Errorf("%v IsMem = %v", c.op, c.op.IsMem())
		}
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v IsBranch = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsCondBranch() != c.cond {
			t.Errorf("%v IsCondBranch = %v", c.op, c.op.IsCondBranch())
		}
		if c.op.IsIndirect() != c.ind {
			t.Errorf("%v IsIndirect = %v", c.op, c.op.IsIndirect())
		}
		if c.op.HasDest() != c.hasDest {
			t.Errorf("%v HasDest = %v", c.op, c.op.HasDest())
		}
	}
}

func TestOpStringsDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); int(op) < NumOps; op++ {
		s := op.String()
		if s == "" {
			t.Fatalf("op %d has empty name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestDynInstHasDest(t *testing.T) {
	d := DynInst{Op: OpALU, Dst: 3}
	if !d.HasDest() {
		t.Error("ALU with dst r3 must have dest")
	}
	d.Dst = RegZero
	if d.HasDest() {
		t.Error("writes to the zero register are discarded")
	}
	d = DynInst{Op: OpStore, Dst: 3}
	if d.HasDest() {
		t.Error("stores produce no register result")
	}
}

func TestDynInstSources(t *testing.T) {
	var buf [2]Reg
	d := DynInst{Op: OpALU, Src1: 4, Src2: 9}
	if got := d.Sources(&buf); len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Errorf("Sources = %v", got)
	}
	d.Src2 = RegZero
	if got := d.Sources(&buf); len(got) != 1 || got[0] != 4 {
		t.Errorf("Sources = %v", got)
	}
	d.Src1 = RegZero
	if got := d.Sources(&buf); len(got) != 0 {
		t.Errorf("Sources = %v", got)
	}
}

func TestDynInstStringForms(t *testing.T) {
	ld := DynInst{Seq: 1, PC: 0x400000, Op: OpLoad, Dst: 2, Addr: 0x1000, Value: 42}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string %q", s)
	}
	st := DynInst{Op: OpStore, Addr: 0x2000, Value: 7}
	if s := st.String(); !strings.Contains(s, "store") {
		t.Errorf("store string %q", s)
	}
	br := DynInst{Op: OpBranch, Taken: true, Target: 0x400040}
	if s := br.String(); !strings.Contains(s, "taken=true") {
		t.Errorf("branch string %q", s)
	}
	alu := DynInst{Op: OpALU, Dst: 5, Value: 9}
	if s := alu.String(); !strings.Contains(s, "alu") {
		t.Errorf("alu string %q", s)
	}
}

// Property: Sources never returns the zero register and never more than two.
func TestSourcesProperty(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		d := DynInst{Op: OpALU, Src1: Reg(s1 % NumArchRegs), Src2: Reg(s2 % NumArchRegs)}
		var buf [2]Reg
		srcs := d.Sources(&buf)
		if len(srcs) > 2 {
			return false
		}
		for _, r := range srcs {
			if r == RegZero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
