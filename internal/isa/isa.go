// Package isa defines the micro-op level instruction model shared by the
// functional executor (internal/prog), the trace codecs (internal/trace) and
// the cycle-level out-of-order core (internal/ooo).
//
// The model is deliberately RISC-like: one destination register, up to two
// register sources, an optional memory access and an optional control-flow
// edge. It is rich enough to express the data-dependence, memory-dependence
// and control behaviour that value prediction (and Focused Value Prediction
// in particular) interacts with, without carrying x86 encoding baggage.
package isa

import "fmt"

// Reg identifies an architectural register. Register 0 (RegZero) is
// hard-wired to zero and is used to mean "no operand".
type Reg uint8

// RegZero is the always-zero register; as a source it reads 0, as a
// destination it discards the result. It doubles as "no register".
const RegZero Reg = 0

// NumArchRegs is the number of architectural integer/FP registers the mini
// ISA exposes. The rename machinery sizes its alias table from this.
const NumArchRegs = 32

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String returns the assembler name of the register ("zero", "r1", ...).
func (r Reg) String() string {
	if r == RegZero {
		return "zero"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op enumerates micro-op kinds. The out-of-order core maps each kind to an
// execution port class and a latency; the value predictors care mostly about
// whether an op is a load, a store or a branch.
type Op uint8

const (
	// OpNop does nothing; it still occupies pipeline slots.
	OpNop Op = iota
	// OpALU is a single-cycle integer operation (add, sub, logic, shift,
	// compare, LEA-like address arithmetic).
	OpALU
	// OpIMul is integer multiply (3-cycle class).
	OpIMul
	// OpIDiv is integer divide (long-latency, unpipelined class).
	OpIDiv
	// OpFP is a pipelined floating-point/AVX arithmetic op (4-cycle class).
	OpFP
	// OpFPDiv is floating-point divide/sqrt (long-latency class).
	OpFPDiv
	// OpLoad reads memory. Addr/MemSize describe the access; Value holds
	// the loaded data.
	OpLoad
	// OpStore writes memory. Addr/MemSize describe the access; Value holds
	// the stored data (read from Src2 in the mini ISA).
	OpStore
	// OpBranch is a conditional direct branch. Taken/Target describe the
	// resolved outcome.
	OpBranch
	// OpJump is an unconditional direct jump (always taken).
	OpJump
	// OpCall is a direct call (always taken, pushes a return address).
	OpCall
	// OpRet is a function return (indirect, predicted via RAS).
	OpRet
	// OpIndirect is an indirect jump through a register (ITTAGE target).
	OpIndirect
	opCount
)

var opNames = [...]string{
	OpNop:      "nop",
	OpALU:      "alu",
	OpIMul:     "imul",
	OpIDiv:     "idiv",
	OpFP:       "fp",
	OpFPDiv:    "fpdiv",
	OpLoad:     "load",
	OpStore:    "store",
	OpBranch:   "br",
	OpJump:     "jmp",
	OpCall:     "call",
	OpRet:      "ret",
	OpIndirect: "ijmp",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOps is the number of defined micro-op kinds.
const NumOps = int(opCount)

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o == OpLoad }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == OpStore }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsBranch reports whether the op is any control-flow instruction.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpRet, OpIndirect:
		return true
	}
	return false
}

// IsCondBranch reports whether the op is a conditional branch (the only kind
// the TAGE direction predictor handles).
func (o Op) IsCondBranch() bool { return o == OpBranch }

// IsIndirect reports whether the op's target comes from a register and is
// predicted by ITTAGE or the return-address stack.
func (o Op) IsIndirect() bool { return o == OpRet || o == OpIndirect }

// HasDest reports whether the op produces a register result that consumers
// can depend on (and that value prediction could supply early).
func (o Op) HasDest() bool {
	switch o {
	case OpALU, OpIMul, OpIDiv, OpFP, OpFPDiv, OpLoad, OpCall:
		return true
	}
	return false
}

// DynInst is one dynamically executed micro-op: the unit that flows through
// the trace-driven pipeline. The functional executor fills in the
// architectural outcome (Value, Addr, Taken, Target) so that the timing model
// can validate speculation (value prediction, branch prediction, memory
// disambiguation) without re-executing semantics.
// The word-sized fields lead and the byte-sized fields are grouped so the
// struct packs into 48 bytes instead of 64: DynInst is copied on every
// fetch, rename and trace append, and the OOO window holds a slab of them,
// so the 25% size cut is measurable in the cycle loop (see
// internal/ooo/soa.go).
type DynInst struct {
	// Seq is the dynamic sequence number (program order), starting at 0.
	Seq uint64
	// PC is the instruction's address.
	PC uint64
	// Addr is the effective byte address for loads and stores.
	Addr uint64
	// Value is the architectural result: loaded data for loads, stored
	// data for stores, ALU/FP result otherwise.
	Value uint64
	// Target is the resolved next-PC for taken control flow.
	Target uint64
	// Op is the micro-op kind.
	Op Op
	// Dst is the destination register (RegZero if none).
	Dst Reg
	// Src1 and Src2 are the source registers (RegZero if unused). For
	// loads, Src1 is the address base. For stores, Src1 is the address
	// base and Src2 is the data source.
	Src1, Src2 Reg
	// MemSize is the access size in bytes (always 8 in the mini ISA).
	MemSize uint8
	// Taken is the resolved direction for conditional branches (always
	// true for jumps/calls/returns).
	Taken bool
}

// HasDest reports whether this dynamic instruction writes a register other
// than the zero register.
func (d *DynInst) HasDest() bool { return d.Op.HasDest() && d.Dst != RegZero }

// Sources returns the instruction's register sources, skipping RegZero.
// The result aliases an internal array; it is valid until the next call.
func (d *DynInst) Sources(buf *[2]Reg) []Reg {
	n := 0
	if d.Src1 != RegZero {
		buf[n] = d.Src1
		n++
	}
	if d.Src2 != RegZero {
		buf[n] = d.Src2
		n++
	}
	return buf[:n]
}

// String formats the dynamic instruction for debugging.
func (d *DynInst) String() string {
	switch {
	case d.Op.IsLoad():
		return fmt.Sprintf("#%d %#x %s %s=[%#x]=%#x", d.Seq, d.PC, d.Op, d.Dst, d.Addr, d.Value)
	case d.Op.IsStore():
		return fmt.Sprintf("#%d %#x %s [%#x]=%#x", d.Seq, d.PC, d.Op, d.Addr, d.Value)
	case d.Op.IsBranch():
		return fmt.Sprintf("#%d %#x %s taken=%t ->%#x", d.Seq, d.PC, d.Op, d.Taken, d.Target)
	default:
		return fmt.Sprintf("#%d %#x %s %s=%#x", d.Seq, d.PC, d.Op, d.Dst, d.Value)
	}
}

// InstBytes is the fixed encoding size of one mini-ISA instruction; dynamic
// PCs advance by this amount so that cache-line behaviour of the instruction
// stream is realistic.
const InstBytes = 4
