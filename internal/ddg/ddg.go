// Package ddg builds the data-dependence graph of Fields, Rubin & Bodik
// (ISCA'01) over a dynamic instruction window and extracts its weighted
// critical path — the model the paper uses both to motivate focused value
// prediction (§III, Figs 1–2) and as the "Oracle Criticality" comparison
// point (§VI-C).
//
// Each dynamic instruction i contributes three nodes:
//
//	F(i) — fetch/dispatch, E(i) — execute, C(i) — commit
//
// with edges
//
//	F(i-1)→F(i)   in-order fetch            (weight: fetch-group boundary)
//	F(i)→E(i)     dispatch                  (weight: front-end depth)
//	E(p)→E(i)     data dependence           (weight: p's execution latency)
//	E(i)→C(i)     completion                (weight: i's execution latency)
//	C(i-1)→C(i)   in-order commit           (weight: commit-group boundary)
//	C(i-W)→F(i)   finite window of W        (weight: 0)
//	E(b)→F(i)     branch mispredict redirect (weight: b's latency + penalty)
package ddg

import "fvp/internal/isa"

// Config parameterizes graph construction.
type Config struct {
	// ROBSize is the window W for C(i-W)→F(i) edges.
	ROBSize int
	// FetchWidth/CommitWidth group in-order edges: every FetchWidth-th
	// instruction pays one cycle on the F chain (likewise for commit).
	FetchWidth  int
	CommitWidth int
	// FrontEndDepth is the F→E dispatch weight.
	FrontEndDepth uint64
	// MispredictPenalty weights E(branch)→F(next) redirect edges.
	MispredictPenalty uint64
	// Latency returns instruction execution latency (the caller decides
	// cache levels etc.).
	Latency func(d *isa.DynInst) uint64
	// Mispredicted reports whether the branch at seq redirected the
	// front end (nil = no mispredicts).
	Mispredicted func(d *isa.DynInst) bool
	// Predicted reports whether the instruction's result is value
	// predicted. Consumers of a predicted producer do not wait for its
	// execution, so its outgoing E→E dependence edges are removed; the
	// producer still executes (its E→C completion edge keeps its full
	// latency — value prediction does not eliminate execution, §III).
	Predicted func(d *isa.DynInst) bool
}

// DefaultConfig returns a small-core configuration with a fixed latency
// table (loads 5 cycles); callers normally override Latency.
func DefaultConfig() Config {
	return Config{
		ROBSize:       224,
		FetchWidth:    4,
		CommitWidth:   8,
		FrontEndDepth: 1,
		Latency: func(d *isa.DynInst) uint64 {
			switch {
			case d.Op.IsLoad():
				return 5
			case d.Op == isa.OpIMul:
				return 3
			case d.Op == isa.OpIDiv:
				return 20
			case d.Op == isa.OpFP, d.Op == isa.OpFPDiv:
				return 4
			default:
				return 1
			}
		},
	}
}

// nodeKind distinguishes the three node flavours in back-pointers.
type nodeKind uint8

const (
	kindF nodeKind = iota
	kindE
	kindC
	kindNone
)

type backRef struct {
	kind nodeKind
	idx  int32
}

// Graph is the built DDG.
type Graph struct {
	cfg   Config
	insts []isa.DynInst

	fT, eT, cT    []uint64 // longest arrival times
	fB, eB, cB    []backRef
	length        uint64
	criticalE     []bool
	criticalSeqs  []uint64
	lastWriter    map[isa.Reg]int32
	lastStoreAddr map[uint64]int32
}

// Build constructs the graph over insts (program order) and computes the
// critical path. Memory dependences (store→load same address) are included
// as E→E edges, matching §III-A.
func Build(insts []isa.DynInst, cfg Config) *Graph {
	if cfg.Latency == nil {
		cfg.Latency = DefaultConfig().Latency
	}
	if cfg.FetchWidth <= 0 {
		cfg.FetchWidth = 4
	}
	if cfg.CommitWidth <= 0 {
		cfg.CommitWidth = 8
	}
	if cfg.ROBSize <= 0 {
		cfg.ROBSize = 224
	}
	n := len(insts)
	g := &Graph{
		cfg:           cfg,
		insts:         insts,
		fT:            make([]uint64, n),
		eT:            make([]uint64, n),
		cT:            make([]uint64, n),
		fB:            make([]backRef, n),
		eB:            make([]backRef, n),
		cB:            make([]backRef, n),
		criticalE:     make([]bool, n),
		lastWriter:    make(map[isa.Reg]int32),
		lastStoreAddr: make(map[uint64]int32),
	}
	g.forward()
	g.backward()
	return g
}

// relax updates (t,b) if cand is later.
func relax(t *uint64, b *backRef, cand uint64, kind nodeKind, idx int32) {
	if cand > *t || (cand == *t && b.kind == kindNone) {
		*t = cand
		*b = backRef{kind: kind, idx: idx}
	}
}

func (g *Graph) forward() {
	cfg := g.cfg
	for i := range g.insts {
		d := &g.insts[i]
		g.fB[i] = backRef{kind: kindNone}
		g.eB[i] = backRef{kind: kindNone}
		g.cB[i] = backRef{kind: kindNone}

		// F(i): in-order fetch chain.
		if i > 0 {
			w := uint64(0)
			if i%cfg.FetchWidth == 0 {
				w = 1
			}
			relax(&g.fT[i], &g.fB[i], g.fT[i-1]+w, kindF, int32(i-1))
			// Branch redirect.
			prev := &g.insts[i-1]
			if prev.Op.IsBranch() && cfg.Mispredicted != nil && cfg.Mispredicted(prev) {
				relax(&g.fT[i], &g.fB[i],
					g.eT[i-1]+cfg.Latency(prev)+cfg.MispredictPenalty, kindE, int32(i-1))
			}
		}
		// Finite window: C(i-W) → F(i).
		if j := i - cfg.ROBSize; j >= 0 {
			relax(&g.fT[i], &g.fB[i], g.cT[j], kindC, int32(j))
		}

		// E(i): dispatch plus data dependences.
		relax(&g.eT[i], &g.eB[i], g.fT[i]+cfg.FrontEndDepth, kindF, int32(i))
		var srcBuf [2]isa.Reg
		for _, r := range d.Sources(&srcBuf) {
			if p, ok := g.lastWriter[r]; ok {
				pd := &g.insts[p]
				if cfg.Predicted != nil && cfg.Predicted(pd) {
					continue // consumers get the predicted value at dispatch
				}
				relax(&g.eT[i], &g.eB[i], g.eT[p]+cfg.Latency(pd), kindE, p)
			}
		}
		if d.Op.IsLoad() {
			if p, ok := g.lastStoreAddr[d.Addr]; ok {
				pd := &g.insts[p]
				if cfg.Predicted == nil || !cfg.Predicted(d) {
					relax(&g.eT[i], &g.eB[i], g.eT[p]+cfg.Latency(pd), kindE, p)
				}
			}
		}

		// C(i): completion and in-order commit.
		relax(&g.cT[i], &g.cB[i], g.eT[i]+cfg.Latency(d), kindE, int32(i))
		if i > 0 {
			w := uint64(0)
			if i%cfg.CommitWidth == 0 {
				w = 1
			}
			relax(&g.cT[i], &g.cB[i], g.cT[i-1]+w, kindC, int32(i-1))
		}

		// Bookkeeping for later dependences.
		if d.HasDest() {
			g.lastWriter[d.Dst] = int32(i)
		}
		if d.Op.IsStore() {
			g.lastStoreAddr[d.Addr] = int32(i)
		}
	}
	if n := len(g.insts); n > 0 {
		g.length = g.cT[n-1]
	}
}

func (g *Graph) backward() {
	n := len(g.insts)
	if n == 0 {
		return
	}
	kind, idx := kindC, int32(n-1)
	for steps := 0; steps < 3*n+8 && kind != kindNone; steps++ {
		var b backRef
		switch kind {
		case kindF:
			b = g.fB[idx]
		case kindE:
			if !g.criticalE[idx] {
				g.criticalE[idx] = true
				g.criticalSeqs = append(g.criticalSeqs, g.insts[idx].Seq)
			}
			b = g.eB[idx]
		case kindC:
			b = g.cB[idx]
		}
		kind, idx = b.kind, b.idx
	}
	// criticalSeqs collected newest-first; reverse to program order.
	for i, j := 0, len(g.criticalSeqs)-1; i < j; i, j = i+1, j-1 {
		g.criticalSeqs[i], g.criticalSeqs[j] = g.criticalSeqs[j], g.criticalSeqs[i]
	}
}

// Length returns the critical-path length in cycles (the arrival time of
// the last commit).
func (g *Graph) Length() uint64 { return g.length }

// CriticalSeqs returns the sequence numbers whose E node lies on the
// critical path, in program order.
func (g *Graph) CriticalSeqs() []uint64 { return g.criticalSeqs }

// IsCritical reports whether instruction index i (into the Build slice)
// executes on the critical path.
func (g *Graph) IsCritical(i int) bool {
	return i >= 0 && i < len(g.criticalE) && g.criticalE[i]
}

// ETime returns the execute-node arrival time of instruction index i.
func (g *Graph) ETime(i int) uint64 { return g.eT[i] }

// Slack returns, for every instruction, how many cycles its execution could
// be delayed without lengthening the critical path (0 for critical
// instructions). It is computed with a backward pass over the same edges as
// the forward pass; Fields et al. use slack to rank instruction importance,
// and the paper's argument (§III) is exactly that value prediction should
// spend its budget on the zero-slack loads nearest the root.
func (g *Graph) Slack() []uint64 {
	n := len(g.insts)
	if n == 0 {
		return nil
	}
	cfg := g.cfg
	// latest[k][i]: latest allowed time of node kind k of instruction i.
	inf := g.length
	latF := make([]uint64, n)
	latE := make([]uint64, n)
	latC := make([]uint64, n)
	for i := range latF {
		latF[i], latE[i], latC[i] = inf, inf, inf
	}
	tighten := func(t *uint64, cand uint64) {
		if cand < *t {
			*t = cand
		}
	}
	// Re-derive the edges exactly as in forward(), then apply each edge
	// u→v (weight w) backward as latest(u) ≤ latest(v) − w.
	type edge struct {
		fromKind, toKind nodeKind
		from, to         int32
		w                uint64
	}
	var edges []edge
	lastWriter := map[isa.Reg]int32{}
	lastStore := map[uint64]int32{}
	for i := 0; i < n; i++ {
		d := &g.insts[i]
		if i > 0 {
			w := uint64(0)
			if i%cfg.FetchWidth == 0 {
				w = 1
			}
			edges = append(edges, edge{kindF, kindF, int32(i - 1), int32(i), w})
			prev := &g.insts[i-1]
			if prev.Op.IsBranch() && cfg.Mispredicted != nil && cfg.Mispredicted(prev) {
				edges = append(edges, edge{kindE, kindF, int32(i - 1), int32(i),
					cfg.Latency(prev) + cfg.MispredictPenalty})
			}
			wc := uint64(0)
			if i%cfg.CommitWidth == 0 {
				wc = 1
			}
			edges = append(edges, edge{kindC, kindC, int32(i - 1), int32(i), wc})
		}
		if j := i - cfg.ROBSize; j >= 0 {
			edges = append(edges, edge{kindC, kindF, int32(j), int32(i), 0})
		}
		edges = append(edges, edge{kindF, kindE, int32(i), int32(i), cfg.FrontEndDepth})
		var srcBuf [2]isa.Reg
		for _, r := range d.Sources(&srcBuf) {
			if p, ok := lastWriter[r]; ok {
				pd := &g.insts[p]
				if cfg.Predicted == nil || !cfg.Predicted(pd) {
					edges = append(edges, edge{kindE, kindE, p, int32(i), cfg.Latency(pd)})
				}
			}
		}
		if d.Op.IsLoad() {
			if p, ok := lastStore[d.Addr]; ok {
				if cfg.Predicted == nil || !cfg.Predicted(d) {
					pd := &g.insts[p]
					edges = append(edges, edge{kindE, kindE, p, int32(i), cfg.Latency(pd)})
				}
			}
		}
		edges = append(edges, edge{kindE, kindC, int32(i), int32(i), cfg.Latency(d)})
		if d.HasDest() {
			lastWriter[d.Dst] = int32(i)
		}
		if d.Op.IsStore() {
			lastStore[d.Addr] = int32(i)
		}
	}
	// Process edges in reverse construction order: every edge's target
	// node belongs to an instruction ≥ the source's, and within one
	// instruction edges were added in F→E→C order, so a single reverse
	// sweep settles all latest-times.
	for k := len(edges) - 1; k >= 0; k-- {
		e := edges[k]
		var tv uint64
		switch e.toKind {
		case kindF:
			tv = latF[e.to]
		case kindE:
			tv = latE[e.to]
		default:
			tv = latC[e.to]
		}
		if tv < e.w {
			continue // edge cannot constrain below zero
		}
		cand := tv - e.w
		switch e.fromKind {
		case kindF:
			tighten(&latF[e.from], cand)
		case kindE:
			tighten(&latE[e.from], cand)
		default:
			tighten(&latC[e.from], cand)
		}
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = latE[i] - g.eT[i]
	}
	return out
}
