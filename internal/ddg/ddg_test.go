package ddg

import (
	"testing"

	"fvp/internal/isa"
)

// paperExample builds the 9-instruction program of the paper's Fig. 1.
func paperExample() ([]isa.DynInst, map[uint64]uint64) {
	mk := func(seq uint64, op isa.Op, dst, s1, s2 isa.Reg, addr uint64) isa.DynInst {
		return isa.DynInst{Seq: seq, PC: 0x400000 + seq*4, Op: op,
			Dst: dst, Src1: s1, Src2: s2, Addr: addr, MemSize: 8}
	}
	insts := []isa.DynInst{
		mk(0, isa.OpLoad, 1, 10, 0, 0x9000), // I1 (30 cycles)
		mk(1, isa.OpALU, 2, 1, 0, 0),        // I2
		mk(2, isa.OpLoad, 3, 11, 0, 0x9100), // I3
		mk(3, isa.OpALU, 2, 2, 3, 0),        // I4
		mk(4, isa.OpLoad, 4, 12, 0, 0x9200), // I5
		mk(5, isa.OpALU, 5, 4, 0, 0),        // I6
		mk(6, isa.OpALU, 6, 5, 0, 0),        // I7
		mk(7, isa.OpLoad, 7, 2, 0, 0x9300),  // I8 (200 cycles)
		mk(8, isa.OpALU, 8, 7, 0, 0),        // I9
	}
	lat := map[uint64]uint64{0: 30, 1: 5, 2: 5, 3: 5, 4: 5, 5: 5, 6: 5, 7: 200, 8: 1}
	return insts, lat
}

func paperConfig(lat map[uint64]uint64) Config {
	return Config{
		ROBSize: 224, FetchWidth: 4, CommitWidth: 8, FrontEndDepth: 0,
		Latency: func(d *isa.DynInst) uint64 { return lat[d.Seq] },
	}
}

func TestPaperExampleCriticalPath(t *testing.T) {
	insts, lat := paperExample()
	g := Build(insts, paperConfig(lat))
	if g.Length() != 241 {
		t.Errorf("critical path = %d, paper says 241", g.Length())
	}
	want := map[uint64]bool{0: true, 1: true, 3: true, 7: true, 8: true} // I1,I2,I4,I8,I9
	got := g.CriticalSeqs()
	if len(got) != len(want) {
		t.Fatalf("critical set %v, want I1,I2,I4,I8,I9", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("I%d on critical path unexpectedly", s+1)
		}
	}
	// The independent chain I5–I7 is not critical.
	for _, s := range []int{4, 5, 6} {
		if g.IsCritical(s) {
			t.Errorf("I%d must not be critical", s+1)
		}
	}
}

func TestPredictionShortensPath(t *testing.T) {
	insts, lat := paperExample()
	cfg := paperConfig(lat)

	// Predicting I4 removes the whole upstream chain: ≈205 cycles.
	cfg.Predicted = func(d *isa.DynInst) bool { return d.Seq == 3 }
	if got := Build(insts, cfg).Length(); got > 210 || got < 195 {
		t.Errorf("predict I4: %d, paper says ≈205", got)
	}
	// Predicting I1 only: ≈212.
	cfg.Predicted = func(d *isa.DynInst) bool { return d.Seq == 0 }
	if got := Build(insts, cfg).Length(); got > 216 || got < 205 {
		t.Errorf("predict I1: %d, paper says ≈212", got)
	}
	// Predicting only the miss I8 saves almost nothing (§III).
	cfg.Predicted = func(d *isa.DynInst) bool { return d.Seq == 7 }
	if got := Build(insts, cfg).Length(); got < 235 {
		t.Errorf("predict I8: %d, should stay ≈241/240", got)
	}
}

func TestMemoryDependenceEdge(t *testing.T) {
	// store → load to the same address creates an E→E edge.
	insts := []isa.DynInst{
		{Seq: 0, PC: 0x400000, Op: isa.OpALU, Dst: 1},
		{Seq: 1, PC: 0x400004, Op: isa.OpStore, Src1: 2, Src2: 1, Addr: 0x8000, MemSize: 8},
		{Seq: 2, PC: 0x400008, Op: isa.OpLoad, Dst: 3, Src1: 4, Addr: 0x8000, MemSize: 8},
	}
	lat := func(d *isa.DynInst) uint64 {
		if d.Op.IsStore() {
			return 50
		}
		return 1
	}
	g := Build(insts, Config{FrontEndDepth: 0, Latency: lat})
	// The load's E time must be after the store's E + 50.
	if g.ETime(2) < g.ETime(1)+50 {
		t.Errorf("load E=%d, store E=%d: memory edge missing", g.ETime(2), g.ETime(1))
	}
}

func TestWindowEdgeLimitsRuntime(t *testing.T) {
	// A long stream of independent 10-cycle ops: with a tiny window the
	// critical path grows linearly via C(i-W)→F(i) edges.
	n := 200
	insts := make([]isa.DynInst, n)
	for i := range insts {
		insts[i] = isa.DynInst{Seq: uint64(i), PC: uint64(0x400000 + i*4), Op: isa.OpALU, Dst: isa.Reg(1 + i%4)}
	}
	lat := func(*isa.DynInst) uint64 { return 10 }
	smallCfg := Config{ROBSize: 4, FetchWidth: 4, CommitWidth: 4, Latency: lat}
	bigCfg := Config{ROBSize: 1024, FetchWidth: 4, CommitWidth: 4, Latency: lat}
	small := Build(insts, smallCfg).Length()
	big := Build(insts, bigCfg).Length()
	if small <= big {
		t.Errorf("window 4 length %d must exceed window 1024 length %d", small, big)
	}
}

func TestMispredictEdge(t *testing.T) {
	insts := []isa.DynInst{
		{Seq: 0, PC: 0x400000, Op: isa.OpBranch, Taken: true, Target: 0x400004},
		{Seq: 1, PC: 0x400004, Op: isa.OpALU, Dst: 1},
	}
	lat := func(*isa.DynInst) uint64 { return 1 }
	base := Build(insts, Config{Latency: lat, FrontEndDepth: 0})
	miss := Build(insts, Config{
		Latency: lat, FrontEndDepth: 0, MispredictPenalty: 20,
		Mispredicted: func(d *isa.DynInst) bool { return d.Op.IsBranch() },
	})
	if miss.Length() < base.Length()+19 {
		t.Errorf("mispredict edge missing: %d vs %d", miss.Length(), base.Length())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(nil, Config{})
	if g.Length() != 0 || len(g.CriticalSeqs()) != 0 {
		t.Error("empty graph must be trivial")
	}
}

func TestDefaultConfigLatencies(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[isa.Op]uint64{
		isa.OpLoad: 5, isa.OpIMul: 3, isa.OpIDiv: 20, isa.OpFP: 4, isa.OpALU: 1,
	}
	for op, want := range cases {
		if got := cfg.Latency(&isa.DynInst{Op: op}); got != want {
			t.Errorf("latency(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestSlack(t *testing.T) {
	insts, lat := paperExample()
	g := Build(insts, paperConfig(lat))
	slack := g.Slack()
	if len(slack) != len(insts) {
		t.Fatalf("slack entries = %d", len(slack))
	}
	// Critical instructions have zero slack.
	for _, i := range []int{0, 1, 3, 7, 8} {
		if slack[i] != 0 {
			t.Errorf("critical I%d has slack %d", i+1, slack[i])
		}
	}
	// The independent chain I5–I7 has large slack (≈200 cycles: it only
	// needs to finish before the end of the window).
	for _, i := range []int{4, 5, 6} {
		if slack[i] < 100 {
			t.Errorf("off-path I%d slack %d, expected large", i+1, slack[i])
		}
	}
	// I3 feeds I4 but arrives long before I2's chain: positive slack.
	if slack[2] == 0 {
		t.Error("I3 should have slack (it waits for I1's chain anyway)")
	}
}
