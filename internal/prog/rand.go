package prog

// RNG is a small deterministic xorshift64* generator. Workload construction
// and the probabilistic confidence counters in the predictors use it so that
// every simulation is exactly reproducible without pulling in math/rand
// state that other packages might perturb.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (a zero seed is remapped, as
// xorshift has a fixed point at zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("prog: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
