package prog

import "fvp/internal/isa"

// Checkpoint is an immutable architectural snapshot of an Exec: register
// file, program position, call stack, restart accounting, and a
// copy-on-write reference to the memory image. It is the unit of the
// harness's region-parallel simulation: one fast functional pass takes a
// checkpoint at each region boundary, and each region worker restores its
// checkpoint into a private Exec.
//
// The resume guarantee is exact: Restore yields an Exec whose DynInst
// stream is byte-identical to the stream the source Exec would have
// produced from the checkpointed instruction onward (enforced by
// TestCheckpointResumeExact and FuzzCheckpointRestore).
type Checkpoint struct {
	prog        *Program
	regs        [isa.NumArchRegs]uint64
	mem         *Memory
	pc          int
	seq         uint64
	stack       []int
	halted      bool
	restarts    int
	maxRestarts int
}

// Checkpoint captures the executor's current architectural state. The
// memory image is shared copy-on-write, so the cost is O(touched pages)
// pointer copies; later writes — by the live Exec or by any restored one —
// copy only the pages they dirty.
func (e *Exec) Checkpoint() *Checkpoint {
	return &Checkpoint{
		prog:        e.prog,
		regs:        e.regs,
		mem:         e.mem.Clone(),
		pc:          e.pc,
		seq:         e.seq,
		stack:       append([]int(nil), e.stack...),
		halted:      e.halted,
		restarts:    e.restarts,
		maxRestarts: e.MaxRestarts,
	}
}

// Seq returns the dynamic instruction count at which the checkpoint was
// taken: the Seq of the next instruction a restored Exec will produce.
func (cp *Checkpoint) Seq() uint64 { return cp.seq }

// Program returns the program the checkpoint belongs to.
func (cp *Checkpoint) Program() *Program { return cp.prog }

// Restore materializes a fresh Exec resuming exactly at the checkpoint.
// It may be called any number of times, from concurrent goroutines: each
// call returns an independent Exec whose memory copy-on-write shares the
// checkpointed pages.
func (cp *Checkpoint) Restore() *Exec {
	return &Exec{
		prog:        cp.prog,
		regs:        cp.regs,
		mem:         cp.mem.Clone(),
		pc:          cp.pc,
		seq:         cp.seq,
		stack:       append([]int(nil), cp.stack...),
		halted:      cp.halted,
		restarts:    cp.restarts,
		MaxRestarts: cp.maxRestarts,
	}
}

// Memory returns a copy-on-write clone of the checkpointed memory image —
// the initial retired-memory shadow for a core simulating this region.
func (cp *Checkpoint) Memory() *Memory { return cp.mem.Clone() }
