package prog

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.Read(0x1234_5678) != 0 {
		t.Error("untouched memory must read zero")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 42)
	if got := m.Read(0x1000); got != 42 {
		t.Errorf("got %d", got)
	}
	// Unaligned access aligns down to the same word.
	if got := m.Read(0x1003); got != 42 {
		t.Errorf("unaligned read got %d", got)
	}
	m.Write(0x1007, 7)
	if got := m.Read(0x1000); got != 7 {
		t.Errorf("unaligned write: got %d, want 7", got)
	}
}

func TestMemoryBackground(t *testing.T) {
	bg := func(addr uint64) uint64 { return addr * 3 }
	m := NewMemory()
	m.SetBackground(bg)
	if got := m.Read(0x2000); got != 0x6000 {
		t.Errorf("background read got %#x", got)
	}
	// A write materializes the page, preserving background values of
	// neighbours.
	m.Write(0x2008, 1)
	if got := m.Read(0x2010); got != 0x2010*3 {
		t.Errorf("neighbour after write got %#x, want background", got)
	}
	if got := m.Read(0x2008); got != 1 {
		t.Errorf("written word got %d", got)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.SetBackground(func(a uint64) uint64 { return ^a })
	m.Write(0x100, 9)
	c := m.Clone()
	c.Write(0x100, 10)
	if m.Read(0x100) != 9 {
		t.Error("clone write leaked into original")
	}
	if c.Read(0x100) != 10 {
		t.Error("clone lost its write")
	}
	if c.Read(0x5000) != ^uint64(0x5000) {
		t.Error("clone lost the background function")
	}
}

func TestMemoryPages(t *testing.T) {
	m := NewMemory()
	m.Write(0, 1)
	m.Write(4095, 1) // same 4 KiB page
	if m.Pages() != 1 {
		t.Errorf("pages = %d, want 1", m.Pages())
	}
	m.Write(4096, 1)
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

// Property: Memory behaves like a map keyed by aligned address.
func TestMemoryMatchesMap(t *testing.T) {
	type op struct {
		Write bool
		Addr  uint16 // keep the space small so reads hit writes
		Val   uint64
	}
	f := func(ops []op) bool {
		m := NewMemory()
		ref := map[uint64]uint64{}
		for _, o := range ops {
			a := uint64(o.Addr)
			if o.Write {
				m.Write(a, o.Val)
				ref[a&^7] = o.Val
			} else if m.Read(a) != ref[a&^7] {
				return false
			}
		}
		for a, v := range ref {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should diverge immediately")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must be remapped (xorshift fixed point)")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBoolBias(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("Bool(0.25) frequency %.3f", frac)
	}
}
