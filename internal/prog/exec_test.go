package prog

import (
	"testing"

	"fvp/internal/isa"
)

// run builds and executes a program for n steps, returning the executor.
func run(t *testing.T, b *Builder, n uint64) *Exec {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p)
	e.Run(n, nil)
	return e
}

func TestExecArithmetic(t *testing.T) {
	b := NewBuilder("arith")
	b.MovI(1, 10)
	b.MovI(2, 3)
	b.Add(3, 1, 2)    // 13
	b.Sub(4, 1, 2)    // 7
	b.Mul(5, 1, 2)    // 30
	b.Div(6, 1, 2)    // 3
	b.Xor(7, 1, 2)    // 9
	b.Shl(8, 1, 2)    // 10<<2 = 40 (shift amount is an immediate)
	b.Shr(9, 1, 1)    // 5
	b.AndR(10, 1, 2)  // 2
	b.Or(11, 1, 2)    // 11
	b.MulI(12, 1, -2) // -20
	b.Halt()
	e := run(t, b, 12)
	want := map[isa.Reg]uint64{
		3: 13, 4: 7, 5: 30, 6: 3, 7: 9, 8: 40, 9: 5, 10: 2, 11: 11,
		12: ^uint64(19), // -20 as two's complement
	}
	for r, v := range want {
		if got := e.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestExecDivByZero(t *testing.T) {
	b := NewBuilder("div0")
	b.MovI(1, 5)
	b.Div(2, 1, 3) // r3 = 0
	b.FDiv(4, 1, 3)
	b.Halt()
	e := run(t, b, 3)
	if e.Reg(2) != ^uint64(0) || e.Reg(4) != ^uint64(0) {
		t.Errorf("div by zero: r2=%#x r4=%#x, want all-ones", e.Reg(2), e.Reg(4))
	}
}

func TestExecMemory(t *testing.T) {
	b := NewBuilder("mem")
	b.InitMem(0x1000, 99)
	b.MovI(1, 0x1000)
	b.Load(2, 1, 0) // r2 = 99
	b.MovI(3, 123)
	b.Store(1, 8, 3) // [0x1008] = 123
	b.Load(4, 1, 8)  // r4 = 123
	b.Halt()
	e := run(t, b, 5)
	if e.Reg(2) != 99 {
		t.Errorf("load got %d, want 99", e.Reg(2))
	}
	if e.Reg(4) != 123 {
		t.Errorf("store/load roundtrip got %d, want 123", e.Reg(4))
	}
	if e.Mem(0x1008) != 123 {
		t.Errorf("memory holds %d, want 123", e.Mem(0x1008))
	}
}

func TestExecZeroRegisterImmutable(t *testing.T) {
	b := NewBuilder("zero")
	b.MovI(0, 42) // write to zero register discarded
	b.Add(1, 0, 0)
	b.Halt()
	e := run(t, b, 2)
	if e.Reg(0) != 0 {
		t.Errorf("zero register = %d", e.Reg(0))
	}
	if e.Reg(1) != 0 {
		t.Errorf("r1 = %d, want 0", e.Reg(1))
	}
}

func TestExecBranches(t *testing.T) {
	b := NewBuilder("br")
	b.MovI(1, 3)
	b.MovI(2, 0)
	b.Label("loop")
	b.AddI(2, 2, 10)
	b.SubI(1, 1, 1)
	b.BNZ(1, "loop")
	b.Halt()
	// Exactly one pass: 2 init + 3 iterations × 3 = 11 instructions
	// (running further would restart and re-clear the accumulator).
	e := run(t, b, 11)
	if e.Reg(2) != 30 {
		t.Errorf("loop accumulated %d, want 30", e.Reg(2))
	}
}

func TestExecBranchKinds(t *testing.T) {
	b := NewBuilder("brkinds")
	b.MovI(1, 5)
	b.MovI(2, 7)
	b.BLT(1, 2, "lt") // taken
	b.MovI(10, 1)     // skipped
	b.Label("lt")
	b.BGE(1, 2, "bad") // not taken
	b.MovI(11, 1)
	b.BGE(2, 1, "ge") // taken
	b.MovI(10, 1)     // skipped
	b.Label("ge")
	b.BEZ(0, "ez") // zero register: taken
	b.MovI(10, 1)
	b.Label("ez")
	b.Halt()
	b.Label("bad")
	b.MovI(12, 1)
	b.Halt()
	e := run(t, b, 20)
	if e.Reg(10) != 0 || e.Reg(12) != 0 {
		t.Errorf("wrong path taken: r10=%d r12=%d", e.Reg(10), e.Reg(12))
	}
	if e.Reg(11) != 1 {
		t.Error("fall-through path not executed")
	}
}

func TestExecCallRet(t *testing.T) {
	b := NewBuilder("call")
	b.Jump("main")
	b.Label("fn")
	b.AddI(2, 2, 1)
	b.Ret()
	b.Label("main")
	b.Call("fn")
	b.Call("fn")
	b.Halt()
	// One whole pass is 8 dynamic instructions (the executor would
	// restart after Halt, running fn again).
	e := run(t, b, 8)
	if e.Reg(2) != 2 {
		t.Errorf("function ran %d times, want 2", e.Reg(2))
	}
}

func TestExecRestartAfterHalt(t *testing.T) {
	b := NewBuilder("restart")
	b.AddI(1, 1, 1) // counts restarts (registers persist across restart)
	b.Halt()
	p := b.MustBuild()
	e := NewExec(p)
	var d isa.DynInst
	for i := 0; i < 10; i++ {
		if !e.Next(&d) {
			t.Fatal("unexpected halt with unlimited restarts")
		}
	}
	if e.Reg(1) != 5 {
		t.Errorf("restarted %d times, want 5", e.Reg(1))
	}
}

func TestExecMaxRestarts(t *testing.T) {
	b := NewBuilder("maxrestart")
	b.Nop()
	b.Halt()
	e := NewExec(b.MustBuild())
	e.MaxRestarts = 2
	var d isa.DynInst
	n := 0
	for e.Next(&d) {
		n++
		if n > 100 {
			t.Fatal("runaway")
		}
	}
	// 3 passes of (nop+halt), the final halt refuses the 3rd restart and
	// is not emitted.
	if n != 5 {
		t.Errorf("executed %d instructions, want 5", n)
	}
}

func TestExecDynInstFields(t *testing.T) {
	b := NewBuilder("fields")
	b.InitMem(0x2000, 5)
	b.MovI(1, 0x2000)
	b.Load(2, 1, 0)
	b.Store(1, 0, 2)
	b.BNZ(2, "t")
	b.Label("t")
	b.Halt()
	p := b.MustBuild()
	e := NewExec(p)
	var d isa.DynInst

	e.Next(&d) // movi
	if d.Op != isa.OpALU || d.Dst != 1 || d.Value != 0x2000 || d.Seq != 0 {
		t.Errorf("movi: %+v", d)
	}
	e.Next(&d) // load
	if d.Op != isa.OpLoad || d.Addr != 0x2000 || d.Value != 5 || d.MemSize != 8 {
		t.Errorf("load: %+v", d)
	}
	e.Next(&d) // store
	if d.Op != isa.OpStore || d.Addr != 0x2000 || d.Value != 5 {
		t.Errorf("store: %+v", d)
	}
	e.Next(&d) // branch
	if d.Op != isa.OpBranch || !d.Taken || d.Target != p.PCOf(4) {
		t.Errorf("branch: %+v", d)
	}
	if d.Seq != 3 {
		t.Errorf("seq = %d, want 3", d.Seq)
	}
}

func TestExecIndirectJump(t *testing.T) {
	b := NewBuilder("ijmp")
	b.MovI(1, 3) // static index of "target"
	b.JumpReg(1)
	b.MovI(2, 1)      // skipped
	b.Label("target") // index 3
	b.MovI(3, 1)
	b.Halt()
	e := run(t, b, 10)
	if e.Reg(2) != 0 || e.Reg(3) != 1 {
		t.Errorf("indirect jump: r2=%d r3=%d", e.Reg(2), e.Reg(3))
	}
}

func TestExecAddressAlignment(t *testing.T) {
	b := NewBuilder("align")
	b.InitMem(0x3000, 77)
	b.MovI(1, 0x3005) // unaligned base
	b.Load(2, 1, 0)   // aligned down to 0x3000
	b.Halt()
	e := run(t, b, 2)
	if e.Reg(2) != 77 {
		t.Errorf("unaligned load got %d, want 77 (align-down semantics)", e.Reg(2))
	}
}
