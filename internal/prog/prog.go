// Package prog defines a small static program representation for the mini
// ISA in internal/isa, plus a functional executor that turns a program into
// a stream of dynamic micro-ops (isa.DynInst). Workload kernels
// (internal/workload) are expressed as these programs, so the values,
// addresses and branch outcomes the timing model sees are produced by real
// execution of real (if small) programs rather than sampled from
// distributions. That is what makes value locality, striding, store→load
// forwarding and branch (un)predictability emerge naturally.
package prog

import (
	"fmt"

	"fvp/internal/isa"
)

// Fn is the detailed operation an instruction performs. The coarse timing
// class (isa.Op) is derived from it.
type Fn uint8

const (
	// FnNop does nothing.
	FnNop Fn = iota
	// FnMovI writes the immediate: dst = imm.
	FnMovI
	// FnAdd computes dst = src1 + src2 + imm.
	FnAdd
	// FnSub computes dst = src1 - src2 + imm.
	FnSub
	// FnAnd computes dst = src1 & (src2 | uint64(imm)).
	FnAnd
	// FnOr computes dst = src1 | src2 | uint64(imm).
	FnOr
	// FnXor computes dst = src1 ^ src2 ^ uint64(imm).
	FnXor
	// FnShl computes dst = src1 << (imm & 63).
	FnShl
	// FnShr computes dst = src1 >> (imm & 63).
	FnShr
	// FnMul computes dst = src1 * src2 (3-cycle multiply class).
	FnMul
	// FnMulI computes dst = src1 * imm (3-cycle multiply class).
	FnMulI
	// FnDiv computes dst = src1 / src2 (src2==0 yields all-ones). Long
	// latency divide class.
	FnDiv
	// FnFPAdd is a floating-point-class add (computed on the integer bits;
	// only the latency class differs from FnAdd).
	FnFPAdd
	// FnFPMul is a floating-point-class multiply.
	FnFPMul
	// FnFPDiv is a floating-point-class divide.
	FnFPDiv
	// FnLoad reads dst = mem[src1 + imm].
	FnLoad
	// FnStore writes mem[src1 + imm] = src2.
	FnStore
	// FnBEZ branches to Target when src1 == 0.
	FnBEZ
	// FnBNZ branches to Target when src1 != 0.
	FnBNZ
	// FnBLT branches to Target when int64(src1) < int64(src2).
	FnBLT
	// FnBGE branches to Target when int64(src1) >= int64(src2).
	FnBGE
	// FnJump jumps unconditionally to Target.
	FnJump
	// FnCall jumps to Target and records the fall-through PC on the
	// executor's call stack; dst (if any) receives the return address.
	FnCall
	// FnRet pops the call stack and jumps to the recorded address.
	FnRet
	// FnJumpReg jumps to the instruction index held in src1 (indirect).
	FnJumpReg
	// FnHalt ends execution (the executor then restarts from entry, so
	// traces of any length can be drawn from finite programs).
	FnHalt
	fnCount
)

var fnNames = [...]string{
	FnNop: "nop", FnMovI: "movi", FnAdd: "add", FnSub: "sub", FnAnd: "and",
	FnOr: "or", FnXor: "xor", FnShl: "shl", FnShr: "shr", FnMul: "mul",
	FnMulI: "muli", FnDiv: "div", FnFPAdd: "fadd", FnFPMul: "fmul",
	FnFPDiv: "fdiv", FnLoad: "load", FnStore: "store", FnBEZ: "bez",
	FnBNZ: "bnz", FnBLT: "blt", FnBGE: "bge", FnJump: "jmp", FnCall: "call",
	FnRet: "ret", FnJumpReg: "jmpr", FnHalt: "halt",
}

// String returns the mnemonic for the function.
func (f Fn) String() string {
	if int(f) < len(fnNames) && fnNames[f] != "" {
		return fnNames[f]
	}
	return fmt.Sprintf("fn(%d)", uint8(f))
}

// Op returns the coarse micro-op class used by the timing model.
func (f Fn) Op() isa.Op {
	switch f {
	case FnNop, FnHalt:
		return isa.OpNop
	case FnMovI, FnAdd, FnSub, FnAnd, FnOr, FnXor, FnShl, FnShr:
		return isa.OpALU
	case FnMul, FnMulI:
		return isa.OpIMul
	case FnDiv:
		return isa.OpIDiv
	case FnFPAdd, FnFPMul:
		return isa.OpFP
	case FnFPDiv:
		return isa.OpFPDiv
	case FnLoad:
		return isa.OpLoad
	case FnStore:
		return isa.OpStore
	case FnBEZ, FnBNZ, FnBLT, FnBGE:
		return isa.OpBranch
	case FnJump:
		return isa.OpJump
	case FnCall:
		return isa.OpCall
	case FnRet:
		return isa.OpRet
	case FnJumpReg:
		return isa.OpIndirect
	}
	return isa.OpNop
}

// Inst is one static instruction of a program.
type Inst struct {
	// Fn selects the operation.
	Fn Fn
	// Dst, Src1, Src2 are register operands (isa.RegZero when unused).
	Dst, Src1, Src2 isa.Reg
	// Imm is the immediate operand (displacement for memory ops).
	Imm int64
	// Target is the static instruction index branches/jumps/calls go to.
	Target int
}

// String formats the instruction for listings.
func (in Inst) String() string {
	switch in.Fn {
	case FnLoad:
		return fmt.Sprintf("%-5s %s, [%s%+d]", in.Fn, in.Dst, in.Src1, in.Imm)
	case FnStore:
		return fmt.Sprintf("%-5s [%s%+d], %s", in.Fn, in.Src1, in.Imm, in.Src2)
	case FnBEZ, FnBNZ, FnBLT, FnBGE, FnJump, FnCall:
		return fmt.Sprintf("%-5s %s, %s, @%d", in.Fn, in.Src1, in.Src2, in.Target)
	case FnMovI:
		return fmt.Sprintf("%-5s %s, %d", in.Fn, in.Dst, in.Imm)
	default:
		return fmt.Sprintf("%-5s %s, %s, %s, %d", in.Fn, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// Program is a finite static program plus its initial data image.
type Program struct {
	// Name identifies the program (workload name).
	Name string
	// Code is the instruction sequence; entry is index 0.
	Code []Inst
	// CodeBase is the byte address of Code[0]; instruction i lives at
	// CodeBase + i*isa.InstBytes.
	CodeBase uint64
	// InitMem seeds the data image (word-aligned byte address → value);
	// use InitFunc for large images.
	InitMem map[uint64]uint64
	// InitFunc, when non-nil, initializes bulk data structures (pointer
	// chase rings, hash tables) directly into the paged memory.
	InitFunc func(m *Memory)
	// Background, when non-nil, supplies deterministic values for words
	// never written (lets huge cold tables exist without storage).
	Background func(addr uint64) uint64
	// WarmRanges hints which address ranges should start resident in the
	// cache hierarchy (steady-state image instead of an unrealistically
	// cold one). Level: 0=L1, 1=L2, 2=LLC.
	WarmRanges []WarmRange
	// InitRegs seeds architectural registers before the first instruction.
	InitRegs map[isa.Reg]uint64
}

// WarmRange asks the timing model to pre-install [Base, Base+Bytes) into
// the cache level (and the levels behind it) before simulation starts.
type WarmRange struct {
	Base  uint64
	Bytes uint64
	Level int
}

// BuildMemory materializes the program's initial data image.
func (p *Program) BuildMemory() *Memory {
	m := NewMemory()
	m.SetBackground(p.Background)
	for a, v := range p.InitMem {
		m.Write(a&^7, v)
	}
	if p.InitFunc != nil {
		p.InitFunc(m)
	}
	return m
}

// PCOf returns the byte address of static instruction idx.
func (p *Program) PCOf(idx int) uint64 {
	return p.CodeBase + uint64(idx)*isa.InstBytes
}

// IndexOf returns the static instruction index at byte address pc and
// whether pc falls inside the program.
func (p *Program) IndexOf(pc uint64) (int, bool) {
	if pc < p.CodeBase {
		return 0, false
	}
	idx := (pc - p.CodeBase) / isa.InstBytes
	if idx >= uint64(len(p.Code)) {
		return 0, false
	}
	return int(idx), true
}

// Validate checks structural well-formedness: targets in range, register
// operands valid, halt reachable only via FnHalt. It returns the first
// problem found.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("prog %q: empty code", p.Name)
	}
	for i, in := range p.Code {
		if in.Fn >= fnCount {
			return fmt.Errorf("prog %q @%d: bad fn %d", p.Name, i, in.Fn)
		}
		if !in.Dst.Valid() || !in.Src1.Valid() || !in.Src2.Valid() {
			return fmt.Errorf("prog %q @%d: bad register operand", p.Name, i)
		}
		switch in.Fn {
		case FnBEZ, FnBNZ, FnBLT, FnBGE, FnJump, FnCall:
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("prog %q @%d: target %d out of range [0,%d)",
					p.Name, i, in.Target, len(p.Code))
			}
		}
	}
	return nil
}
