package prog_test

import (
	"reflect"
	"testing"

	"fvp/internal/isa"
	"fvp/internal/prog"
)

// checkpointTestProgram is a small kernel with every state-carrying feature
// a checkpoint must capture: a counted loop (registers), loads and stores
// over a sliding window (memory pages), a call/ret pair (the call stack),
// and a halt (restart accounting).
func checkpointTestProgram(t testing.TB) *prog.Program {
	b := prog.NewBuilder("ckpt")
	b.InitReg(1, 0x4000) // base pointer
	b.InitReg(2, 0)      // loop counter
	b.InitReg(3, 257)    // iterations per outer pass
	b.InitMem(0x4000, 11)

	b.Label("loop")
	b.Load(4, 1, 0)     // r4 = mem[r1]
	b.AddI(4, 4, 3)     // r4 += 3
	b.Store(1, 8, 4)    // mem[r1+8] = r4
	b.AddI(1, 1, 8)     // r1 += 8 (slide window, touches fresh pages)
	b.Call("bump")      // exercises the call stack across checkpoints
	b.AddI(2, 2, 1)     // counter++
	b.BLT(2, 3, "loop") // loop while r2 < r3
	b.MovI(2, 0)        // reset counter
	b.MovI(1, 0x4000)   // rewind window
	b.Halt()            // restart: next outer pass

	b.Label("bump")
	b.XorI(5, 4, 0x55)
	b.Ret()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func collectStream(e *prog.Exec, n uint64) []isa.DynInst {
	out := make([]isa.DynInst, 0, n)
	e.Run(n, func(d *isa.DynInst) { out = append(out, *d) })
	return out
}

// TestCheckpointResumeExact is the golden resume guarantee: an Exec restored
// from a checkpoint at any boundary produces a DynInst stream byte-identical
// to the uninterrupted stream from that point, and taking the checkpoint
// does not perturb the live executor.
func TestCheckpointResumeExact(t *testing.T) {
	const total = 8192
	p := checkpointTestProgram(t)
	ref := collectStream(prog.NewExec(p), total)
	if len(ref) != total {
		t.Fatalf("reference stream short: %d", len(ref))
	}

	for _, boundary := range []uint64{0, 1, 7, 100, 1000, 2600, 5000} {
		live := prog.NewExec(p)
		if got := live.Run(boundary, nil); got != boundary {
			t.Fatalf("boundary %d: ran %d", boundary, got)
		}
		cp := live.Checkpoint()
		if cp.Seq() != boundary {
			t.Fatalf("checkpoint seq %d, want %d", cp.Seq(), boundary)
		}

		rest := total - int(boundary)
		// The live exec, checkpoint taken, must continue unperturbed.
		gotLive := collectStream(live, uint64(rest))
		if !reflect.DeepEqual(gotLive, ref[boundary:]) {
			t.Errorf("boundary %d: live stream diverged after checkpoint", boundary)
		}
		// The restored exec must produce the identical continuation.
		gotRestored := collectStream(cp.Restore(), uint64(rest))
		if !reflect.DeepEqual(gotRestored, ref[boundary:]) {
			t.Errorf("boundary %d: restored stream diverged", boundary)
		}
	}
}

// TestCheckpointRestoreIsolated: multiple restores from one checkpoint are
// independent — writes through one do not leak into the others or back into
// the checkpoint (the copy-on-write property, observed architecturally).
func TestCheckpointRestoreIsolated(t *testing.T) {
	p := checkpointTestProgram(t)
	live := prog.NewExec(p)
	live.Run(500, nil)
	cp := live.Checkpoint()

	a, b := cp.Restore(), cp.Restore()
	gotA := collectStream(a, 3000)
	// Live keeps running (dirtying shared pages) before b is consumed.
	live.Run(3000, nil)
	gotB := collectStream(b, 3000)
	if !reflect.DeepEqual(gotA, gotB) {
		t.Fatal("two restores from one checkpoint diverged")
	}
	// A third restore, after every sibling has run, still sees the
	// checkpointed image.
	gotC := collectStream(cp.Restore(), 3000)
	if !reflect.DeepEqual(gotA, gotC) {
		t.Fatal("late restore saw writes from a sibling exec")
	}
}

// TestCheckpointMemoryCOW checks the snapshot memory really shares pages
// until written, and that Memory() hands out an image equal to what the
// restored exec observes.
func TestCheckpointMemoryCOW(t *testing.T) {
	p := checkpointTestProgram(t)
	live := prog.NewExec(p)
	live.Run(2000, nil)
	cp := live.Checkpoint()

	mem := cp.Memory()
	if mem.Pages() == 0 {
		t.Fatal("checkpoint image has no pages")
	}
	if mem.SharedPages() != mem.Pages() {
		t.Fatalf("fresh clone should share every page: %d/%d",
			mem.SharedPages(), mem.Pages())
	}
	const probe = 0x4000
	before := mem.Read(probe)
	mem.Write(probe, before+99)
	if got := cp.Restore().Mem(probe); got != before {
		t.Fatalf("write through clone leaked into checkpoint: %#x != %#x", got, before)
	}
}

// FuzzCheckpointRestore drives arbitrary builder programs to an arbitrary
// boundary, checkpoints, and asserts both the continued live stream and the
// restored stream are byte-identical to an uninterrupted reference run.
// This is the property the region-parallel harness relies on.
func FuzzCheckpointRestore(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 5, 0, 0, 42, 2, 6, 5, 5, 0, 29, 0, 0, 0, 0}, uint16(3))
	f.Add([]byte{19, 3, 1, 0, 8, 20, 1, 0, 3, 8, 22, 0, 2, 0, 0}, uint16(100))
	f.Add([]byte{26, 0, 0, 0, 3, 29, 0, 0, 0, 0, 0, 0, 0, 0, 0, 27, 0, 0, 0, 0}, uint16(1000))
	f.Add([]byte{15, 4, 2, 3, 7, 18, 4, 4, 4, 0, 28, 0, 2, 0, 0, 23, 1, 2, 0, 0}, uint16(4095))
	f.Fuzz(func(t *testing.T, data []byte, rawBoundary uint16) {
		p, err := buildFuzzProgram(data)
		if err != nil {
			t.Fatalf("fuzz program failed validation: %v", err)
		}
		boundary := uint64(rawBoundary) % fuzzProgInsts

		ref := collectStream(prog.NewExec(p), fuzzProgInsts)

		live := prog.NewExec(p)
		ran := live.Run(boundary, nil)
		cp := live.Checkpoint()
		if cp.Seq() != ran {
			t.Fatalf("checkpoint seq %d after running %d", cp.Seq(), ran)
		}
		rest := uint64(len(ref)) - ran

		gotRestored := collectStream(cp.Restore(), rest)
		if !reflect.DeepEqual(gotRestored, ref[ran:]) {
			t.Fatal("restored stream diverged from uninterrupted reference")
		}
		gotLive := collectStream(live, rest)
		if !reflect.DeepEqual(gotLive, ref[ran:]) {
			t.Fatal("live stream perturbed by taking a checkpoint")
		}
	})
}
