package prog

import (
	"testing"
	"testing/quick"

	"fvp/internal/isa"
)

// TestExecutorInvariants: for any (small, random) straight-line program the
// executor emits monotonically increasing sequence numbers, PCs inside the
// program, and memory ops with aligned addresses.
func TestExecutorInvariants(t *testing.T) {
	f := func(ops []uint8, imms []int16) bool {
		n := len(ops)
		if len(imms) < n {
			n = len(imms)
		}
		if n == 0 {
			return true
		}
		b := NewBuilder("prop")
		b.MovI(1, 0x5000) // valid memory base
		for i := 0; i < n; i++ {
			dst := isa.Reg(2 + i%6)
			imm := int64(imms[i])
			switch ops[i] % 6 {
			case 0:
				b.AddI(dst, 1, imm)
			case 1:
				b.XorI(dst, dst, imm)
			case 2:
				b.Load(dst, 1, imm&0xFF8)
			case 3:
				b.Store(1, imm&0xFF8, dst)
			case 4:
				b.MulI(dst, 1, imm)
			case 5:
				b.Shr(dst, 1, imm&31)
			}
		}
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		e := NewExec(p)
		var d isa.DynInst
		var lastSeq uint64
		for i := 0; i < n+2; i++ {
			if !e.Next(&d) {
				return false
			}
			if i > 0 && d.Seq != lastSeq+1 {
				return false
			}
			lastSeq = d.Seq
			if _, ok := p.IndexOf(d.PC); !ok {
				return false
			}
			if d.Op.IsMem() && d.Addr%8 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStoreLoadConsistencyProperty: any store followed by a load of the
// same address observes the stored value.
func TestStoreLoadConsistencyProperty(t *testing.T) {
	f := func(vals []uint64, offs []uint8) bool {
		n := len(vals)
		if len(offs) < n {
			n = len(offs)
		}
		if n == 0 {
			return true
		}
		b := NewBuilder("slprop")
		b.MovI(1, 0x8000)
		for i := 0; i < n; i++ {
			b.MovI(2, int64(vals[i]&0x7FFFFFFF))
			b.Store(1, int64(offs[i])*8, 2)
			b.Load(3, 1, int64(offs[i])*8)
			b.Xor(4, 2, 3) // must be zero
			b.BNZ(4, "fail")
		}
		b.Halt()
		b.Label("fail")
		b.MovI(31, 1)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		e := NewExec(p)
		e.MaxRestarts = 0
		var d isa.DynInst
		for e.Next(&d) {
		}
		return e.Reg(31) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBackgroundStability: background values are a pure function of the
// address — two reads of the same address agree, and writes override.
func TestBackgroundStability(t *testing.T) {
	f := func(addrs []uint32, v uint64) bool {
		m := NewMemory()
		m.SetBackground(func(a uint64) uint64 { return a*0x9E3779B1 + 1 })
		for _, a32 := range addrs {
			a := uint64(a32)
			first := m.Read(a)
			if m.Read(a) != first {
				return false
			}
			m.Write(a, v)
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
