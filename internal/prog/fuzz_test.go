package prog_test

import (
	"fmt"
	"reflect"
	"testing"

	"fvp/internal/isa"
	"fvp/internal/prog"
)

// fuzzProgInsts bounds how many dynamic instructions each fuzz execution
// draws: enough to loop through any generated program several times, small
// enough to keep the fuzzer fast.
const fuzzProgInsts = 4096

// buildFuzzProgram decodes the fuzz input into a builder program: five bytes
// per instruction (kind, three operand bytes, one immediate/target byte).
// Every instruction gets a label so branch targets — the only thing Validate
// could reject — can always be mapped onto a real label; the decoded program
// therefore exercises the builder and executor, not the error paths.
func buildFuzzProgram(data []byte) (*prog.Program, error) {
	const bytesPerInst = 5
	n := len(data) / bytesPerInst
	if n > 200 {
		n = 200
	}
	b := prog.NewBuilder("fuzz")
	// Seed a few registers and words so loads hit both written and
	// background-zero memory.
	b.InitReg(1, 0x1000)
	b.InitReg(2, 3)
	b.InitMem(0x1000, 0xDEAD)
	b.InitMem(0x1008, 0xBEEF)
	lbl := func(i int) string { return fmt.Sprintf("L%d", i) }
	reg := func(x byte) isa.Reg { return isa.Reg(x % isa.NumArchRegs) }
	for i := 0; i < n; i++ {
		rec := data[i*bytesPerInst : (i+1)*bytesPerInst]
		dst, s1, s2 := reg(rec[1]), reg(rec[2]), reg(rec[3])
		imm := int64(int8(rec[4]))
		target := lbl(int(rec[4]) % n)
		b.Label(lbl(i))
		switch rec[0] % 30 {
		case 0:
			b.Nop()
		case 1:
			b.MovI(dst, imm)
		case 2:
			b.Add(dst, s1, s2)
		case 3:
			b.AddI(dst, s1, imm)
		case 4:
			b.Sub(dst, s1, s2)
		case 5:
			b.SubI(dst, s1, imm)
		case 6:
			b.And(dst, s1, imm)
		case 7:
			b.AndR(dst, s1, s2)
		case 8:
			b.Or(dst, s1, s2)
		case 9:
			b.Xor(dst, s1, s2)
		case 10:
			b.XorI(dst, s1, imm)
		case 11:
			b.Shl(dst, s1, imm)
		case 12:
			b.Shr(dst, s1, imm)
		case 13:
			b.Mul(dst, s1, s2)
		case 14:
			b.MulI(dst, s1, imm)
		case 15:
			b.Div(dst, s1, s2)
		case 16:
			b.FAdd(dst, s1, s2)
		case 17:
			b.FMul(dst, s1, s2)
		case 18:
			b.FDiv(dst, s1, s2)
		case 19:
			b.Load(dst, s1, imm)
		case 20:
			b.Store(s1, imm, s2)
		case 21:
			b.BEZ(s1, target)
		case 22:
			b.BNZ(s1, target)
		case 23:
			b.BLT(s1, s2, target)
		case 24:
			b.BGE(s1, s2, target)
		case 25:
			b.Jump(target)
		case 26:
			b.Call(target)
		case 27:
			b.Ret()
		case 28:
			b.JumpReg(s1)
		case 29:
			b.Halt()
		}
	}
	// A trailing halt makes every program well-formed even when n == 0 and
	// guarantees fall-through off the end is impossible.
	b.Halt()
	return b.Build()
}

func runFuzzProgram(p *prog.Program) []isa.DynInst {
	e := prog.NewExec(p)
	out := make([]isa.DynInst, 0, fuzzProgInsts)
	e.Run(fuzzProgInsts, func(d *isa.DynInst) { out = append(out, *d) })
	return out
}

// FuzzProgExec feeds arbitrary builder programs through the functional
// executor: Build must either fail cleanly or yield a program whose execution
// never panics and is bit-identical across two independent runs. The OOO
// core, the trace codec and the golden-stat harness all assume exactly this
// determinism of the instruction stream.
func FuzzProgExec(f *testing.F) {
	// One seed per instruction-kind region plus mixed control flow.
	f.Add([]byte{})
	f.Add([]byte{1, 5, 0, 0, 42, 2, 6, 5, 5, 0, 29, 0, 0, 0, 0})
	f.Add([]byte{19, 3, 1, 0, 8, 20, 1, 0, 3, 8, 22, 0, 2, 0, 0})
	f.Add([]byte{26, 0, 0, 0, 3, 29, 0, 0, 0, 0, 0, 0, 0, 0, 0, 27, 0, 0, 0, 0})
	f.Add([]byte{15, 4, 2, 3, 7, 18, 4, 4, 4, 0, 28, 0, 2, 0, 0, 23, 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := buildFuzzProgram(data)
		if err != nil {
			t.Fatalf("fuzz program failed validation: %v", err)
		}
		first := runFuzzProgram(p)
		second := runFuzzProgram(p)
		if !reflect.DeepEqual(first, second) {
			for i := 0; i < len(first) && i < len(second); i++ {
				if first[i] != second[i] {
					t.Fatalf("executor nondeterministic at dynamic inst %d:\n first: %+v\nsecond: %+v",
						i, first[i], second[i])
				}
			}
			t.Fatalf("executor nondeterministic: lengths %d vs %d", len(first), len(second))
		}
	})
}
