package prog

import (
	"strings"
	"testing"
)

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("want undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-label error, got %v", err)
	}
}

func TestBuilderEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("want error for empty program")
	}
}

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("labels")
	b.Label("start")
	b.Jump("end") // forward reference
	b.Jump("start")
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 2 {
		t.Errorf("forward jump target = %d, want 2", p.Code[0].Target)
	}
	if p.Code[1].Target != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Code[1].Target)
	}
}

func TestProgramPCMapping(t *testing.T) {
	b := NewBuilder("pc")
	b.Nop().Nop().Halt()
	p := b.MustBuild()
	for i := range p.Code {
		pc := p.PCOf(i)
		idx, ok := p.IndexOf(pc)
		if !ok || idx != i {
			t.Errorf("IndexOf(PCOf(%d)) = %d,%v", i, idx, ok)
		}
	}
	if _, ok := p.IndexOf(p.CodeBase - 4); ok {
		t.Error("address below code base must not map")
	}
	if _, ok := p.IndexOf(p.PCOf(len(p.Code))); ok {
		t.Error("address past code end must not map")
	}
}

func TestValidateBadTarget(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Fn: FnJump, Target: 5}}}
	if err := p.Validate(); err == nil {
		t.Fatal("want out-of-range target error")
	}
}

func TestValidateBadRegister(t *testing.T) {
	p := &Program{Name: "badreg", Code: []Inst{{Fn: FnAdd, Dst: 200}}}
	if err := p.Validate(); err == nil {
		t.Fatal("want bad-register error")
	}
}

func TestBuilderSetCodeBase(t *testing.T) {
	b := NewBuilder("base").SetCodeBase(0x7000_0003) // aligned down
	b.Halt()
	p := b.MustBuild()
	if p.CodeBase != 0x7000_0000 {
		t.Errorf("code base = %#x", p.CodeBase)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Fn: FnLoad, Dst: 1, Src1: 2, Imm: 8}, "load"},
		{Inst{Fn: FnStore, Src1: 1, Src2: 2}, "store"},
		{Inst{Fn: FnMovI, Dst: 1, Imm: 5}, "movi"},
		{Inst{Fn: FnBNZ, Src1: 1, Target: 3}, "@3"},
	}
	for _, c := range cases {
		if got := c.in.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}

func TestFnOpMapping(t *testing.T) {
	cases := map[Fn]string{
		FnAdd: "alu", FnMul: "imul", FnDiv: "idiv", FnFPAdd: "fp",
		FnFPDiv: "fpdiv", FnLoad: "load", FnStore: "store", FnBEZ: "br",
		FnJump: "jmp", FnCall: "call", FnRet: "ret", FnJumpReg: "ijmp",
		FnHalt: "nop",
	}
	for fn, want := range cases {
		if got := fn.Op().String(); got != want {
			t.Errorf("%v.Op() = %v, want %v", fn, got, want)
		}
	}
}
