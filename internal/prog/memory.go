package prog

import "sync/atomic"

// Memory is a sparse, paged 64-bit word memory. Pages are 4 KiB (512
// words), allocated on first touch, so workloads with multi-megabyte
// footprints (the LLC-missing kernels) cost ~8 bytes per touched word
// instead of the ~50 bytes a Go map entry would.
//
// Pages are copy-on-write: Clone shares pages between images and a writer
// copies a page only while other images still reference it, so an
// architectural checkpoint of a multi-megabyte footprint costs O(pages)
// pointer copies rather than O(bytes). Reference counts are atomic so one
// frozen image (a checkpoint) may be cloned and the clones written from
// concurrent region workers; a single Memory is still single-writer, like
// any Go map-backed structure.
type Memory struct {
	pages map[uint64]*memPage
	// background, when non-nil, supplies the value of words that were
	// never written. Workloads use a deterministic address hash so
	// multi-megabyte cold tables exist without materializing pages.
	background func(addr uint64) uint64
}

// memPage is one 4 KiB page plus the number of Memory images referencing
// it. A page with refs > 1 is immutable; writers copy it first.
type memPage struct {
	refs  atomic.Int32
	words [wordsPerPage]uint64
}

const (
	pageShift    = 12 // 4 KiB pages
	wordsPerPage = 1 << (pageShift - 3)
	wordMask     = wordsPerPage - 1
)

// NewMemory returns an empty memory (all words read as zero).
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*memPage)}
}

// SetBackground installs a deterministic default-value function for
// never-written words (nil restores reads-as-zero).
func (m *Memory) SetBackground(f func(addr uint64) uint64) { m.background = f }

// Read returns the 8-byte word at the aligned-down byte address.
func (m *Memory) Read(addr uint64) uint64 {
	p := m.pages[addr>>pageShift]
	if p == nil {
		if m.background != nil {
			return m.background(addr &^ 7)
		}
		return 0
	}
	return p.words[(addr>>3)&wordMask]
}

// Write stores the 8-byte word at the aligned-down byte address.
func (m *Memory) Write(addr, v uint64) {
	key := addr >> pageShift
	p := m.pages[key]
	switch {
	case p == nil:
		p = new(memPage)
		p.refs.Store(1)
		if m.background != nil {
			base := key << pageShift
			for i := range p.words {
				p.words[i] = m.background(base + uint64(i)*8)
			}
		}
		m.pages[key] = p
	case p.refs.Load() > 1:
		// Shared with a snapshot: copy before writing. The shared page is
		// immutable until its refcount drops to 1, so reading words here
		// races with nothing; the decrement publishes our release.
		cp := new(memPage)
		cp.words = p.words
		cp.refs.Store(1)
		p.refs.Add(-1)
		m.pages[key] = cp
		p = cp
	}
	p.words[(addr>>3)&wordMask] = v
}

// Clone returns a copy-on-write snapshot: the clone and the receiver share
// all current pages, and whichever side writes a shared page first copies
// just that page. Observationally this is a deep copy (the timing model's
// retired-memory shadow starts as a clone of the initial image; checkpoints
// clone the architectural image).
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:      make(map[uint64]*memPage, len(m.pages)),
		background: m.background,
	}
	for k, p := range m.pages {
		p.refs.Add(1)
		c.pages[k] = p
	}
	return c
}

// Pages returns the number of allocated pages (footprint/8 KiB roughly).
func (m *Memory) Pages() int { return len(m.pages) }

// SharedPages returns how many of the allocated pages are currently shared
// with another image (refcount > 1) — a checkpoint-overhead diagnostic.
func (m *Memory) SharedPages() int {
	n := 0
	for _, p := range m.pages {
		if p.refs.Load() > 1 {
			n++
		}
	}
	return n
}
