package prog

// Memory is a sparse, paged 64-bit word memory. Pages are 4 KiB (512
// words), allocated on first touch, so workloads with multi-megabyte
// footprints (the LLC-missing kernels) cost ~8 bytes per touched word
// instead of the ~50 bytes a Go map entry would.
type Memory struct {
	pages map[uint64]*[wordsPerPage]uint64
	// background, when non-nil, supplies the value of words that were
	// never written. Workloads use a deterministic address hash so
	// multi-megabyte cold tables exist without materializing pages.
	background func(addr uint64) uint64
}

const (
	pageShift    = 12 // 4 KiB pages
	wordsPerPage = 1 << (pageShift - 3)
	wordMask     = wordsPerPage - 1
)

// NewMemory returns an empty memory (all words read as zero).
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[wordsPerPage]uint64)}
}

// SetBackground installs a deterministic default-value function for
// never-written words (nil restores reads-as-zero).
func (m *Memory) SetBackground(f func(addr uint64) uint64) { m.background = f }

// Read returns the 8-byte word at the aligned-down byte address.
func (m *Memory) Read(addr uint64) uint64 {
	p := m.pages[addr>>pageShift]
	if p == nil {
		if m.background != nil {
			return m.background(addr &^ 7)
		}
		return 0
	}
	return p[(addr>>3)&wordMask]
}

// Write stores the 8-byte word at the aligned-down byte address.
func (m *Memory) Write(addr, v uint64) {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil {
		p = new([wordsPerPage]uint64)
		if m.background != nil {
			base := key << pageShift
			for i := range p {
				p[i] = m.background(base + uint64(i)*8)
			}
		}
		m.pages[key] = p
	}
	p[(addr>>3)&wordMask] = v
}

// Clone returns a deep copy (the timing model's retired-memory shadow
// starts as a clone of the initial image).
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:      make(map[uint64]*[wordsPerPage]uint64, len(m.pages)),
		background: m.background,
	}
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	return c
}

// Pages returns the number of allocated pages (footprint/8 KiB roughly).
func (m *Memory) Pages() int { return len(m.pages) }
