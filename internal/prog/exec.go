package prog

import (
	"fmt"

	"fvp/internal/isa"
)

// Exec functionally executes a Program, producing the dynamic micro-op
// stream the timing model consumes. When the program halts, execution
// restarts from instruction 0 with registers and memory preserved, so a
// finite kernel yields an unbounded trace (each restart behaves like the
// next outer iteration of the workload).
type Exec struct {
	prog  *Program
	regs  [isa.NumArchRegs]uint64
	mem   *Memory
	pc    int // static instruction index
	seq   uint64
	stack []int // call stack of static return indices
	// halted is set when the program executed FnHalt and MaxRestarts was
	// exhausted; Next then returns false.
	halted   bool
	restarts int
	// MaxRestarts bounds how many times the program may wrap around after
	// FnHalt; <0 means unlimited (the default from NewExec).
	MaxRestarts int
}

// NewExec creates an executor positioned at the program entry, with the
// initial register file and memory image applied.
func NewExec(p *Program) *Exec {
	e := &Exec{
		prog:        p,
		mem:         p.BuildMemory(),
		MaxRestarts: -1,
	}
	for r, v := range p.InitRegs {
		if r != isa.RegZero {
			e.regs[r] = v
		}
	}
	return e
}

// Program returns the program being executed.
func (e *Exec) Program() *Program { return e.prog }

// Reg returns the current architectural value of r.
func (e *Exec) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return e.regs[r]
}

// Mem returns the current 8-byte word at the (aligned-down) byte address.
func (e *Exec) Mem(addr uint64) uint64 { return e.mem.Read(addr) }

// Seq returns the number of dynamic instructions executed so far.
func (e *Exec) Seq() uint64 { return e.seq }

func (e *Exec) setReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		e.regs[r] = v
	}
}

// Next executes one instruction and fills d with its architectural outcome.
// It returns false when the program has halted (only possible when
// MaxRestarts is set) or when the executor detects a runaway (pc escaped the
// program, which Validate-d programs cannot do).
func (e *Exec) Next(d *isa.DynInst) bool {
	if e.halted {
		return false
	}
	if e.pc < 0 || e.pc >= len(e.prog.Code) {
		e.halted = true
		return false
	}
	in := &e.prog.Code[e.pc]
	*d = isa.DynInst{
		Seq:  e.seq,
		PC:   e.prog.PCOf(e.pc),
		Op:   in.Fn.Op(),
		Dst:  in.Dst,
		Src1: in.Src1,
		Src2: in.Src2,
	}
	s1, s2 := e.Reg(in.Src1), e.Reg(in.Src2)
	next := e.pc + 1

	switch in.Fn {
	case FnNop:
		d.Dst = isa.RegZero
	case FnMovI:
		d.Value = uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnAdd:
		d.Value = s1 + s2 + uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnSub:
		d.Value = s1 - s2 + uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnAnd:
		d.Value = s1 & (s2 | uint64(in.Imm))
		e.setReg(in.Dst, d.Value)
	case FnOr:
		d.Value = s1 | s2 | uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnXor:
		d.Value = s1 ^ s2 ^ uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnShl:
		d.Value = s1 << (uint64(in.Imm) & 63)
		e.setReg(in.Dst, d.Value)
	case FnShr:
		d.Value = s1 >> (uint64(in.Imm) & 63)
		e.setReg(in.Dst, d.Value)
	case FnMul:
		d.Value = s1 * s2
		e.setReg(in.Dst, d.Value)
	case FnMulI:
		d.Value = s1 * uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnDiv:
		if s2 == 0 {
			d.Value = ^uint64(0)
		} else {
			d.Value = s1 / s2
		}
		e.setReg(in.Dst, d.Value)
	case FnFPAdd:
		d.Value = s1 + s2 + uint64(in.Imm)
		e.setReg(in.Dst, d.Value)
	case FnFPMul:
		d.Value = s1 * s2
		e.setReg(in.Dst, d.Value)
	case FnFPDiv:
		if s2 == 0 {
			d.Value = ^uint64(0)
		} else {
			d.Value = s1 / s2
		}
		e.setReg(in.Dst, d.Value)
	case FnLoad:
		d.Addr = (s1 + uint64(in.Imm)) &^ 7
		d.MemSize = 8
		d.Value = e.mem.Read(d.Addr)
		e.setReg(in.Dst, d.Value)
	case FnStore:
		d.Addr = (s1 + uint64(in.Imm)) &^ 7
		d.MemSize = 8
		d.Value = s2
		d.Dst = isa.RegZero
		e.mem.Write(d.Addr, s2)
	case FnBEZ:
		d.Taken = s1 == 0
		if d.Taken {
			next = in.Target
		}
		d.Dst = isa.RegZero
	case FnBNZ:
		d.Taken = s1 != 0
		if d.Taken {
			next = in.Target
		}
		d.Dst = isa.RegZero
	case FnBLT:
		d.Taken = int64(s1) < int64(s2)
		if d.Taken {
			next = in.Target
		}
		d.Dst = isa.RegZero
	case FnBGE:
		d.Taken = int64(s1) >= int64(s2)
		if d.Taken {
			next = in.Target
		}
		d.Dst = isa.RegZero
	case FnJump:
		d.Taken = true
		next = in.Target
		d.Dst = isa.RegZero
	case FnCall:
		d.Taken = true
		e.stack = append(e.stack, e.pc+1)
		d.Value = e.prog.PCOf(e.pc + 1)
		e.setReg(in.Dst, d.Value)
		next = in.Target
	case FnRet:
		d.Taken = true
		if n := len(e.stack); n > 0 {
			next = e.stack[n-1]
			e.stack = e.stack[:n-1]
		} else {
			next = 0 // underflow: restart, keeps traces well-defined
		}
		d.Dst = isa.RegZero
	case FnJumpReg:
		d.Taken = true
		if idx := int(s1); idx >= 0 && idx < len(e.prog.Code) {
			next = idx
		} else {
			next = 0
		}
		d.Dst = isa.RegZero
	case FnHalt:
		d.Dst = isa.RegZero
		e.restarts++
		if e.MaxRestarts >= 0 && e.restarts > e.MaxRestarts {
			e.halted = true
			return false
		}
		next = 0
		e.stack = e.stack[:0]
	default:
		panic(fmt.Sprintf("prog: unhandled fn %v", in.Fn))
	}

	if d.Op.IsBranch() {
		d.Target = e.prog.PCOf(next)
	}
	e.pc = next
	e.seq++
	return true
}

// Run executes up to n instructions, calling emit for each (emit may be
// nil). It returns the number actually executed (less than n only when the
// program halted).
func (e *Exec) Run(n uint64, emit func(*isa.DynInst)) uint64 {
	var d isa.DynInst
	var done uint64
	for done < n && e.Next(&d) {
		if emit != nil {
			emit(&d)
		}
		done++
	}
	return done
}
