package prog

import (
	"fmt"

	"fvp/internal/isa"
)

// Builder assembles a Program with symbolic labels so kernels can be written
// without hand-counting instruction indices. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	name     string
	codeBase uint64
	code     []Inst
	labels   map[string]int
	fixups   []fixup
	initMem  map[uint64]uint64
	initRegs map[isa.Reg]uint64
	errs     []error
}

type fixup struct {
	at    int
	label string
}

// NewBuilder creates a builder for a program called name. Code is based at
// a fixed text address so PCs are stable across runs.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		codeBase: 0x0040_0000,
		labels:   make(map[string]int),
		initMem:  make(map[uint64]uint64),
		initRegs: make(map[isa.Reg]uint64),
	}
}

// SetCodeBase overrides the text base address (useful to lay kernels at
// distinct addresses when composing programs).
func (b *Builder) SetCodeBase(base uint64) *Builder {
	b.codeBase = base &^ 7
	return b
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label binds name to the next instruction index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
	return b
}

// InitReg sets the initial value of register r.
func (b *Builder) InitReg(r isa.Reg, v uint64) *Builder {
	b.initRegs[r] = v
	return b
}

// InitMem sets the initial 8-byte word at byte address addr.
func (b *Builder) InitMem(addr, v uint64) *Builder {
	b.initMem[addr&^7] = v
	return b
}

func (b *Builder) emit(in Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitBranch(fn Fn, s1, s2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.emit(Inst{Fn: fn, Src1: s1, Src2: s2})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Fn: FnNop}) }

// MovI emits dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnMovI, Dst: dst, Imm: imm})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnAdd, Dst: dst, Src1: s1, Src2: s2})
}

// AddI emits dst = s1 + imm.
func (b *Builder) AddI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnAdd, Dst: dst, Src1: s1, Imm: imm})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnSub, Dst: dst, Src1: s1, Src2: s2})
}

// SubI emits dst = s1 - imm.
func (b *Builder) SubI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnSub, Dst: dst, Src1: s1, Imm: -imm})
}

// And emits dst = s1 & imm (register form when s2 is given via AndR).
func (b *Builder) And(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnAnd, Dst: dst, Src1: s1, Imm: imm})
}

// AndR emits dst = s1 & s2.
func (b *Builder) AndR(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnAnd, Dst: dst, Src1: s1, Src2: s2})
}

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnOr, Dst: dst, Src1: s1, Src2: s2})
}

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnXor, Dst: dst, Src1: s1, Src2: s2})
}

// XorI emits dst = s1 ^ imm.
func (b *Builder) XorI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnXor, Dst: dst, Src1: s1, Imm: imm})
}

// Shl emits dst = s1 << imm.
func (b *Builder) Shl(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnShl, Dst: dst, Src1: s1, Imm: imm})
}

// Shr emits dst = s1 >> imm.
func (b *Builder) Shr(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnShr, Dst: dst, Src1: s1, Imm: imm})
}

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnMul, Dst: dst, Src1: s1, Src2: s2})
}

// MulI emits dst = s1 * imm.
func (b *Builder) MulI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(Inst{Fn: FnMulI, Dst: dst, Src1: s1, Imm: imm})
}

// Div emits dst = s1 / s2.
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnDiv, Dst: dst, Src1: s1, Src2: s2})
}

// FAdd emits a FP-class dst = s1 + s2.
func (b *Builder) FAdd(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnFPAdd, Dst: dst, Src1: s1, Src2: s2})
}

// FMul emits a FP-class dst = s1 * s2.
func (b *Builder) FMul(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnFPMul, Dst: dst, Src1: s1, Src2: s2})
}

// FDiv emits a FP-class dst = s1 / s2.
func (b *Builder) FDiv(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnFPDiv, Dst: dst, Src1: s1, Src2: s2})
}

// Load emits dst = mem[base + disp].
func (b *Builder) Load(dst, base isa.Reg, disp int64) *Builder {
	return b.emit(Inst{Fn: FnLoad, Dst: dst, Src1: base, Imm: disp})
}

// Store emits mem[base + disp] = data.
func (b *Builder) Store(base isa.Reg, disp int64, data isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnStore, Src1: base, Src2: data, Imm: disp})
}

// BEZ emits a branch to label when s1 == 0.
func (b *Builder) BEZ(s1 isa.Reg, label string) *Builder {
	return b.emitBranch(FnBEZ, s1, isa.RegZero, label)
}

// BNZ emits a branch to label when s1 != 0.
func (b *Builder) BNZ(s1 isa.Reg, label string) *Builder {
	return b.emitBranch(FnBNZ, s1, isa.RegZero, label)
}

// BLT emits a branch to label when int64(s1) < int64(s2).
func (b *Builder) BLT(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(FnBLT, s1, s2, label)
}

// BGE emits a branch to label when int64(s1) >= int64(s2).
func (b *Builder) BGE(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(FnBGE, s1, s2, label)
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) *Builder {
	return b.emitBranch(FnJump, isa.RegZero, isa.RegZero, label)
}

// Call emits a call to label.
func (b *Builder) Call(label string) *Builder {
	return b.emitBranch(FnCall, isa.RegZero, isa.RegZero, label)
}

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(Inst{Fn: FnRet}) }

// JumpReg emits an indirect jump to the static index held in s1.
func (b *Builder) JumpReg(s1 isa.Reg) *Builder {
	return b.emit(Inst{Fn: FnJumpReg, Src1: s1})
}

// Halt emits the end-of-program marker (the executor restarts from entry).
func (b *Builder) Halt() *Builder { return b.emit(Inst{Fn: FnHalt}) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("undefined label %q", f.label))
			continue
		}
		b.code[f.at].Target = idx
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("prog %q: %v", b.name, b.errs[0])
	}
	p := &Program{
		Name:     b.name,
		Code:     b.code,
		CodeBase: b.codeBase,
		InitMem:  b.initMem,
		InitRegs: b.initRegs,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; kernels are static so errors are
// programming mistakes.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
