// Package telemetry turns the ooo core's observability taps into run
// artifacts: an interval Sampler that converts cycle-loop snapshots into a
// time series of per-interval metric deltas (IPC, coverage, stall
// composition, window occupancy), and a PipeTrace that records bounded
// per-instruction stage timelines and exports them as Chrome trace-event
// JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Both are pure consumers of ooo.Observer / ooo.PipeTracer callbacks: they
// never feed anything back into the timing model, and the golden-stat tests
// hold the simulated machine byte-identical with either attached.
package telemetry

import (
	"fvp/internal/ooo"
	"fvp/internal/vp"
)

// Sample is one completed sampling interval: every counter is the delta over
// [StartCycle, EndCycle), occupancies are point readings at EndCycle. The
// JSON form is the wire schema of fvpsim -intervals and the fvpd progress
// feed. Summing any counter field over a run's samples reproduces the run's
// final total exactly (enforced by TestSamplerDeltasSumToTotals).
type Sample struct {
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	// Insts is the number of instructions retired in the interval; IPC is
	// Insts over the interval's cycles.
	Insts uint64  `json:"insts"`
	IPC   float64 `json:"ipc"`

	// Loads / PredictedLoads give the interval's coverage; Correct / Wrong
	// its validation accuracy. Coverage and Accuracy are the derived
	// ratios (0 when the denominator is 0).
	Loads          uint64  `json:"loads"`
	PredictedLoads uint64  `json:"predicted_loads"`
	Correct        uint64  `json:"correct"`
	Wrong          uint64  `json:"wrong"`
	Coverage       float64 `json:"coverage"`
	Accuracy       float64 `json:"accuracy"`

	VPFlushes         uint64 `json:"vp_flushes"`
	BranchMispredicts uint64 `json:"branch_mispredicts"`
	Forwards          uint64 `json:"forwards"`

	// SkippedCycles is the interval's share of idle-elided cycles — a
	// simulator-speed meter, not a machine property: every skipped cycle is
	// still counted in the interval length and breakdown, and the field is 0
	// under -tags ooo_noskip or ooo.Config.DisableIdleElision.
	SkippedCycles uint64 `json:"skipped_cycles"`

	// CycleBreakdown attributes the interval's cycles to the 9 top-down
	// buckets (see ooo.BucketNames); buckets sum to EndCycle-StartCycle.
	CycleBreakdown ooo.CycleBreakdown `json:"cycle_breakdown"`

	// Occupancy meters at the sample instant.
	ROBOcc int `json:"rob_occ"`
	IQOcc  int `json:"iq_occ"`
	LQOcc  int `json:"lq_occ"`
	SQOcc  int `json:"sq_occ"`
}

// Sampler accumulates interval samples from an observed core. It implements
// ooo.Observer: the attach callback records the baseline, every subsequent
// callback emits the delta since the previous one. Zero-length callbacks
// (FinishObservation landing on an interval boundary) are dropped, so the
// sample list always partitions the observed region exactly.
type Sampler struct {
	// OnSample, if set, is invoked with each completed interval (on the
	// simulating goroutine — it must not block).
	OnSample func(Sample)
	// Discard drops samples after OnSample instead of retaining them, for
	// long-running streaming consumers that must not grow memory.
	Discard bool

	attached  bool
	prevStats ooo.RunStats
	prevMeter vp.Meter
	samples   []Sample
}

// NewSampler returns a retaining sampler.
func NewSampler() *Sampler { return &Sampler{} }

// OnInterval implements ooo.Observer.
func (s *Sampler) OnInterval(snap ooo.IntervalSnapshot) {
	if !s.attached {
		s.attached = true
		s.prevStats = *snap.Stats
		s.prevMeter = *snap.Meter
		return
	}
	if snap.Stats.Cycles == s.prevStats.Cycles {
		return
	}
	st, mt := snap.Stats, snap.Meter
	sm := Sample{
		StartCycle:        s.prevStats.Cycles,
		EndCycle:          st.Cycles,
		Insts:             st.Retired - s.prevStats.Retired,
		Loads:             mt.Loads - s.prevMeter.Loads,
		PredictedLoads:    mt.PredictedLoads - s.prevMeter.PredictedLoads,
		Correct:           mt.Correct - s.prevMeter.Correct,
		Wrong:             mt.Wrong - s.prevMeter.Wrong,
		VPFlushes:         st.VPFlushes - s.prevStats.VPFlushes,
		BranchMispredicts: st.BranchMispredicts - s.prevStats.BranchMispredicts,
		Forwards:          st.Forwards - s.prevStats.Forwards,
		SkippedCycles:     st.SkippedCycles - s.prevStats.SkippedCycles,
		ROBOcc:            snap.ROBOcc,
		IQOcc:             snap.IQOcc,
		LQOcc:             snap.LQOcc,
		SQOcc:             snap.SQOcc,
	}
	for i := range sm.CycleBreakdown {
		sm.CycleBreakdown[i] = st.Breakdown[i] - s.prevStats.Breakdown[i]
	}
	sm.IPC = float64(sm.Insts) / float64(sm.EndCycle-sm.StartCycle)
	if sm.Loads > 0 {
		sm.Coverage = float64(sm.PredictedLoads) / float64(sm.Loads)
	}
	if v := sm.Correct + sm.Wrong; v > 0 {
		sm.Accuracy = float64(sm.Correct) / float64(v)
	}
	s.prevStats = *st
	s.prevMeter = *mt
	if s.OnSample != nil {
		s.OnSample(sm)
	}
	if !s.Discard {
		s.samples = append(s.samples, sm)
	}
}

// Samples returns the retained time series in emission order.
func (s *Sampler) Samples() []Sample { return s.samples }

// Reset clears the sampler for reuse on a fresh observed region.
func (s *Sampler) Reset() {
	s.attached = false
	s.samples = s.samples[:0]
}

// Totals sums the retained samples' counters — the cross-check that interval
// deltas reproduce end-of-run totals.
type Totals struct {
	Cycles, Insts, Loads, PredictedLoads, Correct, Wrong uint64
	VPFlushes, BranchMispredicts, Forwards               uint64
	SkippedCycles                                        uint64
	CycleBreakdown                                       ooo.CycleBreakdown
}

// Totals aggregates the retained samples.
func (s *Sampler) Totals() Totals {
	var t Totals
	for _, sm := range s.samples {
		t.Cycles += sm.EndCycle - sm.StartCycle
		t.Insts += sm.Insts
		t.Loads += sm.Loads
		t.PredictedLoads += sm.PredictedLoads
		t.Correct += sm.Correct
		t.Wrong += sm.Wrong
		t.VPFlushes += sm.VPFlushes
		t.BranchMispredicts += sm.BranchMispredicts
		t.Forwards += sm.Forwards
		t.SkippedCycles += sm.SkippedCycles
		for i := range t.CycleBreakdown {
			t.CycleBreakdown[i] += sm.CycleBreakdown[i]
		}
	}
	return t
}
