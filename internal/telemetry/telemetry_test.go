package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"fvp/internal/core"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/telemetry"
	"fvp/internal/workload"
)

const testInsts = 20_000

func newTestCore(t *testing.T, name string) *ooo.Core {
	t.Helper()
	wl, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	p := wl.Build()
	c := ooo.New(ooo.Skylake(), core.New(core.DefaultConfig()), prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	return c
}

// TestSamplerDeltasSumToTotals runs a full workload with the sampler attached
// from cold start and checks that summing the per-interval deltas reproduces
// the run's final totals exactly — no interval lost, none double-counted.
func TestSamplerDeltasSumToTotals(t *testing.T) {
	for _, name := range []string{"mcf", "omnetpp", "hmmer"} {
		t.Run(name, func(t *testing.T) {
			c := newTestCore(t, name)
			s := telemetry.NewSampler()
			c.SetObserver(s, 3_000)
			st := c.Run(testInsts)
			c.FinishObservation()

			tot := s.Totals()
			if tot.Cycles != st.Cycles {
				t.Errorf("cycles: samples sum to %d, run total %d", tot.Cycles, st.Cycles)
			}
			if tot.Insts != st.Retired {
				t.Errorf("insts: samples sum to %d, run retired %d", tot.Insts, st.Retired)
			}
			if tot.VPFlushes != st.VPFlushes {
				t.Errorf("vp flushes: samples sum to %d, run total %d", tot.VPFlushes, st.VPFlushes)
			}
			if tot.BranchMispredicts != st.BranchMispredicts {
				t.Errorf("branch mispredicts: samples sum to %d, run total %d", tot.BranchMispredicts, st.BranchMispredicts)
			}
			if tot.Forwards != st.Forwards {
				t.Errorf("forwards: samples sum to %d, run total %d", tot.Forwards, st.Forwards)
			}
			for i := range tot.CycleBreakdown {
				if tot.CycleBreakdown[i] != st.Breakdown[i] {
					t.Errorf("breakdown[%s]: samples sum to %d, run total %d",
						ooo.BucketNames[i], tot.CycleBreakdown[i], st.Breakdown[i])
				}
			}
			if tot.Loads != c.Meter.Loads || tot.PredictedLoads != c.Meter.PredictedLoads {
				t.Errorf("loads: samples sum to %d/%d, meter %d/%d",
					tot.PredictedLoads, tot.Loads, c.Meter.PredictedLoads, c.Meter.Loads)
			}
			if tot.Correct != c.Meter.Correct || tot.Wrong != c.Meter.Wrong {
				t.Errorf("validation: samples sum to %d/%d, meter %d/%d",
					tot.Correct, tot.Wrong, c.Meter.Correct, c.Meter.Wrong)
			}
		})
	}
}

// TestSamplerPartition checks the samples tile the observed region with no
// gaps or overlaps.
func TestSamplerPartition(t *testing.T) {
	c := newTestCore(t, "gcc")
	s := telemetry.NewSampler()
	c.SetObserver(s, 2_500)
	st := c.Run(testInsts)
	c.FinishObservation()

	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("expected multiple samples, got %d", len(samples))
	}
	if samples[0].StartCycle != 0 {
		t.Errorf("first sample starts at %d, want 0 (attached cold)", samples[0].StartCycle)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].StartCycle != samples[i-1].EndCycle {
			t.Errorf("sample %d starts at %d, previous ended at %d",
				i, samples[i].StartCycle, samples[i-1].EndCycle)
		}
	}
	if last := samples[len(samples)-1].EndCycle; last != st.Cycles {
		t.Errorf("last sample ends at %d, run ended at %d", last, st.Cycles)
	}
	for i, sm := range samples {
		var bd uint64
		for _, b := range sm.CycleBreakdown {
			bd += b
		}
		if want := sm.EndCycle - sm.StartCycle; bd != want {
			t.Errorf("sample %d: breakdown sums to %d, interval is %d cycles", i, bd, want)
		}
	}
}

// TestSamplerStreaming checks the OnSample callback sees the same series the
// retaining path stores, and that Discard keeps memory flat.
func TestSamplerStreaming(t *testing.T) {
	c := newTestCore(t, "mcf")
	var streamed []telemetry.Sample
	s := &telemetry.Sampler{
		OnSample: func(sm telemetry.Sample) { streamed = append(streamed, sm) },
		Discard:  true,
	}
	c.SetObserver(s, 4_000)
	st := c.Run(testInsts)
	c.FinishObservation()

	if len(s.Samples()) != 0 {
		t.Errorf("Discard sampler retained %d samples", len(s.Samples()))
	}
	if len(streamed) == 0 {
		t.Fatal("streaming callback never fired")
	}
	var insts uint64
	for _, sm := range streamed {
		insts += sm.Insts
	}
	if insts != st.Retired {
		t.Errorf("streamed insts sum to %d, run retired %d", insts, st.Retired)
	}
}

// TestSamplerReset checks a sampler can be reused across observed regions.
func TestSamplerReset(t *testing.T) {
	c := newTestCore(t, "hmmer")
	s := telemetry.NewSampler()
	c.SetObserver(s, 2_000)
	st1 := c.Run(5_000) // Run's budget is total retired, so regions stack
	c.FinishObservation()
	first := len(s.Samples())
	if first == 0 {
		t.Fatal("no samples in first region")
	}

	s.Reset()
	c.SetObserver(s, 2_000)
	st := c.Run(10_000)
	c.FinishObservation()
	if len(s.Samples()) == 0 {
		t.Fatal("no samples after Reset")
	}
	// The second region's samples must partition only the second run.
	tot := s.Totals()
	if want := st.Retired - st1.Retired; tot.Insts != want {
		t.Errorf("second region insts sum to %d, want %d", tot.Insts, want)
	}
	if last := s.Samples()[len(s.Samples())-1].EndCycle; last != st.Cycles {
		t.Errorf("second region ends at %d, run ended at %d", last, st.Cycles)
	}
}

// TestSampleJSONRoundTrip pins the wire schema field names.
func TestSampleJSONRoundTrip(t *testing.T) {
	sm := telemetry.Sample{StartCycle: 10, EndCycle: 20, Insts: 15, IPC: 1.5}
	b, err := json.Marshal(sm)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"start_cycle"`, `"end_cycle"`, `"insts"`, `"ipc"`, `"cycle_breakdown"`, `"rob_occ"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("marshaled sample missing %s: %s", key, b)
		}
	}
	var back telemetry.Sample
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != sm {
		t.Errorf("round trip mismatch: %+v != %+v", back, sm)
	}
}
