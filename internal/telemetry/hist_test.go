package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistBucketingAndCount(t *testing.T) {
	h := NewLog(1, 2, 4) // bounds 1,2,4,8 + overflow
	for _, v := range []float64{0.5, 1, 1.5, 3, 8, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1, 2} // (<=1)x2, (<=2)x1, (<=4)x1, (<=8)x1, +Inf x2
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-123) > 1e-9 {
		t.Fatalf("sum = %g, want 123", s.Sum)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewLog(0.001, 2, 20)
	for i := 0; i < 1000; i++ {
		h.Observe(0.010) // all in one bucket (8ms..16ms]
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.008 || p50 > 0.016 {
		t.Fatalf("p50 = %g, want within the 8–16ms bucket", p50)
	}
	if q := h.Quantile(0.99); q < p50 {
		t.Fatalf("p99 %g < p50 %g", q, p50)
	}
	var empty Hist
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	_ = empty
}

func TestHistConcurrentObserve(t *testing.T) {
	h := NewLatency()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestHistPromExposition(t *testing.T) {
	h := NewLog(1, 2, 3)
	h.Observe(1)
	h.Observe(3)
	var b strings.Builder
	WritePromHeader(&b, "x_seconds", "help text")
	h.WriteProm(&b, "x_seconds", `path="/v1/runs"`)
	text := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{path="/v1/runs",le="1"} 1`,
		`x_seconds_bucket{path="/v1/runs",le="4"} 2`,
		`x_seconds_bucket{path="/v1/runs",le="+Inf"} 2`,
		`x_seconds_sum{path="/v1/runs"} 4`,
		`x_seconds_count{path="/v1/runs"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestVecLabeledFamilies(t *testing.T) {
	v := NewVec(func() *Hist { return NewLog(1, 2, 3) })
	v.With(`peer="b"`).Observe(1)
	v.With(`peer="a"`).Observe(2)
	v.With(`peer="a"`).Observe(2)
	var b strings.Builder
	v.WriteProm(&b, "f_seconds", "forwards")
	text := b.String()
	if !strings.Contains(text, `f_seconds_count{peer="a"} 2`) ||
		!strings.Contains(text, `f_seconds_count{peer="b"} 1`) {
		t.Fatalf("vec exposition wrong:\n%s", text)
	}
	// Deterministic order: a before b.
	if strings.Index(text, `peer="a"`) > strings.Index(text, `peer="b"`) {
		t.Fatalf("labels not sorted:\n%s", text)
	}
}
