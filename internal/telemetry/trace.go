package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"fvp/internal/isa"
	"fvp/internal/ooo"
)

// PipeTrace records per-instruction pipeline stage timestamps for a bounded
// window of instructions and exports them as Chrome trace-event JSON. Each
// traced instruction becomes a chain of duration slices (frontend → wait →
// exec → commit) on a lane chosen so that concurrent instructions occupy
// different rows — loading the file in Perfetto shows the machine's
// instruction-level parallelism directly. Value-prediction events
// (predict / validate) render as instants on the instruction's lane, and
// pipeline flushes as process-scoped instants.
//
// The window is bounded by distinct instructions, not events: once MaxInsts
// instructions have been captured, events for new instructions are dropped
// while in-flight ones still complete their timelines, so memory stays
// O(MaxInsts) regardless of run length. An instruction squashed and
// replayed keeps its original record (marked squashed) and gets a fresh
// timeline on refetch without consuming extra window budget.
type PipeTrace struct {
	maxInsts int
	captured map[uint64]bool // seqs ever admitted to the window
	open     map[uint64]*instRec
	done     []*instRec
	flushes  []flushEv
}

// instRec is one instruction's stage timeline. Zero means "stage not
// reached" (the core's clock starts at cycle 1).
type instRec struct {
	seq, pc uint64
	op      isa.Op

	fetch, rename, issue, complete, retire uint64

	predicted            bool
	predCycle, predValue uint64
	valid                uint8 // 0 unvalidated, 1 correct, 2 wrong
	validCycle           uint64

	squashed bool
}

type flushEv struct {
	cycle    uint64
	seq      uint64
	squashed uint64
	hasSeq   bool
}

// DefaultTraceInsts is the window bound NewPipeTrace applies when given 0.
const DefaultTraceInsts = 2048

// NewPipeTrace returns a tracer capturing the first maxInsts distinct
// instructions it observes (0 selects DefaultTraceInsts).
func NewPipeTrace(maxInsts int) *PipeTrace {
	if maxInsts <= 0 {
		maxInsts = DefaultTraceInsts
	}
	return &PipeTrace{
		maxInsts: maxInsts,
		captured: make(map[uint64]bool, maxInsts),
		open:     make(map[uint64]*instRec, 64),
	}
}

// PipeEvent implements ooo.PipeTracer.
func (t *PipeTrace) PipeEvent(ev ooo.TraceEvent, cycle uint64, d *isa.DynInst, arg uint64) {
	if ev == ooo.EvFlush {
		fe := flushEv{cycle: cycle, squashed: arg}
		if d != nil {
			fe.seq, fe.hasSeq = d.Seq, true
		}
		t.flushes = append(t.flushes, fe)
		return
	}
	if ev == ooo.EvFetch {
		if r := t.open[d.Seq]; r != nil {
			// Refetch after a squash: archive the aborted timeline and
			// start a fresh one for the replay.
			r.squashed = true
			t.done = append(t.done, r)
			delete(t.open, d.Seq)
		} else if !t.captured[d.Seq] {
			if len(t.captured) >= t.maxInsts {
				return
			}
			t.captured[d.Seq] = true
		}
		t.open[d.Seq] = &instRec{seq: d.Seq, pc: d.PC, op: d.Op, fetch: cycle}
		return
	}
	r := t.open[d.Seq]
	if r == nil {
		return
	}
	switch ev {
	case ooo.EvRename:
		r.rename = cycle
	case ooo.EvIssue:
		r.issue = cycle
	case ooo.EvComplete:
		r.complete = cycle
	case ooo.EvRetire:
		r.retire = cycle
		t.done = append(t.done, r)
		delete(t.open, d.Seq)
	case ooo.EvPredict:
		r.predicted = true
		r.predCycle, r.predValue = cycle, arg
	case ooo.EvVPCorrect:
		r.valid, r.validCycle = 1, cycle
	case ooo.EvVPWrong:
		r.valid, r.validCycle = 2, cycle
	}
}

// Insts returns the number of distinct instructions captured so far.
func (t *PipeTrace) Insts() int { return len(t.captured) }

// end returns the last cycle the record has evidence for.
func (r *instRec) end() uint64 {
	last := r.fetch
	for _, ts := range [...]uint64{r.rename, r.issue, r.complete, r.retire, r.validCycle} {
		if ts > last {
			last = ts
		}
	}
	return last
}

// chromeEvent is one trace-event object; field names follow the Chrome
// trace-event format (ph "X" = complete slice, "i" = instant, "M" =
// metadata). Timestamps are simulated cycles written into the ts field —
// Perfetto renders them as microseconds, which only rescales the axis.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the format (the array flavor is
// also legal, but the object form carries metadata).
type traceFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders every captured timeline (finished and in-flight)
// to w.
func (t *PipeTrace) WriteChromeTrace(w io.Writer) error {
	recs := make([]*instRec, 0, len(t.done)+len(t.open))
	recs = append(recs, t.done...)
	for _, r := range t.open {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].fetch != recs[j].fetch {
			return recs[i].fetch < recs[j].fetch
		}
		return recs[i].seq < recs[j].seq
	})

	// Greedy lane assignment: each instruction takes the lowest lane free
	// at its fetch cycle, so overlapping lifetimes land on distinct rows.
	var laneEnd []uint64
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "fvp pipeline"},
	}}
	for _, r := range recs {
		lane := -1
		for i, end := range laneEnd {
			if end <= r.fetch {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: lane,
				Args: map[string]any{"name": fmt.Sprintf("lane %02d", lane)},
			})
		}
		laneEnd[lane] = r.end() + 1
		events = append(events, r.events(lane)...)
	}
	for _, f := range t.flushes {
		args := map[string]any{"squashed": f.squashed}
		if f.hasSeq {
			args["from_seq"] = f.seq
		}
		events = append(events, chromeEvent{
			Name: "flush", Ph: "i", Ts: f.cycle, Pid: 0, Tid: 0, S: "p",
			Cat: "flush", Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents: events,
		OtherData:   map[string]string{"clock": "cycles", "format": "fvp pipeline trace"},
	})
}

// events renders one instruction's slices and instants on its lane.
func (r *instRec) events(lane int) []chromeEvent {
	label := fmt.Sprintf("%s %#x #%d", r.op, r.pc, r.seq)
	args := map[string]any{"seq": r.seq, "pc": fmt.Sprintf("%#x", r.pc), "op": r.op.String()}
	out := make([]chromeEvent, 0, 6)
	slice := func(name string, from, to uint64) {
		if from == 0 || to < from {
			return
		}
		out = append(out, chromeEvent{
			Name: name + " " + label, Ph: "X", Ts: from, Dur: to - from,
			Pid: 0, Tid: lane, Cat: "stage", Args: args,
		})
	}
	// Stage chain; a stage whose successor was never reached extends to the
	// record's last evidence so partial (squashed / still in flight)
	// timelines remain visible.
	last := r.end()
	next := func(ts uint64) uint64 {
		if ts != 0 {
			return ts
		}
		return last
	}
	slice("frontend", r.fetch, next(r.rename))
	if r.rename != 0 {
		slice("wait", r.rename, next(r.issue))
	}
	if r.issue != 0 {
		slice("exec", r.issue, next(r.complete))
	}
	if r.complete != 0 {
		slice("commit", r.complete, next(r.retire))
	}
	instant := func(name string, ts uint64, extra map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Ph: "i", Ts: ts, Pid: 0, Tid: lane, S: "t",
			Cat: "vp", Args: extra,
		})
	}
	if r.predicted {
		instant("vp-predict", r.predCycle, map[string]any{"seq": r.seq, "value": r.predValue})
	}
	switch r.valid {
	case 1:
		instant("vp-correct", r.validCycle, map[string]any{"seq": r.seq})
	case 2:
		instant("vp-wrong", r.validCycle, map[string]any{"seq": r.seq})
	}
	if r.squashed {
		instant("squashed", last, map[string]any{"seq": r.seq})
	}
	return out
}
