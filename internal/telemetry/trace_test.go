package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"fvp/internal/telemetry"
)

// runTrace simulates a workload with a tracer attached and returns the
// decoded Chrome trace file.
func runTrace(t *testing.T, workload string, maxInsts, insts int) (*telemetry.PipeTrace, map[string]any) {
	t.Helper()
	c := newTestCore(t, workload)
	tr := telemetry.NewPipeTrace(maxInsts)
	c.SetTracer(tr)
	c.Run(uint64(insts))
	c.SetTracer(nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return tr, doc
}

func traceEvents(t *testing.T, doc map[string]any) []map[string]any {
	t.Helper()
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("trace file has no traceEvents array: keys %v", doc)
	}
	evs := make([]map[string]any, len(raw))
	for i, e := range raw {
		evs[i] = e.(map[string]any)
	}
	return evs
}

// TestPipeTraceChromeFormat checks the exported JSON is well-formed Chrome
// trace-event data: slices with non-negative durations, required fields, and
// the stage vocabulary the docs promise.
func TestPipeTraceChromeFormat(t *testing.T) {
	tr, doc := runTrace(t, "mcf", 256, 5_000)
	if tr.Insts() != 256 {
		t.Errorf("captured %d insts, want the full 256 window", tr.Insts())
	}
	evs := traceEvents(t, doc)
	if len(evs) == 0 {
		t.Fatal("empty traceEvents")
	}
	var slices, instants, meta int
	stages := map[string]bool{}
	for _, e := range evs {
		ph := e["ph"].(string)
		switch ph {
		case "X":
			slices++
			if d, ok := e["dur"]; ok && d.(float64) < 0 {
				t.Errorf("slice %v has negative duration", e["name"])
			}
			if e["ts"].(float64) < 0 {
				t.Errorf("slice %v has negative ts", e["name"])
			}
			name := e["name"].(string)
			for _, st := range []string{"frontend", "wait", "exec", "commit"} {
				if len(name) >= len(st) && name[:len(st)] == st {
					stages[st] = true
				}
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if slices == 0 {
		t.Error("no duration slices emitted")
	}
	if meta == 0 {
		t.Error("no metadata (thread_name) events emitted")
	}
	for _, st := range []string{"frontend", "wait", "exec", "commit"} {
		if !stages[st] {
			t.Errorf("stage %q never appears in the trace", st)
		}
	}
}

// TestPipeTraceBounded checks the capture window is enforced: a long run
// with a small window captures exactly the window, not the run.
func TestPipeTraceBounded(t *testing.T) {
	tr, doc := runTrace(t, "omnetpp", 64, 10_000)
	if tr.Insts() != 64 {
		t.Errorf("captured %d distinct insts, want 64", tr.Insts())
	}
	seqs := map[float64]bool{}
	for _, e := range traceEvents(t, doc) {
		if args, ok := e["args"].(map[string]any); ok {
			if seq, ok := args["seq"].(float64); ok {
				seqs[seq] = true
			}
		}
	}
	if len(seqs) > 64 {
		t.Errorf("trace mentions %d distinct seqs, window is 64", len(seqs))
	}
}

// TestPipeTraceVPEvents checks value-prediction instants appear when a
// predictor is attached (the test core always runs FVP). The window spans
// the whole run because FVP predicts nothing until its confidence warms up.
func TestPipeTraceVPEvents(t *testing.T) {
	c := newTestCore(t, "mcf")
	tr := telemetry.NewPipeTrace(25_000)
	c.SetTracer(tr)
	c.Run(20_000)
	c.SetTracer(nil)
	if c.Meter.PredictedLoads == 0 {
		t.Skip("predictor made no predictions in this run")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var predicts, validates int
	for _, e := range traceEvents(t, doc) {
		switch e["name"] {
		case "vp-predict":
			predicts++
		case "vp-correct", "vp-wrong":
			validates++
		}
	}
	if predicts == 0 {
		t.Error("no vp-predict instants in an FVP run")
	}
	if validates == 0 {
		t.Error("no validation instants in an FVP run")
	}
	if validates > predicts {
		t.Errorf("%d validations but only %d predictions", validates, predicts)
	}
}

// TestPipeTraceDefaultWindow checks the 0 → default substitution.
func TestPipeTraceDefaultWindow(t *testing.T) {
	tr := telemetry.NewPipeTrace(0)
	c := newTestCore(t, "gcc")
	c.SetTracer(tr)
	c.Run(telemetry.DefaultTraceInsts * 2)
	if tr.Insts() != telemetry.DefaultTraceInsts {
		t.Errorf("captured %d insts, want default window %d", tr.Insts(), telemetry.DefaultTraceInsts)
	}
}
