package telemetry

import (
	"fmt"
	"io"
	"math"
	randv2 "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// Hist is a fixed log-bucketed histogram for latency-class measurements
// on the request hot path. The bucket boundaries are a geometric series
// chosen at construction and never change, so Observe is a bounded scan
// plus one atomic increment — no locks, no allocation. Counters are
// sharded to keep concurrent observers off each other's cache lines;
// readers (exposition, quantiles) pay the aggregation cost instead.
type Hist struct {
	// bounds are the bucket upper limits, ascending; an observation lands
	// in the first bucket whose bound is >= the value, or in the overflow
	// bucket past the last bound.
	bounds []float64
	shards []histShard
}

// histShard is one observer lane. The pad keeps adjacent shards on
// different cache lines so two CPUs observing concurrently don't
// false-share; counts itself is a separate allocation per shard.
type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1, last is overflow (+Inf)
	sum    atomic.Uint64   // math.Float64bits accumulator
	_      [40]byte
}

// histShards is the observer-lane count. Sized for small hosts (the
// aggregation cost scales with it); contention on bigger machines is
// already diluted by the random lane pick.
const histShards = 8

// NewLog builds a histogram of n geometric buckets: bounds[i] =
// min·factor^i. Values above the last bound land in the +Inf bucket.
func NewLog(min, factor float64, n int) *Hist {
	if n <= 0 || min <= 0 || factor <= 1 {
		panic("telemetry: NewLog needs min > 0, factor > 1, n > 0")
	}
	h := &Hist{bounds: make([]float64, n), shards: make([]histShard, histShards)}
	b := min
	for i := range h.bounds {
		h.bounds[i] = b
		b *= factor
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, n+1)
	}
	return h
}

// NewLatency returns the standard request-latency histogram: 100µs to
// ~105s in ×2 buckets, which resolves p99 to within a factor of two
// anywhere a service SLO plausibly sits.
func NewLatency() *Hist { return NewLog(100e-6, 2, 21) }

// NewSizes returns the standard count-valued histogram (batch sizes,
// queue depths): 1 to 2048 in ×2 buckets.
func NewSizes() *Hist { return NewLog(1, 2, 12) }

// Observe records one value.
func (h *Hist) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	sh := &h.shards[randv2.Uint32N(histShards)]
	sh.counts[i].Add(1)
	for {
		old := sh.sum.Load()
		if sh.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is an aggregated point-in-time view of a Hist.
type HistSnapshot struct {
	// Bounds are the bucket upper limits; Counts has one extra trailing
	// entry for the +Inf overflow bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot aggregates the shards. It is consistent enough for
// monitoring (each counter is read once, atomically) but not a
// linearizable cut across buckets.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.bounds)+1)}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			s.Counts[j] += sh.counts[j].Load()
		}
		s.Sum += math.Float64frombits(sh.sum.Load())
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket where the rank falls. Overflow-bucket
// ranks report the last finite bound; an empty histogram reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile is Snapshot().Quantile for one-off reads.
func (h *Hist) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// WritePromHeader emits the HELP/TYPE preamble for a histogram family;
// callers follow with one WriteProm per label set.
func WritePromHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// WriteProm renders the series of one histogram in Prometheus text
// exposition: cumulative _bucket{le=...} lines, then _sum and _count.
// labels is the pre-rendered label list without braces (may be empty).
func (h *Hist) WriteProm(w io.Writer, name, labels string) {
	s := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest round-trippable decimal.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// Vec is a labeled histogram family: one Hist per label set, created on
// first use. The label string is the pre-rendered Prometheus label list
// (e.g. `path="/v1/runs",outcome="ok"`); keeping it pre-rendered makes
// With a single map lookup under a short mutex, off the Observe path.
type Vec struct {
	mk func() *Hist

	mu sync.Mutex
	by map[string]*Hist
}

// NewVec builds a family whose members are created by mk.
func NewVec(mk func() *Hist) *Vec {
	return &Vec{mk: mk, by: make(map[string]*Hist)}
}

// With returns (creating if needed) the member for a label list.
func (v *Vec) With(labels string) *Hist {
	v.mu.Lock()
	h := v.by[labels]
	if h == nil {
		h = v.mk()
		v.by[labels] = h
	}
	v.mu.Unlock()
	return h
}

// WriteProm renders the whole family, members sorted by label list so
// the exposition is deterministic.
func (v *Vec) WriteProm(w io.Writer, name, help string) {
	v.mu.Lock()
	labels := make([]string, 0, len(v.by))
	members := make(map[string]*Hist, len(v.by))
	for l, h := range v.by {
		labels = append(labels, l)
		members[l] = h
	}
	v.mu.Unlock()
	sort.Strings(labels)
	WritePromHeader(w, name, help)
	for _, l := range labels {
		members[l].WriteProm(w, name, l)
	}
}
