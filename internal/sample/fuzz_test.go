package sample

import "testing"

// FuzzSamplePlan drives the planner with arbitrary shapes and asserts the
// Plan invariants the executor depends on: every unit in-bounds, units
// sorted and pairwise non-overlapping, systematic spacing, and the lengths
// summing to exactly the requested detailed budget (Units × UnitInsts).
// Configs the planner rejects are skipped — the property under test is
// that whatever New accepts is safe to execute.
func FuzzSamplePlan(f *testing.F) {
	f.Add(uint64(300_000), 8, uint64(1_000), uint64(0))
	f.Add(uint64(100_000), 10, uint64(2_000), uint64(7))
	f.Add(uint64(1_000), 2, uint64(500), uint64(42))
	f.Add(uint64(17), 3, uint64(1), uint64(9))
	f.Add(uint64(1<<40), 128, uint64(0), uint64(1<<63))
	f.Fuzz(func(t *testing.T, measure uint64, units int, unitInsts, seed uint64) {
		// Bound the unit count so the fuzzer spends its budget on shape
		// diversity rather than allocating million-entry plans.
		if units > 1<<16 {
			t.Skip()
		}
		p, err := New(Config{MeasureInsts: measure, Units: units, UnitInsts: unitInsts, Seed: seed})
		if err != nil {
			t.Skip()
		}
		if len(p.Units) != units {
			t.Fatalf("planned %d units, want %d", len(p.Units), units)
		}
		wantLen := unitInsts
		if wantLen == 0 {
			wantLen = DefaultUnitInsts
		}
		var budget uint64
		prevEnd := uint64(0)
		frame := measure / uint64(units)
		for i, u := range p.Units {
			if u.Index != i {
				t.Fatalf("unit %d: Index = %d", i, u.Index)
			}
			if u.Len != wantLen {
				t.Fatalf("unit %d: Len = %d, want %d", i, u.Len, wantLen)
			}
			if u.Start+u.Len > measure || u.Start+u.Len < u.Start {
				t.Fatalf("unit %d: [%d, %d) out of the %d-inst population",
					i, u.Start, u.Start+u.Len, measure)
			}
			if i > 0 && u.Start < prevEnd {
				t.Fatalf("unit %d at %d overlaps previous end %d", i, u.Start, prevEnd)
			}
			if u.Start < uint64(i)*frame || u.Start+u.Len > uint64(i+1)*frame {
				t.Fatalf("unit %d: [%d, %d) escapes its frame [%d, %d)",
					i, u.Start, u.Start+u.Len, uint64(i)*frame, uint64(i+1)*frame)
			}
			prevEnd = u.Start + u.Len
			budget += u.Len
		}
		if want := uint64(units) * wantLen; budget != want {
			t.Fatalf("detailed budget = %d, want exactly %d", budget, want)
		}
		// Replanning the identical config must reproduce the plan bit-for-bit.
		q, err := New(Config{MeasureInsts: measure, Units: units, UnitInsts: unitInsts, Seed: seed})
		if err != nil {
			t.Fatalf("replan failed: %v", err)
		}
		for i := range p.Units {
			if p.Units[i] != q.Units[i] {
				t.Fatalf("replan diverged at unit %d: %+v vs %+v", i, p.Units[i], q.Units[i])
			}
		}
	})
}
