package sample

// RoundFunc simulates one planned round and returns the per-unit
// observations of the driving metric (IPC for the harness), in plan-unit
// order. It is called once per auto-tune iteration; implementations
// typically stash their own richer per-unit results on the side and let
// the loop see only the tuning metric.
type RoundFunc func(Plan) ([]float64, error)

// Outcome is the final state of an AutoTune run.
type Outcome struct {
	// Plan is the last planned round and Values its observations.
	Plan   Plan
	Values []float64
	// Metric is the estimate over Values.
	Metric Metric
	// Rounds counts the simulated rounds (1 when no growth was needed).
	Rounds int
	// Converged reports whether the target was met (always true when no
	// target was set). A false value means K hit its cap — either the
	// configured MaxUnits or the population's capacity — with the interval
	// still wider than asked.
	Converged bool
}

// AutoTune runs the grow-K loop: plan, simulate, estimate, and — while the
// relative 95% CI half-width of the observations exceeds targetRelCI —
// double the unit count and repeat. targetRelCI <= 0 disables growth (one
// round at cfg.Units). maxUnits caps growth (0 = DefaultMaxUnits); the cap
// is additionally clamped to what the population can hold, so the loop
// always terminates. Growth replans from scratch each round — with a
// doubled K the frames halve, so prior units are not reusable — and total
// work is dominated by the final round.
func AutoTune(cfg Config, targetRelCI float64, maxUnits int, round RoundFunc) (Outcome, error) {
	if cfg.Units < MinUnits {
		cfg.Units = DefaultUnits
	}
	if cfg.UnitInsts == 0 {
		cfg.UnitInsts = DefaultUnitInsts
	}
	if maxUnits <= 0 {
		maxUnits = DefaultMaxUnits
	}
	if cap := int(cfg.MeasureInsts / cfg.UnitInsts); maxUnits > cap {
		maxUnits = cap
	}
	if cfg.Units > maxUnits {
		cfg.Units = maxUnits
	}

	var out Outcome
	for {
		plan, err := New(cfg)
		if err != nil {
			return Outcome{}, err
		}
		values, err := round(plan)
		if err != nil {
			return Outcome{}, err
		}
		out.Plan = plan
		out.Values = values
		out.Metric = Estimate(values)
		out.Rounds++
		if targetRelCI <= 0 || out.Metric.RelCI <= targetRelCI {
			out.Converged = true
			return out, nil
		}
		if cfg.Units >= maxUnits {
			return out, nil // cap reached, interval still wide
		}
		cfg.Units *= 2
		if cfg.Units > maxUnits {
			cfg.Units = maxUnits
		}
	}
}
