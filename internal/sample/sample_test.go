package sample

import (
	"math"
	"reflect"
	"testing"
)

func TestPlanSystematic(t *testing.T) {
	p, err := New(Config{MeasureInsts: 100_000, Units: 10, UnitInsts: 2_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Units) != 10 {
		t.Fatalf("planned %d units, want 10", len(p.Units))
	}
	if got := p.SampledInsts(); got != 20_000 {
		t.Errorf("SampledInsts = %d, want 20000", got)
	}
	frame := uint64(10_000)
	phase := p.Units[0].Start
	if phase > frame-2_000 {
		t.Errorf("phase %d leaves unit 0 out of its frame", phase)
	}
	for i, u := range p.Units {
		if u.Index != i {
			t.Errorf("unit %d: Index = %d", i, u.Index)
		}
		if want := uint64(i)*frame + phase; u.Start != want {
			t.Errorf("unit %d: Start = %d, want %d (systematic)", i, u.Start, want)
		}
		if u.Len != 2_000 {
			t.Errorf("unit %d: Len = %d", i, u.Len)
		}
	}
}

func TestPlanDeterministicAndSeedSensitive(t *testing.T) {
	cfg := Config{MeasureInsts: 50_000, Units: 5, UnitInsts: 500, Seed: 42}
	a, _ := New(cfg)
	b, _ := New(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same config planned differently twice")
	}
	cfg.Seed = 43
	c, _ := New(cfg)
	if a.Units[0].Start == c.Units[0].Start {
		t.Error("adjacent seeds chose the same phase (splitmix should decorrelate)")
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []Config{
		{MeasureInsts: 1_000, Units: 1, UnitInsts: 100},   // below MinUnits
		{MeasureInsts: 0, Units: 4, UnitInsts: 100},       // empty population
		{MeasureInsts: 1_000, Units: 4, UnitInsts: 300},   // 4*300 > 1000
		{MeasureInsts: 1_000, Units: 2_000, UnitInsts: 0}, // default U=1000, frame 0
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestEstimateHandComputed(t *testing.T) {
	// Values 1,2,3,4: mean 2.5, s = sqrt(5/3), SE = s/2, t(3) = 3.182.
	m := Estimate([]float64{1, 2, 3, 4})
	if m.Mean != 2.5 {
		t.Errorf("Mean = %v", m.Mean)
	}
	se := math.Sqrt(5.0/3.0) / 2
	if math.Abs(m.StdErr-se) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", m.StdErr, se)
	}
	if want := 3.182 * se; math.Abs(m.CIHalf-want) > 1e-9 {
		t.Errorf("CIHalf = %v, want %v", m.CIHalf, want)
	}
	if want := 3.182 * se / 2.5; math.Abs(m.RelCI-want) > 1e-9 {
		t.Errorf("RelCI = %v, want %v", m.RelCI, want)
	}
}

func TestEstimateDegenerate(t *testing.T) {
	if m := Estimate(nil); m != (Metric{}) {
		t.Errorf("Estimate(nil) = %+v", m)
	}
	m := Estimate([]float64{3.5})
	if m.Mean != 3.5 || m.StdErr != 0 || m.CIHalf != 0 || m.RelCI != 0 {
		t.Errorf("single observation: %+v, want zero-width fields", m)
	}
	// Identical observations: zero variance, zero-width interval.
	m = Estimate([]float64{2, 2, 2, 2})
	if m.StdErr != 0 || m.RelCI != 0 {
		t.Errorf("zero-variance sample: %+v", m)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t quantile not non-increasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if got := tQuantile975(1_000_000); got != 1.960 {
		t.Errorf("asymptote = %v, want 1.96", got)
	}
}

// syntheticRound yields observations with fixed per-unit noise so the
// standard error shrinks as 1/sqrt(K) and the auto-tune loop must grow K
// to meet a tight target.
func syntheticRound(noise float64) RoundFunc {
	return func(p Plan) ([]float64, error) {
		out := make([]float64, len(p.Units))
		for i, u := range p.Units {
			// Deterministic pseudo-noise in [-noise, +noise) keyed by the
			// unit's position, so every round is reproducible.
			h := splitmix64(u.Start)
			out[i] = 1.0 + noise*(float64(h%2048)/1024-1)
		}
		return out, nil
	}
}

func TestAutoTuneConvergesByGrowing(t *testing.T) {
	cfg := Config{MeasureInsts: 1 << 20, Units: 4, UnitInsts: 64, Seed: 1}
	// Loose target: the first round suffices.
	out, err := AutoTune(cfg, 0.5, 0, syntheticRound(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 || !out.Converged || len(out.Values) != 4 {
		t.Errorf("loose target: rounds=%d converged=%v K=%d", out.Rounds, out.Converged, len(out.Values))
	}
	// Tight target: K must grow, and the final interval must meet it.
	out, err = AutoTune(cfg, 0.02, 1024, syntheticRound(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("tight target never met: relCI %.4f at K=%d", out.Metric.RelCI, len(out.Values))
	}
	if out.Rounds < 2 || len(out.Values) <= 4 {
		t.Errorf("tight target met without growth: rounds=%d K=%d", out.Rounds, len(out.Values))
	}
	if out.Metric.RelCI > 0.02 {
		t.Errorf("converged with relCI %.4f > target", out.Metric.RelCI)
	}
}

func TestAutoTuneCapStopsUnconverged(t *testing.T) {
	cfg := Config{MeasureInsts: 1 << 20, Units: 4, UnitInsts: 64, Seed: 1}
	out, err := AutoTune(cfg, 1e-9, 16, syntheticRound(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Error("impossible target reported converged")
	}
	if len(out.Values) != 16 {
		t.Errorf("stopped at K=%d, want the 16-unit cap", len(out.Values))
	}
}

func TestAutoTuneNoTargetSingleRound(t *testing.T) {
	cfg := Config{MeasureInsts: 100_000, Units: 6, UnitInsts: 1_000, Seed: 3}
	out, err := AutoTune(cfg, 0, 0, syntheticRound(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 || !out.Converged || len(out.Values) != 6 {
		t.Errorf("no-target run: rounds=%d converged=%v K=%d", out.Rounds, out.Converged, len(out.Values))
	}
}

// The population cap must clamp growth: 10k insts at 1k units can hold at
// most 10 units, so even an impossible target stops there.
func TestAutoTunePopulationClampsCap(t *testing.T) {
	cfg := Config{MeasureInsts: 10_000, Units: 2, UnitInsts: 1_000, Seed: 0}
	out, err := AutoTune(cfg, 1e-9, 0, syntheticRound(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Values); got > 10 {
		t.Errorf("grew to K=%d, beyond the population's 10-unit capacity", got)
	}
}
