package sample

import "math"

// Metric is the population estimate of one measured quantity derived from
// per-unit observations: the mean, its standard error, and the 95%
// confidence-interval half-width in absolute and relative terms. The
// variance estimator is the simple-random-sampling one, which for
// systematic samples of a non-adversarial population is conservative
// (overstates the interval) — the safe direction for a fidelity gate.
type Metric struct {
	// Mean is the arithmetic mean of the per-unit observations.
	Mean float64 `json:"mean"`
	// StdErr is the standard error of Mean (s/sqrt(K)).
	StdErr float64 `json:"stderr"`
	// CIHalf is the 95% confidence-interval half-width: Student-t at K-1
	// degrees of freedom times StdErr.
	CIHalf float64 `json:"ci_half"`
	// RelCI is CIHalf / |Mean| — the figure the auto-tune loop drives
	// under its target (0 when Mean is 0).
	RelCI float64 `json:"rel_ci"`
}

// Estimate aggregates per-unit observations into a Metric. Fewer than
// MinUnits observations carry no variance information; the returned
// Metric then has the mean and zero-width error fields, and callers that
// need a trustworthy interval must enforce MinUnits themselves (the
// planner already does).
func Estimate(values []float64) Metric {
	n := len(values)
	if n == 0 {
		return Metric{}
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	m := Metric{Mean: sum / float64(n)}
	if n < MinUnits {
		return m
	}
	ss := 0.0
	for _, v := range values {
		d := v - m.Mean
		ss += d * d
	}
	m.StdErr = math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	m.CIHalf = tQuantile975(n-1) * m.StdErr
	if m.Mean != 0 {
		m.RelCI = m.CIHalf / math.Abs(m.Mean)
	}
	return m
}

// t975 holds the two-sided 95% Student-t quantiles for 1..30 degrees of
// freedom (index df-1).
var t975 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tQuantile975 returns the two-sided 95% Student-t critical value for df
// degrees of freedom, converging on the normal 1.96 for large samples.
func tQuantile975(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= 30:
		return t975[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
