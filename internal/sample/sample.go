// Package sample is the statistical-sampling engine behind the harness's
// SMARTS-style sampled simulation: instead of detail-simulating an entire
// measured region, K short sample units at systematic positions are
// simulated in detail, the gaps are fast-forwarded functionally, and the
// per-unit observations are aggregated into a population estimate with a
// confidence interval.
//
// The package is deliberately simulator-free: it plans unit positions over
// an abstract instruction population (Plan), turns per-unit observations
// into mean / standard error / CI-half-width estimates (Estimate), and
// drives the auto-tune loop that grows K until the IPC interval is tighter
// than a target (AutoTune). The harness supplies the one callback that
// actually simulates a planned round. Keeping the math free of machine
// state makes every invariant directly unit- and fuzz-testable
// (FuzzSamplePlan).
package sample

import "fmt"

// Defaults used when a Config field is zero. They are shared by the
// harness and the façade so a wire spec and a local Options that spell
// the defaults differently still describe the same simulation.
const (
	// DefaultUnits is the starting sample-unit count of an auto-tuned run
	// and the default for a fixed-K run that sets only a target CI.
	DefaultUnits = 8
	// DefaultUnitInsts is the detailed length of one sample unit.
	DefaultUnitInsts = 1_000
	// DefaultMaxUnits caps the auto-tune loop's growth.
	DefaultMaxUnits = 128
	// MinUnits is the smallest unit count that yields a variance estimate;
	// a single unit has no standard error.
	MinUnits = 2
)

// Config describes one sampling plan request over a population of
// MeasureInsts instructions.
type Config struct {
	// MeasureInsts is the population: the measured region's length.
	MeasureInsts uint64
	// Units is the sample-unit count K (>= MinUnits).
	Units int
	// UnitInsts is the detailed length of each unit (0 = DefaultUnitInsts).
	UnitInsts uint64
	// Seed selects the systematic phase: units sit at the same offset
	// within each of the K equal frames, and the offset is drawn
	// deterministically from Seed. Two runs with equal Config are
	// identical; changing Seed shifts every unit by the same amount.
	Seed uint64
}

// Unit is one planned detailed-sample slice, in population coordinates
// (offsets from the start of the measured region).
type Unit struct {
	// Index is the unit's position in plan order.
	Index int
	// Start is the offset of the unit's first measured instruction.
	Start uint64
	// Len is the unit's detailed length.
	Len uint64
}

// Plan is a validated set of systematic sample units. Invariants (held by
// construction, asserted by FuzzSamplePlan): units are sorted by Start,
// in-bounds ([0, MeasureInsts)), pairwise non-overlapping, and their
// lengths sum to exactly Units×UnitInsts — the requested detailed budget.
type Plan struct {
	MeasureInsts uint64
	UnitInsts    uint64
	Seed         uint64
	Units        []Unit
}

// SampledInsts is the plan's total detailed budget.
func (p Plan) SampledInsts() uint64 {
	return uint64(len(p.Units)) * p.UnitInsts
}

// New plans k systematic units over cfg's population. It returns an error
// when the population cannot hold the requested detailed budget (the
// caller should fall back to full-detail simulation or shrink K).
func New(cfg Config) (Plan, error) {
	u := cfg.UnitInsts
	if u == 0 {
		u = DefaultUnitInsts
	}
	k := cfg.Units
	if k < MinUnits {
		return Plan{}, fmt.Errorf("sample: %d units (minimum %d)", k, MinUnits)
	}
	if cfg.MeasureInsts == 0 {
		return Plan{}, fmt.Errorf("sample: empty population")
	}
	frame := cfg.MeasureInsts / uint64(k)
	if u > frame {
		return Plan{}, fmt.Errorf(
			"sample: %d units of %d insts exceed the %d-inst region (need units*unit_insts <= measure)",
			k, u, cfg.MeasureInsts)
	}
	// Systematic sampling with a seeded phase: every frame contributes one
	// unit at the same offset, so the sample is periodic (the SMARTS
	// design) and the phase decorrelates it from any program periodicity a
	// fixed offset would alias with.
	phase := splitmix64(cfg.Seed) % (frame - u + 1)
	units := make([]Unit, k)
	for i := range units {
		units[i] = Unit{Index: i, Start: uint64(i)*frame + phase, Len: u}
	}
	return Plan{MeasureInsts: cfg.MeasureInsts, UnitInsts: u, Seed: cfg.Seed, Units: units}, nil
}

// splitmix64 is the 64-bit finalizer used to turn a seed into a phase;
// chosen for its avalanche behavior so adjacent seeds land on unrelated
// phases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
