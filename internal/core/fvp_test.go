package core

import (
	"testing"

	"fvp/internal/isa"
	"fvp/internal/vp"
)

// Synthetic micro-program PCs used throughout: a "root" load whose address
// is produced by an ALU op, which in turn consumes another load.
const (
	pcRoot  = 0x1000 // delinquent load (critical root)
	pcALU   = 0x0F00 // address-generating ALU op (parent of root)
	pcFeed  = 0x0E00 // load feeding the ALU (grand-parent, stable value)
	pcStore = 0x0D00 // store that forwards to pcFwd
	pcFwd   = 0x0C00 // store-forwarded load
)

func rootInst(val uint64) *isa.DynInst {
	return &isa.DynInst{PC: pcRoot, Op: isa.OpLoad, Dst: 4, Src1: 3, Addr: 0x9000, Value: val, MemSize: 8}
}

func aluInst(val uint64) *isa.DynInst {
	return &isa.DynInst{PC: pcALU, Op: isa.OpALU, Dst: 3, Src1: 2, Value: val}
}

func feedInst(val uint64) *isa.DynInst {
	return &isa.DynInst{PC: pcFeed, Op: isa.OpLoad, Dst: 2, Src1: 1, Addr: 0x8000, Value: val, MemSize: 8}
}

// ctxWith builds a Ctx whose RAT-PC reports the given parents.
func ctxWith(parents ...uint64) *vp.Ctx {
	c := &vp.Ctx{}
	for i, p := range parents {
		if i >= 2 {
			break
		}
		c.Parents[i] = p
		c.NumParents++
	}
	return c
}

// trainCritical drives one "iteration" of the synthetic chain: feed and ALU
// execute normally, the root executes while stalling retirement.
func trainCritical(f *FVP, i int, rootVal, feedVal uint64) {
	f.Train(feedInst(feedVal), ctxWith(), vp.TrainInfo{})
	f.Train(aluInst(uint64(i)), ctxWith(pcFeed), vp.TrainInfo{})
	f.Train(rootInst(rootVal), ctxWith(pcALU), vp.TrainInfo{NearHead: true})
	f.OnRetire(&isa.DynInst{})
	f.OnRetire(&isa.DynInst{})
	f.OnRetire(&isa.DynInst{})
}

func TestFVPLearnsStableFeedLoad(t *testing.T) {
	f := New(DefaultConfig())
	// Root values fluctuate (unpredictable); the feed load is constant.
	for i := 0; i < 4000; i++ {
		trainCritical(f, i, uint64(i*77), 0xBEEF)
	}
	p := f.Lookup(feedInst(0xBEEF), ctxWith())
	if !p.Valid || p.Value != 0xBEEF {
		t.Fatalf("feed load not predicted after focused training: %+v (lt hits %d, walks %d)",
			p, f.LTHits, f.ChainWalks)
	}
	// The fluctuating root itself must not be predicted.
	if p := f.Lookup(rootInst(0), ctxWith(pcALU)); p.Valid {
		t.Error("fluctuating root predicted")
	}
	// The ALU op must never be predicted (loads only).
	if p := f.Lookup(aluInst(1), ctxWith(pcFeed)); p.Valid {
		t.Error("non-load predicted in loads-only mode")
	}
}

func TestFVPIgnoresNonCriticalLoads(t *testing.T) {
	f := New(DefaultConfig())
	// Same chain but never stalling retirement: nothing should train.
	for i := 0; i < 3000; i++ {
		f.Train(feedInst(0xBEEF), ctxWith(), vp.TrainInfo{})
		f.Train(aluInst(uint64(i)), ctxWith(pcFeed), vp.TrainInfo{})
		f.Train(rootInst(uint64(i)), ctxWith(pcALU), vp.TrainInfo{})
	}
	if f.RootsSeen != 0 {
		t.Errorf("roots seen = %d for never-stalling code", f.RootsSeen)
	}
	if p := f.Lookup(feedInst(0xBEEF), ctxWith()); p.Valid {
		t.Error("uncritical load predicted — coverage should stay focused")
	}
}

func TestFVPRootItselfPredictedWhenStable(t *testing.T) {
	f := New(DefaultConfig())
	// Root value is constant: predicting the root helps its dependents
	// (§IV-B "predicting M can also provide some speedup").
	for i := 0; i < 4000; i++ {
		trainCritical(f, i, 0x42, uint64(i))
	}
	if p := f.Lookup(rootInst(0x42), ctxWith(pcALU)); !p.Valid || p.Value != 0x42 {
		t.Errorf("stable root not predicted: %+v", p)
	}
}

func TestFVPBranchMispredictChainsIgnored(t *testing.T) {
	f := New(DefaultConfig())
	for i := 0; i < 3000; i++ {
		f.Train(rootInst(0x42), ctxWith(pcALU),
			vp.TrainInfo{NearHead: true, MispredictedBranchChain: true})
	}
	if f.RootsSeen != 0 {
		t.Error("mispredicting-branch chains must be ignored by default (§IV-A2)")
	}

	cfg := DefaultConfig()
	cfg.BranchChains = true
	f2 := New(cfg)
	for i := 0; i < 100; i++ {
		f2.Train(rootInst(0x42), ctxWith(pcALU),
			vp.TrainInfo{NearHead: true, MispredictedBranchChain: true})
	}
	if f2.RootsSeen == 0 {
		t.Error("BranchChains mode must accept such roots (§VI-A3)")
	}
}

func TestFVPCriticalityPolicies(t *testing.T) {
	mk := func(pol CritPolicy) *FVP {
		cfg := DefaultConfig()
		cfg.Policy = pol
		return New(cfg)
	}
	// L1-miss policy triggers on L1Miss, not NearHead.
	f := mk(CritL1Miss)
	for i := 0; i < 100; i++ {
		f.Train(rootInst(0x42), ctxWith(pcALU), vp.TrainInfo{L1Miss: true})
	}
	if f.RootsSeen == 0 {
		t.Error("L1-miss policy must observe L1-missing loads")
	}
	if f.ChainWalks == 0 {
		t.Error("L1-miss policy walks the chain")
	}
	// L1-miss-only predicts the root but never walks.
	f = mk(CritL1MissOnly)
	for i := 0; i < 100; i++ {
		f.Train(rootInst(0x42), ctxWith(pcALU), vp.TrainInfo{L1Miss: true})
	}
	if f.ChainWalks != 0 {
		t.Errorf("L1-miss-only must not walk the chain (walks=%d)", f.ChainWalks)
	}
	// Oracle policy keys on the OracleCritical flag.
	f = mk(CritOracle)
	for i := 0; i < 100; i++ {
		f.Train(rootInst(0x42), ctxWith(pcALU), vp.TrainInfo{NearHead: true})
	}
	if f.RootsSeen != 0 {
		t.Error("oracle policy must ignore the retire-stall signal")
	}
	for i := 0; i < 100; i++ {
		f.Train(rootInst(0x42), ctxWith(pcALU), vp.TrainInfo{OracleCritical: true})
	}
	if f.RootsSeen == 0 {
		t.Error("oracle policy must accept oracle-critical loads")
	}
}

func TestFVPEpochResetsCIT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epoch = 1000
	f := New(cfg)
	for i := 0; i < 10; i++ {
		f.Train(rootInst(1), ctxWith(pcALU), vp.TrainInfo{NearHead: true})
	}
	if !f.cit.Confident(pcRoot) {
		t.Fatal("CIT should be confident")
	}
	for i := 0; i < 1001; i++ {
		f.OnRetire(&isa.DynInst{})
	}
	if f.EpochResets == 0 {
		t.Fatal("epoch must have fired")
	}
	if f.cit.Confident(pcRoot) {
		t.Error("epoch reset must clear the CIT")
	}
}

func TestFVPMemoryDependencePath(t *testing.T) {
	f := New(DefaultConfig())
	st := &isa.DynInst{PC: pcStore, Op: isa.OpStore, Src1: 1, Src2: 2, Addr: 0x7000, MemSize: 8}
	fwd := &isa.DynInst{PC: pcFwd, Op: isa.OpLoad, Dst: 5, Src1: 1, Addr: 0x7000, MemSize: 8}

	// The forwarded load is the critical root; its values fluctuate, and
	// every instance is store-forwarded → it must become an MR target.
	for i := uint64(0); i < 600; i++ {
		st.Seq, st.Value = i*10, i^0x5A5A
		fwd.Seq, fwd.Value = i*10+5, i^0x5A5A
		f.Lookup(st, ctxWith())
		f.Train(st, ctxWith(), vp.TrainInfo{})
		f.OnForward(pcFwd, pcStore)
		f.Train(fwd, ctxWith(pcStore), vp.TrainInfo{NearHead: true, Forwarded: true})
	}
	st.Seq, st.Value = 100000, 0x77
	f.Lookup(st, ctxWith())
	f.Train(st, ctxWith(), vp.TrainInfo{})
	fwd.Seq = 100005
	p := f.Lookup(fwd, ctxWith(pcStore))
	if !p.Valid || !p.StoreLinked || p.StoreSeq != 100000 {
		t.Fatalf("forwarded critical load not renamed: %+v (marks=%d)", p, f.mrMarks)
	}
	if !p.DataReady || p.Value != 0x77 {
		t.Errorf("executed store's data must be ready: %+v", p)
	}
}

func TestFVPRegOnlyAndMemOnly(t *testing.T) {
	reg := New(func() Config { c := DefaultConfig(); c.DisableMR = true; return c }())
	if reg.mr != nil {
		t.Error("DisableMR must drop the MR component")
	}
	if reg.Name() != "FVP-reg-only" {
		t.Errorf("name = %q", reg.Name())
	}
	mem := New(func() Config { c := DefaultConfig(); c.MROnly = true; return c }())
	if mem.Name() != "FVP-mem-only" {
		t.Errorf("name = %q", mem.Name())
	}
	// Mem-only never uses the Value Table.
	for i := 0; i < 3000; i++ {
		trainCritical(mem, i, 0x42, 0x42)
	}
	if p := mem.Lookup(feedInst(0x42), ctxWith()); p.Valid {
		t.Error("mem-only FVP must not produce table predictions")
	}
}

func TestFVPStorageBudget(t *testing.T) {
	f := New(DefaultConfig())
	bytes := float64(f.StorageBits()) / 8
	// Paper Table I: ≈1.2 KB total.
	if bytes < 900 || bytes > 1400 {
		t.Errorf("FVP budget = %.0f bytes, expected ≈1200", bytes)
	}
	items := f.StorageBreakdown()
	if len(items) != 5 {
		t.Errorf("breakdown rows = %d, want 5 (Table I)", len(items))
	}
	sum := 0
	for _, it := range items {
		sum += it.Bits
	}
	if sum != f.StorageBits() {
		t.Errorf("breakdown sum %d != total %d", sum, f.StorageBits())
	}
}

func TestFVPZeroConfigDefaults(t *testing.T) {
	f := New(Config{})
	if f.Config().CITEntries != 32 {
		t.Error("zero config must fall back to the paper defaults")
	}
}
