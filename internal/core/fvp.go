package core

import (
	"fvp/internal/isa"
	"fvp/internal/vp"
)

// CritPolicy selects how FVP decides which instructions are critical roots
// (§VI-C evaluates these alternatives).
type CritPolicy int

const (
	// CritRetireStall is the paper's default: instructions that execute
	// within the commit width of the ROB head are potential roots.
	CritRetireStall CritPolicy = iota
	// CritL1Miss treats every L1 data miss as a root (FVP-L1-Miss).
	CritL1Miss
	// CritL1MissOnly predicts only the L1-missing load itself, without
	// walking its dependence chain (FVP-L1-Miss-Only).
	CritL1MissOnly
	// CritOracle uses the graph-buffering DDG critical path (Oracle
	// Criticality) as the root oracle.
	CritOracle
)

// String names the policy.
func (p CritPolicy) String() string {
	switch p {
	case CritRetireStall:
		return "retire-stall"
	case CritL1Miss:
		return "l1-miss"
	case CritL1MissOnly:
		return "l1-miss-only"
	case CritOracle:
		return "oracle"
	}
	return "?"
}

// Config parameterizes FVP. DefaultConfig reproduces the paper's sizing.
type Config struct {
	// CITEntries sizes the Critical Instruction Table (paper: 32).
	CITEntries int
	// VTEntries/VTWays size the Value Table (paper: 48, 2-way).
	VTEntries int
	VTWays    int
	// LTEntries sizes the Learning Table (paper: 2).
	LTEntries int
	// MR sizes the embedded Memory Renaming structures (paper: 136/40).
	MR vp.MRConfig
	// Epoch is the criticality epoch in retired instructions after which
	// the CIT resets (paper: 400 000).
	Epoch uint64
	// HistBits is the branch-history length for context prediction
	// (paper: 32).
	HistBits uint
	// Policy selects the criticality heuristic.
	Policy CritPolicy
	// AllTypes allows predicting non-load instructions (§VI-A2 ablation;
	// the paper's default is loads only).
	AllTypes bool
	// BranchChains also targets dependence chains of mispredicting
	// branches (§VI-A3 ablation; default off).
	BranchChains bool
	// DisableMR turns off the memory-dependence component (Fig 13
	// register-only configuration).
	DisableMR bool
	// MROnly turns off the register component (Fig 13 memory-only):
	// only Memory-Renaming predictions are made.
	MROnly bool
	// Seed drives the probabilistic confidence counters.
	Seed uint64
}

// DefaultConfig returns the paper's FVP configuration (Table I).
func DefaultConfig() Config {
	return Config{
		CITEntries: 32,
		VTEntries:  48,
		VTWays:     2,
		LTEntries:  2,
		MR:         vp.PaperMRConfig(),
		Epoch:      400_000,
		HistBits:   32,
		Policy:     CritRetireStall,
		Seed:       1,
	}
}

// ratPCEntries is the RAT-PC extension size the paper budgets (16 entries
// of 11-bit last-writer PCs, Table I). The timing model keeps last-writer
// PCs for every architectural register; the budget below is what the
// hardware proposal pays.
const ratPCEntries = 16

// FVP is the Focused Value Predictor. It implements vp.Predictor.
type FVP struct {
	cfg Config
	cit *CIT
	vt  *VT
	mr  *vp.MR
	lt  []ltEntry
	// DebugRootHook, when non-nil, observes every confirmed critical-root
	// PC (test instrumentation).
	DebugRootHook func(pc uint64)
	// DebugLTHitHook, when non-nil, observes Learning-Table hit PCs.
	DebugLTHitHook func(pc uint64)
	// mrCand is a small tagged PC set of loads handed to Memory Renaming
	// (focused loads whose Last-Value prediction failed, §IV-D). It
	// outlives Value-Table evictions so MR training isn't starved by VT
	// churn; conflicting PCs simply overwrite each other.
	mrCand [64]uint16

	retired     uint64
	lastEpochAt uint64
	mrMarks     uint64

	// Stats.
	RootsSeen     uint64 // critical-root executions observed
	ChainWalks    uint64 // parent sets pushed into the LT
	LTHits        uint64
	LVPredictions uint64
	CVPredictions uint64
	MRPredictions uint64
	EpochResets   uint64
}

type ltEntry struct {
	pc    uint64
	valid bool
	age   uint64
}

var _ vp.Predictor = (*FVP)(nil)

// New builds an FVP instance from cfg.
func New(cfg Config) *FVP {
	if cfg.CITEntries == 0 {
		cfg = DefaultConfig()
	}
	f := &FVP{
		cfg: cfg,
		cit: NewCIT(cfg.CITEntries),
		vt:  NewVT(cfg.VTEntries, cfg.VTWays, cfg.HistBits, cfg.Seed),
		lt:  make([]ltEntry, cfg.LTEntries),
	}
	if !cfg.DisableMR {
		f.mr = vp.NewMR(cfg.MR)
		if !cfg.MROnly {
			// Full FVP renames only focused loads; the memory-only
			// ablation (Fig 13) renames like standalone MR.
			f.mr.Critical = f.mrEligible
		}
	}
	return f
}

// Name implements vp.Predictor.
func (f *FVP) Name() string {
	switch {
	case f.cfg.MROnly:
		return "FVP-mem-only"
	case f.cfg.DisableMR:
		return "FVP-reg-only"
	case f.cfg.Policy != CritRetireStall:
		return "FVP-" + f.cfg.Policy.String()
	}
	return "FVP"
}

// Config returns the predictor's configuration.
func (f *FVP) Config() Config { return f.cfg }

// MRStats returns (associations, renames) of the embedded Memory Renaming
// component (zeros when disabled) plus how many PCs were marked candidates.
func (f *FVP) MRStats() (assoc, renames, marks uint64) {
	if f.mr != nil {
		assoc, renames = f.mr.Associations, f.mr.Renames
	}
	return assoc, renames, f.mrMarks
}

func pcTag(pc uint64) uint16 {
	t := uint16(pc>>2) ^ uint16(pc>>15)
	if t == 0 {
		t = 1
	}
	return t
}

func (f *FVP) markMRCandidate(pc uint64) {
	f.mrMarks++
	f.mrCand[(pc>>2)%uint64(len(f.mrCand))] = pcTag(pc)
}

func (f *FVP) isMRCandidate(pc uint64) bool {
	return f.mrCand[(pc>>2)%uint64(len(f.mrCand))] == pcTag(pc)
}

// mrEligible gates Memory Renaming to focused loads: a load is handed to MR
// when Last-Value prediction failed on it (§IV-D). A load whose LV entry is
// currently confidently predictable does not need MR.
func (f *FVP) mrEligible(loadPC uint64) bool {
	if e := f.vt.FindLV(loadPC); e.Predictable() {
		return false
	}
	return f.isMRCandidate(loadPC)
}

// Lookup implements vp.Predictor: MR first for loads (and the store-side
// Value-File deposit), then Last-Value, then Context-Value (§IV-E).
func (f *FVP) Lookup(d *isa.DynInst, ctx *vp.Ctx) vp.Prediction {
	if f.mr != nil {
		if p := f.mr.Lookup(d, ctx); p.Valid {
			f.MRPredictions++
			return p
		}
	}
	if f.cfg.MROnly {
		return vp.Prediction{}
	}
	if !d.Op.IsLoad() && !f.cfg.AllTypes || !d.HasDest() {
		return vp.Prediction{}
	}
	if e := f.vt.FindLV(d.PC); e.Predictable() {
		f.LVPredictions++
		return vp.Prediction{Valid: true, Value: e.data}
	}
	if e := f.vt.FindCV(d.PC, ctx.Hist); e.Predictable() {
		f.CVPredictions++
		return vp.Prediction{Valid: true, Value: e.data}
	}
	return vp.Prediction{}
}

// pushParents queues the instruction's parent-producer PCs into the
// Learning Table (the backward chain walk, §IV-B). The LT is tiny (2
// entries); older entries are overwritten, which matches the paper's
// one-at-a-time learning.
func (f *FVP) pushParents(ctx *vp.Ctx) {
	if ctx.NumParents == 0 {
		return
	}
	f.ChainWalks++
	for i := 0; i < ctx.NumParents; i++ {
		pc := ctx.Parents[i]
		if pc == 0 {
			continue
		}
		f.insertLT(pc)
	}
}

func (f *FVP) insertLT(pc uint64) {
	oldest := 0
	for i := range f.lt {
		if f.lt[i].valid && f.lt[i].pc == pc {
			return
		}
		if !f.lt[i].valid {
			oldest = i
			break
		}
		if f.lt[i].age < f.lt[oldest].age {
			oldest = i
		}
	}
	f.lt[oldest] = ltEntry{pc: pc, valid: true, age: f.vtTick()}
}

func (f *FVP) vtTick() uint64 {
	f.vt.tick++
	return f.vt.tick
}

func (f *FVP) takeLT(pc uint64) bool {
	for i := range f.lt {
		if f.lt[i].valid && f.lt[i].pc == pc {
			f.lt[i] = ltEntry{}
			f.LTHits++
			if f.DebugLTHitHook != nil {
				f.DebugLTHitHook(pc)
			}
			return true
		}
	}
	return false
}

// isCriticalRoot applies the configured criticality policy to an executed
// instruction.
func (f *FVP) isCriticalRoot(d *isa.DynInst, info vp.TrainInfo) bool {
	if !d.Op.IsLoad() && !f.cfg.AllTypes {
		// CIT learns only loads that stall retirement (§IV-B).
		return false
	}
	switch f.cfg.Policy {
	case CritRetireStall:
		if !info.NearHead {
			return false
		}
	case CritL1Miss, CritL1MissOnly:
		if !info.L1Miss {
			return false
		}
	case CritOracle:
		if !info.OracleCritical {
			return false
		}
	}
	if !f.cfg.BranchChains && info.MispredictedBranchChain {
		// §IV-A2: chains feeding mispredicting branches are ignored —
		// value prediction shares the branch predictor's history and
		// cannot do better on them.
		return false
	}
	return f.cit.Observe(d.PC)
}

// Train implements vp.Predictor; it runs at execution writeback and drives
// the whole focused-training state machine.
func (f *FVP) Train(d *isa.DynInst, ctx *vp.Ctx, info vp.TrainInfo) {
	if f.mr != nil {
		f.mr.Train(d, ctx, info)
	}
	if f.cfg.MROnly {
		return
	}

	// Every step below probes the same Last-Value row for d.PC, so look
	// it up once. Safe to hoist: find is a pure probe, entries live in a
	// flat slab that never reallocates (pointers stay valid), and the
	// only writes to the row between the old probe sites are the
	// allocations below, which update lv in place. The Context-Value row
	// cannot be pre-probed the same way — an LV allocation may evict it —
	// so it is looked up once at its first use instead.
	lv := f.vt.FindLV(d.PC)

	// 1. Criticality detection → root handling.
	if f.isCriticalRoot(d, info) {
		f.RootsSeen++
		if f.DebugRootHook != nil {
			f.DebugRootHook(d.PC)
		}
		// Predicting the root itself can help its forward dependents
		// (§IV-B), so the root allocates too...
		if lv == nil {
			lv = f.vt.AllocateLV(d.PC, d.Value, d.Op.IsLoad() || f.cfg.AllTypes && d.HasDest())
		}
		// ...and its parents enter the Learning Table — unless the
		// policy is L1-Miss-Only, which stops at the root.
		if f.cfg.Policy != CritL1MissOnly {
			f.pushParents(ctx)
		}
	}

	// 2. Learning Table hit → Value Table allocation. Non-loads are
	// never predictable, so every hit keeps the walk moving toward their
	// producers (§IV-B: "this process repeats until a load is found");
	// an already-branded-unpredictable load does the same unless its
	// memory dependence makes it an MR target.
	if f.takeLT(d.PC) {
		isPredictableType := d.Op.IsLoad() || f.cfg.AllTypes && d.HasDest()
		if lv == nil {
			lv = f.vt.AllocateLV(d.PC, d.Value, isPredictableType)
		}
		if f.cfg.Policy != CritL1MissOnly {
			switch {
			case !isPredictableType:
				f.pushParents(ctx)
			case lv.NotPredictable() && !info.Forwarded:
				f.pushParents(ctx)
			}
		}
	}

	// 3. Value Table training.
	var cv *vtEntry
	cvProbed := false
	if e := lv; e != nil {
		if becameNP := f.vt.train(e, d.Value); becameNP && e.isLoad {
			// LV failed: hand the load to context prediction, and
			// check the memory dependence (§IV-C, §IV-D). A load the
			// LSQ forwards to goes to Memory Renaming; one with no
			// memory dependence continues the backward walk to its
			// parent sources right away.
			e.cvMarked = true
			if info.Forwarded {
				e.mrMarked = true
				f.markMRCandidate(d.PC)
			} else if f.cfg.Policy != CritL1MissOnly {
				f.pushParents(ctx)
			}
		}
		if e.cvMarked && info.NearHead {
			// Re-record near-stall instances under (PC, history)
			// (§IV-C reduces tracked histories this way).
			if cv = f.vt.FindCV(d.PC, ctx.Hist); cv == nil {
				cv = f.vt.AllocateCV(d.PC, ctx.Hist, d.Value, e.isLoad)
			}
			cvProbed = true
		}
	}
	if !cvProbed {
		cv = f.vt.FindCV(d.PC, ctx.Hist)
	}
	if e := cv; e != nil && e.isContext {
		if becameNP := f.vt.train(e, d.Value); becameNP && e.isLoad {
			// Context failed too; if MR has no association either,
			// continue the backward walk to the parents (§IV-D).
			if f.cfg.Policy != CritL1MissOnly {
				f.pushParents(ctx)
			}
		}
	}
}

// OnForward implements vp.Predictor: store→load forwarding trains the
// embedded MR, but only for loads FVP is focusing on.
func (f *FVP) OnForward(loadPC, storePC uint64) {
	if f.mr == nil {
		return
	}
	if !f.cfg.MROnly && !f.isMRCandidate(loadPC) {
		// Not a focused load (or still LV-predictable): the tiny SL
		// cache is reserved for loads that need it.
		return
	}
	f.mr.OnForward(loadPC, storePC)
}

// OnRetire implements vp.Predictor: counts retirements and resets the CIT
// at criticality-epoch boundaries (§IV-A1).
func (f *FVP) OnRetire(*isa.DynInst) {
	f.retired++
	if f.cfg.Epoch > 0 && f.retired-f.lastEpochAt >= f.cfg.Epoch {
		f.lastEpochAt = f.retired
		f.cit.Reset()
		f.EpochResets++
	}
}

// OnFlush implements vp.Predictor (FVP's tables hold no speculative
// cursors; Value-File entries are validated by sequence number).
func (f *FVP) OnFlush() {}

// StorageBits implements vp.Predictor: CIT + VT + MR + RAT-PC (Table I).
func (f *FVP) StorageBits() int {
	bits := f.cit.StorageBits() + f.vt.StorageBits() + ratPCEntries*11
	if f.mr != nil {
		bits += f.mr.StorageBits()
	}
	return bits
}

// StorageBreakdown reports the per-structure budget in bits, reproducing
// Table I.
func (f *FVP) StorageBreakdown() []StorageItem {
	items := []StorageItem{
		{"Critical Instruction Table", f.cit.StorageBits(), len(f.cit.entries)},
		{"Value Table", f.vt.StorageBits(), f.vt.Entries()},
	}
	if f.mr != nil {
		sl := f.cfg.MR.SLEntries
		for sl&(sl-1) != 0 {
			sl &= sl - 1
		}
		items = append(items,
			StorageItem{"MR Store/Load Table", sl * (11 + 3 + 2), sl},
			StorageItem{"MR Value File", f.cfg.MR.VFEntries * (64 + 6), f.cfg.MR.VFEntries},
		)
	}
	items = append(items, StorageItem{"RAT-PC", ratPCEntries * 11, ratPCEntries})
	return items
}

// StorageItem is one row of the Table-I breakdown.
type StorageItem struct {
	Name    string
	Bits    int
	Entries int
}
