package core

import "testing"

func newTestVT() *VT { return NewVT(48, 2, 32, 1) }

func TestVTAllocateAndFind(t *testing.T) {
	v := newTestVT()
	if v.FindLV(0x400) != nil {
		t.Fatal("empty table must not find entries")
	}
	e := v.AllocateLV(0x400, 42, true)
	if e == nil {
		t.Fatal("allocation into an empty table must succeed")
	}
	if got := v.FindLV(0x400); got != e {
		t.Error("FindLV must return the allocated entry")
	}
	if e.data != 42 {
		t.Error("allocation must seed the observed value")
	}
}

func TestVTLVAndCVAreDistinct(t *testing.T) {
	v := newTestVT()
	v.AllocateLV(0x400, 1, true)
	if v.FindCV(0x400, 0xABCD) != nil {
		t.Error("a context key must not alias the last-value key")
	}
	v.AllocateCV(0x400, 0xABCD, 2, true)
	lv, cv := v.FindLV(0x400), v.FindCV(0x400, 0xABCD)
	if lv == cv {
		t.Error("LV and CV entries of one PC must be separate")
	}
}

func TestVTConfidenceBuildsToPrediction(t *testing.T) {
	v := newTestVT()
	e := v.AllocateLV(0x400, 42, true)
	for i := 0; i < 800 && !e.Predictable(); i++ {
		v.train(e, 42)
	}
	if !e.Predictable() {
		t.Fatal("constant value must eventually become predictable")
	}
	if e.data != 42 {
		t.Errorf("data = %d", e.data)
	}
}

func TestVTDataChangeResetsConfidence(t *testing.T) {
	v := newTestVT()
	e := v.AllocateLV(0x400, 42, true)
	for i := 0; i < 800; i++ {
		v.train(e, 42)
	}
	v.train(e, 43)
	if e.Predictable() {
		t.Error("a single value change must clear predictability")
	}
	if e.conf != 0 {
		t.Errorf("confidence = %d after change", e.conf)
	}
}

func TestVTNoPredictSaturation(t *testing.T) {
	v := newTestVT()
	e := v.AllocateLV(0x400, 0, true)
	saturated := false
	for i := 1; i <= 10; i++ {
		if v.train(e, uint64(i)) {
			saturated = true
			break
		}
	}
	if !saturated {
		t.Fatal("fluctuating data must saturate the no-predict counter")
	}
	if !e.NotPredictable() {
		t.Error("entry must report not-predictable")
	}
	// becameNP fires only on the transition.
	if v.train(e, 999) {
		t.Error("already-saturated entry must not re-fire the transition")
	}
}

func TestVTNonLoadNeverPredictable(t *testing.T) {
	v := newTestVT()
	e := v.AllocateLV(0x500, 7, false)
	if !e.NotPredictable() {
		t.Error("non-loads allocate with no-predict saturated")
	}
	for i := 0; i < 500; i++ {
		v.train(e, 7)
	}
	if e.Predictable() {
		t.Error("non-loads must never become predictable")
	}
}

func TestVTConfidenceClearsNoPredict(t *testing.T) {
	v := newTestVT()
	e := v.AllocateLV(0x400, 1, true)
	v.train(e, 2)
	v.train(e, 3) // np = 2
	for i := 0; i < 2000 && e.conf < vtConfMax; i++ {
		v.train(e, 3)
	}
	if e.np != 0 {
		t.Errorf("saturated confidence must reset no-predict (np=%d)", e.np)
	}
}

func TestVTUtilityProtectsResidents(t *testing.T) {
	v := NewVT(4, 2, 32, 1) // 2 sets × 2 ways; set = (pc>>2) & 1
	// Two PCs in set 0 fill both ways; train them to build utility.
	a := v.AllocateLV(0x10, 5, true) // key 4 → set 0
	b := v.AllocateLV(0x20, 6, true) // key 8 → set 0
	if a == nil || b == nil {
		t.Fatal("set 0 should have room for two entries")
	}
	for i := 0; i < 8; i++ {
		v.train(a, 5)
		v.train(b, 6)
	}
	// A third same-set PC is declined while the residents are useful
	// (the residents are aged instead).
	if e := v.AllocateLV(0x30, 7, true); e != nil {
		t.Error("allocation into a fully-useful set must be declined")
	}
	// Enough declined attempts age the residents down to zero utility,
	// after which the allocation succeeds.
	ok := false
	for i := 0; i < 8; i++ {
		if e := v.AllocateLV(0x30, 7, true); e != nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Error("aging must eventually admit the new entry")
	}
}

func TestVTStorageBudget(t *testing.T) {
	v := newTestVT()
	// Table I: 48 × 82 bits = 3936 bits = 492 bytes.
	if got := v.StorageBits(); got != 48*82 {
		t.Errorf("storage = %d bits, want %d", got, 48*82)
	}
}

func TestVTNilEntryHelpers(t *testing.T) {
	var e *vtEntry
	if e.Predictable() || e.NotPredictable() {
		t.Error("nil entry helpers must be false")
	}
}
