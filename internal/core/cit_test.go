package core

import "testing"

func TestCITConfidenceBuild(t *testing.T) {
	c := NewCIT(32)
	pc := uint64(0x400)
	// The first observation allocates; the 2-bit counter then needs
	// citConfMax increments.
	for i := 0; i < citConfMax+1; i++ {
		if c.Confident(pc) {
			t.Fatalf("confident after only %d observations", i)
		}
		c.Observe(pc)
	}
	if !c.Confident(pc) {
		t.Error("must be confident after saturation")
	}
}

func TestCITObserveReturnValue(t *testing.T) {
	c := NewCIT(32)
	pc := uint64(0x404)
	got := false
	for i := 0; i < citConfMax+1; i++ {
		got = c.Observe(pc)
	}
	if !got {
		t.Error("Observe must report confidence once saturated")
	}
}

func TestCITUtilityEviction(t *testing.T) {
	c := NewCIT(32)
	// Two PCs aliasing to the same entry: 32 entries, index (pc>>2)&31.
	a := uint64(0x400)        // idx (0x100)&31 = 0
	b := uint64(0x400 + 32*4) // idx 0x120&31 = 0
	for i := 0; i < 4; i++ {
		c.Observe(a) // conf & utility saturate
	}
	// b needs utility-many conflicts to evict a.
	for i := 0; i < int(citUtilMax); i++ {
		c.Observe(b)
		if !c.Confident(a) {
			t.Fatalf("resident evicted too early (conflict %d)", i)
		}
	}
	c.Observe(b) // utility hit zero: replace
	if c.Confident(a) {
		t.Error("resident must be gone after utility exhaustion")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestCITReset(t *testing.T) {
	c := NewCIT(32)
	pc := uint64(0x800)
	for i := 0; i < 4; i++ {
		c.Observe(pc)
	}
	c.Reset()
	if c.Confident(pc) {
		t.Error("reset must clear confidence")
	}
}

func TestCITTagDisambiguation(t *testing.T) {
	c := NewCIT(32)
	a := uint64(0x400)
	for i := 0; i < 4; i++ {
		c.Observe(a)
	}
	// Same index, different tag must not read as confident.
	b := a + 32*4
	if c.Confident(b) {
		t.Error("tag mismatch must not be confident")
	}
}

func TestCITStorage(t *testing.T) {
	c := NewCIT(32)
	// Table I: 32 × (11 + 2 + 2) bits = 480 bits = 60 bytes.
	if got := c.StorageBits(); got != 480 {
		t.Errorf("storage = %d bits, want 480", got)
	}
}

func TestCITNonPowerOfTwoRoundsDown(t *testing.T) {
	c := NewCIT(48)
	if len(c.entries) != 32 {
		t.Errorf("entries = %d, want 32", len(c.entries))
	}
}
