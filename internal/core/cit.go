// Package core implements Focused Value Prediction (FVP), the paper's
// contribution: a ~1.2 KB value predictor that (1) finds the roots of the
// critical path with a retirement-stall heuristic (Critical Instruction
// Table), (2) walks backwards up register and memory dependence chains
// (Learning Table + RAT-PC parents) to the nearest *predictable* loads, and
// (3) predicts only those with a tiny hybrid Last-Value/Context-Value table
// plus Memory Renaming for store→load dependences.
package core

// CIT is the Critical Instruction Table (§IV-A1): a small direct-mapped
// table of PCs whose execution was observed to stall retirement. Each entry
// carries a 2-bit confidence (criticality must repeat before FVP reacts) and
// a 2-bit utility steering replacement. The whole table is cleared every
// criticality epoch to follow phase changes.
type CIT struct {
	entries []citEntry
	mask    uint64

	Observations uint64
	Evictions    uint64
}

type citEntry struct {
	tag   uint16
	valid bool
	conf  uint8 // 2-bit
	util  uint8 // 2-bit
}

const (
	citConfMax = 3
	citUtilMax = 3
	citTagBits = 11
	// citEntryBits: tag 11 + confidence 2 + utility 2 (Table I).
	citEntryBits = citTagBits + 2 + 2
)

// NewCIT builds a table with the given entry count (rounded down to a power
// of two for direct-mapped indexing; the paper uses 32).
func NewCIT(entries int) *CIT {
	n := entries
	for n&(n-1) != 0 {
		n &= n - 1
	}
	if n == 0 {
		n = 1
	}
	return &CIT{entries: make([]citEntry, n), mask: uint64(n - 1)}
}

func (c *CIT) at(pc uint64) *citEntry { return &c.entries[(pc>>2)&c.mask] }
func (c *CIT) tagOf(pc uint64) uint16 { return uint16(pc>>2) & (1<<citTagBits - 1) }

// Observe records that the instruction at pc executed close enough to the
// ROB head to stall retirement. It returns true when the entry is (now)
// confident, i.e. pc is a critical root.
func (c *CIT) Observe(pc uint64) bool {
	c.Observations++
	e := c.at(pc)
	tag := c.tagOf(pc)
	if e.valid && e.tag == tag {
		if e.conf < citConfMax {
			e.conf++
		}
		if e.util < citUtilMax {
			e.util++
		}
		return e.conf >= citConfMax
	}
	if !e.valid {
		*e = citEntry{tag: tag, valid: true}
		return false
	}
	// Conflict: age the resident; replace at zero utility.
	if e.util > 0 {
		e.util--
		return false
	}
	c.Evictions++
	*e = citEntry{tag: tag, valid: true}
	return false
}

// Confident reports whether pc is currently a confident critical root.
func (c *CIT) Confident(pc uint64) bool {
	e := c.at(pc)
	return e.valid && e.tag == c.tagOf(pc) && e.conf >= citConfMax
}

// Reset clears the whole table (criticality-epoch boundary).
func (c *CIT) Reset() {
	for i := range c.entries {
		c.entries[i] = citEntry{}
	}
}

// StorageBits returns the CIT state budget.
func (c *CIT) StorageBits() int { return len(c.entries) * citEntryBits }
