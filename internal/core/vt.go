package core

import "fvp/internal/prog"

// VT is FVP's Value Table (§IV-C): one 48-entry, 2-way set-associative
// table that serves both Last-Value and Context-Value prediction — the
// difference is only the lookup key (PC alone vs PC hashed with the last 32
// branch outcomes). Entries hold an 11-bit tag, the 64-bit data, a 3-bit
// confidence that increments probabilistically (1/16) on value repeats, a
// 2-bit no-predict counter that identifies fluctuating (unpredictable)
// data, and a 2-bit replacement utility.
type VT struct {
	// ent holds all ways of all sets in one flat slab (set s occupies
	// ent[s*ways : (s+1)*ways]). The table sits on the lookup path of
	// every renamed load, so the extra pointer hop of a [][]vtEntry
	// layout is measurable; the flat layout keeps a whole set in one or
	// two cache lines. The set index is key % nsets — nsets (entries /
	// ways, 24 for the paper's 48x2 table) is not a power of two, and
	// the mapping is pinned by the golden-stat matrix, so the modulo
	// stays.
	ent      []vtEntry
	nsets    uint64
	ways     int
	histBits uint
	rng      *prog.RNG
	tick     uint64

	Allocations uint64
	Evictions   uint64
}

// vtEntry is one Value Table way. Fields are ordered word-first so the
// struct packs to 32 bytes and a 2-way set spans a single cache line.
type vtEntry struct {
	data  uint64
	lru   uint64
	tag   uint16
	valid bool
	conf  uint8 // 3-bit; predict when saturated
	np    uint8 // 2-bit no-predict; saturated = not predictable
	util  uint8 // 2-bit
	// isLoad records the instruction class so non-loads are never
	// predicted (they allocate with np saturated, §IV-B).
	isLoad bool
	// cvMarked: this LV entry's load has been handed to context
	// prediction and MR (set when np saturates on the LV entry).
	cvMarked bool
	// mrMarked mirrors cvMarked for the Memory-Renaming side.
	mrMarked bool
	// isContext distinguishes CV-keyed entries (for stats/inspection).
	isContext bool
}

const (
	vtConfMax = 7
	vtNPMax   = 3
	vtTagBits = 11
	// vtEntryBits: tag 11 + data 64 + confidence 3 + no-predict 2 +
	// utility 2 (Table I).
	vtEntryBits = vtTagBits + 64 + 3 + 2 + 2
)

// NewVT builds a table with the given total entries and associativity
// (paper: 48 entries, 2 ways), keying context lookups on histBits of
// branch history.
func NewVT(entries, ways int, histBits uint, seed uint64) *VT {
	if ways <= 0 {
		ways = 2
	}
	nSets := entries / ways
	if nSets == 0 {
		nSets = 1
	}
	v := &VT{
		ent:      make([]vtEntry, nSets*ways),
		nsets:    uint64(nSets),
		ways:     ways,
		histBits: histBits,
		rng:      prog.NewRNG(seed),
	}
	return v
}

// Entries returns the table's total capacity.
func (v *VT) Entries() int { return len(v.ent) }

// keys: Last-Value uses the PC; Context-Value mixes folded history and a
// distinguishing constant so LV and CV instances of one PC occupy different
// slots of the same physical table.
func (v *VT) lvKey(pc uint64) uint64 { return pc >> 2 }

func (v *VT) cvKey(pc, hist uint64) uint64 {
	h := hist
	if v.histBits < 64 {
		h &= 1<<v.histBits - 1
	}
	var f uint64
	for x := h; x != 0; x >>= 16 {
		f ^= x & 0xFFFF
	}
	return (pc >> 2) ^ f<<3 ^ 0x5B5
}

// setBase maps a key to its set's offset in the flat slab. The paper's
// geometry (48 entries, 2-way → 24 sets) gets a constant-divisor branch:
// a variable 64-bit modulo is a hardware DIV on the per-rename lookup
// path, while `% 24` strength-reduces to multiply/shift. Both arms
// compute the identical mapping, so golden stats don't move.
func (v *VT) setBase(key uint64) int {
	if v.nsets == 24 {
		return int(key%24) * v.ways
	}
	return int(key%v.nsets) * v.ways
}

func (v *VT) find(key uint64) *vtEntry {
	base := v.setBase(key)
	set := v.ent[base : base+v.ways]
	tag := uint16(key) & (1<<vtTagBits - 1)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// FindLV returns the Last-Value entry for pc, or nil.
func (v *VT) FindLV(pc uint64) *vtEntry { return v.find(v.lvKey(pc)) }

// FindCV returns the Context-Value entry for (pc, hist), or nil.
func (v *VT) FindCV(pc, hist uint64) *vtEntry { return v.find(v.cvKey(pc, hist)) }

// allocate installs a fresh entry for key, seeded with the value observed
// at the allocating execution (so the first repeat confirms rather than
// penalizes). Non-loads allocate with the no-predict counter saturated so
// they are never predicted. It returns the entry, or nil when every way in
// the set still has utility (the paper's tables decline allocation rather
// than thrash; residents are aged).
func (v *VT) allocate(key uint64, value uint64, isLoad, isContext bool) *vtEntry {
	base := v.setBase(key)
	set := v.ent[base : base+v.ways]
	tag := uint16(key) & (1<<vtTagBits - 1)
	v.tick++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].util == 0 && (victim < 0 || set[i].lru < set[victim].lru) {
				victim = i
			}
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].util > 0 {
				set[i].util--
			}
		}
		return nil
	}
	if set[victim].valid {
		v.Evictions++
	}
	v.Allocations++
	e := &set[victim]
	*e = vtEntry{tag: tag, valid: true, data: value, lru: v.tick, isLoad: isLoad, isContext: isContext}
	if !isLoad {
		e.np = vtNPMax
	}
	return e
}

// AllocateLV installs a Last-Value entry for pc.
func (v *VT) AllocateLV(pc, value uint64, isLoad bool) *vtEntry {
	return v.allocate(v.lvKey(pc), value, isLoad, false)
}

// AllocateCV installs a Context-Value entry for (pc, hist).
func (v *VT) AllocateCV(pc, hist, value uint64, isLoad bool) *vtEntry {
	return v.allocate(v.cvKey(pc, hist), value, isLoad, true)
}

// train updates an entry with an executed value. It returns true when the
// update saturated the no-predict counter (the entry just became "not
// predictable"), which is FVP's trigger to escalate — to context
// prediction/MR for an LV entry, or to the parents for a CV entry.
func (v *VT) train(e *vtEntry, value uint64) (becameNP bool) {
	v.tick++
	e.lru = v.tick
	if !e.isLoad {
		return false
	}
	if e.data == value {
		// Value repeated: probabilistic confidence build-up. Saturated
		// confidence clears no-predict (§IV-C).
		if e.conf < vtConfMax && v.rng.Intn(16) == 0 {
			e.conf++
		}
		if e.util < 3 {
			e.util++
		}
		if e.conf >= vtConfMax {
			e.np = 0
		}
		return false
	}
	// Data changed: confidence and utility reset, no-predict advances.
	e.data = value
	e.conf = 0
	e.util = 0
	if e.np < vtNPMax {
		e.np++
		return e.np >= vtNPMax
	}
	return false
}

// Predictable reports whether e is confident enough to predict.
func (e *vtEntry) Predictable() bool {
	return e != nil && e.isLoad && e.conf >= vtConfMax && e.np < vtNPMax
}

// NotPredictable reports whether e has been branded unpredictable.
func (e *vtEntry) NotPredictable() bool { return e != nil && e.np >= vtNPMax }

// StorageBits returns the Value Table state budget.
func (v *VT) StorageBits() int { return v.Entries() * vtEntryBits }
