package store

import (
	"bytes"
	"container/list"
	"io"
	"sync"
)

// MemoryJobStore is the default JobStore: a monotonic counter plus a map
// of live (non-terminal) records. Nothing survives the process — exactly
// the pre-durability fvpd semantics — so terminal records are dropped
// immediately rather than held for compaction, and Recover is only
// meaningful for a store handed from one Service to another in tests.
type MemoryJobStore struct {
	mu    sync.Mutex
	next  uint64
	jobs  map[uint64]*JobRecord
	order []uint64
	bytes int64
	muts  uint64
}

// NewMemoryJobStore returns an empty in-memory job store.
func NewMemoryJobStore() *MemoryJobStore {
	return &MemoryJobStore{jobs: make(map[uint64]*JobRecord)}
}

func (s *MemoryJobStore) NextID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return s.next
}

func (s *MemoryJobStore) Enqueue(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.State = JobQueued
	s.jobs[rec.ID] = &rec
	s.order = append(s.order, rec.ID)
	s.bytes += jobRecordBytes(rec)
	s.muts++
	return nil
}

func (s *MemoryJobStore) AppendBatch(recs []JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		rec.State = JobQueued
		r := rec
		s.jobs[rec.ID] = &r
		s.order = append(s.order, rec.ID)
		s.bytes += jobRecordBytes(rec)
		s.muts++
	}
	return nil
}

func (s *MemoryJobStore) SetState(id uint64, state, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil
	}
	s.muts++
	if TerminalJobState(state) {
		// No process restart can recover a memory store, so a terminal
		// record is dead weight: drop it now instead of at compaction.
		s.bytes -= jobRecordBytes(*rec)
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		return nil
	}
	rec.State, rec.Error = state, errMsg
	return nil
}

func (s *MemoryJobStore) Recover() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		if rec, ok := s.jobs[id]; ok && !TerminalJobState(rec.State) {
			out = append(out, *rec)
		}
	}
	return out
}

func (s *MemoryJobStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Records: len(s.jobs), Bytes: s.bytes, Appends: s.muts}
}

func (s *MemoryJobStore) Close() error { return nil }

func jobRecordBytes(rec JobRecord) int64 {
	return int64(len(rec.Key) + len(rec.Tenant) + len(rec.Spec) + len(rec.Error))
}

// MemoryResultStore is the default ResultStore: the LRU that used to
// live inside internal/simd, now with byte accounting (spec key plus
// encoded result) and an optional total-byte cap alongside the entry cap.
// It is also the index engine of the disk backend, which layers a record
// log underneath via Insert's eviction report.
type MemoryResultStore struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	order      *list.List               // front = most recent
	byKey      map[string]*list.Element // value: *resultEntry
	bytes      int64
	muts       uint64
}

type resultEntry struct {
	key   string
	value []byte
}

// NewMemoryResultStore returns an LRU result store holding at most
// maxEntries records (<=0 means unlimited) and, when maxBytes > 0, at
// most maxBytes of key+value payload.
func NewMemoryResultStore(maxEntries int, maxBytes int64) *MemoryResultStore {
	return &MemoryResultStore{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

func (c *MemoryResultStore) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*resultEntry).value, true
}

func (c *MemoryResultStore) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[key]
	return ok
}

func (c *MemoryResultStore) Put(key string, value []byte) error {
	c.Insert(key, value)
	return nil
}

// Insert is Put plus an eviction report: the keys displaced by the entry
// caps, oldest first. The disk backend uses the report to append delete
// records so its log replays to the same live set.
func (c *MemoryResultStore) Insert(key string, value []byte) (evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.muts++
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*resultEntry)
		c.bytes += int64(len(value)) - int64(len(ent.value))
		ent.value = value
		c.order.MoveToFront(el)
		return c.evictOverCapLocked()
	}
	c.byKey[key] = c.order.PushFront(&resultEntry{key: key, value: value})
	c.bytes += int64(len(key) + len(value))
	return c.evictOverCapLocked()
}

// Delete removes one entry (disk-backend replay of delete records).
func (c *MemoryResultStore) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.removeLocked(el)
	}
}

func (c *MemoryResultStore) evictOverCapLocked() (evicted []string) {
	for (c.maxEntries > 0 && c.order.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes && c.order.Len() > 1) {
		oldest := c.order.Back()
		evicted = append(evicted, oldest.Value.(*resultEntry).key)
		c.removeLocked(oldest)
	}
	return evicted
}

func (c *MemoryResultStore) removeLocked(el *list.Element) {
	ent := el.Value.(*resultEntry)
	c.order.Remove(el)
	delete(c.byKey, ent.key)
	c.bytes -= int64(len(ent.key) + len(ent.value))
}

// Snapshot returns the live records oldest-first, so replaying them as
// puts reconstructs both the set and its LRU order. The disk backend's
// compaction writes exactly this sequence.
func (c *MemoryResultStore) Snapshot() []ResultRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ResultRecord, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*resultEntry)
		out = append(out, ResultRecord{Key: ent.key, Value: ent.value})
	}
	return out
}

func (c *MemoryResultStore) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *MemoryResultStore) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Records: c.order.Len(), Bytes: c.bytes, Appends: c.muts}
}

func (c *MemoryResultStore) Close() error { return nil }

// ResultRecord is one content-addressed result record: a key and its
// encoded value, with no job lifecycle attached.
type ResultRecord struct {
	Key   string
	Value []byte
}

// MemoryBlobStore is the default BlobStore: a bounded FIFO of byte
// slices. It exists so trace artifacts work without a data directory;
// the cap keeps an artifact-happy client from growing the daemon's heap
// without bound (the disk backend is the real archive).
type MemoryBlobStore struct {
	mu    sync.Mutex
	max   int
	blobs map[string][]byte
	order []string
	bytes int64
	muts  uint64
}

// DefaultMemoryBlobCap bounds the in-memory blob archive.
const DefaultMemoryBlobCap = 256

// NewMemoryBlobStore returns an in-memory blob store holding at most
// maxBlobs entries (<=0 selects DefaultMemoryBlobCap), oldest evicted
// first.
func NewMemoryBlobStore(maxBlobs int) *MemoryBlobStore {
	if maxBlobs <= 0 {
		maxBlobs = DefaultMemoryBlobCap
	}
	return &MemoryBlobStore{max: maxBlobs, blobs: make(map[string][]byte)}
}

func (b *MemoryBlobStore) Put(key string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.muts++
	if old, ok := b.blobs[key]; ok {
		b.bytes += int64(len(data)) - int64(len(old))
		b.blobs[key] = append([]byte(nil), data...)
		return nil
	}
	b.blobs[key] = append([]byte(nil), data...)
	b.order = append(b.order, key)
	b.bytes += int64(len(key) + len(data))
	for len(b.order) > b.max {
		evict := b.order[0]
		b.order = b.order[1:]
		b.bytes -= int64(len(evict) + len(b.blobs[evict]))
		delete(b.blobs, evict)
	}
	return nil
}

func (b *MemoryBlobStore) Open(key string) (io.ReadCloser, error) {
	b.mu.Lock()
	data, ok := b.blobs[key]
	b.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (b *MemoryBlobStore) Has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.blobs[key]
	return ok
}

func (b *MemoryBlobStore) List() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.order...)
}

func (b *MemoryBlobStore) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Records: len(b.blobs), Bytes: b.bytes, Appends: b.muts}
}

func (b *MemoryBlobStore) Close() error { return nil }
