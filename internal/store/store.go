// Package store defines the durable-storage seams under the fvpd
// batch-simulation service (internal/simd): a JobStore for the run
// queue's lifecycle records, a ResultStore for the content-addressed
// result cache, and a BlobStore for large artifacts such as Perfetto
// pipeline traces. Each interface has two implementations — the
// in-memory backends in this package (the default, preserving fvpd's
// original single-process semantics exactly) and the crash-safe file
// backends in store/disk (an fsync'd append-only record log with
// CRC-framed entries, periodic snapshot+compaction, and an atomic-rename
// blob archive) — so a daemon restart no longer loses queued jobs or
// evicts the whole cache.
//
// The service is the only writer and serializes calls per store, so
// backends only need to be safe for the light internal concurrency they
// create themselves; all exported implementations are nonetheless
// self-locking so tools and tests can use them directly.
package store

import (
	"errors"
	"io"
)

// Job lifecycle states as persisted by a JobStore. They mirror the
// service's externally visible states; only JobQueued and JobRunning are
// recoverable (a crash re-dispatches them), the rest are terminal.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// TerminalJobState reports whether a persisted job state will never
// change again (and so is dropped by compaction rather than recovered).
func TerminalJobState(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// ErrNotFound is returned by BlobStore.Open for a key that was never
// published (or was deleted).
var ErrNotFound = errors.New("store: not found")

// JobRecord is the durable form of one admitted run: enough to re-admit
// the job after a crash under its original identity. Spec is the encoded
// submission request and is opaque to the store.
type JobRecord struct {
	// ID is the monotonic job number assigned by JobStore.NextID. IDs
	// never repeat across process lifetimes of the same store directory.
	ID uint64
	// Key is the content-addressed spec key the service deduplicates on.
	Key string
	// Tenant attributes the job to its submitter for admission control;
	// recovery re-admits the job under the same tenant.
	Tenant string
	// Spec is the encoded run request (JSON on the wire today).
	Spec []byte
	// State is one of the Job* constants.
	State string
	// Error carries the failure reason for terminal failed/canceled jobs.
	Error string
}

// JobStore persists the run queue's lifecycle: which runs were admitted,
// which finished, and — the part that matters after a crash — which were
// still queued or running when the process died.
type JobStore interface {
	// NextID returns the next monotonic job ID. Durable backends
	// guarantee monotonicity across restarts (the high-water mark rides
	// along with enqueue records and compaction marks), so a recovered
	// job never collides with a fresh one.
	NextID() uint64
	// Enqueue durably records an admitted job in state JobQueued. The
	// record must be recoverable once Enqueue returns.
	Enqueue(rec JobRecord) error
	// AppendBatch durably records a batch of admitted jobs in state
	// JobQueued, all-or-nothing: when it returns nil every record is
	// recoverable; on error none are (the service refuses the whole
	// batch). Disk backends amortize the batch into a single fsync,
	// which is what makes micro-batched admission cheap.
	AppendBatch(recs []JobRecord) error
	// SetState durably moves a job to state, with an optional error text
	// for terminal failures. Unknown IDs are ignored (the job may have
	// been compacted away).
	SetState(id uint64, state, errMsg string) error
	// Recover returns the jobs whose last durable state was queued or
	// running, in enqueue order — the work a crash interrupted. It
	// reflects the state found when the store was opened plus any
	// lifecycle calls since, and never returns terminal jobs.
	Recover() []JobRecord
	// Stats reports the backend's record/byte/compaction counters.
	Stats() Stats
	Close() error
}

// ResultStore is the content-addressed result cache: spec key → encoded
// result record, with LRU eviction bounded by entry count and (optionally)
// by total bytes. Byte accounting covers both the spec key and the
// encoded result, so fvpd_cache_bytes reflects what the cache actually
// holds rather than a bare entry count.
type ResultStore interface {
	// Get returns the record for key and bumps its recency.
	Get(key string) ([]byte, bool)
	// Has reports presence without a recency bump (capacity pre-checks).
	Has(key string) bool
	// Put inserts or refreshes a record, evicting least-recently-used
	// entries beyond the configured caps.
	Put(key string, value []byte) error
	// Len is the number of records currently held.
	Len() int
	// Stats reports record/byte/compaction counters; Stats().Bytes is
	// the sum of len(key)+len(value) over live records.
	Stats() Stats
	Close() error
}

// BlobStore archives large artifacts (pipeline traces, telemetry sample
// streams) under flat keys. Writes are all-or-nothing: a crash mid-Put
// never publishes a partial blob.
type BlobStore interface {
	// Put atomically publishes data under key, replacing any previous
	// blob with that key.
	Put(key string, data []byte) error
	// Open streams a published blob; ErrNotFound if key was never
	// published.
	Open(key string) (io.ReadCloser, error)
	// Has reports whether key is published.
	Has(key string) bool
	// List returns the published keys in unspecified order.
	List() []string
	// Stats reports blob count and total bytes.
	Stats() Stats
	Close() error
}

// Stats is a point-in-time snapshot of one backend's counters, exposed
// through fvpd's /v1/metrics as the fvpd_store_* family.
type Stats struct {
	// Records is the number of live records (jobs retained, cache
	// entries, or blobs).
	Records int `json:"records"`
	// Bytes is the live payload footprint: log-record payloads for jobs,
	// key+value bytes for results, file bytes for blobs.
	Bytes int64 `json:"bytes"`
	// Appends counts durable mutations since the store opened (log
	// appends on disk, state mutations in memory).
	Appends uint64 `json:"appends"`
	// Compactions counts snapshot+compaction rewrites since open (always
	// 0 for the memory backends).
	Compactions uint64 `json:"compactions"`
	// Recovered counts records found live when the store was opened
	// (always 0 for the memory backends).
	Recovered uint64 `json:"recovered"`
}

// Stores bundles one backend of each kind; internal/simd.Config embeds
// it, with nil fields defaulting to the in-memory implementations.
type Stores struct {
	Jobs    JobStore
	Results ResultStore
	Blobs   BlobStore
}

// Close closes all three backends, returning the first error.
func (s Stores) Close() error {
	var first error
	for _, c := range []io.Closer{s.Jobs, s.Results, s.Blobs} {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
