package disk

import (
	"encoding/json"
	"fmt"
	"sync"

	"fvp/internal/store"
)

// jobLogRec is the JSON payload of one job-log record. Three shapes share
// the frame, discriminated by T:
//
//	enq  — a job was admitted (ID, Key, Spec; state starts queued)
//	st   — a job changed state (ID, State, Err)
//	mark — an ID high-water mark, written by compaction so monotonic IDs
//	       survive the terminal records being dropped
type jobLogRec struct {
	T      string `json:"t"`
	ID     uint64 `json:"id,omitempty"`
	Key    string `json:"key,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Spec is the opaque encoded run request; encoding/json base64s it.
	Spec  []byte `json:"spec,omitempty"`
	State string `json:"state,omitempty"`
	Err   string `json:"err,omitempty"`
}

// JobStore is the crash-safe file JobStore: every enqueue and state
// transition is an fsync'd log append, so the set of queued-or-running
// jobs at any crash point is exactly what Recover returns on the next
// boot. Terminal jobs are dead records; when they outnumber live ones
// past a threshold the log is compacted — rewritten as a snapshot of the
// live jobs plus an ID mark — via atomic rename.
type JobStore struct {
	mu     sync.Mutex
	w      *wal
	jobs   map[uint64]*store.JobRecord
	order  []uint64
	nextID uint64
	// dirty counts records appended since open/compaction; the compaction
	// trigger compares it against the live-job count.
	dirty     int
	bytes     int64
	recovered uint64
}

// compactAfter is the minimum number of appended records before a
// compaction is considered; beyond it, the log is rewritten whenever the
// appended records outnumber the live jobs 4:1.
const compactAfter = 64

// OpenJobStore opens (creating if absent) the job log at path and
// replays it.
func OpenJobStore(path string) (*JobStore, error) {
	w, records, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	s := &JobStore{w: w, jobs: make(map[uint64]*store.JobRecord)}
	for _, payload := range records {
		var rec jobLogRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			// An intact frame with an unreadable payload is a version skew
			// or author bug, not a torn write; fail loudly rather than
			// silently dropping jobs.
			w.Close()
			return nil, fmt.Errorf("disk: job log %s: unreadable record: %w", path, err)
		}
		s.replay(rec)
	}
	s.dirty = 0
	for _, j := range s.jobs {
		if !store.TerminalJobState(j.State) {
			s.recovered++
		}
	}
	return s, nil
}

func (s *JobStore) replay(rec jobLogRec) {
	if rec.ID > s.nextID {
		s.nextID = rec.ID
	}
	switch rec.T {
	case "enq":
		r := &store.JobRecord{ID: rec.ID, Key: rec.Key, Tenant: rec.Tenant, Spec: append([]byte(nil), rec.Spec...), State: store.JobQueued, Error: rec.Err}
		if rec.State != "" {
			r.State = rec.State // compaction snapshots preserve running
		}
		if _, dup := s.jobs[rec.ID]; !dup {
			s.order = append(s.order, rec.ID)
			s.bytes += int64(len(r.Key) + len(r.Spec))
		}
		s.jobs[rec.ID] = r
	case "st":
		if j, ok := s.jobs[rec.ID]; ok {
			j.State, j.Error = rec.State, rec.Err
		}
	case "mark":
		// ID high-water only, already applied above.
	}
	s.dirty++
}

func (s *JobStore) NextID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

func (s *JobStore) Enqueue(rec store.JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.ID > s.nextID {
		s.nextID = rec.ID
	}
	payload, err := json.Marshal(jobLogRec{T: "enq", ID: rec.ID, Key: rec.Key, Tenant: rec.Tenant, Spec: rec.Spec})
	if err != nil {
		return err
	}
	if err := s.w.append(payload); err != nil {
		return err
	}
	rec.State = store.JobQueued
	r := rec
	s.jobs[rec.ID] = &r
	s.order = append(s.order, rec.ID)
	s.bytes += int64(len(rec.Key) + len(rec.Spec))
	s.dirty++
	return nil
}

// AppendBatch records a whole admission batch with one write and one
// fsync (via wal.appendAll) instead of a sync per job — the durable-cost
// amortization behind the service's edge micro-batcher. On error nothing
// is applied in memory and the caller treats the batch as refused; a
// crash mid-write can leave a durable prefix, which recovery re-dispatches
// like any other interrupted jobs.
func (s *JobStore) AppendBatch(recs []store.JobRecord) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	payloads := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.ID > s.nextID {
			s.nextID = rec.ID
		}
		payload, err := json.Marshal(jobLogRec{T: "enq", ID: rec.ID, Key: rec.Key, Tenant: rec.Tenant, Spec: rec.Spec})
		if err != nil {
			return err
		}
		payloads[i] = payload
	}
	if err := s.w.appendAll(payloads); err != nil {
		return err
	}
	for _, rec := range recs {
		rec.State = store.JobQueued
		r := rec
		s.jobs[rec.ID] = &r
		s.order = append(s.order, rec.ID)
		s.bytes += int64(len(rec.Key) + len(rec.Spec))
		s.dirty++
	}
	return nil
}

func (s *JobStore) SetState(id uint64, state, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	payload, err := json.Marshal(jobLogRec{T: "st", ID: id, State: state, Err: errMsg})
	if err != nil {
		return err
	}
	if err := s.w.append(payload); err != nil {
		return err
	}
	j.State, j.Error = state, errMsg
	s.dirty++
	return s.maybeCompactLocked()
}

// maybeCompactLocked rewrites the log as a snapshot of the live jobs
// when appended records dominate them, dropping terminal records.
func (s *JobStore) maybeCompactLocked() error {
	live := 0
	for _, j := range s.jobs {
		if !store.TerminalJobState(j.State) {
			live++
		}
	}
	if s.dirty < compactAfter || s.dirty <= 4*live {
		return nil
	}
	records := make([][]byte, 0, live+1)
	mark, err := json.Marshal(jobLogRec{T: "mark", ID: s.nextID})
	if err != nil {
		return err
	}
	records = append(records, mark)
	keep := make([]uint64, 0, live)
	var bytes int64
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || store.TerminalJobState(j.State) {
			delete(s.jobs, id)
			continue
		}
		payload, err := json.Marshal(jobLogRec{T: "enq", ID: j.ID, Key: j.Key, Tenant: j.Tenant, Spec: j.Spec, State: j.State, Err: j.Error})
		if err != nil {
			return err
		}
		records = append(records, payload)
		keep = append(keep, id)
		bytes += int64(len(j.Key) + len(j.Spec))
	}
	if err := s.w.rewrite(records); err != nil {
		return err
	}
	s.order = keep
	s.bytes = bytes
	s.dirty = 0
	return nil
}

func (s *JobStore) Recover() []store.JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]store.JobRecord, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok && !store.TerminalJobState(j.State) {
			out = append(out, *j)
		}
	}
	return out
}

func (s *JobStore) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return store.Stats{
		Records:     len(s.jobs),
		Bytes:       s.bytes,
		Appends:     s.w.appends,
		Compactions: s.w.compactions,
		Recovered:   s.recovered,
	}
}

func (s *JobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
