package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecordRoundTrip drives arbitrary payload triples through the
// record log's full lifecycle — append+fsync, reopen/replay, append after
// recovery, reopen again — asserting every payload round-trips
// byte-exactly and the log stays self-consistent. This is the framing
// invariant the crash-recovery tests build on; the checked-in corpus
// (testdata/fuzz) pins the interesting shapes (empty payloads, frame-size
// probes, header-like bytes) and CI runs a short native-fuzz smoke on top.
func FuzzStoreRecordRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte("a"), []byte("hello, log"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{0xff}, []byte{})
	f.Add(bytes.Repeat([]byte{0xa5}, 1024), []byte("x"), bytes.Repeat([]byte("fvp"), 100))

	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		payloads := [][]byte{a, b, c}

		w, initial, err := openWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(initial) != 0 {
			t.Fatal("fresh log must be empty")
		}
		for _, p := range payloads {
			if err := w.append(p); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()

		w2, got, err := openWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payloads) {
			t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("record %d: got %x, want %x", i, got[i], payloads[i])
			}
		}
		// Append-after-recovery must extend, not clobber.
		if err := w2.append(a); err != nil {
			t.Fatal(err)
		}
		// Compaction rewrite must round-trip the same payloads.
		if err := w2.rewrite([][]byte{c, b}); err != nil {
			t.Fatal(err)
		}
		w2.Close()

		_, final, err := openWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(final) != 2 || !bytes.Equal(final[0], c) || !bytes.Equal(final[1], b) {
			t.Fatalf("after rewrite, replay = %d records", len(final))
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2*frameHeaderSize + len(c) + len(b)); fi.Size() != want {
			t.Fatalf("compacted log is %d bytes, want %d", fi.Size(), want)
		}
	})
}
