package disk

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fvp/internal/store"
)

// writeFrames builds a log of n varied-size records and returns the raw
// file bytes, the payloads, and each frame's end offset.
func writeFrames(t *testing.T, path string, n int) (raw []byte, payloads [][]byte, ends []int) {
	t.Helper()
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < n; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%26)}, 1+(i*7)%53)
		p = append(p, []byte(fmt.Sprintf("|rec%02d", i))...)
		if err := w.append(p); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
		off += frameHeaderSize + len(p)
		ends = append(ends, off)
	}
	w.Close()
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != off {
		t.Fatalf("log is %d bytes, expected %d", len(raw), off)
	}
	return raw, payloads, ends
}

// fullFramesBefore counts the frames that end at or before offset.
func fullFramesBefore(ends []int, offset int) int {
	n := 0
	for _, e := range ends {
		if e <= offset {
			n++
		}
	}
	return n
}

// TestRecoverKillAtRandomOffset is the crash-recovery contract for the
// record log: for every possible kill point (the file truncated at a
// random offset, as a crash mid-append leaves it), reopening recovers
// exactly the records whose frames were fully written — every fsync'd
// record — and discards the torn tail, leaving the file clean for
// further appends.
func TestRecoverKillAtRandomOffset(t *testing.T) {
	dir := t.TempDir()
	raw, payloads, ends := writeFrames(t, filepath.Join(dir, "full.log"), 24)

	rng := rand.New(rand.NewSource(1))
	cuts := map[int]bool{0: true, len(raw): true}
	for len(cuts) < 120 {
		cuts[rng.Intn(len(raw)+1)] = true
	}
	for _, end := range ends { // every exact frame boundary too
		cuts[end] = true
	}

	for cut := range cuts {
		path := filepath.Join(dir, fmt.Sprintf("cut%05d.log", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, err := openWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		want := fullFramesBefore(ends, cut)
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d corrupted on recovery", cut, i)
			}
		}
		// The torn tail must be gone: appending then reopening yields the
		// recovered prefix plus the new record.
		if err := w.append([]byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		w.Close()
		_, again, err := openWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if len(again) != want+1 || !bytes.Equal(again[want], []byte("post-crash")) {
			t.Fatalf("cut=%d: after post-crash append got %d records, want %d", cut, len(again), want+1)
		}
	}
}

// TestRecoverCorruptTail flips single bytes (bit rot or a torn sector in
// the middle of the tail frame) and asserts recovery keeps exactly the
// records before the corrupted frame: CRC framing detects the damage and
// the scan stops there rather than replaying garbage.
func TestRecoverCorruptTail(t *testing.T) {
	dir := t.TempDir()
	raw, payloads, ends := writeFrames(t, filepath.Join(dir, "full.log"), 24)

	frameOf := func(offset int) int { // index of the frame containing offset
		for i, e := range ends {
			if offset < e {
				return i
			}
		}
		return len(ends) - 1
	}

	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 120; trial++ {
		idx := rng.Intn(len(raw))
		mut := append([]byte(nil), raw...)
		mut[idx] ^= 1 << uint(rng.Intn(8))
		path := filepath.Join(dir, fmt.Sprintf("corrupt%03d.log", trial))
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, err := openWAL(path)
		if err != nil {
			t.Fatalf("trial %d (byte %d): reopen: %v", trial, idx, err)
		}
		w.Close()
		want := frameOf(idx)
		if len(got) != want {
			t.Fatalf("trial %d: flipped byte %d in frame %d, recovered %d records, want %d",
				trial, idx, want, len(got), want)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("trial %d: record %d corrupted on recovery", trial, i)
			}
		}
	}
}

// TestJobStoreRecoversFromTornLog drives the same contract end-to-end
// through the JobStore: a log truncated mid-record recovers every
// fully-appended job and the store remains usable.
func TestJobStoreRecoversFromTornLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.log")
	s, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := s.NextID()
		if err := s.Enqueue(store.JobRecord{ID: id, Key: fmt.Sprintf("key%d", i), Spec: []byte(`{"n":1}`)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: cut 3 bytes off the end.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Recover()
	if len(recs) != 7 {
		t.Fatalf("recovered %d jobs from torn log, want 7", len(recs))
	}
	for i, rec := range recs {
		if rec.Key != fmt.Sprintf("key%d", i) {
			t.Errorf("recovered job %d has key %q", i, rec.Key)
		}
	}
	// The torn job's ID was handed out pre-crash; a fresh ID must still
	// be unique even though that enqueue record was lost.
	if next := s2.NextID(); next <= recs[len(recs)-1].ID {
		t.Errorf("NextID after torn-tail recovery = %d, not past the recovered jobs", next)
	}
}
