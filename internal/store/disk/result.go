package disk

import (
	"encoding/json"
	"fmt"
	"sync"

	"fvp/internal/store"
)

// resultLogRec is the JSON payload of one result-log record: a put (key
// and encoded result) or a delete (eviction), discriminated by T.
type resultLogRec struct {
	T   string `json:"t"` // "put" | "del"
	Key string `json:"key"`
	// Val is the opaque record value; encoding/json base64s it, keeping
	// the log line-safe for arbitrary bytes.
	Val []byte `json:"val,omitempty"`
}

// ResultStore is the crash-safe file ResultStore: a MemoryResultStore
// index (the same LRU + byte accounting as the default backend, so both
// backends evict identically) over an fsync'd record log. A put is
// durable once Put returns; recency bumps are deliberately not logged —
// a cache hit must not cost an fsync — so after a restart the LRU order
// degrades to log order, which compaction (a snapshot of the live
// entries in recency order) periodically restores.
type ResultStore struct {
	mu        sync.Mutex
	w         *wal
	idx       *store.MemoryResultStore
	dirty     int
	recovered uint64
}

// OpenResultStore opens (creating if absent) the result log at path.
// maxEntries and maxBytes bound the live set exactly as the memory
// backend does (<=0: unlimited entries; 0: unlimited bytes).
func OpenResultStore(path string, maxEntries int, maxBytes int64) (*ResultStore, error) {
	w, records, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	// Replay uncapped and honor del records literally: evictions were
	// driven by recency bumps that are deliberately not logged, so
	// re-deriving them from log order would evict the wrong entries.
	// Caps are applied once, after the live set is reconstructed.
	replayed := store.NewMemoryResultStore(0, 0)
	for _, payload := range records {
		var rec resultLogRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			w.Close()
			return nil, fmt.Errorf("disk: result log %s: unreadable record: %w", path, err)
		}
		switch rec.T {
		case "put":
			replayed.Insert(rec.Key, append([]byte(nil), rec.Val...))
		case "del":
			replayed.Delete(rec.Key)
		}
	}
	s := &ResultStore{w: w, idx: store.NewMemoryResultStore(maxEntries, maxBytes)}
	for _, r := range replayed.Snapshot() {
		s.idx.Insert(r.Key, r.Value)
	}
	s.recovered = uint64(s.idx.Len())
	return s, nil
}

func (s *ResultStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Get(key)
}

func (s *ResultStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Has(key)
}

func (s *ResultStore) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := json.Marshal(resultLogRec{T: "put", Key: key, Val: value})
	if err != nil {
		return err
	}
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.dirty++
	for _, evicted := range s.idx.Insert(key, value) {
		del, err := json.Marshal(resultLogRec{T: "del", Key: evicted})
		if err != nil {
			return err
		}
		if err := s.w.append(del); err != nil {
			return err
		}
		s.dirty++
	}
	return s.maybeCompactLocked()
}

// maybeCompactLocked rewrites the log as a snapshot of the live entries
// (oldest-first, so replay reconstructs the LRU order) once appended
// records outnumber them past the threshold.
func (s *ResultStore) maybeCompactLocked() error {
	if s.dirty < compactAfter || s.dirty <= 2*s.idx.Len() {
		return nil
	}
	snap := s.idx.Snapshot()
	records := make([][]byte, 0, len(snap))
	for _, r := range snap {
		payload, err := json.Marshal(resultLogRec{T: "put", Key: r.Key, Val: r.Value})
		if err != nil {
			return err
		}
		records = append(records, payload)
	}
	if err := s.w.rewrite(records); err != nil {
		return err
	}
	s.dirty = 0
	return nil
}

func (s *ResultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Len()
}

func (s *ResultStore) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.idx.Stats()
	return store.Stats{
		Records:     st.Records,
		Bytes:       st.Bytes,
		Appends:     s.w.appends,
		Compactions: s.w.compactions,
		Recovered:   s.recovered,
	}
}

func (s *ResultStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Close()
}
