package disk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"fvp/internal/store"
)

// BlobStore is the crash-safe file BlobStore: a directory per blob under
// root, published by atomic rename. A Put stages the blob as
// root/.tmp-<key>/data, fsyncs it, then renames the staging directory to
// root/<key> and fsyncs root — so readers (and post-crash recovery) see
// either no blob or the complete blob, never a partial write.
type BlobStore struct {
	mu   sync.Mutex
	root string
	muts uint64
}

// blobDataFile is the payload filename inside each blob directory. The
// directory-per-blob layout leaves room for sidecar metadata later
// without changing the publish protocol.
const blobDataFile = "data"

// OpenBlobStore opens (creating if absent) the blob archive rooted at
// dir, sweeping any staging directories a crash left behind.
func OpenBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		// Unpublished staging dirs are exactly the crashes mid-Put.
		if strings.HasPrefix(e.Name(), ".tmp-") {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
	return &BlobStore{root: dir}, nil
}

// validKey restricts blob keys to flat, path-safe names so a key can
// never escape the archive root or collide with staging directories.
func validKey(key string) error {
	if key == "" || len(key) > 255 || strings.HasPrefix(key, ".") {
		return fmt.Errorf("disk: invalid blob key %q", key)
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("disk: invalid blob key %q", key)
		}
	}
	return nil
}

func (b *BlobStore) Put(key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	stage := filepath.Join(b.root, ".tmp-"+key)
	final := filepath.Join(b.root, key)
	os.RemoveAll(stage)
	if err := os.Mkdir(stage, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(stage, blobDataFile), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		os.RemoveAll(stage)
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.RemoveAll(stage)
		return err
	}
	// Replace-by-rename: a same-key republish removes the old directory
	// first (rename onto a non-empty directory fails). The gap is not a
	// durability hole — both generations are complete blobs, and keys are
	// content-addressed, so the replacement is byte-identical in practice.
	if err := os.RemoveAll(final); err != nil {
		os.RemoveAll(stage)
		return err
	}
	if err := os.Rename(stage, final); err != nil {
		os.RemoveAll(stage)
		return err
	}
	if err := syncDir(b.root); err != nil {
		return err
	}
	b.muts++
	return nil
}

func (b *BlobStore) Open(key string) (io.ReadCloser, error) {
	if err := validKey(key); err != nil {
		return nil, store.ErrNotFound
	}
	f, err := os.Open(filepath.Join(b.root, key, blobDataFile))
	if os.IsNotExist(err) {
		return nil, store.ErrNotFound
	}
	return f, err
}

func (b *BlobStore) Has(key string) bool {
	if validKey(key) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(b.root, key, blobDataFile))
	return err == nil
}

func (b *BlobStore) List() []string {
	entries, err := os.ReadDir(b.root)
	if err != nil {
		return nil
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			keys = append(keys, e.Name())
		}
	}
	return keys
}

func (b *BlobStore) Stats() store.Stats {
	b.mu.Lock()
	muts := b.muts
	b.mu.Unlock()
	st := store.Stats{Appends: muts}
	for _, key := range b.List() {
		if fi, err := os.Stat(filepath.Join(b.root, key, blobDataFile)); err == nil {
			st.Records++
			st.Bytes += fi.Size()
		}
	}
	return st
}

func (b *BlobStore) Close() error { return nil }
