package disk

import (
	"os"
	"path/filepath"

	"fvp/internal/store"
)

// Options size the disk-backed stores opened by Open.
type Options struct {
	// CacheEntries bounds the result cache's live entries (<=0: the
	// caller's default applies — cmd/fvpd resolves it before calling).
	CacheEntries int
	// CacheBytes bounds the result cache's key+value bytes (0: unlimited).
	CacheBytes int64
}

// Open opens (creating if absent) the full disk-backed store set under
// dir — jobs.log, results.log, and blobs/ — the layout cmd/fvpd's
// -data-dir flag points at. On success the caller owns the stores and
// must Close them (internal/simd.Service does so when it shuts down).
func Open(dir string, opt Options) (store.Stores, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return store.Stores{}, err
	}
	jobs, err := OpenJobStore(filepath.Join(dir, "jobs.log"))
	if err != nil {
		return store.Stores{}, err
	}
	results, err := OpenResultStore(filepath.Join(dir, "results.log"), opt.CacheEntries, opt.CacheBytes)
	if err != nil {
		jobs.Close()
		return store.Stores{}, err
	}
	blobs, err := OpenBlobStore(filepath.Join(dir, "blobs"))
	if err != nil {
		jobs.Close()
		results.Close()
		return store.Stores{}, err
	}
	return store.Stores{Jobs: jobs, Results: results, Blobs: blobs}, nil
}
