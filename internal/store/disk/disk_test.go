package disk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"fvp/internal/store"
)

func TestResultStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenResultStore(path, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("alpha", []byte(`{"ipc":1.5}`))
	s.Put("beta", []byte(`{"ipc":0.5}`))
	s.Close()

	s2, err := OpenResultStore(path, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("alpha"); !ok || string(v) != `{"ipc":1.5}` {
		t.Errorf("alpha after reopen = %q, %v", v, ok)
	}
	if s2.Len() != 2 {
		t.Errorf("len after reopen = %d, want 2", s2.Len())
	}
	if got := s2.Stats().Recovered; got != 2 {
		t.Errorf("recovered = %d, want 2", got)
	}
}

func TestResultStoreEvictionSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenResultStore(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Get("a")              // bump a
	s.Put("c", []byte("3")) // evicts b; the eviction is logged
	s.Close()

	s2, err := OpenResultStore(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Has("b") {
		t.Error("evicted entry b must not resurrect on reopen")
	}
	if !s2.Has("a") || !s2.Has("c") {
		t.Error("live entries a and c must survive reopen")
	}
}

func TestResultStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenResultStore(path, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Many puts over few keys: the log accumulates dead records until the
	// compaction threshold trips and rewrites it as the 4-entry snapshot.
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("k%d", i%4), []byte(fmt.Sprintf("v%03d", i)))
	}
	if got := s.Stats().Compactions; got == 0 {
		t.Fatal("expected at least one compaction after 200 appends over 4 keys")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 4096 {
		t.Errorf("log is %d bytes after compaction; dead records not reclaimed", fi.Size())
	}
	s.Close()
	s2, err := OpenResultStore(path, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 196; i < 200; i++ {
		key := fmt.Sprintf("k%d", i%4)
		want := fmt.Sprintf("v%03d", i)
		if v, ok := s2.Get(key); !ok || string(v) != want {
			t.Errorf("%s after compaction+reopen = %q, want %q", key, v, want)
		}
	}
}

func TestJobStoreRecoverAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, id3 := s.NextID(), s.NextID(), s.NextID()
	for i, id := range []uint64{id1, id2, id3} {
		err := s.Enqueue(store.JobRecord{ID: id, Key: fmt.Sprintf("key%d", i), Spec: []byte(`{"workload":"w"}`)})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.SetState(id1, store.JobRunning, "")
	s.SetState(id2, store.JobDone, "")
	s.Close() // id3 still queued, id1 running, id2 done

	s2, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Recover()
	if len(recs) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (running + queued): %+v", len(recs), recs)
	}
	if recs[0].ID != id1 || recs[0].State != store.JobRunning {
		t.Errorf("first recovered = %+v, want id %d running", recs[0], id1)
	}
	if recs[1].ID != id3 || recs[1].State != store.JobQueued {
		t.Errorf("second recovered = %+v, want id %d queued", recs[1], id3)
	}
	if string(recs[0].Spec) != `{"workload":"w"}` {
		t.Errorf("recovered spec = %q", recs[0].Spec)
	}
	if got := s2.Stats().Recovered; got != 2 {
		t.Errorf("stats recovered = %d, want 2", got)
	}
}

// TestJobStoreAppendBatchSingleSync: a batch append lands every record
// durably (reopen recovers all of them) while costing one log sync —
// the wal append counter moves by the record count but the underlying
// file grows in one write, and the batch is recoverable like N single
// enqueues.
func TestJobStoreAppendBatchSingleSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]store.JobRecord, 8)
	for i := range recs {
		recs[i] = store.JobRecord{ID: s.NextID(), Key: fmt.Sprintf("key%d", i), Tenant: "t", Spec: []byte(`{"workload":"w"}`)}
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 8 || st.Appends != 8 {
		t.Fatalf("stats after batch = %+v, want 8 records / 8 appends", st)
	}
	s.Close()

	s2, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recover()
	if len(got) != 8 {
		t.Fatalf("recovered %d jobs, want 8", len(got))
	}
	for i, r := range got {
		if r.ID != recs[i].ID || r.Key != recs[i].Key || r.Tenant != "t" || r.State != store.JobQueued {
			t.Errorf("recovered[%d] = %+v, want %+v queued", i, r, recs[i])
		}
	}
	// IDs stay monotonic past the batch.
	if id := s2.NextID(); id <= recs[7].ID {
		t.Errorf("NextID after batch reopen = %d, want > %d", id, recs[7].ID)
	}
}

func TestJobStoreIDsMonotonicAcrossReopenAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	s, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	// Enough terminal jobs to trip compaction several times; the mark
	// record must carry the ID high-water past the dropped records.
	for i := 0; i < 300; i++ {
		last = s.NextID()
		if err := s.Enqueue(store.JobRecord{ID: last, Key: "k", Spec: []byte("{}")}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetState(last, store.JobDone, ""); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("expected compactions after 300 terminal jobs")
	}
	s.Close()
	s2, err := OpenJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if next := s2.NextID(); next <= last {
		t.Errorf("NextID after reopen = %d, want > %d (monotonic across restarts)", next, last)
	}
	if recovered := s2.Recover(); len(recovered) != 0 {
		t.Errorf("recovered %d terminal jobs, want 0", len(recovered))
	}
}

func TestBlobStoreRoundTripAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "blobs")
	b, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"traceEvents":[]}`)
	if err := b.Put("trace-abc123", payload); err != nil {
		t.Fatal(err)
	}
	rc, err := b.Open("trace-abc123")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != string(payload) {
		t.Errorf("blob = %q, want %q", got, payload)
	}

	// A crash-orphaned staging dir must be swept at open and never listed.
	os.MkdirAll(filepath.Join(dir, ".tmp-orphan"), 0o755)
	os.WriteFile(filepath.Join(dir, ".tmp-orphan", "data"), []byte("torn"), 0o644)
	b2, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-orphan")); !os.IsNotExist(err) {
		t.Error("staging dir must be swept on open")
	}
	if keys := b2.List(); len(keys) != 1 || keys[0] != "trace-abc123" {
		t.Errorf("List after reopen = %v", keys)
	}
	if st := b2.Stats(); st.Records != 1 || st.Bytes != int64(len(payload)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestBlobStoreRejectsUnsafeKeys(t *testing.T) {
	b, err := OpenBlobStore(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", ".hidden", "nul\x00byte"} {
		if err := b.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) must reject an unsafe key", key)
		}
		if _, err := b.Open(key); err != store.ErrNotFound {
			t.Errorf("Open(%q) = %v, want ErrNotFound", key, err)
		}
	}
}

func TestOpenStores(t *testing.T) {
	dir := t.TempDir()
	stores, err := Open(dir, Options{CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	id := stores.Jobs.NextID()
	if err := stores.Jobs.Enqueue(store.JobRecord{ID: id, Key: "k", Spec: []byte("{}")}); err != nil {
		t.Fatal(err)
	}
	stores.Results.Put("k", []byte("v"))
	stores.Blobs.Put("b", []byte("blob"))
	if err := stores.Close(); err != nil {
		t.Fatal(err)
	}
	stores2, err := Open(dir, Options{CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stores2.Close()
	if len(stores2.Jobs.Recover()) != 1 || !stores2.Results.Has("k") || !stores2.Blobs.Has("b") {
		t.Error("all three stores must recover their state from the data dir")
	}
}
