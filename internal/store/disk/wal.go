// Package disk implements the crash-safe file backends of the store
// interfaces (fvp/internal/store) using only the standard library:
//
//   - wal.go: an fsync'd append-only record log with CRC-framed entries.
//     Every record is durable once the append returns; recovery replays
//     the longest intact prefix and truncates a torn tail.
//   - job.go / result.go: the JobStore and ResultStore built on that log,
//     each with snapshot+compaction (the compacted log IS the snapshot —
//     a rewrite of the live state published by atomic rename).
//   - blob.go: a directory-per-blob archive published by atomic rename,
//     for large artifacts like Perfetto pipeline traces.
//
// cmd/fvpd selects this backend with -data-dir; see Open.
package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Frame layout: an 8-byte header — little-endian uint32 payload length,
// then the CRC-32C (Castagnoli) of the payload — followed by the payload
// itself. A record is valid only if it fits the file and its checksum
// matches, so a crash mid-append (short write, or garbage from a dying
// page cache) is detected and the tail discarded rather than replayed.
const frameHeaderSize = 8

// maxRecordSize bounds one framed payload. It exists to keep a corrupt
// length field from driving a giant allocation during recovery, not to
// limit real records (result records are hundreds of bytes; job specs
// smaller).
const maxRecordSize = 1 << 26 // 64 MiB

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is the append-only record log. It is not self-locking: the stores
// that own one serialize access under their own mutex.
type wal struct {
	path string
	f    *os.File
	// size is the current valid length of the file (frames only).
	size int64
	// appends and compactions feed store.Stats.
	appends     uint64
	compactions uint64
}

// openWAL opens (creating if absent) the log at path and returns it with
// every intact record, in append order. If the file ends in a torn or
// corrupt frame — the signature of a crash mid-append — the tail is
// truncated away so subsequent appends extend a clean log.
func openWAL(path string) (*wal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	records, valid := scanFrames(data)
	if int64(valid) < int64(len(data)) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("disk: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{path: path, f: f, size: int64(valid)}, records, nil
}

// scanFrames parses the longest valid prefix of data, returning the
// payloads and the byte offset where validity ends.
func scanFrames(data []byte) (records [][]byte, valid int) {
	off := 0
	for {
		if off+frameHeaderSize > len(data) {
			return records, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordSize || off+frameHeaderSize+int(n) > len(data) {
			return records, off
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return records, off
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderSize + int(n)
	}
}

// append frames, writes, and fsyncs one record. When it returns nil the
// record is durable: it will be replayed by every future openWAL.
func (w *wal) append(payload []byte) error {
	if len(payload) > maxRecordSize {
		return fmt.Errorf("disk: record of %d bytes exceeds the %d-byte frame cap", len(payload), maxRecordSize)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderSize:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(buf))
	w.appends++
	return nil
}

// appendAll frames and writes every payload, then fsyncs once. The
// durability contract is all-or-nothing at the batch level: a crash
// before the sync may persist any prefix of the batch (each frame is
// individually CRC-valid, so recovery replays whatever prefix landed),
// but once appendAll returns nil the whole batch is durable. One fsync
// for N records is the whole point — it is what lets micro-batched
// admission amortize the dominant cost of a durable enqueue.
func (w *wal) appendAll(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	total := 0
	for _, p := range payloads {
		if len(p) > maxRecordSize {
			return fmt.Errorf("disk: record of %d bytes exceeds the %d-byte frame cap", len(p), maxRecordSize)
		}
		total += frameHeaderSize + len(p)
	}
	buf := make([]byte, 0, total)
	var hdr [frameHeaderSize]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(p, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(buf))
	w.appends += uint64(len(payloads))
	return nil
}

// rewrite atomically replaces the log's contents with records — the
// snapshot+compaction step. The new log is written beside the old one,
// fsync'd, and renamed into place, so a crash at any point leaves either
// the complete old log or the complete new one.
func (w *wal) rewrite(records [][]byte) error {
	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for _, payload := range records {
		buf := make([]byte, frameHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
		copy(buf[frameHeaderSize:], payload)
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		size += int64(len(buf))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	// Swap the handle to the new inode; the old one only held the
	// now-unlinked file.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(size, 0); err != nil {
		nf.Close()
		return err
	}
	w.f.Close()
	w.f = nf
	w.size = size
	w.compactions++
	return nil
}

func (w *wal) Close() error { return w.f.Close() }

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
