package store

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

func TestMemoryResultStoreLRU(t *testing.T) {
	c := NewMemoryResultStore(2, 0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // bump a to most-recent
		t.Fatal("a must be cached")
	}
	c.Put("c", []byte("3")) // evicts b, the least-recent
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Error("a should have survived eviction")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}

func TestMemoryResultStoreByteAccounting(t *testing.T) {
	c := NewMemoryResultStore(16, 0)
	c.Put("key1", []byte("value-one")) // 4 + 9 = 13 bytes
	c.Put("key2", []byte("v2"))        // 4 + 2 = 6 bytes
	if got := c.Stats().Bytes; got != 19 {
		t.Fatalf("bytes = %d, want 19 (keys + values)", got)
	}
	c.Put("key1", []byte("tiny")) // refresh shrinks value 9 → 4
	if got := c.Stats().Bytes; got != 14 {
		t.Fatalf("bytes after refresh = %d, want 14", got)
	}
	c.Delete("key2")
	if got := c.Stats().Bytes; got != 8 {
		t.Fatalf("bytes after delete = %d, want 8", got)
	}
}

func TestMemoryResultStoreByteCapEviction(t *testing.T) {
	c := NewMemoryResultStore(0, 30)
	var evicted []string
	for i := 0; i < 5; i++ {
		// each entry: 2-byte key + 8-byte value = 10 bytes
		evicted = append(evicted, c.Insert(fmt.Sprintf("k%d", i), []byte("12345678"))...)
	}
	if got := c.Stats().Bytes; got > 30 {
		t.Errorf("bytes = %d, exceeds 30-byte cap", got)
	}
	if want := []string{"k0", "k1"}; len(evicted) != 2 || evicted[0] != want[0] || evicted[1] != want[1] {
		t.Errorf("evicted %v, want %v (oldest first)", evicted, want)
	}
	// The cap never empties the cache: one oversized entry stays resident.
	c2 := NewMemoryResultStore(0, 4)
	c2.Put("big", bytes.Repeat([]byte("x"), 100))
	if c2.Len() != 1 {
		t.Error("an entry larger than the byte cap must still be retained")
	}
}

func TestMemoryResultStoreSnapshotOrder(t *testing.T) {
	c := NewMemoryResultStore(8, 0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	c.Get("a") // recency now: a newest, c, b oldest
	snap := c.Snapshot()
	got := make([]string, len(snap))
	for i, r := range snap {
		got[i] = r.Key
	}
	if len(got) != 3 || got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Errorf("snapshot order %v, want [b c a] (oldest first)", got)
	}
}

func TestMemoryJobStoreLifecycle(t *testing.T) {
	s := NewMemoryJobStore()
	if s.NextID() != 1 || s.NextID() != 2 {
		t.Fatal("NextID must count monotonically from 1")
	}
	recs := []JobRecord{
		{ID: 1, Key: "ka", Spec: []byte(`{"workload":"a"}`)},
		{ID: 2, Key: "kb", Spec: []byte(`{"workload":"b"}`)},
	}
	for _, r := range recs {
		if err := s.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	s.SetState(1, JobRunning, "")
	if got := s.Recover(); len(got) != 2 || got[0].ID != 1 || got[0].State != JobRunning {
		t.Fatalf("Recover = %+v, want both jobs (first running)", got)
	}
	s.SetState(1, JobDone, "")
	s.SetState(2, JobCanceled, "ctx canceled")
	if got := s.Recover(); len(got) != 0 {
		t.Fatalf("Recover after terminal states = %+v, want empty", got)
	}
	if st := s.Stats(); st.Records != 0 || st.Bytes != 0 {
		t.Errorf("terminal jobs must be dropped, stats = %+v", st)
	}
	// Unknown IDs are ignored, not errors.
	if err := s.SetState(99, JobDone, ""); err != nil {
		t.Errorf("SetState on unknown ID: %v", err)
	}
}

func TestMemoryBlobStore(t *testing.T) {
	b := NewMemoryBlobStore(2)
	b.Put("one", []byte("first"))
	b.Put("two", []byte("second"))
	rc, err := b.Open("one")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "first" {
		t.Errorf("blob one = %q", data)
	}
	b.Put("three", []byte("third")) // evicts "one", the oldest
	if b.Has("one") {
		t.Error("one should have been evicted by the FIFO cap")
	}
	if _, err := b.Open("one"); err != ErrNotFound {
		t.Errorf("Open(evicted) = %v, want ErrNotFound", err)
	}
	if got := b.List(); len(got) != 2 {
		t.Errorf("List = %v, want 2 keys", got)
	}
	// Overwrite updates in place without consuming a slot.
	b.Put("two", []byte("rewritten"))
	if got := b.Stats(); got.Records != 2 {
		t.Errorf("records after overwrite = %d, want 2", got.Records)
	}
}
