package workload

import (
	"testing"

	"fvp/internal/isa"
	"fvp/internal/prog"
)

func TestAllSixtyWorkloadsBuild(t *testing.T) {
	ws := All()
	if len(ws) != 60 {
		t.Fatalf("study list has %d workloads, want 60", len(ws))
	}
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryCounts(t *testing.T) {
	want := map[Category]int{ISPEC06: 12, FSPEC06: 16, SPEC17: 16, Server: 16}
	for cat, n := range want {
		if got := len(ByCategory(cat)); got != n {
			t.Errorf("%s has %d workloads, want %d", cat, got, n)
		}
	}
}

func TestNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if _, ok := ByName(w.Name); !ok {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Error("ByName must fail for unknown names")
	}
	if len(Names()) != 60 {
		t.Errorf("Names() returned %d entries", len(Names()))
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w, _ := ByName("omnetpp")
	a, b := prog.NewExec(w.Build()), prog.NewExec(w.Build())
	var da, db isa.DynInst
	for i := 0; i < 5000; i++ {
		if !a.Next(&da) || !b.Next(&db) {
			t.Fatal("unexpected halt")
		}
		if da != db {
			t.Fatalf("divergence at %d: %v vs %v", i, da.String(), db.String())
		}
	}
}

// mixOf executes n instructions and returns per-op counts.
func mixOf(t *testing.T, name string, n int) map[isa.Op]int {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	ex := prog.NewExec(w.Build())
	mix := map[isa.Op]int{}
	var d isa.DynInst
	for i := 0; i < n; i++ {
		if !ex.Next(&d) {
			t.Fatalf("%s halted after %d instructions", name, i)
		}
		mix[d.Op]++
	}
	return mix
}

func TestEveryWorkloadHasLoadsAndBranches(t *testing.T) {
	for _, w := range All() {
		mix := mixOf(t, w.Name, 3000)
		if mix[isa.OpLoad] == 0 {
			t.Errorf("%s executes no loads", w.Name)
		}
		branches := 0
		for op, n := range mix {
			if op.IsBranch() {
				branches += n
			}
		}
		if branches == 0 {
			t.Errorf("%s executes no branches", w.Name)
		}
	}
}

func TestServerWorkloadsUseCallsAndStores(t *testing.T) {
	for _, w := range ByCategory(Server) {
		if w.Name == "hplinpack" {
			continue // the one streaming kernel in the category
		}
		mix := mixOf(t, w.Name, 6000)
		if mix[isa.OpCall] == 0 || mix[isa.OpRet] == 0 {
			t.Errorf("%s: server kernels dispatch through calls (call=%d ret=%d)",
				w.Name, mix[isa.OpCall], mix[isa.OpRet])
		}
		if mix[isa.OpStore] == 0 {
			t.Errorf("%s: server kernels spill to the stack", w.Name)
		}
	}
}

func TestBranchyWorkloadsBranchALot(t *testing.T) {
	leela := mixOf(t, "leela", 5000)
	stream := mixOf(t, "libquantum", 5000)
	frac := func(m map[isa.Op]int) float64 {
		total, br := 0, 0
		for op, n := range m {
			total += n
			if op.IsCondBranch() {
				br += n
			}
		}
		return float64(br) / float64(total)
	}
	if frac(leela) < 2*frac(stream) {
		t.Errorf("leela branch fraction %.3f not ≫ libquantum %.3f",
			frac(leela), frac(stream))
	}
}

func TestFSPECUsesFP(t *testing.T) {
	for _, name := range []string{"wrf", "cactusADM", "milc"} {
		mix := mixOf(t, name, 4000)
		if mix[isa.OpFP] == 0 {
			t.Errorf("%s executes no FP ops", name)
		}
	}
}

func TestColdFootprintsAreCold(t *testing.T) {
	// mcf's chase must touch a wide address range.
	w, _ := ByName("mcf")
	ex := prog.NewExec(w.Build())
	var d isa.DynInst
	lo, hi := ^uint64(0), uint64(0)
	for i := 0; i < 60000; i++ {
		ex.Next(&d)
		if d.Op.IsLoad() && d.Addr >= coldBase {
			if d.Addr < lo {
				lo = d.Addr
			}
			if d.Addr > hi {
				hi = d.Addr
			}
		}
	}
	if hi-lo < 16<<20 {
		t.Errorf("mcf chase spans only %d MB", (hi-lo)>>20)
	}
}

func TestWarmPtrTablesUniform(t *testing.T) {
	w, _ := ByName("omnetpp") // WarmPtr2 kernel
	p := w.Build()
	m := p.BuildMemory()
	// Level-2 half of the warm table must hold the cold mask everywhere.
	warm := uint64(2 << 20)
	coldMask := uint64(32<<20 - 1)
	for _, off := range []uint64{warm / 2, warm/2 + 8192, warm - 8} {
		if got := m.Read(warmBase + off); got != coldMask {
			t.Errorf("warm[%#x] = %#x, want cold mask %#x", off, got, coldMask)
		}
	}
}

func TestWarmRangesPresent(t *testing.T) {
	for _, name := range []string{"omnetpp", "cassandra", "wrf"} {
		w, _ := ByName(name)
		if len(w.Build().WarmRanges) == 0 {
			t.Errorf("%s has no warm ranges", name)
		}
	}
}
