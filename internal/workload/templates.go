package workload

import (
	"fmt"

	"fvp/internal/prog"
)

// lbl returns a unique label with the given prefix.
func (k *kernelBuilder) lbl(prefix string) string {
	k.nlbl++
	return fmt.Sprintf("%s_%d", prefix, k.nlbl)
}

// emitMutation rewrites a stable cfg scalar every 2^MutateEvery iterations
// (a value-locality phase change when MutateSame is false).
func (k *kernelBuilder) emitMutation() {
	if k.p.MutateEvery == 0 {
		return
	}
	skip := k.lbl("nomut")
	k.And(rT5, rI, int64(1)<<k.p.MutateEvery-1)
	k.BNZ(rT5, skip)
	k.Load(rT5, rCfg, 48)
	if !k.p.MutateSame {
		// Flip a high bit: loads of cfg+48 change value (VP flush
		// fodder) while the combined AND-mask stays valid.
		k.XorI(rT5, rT5, int64(1)<<62)
	}
	k.Store(rCfg, 48, rT5)
	k.Label(skip)
}

// emitColdStore stores the accumulator to a hashed cold address every
// 2^StoreEvery iterations.
func (k *kernelBuilder) emitColdStore() {
	if k.p.StoreEvery == 0 {
		return
	}
	skip := k.lbl("nost")
	k.And(rT5, rI, int64(1)<<k.p.StoreEvery-1)
	k.BNZ(rT5, skip)
	k.MulI(rT5, rI, hashConst2)
	k.Load(rT6, rCfg, 0)
	k.AndR(rT5, rT5, rT6)
	k.And(rT5, rT5, ^int64(7))
	k.Add(rT5, rCold, rT5)
	k.Store(rT5, 0, rSum)
	k.Label(skip)
}

// emitLoopTail increments the counter and loops.
func (k *kernelBuilder) emitLoopTail(loop string) {
	k.AddI(rI, rI, 1)
	k.BLT(rI, rN, loop)
	k.Halt()
}

// emitIndirectBody is the FVP-friendly core pattern: a delinquent cold load
// whose address chain runs through value-stable configuration loads and a
// per-iteration hash (paper Fig. 1/4 shape).
func (k *kernelBuilder) emitIndirectBody() {
	var missSkip string
	if k.p.MissShift > 0 {
		// Sparse-miss gate: the whole dependent-chain block runs every
		// 2^MissShift-th iteration (perfectly predictable branch).
		missSkip = k.lbl("miss")
		k.And(rT6, rI, int64(1)<<k.p.MissShift-1)
		k.BNZ(rT6, missSkip)
	}
	k.emitStreamLoad(rT0, rStrA, rT1) // per-iteration data (random values)
	k.emitALUChain(rT0, k.p.ALUChain) // serial work on the data
	switch {
	case k.p.WarmPtr2:
		k.emitWarmPtr2Chain(rT2, rT0)
	case k.p.WarmPtr:
		// Slow, value-stable pointer-table load on the cold load's
		// address chain — the primary FVP target.
		k.emitWarmPtrLoad(rT2, rT0)
	default:
		k.emitStableChain(rT2)
	}
	if k.p.Spill {
		// Spill the mask pointer and reload it: the reload forwards
		// from the store in the LSQ and is Memory-Renaming
		// predictable.
		k.Store(rFrm, 0, rT2)
		for j := 0; j < k.p.SpillDist; j++ {
			k.AddI(rT3, rT3, 1)
		}
		k.Load(rT2, rFrm, 0)
	}
	k.emitColdLoad(rT4, rT0, rT2)
	k.Add(rSum, rSum, rT4)
	if k.p.FPChain > 0 {
		// Per-iteration FP work on the loaded data (not loop-carried:
		// real FP codes break accumulators across iterations).
		k.FAdd(rT3, rT4, rAcc2)
		k.emitFPChain(rT3, k.p.FPChain)
	}
	if k.p.BranchEntropy > 0 {
		skip := k.lbl("ebr")
		k.emitEntropyBranch(rT4, skip)
		k.AddI(rSum, rSum, 3)
		k.Label(skip)
	}
	if missSkip != "" {
		k.Label(missSkip)
	}
	k.emitPad(k.p.PadALU)
	k.emitBgLoads(k.p.BgLoads)
}

// buildIndirect produces the two-level indirection kernel.
func buildIndirect(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	unroll := p.Unroll
	if unroll <= 0 {
		unroll = 1
	}
	for u := 0; u < unroll; u++ {
		k.emitIndirectBody()
	}
	k.emitMutation()
	k.emitColdStore()
	k.emitLoopTail("loop")
	return k.finish()
}

// buildChase produces the serial pointer chase: a dependence chain through
// DRAM that no value predictor can break (mcf/gcc shape: coverage without
// speedup). Side stable loads give the predictors something to cover.
func buildChase(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	k.Add(rT0, rCold, rCur)
	k.Load(rT1, rT0, 0) // serial DRAM load (value = address hash)
	k.Load(rT2, rCfg, 0)
	// next = (value ^ iteration salt) & coldMask: serial through the
	// loaded value, salted so the walk never closes a short cycle.
	k.MulI(rT4, rI, hashConst2)
	k.Xor(rT3, rT1, rT4)
	k.AndR(rCur, rT3, rT2)
	k.And(rCur, rCur, ^int64(7))
	k.Add(rSum, rSum, rT1)
	// Covered-but-useless side work: stable loads off the serial chain.
	for i := 0; i < p.StableLoads; i++ {
		k.Load(rT3, rCfg, int64(48+(i%8)*8))
		k.Add(rSum, rSum, rT3)
	}
	k.emitALUChain(rSum, p.ALUChain)
	if p.BranchEntropy > 0 {
		skip := k.lbl("ebr")
		k.emitEntropyBranch(rT1, skip)
		k.AddI(rSum, rSum, 1)
		k.Label(skip)
	}
	k.emitLoopTail("loop")
	return k.finish()
}

// buildStream produces the prefetch-friendly streaming kernel (libquantum/
// lbm/bwaves shape: high baseline IPC, little for value prediction to do).
func buildStream(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	unroll := p.Unroll
	if unroll <= 0 {
		unroll = 2
	}
	for u := 0; u < unroll; u++ {
		k.emitStreamLoad(rT0, rStrA, rT1)
		k.emitStreamLoad(rT2, rStrB, rT3)
		k.Add(rT4, rT0, rT2)
		if p.FPChain > 0 {
			k.FMul(rT4, rT4, rAcc2)
		}
		k.Shl(rT1, rI, 3)
		k.And(rT1, rT1, k.streamMask())
		k.Add(rT1, rOut, rT1)
		k.Store(rT1, 0, rT4)
		k.Add(rSum, rSum, rT4)
	}
	k.emitLoopTail("loop")
	return k.finish()
}

// buildStencil produces the FP stencil: warm-grid loads feeding a serial
// floating-point chain scaled by stable coefficient loads (FSPEC shape).
func buildStencil(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	// Quadratic grid walk (i² scaling, like row-major plane sweeps with
	// data-dependent row lengths): the per-access stride keeps changing,
	// so neither the PC-stride nor the stream prefetcher covers it and
	// grid loads genuinely pay L2/LLC latency.
	k.Mul(rT0, rI, rI)
	k.Shl(rT0, rT0, 3)
	k.Load(rT1, rCfg, 8) // warm mask (stable)
	k.AndR(rT0, rT0, rT1)
	k.Add(rT0, rWarm, rT0)
	k.Load(rT2, rT0, 0)
	k.Load(rT3, rT0, 8)
	k.Load(rT4, rT0, 16)
	k.FAdd(rT2, rT2, rT3)
	k.FAdd(rT2, rT2, rT4)
	k.Load(rT5, rCfg, 16) // coefficient (stable value)
	k.FMul(rT2, rT2, rT5)
	// Per-element FP chain (no loop-carried accumulator).
	k.emitFPChain(rT2, p.FPChain)
	if p.ColdBytes > 0 && p.StableLoads > 0 {
		// Occasional cold gather (milc/gemsfdtd-like LLC misses).
		k.emitStableChain(rT1)
		k.emitColdLoad(rT3, rT2, rT1)
		k.Add(rSum, rSum, rT3)
	}
	k.Shl(rT0, rI, 3)
	k.And(rT0, rT0, k.streamMask())
	k.Add(rT0, rOut, rT0)
	k.Store(rT0, 0, rT2)
	k.emitLoopTail("loop")
	return k.finish()
}

// buildBranchy produces the mispredict-bound kernel (SPEC17/game-tree
// shape): data-dependent branches on loaded values that defeat TAGE and —
// per §IV-A2 — value prediction alike.
func buildBranchy(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	k.emitStreamLoad(rT0, rStrA, rT1)
	// Three data-dependent diamonds with different skews.
	for j := 0; j < 3; j++ {
		other := k.lbl("else")
		join := k.lbl("join")
		k.Shr(rT2, rT0, int64(j*7))
		k.emitEntropyBranch(rT2, other)
		k.AddI(rSum, rSum, int64(j+1))
		k.Jump(join)
		k.Label(other)
		k.XorI(rSum, rSum, int64(j+17))
		k.Label(join)
	}
	// A patterned branch TAGE learns (keeps mispredict rate < 50%).
	skip := k.lbl("pat")
	k.And(rT2, rI, 7)
	k.BNZ(rT2, skip)
	k.AddI(rSum, rSum, 9)
	k.Label(skip)
	if p.ColdBytes > 0 {
		k.emitStableChain(rT3)
		k.emitColdLoad(rT4, rT0, rT3)
		k.Add(rSum, rSum, rT4)
	}
	k.emitALUChain(rSum, p.ALUChain)
	k.emitLoopTail("loop")
	return k.finish()
}

// buildHash produces the server kernel: dispatch over many replicated
// handler functions (instruction footprint + calls/returns), stack
// spill/reload of the pointer that feeds a delinquent load (store→load
// forwarding, the Memory-Renaming target), and warm-table mutation.
func buildHash(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	blocks := p.CodeBlocks
	if blocks <= 0 {
		blocks = 8
	}
	k.Jump("dispatch")

	// Handler functions.
	for b := 0; b < blocks; b++ {
		k.Label(fmt.Sprintf("fn_%d", b))
		// Compute a bucket pointer.
		k.emitStreamLoad(rT0, rStrA, rT1)
		k.Load(rT2, rCfg, 8) // warm mask (stable hot scalar)
		k.MulI(rT3, rT0, hashConst)
		k.AndR(rT3, rT3, rT2)
		k.And(rT3, rT3, ^int64(7))
		k.Add(rT3, rWarm, rT3)
		// Spill it to a data-dependent slot: both the store's and the
		// reload's addresses resolve late, so without Memory Renaming
		// the reload serializes behind address generation plus LSQ
		// forwarding — MR hands its consumers the store data directly.
		k.And(rT4, rT0, 0x38)
		k.Add(rT4, rFrm, rT4)
		k.Store(rT4, 0, rT3) // spill bucket pointer
		dist := p.SpillDist
		if dist <= 0 {
			dist = 6
		}
		for j := 0; j < dist; j++ {
			k.AddI(rLnk, rLnk, int64(j+1))
		}
		// Recompute the slot through a slow identity chain (XOR twice
		// with the same constants): the reload's address resolves
		// late, so MR's early value delivery has real latency to save.
		k.XorI(rT5, rT0, 0x5A)
		for j := 0; j < (dist+1)/2; j++ {
			k.XorI(rT5, rT5, int64(0x11+j))
			k.XorI(rT5, rT5, int64(0x11+j))
		}
		k.XorI(rT5, rT5, 0x5A)
		k.And(rT5, rT5, 0x38)
		k.Add(rT5, rFrm, rT5)
		k.Load(rT3, rT5, 0) // reload (the MR target)
		k.Load(rT5, rT3, 0) // warm bucket value
		if p.Spill {
			// Second spill/reload hop: the bucket value itself is
			// spilled and reloaded through another late-resolving
			// slot (nested call frames) — a second MR target on the
			// same serial chain.
			k.And(rT6, rT0, 0x38)
			k.Add(rT6, rFrm, rT6)
			k.Store(rT6, 64, rT5)
			for j := 0; j < dist/2; j++ {
				k.AddI(rLnk, rLnk, int64(j+3))
			}
			k.XorI(rT6, rT0, 0x2D)
			for j := 0; j < (dist+1)/2; j++ {
				k.XorI(rT6, rT6, int64(0x21+j))
				k.XorI(rT6, rT6, int64(0x21+j))
			}
			k.XorI(rT6, rT6, 0x2D)
			k.And(rT6, rT6, 0x38)
			k.Add(rT6, rFrm, rT6)
			k.Load(rT5, rT6, 64) // second reload (MR target)
		}
		// Delinquent load: bucket value salted with the iteration.
		k.MulI(rT6, rI, hashConst2)
		k.Xor(rT5, rT5, rT6)
		k.Load(rT6, rCfg, 0)
		k.AndR(rT5, rT5, rT6)
		k.And(rT5, rT5, ^int64(7))
		k.Add(rT5, rCold, rT5)
		k.Load(rT5, rT5, 0)
		k.Add(rSum, rSum, rT5)
		// Occasional warm-table mutation (bucket values change slowly).
		mutSkip := k.lbl("wmut")
		k.And(rT4, rI, 0xFFF)
		k.BNZ(rT4, mutSkip)
		k.Store(rT3, 0, rT5)
		k.Label(mutSkip)
		// Code-footprint padding: distinct PCs per handler, with
		// enough ILP that it models surrounding compute rather than an
		// artificial serial chain, plus the predictable-PC load tail.
		k.emitPad(p.Unroll * 2)
		k.emitBgLoads(p.BgLoads)
		k.Ret()
	}

	// Dispatcher: if-chain over handlers (branchy, server-style).
	// Handler selection is phase-based (requests of one type arrive in
	// batches), so each handler's PCs stay hot for thousands of
	// iterations at a time — the recurrence FVP's 2-entry Learning
	// Table needs.
	k.Label("dispatch")
	k.Label("loop")
	k.Shr(rT0, rI, 10)
	k.And(rT0, rT0, int64(blocks-1))
	for b := 0; b < blocks-1; b++ {
		next := k.lbl("disp")
		k.SubI(rT1, rT0, int64(b))
		k.BNZ(rT1, next)
		k.Call(fmt.Sprintf("fn_%d", b))
		k.Jump("callret")
		k.Label(next)
	}
	k.Call(fmt.Sprintf("fn_%d", blocks-1))
	k.Label("callret")
	k.emitMutation()
	k.emitLoopTail("loop")
	return k.finish()
}

// buildCompute produces the integer-compute kernel (h264ref/hmmer shape):
// serial multiply chains fed by table loads, few misses, mostly predictable
// branches.
func buildCompute(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	k.Load(rT0, rCfg, 16) // stable scale
	k.MulI(rT1, rI, 24)
	k.Load(rT2, rCfg, 8)
	k.AndR(rT1, rT1, rT2)
	k.Add(rT1, rWarm, rT1)
	k.Load(rT3, rT1, 0) // warm table load
	// Serial multiply-accumulate chain.
	chain := p.ALUChain
	if chain <= 0 {
		chain = 4
	}
	for j := 0; j < chain; j++ {
		if j%4 == 3 {
			k.Mul(rSum, rSum, rT0)
		} else {
			k.Add(rSum, rSum, rT3)
			k.XorI(rSum, rSum, int64(j*3+1))
		}
	}
	if p.BranchEntropy > 0 {
		skip := k.lbl("ebr")
		k.emitEntropyBranch(rT3, skip)
		k.AddI(rSum, rSum, 2)
		k.Label(skip)
	}
	if p.ColdBytes > 0 && p.StableLoads > 0 {
		k.emitStableChain(rT4)
		k.emitColdLoad(rT5, rT3, rT4)
		k.Add(rSum, rSum, rT5)
	}
	k.emitLoopTail("loop")
	return k.finish()
}

// buildMixed alternates between an indirect phase and a branchy phase every
// 2^14 iterations (perlbench/gcc shape; also exercises the criticality
// epoch logic).
func buildMixed(name string, p Params) *prog.Program {
	k := newKernel(name, p)
	k.Label("loop")
	k.And(rT0, rI, int64(1)<<14)
	k.BNZ(rT0, "phase2")
	k.emitIndirectBody()
	k.Jump("tail")
	k.Label("phase2")
	k.emitStreamLoad(rT0, rStrA, rT1)
	for j := 0; j < 2; j++ {
		skip := k.lbl("ebr")
		k.Shr(rT2, rT0, int64(j*9))
		k.emitEntropyBranch(rT2, skip)
		k.AddI(rSum, rSum, int64(j+1))
		k.Label(skip)
	}
	k.emitALUChain(rSum, p.ALUChain)
	k.Label("tail")
	k.emitMutation()
	k.emitLoopTail("loop")
	return k.finish()
}

// BuildHashForTest exposes the server template for white-box tests.
func BuildHashForTest(name string, p Params) *prog.Program { return buildHash(name, p) }

// BuildIndirectForTest exposes the indirect template for white-box tests.
func BuildIndirectForTest(name string, p Params) *prog.Program { return buildIndirect(name, p) }
