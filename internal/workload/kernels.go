// Package workload defines the 60-application study list (paper Table III)
// as generated mini-ISA kernels. Each paper workload maps to a kernel
// template instantiated with a parameter profile tuned to reproduce the
// behaviour class that matters to value prediction: working-set sizes
// (which levels delinquent loads hit), branch entropy (SPEC17-like
// mispredict-bound codes), stack spill/reload traffic (server-like
// store→load forwarding), value-stable configuration loads on address
// chains (what FVP predicts), and serial pointer chases (what nothing can
// predict).
package workload

import (
	"fvp/internal/isa"
	"fvp/internal/prog"
)

// Memory-map constants shared by all kernels.
const (
	cfgBase    = 0x0000_1000 // hot-ish scalars with stable values
	frameBase  = 0x0000_2000 // spill slots (store→load forwarding)
	streamA    = 0x0010_0000
	streamB    = 0x0030_0000
	streamOut  = 0x0050_0000
	warmBase   = 0x0100_0000 // L2/LLC-resident tables
	coldBase   = 0x1000_0000 // DRAM-resident heap
	hashConst  = 0x9E3779B1  // Fibonacci hashing multiplier
	hashConst2 = 0x85EBCA6B
)

// Registers by convention (isa.Reg 0 is the zero register).
const (
	rI    isa.Reg = 1 // loop counter
	rN    isa.Reg = 2 // trip count
	rSum  isa.Reg = 3 // accumulator
	rCur  isa.Reg = 4 // chase cursor
	rT0   isa.Reg = 5
	rT1   isa.Reg = 6
	rT2   isa.Reg = 7
	rT3   isa.Reg = 8
	rT4   isa.Reg = 9
	rCfg  isa.Reg = 10 // cfg block base
	rCold isa.Reg = 11
	rWarm isa.Reg = 12
	rStrA isa.Reg = 13
	rStrB isa.Reg = 14
	rOut  isa.Reg = 15
	rFrm  isa.Reg = 16
	rAcc2 isa.Reg = 17
	rT5   isa.Reg = 18
	rT6   isa.Reg = 19
	rLnk  isa.Reg = 20
)

// Params tunes one kernel instantiation.
type Params struct {
	// Seed differentiates otherwise-identical profiles.
	Seed uint64
	// ColdBytes is the DRAM-resident footprint (power of two).
	ColdBytes uint64
	// WarmBytes is the L2/LLC-resident footprint (power of two).
	WarmBytes uint64
	// StreamBytes is the sequential-array footprint (power of two).
	StreamBytes uint64
	// StableLoads is how many distinct cfg scalars each iteration loads
	// on the cold load's address chain (the FVP targets).
	StableLoads int
	// ALUChain/FPChain insert serial arithmetic between the stable loads
	// and the cold load.
	ALUChain int
	FPChain  int
	// BranchEntropy: 0 = perfectly patterned branches, 1 = coin flips on
	// loaded data.
	BranchEntropy float64
	// PadALU adds independent compute per iteration (four-wide ILP), the
	// knob that decides whether the baseline is width-bound (Skylake)
	// before it is chain-bound (Skylake-2X).
	PadALU int
	// BgLoads adds independent L1-resident loads of stable scalars from
	// distinct PCs/addresses each iteration — the predictable-PC tail of
	// real code. They are off every critical path (FVP ignores them) but
	// compete for the small tables of coverage-maximizing predictors.
	BgLoads int
	// MissShift gates the delinquent load to every 2^MissShift-th
	// iteration (0 = every iteration). Sparse misses are hidden behind
	// width limits on the small core but exposed on the scaled one —
	// the paper's gcc behaviour in Fig 9.
	MissShift uint
	// WarmPtr routes the cold load's address chain through a slow,
	// value-stable pointer-table load (the FVP target pattern); it also
	// fills the warm region with a uniform value.
	WarmPtr bool
	// WarmPtr2 adds a second pointer-table level: two serial, slow,
	// value-stable loads on the cold load's address chain (deeply
	// indirect object graphs). Implies WarmPtr-style table fills.
	WarmPtr2 bool
	// Spill enables a stack spill/reload of the pointer feeding the cold
	// load (Memory-Renaming fodder).
	Spill bool
	// SpillDist inserts filler work between spill and reload so the
	// forwarding distance is realistic.
	SpillDist int
	// StoreEvery issues a store to the cold region every 2^k iterations
	// (0 disables); creates dirty traffic and memory-order checks.
	StoreEvery uint
	// MutateEvery rewrites a cfg scalar every 2^k iterations (0 =
	// never). MutateSame rewrites the same value (forwarding without
	// misprediction); otherwise the value toggles (exercises VP
	// flushes).
	MutateEvery uint
	MutateSame  bool
	// CodeBlocks replicates the loop body across this many call targets
	// (instruction-cache pressure, server-style).
	CodeBlocks int
	// Unroll repeats the independent part of the body.
	Unroll int
}

// background returns the deterministic value of never-written memory.
func background(seed uint64) func(uint64) uint64 {
	return func(addr uint64) uint64 {
		x := addr ^ seed ^ 0x517C_C1B7_2722_0A95
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
}

// kernelBuilder carries shared helpers for kernel construction.
type kernelBuilder struct {
	*prog.Builder
	p     Params
	rng   *prog.RNG
	nlbl  int
	bgSeq int
}

func newKernel(name string, p Params) *kernelBuilder {
	k := &kernelBuilder{
		Builder: prog.NewBuilder(name),
		p:       p,
		rng:     prog.NewRNG(p.Seed | 1),
	}
	// Common preamble: base registers. MovI immediates keep restarts
	// self-initializing.
	k.MovI(rCfg, cfgBase)
	k.MovI(rFrm, frameBase)
	k.MovI(rCold, coldBase)
	k.MovI(rWarm, warmBase)
	k.MovI(rStrA, streamA)
	k.MovI(rStrB, streamB)
	k.MovI(rOut, streamOut)
	k.MovI(rSum, 0)
	k.MovI(rAcc2, 1)
	k.MovI(rCur, 0)
	k.MovI(rI, 0)
	k.MovI(rN, 1<<30) // effectively endless; Halt is unreachable in runs
	return k
}

func (k *kernelBuilder) finish() *prog.Program {
	p := k.MustBuild()
	p.Background = background(k.p.Seed)
	// cfg scalars hold small stable values used as masks/scales; they
	// must be explicit (the background hash would make masks useless).
	if p.InitMem == nil {
		p.InitMem = map[uint64]uint64{}
	}
	cold := k.p.ColdBytes
	if cold == 0 {
		cold = 32 << 20
	}
	warm := k.p.WarmBytes
	if warm == 0 {
		warm = 2 << 20
	}
	p.InitMem[cfgBase+0] = cold - 1 // cold mask
	p.InitMem[cfgBase+8] = warm - 1 // warm mask
	p.InitMem[cfgBase+16] = 24      // scale
	// Neutral AND-masks for the extra stable loads of deep chains: the
	// chain's combined mask must stay the cold mask.
	for i := 0; i < 8; i++ {
		p.InitMem[cfgBase+48+uint64(i)*8] = ^uint64(0)
	}
	// Background stable scalars (BgLoads tail): distinct constants.
	for i := 0; i < 48; i++ {
		p.InitMem[cfgBase+256+uint64(i)*8] = 0x1111*uint64(i) + 7
	}
	switch {
	case k.p.WarmPtr2:
		// Two-level pointer tables: the first half of the warm region
		// holds the index mask of the second half; the second half
		// holds the cold mask. Both are uniform (replicated
		// base-pointer value locality).
		half := warm / 2
		p.InitMem[cfgBase+24] = half - 1
		p.InitFunc = func(m *prog.Memory) {
			for a := uint64(warmBase); a < warmBase+half; a += 8 {
				m.Write(a, half-1)
			}
			for a := warmBase + half; a < warmBase+warm; a += 8 {
				m.Write(a, cold-1)
			}
		}
	case k.p.WarmPtr:
		// Uniform pointer table: every word holds the cold mask
		// (replicated base-pointer value locality).
		p.InitFunc = func(m *prog.Memory) {
			for a := uint64(warmBase); a < warmBase+warm; a += 8 {
				m.Write(a, cold-1)
			}
		}
	}
	// Steady-state cache image: the warm table lives in the LLC (and L2
	// when it fits); an LLC-sized-or-smaller "cold" region is LLC
	// resident in steady state — only larger ones truly live in DRAM.
	stream := k.p.StreamBytes
	if stream == 0 {
		stream = 1 << 20
	}
	p.WarmRanges = []prog.WarmRange{
		{Base: cfgBase, Bytes: 4096, Level: 0},
		{Base: frameBase, Bytes: 4096, Level: 0},
		{Base: streamA, Bytes: stream, Level: 2},
		{Base: streamB, Bytes: stream, Level: 2},
	}
	wl := 2
	if warm <= 128<<10 {
		wl = 1
	}
	p.WarmRanges = append(p.WarmRanges, prog.WarmRange{Base: warmBase, Bytes: warm, Level: wl})
	if cold <= 6<<20 {
		p.WarmRanges = append(p.WarmRanges, prog.WarmRange{Base: coldBase, Bytes: cold, Level: 2})
	}
	return p
}

// streamMask returns the AND-mask for stream array indexing.
func (k *kernelBuilder) streamMask() int64 {
	s := k.p.StreamBytes
	if s == 0 {
		s = 1 << 20
	}
	return int64(s - 1)
}

// emitStreamLoad loads the next element of a sequential array into dst:
// dst = mem[base + (i*8 & mask)]. L1-friendly under the stride prefetcher.
func (k *kernelBuilder) emitStreamLoad(dst, base isa.Reg, scratch isa.Reg) {
	k.Shl(scratch, rI, 3)
	k.And(scratch, scratch, k.streamMask())
	k.Add(scratch, base, scratch)
	k.Load(dst, scratch, 0)
}

// emitStableChain loads p.StableLoads cfg scalars and mixes them into dst
// (the cold load's address depends on them). These are the loads FVP's
// Last-Value predictor captures: fixed address, constant value, but often
// evicted to L2/LLC by the cold traffic.
func (k *kernelBuilder) emitStableChain(dst isa.Reg) {
	k.Load(dst, rCfg, 0) // cold mask (constant value)
	for i := 1; i < k.p.StableLoads; i++ {
		off := int64(48 + (i%8)*8) // neutral all-ones masks
		k.Load(rT5, rCfg, off)
		k.AndR(dst, dst, rT5)
	}
}

// emitALUChain inserts a serial arithmetic chain of the requested length,
// in-place on reg.
func (k *kernelBuilder) emitALUChain(reg isa.Reg, n int) {
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			k.XorI(reg, reg, int64(0x55+i))
		case 1:
			k.AddI(reg, reg, int64(i+1))
		case 2:
			k.Shr(rT6, reg, 7)
			k.Xor(reg, reg, rT6)
		}
	}
}

// emitFPChain inserts a serial floating-point-class chain on reg.
func (k *kernelBuilder) emitFPChain(reg isa.Reg, n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			k.FAdd(reg, reg, rAcc2)
		} else {
			k.FMul(reg, reg, rAcc2)
		}
	}
}

// emitColdLoad emits the delinquent load: dst = mem[cold + (hash & mask)]
// where mask comes from maskReg (the stable-load chain) and hash mixes
// hashReg (per-iteration data) with the loop counter, so the address stream
// never falls into a short revisit cycle (it stays DRAM-cold).
func (k *kernelBuilder) emitColdLoad(dst, hashReg, maskReg isa.Reg) {
	k.MulI(rT6, hashReg, hashConst)
	k.MulI(rT5, rI, hashConst2)
	k.Xor(rT6, rT6, rT5)
	k.Shr(rT5, rT6, 13)
	k.Xor(rT6, rT6, rT5)
	k.AndR(rT6, rT6, maskReg)
	k.And(rT6, rT6, ^int64(7))
	k.Add(rT6, rCold, rT6)
	k.Load(dst, rT6, 0)
}

// emitWarmPtrLoad emits the paper's Fig.-1 pattern: a load from a large
// (L2/LLC-resident) pointer table whose *value* is the same everywhere —
// the classic value-locality case of replicated arena/base pointers. The
// load is slow (its address varies across WarmBytes) but Last-Value
// predictable, and the cold load's address chain runs through it: exactly
// what FVP targets. dst receives the table value (the cold mask).
func (k *kernelBuilder) emitWarmPtrLoad(dst, hashReg isa.Reg) {
	k.Load(rT5, rCfg, 8) // warm mask (hot scalar)
	k.MulI(rT6, hashReg, hashConst2)
	k.Shr(dst, rT6, 9)
	k.Xor(rT6, rT6, dst)
	k.AndR(rT6, rT6, rT5)
	k.And(rT6, rT6, ^int64(7))
	k.Add(rT6, rWarm, rT6)
	k.Load(dst, rT6, 0) // stable value: the cold mask
}

// emitWarmPtr2Chain emits the two-level pointer walk: two serial
// LLC-latency loads with uniform (predictable) values ending with the cold
// mask in dst. hashReg supplies per-iteration entropy.
func (k *kernelBuilder) emitWarmPtr2Chain(dst, hashReg isa.Reg) {
	k.Load(rT5, rCfg, 24) // first-level mask (stable hot scalar)
	k.MulI(rT6, hashReg, hashConst2)
	k.Shr(dst, rT6, 9)
	k.Xor(rT6, rT6, dst)
	k.AndR(rT6, rT6, rT5)
	k.And(rT6, rT6, ^int64(7))
	k.Add(rT6, rWarm, rT6)
	k.Load(dst, rT6, 0) // level-1 pointer load: value = level-2 mask
	// Level 2: index the second half with fresh entropy masked by the
	// level-1 value (a true serial dependence).
	k.MulI(rT6, hashReg, 0x27D4EB2F)
	k.Shr(rT5, rT6, 15)
	k.Xor(rT6, rT6, rT5)
	k.AndR(rT6, rT6, dst)
	k.And(rT6, rT6, ^int64(7))
	k.Add(rT6, rWarm, rT6)
	k.Load(rT5, rCfg, 24) // re-fetch the half size to offset into half 2
	k.AddI(rT5, rT5, 1)
	k.Add(rT6, rT6, rT5)
	k.Load(dst, rT6, 0) // level-2 pointer load: value = cold mask
}

// emitBgLoads emits n independent loads of distinct stable scalars (the
// cfg block is padded with constants at offsets 256+). Each call site is a
// distinct PC reading a distinct address whose value never changes.
func (k *kernelBuilder) emitBgLoads(n int) {
	pads := [4]isa.Reg{25, 26, 27, 28}
	for j := 0; j < n; j++ {
		k.bgSeq++
		off := int64(256 + (k.bgSeq%48)*8)
		k.Load(pads[j%4], rCfg, off)
	}
}

// emitPad emits n independent single-cycle ALU operations across eight
// rotating accumulators (ILP ≈ 8), modelling wide surrounding compute: it
// consumes fetch/rename/issue bandwidth without adding a serial chain.
func (k *kernelBuilder) emitPad(n int) {
	pads := [8]isa.Reg{21, 22, 23, 24, 25, 26, 27, 28}
	for j := 0; j < n; j++ {
		r := pads[j%8]
		if j%2 == 0 {
			k.AddI(r, r, int64(j+1))
		} else {
			k.XorI(r, r, int64(j*7+3))
		}
	}
}

// emitEntropyBranch emits a data-dependent branch whose predictability is
// controlled by the entropy parameter: it tests loaded data masked down so
// that low entropy gives an almost-always-taken (predictable) branch and
// entropy 1.0 gives a coin flip.
func (k *kernelBuilder) emitEntropyBranch(dataReg isa.Reg, label string) {
	mask := int64(1)
	if k.p.BranchEntropy < 0.10 {
		mask = 0xFF // taken ~1/256: easily predicted
	} else if k.p.BranchEntropy < 0.35 {
		mask = 0xF // ~6% taken
	} else if k.p.BranchEntropy < 0.7 {
		mask = 0x3 // 25% taken
	}
	k.And(rT6, dataReg, mask)
	k.BEZ(rT6, label)
}
