package workload

import (
	"fmt"
	"sort"

	"fvp/internal/prog"
)

// Category is a Table-III workload family.
type Category string

// The paper's four workload categories.
const (
	ISPEC06 Category = "ISPEC06"
	FSPEC06 Category = "FSPEC06"
	SPEC17  Category = "SPEC17"
	Server  Category = "Server"
)

// Categories lists the families in the paper's reporting order.
func Categories() []Category { return []Category{FSPEC06, ISPEC06, Server, SPEC17} }

// Workload is one named entry of the study list.
type Workload struct {
	// Name is the paper's application name.
	Name string
	// Category is its Table-III family.
	Category Category
	// Build generates the kernel program. Each call returns a fresh
	// program; programs are immutable once built, so callers may cache.
	Build func() *prog.Program
}

type tmpl func(name string, p Params) *prog.Program

type def struct {
	name string
	cat  Category
	t    tmpl
	p    Params
}

// MB is a size helper.
const MB = 1 << 20

// defs is the full 60-entry study list. The paper's Table III names 53
// applications across the four categories and states the total is 60; the
// seven additional entries here are second traces of listed server
// applications (documented in DESIGN.md).
var defs = []def{
	// ------------------------------------------------- ISPEC06 (12)
	{"perlbench", ISPEC06, buildMixed, Params{Seed: 101, BgLoads: 14, ColdBytes: 16 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 3, PadALU: 32, MissShift: 1, BranchEntropy: 0.3}},
	{"bzip2", ISPEC06, buildStream, Params{Seed: 102, StreamBytes: 8 * MB, Unroll: 2, ALUChain: 2}},
	{"gcc", ISPEC06, buildIndirect, Params{Seed: 103, BgLoads: 18, ColdBytes: 48 * MB, WarmBytes: 2 * MB, WarmPtr: true, ALUChain: 2, PadALU: 112, MissShift: 3, BranchEntropy: 0.2}},
	{"mcf", ISPEC06, buildChase, Params{Seed: 104, ColdBytes: 64 * MB, StableLoads: 2, ALUChain: 1}},
	{"h264ref", ISPEC06, buildCompute, Params{Seed: 105, WarmBytes: 1 * MB, ALUChain: 6, BranchEntropy: 0.1}},
	{"gobmk", ISPEC06, buildBranchy, Params{Seed: 106, ColdBytes: 16 * MB, StableLoads: 2, BranchEntropy: 0.4, ALUChain: 2}},
	{"hmmer", ISPEC06, buildCompute, Params{Seed: 107, WarmBytes: 2 * MB, ALUChain: 8, BranchEntropy: 0.05}},
	{"sjeng", ISPEC06, buildBranchy, Params{Seed: 108, BranchEntropy: 0.5, ALUChain: 3}},
	{"libquantum", ISPEC06, buildStream, Params{Seed: 109, StreamBytes: 16 * MB, Unroll: 3}},
	{"omnetpp", ISPEC06, buildIndirect, Params{Seed: 110, BgLoads: 18, ColdBytes: 32 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 3, PadALU: 128, MissShift: 3, StoreEvery: 5, MutateEvery: 13, MutateSame: true}},
	{"astar", ISPEC06, buildIndirect, Params{Seed: 111, BgLoads: 18, ColdBytes: 24 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 4, PadALU: 112, MissShift: 3, BranchEntropy: 0.3}},
	{"xalancbmk", ISPEC06, buildIndirect, Params{Seed: 112, BgLoads: 16, ColdBytes: 32 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 2, PadALU: 48, MissShift: 2, Spill: true, SpillDist: 5}},

	// ------------------------------------------------- FSPEC06 (16)
	{"bwaves", FSPEC06, buildStream, Params{Seed: 201, StreamBytes: 16 * MB, Unroll: 3, FPChain: 1}},
	{"gamess", FSPEC06, buildCompute, Params{Seed: 202, WarmBytes: 1 * MB, ALUChain: 7}},
	{"milc", FSPEC06, buildStencil, Params{Seed: 203, WarmBytes: 4 * MB, ColdBytes: 32 * MB, StableLoads: 2, FPChain: 2}},
	{"zeusmp", FSPEC06, buildStencil, Params{Seed: 204, WarmBytes: 4 * MB, FPChain: 2}},
	{"soplex", FSPEC06, buildIndirect, Params{Seed: 205, BgLoads: 18, ColdBytes: 32 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 2, PadALU: 96, MissShift: 3, FPChain: 1}},
	{"povray", FSPEC06, buildCompute, Params{Seed: 206, WarmBytes: 512 << 10, ALUChain: 5, BranchEntropy: 0.2}},
	{"calculix", FSPEC06, buildStencil, Params{Seed: 207, WarmBytes: 2 * MB, FPChain: 3}},
	{"gemsfdtd", FSPEC06, buildStencil, Params{Seed: 208, WarmBytes: 8 * MB, ColdBytes: 32 * MB, StableLoads: 2, FPChain: 2}},
	{"tonto", FSPEC06, buildCompute, Params{Seed: 209, WarmBytes: 1 * MB, ALUChain: 6, ColdBytes: 16 * MB, StableLoads: 1}},
	{"wrf", FSPEC06, buildStencil, Params{Seed: 210, WarmBytes: 4 * MB, FPChain: 2}},
	{"sphinx3", FSPEC06, buildIndirect, Params{Seed: 211, BgLoads: 18, ColdBytes: 16 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 3, PadALU: 128, MissShift: 3, FPChain: 2}},
	{"gromacs", FSPEC06, buildStencil, Params{Seed: 212, WarmBytes: 1 * MB, FPChain: 3}},
	{"cactusADM", FSPEC06, buildStencil, Params{Seed: 213, WarmBytes: 8 * MB, FPChain: 4}},
	{"leslie3d", FSPEC06, buildStencil, Params{Seed: 214, WarmBytes: 4 * MB, FPChain: 2}},
	{"namd", FSPEC06, buildIndirect, Params{Seed: 215, BgLoads: 18, ColdBytes: 16 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 4, PadALU: 128, MissShift: 3, FPChain: 2}},
	{"dealII", FSPEC06, buildIndirect, Params{Seed: 216, BgLoads: 16, ColdBytes: 16 * MB, WarmBytes: 2 * MB, WarmPtr2: true, ALUChain: 3, PadALU: 96, MissShift: 3, FPChain: 1, MutateEvery: 14, MutateSame: true}},

	// -------------------------------------------------- SPEC17 (16)
	{"nab", SPEC17, buildCompute, Params{Seed: 301, WarmBytes: 2 * MB, ALUChain: 5, BranchEntropy: 0.4}},
	{"cam4", SPEC17, buildIndirect, Params{Seed: 302, BgLoads: 14, ColdBytes: 24 * MB, WarmBytes: 1 * MB, WarmPtr: true, ALUChain: 2, PadALU: 48, MissShift: 2, FPChain: 2}},
	{"pop2", SPEC17, buildStencil, Params{Seed: 303, WarmBytes: 4 * MB, FPChain: 3}},
	{"roms", SPEC17, buildStream, Params{Seed: 304, StreamBytes: 16 * MB, Unroll: 2, FPChain: 1}},
	{"leela", SPEC17, buildBranchy, Params{Seed: 305, BranchEntropy: 0.8, ALUChain: 2}},
	{"cactuBSSN", SPEC17, buildStencil, Params{Seed: 306, WarmBytes: 8 * MB, FPChain: 3}},
	{"xz", SPEC17, buildBranchy, Params{Seed: 307, ColdBytes: 16 * MB, BranchEntropy: 0.7, ALUChain: 3}},
	{"gcc-17", SPEC17, buildBranchy, Params{Seed: 308, ColdBytes: 24 * MB, StableLoads: 1, BranchEntropy: 0.6, ALUChain: 2}},
	{"mcf-17", SPEC17, buildChase, Params{Seed: 309, ColdBytes: 48 * MB, StableLoads: 1, BranchEntropy: 0.5}},
	{"xalanc-17", SPEC17, buildBranchy, Params{Seed: 310, ColdBytes: 16 * MB, StableLoads: 1, BranchEntropy: 0.6}},
	{"exchange2", SPEC17, buildBranchy, Params{Seed: 311, BranchEntropy: 0.9, ALUChain: 3}},
	{"omnetpp-17", SPEC17, buildBranchy, Params{Seed: 312, ColdBytes: 32 * MB, StableLoads: 1, BranchEntropy: 0.55}},
	{"perlbench-17", SPEC17, buildMixed, Params{Seed: 313, ColdBytes: 16 * MB, StableLoads: 1, BranchEntropy: 0.7, ALUChain: 2}},
	{"bwaves-17", SPEC17, buildStream, Params{Seed: 314, StreamBytes: 16 * MB, Unroll: 3, FPChain: 1}},
	{"lbm", SPEC17, buildStream, Params{Seed: 315, StreamBytes: 32 * MB, Unroll: 2, FPChain: 2}},
	{"fotonik3d", SPEC17, buildStencil, Params{Seed: 316, WarmBytes: 8 * MB, FPChain: 2, BranchEntropy: 0.3}},

	// -------------------------------------------------- Server (16)
	{"lammps", Server, buildHash, Params{Seed: 401, BgLoads: 4, ColdBytes: 16 * MB, WarmBytes: 2 * MB, CodeBlocks: 4, SpillDist: 8, Unroll: 4}},
	{"hplinpack", Server, buildStream, Params{Seed: 402, StreamBytes: 32 * MB, Unroll: 3, FPChain: 2}},
	{"tpce", Server, buildHash, Params{Seed: 403, BgLoads: 6, ColdBytes: 48 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"spark", Server, buildHash, Params{Seed: 404, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 10, Unroll: 16}},
	{"cassandra", Server, buildHash, Params{Seed: 405, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 2 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"specjbb", Server, buildHash, Params{Seed: 406, BgLoads: 6, ColdBytes: 24 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 10, Unroll: 12}},
	{"specjenterprise", Server, buildHash, Params{Seed: 407, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"hadoop", Server, buildHash, Params{Seed: 408, BgLoads: 6, ColdBytes: 64 * MB, WarmBytes: 8 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"specpower", Server, buildHash, Params{Seed: 409, BgLoads: 4, ColdBytes: 16 * MB, WarmBytes: 2 * MB, CodeBlocks: 4, SpillDist: 8, Unroll: 8}},
	{"tpce-mix", Server, buildHash, Params{Seed: 410, BgLoads: 6, ColdBytes: 48 * MB, WarmBytes: 8 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"spark-sql", Server, buildHash, Params{Seed: 411, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 10, Unroll: 12}},
	{"cassandra-write", Server, buildHash, Params{Seed: 412, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 2 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"hadoop-sort", Server, buildHash, Params{Seed: 413, BgLoads: 6, ColdBytes: 64 * MB, WarmBytes: 8 * MB, CodeBlocks: 4, SpillDist: 10, Unroll: 20}},
	{"specjbb-crit", Server, buildHash, Params{Seed: 414, BgLoads: 6, ColdBytes: 24 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"specjent-web", Server, buildHash, Params{Seed: 415, BgLoads: 6, ColdBytes: 32 * MB, WarmBytes: 4 * MB, CodeBlocks: 4, SpillDist: 14, Unroll: 40, Spill: true}},
	{"specpower-ssj2", Server, buildHash, Params{Seed: 416, BgLoads: 4, ColdBytes: 16 * MB, WarmBytes: 2 * MB, CodeBlocks: 4, SpillDist: 8, Unroll: 8}},
}

// All returns the 60-workload study list in definition order.
func All() []Workload {
	out := make([]Workload, len(defs))
	for i, d := range defs {
		d := d
		out[i] = Workload{
			Name:     d.name,
			Category: d.cat,
			Build:    func() *prog.Program { return d.t(d.name, d.p) },
		}
	}
	return out
}

// GoldenMatrix returns the names of the 13-workload golden-stat matrix: a
// representative slice of the study list in which every builder template
// (indirect, chase, compute, branchy, stream, stencil, hash, mixed) and
// every Table-III category appears, with double coverage of the DRAM-bound
// pointer chasers (mcf, mcf-17) where idle-cycle elision skips most. The
// cycle-exact snapshot tests (internal/ooo/golden_test.go), the replay
// equivalence matrix, and `tracegen -suite` all iterate this one list so a
// trace dumped by the tool is exactly a golden-matrix input.
func GoldenMatrix() []string {
	return []string{
		"omnetpp", "mcf", "gcc", "hmmer", "sjeng", "libquantum",
		"milc", "sphinx3", "leela", "lbm", "cassandra", "hadoop",
		"mcf-17",
	}
}

// ByCategory returns the workloads of one family.
func ByCategory(c Category) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload by its name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.name
	}
	sort.Strings(out)
	return out
}

// Validate builds every workload program and checks it, returning the first
// error (used by tests and cmd/tracegen).
func Validate() error {
	for _, w := range All() {
		p := w.Build()
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %s: %w", w.Name, err)
		}
	}
	return nil
}
