package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fvp"
	"fvp/internal/store"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs              submit one spec or {"runs":[...]}; ?wait=1 blocks
//	GET    /v1/runs              list jobs; ?state=queued|running|done|failed|canceled filters
//	GET    /v1/runs/{id}         job status + result (+ progress while running)
//	GET    /v1/runs/{id}/trace   the job's pipeline-trace artifact (submit with "trace":true)
//	DELETE /v1/runs/{id}         cancel a job
//	GET    /v1/workloads         the study list
//	GET    /v1/predictors        predictor configurations + storage budgets
//	GET    /v1/metrics           Prometheus text exposition
//	GET    /healthz              liveness + capacity (unversioned by convention)
//
// The pre-versioning unversioned paths (/runs, /workloads, /predictors,
// /metrics) remain as aliases that answer identically but add a
// Deprecation header and a Link to their /v1 successor; new clients
// should use /v1 only.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/runs", s.handleSubmit)
	route("GET /v1/runs", s.handleList)
	route("GET /v1/runs/{id}", s.handleGet)
	route("GET /v1/runs/{id}/trace", s.handleTrace)
	route("DELETE /v1/runs/{id}", s.handleCancel)
	route("GET /v1/workloads", s.handleWorkloads)
	route("GET /v1/predictors", s.handlePredictors)
	route("GET /v1/metrics", s.handleMetrics)
	route("GET /healthz", s.handleHealthz)

	legacy := func(pattern, successor string, h http.HandlerFunc) {
		route(pattern, deprecated(successor, h))
	}
	legacy("POST /runs", "/v1/runs", s.handleSubmit)
	legacy("GET /runs", "/v1/runs", s.handleList)
	legacy("GET /runs/{id}", "/v1/runs/{id}", s.handleGet)
	legacy("DELETE /runs/{id}", "/v1/runs/{id}", s.handleCancel)
	legacy("GET /workloads", "/v1/workloads", s.handleWorkloads)
	legacy("GET /predictors", "/v1/predictors", s.handlePredictors)
	legacy("GET /metrics", "/v1/metrics", s.handleMetrics)
	return mux
}

// deprecated wraps a legacy-path handler, announcing the successor route
// per RFC 8594 (Sunset/Deprecation link relations): the response carries
// "Deprecation: true" plus a Link with rel="successor-version", so clients
// and proxies can flag callers still on pre-versioned paths.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// instrument records per-endpoint request counts and latency, and feeds
// the fvpd_request_seconds{path,outcome} latency histogram — the series
// a deployment reads its p50/p99 against the -slo-target from.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		s.http.observe(endpoint, d)
		s.reqHist.With(`path=` + strconv.Quote(endpoint) + `,outcome="` + outcomeLabel(rec.code) + `"`).
			Observe(d.Seconds())
	})
}

// statusRecorder captures the response code for the outcome label; a
// handler that never calls WriteHeader implicitly answered 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// outcomeLabel buckets a status code into the histogram's outcome label:
// server-side failures must not pollute the SLO series of successful
// requests, and client errors (quota 429s, bad specs) are neither.
func outcomeLabel(code int) string {
	switch {
	case code >= 500:
		return "server_error"
	case code >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// ParseRuns decodes a POST /v1/runs body: either a single RunRequest
// object or a batch envelope {"runs":[...]}. legacy reports whether any
// request spells its sampling plan with the deprecated flat sample_*
// fields instead of the nested "sampling" block, so callers can signal
// deprecation on the response.
func ParseRuns(raw []byte) (reqs []RunRequest, legacy bool, err error) {
	var batch struct {
		Runs []RunRequest `json:"runs"`
	}
	if err := json.Unmarshal(raw, &batch); err == nil && batch.Runs != nil {
		reqs = batch.Runs
	} else {
		var one RunRequest
		if err := json.Unmarshal(raw, &one); err != nil {
			return nil, false, errors.New("simd: body must be a run spec or {\"runs\":[...]}")
		}
		reqs = []RunRequest{one}
	}
	for _, r := range reqs {
		if r.legacySampling() {
			legacy = true
			break
		}
	}
	return reqs, legacy, nil
}

// MarkSamplingDeprecated stamps the RFC 8594-style deprecation signal
// for requests still using the flat sample_* fields.
func MarkSamplingDeprecated(h http.Header) {
	h.Set("Deprecation", "true")
	h.Set("Link", `</v1/runs>; rel="successor-version"; title="use the nested sampling{} block instead of flat sample_* fields"`)
}

// WriteSubmitError renders a SubmitBatch error with the API's status
// code and header conventions: 429 + Retry-After for per-tenant quota
// rejections, 503 + Retry-After for global backpressure and shutdown,
// 500 for durable-store refusals, 400 for validation errors.
func WriteSubmitError(w http.ResponseWriter, err error) {
	var qe *QuotaError
	switch {
	case errors.As(err, &qe):
		secs := int(qe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		w.Header().Set("X-Fvpd-Tenant", qe.Tenant)
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrStore):
		// The durable store refused the enqueue; nothing was admitted for
		// this request and the client should not retry blindly.
		writeError(w, http.StatusInternalServerError, err)
	default:
		// Validation errors (unknown names, empty batch) are client errors.
		writeError(w, http.StatusBadRequest, err)
	}
}

// AwaitBatch blocks until every submitted job in statuses finishes,
// returning their final states. A ctx cancellation (client disconnect)
// cancels the not-yet-finished jobs and returns the ctx error.
func (s *Service) AwaitBatch(ctx context.Context, statuses []JobStatus) ([]JobStatus, error) {
	for i, st := range statuses {
		final, err := s.Wait(ctx, st.ID)
		statuses[i] = final
		if err != nil {
			for _, rest := range statuses[i+1:] {
				s.Cancel(rest.ID)
			}
			return statuses, err
		}
	}
	return statuses, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs, legacy, err := ParseRuns(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if legacy {
		MarkSamplingDeprecated(w.Header())
	}
	statuses, err := s.SubmitBatched(reqs)
	if err != nil {
		WriteSubmitError(w, err)
		return
	}

	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, SubmitResponse{Jobs: statuses})
		return
	}
	// Wait mode: block until every job finishes. A client disconnect
	// cancels the request context, which cancels the waited-on jobs —
	// and with them any simulation nobody else is interested in.
	statuses, err = s.AwaitBatch(r.Context(), statuses)
	if err != nil {
		return // client is gone; nothing to write
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Jobs: statuses})
}

// listStates are the values accepted by GET /v1/runs?state=.
var listStates = map[string]State{
	"queued":   StateQueued,
	"running":  StateRunning,
	"done":     StateDone,
	"failed":   StateFailed,
	"canceled": StateCanceled,
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	var filter State
	if q := r.URL.Query().Get("state"); q != "" {
		st, ok := listStates[q]
		if !ok {
			writeError(w, http.StatusBadRequest,
				errors.New("simd: state must be one of queued|running|done|failed|canceled"))
			return
		}
		filter = st
	}
	writeJSON(w, http.StatusOK, JobList{Jobs: s.List(filter)})
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	rc, err := s.OpenArtifact(r.PathValue("id"), "trace")
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, errors.New("simd: no trace for this job"))
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/json")
	io.Copy(w, rc)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("simd: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.Cancel(id) {
		st, _ := s.Get(id)
		writeJSON(w, http.StatusOK, st)
		return
	}
	if st, ok := s.Get(id); ok {
		// Already terminal: canceling is a no-op, report current state.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeError(w, http.StatusNotFound, errors.New("simd: no such job"))
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fvp.Workloads())
}

func (s *Service) handlePredictors(w http.ResponseWriter, r *http.Request) {
	ps := fvp.Predictors()
	out := make([]PredictorInfo, len(ps))
	for i, p := range ps {
		bytes, _ := fvp.StorageBytes(p)
		out[i] = PredictorInfo{Name: string(p), StorageBytes: bytes}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:    "ok",
		Workers:   s.Workers(),
		QueueFree: s.QueueFree(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.WriteMetrics(w)
}
