package simd

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fvp"
)

// specKey returns the content address of a run: a hash of the normalized
// spec, so two requests that describe the same simulation — including
// ones that spell defaults differently — collapse to one cache entry.
func specKey(s fvp.RunSpec) string {
	n := s.Normalized()
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d|%d|%s|%d",
		n.Workload, n.Machine, n.Predictor, n.WarmupInsts, n.MeasureInsts,
		n.WarmupMode, n.Regions)))
	return hex.EncodeToString(sum[:16])
}

// resultCache is an LRU map from spec key to finished metrics. It is not
// self-locking; the Service's mutex guards every call.
type resultCache struct {
	max   int
	order *list.List               // front = most recent
	byKey map[string]*list.Element // value: *cacheEntry
}

type cacheEntry struct {
	key     string
	metrics fvp.Metrics
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (fvp.Metrics, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return fvp.Metrics{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).metrics, true
}

// has is get without the recency bump — used for capacity pre-checks.
func (c *resultCache) has(key string) bool {
	_, ok := c.byKey[key]
	return ok
}

func (c *resultCache) put(key string, m fvp.Metrics) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).metrics = m
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, metrics: m})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }
