package simd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fvp"
)

// specKey returns the content address of a run: a hash of the normalized
// spec, so two requests that describe the same simulation — including
// ones that spell defaults differently — collapse to one cache entry.
// The key doubles as the ResultStore/BlobStore address, so cached results
// written by one process are found by the next when the store is durable.
// SpecKey is the exported form for layers above the service: the
// cluster router consistent-hashes it to pick a run's owner node, so
// ownership, dedup, and caching all shard on the same address.
func SpecKey(s fvp.RunSpec) string { return specKey(s) }

func specKey(s fvp.RunSpec) string {
	n := s.Normalized()
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d|%d|%s|%d|%d|%d|%d|%g|%d|%d",
		n.Workload, n.Machine, n.Predictor, n.WarmupInsts, n.MeasureInsts,
		n.WarmupMode, n.Regions,
		n.SampleUnits, n.SampleUnitInsts, n.SampleWarmupInsts,
		n.SampleTargetCI, n.SampleMaxUnits, n.SampleSeed)))
	return hex.EncodeToString(sum[:16])
}
