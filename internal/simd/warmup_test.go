package simd

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"fvp"
)

// Warmup mode and region count are part of a run's identity: same
// workload, different fast-forward strategy, different (if close) results.
func TestSpecKeyWarmupFields(t *testing.T) {
	base := fvp.RunSpec{Workload: "omnetpp", WarmupInsts: 1_000, MeasureInsts: 5_000}

	explicit := base
	explicit.WarmupMode = "detailed"
	explicit.Regions = 1
	if specKey(base) != specKey(explicit) {
		t.Error("implicit warmup defaults must hash equal to their explicit form")
	}

	functional := base
	functional.WarmupMode = "functional"
	if specKey(base) == specKey(functional) {
		t.Error("different warmup modes must hash differently")
	}

	regions := base
	regions.Regions = 4
	if specKey(base) == specKey(regions) {
		t.Error("different region counts must hash differently")
	}
}

func TestHTTPWarmupValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"omnetpp","warmup_mode":"fnctional"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misspelled warmup mode: HTTP %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `did you mean \"functional\"`) {
		t.Errorf("400 body should suggest the closest mode, got %s", body)
	}

	resp2, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"omnetpp","regions":65}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("over-cap regions: HTTP %d, want 400", resp2.StatusCode)
	}
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "regions") {
		t.Errorf("400 body should name the regions field, got %s", body2)
	}
}

// A functional-warmup region-parallel run must flow through the service
// end to end: spec fields survive the round trip, the result carries the
// warmup labels, and the fleet-level fast-forward counter advances.
func TestHTTPFunctionalRunReportsFFWork(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, out := postRuns(t, srv.URL+"/v1/runs?wait=1",
		`{"workload":"hmmer","warmup_insts":2000,"measure_insts":10000,`+
			`"warmup_mode":"functional","regions":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].State != StateDone {
		t.Fatalf("jobs: %+v", out.Jobs)
	}
	job := out.Jobs[0]
	if job.Spec.WarmupMode != "functional" || job.Spec.Regions != 2 {
		t.Errorf("normalized spec lost warmup fields: %+v", job.Spec)
	}
	m := job.Metrics
	if m == nil {
		t.Fatal("done job has no metrics")
	}
	if m.WarmupMode != "functional" {
		t.Errorf("metrics WarmupMode = %q, want functional", m.WarmupMode)
	}
	if m.FFInsts == 0 {
		t.Error("functional region run reported no fast-forwarded instructions")
	}

	if got := metricValue(t, srv.URL+"/v1", "fvpd_sim_ff_insts_total"); got != float64(m.FFInsts) {
		t.Errorf("fvpd_sim_ff_insts_total = %g, want %d", got, m.FFInsts)
	}
}
