package simd

import (
	"sync"
	"time"

	"fvp/internal/telemetry"
)

// batcher is the edge micro-batcher: concurrent SubmitBatched callers
// are parked for up to one window (or until max requests pend) and
// flushed as a single SubmitBatch — one admission pass, one tenant-quota
// transaction, one durable JobStore append (one fsync on the disk
// backend). Under a flood of small submits this turns the dominant
// per-request cost, the synchronous fsync, into a per-window cost.
//
// Coalescing is a fast path, never a semantic: each caller's group keeps
// its own all-or-nothing boundary. When the merged batch is rejected and
// more than one group was aboard, the flush degrades to per-group
// submits so one tenant's quota breach (or one malformed spec) cannot
// poison the strangers sharing its window.
type batcher struct {
	svc    *Service
	window time.Duration
	max    int // flush immediately at this many pending requests

	// sizes is fvpd_batch_size: requests coalesced per flush. A p50 near
	// 1 means the window is not seeing concurrency; widen it or stop
	// paying the parking latency.
	sizes *telemetry.Hist

	mu      sync.Mutex
	pending []*batchGroup
	nreq    int
	timer   *time.Timer
	closed  bool
}

// batchGroup is one caller's request slice riding a flush, with the
// channel its verdict comes back on.
type batchGroup struct {
	reqs []RunRequest
	ch   chan batchResult
}

type batchResult struct {
	sts []JobStatus
	err error
}

func newBatcher(svc *Service, window time.Duration, max int) *batcher {
	return &batcher{svc: svc, window: window, max: max, sizes: telemetry.NewSizes()}
}

// submit parks the caller's group until its flush completes and returns
// that group's share of the batch outcome. The first group into an empty
// window arms the flush timer; hitting max flushes immediately.
func (b *batcher) submit(reqs []RunRequest) ([]JobStatus, error) {
	b.mu.Lock()
	if b.closed {
		// Shutdown raced the submit: bypass the (stopped) batcher so the
		// caller still gets the service's own ErrClosed decision.
		b.mu.Unlock()
		return b.svc.SubmitBatch(reqs)
	}
	g := &batchGroup{reqs: reqs, ch: make(chan batchResult, 1)}
	b.pending = append(b.pending, g)
	b.nreq += len(reqs)
	var groups []*batchGroup
	if b.nreq >= b.max {
		groups = b.takeLocked()
	} else if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.window, b.flushTimer)
	}
	b.mu.Unlock()
	b.flush(groups)
	r := <-g.ch
	return r.sts, r.err
}

// takeLocked claims the pending window for a flush and disarms its timer.
func (b *batcher) takeLocked() []*batchGroup {
	groups := b.pending
	b.pending = nil
	b.nreq = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return groups
}

func (b *batcher) flushTimer() {
	b.mu.Lock()
	groups := b.takeLocked()
	b.mu.Unlock()
	b.flush(groups)
}

// flush submits the window's groups as one merged batch and slices the
// statuses back per group; on a merged-batch rejection with multiple
// groups aboard it re-submits per group so each caller gets its own
// verdict.
func (b *batcher) flush(groups []*batchGroup) {
	if len(groups) == 0 {
		return
	}
	total := 0
	for _, g := range groups {
		total += len(g.reqs)
	}
	b.sizes.Observe(float64(total))
	if len(groups) == 1 {
		sts, err := b.svc.SubmitBatch(groups[0].reqs)
		groups[0].ch <- batchResult{sts, err}
		return
	}
	merged := make([]RunRequest, 0, total)
	for _, g := range groups {
		merged = append(merged, g.reqs...)
	}
	sts, err := b.svc.SubmitBatch(merged)
	if err == nil {
		off := 0
		for _, g := range groups {
			g.ch <- batchResult{sts: sts[off : off+len(g.reqs)]}
			off += len(g.reqs)
		}
		return
	}
	for _, g := range groups {
		sts, err := b.svc.SubmitBatch(g.reqs)
		g.ch <- batchResult{sts, err}
	}
}

// close flushes the pending window synchronously and stops accepting
// groups. Drain/Close call it before refusing submits, so a caller
// parked mid-window always gets a decision rather than hanging.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	groups := b.takeLocked()
	b.mu.Unlock()
	b.flush(groups)
}
