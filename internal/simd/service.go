package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fvp"
	"fvp/internal/store"
	"fvp/internal/telemetry"
)

// Errors surfaced to submitters. The HTTP layer maps ErrQueueFull to
// 503 + Retry-After, ErrClosed to 503 without one, and ErrStore to 500.
var (
	ErrQueueFull = errors.New("simd: run queue is full, retry later")
	ErrClosed    = errors.New("simd: service is shutting down")
	// ErrStore wraps a durable-store failure during admission: the
	// service could not make the job crash-safe, so it refused it.
	ErrStore = errors.New("simd: durable store failure")
)

// RunFunc executes one simulation; the default is fvp.RunContext. Tests
// substitute a counting stub to assert single-flight behavior.
type RunFunc func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error)

// DefaultCacheSize is the result-cache entry cap when Config.CacheSize
// is 0; cmd/fvpd uses it to size the disk backend identically.
const DefaultCacheSize = 1024

// traceMaxInsts bounds the per-instruction pipeline timeline captured
// for a run submitted with "trace": true (the same knob as fvpsim
// -trace-insts, fixed service-side so one request can't balloon memory).
const traceMaxInsts = 20_000

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker-pool size; default runtime.NumCPU().
	Workers int
	// QueueSize bounds queued-but-not-running unique runs; submits beyond
	// it fail with ErrQueueFull. Default 4×Workers.
	QueueSize int
	// CacheSize bounds the content-addressed result cache's entry count.
	// Default DefaultCacheSize. Ignored when Stores.Results is provided.
	CacheSize int
	// CacheBytes additionally bounds the cache's payload bytes (spec keys
	// plus encoded results); 0 means entries-only. Ignored when
	// Stores.Results is provided.
	CacheBytes int64
	// MaxFinishedJobs bounds how many terminal job records are retained
	// for GET /v1/runs/{id}; the oldest are evicted first. Default 4096.
	MaxFinishedJobs int
	// Stores are the persistence backends. Nil fields default to the
	// in-memory implementations, which preserve the original
	// single-process semantics exactly; cmd/fvpd -data-dir swaps in the
	// crash-safe disk backends (store/disk). The service takes ownership
	// and closes them on Close/Drain.
	Stores store.Stores
	// NodeID names this service instance in a cluster; when set, job IDs
	// are rendered as "<node>.j-<n>" so any peer can route a GET/DELETE
	// by ID to the owning node. Empty (the default) keeps the bare "j-<n>"
	// wire format.
	NodeID string
	// Tenants is the per-tenant admission-control table. The zero value
	// imposes no quotas: every tenant is unlimited and the queue is a
	// single FIFO, exactly the pre-tenancy behavior.
	Tenants TenantConfig
	// BatchWindow enables the edge micro-batcher: concurrent submits are
	// coalesced for up to this long (or until BatchMax requests pend)
	// into one admission + durable-store transaction, amortizing quota
	// charging and the per-batch fsync. 0 (the default) disables
	// coalescing; every submit is its own transaction, as before.
	BatchWindow time.Duration
	// BatchMax caps the requests coalesced into one flush; default 256.
	// A full batch flushes immediately without waiting out the window.
	BatchMax int
	// SLOTarget is the advertised request-latency objective; it only
	// annotates the fvpd_request_seconds HELP text so dashboards and
	// humans read p99 against the intended target. 0 means unstated.
	SLOTarget time.Duration
	// Run overrides the simulation function (tests only).
	Run RunFunc
	// clock overrides time.Now for token-bucket refill (tests only).
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 4096
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.Stores.Jobs == nil {
		c.Stores.Jobs = store.NewMemoryJobStore()
	}
	if c.Stores.Results == nil {
		c.Stores.Results = store.NewMemoryResultStore(c.CacheSize, c.CacheBytes)
	}
	if c.Stores.Blobs == nil {
		c.Stores.Blobs = store.NewMemoryBlobStore(0)
	}
	if c.Run == nil {
		c.Run = fvp.RunContext
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// job is the internal record of one submitted RunRequest. Identical
// concurrent specs share one execution: the first becomes the leader
// (the only job a worker runs); later ones attach as followers and are
// completed from the leader's result.
type job struct {
	id        string
	numID     uint64 // the JobStore's monotonic number behind id
	key       string
	tenant    string      // admission-control attribution ("" = anonymous)
	spec      fvp.RunSpec // normalized
	trace     bool        // leader-only: record a pipeline-trace artifact
	state     State
	cached    bool
	result    *fvp.Metrics
	err       error
	done      chan struct{}
	retained  bool
	artifacts []string

	// Leader-only fields. ctx governs the simulation; live counts the
	// not-yet-canceled jobs (leader + followers) interested in it — when
	// it reaches zero the execution is canceled. progress is the gauge the
	// worker attaches for the duration of the simulation.
	ctx       context.Context
	cancel    context.CancelFunc
	followers []*job
	live      int
	progress  *progressGauge

	// leader points a follower at its leader; nil on leaders.
	leader *job
}

// jobID renders a JobStore number as the wire-visible job ID. The bare
// format predates durable stores; recovered jobs keep their pre-crash
// numbers. In cluster mode (NodeID set) the ID carries the node name so
// peers can route status lookups: "<node>.j-<n>".
func (s *Service) jobID(n uint64) string {
	if s.cfg.NodeID != "" {
		return fmt.Sprintf("%s.j-%08d", s.cfg.NodeID, n)
	}
	return fmt.Sprintf("j-%08d", n)
}

// SplitJobID splits a wire job ID into its node prefix ("" for the bare
// pre-cluster format) and the node-local remainder.
func SplitJobID(id string) (node, local string) {
	if i := strings.LastIndex(id, ".j-"); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}

// traceKey is the blob key of a run's pipeline-trace artifact. Keyed by
// spec (not job), so the artifact is content-addressed like the result:
// any later job on the same spec serves the same trace.
func traceKey(specKey string) string { return "trace-" + specKey }

// Service is the batch-simulation engine: submit side (dedup, cache,
// bounded queue), a worker pool, job-table bookkeeping, and the durable
// store seams. All mutable state is guarded by mu; simulations run
// outside the lock. Job lifecycle transitions are mirrored into the
// JobStore and completed results into the ResultStore, so with the disk
// backends a crash re-dispatches interrupted jobs and keeps the cache.
type Service struct {
	cfg Config
	st  store.Stores

	mu        sync.Mutex
	cond      *sync.Cond
	tq        *tenants        // per-tenant queued leaders, WRR-drained
	jobs      map[string]*job // every known job by ID
	finished  []string        // terminal job IDs, oldest first (retention)
	inflight  map[string]*job // spec key → leader not yet finalized
	met       counters
	closed    bool
	http      *httpStats
	recovered uint64 // jobs re-dispatched from the JobStore at boot

	// batch is the edge micro-batcher; nil unless Config.BatchWindow > 0.
	batch *batcher
	// reqHist is fvpd_request_seconds{path,outcome}: end-to-end request
	// latency per route pattern, the series p50/p99-vs-SLO reads come from.
	reqHist *telemetry.Vec

	// metricsExtra are exposition appenders registered by layers above
	// the service (the cluster router adds its forwarding families), so
	// GET /v1/metrics stays the single scrape target.
	metricsExtra []func(io.Writer)

	// storeErrs counts non-fatal store failures (a result or artifact
	// that could not be persisted); atomic because the blob writer runs
	// outside mu.
	storeErrs atomic.Uint64

	baseCtx    context.Context
	stop       context.CancelFunc
	wg         sync.WaitGroup
	closeStore sync.Once
}

// New starts a service with cfg.Workers simulation workers, re-admitting
// any jobs the JobStore recovered from a previous process (queued or
// running at crash time) ahead of new submissions. Callers own its
// lifetime: Close (or Drain) must be called to release the workers and
// the stores.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		st:       cfg.Stores,
		tq:       newTenants(cfg.Tenants),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		baseCtx:  ctx,
		stop:     cancel,
		http:     newHTTPStats(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reqHist = telemetry.NewVec(telemetry.NewLatency)
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(s, cfg.BatchWindow, cfg.BatchMax)
	}
	s.recoverJobs()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// recoverJobs re-admits the JobStore's surviving jobs before the workers
// start: jobs that were queued or running when the last process died are
// re-dispatched under their original IDs (recovery ignores QueueSize —
// the work was already admitted once). A recovered job whose result
// landed in the ResultStore before the crash completes immediately as a
// cache hit.
func (s *Service) recoverJobs() {
	recs := s.st.Jobs.Recover()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		var req RunRequest
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			s.storeSetState(rec.ID, store.JobFailed, "recovery: unreadable spec: "+err.Error())
			continue
		}
		if flat, err := req.Flattened(); err != nil {
			s.storeSetState(rec.ID, store.JobFailed, "recovery: "+err.Error())
			continue
		} else {
			req = flat
		}
		if err := fvp.Validate(req.RunSpec); err != nil {
			// The binary restarted into a version that no longer knows this
			// spec; fail the job durably rather than crash-looping on it.
			s.storeSetState(rec.ID, store.JobFailed, "recovery: "+err.Error())
			continue
		}
		spec := req.RunSpec.Normalized()
		j := &job{
			id: s.jobID(rec.ID), numID: rec.ID, key: rec.Key, spec: spec,
			tenant: rec.Tenant, trace: req.Trace, done: make(chan struct{}),
		}
		s.jobs[j.id] = j
		s.recovered++

		if m, ok := s.cachedMetricsLocked(rec.Key); ok {
			j.state = StateDone
			j.cached = true
			j.result = m
			j.artifacts = s.artifactsLocked(j.key)
			s.met.done++
			close(j.done)
			s.retainLocked(j)
			s.storeSetState(rec.ID, store.JobDone, "")
			continue
		}
		if leader := s.inflight[rec.Key]; leader != nil {
			j.state = leader.state
			j.cached = true
			j.leader = leader
			leader.followers = append(leader.followers, j)
			leader.live++
			s.tq.get(j.tenant).inflight++
			continue
		}
		s.startLeaderLocked(j, req.TimeoutMS)
	}
}

// Submit validates, deduplicates, and enqueues one run, returning the
// job's initial status. A cached or deduplicated submit never consumes a
// queue slot. Returns *fvp.UnknownNameError for bad names, ErrQueueFull
// when the queue is at capacity, ErrClosed during shutdown, ErrStore when
// the durable store refused the job.
func (s *Service) Submit(req RunRequest) (JobStatus, error) {
	sts, err := s.SubmitBatch([]RunRequest{req})
	if err != nil {
		return JobStatus{}, err
	}
	return sts[0], nil
}

// SubmitBatched routes one caller's requests through the edge
// micro-batcher when one is configured (Config.BatchWindow > 0) and
// directly to SubmitBatch otherwise. Coalesced callers keep their
// individual semantics — a rejection that only applies to the merged
// batch (another caller's quota, a stranger's validation error) degrades
// to per-caller submits rather than poisoning everyone in the window.
// The HTTP submit path uses this entry point.
func (s *Service) SubmitBatched(reqs []RunRequest) ([]JobStatus, error) {
	if s.batch == nil || len(reqs) == 0 {
		return s.SubmitBatch(reqs)
	}
	return s.batch.submit(reqs)
}

// SubmitBatch submits a batch atomically with respect to queue capacity,
// tenant quotas, and the durable store: either every new unique run is
// admitted or the whole batch is rejected — with *QuotaError when a
// tenant is over its admission budget, ErrQueueFull when the global
// queue is at capacity (cached and deduplicated entries need neither
// tokens nor a slot), ErrStore when the durable store refused the
// batch's single append. All fresh leaders in the batch share one
// JobStore append — one fsync on the disk backend however many submits
// the micro-batcher coalesced. Validation errors also reject the whole
// batch.
func (s *Service) SubmitBatch(reqs []RunRequest) ([]JobStatus, error) {
	if len(reqs) == 0 {
		return nil, errors.New("simd: empty batch")
	}
	reqs = append([]RunRequest(nil), reqs...)
	for i, r := range reqs {
		flat, err := r.Flattened()
		if err != nil {
			return nil, err
		}
		reqs[i] = flat
		if err := fvp.Validate(flat.RunSpec); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}

	// Capacity pre-check: count the batch's new unique leaders, per
	// tenant, so the admit decision is all-or-nothing.
	need := 0
	seen := make(map[string]bool)
	perTenant := make(map[string]int)
	for _, r := range reqs {
		key := specKey(r.RunSpec)
		if s.st.Results.Has(key) || s.inflight[key] != nil || seen[key] {
			continue
		}
		seen[key] = true
		need++
		perTenant[r.Tenant]++
	}
	if err := s.admitTenantsLocked(perTenant); err != nil {
		return nil, err
	}
	// Refund the tokens charged above: used on every nothing-was-admitted
	// rejection below.
	refund := func() {
		for tenant, n := range perTenant {
			s.tq.get(tenant).bucket.tokens += float64(n)
		}
	}
	if s.tq.queued+need > s.cfg.QueueSize {
		refund()
		return nil, ErrQueueFull
	}

	// Phase 1: classify every request in submission order, allocating its
	// job number as it is classified so IDs keep their pre-batch sequence,
	// and marshal the fresh leaders' durable records. Nothing is visible
	// yet — a store refusal below rejects the whole batch cleanly.
	const (
		kCached   = iota // result already in the cache
		kLeader          // fresh unique spec: needs a durable record
		kFollower        // attaches to a leader already in flight
		kDup             // duplicate of a leader earlier in this batch
	)
	type admission struct {
		kind  int
		numID uint64
		key   string
		spec  fvp.RunSpec
	}
	adm := make([]admission, len(reqs))
	pending := make(map[string]bool)
	var records []store.JobRecord
	for i, r := range reqs {
		spec := r.RunSpec.Normalized()
		key := specKey(spec)
		a := admission{numID: s.st.Jobs.NextID(), key: key, spec: spec}
		switch {
		case s.st.Results.Has(key):
			a.kind = kCached
		case s.inflight[key] != nil:
			a.kind = kFollower
		case pending[key]:
			a.kind = kDup
		default:
			a.kind = kLeader
			pending[key] = true
			encoded, err := json.Marshal(r)
			if err != nil {
				refund()
				return nil, fmt.Errorf("%w: encoding spec: %v", ErrStore, err)
			}
			records = append(records, store.JobRecord{ID: a.numID, Key: key, Tenant: r.Tenant, Spec: encoded})
		}
		adm[i] = a
	}

	// Phase 2: one durable append covers every fresh leader in the batch —
	// the single fsync that makes coalesced admission cheap. On failure
	// nothing was admitted.
	if err := s.st.Jobs.AppendBatch(records); err != nil {
		refund()
		return nil, fmt.Errorf("%w: %v", ErrStore, err)
	}

	// Phase 3: materialize the jobs in order. A batch-internal duplicate
	// resolves as a follower because its leader — an earlier index — is in
	// s.inflight by the time it is reached.
	out := make([]JobStatus, len(reqs))
	for i, r := range reqs {
		a := adm[i]
		j := &job{
			id: s.jobID(a.numID), numID: a.numID, key: a.key, spec: a.spec,
			tenant: r.Tenant, trace: r.Trace, done: make(chan struct{}),
		}
		switch a.kind {
		case kLeader:
			s.jobs[j.id] = j
			s.met.cacheMisses++
			s.startLeaderLocked(j, r.TimeoutMS)
		case kFollower, kDup:
			s.attachFollowerLocked(j, s.inflight[a.key])
		case kCached:
			if m, ok := s.cachedMetricsLocked(a.key); ok {
				s.jobs[j.id] = j
				j.state = StateDone
				j.cached = true
				j.result = m
				j.artifacts = s.artifactsLocked(a.key)
				s.met.cacheHits++
				s.met.done++
				close(j.done)
				s.retainLocked(j)
				break
			}
			// Has said yes but the record would not decode (version skew in
			// a persistent store) or was evicted since classification. Fall
			// back to the pre-batch behavior for this corner: attach to a
			// same-key leader degraded earlier in this loop, or become a
			// singly-appended leader. Tokens were never charged for it —
			// exactly as before the batch refactor.
			if leader := s.inflight[a.key]; leader != nil {
				s.attachFollowerLocked(j, leader)
				break
			}
			encoded, err := json.Marshal(r)
			if err == nil {
				err = s.st.Jobs.Enqueue(store.JobRecord{ID: a.numID, Key: a.key, Tenant: r.Tenant, Spec: encoded})
			}
			if err != nil {
				s.cond.Broadcast()
				return nil, fmt.Errorf("%w: %v", ErrStore, err)
			}
			s.jobs[j.id] = j
			s.met.cacheMisses++
			s.startLeaderLocked(j, r.TimeoutMS)
		}
		out[i] = s.status(j)
	}
	s.cond.Broadcast()
	return out, nil
}

// attachFollowerLocked attaches j to an in-flight leader; finalizeLocked
// completes it from the leader's outcome.
func (s *Service) attachFollowerLocked(j, leader *job) {
	s.jobs[j.id] = j
	j.state = leader.state // queued or running
	j.cached = true
	j.leader = leader
	leader.followers = append(leader.followers, j)
	leader.live++
	s.tq.get(j.tenant).inflight++
	s.met.cacheHits++
}

// admitTenantsLocked charges each tenant's token bucket for its share of
// the batch's new unique runs, all-or-nothing: if any tenant is over
// quota, tenants already charged are refunded and the whole batch is
// rejected with that tenant's *QuotaError.
func (s *Service) admitTenantsLocked(perTenant map[string]int) error {
	now := s.cfg.clock()
	charged := make([]string, 0, len(perTenant))
	for tenant, n := range perTenant {
		ts := s.tq.get(tenant)
		if err := ts.admit(n, now); err != nil {
			ts.rejected += uint64(n)
			for _, t := range charged {
				s.tq.get(t).bucket.tokens += float64(perTenant[t])
			}
			return err
		}
		if ts.capped && ts.quota.Rate > 0 {
			charged = append(charged, tenant)
		}
	}
	return nil
}

// startLeaderLocked gives a leader its execution context and queues it.
func (s *Service) startLeaderLocked(j *job, timeoutMS int64) {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(timeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j.state = StateQueued
	j.ctx, j.cancel = ctx, cancel
	j.live = 1
	s.inflight[j.key] = j
	s.tq.get(j.tenant).inflight++
	s.tq.enqueue(j)
}

// cachedMetricsLocked fetches and decodes a cached result. A record that
// fails to decode (version skew in a persistent store) is treated as a
// miss rather than served corrupt.
func (s *Service) cachedMetricsLocked(key string) (*fvp.Metrics, bool) {
	b, ok := s.st.Results.Get(key)
	if !ok {
		return nil, false
	}
	var m fvp.Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		s.storeErrs.Add(1)
		return nil, false
	}
	return &m, true
}

// artifactsLocked lists the blob keys published for a spec key.
func (s *Service) artifactsLocked(key string) []string {
	if s.st.Blobs.Has(traceKey(key)) {
		return []string{traceKey(key)}
	}
	return nil
}

// storeSetState mirrors a leader's state into the JobStore, counting
// (rather than surfacing) failures: the in-memory job table remains
// authoritative for a live process, durability just degrades.
func (s *Service) storeSetState(numID uint64, state, errMsg string) {
	if err := s.st.Jobs.SetState(numID, state, errMsg); err != nil {
		s.storeErrs.Add(1)
	}
}

// worker pulls leaders off the run queue and simulates them until the
// service closes and the queue drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.tq.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.tq.queued == 0 {
			s.mu.Unlock()
			return
		}
		j := s.tq.dequeue()
		j.setStateLocked(StateRunning)
		j.progress = &progressGauge{target: j.spec.MeasureInsts}
		s.met.running++
		s.storeSetState(j.numID, store.JobRunning, "")
		s.mu.Unlock()

		// Attach a progress gauge to a copy of the spec: the Observer field
		// is json:"-" and outside the cache key, so the simulated work and
		// its identity are untouched. Region-parallel and sampled runs
		// measure their slices concurrently, where interval samples would
		// interleave meaninglessly (the façade rejects the combinations), so
		// they run unobserved — and untraced, for the same reason.
		spec := j.spec
		var tracer *fvp.PipeTrace
		if spec.Regions <= 1 && spec.SampleUnits == 0 && spec.SampleTargetCI == 0 {
			spec.Observer = j.progress
			if j.trace {
				tracer = fvp.NewPipeTrace(traceMaxInsts)
				spec.Tracer = tracer
			}
		}

		var m fvp.Metrics
		err := j.ctx.Err()
		start := time.Now()
		if err == nil {
			m, err = s.cfg.Run(j.ctx, spec)
		}
		elapsed := time.Since(start)

		if err == nil && tracer != nil {
			// Publish the trace before the result: once the job reads done,
			// its artifact list is stable.
			var buf bytes.Buffer
			if terr := tracer.WriteChromeTrace(&buf); terr != nil {
				s.storeErrs.Add(1)
			} else if perr := s.st.Blobs.Put(traceKey(j.key), buf.Bytes()); perr != nil {
				s.storeErrs.Add(1)
			}
		}

		s.mu.Lock()
		s.met.running--
		if err == nil {
			// Persist the result before the done record: recovery must never
			// find a durably-done job without its result.
			if encoded, merr := json.Marshal(m); merr != nil {
				s.storeErrs.Add(1)
			} else if perr := s.st.Results.Put(j.key, encoded); perr != nil {
				s.storeErrs.Add(1)
			}
			s.met.simCycles += m.Cycles
			s.met.simSkippedCycles += m.SkippedCycles
			s.met.simInsts += m.Insts
			s.met.simFFInsts += m.FFInsts
			if m.Sampling != nil {
				s.met.simSampledInsts += m.Sampling.SampledInsts
			}
			s.met.simSeconds += elapsed.Seconds()
		}
		s.finalizeLocked(j, m, err)
		s.mu.Unlock()
	}
}

// setStateLocked moves a leader and its non-terminal followers to st.
func (j *job) setStateLocked(st State) {
	if !j.state.terminal() {
		j.state = st
	}
	for _, f := range j.followers {
		if !f.state.terminal() {
			f.state = st
		}
	}
}

// finalizeLocked completes a leader and all its followers from one
// execution outcome, releasing the in-flight slot and the ctx timer, and
// mirrors the outcome into the JobStore.
func (s *Service) finalizeLocked(j *job, m fvp.Metrics, err error) {
	delete(s.inflight, j.key)
	j.cancel()

	// The durable record tracks the execution outcome. Followers admitted
	// in this process have no durable record (SetState ignores their
	// IDs); recovered followers do, and must reach a terminal state or
	// the next restart re-admits them.
	outState, outMsg := store.JobDone, ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outState, outMsg = store.JobCanceled, err.Error()
	default:
		outState, outMsg = store.JobFailed, err.Error()
	}

	leaderRecorded := false
	for _, target := range append([]*job{j}, j.followers...) {
		if target.state.terminal() {
			continue
		}
		switch {
		case err == nil:
			target.state = StateDone
			target.result = &m
			target.artifacts = s.artifactsLocked(j.key)
			s.met.done++
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			target.state = StateCanceled
			target.err = err
			s.met.canceled++
		default:
			target.state = StateFailed
			target.err = err
			s.met.failed++
		}
		s.tq.get(target.tenant).inflight--
		close(target.done)
		s.retainLocked(target)
		s.storeSetState(target.numID, outState, outMsg)
		if target == j {
			leaderRecorded = true
		}
	}
	s.retainLocked(j) // leader may have been canceled individually earlier
	if !leaderRecorded {
		// An individually-canceled leader whose execution still completed:
		// record the execution's outcome for its durable record.
		s.storeSetState(j.numID, outState, outMsg)
	}
}

// retainLocked records a terminal job for retention-bounded lookup,
// evicting the oldest terminal records beyond the cap.
func (s *Service) retainLocked(j *job) {
	if j.retained {
		return
	}
	j.retained = true
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxFinishedJobs {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
}

// Cancel cancels one job. Canceling a deduplicated follower only detaches
// that follower; the underlying simulation stops when its last interested
// job is canceled, observed by the cycle loop within a few thousand
// simulated cycles.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.state.terminal() {
		return false
	}
	j.state = StateCanceled
	j.err = context.Canceled
	s.met.canceled++
	s.tq.get(j.tenant).inflight--
	close(j.done)
	s.retainLocked(j)

	leader := j
	if j.leader != nil {
		leader = j.leader
	}
	leader.live--
	if leader.live > 0 {
		return true
	}
	// Last interested party gone: stop the simulation. A queued leader is
	// removed from the run queue eagerly so its slot frees immediately; a
	// running one exits at the cycle loop's next context poll.
	leader.cancel()
	if s.tq.remove(leader) {
		s.finalizeLocked(leader, fvp.Metrics{}, context.Canceled)
	}
	return true
}

// Get returns a job's current status.
func (s *Service) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.status(j), true
}

// List returns the known jobs — bounded by MaxFinishedJobs retention —
// in submission order, optionally filtered to one state. It is how
// recovered-after-restart jobs are observed (GET /v1/runs?state=queued).
func (s *Service) List(state State) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		if state != "" && j.state != state {
			continue
		}
		out = append(out, s.status(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// OpenArtifact streams a job's published artifact (e.g. its pipeline
// trace). Returns store.ErrNotFound when the job exists but published no
// such artifact.
func (s *Service) OpenArtifact(id, name string) (io.ReadCloser, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simd: no such job %q: %w", id, store.ErrNotFound)
	}
	if name != "trace" {
		return nil, store.ErrNotFound
	}
	return s.st.Blobs.Open(traceKey(j.key))
}

// Wait blocks until the job reaches a terminal state or ctx fires. A ctx
// cancellation counts as the waiter abandoning the job — it is canceled
// (detached if deduplicated), which is how a client disconnect on a
// wait-mode request stops the underlying simulation.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("simd: no such job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		s.Cancel(id)
		st, _ := s.Get(id)
		return st, ctx.Err()
	}
	st, _ := s.Get(id)
	return st, nil
}

// Snapshot returns the current service counters.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	results := s.st.Results.Stats()
	// Tenants worth reporting: named, quota-bound, or with history. The
	// lone anonymous unlimited tenant of a pre-tenancy deployment stays
	// invisible so the stats wire form is unchanged.
	var tenants map[string]TenantStats
	for name, ts := range s.tq.byName {
		if name == "" && !ts.capped && ts.rejected == 0 {
			continue
		}
		if tenants == nil {
			tenants = make(map[string]TenantStats, len(s.tq.byName))
		}
		tenants[name] = TenantStats{Inflight: ts.inflight, Rejected: ts.rejected}
	}
	return Stats{
		JobsQueued:       s.tq.queued,
		JobsRunning:      s.met.running,
		Tenants:          tenants,
		JobsDone:         s.met.done,
		JobsFailed:       s.met.failed,
		JobsCanceled:     s.met.canceled,
		JobsRecovered:    s.recovered,
		CacheHits:        s.met.cacheHits,
		CacheMisses:      s.met.cacheMisses,
		CacheEntries:     results.Records,
		CacheBytes:       results.Bytes,
		StoreJobs:        s.st.Jobs.Stats(),
		StoreResults:     results,
		StoreBlobs:       s.st.Blobs.Stats(),
		StoreErrors:      s.storeErrs.Load(),
		SimCycles:        s.met.simCycles,
		SimInsts:         s.met.simInsts,
		SimSeconds:       s.met.simSeconds,
		SimSkippedCycles: s.met.simSkippedCycles,
		SimFFInsts:       s.met.simFFInsts,
		SimSampledInsts:  s.met.simSampledInsts,
	}
}

// QueueFree returns the remaining queue capacity (for health reporting).
func (s *Service) QueueFree() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.cfg.QueueSize - s.tq.queued
	if n < 0 {
		n = 0
	}
	return n
}

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// NodeID returns the cluster node name this service was configured with
// ("" outside cluster mode).
func (s *Service) NodeID() string { return s.cfg.NodeID }

// HasCachedResult reports whether the content-addressed result for a
// spec key is locally cached — its own computation or a received
// replica. The cluster layer uses it to serve replicated hot keys with
// zero forward hops.
func (s *Service) HasCachedResult(key string) bool {
	return s.st.Results.Has(key)
}

// CachedResultBytes returns the encoded cached result for a spec key,
// the payload the cluster layer pushes to ring successors when a key
// runs hot.
func (s *Service) CachedResultBytes(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Results.Get(key)
}

// PutCachedResult installs an encoded result under its spec key — the
// receiving half of hot-result replication. The payload must decode as
// fvp.Metrics; garbage is refused rather than cached. Content
// addressing makes replication trivially coherent: a spec key is the
// hash of a deterministic simulation's input, so its result is
// immutable and a replicated entry can never be stale.
func (s *Service) PutCachedResult(key string, value []byte) error {
	var m fvp.Metrics
	if err := json.Unmarshal(value, &m); err != nil {
		return fmt.Errorf("simd: replicated result for %s undecodable: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.st.Results.Put(key, value); err != nil {
		s.storeErrs.Add(1)
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	return nil
}

// AddMetricsAppender registers fn to run at the end of every metrics
// exposition (WriteMetrics / GET /v1/metrics). Layers above the service —
// the cluster router's per-peer forwarding counters — use it so one
// scrape target covers the whole node.
func (s *Service) AddMetricsAppender(fn func(io.Writer)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metricsExtra = append(s.metricsExtra, fn)
}

// Drain gracefully shuts down: new submits are rejected, queued and
// running jobs finish, workers exit, and the stores are closed. If ctx
// fires first the remaining work is canceled (and finishes as canceled).
func (s *Service) Drain(ctx context.Context) error {
	// Flush the micro-batcher before refusing submits: callers already
	// parked in the window get a real admit/reject decision, and their
	// jobs drain with everything else.
	if s.batch != nil {
		s.batch.close()
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.stop()
		<-drained
	}
	s.stop()
	s.closeStore.Do(func() { s.st.Close() })
	return err
}

// Close shuts down immediately: in-flight simulations are canceled at
// their next context poll and finish in the canceled state, then the
// stores are closed.
func (s *Service) Close() {
	if s.batch != nil {
		s.batch.close()
	}
	s.stop()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.closeStore.Do(func() { s.st.Close() })
}

// progressGauge tracks a running simulation's retirement count. It
// implements fvp.Observer; samples arrive on the simulating goroutine
// while status reads happen under the service lock, so the counter is
// atomic rather than mutex-guarded.
type progressGauge struct {
	retired atomic.Uint64
	target  uint64
}

func (g *progressGauge) OnInterval(m fvp.IntervalMetrics) {
	g.retired.Add(m.Insts)
}

func (g *progressGauge) snapshot() *Progress {
	p := &Progress{RetiredInsts: g.retired.Load(), TargetInsts: g.target}
	if p.TargetInsts > 0 {
		p.Ratio = float64(p.RetiredInsts) / float64(p.TargetInsts)
		if p.Ratio > 1 {
			p.Ratio = 1
		}
	}
	return p
}

// status renders the externally visible snapshot; callers hold s.mu.
func (s *Service) status(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		Spec:      j.spec,
		Tenant:    j.tenant,
		Node:      s.cfg.NodeID,
		Metrics:   j.result,
		Artifacts: j.artifacts,
	}
	if j.state == StateRunning {
		leader := j
		if j.leader != nil {
			leader = j.leader
		}
		if leader.progress != nil {
			st.Progress = leader.progress.snapshot()
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
