package simd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fvp"
)

// Errors surfaced to submitters. The HTTP layer maps ErrQueueFull to
// 503 + Retry-After and ErrClosed to 503 without one.
var (
	ErrQueueFull = errors.New("simd: run queue is full, retry later")
	ErrClosed    = errors.New("simd: service is shutting down")
)

// RunFunc executes one simulation; the default is fvp.RunContext. Tests
// substitute a counting stub to assert single-flight behavior.
type RunFunc func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error)

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker-pool size; default runtime.NumCPU().
	Workers int
	// QueueSize bounds queued-but-not-running unique runs; submits beyond
	// it fail with ErrQueueFull. Default 4×Workers.
	QueueSize int
	// CacheSize bounds the content-addressed result cache. Default 1024.
	CacheSize int
	// MaxFinishedJobs bounds how many terminal job records are retained
	// for GET /v1/runs/{id}; the oldest are evicted first. Default 4096.
	MaxFinishedJobs int
	// Run overrides the simulation function (tests only).
	Run RunFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 4096
	}
	if c.Run == nil {
		c.Run = fvp.RunContext
	}
	return c
}

// job is the internal record of one submitted RunRequest. Identical
// concurrent specs share one execution: the first becomes the leader
// (the only job a worker runs); later ones attach as followers and are
// completed from the leader's result.
type job struct {
	id       string
	key      string
	spec     fvp.RunSpec // normalized
	state    State
	cached   bool
	result   *fvp.Metrics
	err      error
	done     chan struct{}
	retained bool

	// Leader-only fields. ctx governs the simulation; live counts the
	// not-yet-canceled jobs (leader + followers) interested in it — when
	// it reaches zero the execution is canceled. progress is the gauge the
	// worker attaches for the duration of the simulation.
	ctx       context.Context
	cancel    context.CancelFunc
	followers []*job
	live      int
	progress  *progressGauge

	// leader points a follower at its leader; nil on leaders.
	leader *job
}

// Service is the batch-simulation engine: submit side (dedup, cache,
// bounded queue), a worker pool, and job-table bookkeeping. All mutable
// state is guarded by mu; simulations run outside the lock.
type Service struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	runq     []*job          // queued leaders, FIFO
	jobs     map[string]*job // every known job by ID
	finished []string        // terminal job IDs, oldest first (retention)
	inflight map[string]*job // spec key → leader not yet finalized
	cache    *resultCache
	met      counters
	nextID   uint64
	closed   bool
	http     *httpStats

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New starts a service with cfg.Workers simulation workers. Callers own
// its lifetime: Close (or Drain) must be called to release them.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(cfg.CacheSize),
		baseCtx:  ctx,
		stop:     cancel,
		http:     newHTTPStats(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates, deduplicates, and enqueues one run, returning the
// job's initial status. A cached or deduplicated submit never consumes a
// queue slot. Returns *fvp.UnknownNameError for bad names, ErrQueueFull
// when the queue is at capacity, ErrClosed during shutdown.
func (s *Service) Submit(req RunRequest) (JobStatus, error) {
	sts, err := s.SubmitBatch([]RunRequest{req})
	if err != nil {
		return JobStatus{}, err
	}
	return sts[0], nil
}

// SubmitBatch submits a batch atomically with respect to queue capacity:
// either every new unique run fits in the queue or the whole batch is
// rejected with ErrQueueFull (cached and deduplicated entries need no
// slot). Validation errors also reject the whole batch.
func (s *Service) SubmitBatch(reqs []RunRequest) ([]JobStatus, error) {
	if len(reqs) == 0 {
		return nil, errors.New("simd: empty batch")
	}
	for _, r := range reqs {
		if err := fvp.Validate(r.RunSpec); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}

	// Capacity pre-check: count the batch's new unique leaders so the
	// admit decision is all-or-nothing.
	need := 0
	seen := make(map[string]bool)
	for _, r := range reqs {
		key := specKey(r.RunSpec)
		if s.cache.has(key) || s.inflight[key] != nil || seen[key] {
			continue
		}
		seen[key] = true
		need++
	}
	if len(s.runq)+need > s.cfg.QueueSize {
		return nil, ErrQueueFull
	}

	out := make([]JobStatus, len(reqs))
	for i, r := range reqs {
		out[i] = s.admitLocked(r)
	}
	s.cond.Broadcast()
	return out, nil
}

// admitLocked creates the job record for one request: a cache-served
// terminal job, a follower on an in-flight leader, or a fresh leader.
func (s *Service) admitLocked(r RunRequest) JobStatus {
	spec := r.RunSpec.Normalized()
	key := specKey(spec)
	s.nextID++
	j := &job{
		id:   fmt.Sprintf("j-%08d", s.nextID),
		key:  key,
		spec: spec,
		done: make(chan struct{}),
	}
	s.jobs[j.id] = j

	if m, ok := s.cache.get(key); ok {
		j.state = StateDone
		j.cached = true
		j.result = &m
		s.met.cacheHits++
		s.met.done++
		close(j.done)
		s.retainLocked(j)
		return j.status()
	}
	if leader := s.inflight[key]; leader != nil {
		j.state = leader.state // queued or running
		j.cached = true
		j.leader = leader
		leader.followers = append(leader.followers, j)
		leader.live++
		s.met.cacheHits++
		return j.status()
	}

	var ctx context.Context
	var cancel context.CancelFunc
	if r.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(r.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j.state = StateQueued
	j.ctx, j.cancel = ctx, cancel
	j.live = 1
	s.met.cacheMisses++
	s.inflight[key] = j
	s.runq = append(s.runq, j)
	return j.status()
}

// worker pulls leaders off the run queue and simulates them until the
// service closes and the queue drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.runq) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.runq) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.runq[0]
		s.runq = s.runq[1:]
		j.setStateLocked(StateRunning)
		j.progress = &progressGauge{target: j.spec.MeasureInsts}
		s.met.running++
		s.mu.Unlock()

		// Attach a progress gauge to a copy of the spec: the Observer field
		// is json:"-" and outside the cache key, so the simulated work and
		// its identity are untouched. Region-parallel runs measure their
		// slices concurrently, where interval samples would interleave
		// meaninglessly (the façade rejects the combination), so they run
		// unobserved.
		spec := j.spec
		if spec.Regions <= 1 {
			spec.Observer = j.progress
		}

		var m fvp.Metrics
		err := j.ctx.Err()
		start := time.Now()
		if err == nil {
			m, err = s.cfg.Run(j.ctx, spec)
		}
		elapsed := time.Since(start)

		s.mu.Lock()
		s.met.running--
		if err == nil {
			s.cache.put(j.key, m)
			s.met.simCycles += m.Cycles
			s.met.simSkippedCycles += m.SkippedCycles
			s.met.simInsts += m.Insts
			s.met.simFFInsts += m.FFInsts
			s.met.simSeconds += elapsed.Seconds()
		}
		s.finalizeLocked(j, m, err)
		s.mu.Unlock()
	}
}

// setStateLocked moves a leader and its non-terminal followers to st.
func (j *job) setStateLocked(st State) {
	if !j.state.terminal() {
		j.state = st
	}
	for _, f := range j.followers {
		if !f.state.terminal() {
			f.state = st
		}
	}
}

// finalizeLocked completes a leader and all its followers from one
// execution outcome, releasing the in-flight slot and the ctx timer.
func (s *Service) finalizeLocked(j *job, m fvp.Metrics, err error) {
	delete(s.inflight, j.key)
	j.cancel()
	for _, target := range append([]*job{j}, j.followers...) {
		if target.state.terminal() {
			continue
		}
		switch {
		case err == nil:
			target.state = StateDone
			target.result = &m
			s.met.done++
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			target.state = StateCanceled
			target.err = err
			s.met.canceled++
		default:
			target.state = StateFailed
			target.err = err
			s.met.failed++
		}
		close(target.done)
		s.retainLocked(target)
	}
	s.retainLocked(j) // leader may have been canceled individually earlier
}

// retainLocked records a terminal job for retention-bounded lookup,
// evicting the oldest terminal records beyond the cap.
func (s *Service) retainLocked(j *job) {
	if j.retained {
		return
	}
	j.retained = true
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxFinishedJobs {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
}

// Cancel cancels one job. Canceling a deduplicated follower only detaches
// that follower; the underlying simulation stops when its last interested
// job is canceled, observed by the cycle loop within a few thousand
// simulated cycles.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.state.terminal() {
		return false
	}
	j.state = StateCanceled
	j.err = context.Canceled
	s.met.canceled++
	close(j.done)
	s.retainLocked(j)

	leader := j
	if j.leader != nil {
		leader = j.leader
	}
	leader.live--
	if leader.live > 0 {
		return true
	}
	// Last interested party gone: stop the simulation. A queued leader is
	// removed from the run queue eagerly so its slot frees immediately; a
	// running one exits at the cycle loop's next context poll.
	leader.cancel()
	for i, q := range s.runq {
		if q == leader {
			s.runq = append(s.runq[:i], s.runq[i+1:]...)
			s.finalizeLocked(leader, fvp.Metrics{}, context.Canceled)
			break
		}
	}
	return true
}

// Get returns a job's current status.
func (s *Service) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Wait blocks until the job reaches a terminal state or ctx fires. A ctx
// cancellation counts as the waiter abandoning the job — it is canceled
// (detached if deduplicated), which is how a client disconnect on a
// wait-mode request stops the underlying simulation.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("simd: no such job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		s.Cancel(id)
		st, _ := s.Get(id)
		return st, ctx.Err()
	}
	st, _ := s.Get(id)
	return st, nil
}

// Snapshot returns the current service counters.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		JobsQueued:       len(s.runq),
		JobsRunning:      s.met.running,
		JobsDone:         s.met.done,
		JobsFailed:       s.met.failed,
		JobsCanceled:     s.met.canceled,
		CacheHits:        s.met.cacheHits,
		CacheMisses:      s.met.cacheMisses,
		CacheEntries:     s.cache.len(),
		SimCycles:        s.met.simCycles,
		SimInsts:         s.met.simInsts,
		SimSeconds:       s.met.simSeconds,
		SimSkippedCycles: s.met.simSkippedCycles,
		SimFFInsts:       s.met.simFFInsts,
	}
}

// QueueFree returns the remaining queue capacity (for health reporting).
func (s *Service) QueueFree() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.cfg.QueueSize - len(s.runq)
	if n < 0 {
		n = 0
	}
	return n
}

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// Drain gracefully shuts down: new submits are rejected, queued and
// running jobs finish, and workers exit. If ctx fires first the
// remaining work is canceled (and finishes as canceled).
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.stop()
		<-drained
	}
	s.stop()
	return err
}

// Close shuts down immediately: in-flight simulations are canceled at
// their next context poll and finish in the canceled state.
func (s *Service) Close() {
	s.stop()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// progressGauge tracks a running simulation's retirement count. It
// implements fvp.Observer; samples arrive on the simulating goroutine
// while status reads happen under the service lock, so the counter is
// atomic rather than mutex-guarded.
type progressGauge struct {
	retired atomic.Uint64
	target  uint64
}

func (g *progressGauge) OnInterval(m fvp.IntervalMetrics) {
	g.retired.Add(m.Insts)
}

func (g *progressGauge) snapshot() *Progress {
	p := &Progress{RetiredInsts: g.retired.Load(), TargetInsts: g.target}
	if p.TargetInsts > 0 {
		p.Ratio = float64(p.RetiredInsts) / float64(p.TargetInsts)
		if p.Ratio > 1 {
			p.Ratio = 1
		}
	}
	return p
}

// status renders the externally visible snapshot; callers hold s.mu.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Cached:  j.cached,
		Spec:    j.spec,
		Metrics: j.result,
	}
	if j.state == StateRunning {
		leader := j
		if j.leader != nil {
			leader = j.leader
		}
		if leader.progress != nil {
			st.Progress = leader.progress.snapshot()
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
