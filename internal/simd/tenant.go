package simd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Per-tenant admission control. Every RunRequest may carry a tenant ID;
// a token-bucket quota table converts the old global 503 backpressure
// into per-tenant 429 + Retry-After, and the run queue becomes a set of
// per-tenant FIFOs drained by weighted round-robin so a flooding tenant
// cannot starve a light one. With no quotas configured (the default) a
// single anonymous tenant exists and both mechanisms degenerate to the
// original FIFO-plus-global-503 behavior exactly.

// TenantQuota is one tenant's admission budget.
type TenantQuota struct {
	// Rate is the sustained admission rate in new unique runs per second
	// (token-bucket refill). Cached and deduplicated submits are free:
	// they consume no simulation capacity. Rate <= 0 means unlimited.
	Rate float64
	// Burst is the bucket capacity — the most admissions the tenant can
	// make instantaneously — and also bounds how many of the tenant's
	// unique runs may sit in the queue at once (so one tenant cannot fill
	// the global queue inside its rate budget). 0 defaults to
	// max(1, ceil(Rate)).
	Burst int
	// Weight is the tenant's share of the worker pool when queues are
	// contended: the weighted round-robin dispatcher serves up to Weight
	// jobs from this tenant's queue per visit. 0 defaults to 1.
	Weight int
}

func (q TenantQuota) withDefaults() TenantQuota {
	if q.Burst <= 0 {
		q.Burst = int(q.Rate)
		if float64(q.Burst) < q.Rate {
			q.Burst++
		}
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	if q.Weight <= 0 {
		q.Weight = 1
	}
	return q
}

// TenantConfig is the service's quota table.
type TenantConfig struct {
	// Quotas maps tenant ID to its admission budget.
	Quotas map[string]TenantQuota
	// Default, when non-nil, applies to every tenant without an explicit
	// entry (including the anonymous "" tenant). Nil means unlisted
	// tenants are unlimited — the pre-tenancy behavior.
	Default *TenantQuota
}

// quotaFor resolves one tenant's effective quota; ok is false when the
// tenant is unlimited (no admission control applies).
func (c TenantConfig) quotaFor(tenant string) (TenantQuota, bool) {
	if q, ok := c.Quotas[tenant]; ok {
		return q.withDefaults(), true
	}
	if c.Default != nil {
		return c.Default.withDefaults(), true
	}
	return TenantQuota{}, false
}

// QuotaError reports a submit rejected by per-tenant admission control;
// the HTTP layer maps it to 429 + Retry-After.
type QuotaError struct {
	// Tenant is the over-quota tenant ("" for anonymous submitters).
	Tenant string
	// RetryAfter estimates when the token bucket will cover the rejected
	// batch (floor 1s, so clients always get a usable hint).
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	name := e.Tenant
	if name == "" {
		name = "(anonymous)"
	}
	return fmt.Sprintf("simd: tenant %s over admission quota, retry in %s", name, e.RetryAfter)
}

// bucket is a token bucket refilled continuously at rate tokens/second.
type bucket struct {
	tokens float64
	last   time.Time
	quota  TenantQuota
}

// take refills to now and removes n tokens if available; on refusal it
// returns how long until n tokens will have accumulated.
func (b *bucket) take(n int, now time.Time) (ok bool, wait time.Duration) {
	if b.quota.Rate <= 0 {
		// Unlimited rate: only Burst (queue share) constrains the tenant.
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.quota.Rate
	}
	b.last = now
	if max := float64(b.quota.Burst); b.tokens > max {
		b.tokens = max
	}
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true, 0
	}
	deficit := float64(n) - b.tokens
	wait = time.Duration(deficit / b.quota.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// tenantState is one tenant's queue and accounting, guarded by the
// service mutex like the rest of the job table.
type tenantState struct {
	name   string
	quota  TenantQuota
	capped bool // quota applies (explicit entry or table default)
	bucket bucket
	queue  []*job // queued leaders, FIFO
	served int    // jobs dispatched in the current WRR visit
	// inflight counts the tenant's non-terminal jobs (leaders and
	// followers); rejected counts submits refused by admission control.
	inflight int
	rejected uint64
}

// tenants indexes tenantState by name and keeps the weighted round-robin
// rotation of tenants with queued work.
type tenants struct {
	cfg    TenantConfig
	byName map[string]*tenantState
	active []*tenantState // tenants with non-empty queues, rotation order
	queued int            // total queued leaders across tenants
}

func newTenants(cfg TenantConfig) *tenants {
	return &tenants{cfg: cfg, byName: make(map[string]*tenantState)}
}

func (t *tenants) get(name string) *tenantState {
	ts, ok := t.byName[name]
	if !ok {
		ts = &tenantState{name: name}
		ts.quota, ts.capped = t.cfg.quotaFor(name)
		if !ts.capped {
			// Unlimited tenants still take fair turns in the rotation.
			ts.quota.Weight = 1
		}
		ts.bucket.quota = ts.quota
		// A new tenant starts with a full bucket: its first Burst
		// admissions are instant, then the rate takes over.
		ts.bucket.tokens = float64(ts.quota.Burst)
		t.byName[name] = ts
	}
	return ts
}

// enqueue appends a leader to its tenant's queue, activating the tenant.
func (t *tenants) enqueue(j *job) {
	ts := t.get(j.tenant)
	if len(ts.queue) == 0 {
		ts.served = 0
		t.active = append(t.active, ts)
	}
	ts.queue = append(ts.queue, j)
	t.queued++
}

// dequeue pops the next leader under weighted round-robin: the tenant at
// the front of the rotation is served up to Weight consecutive jobs,
// then rotated to the back. With a single tenant this is plain FIFO.
func (t *tenants) dequeue() *job {
	for len(t.active) > 0 {
		ts := t.active[0]
		if len(ts.queue) == 0 {
			t.active = t.active[1:]
			continue
		}
		j := ts.queue[0]
		ts.queue = ts.queue[1:]
		t.queued--
		ts.served++
		if len(ts.queue) == 0 {
			t.active = t.active[1:]
		} else if ts.served >= ts.quota.Weight && ts.quota.Weight > 0 && len(t.active) > 1 {
			t.active = append(t.active[1:], ts)
			ts.served = 0
		}
		return j
	}
	return nil
}

// remove drops a canceled queued leader from its tenant's queue.
func (t *tenants) remove(j *job) bool {
	ts, ok := t.byName[j.tenant]
	if !ok {
		return false
	}
	for i, q := range ts.queue {
		if q == j {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			t.queued--
			return true
		}
	}
	return false
}

// admit charges one tenant's bucket for `need` new unique runs and
// enforces its queue share. Charging is all-or-nothing per batch.
func (ts *tenantState) admit(need int, now time.Time) error {
	if !ts.capped || need == 0 {
		return nil
	}
	if len(ts.queue)+need > ts.quota.Burst {
		// Queue share exhausted: the tenant already holds its burst worth
		// of queued work. Retry once some of it dispatches.
		return &QuotaError{Tenant: ts.name, RetryAfter: time.Second}
	}
	if ok, wait := ts.bucket.take(need, now); !ok {
		return &QuotaError{Tenant: ts.name, RetryAfter: wait.Round(time.Second)}
	}
	return nil
}

// TenantStats is one tenant's externally visible accounting.
type TenantStats struct {
	// Inflight is the tenant's non-terminal jobs (queued + running,
	// leaders and deduplicated followers alike).
	Inflight int `json:"inflight"`
	// Rejected counts submits refused by admission control since boot.
	Rejected uint64 `json:"rejected"`
}

// ParseQuotaSpec parses the fvpd -tenant-quota value format
// "rate[:burst[:weight]]", e.g. "10", "10:20", "10:20:4".
func ParseQuotaSpec(s string) (TenantQuota, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return TenantQuota{}, errors.New("quota must be rate[:burst[:weight]]")
	}
	var q TenantQuota
	rate, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || rate < 0 {
		return TenantQuota{}, fmt.Errorf("bad quota rate %q", parts[0])
	}
	q.Rate = rate
	if len(parts) > 1 {
		if q.Burst, err = strconv.Atoi(parts[1]); err != nil || q.Burst < 0 {
			return TenantQuota{}, fmt.Errorf("bad quota burst %q", parts[1])
		}
	}
	if len(parts) > 2 {
		if q.Weight, err = strconv.Atoi(parts[2]); err != nil || q.Weight < 0 {
			return TenantQuota{}, fmt.Errorf("bad quota weight %q", parts[2])
		}
	}
	return q, nil
}

// ParseTenantQuotas parses the fvpd -tenant-quota flag: a comma-separated
// list of tenant=rate[:burst[:weight]] entries.
func ParseTenantQuotas(s string) (map[string]TenantQuota, error) {
	out := make(map[string]TenantQuota)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant quota %q must be tenant=rate[:burst[:weight]]", entry)
		}
		q, err := ParseQuotaSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		out[name] = q
	}
	if len(out) == 0 {
		return nil, errors.New("empty -tenant-quota value")
	}
	return out, nil
}
