package simd

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"fvp"
)

// Sampling parameters are part of a run's identity: a sampled estimate and
// the full-detail run of the same region must never share a cache entry,
// and two sampled runs with different plans are different results.
func TestSpecKeySamplingFields(t *testing.T) {
	base := fvp.RunSpec{Workload: "omnetpp", WarmupInsts: 1_000, MeasureInsts: 200_000}

	sampled := base
	sampled.SampleTargetCI = 0.02
	if specKey(base) == specKey(sampled) {
		t.Error("sampled and full-detail runs must hash differently")
	}

	explicit := sampled
	norm := sampled.Normalized()
	explicit.SampleUnits = norm.SampleUnits
	explicit.SampleUnitInsts = norm.SampleUnitInsts
	explicit.SampleWarmupInsts = norm.SampleWarmupInsts
	explicit.SampleMaxUnits = norm.SampleMaxUnits
	if specKey(sampled) != specKey(explicit) {
		t.Error("implicit sampling defaults must hash equal to their explicit form")
	}

	units := sampled
	units.SampleUnits = 16
	if specKey(sampled) == specKey(units) {
		t.Error("different unit counts must hash differently")
	}

	seed := sampled
	seed.SampleSeed = 7
	if specKey(sampled) == specKey(seed) {
		t.Error("different sampling seeds must hash differently")
	}
}

func TestHTTPSamplingValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"omnetpp","measure_insts":100000,"sample_units":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("one sample unit: HTTP %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "sample_units") {
		t.Errorf("400 body should name the sample_units field, got %s", body)
	}
}

// A sampled run must flow through the service end to end: spec fields
// survive the round trip, the result carries the sampling report with its
// confidence interval, and the fleet-level sampled-instruction counter
// advances.
func TestHTTPSampledRun(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, out := postRuns(t, srv.URL+"/v1/runs?wait=1",
		`{"workload":"omnetpp","predictor":"fvp","warmup_insts":5000,`+
			`"measure_insts":200000,"sample_units":8,"sample_unit_insts":1000,`+
			`"sample_warmup_insts":2000,"sample_seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].State != StateDone {
		t.Fatalf("jobs: %+v", out.Jobs)
	}
	job := out.Jobs[0]
	if job.Spec.SampleUnits != 8 || job.Spec.SampleUnitInsts != 1_000 {
		t.Errorf("normalized spec lost sampling fields: %+v", job.Spec)
	}
	m := job.Metrics
	if m == nil {
		t.Fatal("done job has no metrics")
	}
	if m.Sampling == nil {
		t.Fatal("sampled run returned no sampling block")
	}
	if m.Sampling.Units != 8 || m.Sampling.SampledInsts == 0 {
		t.Errorf("sampling block: %+v", m.Sampling)
	}
	if m.Sampling.IPC.Mean <= 0 {
		t.Errorf("IPC estimate: %+v", m.Sampling.IPC)
	}

	if got := metricValue(t, srv.URL+"/v1", "fvpd_sim_sampled_insts_total"); got != float64(m.Sampling.SampledInsts) {
		t.Errorf("fvpd_sim_sampled_insts_total = %g, want %d", got, m.Sampling.SampledInsts)
	}

	// The same region in full detail must be a distinct cache entry, not a
	// hit on the sampled result.
	resp2, out2 := postRuns(t, srv.URL+"/v1/runs?wait=1",
		`{"workload":"omnetpp","predictor":"fvp","warmup_insts":5000,"measure_insts":200000}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp2.StatusCode)
	}
	if out2.Jobs[0].Cached {
		t.Error("full-detail run was served from the sampled run's cache entry")
	}
	if out2.Jobs[0].Metrics.Sampling != nil {
		t.Error("full-detail run grew a sampling block")
	}
}
