package simd

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fvp"
)

// TestLegacyAliasesDeprecated checks the pre-versioning unversioned paths
// still answer identically to their /v1 successors, but flag themselves
// with a Deprecation header and a successor-version Link.
func TestLegacyAliasesDeprecated(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct{ legacy, successor string }{
		{"/workloads", "/v1/workloads"},
		{"/predictors", "/v1/predictors"},
		{"/metrics", "/v1/metrics"},
	} {
		legacyResp, err := http.Get(srv.URL + tc.legacy)
		if err != nil {
			t.Fatal(err)
		}
		legacyBody, _ := io.ReadAll(legacyResp.Body)
		legacyResp.Body.Close()
		if legacyResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: HTTP %d", tc.legacy, legacyResp.StatusCode)
		}
		if got := legacyResp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s: Deprecation header = %q, want \"true\"", tc.legacy, got)
		}
		link := legacyResp.Header.Get("Link")
		if !strings.Contains(link, tc.successor) || !strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("GET %s: Link header = %q, want successor-version pointing at %s", tc.legacy, link, tc.successor)
		}

		v1Resp, err := http.Get(srv.URL + tc.successor)
		if err != nil {
			t.Fatal(err)
		}
		v1Body, _ := io.ReadAll(v1Resp.Body)
		v1Resp.Body.Close()
		if v1Resp.Header.Get("Deprecation") != "" {
			t.Errorf("GET %s: canonical route must not carry a Deprecation header", tc.successor)
		}
		// The metrics bodies include per-endpoint request counters that the
		// requests themselves bump, so compare JSON endpoints only.
		if tc.legacy != "/metrics" && string(legacyBody) != string(v1Body) {
			t.Errorf("GET %s and %s answered differently:\n%s\n---\n%s", tc.legacy, tc.successor, legacyBody, v1Body)
		}
	}
}

// TestLegacyRunsAlias submits through the legacy /runs path end to end.
func TestLegacyRunsAlias(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, out := postRuns(t, srv.URL+"/runs?wait=1",
		`{"workload":"omnetpp","warmup_insts":1000,"measure_insts":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy submit: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy submit response must carry Deprecation: true")
	}
	if len(out.Jobs) != 1 || out.Jobs[0].State != StateDone {
		t.Fatalf("legacy submit outcome: %+v", out.Jobs)
	}
	// The job is fetchable via both path generations.
	for _, p := range []string{"/runs/", "/v1/runs/"} {
		r, err := http.Get(srv.URL + p + out.Jobs[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s%s: HTTP %d", p, out.Jobs[0].ID, r.StatusCode)
		}
	}
}

// TestMetricsExposition checks the canonical /v1/metrics output carries
// HELP/TYPE metadata for every metric family.
func TestMetricsExposition(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, out := postRuns(t, srv.URL+"/v1/runs?wait=1",
		`{"workload":"omnetpp","warmup_insts":1000,"measure_insts":2000}`)
	resp.Body.Close()
	if len(out.Jobs) != 1 || out.Jobs[0].State != StateDone {
		t.Fatalf("seed run failed: %+v", out.Jobs)
	}

	r, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	text := string(body)
	for _, family := range []string{
		"fvpd_jobs_queued", "fvpd_jobs_running", "fvpd_jobs_done_total",
		"fvpd_cache_hits_total", "fvpd_sim_cycles_total",
		"fvpd_http_requests_total", "fvpd_http_request_seconds_total",
	} {
		if !strings.Contains(text, "# HELP "+family+" ") {
			t.Errorf("exposition missing HELP for %s", family)
		}
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("exposition missing TYPE for %s", family)
		}
	}
	if !strings.Contains(text, `fvpd_http_requests_total{endpoint="POST /v1/runs"} `) {
		t.Errorf("exposition missing per-endpoint counter:\n%s", text)
	}
}

// TestProgressReporting checks a long-running job exposes progress through
// GET /v1/runs/{id}, that followers see their leader's progress, and that
// progress disappears once terminal.
func TestProgressReporting(t *testing.T) {
	svc, srv := newTestServer(t, Config{Workers: 1})

	// Long enough that we can observe it mid-flight; the measured region
	// dominates so the sampler (attached post-warmup) has data to report.
	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 60_000_000}
	st, err := svc.Submit(RunRequest{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := svc.Submit(RunRequest{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Cached {
		t.Fatal("identical concurrent submit should dedup onto the leader")
	}

	getStatus := func(id string) JobStatus {
		r, err := http.Get(srv.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var js JobStatus
		if err := json.NewDecoder(r.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		return js
	}

	waitFor(t, func() bool {
		js := getStatus(st.ID)
		return js.State == StateRunning && js.Progress != nil && js.Progress.RetiredInsts > 0
	})
	js := getStatus(st.ID)
	if js.Progress.TargetInsts != spec.MeasureInsts {
		t.Errorf("progress target = %d, want %d", js.Progress.TargetInsts, spec.MeasureInsts)
	}
	if js.Progress.Ratio <= 0 || js.Progress.Ratio > 1 {
		t.Errorf("progress ratio = %g, want (0,1]", js.Progress.Ratio)
	}
	if fj := getStatus(follower.ID); fj.State == StateRunning && fj.Progress == nil {
		t.Error("running follower should report its leader's progress")
	}

	if !svc.Cancel(st.ID) || !svc.Cancel(follower.ID) {
		t.Fatal("cancel failed")
	}
	waitFor(t, func() bool { return svc.Snapshot().JobsRunning == 0 })
	if js := getStatus(st.ID); js.Progress != nil {
		t.Error("terminal job must not report progress")
	}
}

// TestSubmitRejectsOverBudgetSpec checks the typed budget-cap validation
// surfaces as HTTP 400.
func TestSubmitRejectsOverBudgetSpec(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, _ := postRuns(t, srv.URL+"/v1/runs",
		`{"workload":"omnetpp","measure_insts":2000000000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget submit: HTTP %d, want 400", resp.StatusCode)
	}
}
