package simd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fvp"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func postRuns(t *testing.T, url, body string) (*http.Response, SubmitResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// metricValue digs one counter out of the /metrics text exposition.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestHTTPBatchSubmitReportsCacheHits is the acceptance path: a batch of
// N identical specs simulates once and /metrics reports N−1 cache hits.
func TestHTTPBatchSubmitReportsCacheHits(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	const n = 4
	spec := `{"workload":"omnetpp","predictor":"fvp","warmup_insts":1000,"measure_insts":2000}`
	body := `{"runs":[` + strings.Repeat(spec+",", n-1) + spec + `]}`
	resp, out := postRuns(t, srv.URL+"/v1/runs?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait-mode batch: HTTP %d", resp.StatusCode)
	}
	if len(out.Jobs) != n {
		t.Fatalf("got %d jobs, want %d", len(out.Jobs), n)
	}
	cached := 0
	for _, j := range out.Jobs {
		if j.State != StateDone || j.Metrics == nil || j.Metrics.IPC <= 0 {
			t.Fatalf("job %s: state=%s metrics=%v", j.ID, j.State, j.Metrics)
		}
		if j.Cached {
			cached++
		}
	}
	if cached != n-1 {
		t.Errorf("%d jobs marked cached, want %d", cached, n-1)
	}
	if hits := metricValue(t, srv.URL, "fvpd_cache_hits_total"); hits != n-1 {
		t.Errorf("fvpd_cache_hits_total = %g, want %d", hits, n-1)
	}
	if misses := metricValue(t, srv.URL, "fvpd_cache_misses_total"); misses != 1 {
		t.Errorf("fvpd_cache_misses_total = %g, want 1", misses)
	}
	if cps := metricValue(t, srv.URL, "fvpd_sim_cycles_per_second"); cps <= 0 {
		t.Errorf("fvpd_sim_cycles_per_second = %g, want > 0", cps)
	}
}

func TestHTTPAsyncSubmitAndPoll(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, out := postRuns(t, srv.URL+"/v1/runs", `{"workload":"mcf","warmup_insts":1000,"measure_insts":2000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: HTTP %d, want 202", resp.StatusCode)
	}
	id := out.Jobs[0].ID
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == StateDone {
			if st.Metrics == nil || st.Metrics.Insts == 0 {
				t.Fatalf("done job missing metrics: %+v", st)
			}
			break
		}
		if st.State.terminal() {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 10s")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if r, err := http.Get(srv.URL + "/v1/runs/j-99999999"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status=%v err=%v, want 404", r.StatusCode, err)
	}
}

// TestHTTPBackpressure503 fills the queue and expects 503 + Retry-After.
func TestHTTPBackpressure503(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestServer(t, Config{
		Workers:   1,
		QueueSize: 1,
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			select {
			case <-release:
				return fvp.Metrics{IPC: 1}, nil
			case <-ctx.Done():
				return fvp.Metrics{}, ctx.Err()
			}
		},
	})

	submit := func(warm int) *http.Response {
		resp, _ := postRuns(t, srv.URL+"/v1/runs",
			fmt.Sprintf(`{"workload":"omnetpp","warmup_insts":%d}`, warm))
		return resp
	}
	if resp := submit(11); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	// Wait until the worker picked it up so the queue slot is free.
	waitFor(t, func() bool {
		return metricValue(t, srv.URL, "fvpd_jobs_running") == 1
	})
	if resp := submit(22); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit (fills queue): HTTP %d", resp.StatusCode)
	}
	resp := submit(33)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 must carry a Retry-After hint")
	}
}

// TestHTTPClientDisconnectCancelsJob submits an effectively endless real
// simulation in wait mode, drops the connection, and requires the
// service to stop burning cycles within one stats-poll interval.
func TestHTTPClientDisconnectCancelsJob(t *testing.T) {
	svc, srv := newTestServer(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"workload":"omnetpp","predictor":"fvp","measure_insts":1000000000}`
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/runs?wait=1", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")

	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitFor(t, func() bool { return svc.Snapshot().JobsRunning == 1 })

	cancel() // client disconnects mid-run
	if err := <-errc; err == nil {
		t.Fatal("request should fail once its context is canceled")
	}
	waitFor(t, func() bool {
		s := svc.Snapshot()
		return s.JobsRunning == 0 && s.JobsCanceled >= 1
	})
	if v := metricValue(t, srv.URL, "fvpd_jobs_canceled_total"); v < 1 {
		t.Errorf("fvpd_jobs_canceled_total = %g, want >= 1", v)
	}
}

func TestHTTPValidationSuggestsNames(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"omnetp"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misspelled workload: HTTP %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `did you mean \"omnetpp\"`) {
		t.Errorf("400 body should suggest the closest workload, got %s", body)
	}

	resp2, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"omnetpp","predictor":"fpv"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled predictor: HTTP %d, want 400", resp2.StatusCode)
	}
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), `did you mean \"fvp\"`) {
		t.Errorf("400 body should suggest the closest predictor, got %s", body2)
	}
}

func TestHTTPCatalogAndHealth(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	var ws []fvp.WorkloadInfo
	resp, err := http.Get(srv.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ws)
	resp.Body.Close()
	if len(ws) != len(fvp.Workloads()) {
		t.Errorf("workloads endpoint lists %d entries, want %d", len(ws), len(fvp.Workloads()))
	}

	var ps []PredictorInfo
	resp, err = http.Get(srv.URL + "/v1/predictors")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ps)
	resp.Body.Close()
	if len(ps) != len(fvp.Predictors()) {
		t.Errorf("predictors endpoint lists %d entries, want %d", len(ps), len(fvp.Predictors()))
	}
	foundFVP := false
	for _, p := range ps {
		if p.Name == "fvp" && p.StorageBytes > 0 {
			foundFVP = true
		}
	}
	if !foundFVP {
		t.Error("predictors endpoint should list fvp with a nonzero storage budget")
	}

	var h Health
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.Workers != 1 {
		t.Errorf("healthz = %+v", h)
	}
}
