package simd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fvp"
)

func TestParseQuotaSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TenantQuota
		ok   bool
	}{
		{"10", TenantQuota{Rate: 10}, true},
		{"2.5:8", TenantQuota{Rate: 2.5, Burst: 8}, true},
		{"1:4:3", TenantQuota{Rate: 1, Burst: 4, Weight: 3}, true},
		{"", TenantQuota{}, false},
		{"-1", TenantQuota{}, false},
		{"1:2:3:4", TenantQuota{}, false},
		{"x", TenantQuota{}, false},
	} {
		got, err := ParseQuotaSpec(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseQuotaSpec(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseQuotaSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseTenantQuotas(t *testing.T) {
	got, err := ParseTenantQuotas("alice=10:20, bob=1:2:4")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantQuota{
		"alice": {Rate: 10, Burst: 20},
		"bob":   {Rate: 1, Burst: 2, Weight: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for k, q := range want {
		if got[k] != q {
			t.Errorf("tenant %s = %+v, want %+v", k, got[k], q)
		}
	}
	for _, bad := range []string{"", "alice", "=10", "alice=zap"} {
		if _, err := ParseTenantQuotas(bad); err == nil {
			t.Errorf("ParseTenantQuotas(%q) accepted", bad)
		}
	}
}

// TestWeightedRoundRobin drives the tenant queue directly: a heavy
// tenant's backlog must not starve a light tenant, and weights set the
// interleave ratio.
func TestWeightedRoundRobin(t *testing.T) {
	mk := func(tenant, id string) *job { return &job{id: id, tenant: tenant} }
	tq := newTenants(TenantConfig{Quotas: map[string]TenantQuota{
		"heavy": {Rate: 100, Burst: 100, Weight: 2},
		"light": {Rate: 100, Burst: 100, Weight: 1},
	}})
	for i := 0; i < 4; i++ {
		tq.enqueue(mk("heavy", fmt.Sprintf("h%d", i)))
	}
	tq.enqueue(mk("light", "l0"))
	tq.enqueue(mk("light", "l1"))

	var order []string
	for j := tq.dequeue(); j != nil; j = tq.dequeue() {
		order = append(order, j.id)
	}
	want := []string{"h0", "h1", "l0", "h2", "h3", "l1"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("dequeue order %v, want %v", order, want)
	}
	if tq.queued != 0 {
		t.Fatalf("queued = %d after drain", tq.queued)
	}
}

// TestSingleTenantIsFIFO: with one (anonymous) tenant the queue is the
// original FIFO — order in is order out.
func TestSingleTenantIsFIFO(t *testing.T) {
	tq := newTenants(TenantConfig{})
	for i := 0; i < 5; i++ {
		tq.enqueue(&job{id: fmt.Sprintf("j%d", i)})
	}
	for i := 0; i < 5; i++ {
		if j := tq.dequeue(); j.id != fmt.Sprintf("j%d", i) {
			t.Fatalf("position %d: got %s", i, j.id)
		}
	}
}

// slowRunFunc blocks each simulation until release is closed, recording
// execution order.
func slowRunFunc(order *[]string, mu *sync.Mutex, release chan struct{}) RunFunc {
	return func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		mu.Lock()
		*order = append(*order, fmt.Sprintf("%s/%d", spec.Workload, spec.MeasureInsts))
		mu.Unlock()
		select {
		case <-release:
		case <-ctx.Done():
			return fvp.Metrics{}, ctx.Err()
		}
		return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
	}
}

// TestTenantQuota429 is the admission acceptance test: a flooding
// tenant's submits beyond its burst are refused with 429 + Retry-After +
// X-Fvpd-Tenant while an unquoted tenant keeps being admitted.
func TestTenantQuota429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var mu sync.Mutex
	var order []string
	_, srv := newTestServer(t, Config{
		Workers: 1, QueueSize: 16,
		Run: slowRunFunc(&order, &mu, release),
		Tenants: TenantConfig{Quotas: map[string]TenantQuota{
			"flood": {Rate: 0.001, Burst: 2},
		}},
	})

	submit := func(tenant string, insts int) *http.Response {
		body := fmt.Sprintf(`{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":%d,"tenant":%q}`,
			insts, tenant)
		resp, _ := postRuns(t, srv.URL+"/v1/runs", body)
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := submit("flood", 1000+i); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("flood submit %d within burst: HTTP %d", i, resp.StatusCode)
		}
	}
	resp := submit("flood", 1002)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood submit beyond burst: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := resp.Header.Get("X-Fvpd-Tenant"); got != "flood" {
		t.Errorf("X-Fvpd-Tenant = %q, want flood", got)
	}
	if resp := submit("light", 2000); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("light tenant rejected alongside flooder: HTTP %d", resp.StatusCode)
	}

	// The rejection and both tenants' inflight show up in the exposition.
	if v := metricValue(t, srv.URL+"/v1", `fvpd_tenant_rejected_total{tenant="flood"}`); v != 1 {
		t.Errorf("fvpd_tenant_rejected_total{flood} = %g, want 1", v)
	}
	if v := metricValue(t, srv.URL+"/v1", `fvpd_tenant_inflight{tenant="light"}`); v != 1 {
		t.Errorf("fvpd_tenant_inflight{light} = %g, want 1", v)
	}
}

// TestTenantFairnessUnderBacklog floods the queue from one tenant and
// checks the light tenant's lone job is dispatched ahead of the
// flooder's backlog tail.
func TestTenantFairnessUnderBacklog(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	svc, srv := newTestServer(t, Config{
		Workers: 1, QueueSize: 16,
		Run: slowRunFunc(&order, &mu, release),
		Tenants: TenantConfig{Quotas: map[string]TenantQuota{
			"flood": {Rate: 1000, Burst: 16},
		}},
	})

	submit := func(tenant string, insts int) {
		body := fmt.Sprintf(`{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":%d,"tenant":%q}`,
			insts, tenant)
		if resp, _ := postRuns(t, srv.URL+"/v1/runs", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
	}
	// f0 occupies the worker; f1..f4 queue up; then the light job arrives.
	for i := 0; i < 5; i++ {
		submit("flood", 1000+i)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 1
	})
	submit("light", 9000)

	close(release)
	waitFor(t, func() bool { return svc.Snapshot().JobsDone == 6 })

	mu.Lock()
	defer mu.Unlock()
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	// WRR: after f0 (running) and f1 (flood's turn), the light tenant's
	// job must beat the remaining flood backlog.
	if pos["omnetpp/9000"] > pos["omnetpp/1002"] {
		t.Fatalf("light job starved: order %v", order)
	}
}

// TestSamplingWireCompat is the API-redesign golden test: the flat
// sample_* fields still work (with a Deprecation signal), the nested
// sampling{} block is the undecorated successor, both at once is a 400,
// and tenant-less single-node responses carry no tenant/node keys.
func TestSamplingWireCompat(t *testing.T) {
	stub := func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
	}
	_, srv := newTestServer(t, Config{Workers: 1, Run: stub})

	legacy := `{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":100000,"sample_units":4,"sample_seed":7}`
	resp, out := postRuns(t, srv.URL+"/v1/runs?wait=1", legacy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy flat submit: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "sampling{}") {
		t.Errorf("legacy flat submit missing Deprecation/Link headers: %v", resp.Header)
	}
	if out.Jobs[0].Spec.SampleUnits != 4 || out.Jobs[0].Spec.SampleSeed != 7 {
		t.Errorf("legacy sampling fields lost: %+v", out.Jobs[0].Spec)
	}

	nested := `{"workload":"omnetpp","predictor":"fvp","warmup_insts":100,"measure_insts":100000,"sampling":{"units":4,"seed":7}}`
	resp, out = postRuns(t, srv.URL+"/v1/runs?wait=1", nested)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nested sampling submit: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("nested sampling submit wrongly marked deprecated")
	}
	if out.Jobs[0].Spec.SampleUnits != 4 || out.Jobs[0].Spec.SampleSeed != 7 {
		t.Errorf("nested sampling not folded into spec: %+v", out.Jobs[0].Spec)
	}
	// Same plan, either spelling: one simulation, one cache entry.
	if !out.Jobs[0].Cached {
		t.Error("nested respelling of the flat plan missed the cache")
	}

	both := `{"workload":"omnetpp","predictor":"fvp","measure_insts":100000,"sample_units":4,"sampling":{"units":4}}`
	if resp, _ := postRuns(t, srv.URL+"/v1/runs", both); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting sampling forms: HTTP %d, want 400", resp.StatusCode)
	}

	// Tenant-less, node-less deployments keep the pre-tenancy wire format:
	// no tenant, node, or tenants keys anywhere.
	raw, err := http.Get(srv.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var listing struct {
		Jobs []map[string]json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(raw.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	for _, j := range listing.Jobs {
		for _, k := range []string{"tenant", "node"} {
			if _, present := j[k]; present {
				t.Errorf("tenant-less job leaks %q key: %v", k, j)
			}
		}
	}
}

// TestJobIDNodePrefix: cluster job IDs carry the node name and split
// back out; bare IDs split to the empty node.
func TestJobIDNodePrefix(t *testing.T) {
	stub := func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		return fvp.Metrics{IPC: 1}, nil
	}
	svc := New(Config{Workers: 1, NodeID: "n1.rack2", Run: stub})
	defer svc.Close()
	st, err := svc.Submit(RunRequest{RunSpec: fvp.RunSpec{
		Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: 1000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.ID, "n1.rack2.j-") {
		t.Fatalf("job ID %q lacks node prefix", st.ID)
	}
	if st.Node != "n1.rack2" {
		t.Fatalf("status Node = %q", st.Node)
	}
	node, local := SplitJobID(st.ID)
	if node != "n1.rack2" || !strings.HasPrefix(local, "j-") {
		t.Fatalf("SplitJobID(%q) = %q, %q", st.ID, node, local)
	}
	if node, local := SplitJobID("j-00000001"); node != "" || local != "j-00000001" {
		t.Fatalf("bare SplitJobID = %q, %q", node, local)
	}
	if _, ok := svc.Get(st.ID); !ok {
		t.Fatal("job not retrievable by prefixed ID")
	}
}

// TestQuotaRefillAdmitsAgain: after Retry-After elapses (simulated via
// the clock hook) the tenant is admitted again.
func TestQuotaRefillAdmitsAgain(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	stub := func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		return fvp.Metrics{IPC: 1}, nil
	}
	svc := New(Config{
		Workers: 1, Run: stub, clock: clock,
		Tenants: TenantConfig{Quotas: map[string]TenantQuota{"a": {Rate: 1, Burst: 1}}},
	})
	defer svc.Close()

	req := func(insts uint64) RunRequest {
		return RunRequest{Tenant: "a", RunSpec: fvp.RunSpec{
			Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: insts,
		}}
	}
	if _, err := svc.Submit(req(1000)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := svc.Submit(req(2000))
	qe, ok := err.(*QuotaError)
	if !ok {
		t.Fatalf("second submit: %v, want *QuotaError", err)
	}
	if qe.Tenant != "a" || qe.RetryAfter <= 0 {
		t.Fatalf("QuotaError = %+v", qe)
	}

	clockMu.Lock()
	now = now.Add(qe.RetryAfter + time.Second)
	clockMu.Unlock()
	waitFor(t, func() bool { return svc.Snapshot().JobsDone >= 1 })
	if _, err := svc.Submit(req(2000)); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}
