package simd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// counters are the service-level counters, guarded by the Service mutex.
type counters struct {
	cacheHits   uint64
	cacheMisses uint64
	done        uint64
	failed      uint64
	canceled    uint64
	running     int
	simCycles   uint64
	simInsts    uint64
	simSeconds  float64
}

// Stats is a point-in-time snapshot of the service counters; the JSON
// form mirrors the /metrics exposition names.
type Stats struct {
	JobsQueued   int     `json:"jobs_queued"`
	JobsRunning  int     `json:"jobs_running"`
	JobsDone     uint64  `json:"jobs_done"`
	JobsFailed   uint64  `json:"jobs_failed"`
	JobsCanceled uint64  `json:"jobs_canceled"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	SimCycles    uint64  `json:"sim_cycles"`
	SimInsts     uint64  `json:"sim_insts"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// CyclesPerSecond is the service's aggregate simulation throughput.
func (s Stats) CyclesPerSecond() float64 {
	if s.SimSeconds <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimSeconds
}

// httpStats tracks per-endpoint request counts and cumulative latency.
// It has its own lock so request accounting never contends with the job
// queue.
type httpStats struct {
	mu  sync.Mutex
	byE map[string]*endpointStat
}

type endpointStat struct {
	count   uint64
	seconds float64
}

func newHTTPStats() *httpStats {
	return &httpStats{byE: make(map[string]*endpointStat)}
}

func (h *httpStats) observe(endpoint string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.byE[endpoint]
	if st == nil {
		st = &endpointStat{}
		h.byE[endpoint] = st
	}
	st.count++
	st.seconds += d.Seconds()
}

// WriteMetrics renders the Prometheus-style text exposition served at
// GET /metrics.
func (s *Service) WriteMetrics(w io.Writer) {
	st := s.Snapshot()
	fmt.Fprintf(w, "# fvpd batch-simulation service\n")
	fmt.Fprintf(w, "fvpd_jobs_queued %d\n", st.JobsQueued)
	fmt.Fprintf(w, "fvpd_jobs_running %d\n", st.JobsRunning)
	fmt.Fprintf(w, "fvpd_jobs_done_total %d\n", st.JobsDone)
	fmt.Fprintf(w, "fvpd_jobs_failed_total %d\n", st.JobsFailed)
	fmt.Fprintf(w, "fvpd_jobs_canceled_total %d\n", st.JobsCanceled)
	fmt.Fprintf(w, "fvpd_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "fvpd_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(w, "fvpd_cache_entries %d\n", st.CacheEntries)
	fmt.Fprintf(w, "fvpd_sim_cycles_total %d\n", st.SimCycles)
	fmt.Fprintf(w, "fvpd_sim_insts_total %d\n", st.SimInsts)
	fmt.Fprintf(w, "fvpd_sim_seconds_total %g\n", st.SimSeconds)
	fmt.Fprintf(w, "fvpd_sim_cycles_per_second %g\n", st.CyclesPerSecond())

	s.http.mu.Lock()
	endpoints := make([]string, 0, len(s.http.byE))
	for e := range s.http.byE {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		es := s.http.byE[e]
		fmt.Fprintf(w, "fvpd_http_requests_total{endpoint=%q} %d\n", e, es.count)
		fmt.Fprintf(w, "fvpd_http_request_seconds_total{endpoint=%q} %g\n", e, es.seconds)
	}
	s.http.mu.Unlock()
}
