package simd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"fvp/internal/store"
	"fvp/internal/telemetry"
)

// counters are the service-level counters, guarded by the Service mutex.
type counters struct {
	cacheHits   uint64
	cacheMisses uint64
	done        uint64
	failed      uint64
	canceled    uint64
	running     int
	simCycles   uint64
	simInsts    uint64
	simSeconds  float64
	// simSkippedCycles is the subset of simCycles the cores idle-elided
	// (clock-jumped); the ratio to simCycles shows how much of the fleet's
	// simulated time the fast path absorbed.
	simSkippedCycles uint64
	// simFFInsts counts functionally fast-forwarded instructions (warmup
	// and checkpoint scans) — work done outside the detailed model.
	simFFInsts uint64
	// simSampledInsts counts instructions measured in detail inside sample
	// units; the ratio to the sampled runs' total measured region is the
	// fleet's detailed sampling fraction.
	simSampledInsts uint64
}

// Stats is a point-in-time snapshot of the service counters; the JSON
// form mirrors the /metrics exposition names.
type Stats struct {
	JobsQueued       int         `json:"jobs_queued"`
	JobsRunning      int         `json:"jobs_running"`
	JobsDone         uint64      `json:"jobs_done"`
	JobsFailed       uint64      `json:"jobs_failed"`
	JobsCanceled     uint64      `json:"jobs_canceled"`
	CacheHits        uint64      `json:"cache_hits"`
	CacheMisses      uint64      `json:"cache_misses"`
	CacheEntries     int         `json:"cache_entries"`
	CacheBytes       int64       `json:"cache_bytes"`
	JobsRecovered    uint64      `json:"jobs_recovered"`
	StoreErrors      uint64      `json:"store_errors"`
	StoreJobs        store.Stats `json:"store_jobs"`
	StoreResults     store.Stats `json:"store_results"`
	StoreBlobs       store.Stats `json:"store_blobs"`
	SimCycles        uint64      `json:"sim_cycles"`
	SimInsts         uint64      `json:"sim_insts"`
	SimSeconds       float64     `json:"sim_seconds"`
	SimSkippedCycles uint64      `json:"sim_skipped_cycles"`
	SimFFInsts       uint64      `json:"sim_ff_insts"`
	SimSampledInsts  uint64      `json:"sim_sampled_insts"`
	// Tenants is per-tenant admission accounting; empty for a
	// pre-tenancy deployment (one anonymous unlimited tenant).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// CyclesPerSecond is the service's aggregate simulation throughput.
func (s Stats) CyclesPerSecond() float64 {
	if s.SimSeconds <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimSeconds
}

// httpStats tracks per-endpoint request counts and cumulative latency.
// It has its own lock so request accounting never contends with the job
// queue.
type httpStats struct {
	mu  sync.Mutex
	byE map[string]*endpointStat
}

type endpointStat struct {
	count   uint64
	seconds float64
}

func newHTTPStats() *httpStats {
	return &httpStats{byE: make(map[string]*endpointStat)}
}

func (h *httpStats) observe(endpoint string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.byE[endpoint]
	if st == nil {
		st = &endpointStat{}
		h.byE[endpoint] = st
	}
	st.count++
	st.seconds += d.Seconds()
}

// WriteMetrics renders the Prometheus text exposition (version 0.0.4,
// with HELP/TYPE metadata) served at GET /v1/metrics.
func (s *Service) WriteMetrics(w io.Writer) {
	st := s.Snapshot()
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}
	counter := func(name, help string, format string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s "+format+"\n", name, help, name, name, v)
	}
	gauge("fvpd_jobs_queued", "Unique runs waiting for a worker.", "%d", st.JobsQueued)
	gauge("fvpd_jobs_running", "Simulations currently executing.", "%d", st.JobsRunning)
	counter("fvpd_jobs_done_total", "Jobs that finished successfully.", "%d", st.JobsDone)
	counter("fvpd_jobs_failed_total", "Jobs that finished with an error.", "%d", st.JobsFailed)
	counter("fvpd_jobs_canceled_total", "Jobs canceled or timed out.", "%d", st.JobsCanceled)
	counter("fvpd_cache_hits_total", "Submits served from the result cache or deduplicated onto an in-flight run.", "%d", st.CacheHits)
	counter("fvpd_cache_misses_total", "Submits that required a fresh simulation.", "%d", st.CacheMisses)
	gauge("fvpd_cache_entries", "Results held in the content-addressed cache.", "%d", st.CacheEntries)
	gauge("fvpd_cache_bytes", "Bytes held in the content-addressed cache (spec keys + encoded results).", "%d", st.CacheBytes)

	stores := []struct {
		name string
		st   store.Stats
	}{{"jobs", st.StoreJobs}, {"results", st.StoreResults}, {"blobs", st.StoreBlobs}}
	labeled := func(name, help, typ string, v func(store.Stats) any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range stores {
			fmt.Fprintf(w, "%s{store=%q} %d\n", name, s.name, v(s.st))
		}
	}
	labeled("fvpd_store_records", "Live records held by each backing store.", "gauge",
		func(s store.Stats) any { return s.Records })
	labeled("fvpd_store_bytes", "Bytes held by each backing store.", "gauge",
		func(s store.Stats) any { return s.Bytes })
	labeled("fvpd_store_appends_total", "Records appended to each backing store since boot.", "counter",
		func(s store.Stats) any { return s.Appends })
	labeled("fvpd_store_compactions_total", "Log compactions performed by each backing store since boot.", "counter",
		func(s store.Stats) any { return s.Compactions })
	counter("fvpd_store_recovered_jobs_total", "Jobs re-dispatched from the durable job store at boot.", "%d", st.JobsRecovered)
	counter("fvpd_store_errors_total", "Durable-store write failures absorbed after admission.", "%d", st.StoreErrors)

	counter("fvpd_sim_cycles_total", "Simulated cycles across all completed runs.", "%d", st.SimCycles)
	counter("fvpd_sim_skipped_cycles_total", "Simulated cycles covered by idle-elision clock jumps (subset of fvpd_sim_cycles_total).", "%d", st.SimSkippedCycles)
	counter("fvpd_sim_insts_total", "Simulated instructions across all completed runs.", "%d", st.SimInsts)
	counter("fvpd_sim_ff_insts_total", "Instructions functionally fast-forwarded (warmup and checkpoint scans) instead of detail-simulated.", "%d", st.SimFFInsts)
	counter("fvpd_sim_sampled_insts_total", "Instructions detail-simulated inside sample units of sampled runs.", "%d", st.SimSampledInsts)
	counter("fvpd_sim_seconds_total", "Wall-clock seconds spent simulating.", "%g", st.SimSeconds)
	gauge("fvpd_sim_cycles_per_second", "Aggregate simulation throughput.", "%g", st.CyclesPerSecond())

	// Per-tenant admission control. Family metadata is always present so
	// dashboards can be built before the first tenant shows up.
	tenantNames := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)
	fmt.Fprintf(w, "# HELP fvpd_tenant_rejected_total Submits refused by per-tenant admission control (HTTP 429).\n# TYPE fvpd_tenant_rejected_total counter\n")
	for _, name := range tenantNames {
		fmt.Fprintf(w, "fvpd_tenant_rejected_total{tenant=%q} %d\n", name, st.Tenants[name].Rejected)
	}
	fmt.Fprintf(w, "# HELP fvpd_tenant_inflight Non-terminal jobs (queued + running, including deduplicated followers) per tenant.\n# TYPE fvpd_tenant_inflight gauge\n")
	for _, name := range tenantNames {
		fmt.Fprintf(w, "fvpd_tenant_inflight{tenant=%q} %d\n", name, st.Tenants[name].Inflight)
	}

	s.http.mu.Lock()
	endpoints := make([]string, 0, len(s.http.byE))
	for e := range s.http.byE {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	fmt.Fprintf(w, "# HELP fvpd_http_requests_total HTTP requests served, by route pattern.\n# TYPE fvpd_http_requests_total counter\n")
	for _, e := range endpoints {
		fmt.Fprintf(w, "fvpd_http_requests_total{endpoint=%q} %d\n", e, s.http.byE[e].count)
	}
	fmt.Fprintf(w, "# HELP fvpd_http_request_seconds_total Cumulative request latency, by route pattern.\n# TYPE fvpd_http_request_seconds_total counter\n")
	for _, e := range endpoints {
		fmt.Fprintf(w, "fvpd_http_request_seconds_total{endpoint=%q} %g\n", e, s.http.byE[e].seconds)
	}
	s.http.mu.Unlock()

	reqHelp := "End-to-end request latency by route pattern and outcome (ok, client_error, server_error)."
	if s.cfg.SLOTarget > 0 {
		reqHelp += fmt.Sprintf(" SLO target: %s.", s.cfg.SLOTarget)
	}
	s.reqHist.WriteProm(w, "fvpd_request_seconds", reqHelp)
	if s.batch != nil {
		telemetry.WritePromHeader(w, "fvpd_batch_size",
			fmt.Sprintf("Requests coalesced per micro-batch flush (window %s, max %d).", s.cfg.BatchWindow, s.cfg.BatchMax))
		s.batch.sizes.WriteProm(w, "fvpd_batch_size", "")
	}

	s.mu.Lock()
	extras := append([]func(io.Writer){}, s.metricsExtra...)
	s.mu.Unlock()
	for _, fn := range extras {
		fn(w)
	}
}
