package simd

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fvp"
	"fvp/internal/store"
	"fvp/internal/store/disk"
)

func openDisk(t *testing.T, dir string) store.Stores {
	t.Helper()
	stores, err := disk.Open(dir, disk.Options{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	return stores
}

// TestDiskRestartRedispatchesJobs is the crash contract end-to-end at the
// service layer: jobs queued or running when the process dies (svc1 is
// abandoned, not closed — Close would gracefully finalize them) are
// re-dispatched by the next process under their original IDs and run to
// completion.
func TestDiskRestartRedispatchesJobs(t *testing.T) {
	dir := t.TempDir()

	started := make(chan struct{}, 1)
	block := make(chan struct{}) // never closed: svc1's run hangs forever
	svc1 := New(Config{
		Workers: 1, Stores: openDisk(t, dir),
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			started <- struct{}{}
			<-block
			return fvp.Metrics{}, ctx.Err()
		},
	})
	specA := fastSpec()
	specB := fastSpec()
	specB.Predictor = fvp.PredNone
	stA, err := svc1.Submit(RunRequest{RunSpec: specA})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := svc1.Submit(RunRequest{RunSpec: specB})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started: // A is running, B queued behind the single worker
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	// Crash: abandon svc1 without Close. Its worker is parked in the stub
	// and will never touch the store again.

	var ran atomic.Uint64
	svc2 := New(Config{
		Workers: 1, Stores: openDisk(t, dir),
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			ran.Add(1)
			return fvp.Metrics{IPC: 2, Cycles: 100, Insts: 200}, nil
		},
	})
	defer svc2.Close()

	if got := svc2.Snapshot().JobsRecovered; got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
	for _, id := range []string{stA.ID, stB.ID} {
		st, err := svc2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone || st.Metrics == nil || st.Metrics.IPC != 2 {
			t.Fatalf("recovered job %s = %+v, want done with stub metrics", id, st)
		}
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("restart ran %d simulations, want 2", got)
	}
	// The listing shows both under their original IDs.
	listed := svc2.List(StateDone)
	if len(listed) != 2 || listed[0].ID != stA.ID || listed[1].ID != stB.ID {
		t.Errorf("List(done) after recovery = %+v", listed)
	}
	// Resubmitting either spec now hits the durable cache.
	again, err := svc2.Submit(RunRequest{RunSpec: specA})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != StateDone {
		t.Errorf("resubmit after recovery = %+v, want cached done", again)
	}
}

// TestDiskCacheSurvivesRestart: a result computed before a graceful
// shutdown is served as a cache hit — without re-simulating — by the next
// process.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var ran atomic.Uint64
	stub := func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		ran.Add(1)
		return fvp.Metrics{IPC: 1.25, Cycles: 160, Insts: 200}, nil
	}

	svc1 := New(Config{Workers: 1, Stores: openDisk(t, dir), Run: stub})
	first, err := svc1.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc1.Wait(context.Background(), first.ID)
	if err != nil || done.State != StateDone {
		t.Fatalf("first run: %+v, %v", done, err)
	}
	svc1.Close()

	svc2 := New(Config{Workers: 1, Stores: openDisk(t, dir), Run: stub})
	defer svc2.Close()
	second, err := svc2.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone || second.Metrics == nil {
		t.Fatalf("post-restart submit = %+v, want immediate cache hit", second)
	}
	if second.Metrics.IPC != 1.25 {
		t.Errorf("cached IPC = %v, want the pre-restart result", second.Metrics.IPC)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("simulation ran %d times across the restart, want 1", got)
	}
}

// TestMemoryBackendMatchesDefault: an explicit memory Stores behaves
// identically to the zero-config default (IDs, caching, metrics).
func TestMemoryBackendMatchesDefault(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	st, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j-00000001" {
		t.Errorf("first job ID = %s, want j-00000001", st.ID)
	}
	if _, err := svc.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	if snap.CacheEntries != 1 || snap.CacheBytes <= 0 {
		t.Errorf("cache accounting = %d entries / %d bytes, want 1 entry with bytes", snap.CacheEntries, snap.CacheBytes)
	}
	// The byte figure is exactly key + encoded result.
	key := specKey(fastSpec())
	final, _ := svc.Get(st.ID)
	encoded, _ := json.Marshal(*final.Metrics)
	if want := int64(len(key) + len(encoded)); snap.CacheBytes != want {
		t.Errorf("CacheBytes = %d, want %d (len(key)+len(encoded result))", snap.CacheBytes, want)
	}
}

// TestTraceArtifact: a run submitted with Trace produces a durable
// chrome://tracing artifact, listed on the job and streamable.
func TestTraceArtifact(t *testing.T) {
	svc := New(Config{Workers: 1, Stores: openDisk(t, t.TempDir())})
	defer svc.Close()
	st, err := svc.Submit(RunRequest{RunSpec: fastSpec(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	final, err := svc.Wait(context.Background(), st.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("traced run: %+v, %v", final, err)
	}
	key := specKey(fastSpec())
	if len(final.Artifacts) != 1 || final.Artifacts[0] != "trace-"+key {
		t.Fatalf("artifacts = %v, want [trace-%s]", final.Artifacts, key)
	}
	rc, err := svc.OpenArtifact(st.ID, "trace")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	blob, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "traceEvents") {
		t.Errorf("trace blob is not chrome://tracing JSON (got %d bytes)", len(blob))
	}
	// An untraced job on a different spec has no artifact.
	other := fastSpec()
	other.Predictor = fvp.PredNone
	st2, err := svc.Submit(RunRequest{RunSpec: other})
	if err != nil {
		t.Fatal(err)
	}
	svc.Wait(context.Background(), st2.ID)
	if _, err := svc.OpenArtifact(st2.ID, "trace"); err != store.ErrNotFound {
		t.Errorf("OpenArtifact on untraced job = %v, want ErrNotFound", err)
	}
}

// TestListFiltersByState covers the listing service API.
func TestListFiltersByState(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	st, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if all := svc.List(""); len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("List(\"\") = %+v", all)
	}
	if done := svc.List(StateDone); len(done) != 1 {
		t.Errorf("List(done) = %+v", done)
	}
	if queued := svc.List(StateQueued); len(queued) != 0 {
		t.Errorf("List(queued) = %+v, want empty", queued)
	}
}
