package simd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fvp"
)

func batchSpec(insts uint64) fvp.RunSpec {
	return fvp.RunSpec{Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: insts}
}

func instantStub(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
	return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
}

// TestBatcherCoalescesConcurrentSubmits: N concurrent SubmitBatched
// callers with BatchMax = N land in one flush — the fvpd_batch_size
// histogram records a single observation of N — and every caller gets
// its own admitted status back.
func TestBatcherCoalescesConcurrentSubmits(t *testing.T) {
	const n = 8
	svc := New(Config{
		Workers: 2, QueueSize: 2 * n, Run: instantStub,
		// A window the test never waits out: the flush must come from the
		// BatchMax trigger when the n-th caller arrives.
		BatchWindow: time.Minute, BatchMax: n,
	})
	defer svc.Close()

	var wg sync.WaitGroup
	statuses := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sts, err := svc.SubmitBatched([]RunRequest{{RunSpec: batchSpec(uint64(1000 + i))}})
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i] = sts[0]
		}(i)
	}
	wg.Wait()

	ids := make(map[string]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if statuses[i].ID == "" || ids[statuses[i].ID] {
			t.Fatalf("submit %d: bad or duplicate job ID %q", i, statuses[i].ID)
		}
		ids[statuses[i].ID] = true
	}
	snap := svc.batch.sizes.Snapshot()
	if snap.Count != 1 || snap.Sum != n {
		t.Errorf("batch-size histogram: %d flushes totaling %g requests, want one flush of %d", snap.Count, snap.Sum, n)
	}
	waitFor(t, func() bool { return svc.Snapshot().JobsDone == n })
}

// TestBatcherDrainFlushesPending: callers parked mid-window when Drain
// begins must get a real admit decision and their jobs must complete —
// shutdown flushes the window instead of stranding it.
func TestBatcherDrainFlushesPending(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueSize: 8, Run: instantStub,
		// Neither trigger can fire on its own: only the drain flush can
		// release these callers.
		BatchWindow: time.Hour, BatchMax: 1000,
	})

	const n = 2
	var wg sync.WaitGroup
	statuses := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sts, err := svc.SubmitBatched([]RunRequest{{RunSpec: batchSpec(uint64(2000 + i))}})
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i] = sts[0]
		}(i)
	}
	waitFor(t, func() bool {
		svc.batch.mu.Lock()
		defer svc.batch.mu.Unlock()
		return len(svc.batch.pending) == n
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("parked submit %d rejected at drain: %v", i, errs[i])
		}
		final, ok := svc.Get(statuses[i].ID)
		if !ok || final.State != StateDone {
			t.Errorf("parked submit %d: state %s after drain, want done", i, final.State)
		}
	}
}

// TestBatchMixedTenantQuotaIsolation: when an over-quota tenant's group
// shares a flush with a healthy tenant's, the merged batch is rejected
// all-or-nothing, then the per-group fallback admits the healthy tenant
// and refuses only the flooder — none of the flooder's runs start.
func TestBatchMixedTenantQuotaIsolation(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueSize: 8, Run: instantStub,
		BatchWindow: time.Minute, BatchMax: 3,
		Tenants: TenantConfig{Quotas: map[string]TenantQuota{
			"flood": {Rate: 0.001, Burst: 1},
		}},
	})
	defer svc.Close()

	var wg sync.WaitGroup
	var floodErr, okErr error
	var okStatuses []JobStatus
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Two unique specs against a burst of 1: over quota on its own,
		// and poison for any merged batch it rides in.
		_, floodErr = svc.SubmitBatched([]RunRequest{
			{Tenant: "flood", RunSpec: batchSpec(3000)},
			{Tenant: "flood", RunSpec: batchSpec(3001)},
		})
	}()
	go func() {
		defer wg.Done()
		okStatuses, okErr = svc.SubmitBatched([]RunRequest{{Tenant: "ok", RunSpec: batchSpec(4000)}})
	}()
	wg.Wait()

	var qe *QuotaError
	if !errors.As(floodErr, &qe) || qe.Tenant != "flood" {
		t.Fatalf("flood group error = %v, want *QuotaError for tenant flood", floodErr)
	}
	if okErr != nil {
		t.Fatalf("healthy tenant poisoned by co-batched flooder: %v", okErr)
	}
	if len(okStatuses) != 1 || okStatuses[0].Tenant != "ok" {
		t.Fatalf("healthy tenant statuses = %+v", okStatuses)
	}
	waitFor(t, func() bool { return svc.Snapshot().JobsDone == 1 })
	// All-or-nothing held within the flooder's group: neither of its
	// specs was admitted, so the only simulation ever started is the
	// healthy tenant's.
	if snap := svc.Snapshot(); snap.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (no flood run admitted)", snap.CacheMisses)
	}
}

// TestBatchedSubmitMatchesUnbatched: the micro-batcher is a transparent
// fast path — dedup, cache hits, and per-request statuses come out the
// same whether requests were coalesced or submitted one at a time.
func TestBatchedSubmitMatchesUnbatched(t *testing.T) {
	run := func(cfg Config) (map[string]int, uint64, uint64) {
		cfg.Workers, cfg.QueueSize, cfg.Run = 2, 64, instantStub
		svc := New(cfg)
		const n = 12
		var wg sync.WaitGroup
		states := make([]State, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Three unique specs, aliased four ways each.
				sts, err := svc.SubmitBatched([]RunRequest{{RunSpec: batchSpec(uint64(5000 + i%3))}})
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				final, err := svc.Wait(context.Background(), sts[0].ID)
				if err != nil {
					t.Errorf("wait %d: %v", i, err)
					return
				}
				states[i] = final.State
			}(i)
		}
		wg.Wait()
		byState := make(map[string]int)
		for _, st := range states {
			byState[string(st)]++
		}
		snap := svc.Snapshot()
		svc.Close()
		return byState, snap.CacheMisses, snap.JobsDone
	}

	unbatched, umisses, udone := run(Config{})
	batched, bmisses, bdone := run(Config{BatchWindow: 5 * time.Millisecond, BatchMax: 6})
	if fmt.Sprint(unbatched) != fmt.Sprint(batched) || umisses != bmisses || udone != bdone {
		t.Errorf("batched run diverged: states %v misses %d done %d, unbatched states %v misses %d done %d",
			batched, bmisses, bdone, unbatched, umisses, udone)
	}
	if umisses != 3 {
		t.Errorf("unique specs simulated = %d, want 3", umisses)
	}
}
