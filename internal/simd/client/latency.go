package client

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fvp/internal/telemetry"
)

// LatencySummary is an aggregated view of one server-side latency
// histogram: totals plus bucket-interpolated quantiles, the numbers a
// sweep driver compares against its SLO target.
type LatencySummary struct {
	// Count is the observations recorded since the server started.
	Count uint64
	// Sum is the total observed seconds; Sum/Count is the mean.
	Sum float64
	// P50 and P99 are interpolated quantiles in seconds. Log buckets
	// resolve them to within one bucket ratio (×2 for the standard
	// latency histogram).
	P50 float64
	P99 float64
}

// Mean returns the average observation, 0 when empty.
func (s LatencySummary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// RequestLatency fetches the server's metrics exposition and aggregates
// fvpd_request_seconds across every route and outcome — the end-to-end
// request latency distribution as the server itself measured it.
func (c *Client) RequestLatency(ctx context.Context) (LatencySummary, error) {
	text, err := c.MetricsText(ctx)
	if err != nil {
		return LatencySummary{}, err
	}
	return SummarizeHistogram(text, "fvpd_request_seconds")
}

// SummarizeHistogram parses one histogram family out of a Prometheus
// text exposition, summing across label sets (all members of a family
// share bucket bounds, so cumulative counts add). It errors if the
// family is absent.
func SummarizeHistogram(text, name string) (LatencySummary, error) {
	var out LatencySummary
	cums := make(map[float64]uint64)
	bucketPrefix := name + "_bucket{"
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			le, n, err := parseBucketLine(line)
			if err != nil {
				return out, fmt.Errorf("fvpd: bad %s bucket line %q: %w", name, line, err)
			}
			cums[le] += n
		case strings.HasPrefix(line, name+"_sum"):
			if v, err := lastField(line); err == nil {
				out.Sum += v
			}
		case strings.HasPrefix(line, name+"_count"):
			if v, err := lastField(line); err == nil {
				out.Count += uint64(v)
			}
		}
	}
	if len(cums) == 0 {
		return out, fmt.Errorf("fvpd: no %s histogram in exposition", name)
	}
	les := make([]float64, 0, len(cums))
	for le := range cums {
		les = append(les, le)
	}
	sort.Float64s(les) // +Inf sorts last
	snap := telemetry.HistSnapshot{Sum: out.Sum, Count: out.Count}
	var prev uint64
	for _, le := range les {
		if !math.IsInf(le, 1) {
			snap.Bounds = append(snap.Bounds, le)
		}
		snap.Counts = append(snap.Counts, cums[le]-prev)
		prev = cums[le]
	}
	if len(snap.Counts) == len(snap.Bounds) {
		// No +Inf bucket in the exposition: synthesize an empty overflow
		// so the snapshot shape matches a native histogram.
		snap.Counts = append(snap.Counts, 0)
	}
	out.P50 = snap.Quantile(0.50)
	out.P99 = snap.Quantile(0.99)
	return out, nil
}

// parseBucketLine extracts the le bound and cumulative count from one
// `name_bucket{...,le="x"} N` exposition line.
func parseBucketLine(line string) (le float64, n uint64, err error) {
	i := strings.LastIndex(line, `le="`)
	if i < 0 {
		return 0, 0, fmt.Errorf("no le label")
	}
	rest := line[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, 0, fmt.Errorf("unterminated le label")
	}
	if s := rest[:j]; s == "+Inf" {
		le = math.Inf(1)
	} else if le, err = strconv.ParseFloat(s, 64); err != nil {
		return 0, 0, err
	}
	v, err := lastField(line)
	if err != nil {
		return 0, 0, err
	}
	return le, uint64(v), nil
}

func lastField(line string) (float64, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, fmt.Errorf("no value field")
	}
	return strconv.ParseFloat(fields[len(fields)-1], 64)
}
