package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fvp"
	"fvp/internal/simd"
)

func newClient(t *testing.T, cfg simd.Config) *Client {
	t.Helper()
	svc := simd.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return New(srv.URL)
}

func TestClientRoundTrip(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 2})
	ctx := context.Background()

	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	ws, err := c.Workloads(ctx)
	if err != nil || len(ws) == 0 {
		t.Fatalf("workloads: %d, %v", len(ws), err)
	}
	ps, err := c.Predictors(ctx)
	if err != nil || len(ps) == 0 {
		t.Fatalf("predictors: %d, %v", len(ps), err)
	}

	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
	m, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.IPC <= 0 || m.Insts == 0 {
		t.Errorf("remote run returned empty metrics: %+v", m)
	}

	// Async submit + poll; the identical spec must come back cached.
	jobs, err := c.Submit(ctx, []simd.RunRequest{{RunSpec: spec}}, false)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Poll(ctx, jobs[0].ID, 10*time.Millisecond)
	if err != nil || st.State != simd.StateDone || !st.Cached {
		t.Fatalf("poll: state=%s cached=%v err=%v", st.State, st.Cached, err)
	}
	if st.Metrics.IPC != m.IPC {
		t.Error("cached remote metrics must match the first run")
	}
}

func TestClientSurfacesAPIErrors(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	_, err := c.Run(context.Background(), fvp.RunSpec{Workload: "no-such-kernel"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.StatusCode != 400 || apiErr.Temporary() {
		t.Errorf("unknown workload: %+v", apiErr)
	}
}

func TestClientMetricsText(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# HELP fvpd_jobs_queued", "# TYPE fvpd_jobs_queued gauge", "fvpd_jobs_queued 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// The warmup knobs must survive the wire both ways: spec fields out,
// fast-forward metrics back.
func TestClientWarmupFieldsRoundTrip(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 2})
	m, err := c.Run(context.Background(), fvp.RunSpec{
		Workload: "hmmer", WarmupInsts: 2_000, MeasureInsts: 5_000,
		WarmupMode: "functional", Regions: 2,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.WarmupMode != "functional" {
		t.Errorf("WarmupMode = %q, want functional", m.WarmupMode)
	}
	if m.FFInsts == 0 || m.FFInstsPerSec <= 0 {
		t.Errorf("fast-forward meters missing: ff=%d rate=%v", m.FFInsts, m.FFInstsPerSec)
	}

	var apiErr *APIError
	_, err = c.Run(context.Background(), fvp.RunSpec{Workload: "hmmer", WarmupMode: "fnctional"})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("bad warmup mode: err = %v, want *APIError with HTTP 400", err)
	}
	if err != nil && !strings.Contains(err.Error(), "functional") {
		t.Errorf("error should carry the did-you-mean hint: %v", err)
	}
}

func TestClientListAndTrace(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	ctx := context.Background()

	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
	jobs, err := c.Submit(ctx, []simd.RunRequest{{RunSpec: spec, Trace: true}}, true)
	if err != nil {
		t.Fatal(err)
	}
	st := jobs[0]
	if st.State != simd.StateDone {
		t.Fatalf("traced run ended %s: %s", st.State, st.Error)
	}
	if len(st.Artifacts) != 1 || !strings.HasPrefix(st.Artifacts[0], "trace-") {
		t.Fatalf("artifacts = %v, want one trace-* entry", st.Artifacts)
	}

	listed, err := c.List(ctx, "done")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != st.ID {
		t.Errorf("List(done) = %+v, want the finished job", listed)
	}
	if empty, err := c.List(ctx, "queued"); err != nil || len(empty) != 0 {
		t.Errorf("List(queued) = %+v, %v; want empty", empty, err)
	}
	var apiErr *APIError
	if _, err := c.List(ctx, "bogus"); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("List with bad state = %v, want HTTP 400", err)
	}

	blob, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "traceEvents") {
		t.Errorf("trace is not chrome://tracing JSON (%d bytes)", len(blob))
	}
	if _, err := c.Trace(ctx, "j-99999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("trace of unknown job = %v, want HTTP 404", err)
	}
}
