package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fvp"
	"fvp/internal/cluster"
	"fvp/internal/simd"
)

func newClient(t *testing.T, cfg simd.Config) *Client {
	t.Helper()
	svc := simd.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return New(srv.URL)
}

func TestClientRoundTrip(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 2})
	ctx := context.Background()

	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	ws, err := c.Workloads(ctx)
	if err != nil || len(ws) == 0 {
		t.Fatalf("workloads: %d, %v", len(ws), err)
	}
	ps, err := c.Predictors(ctx)
	if err != nil || len(ps) == 0 {
		t.Fatalf("predictors: %d, %v", len(ps), err)
	}

	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
	m, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.IPC <= 0 || m.Insts == 0 {
		t.Errorf("remote run returned empty metrics: %+v", m)
	}

	// Async submit + poll; the identical spec must come back cached.
	jobs, err := c.Submit(ctx, []simd.RunRequest{{RunSpec: spec}}, false)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Poll(ctx, jobs[0].ID, 10*time.Millisecond)
	if err != nil || st.State != simd.StateDone || !st.Cached {
		t.Fatalf("poll: state=%s cached=%v err=%v", st.State, st.Cached, err)
	}
	if st.Metrics.IPC != m.IPC {
		t.Error("cached remote metrics must match the first run")
	}
}

func TestClientSurfacesAPIErrors(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	_, err := c.Run(context.Background(), fvp.RunSpec{Workload: "no-such-kernel"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.StatusCode != 400 || apiErr.Temporary() {
		t.Errorf("unknown workload: %+v", apiErr)
	}
}

func TestClientMetricsText(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# HELP fvpd_jobs_queued", "# TYPE fvpd_jobs_queued gauge", "fvpd_jobs_queued 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// The warmup knobs must survive the wire both ways: spec fields out,
// fast-forward metrics back.
func TestClientWarmupFieldsRoundTrip(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 2})
	m, err := c.Run(context.Background(), fvp.RunSpec{
		Workload: "hmmer", WarmupInsts: 2_000, MeasureInsts: 5_000,
		WarmupMode: "functional", Regions: 2,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.WarmupMode != "functional" {
		t.Errorf("WarmupMode = %q, want functional", m.WarmupMode)
	}
	if m.FFInsts == 0 || m.FFInstsPerSec <= 0 {
		t.Errorf("fast-forward meters missing: ff=%d rate=%v", m.FFInsts, m.FFInstsPerSec)
	}

	var apiErr *APIError
	_, err = c.Run(context.Background(), fvp.RunSpec{Workload: "hmmer", WarmupMode: "fnctional"})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("bad warmup mode: err = %v, want *APIError with HTTP 400", err)
	}
	if err != nil && !strings.Contains(err.Error(), "functional") {
		t.Errorf("error should carry the did-you-mean hint: %v", err)
	}
}

func TestClientListAndTrace(t *testing.T) {
	c := newClient(t, simd.Config{Workers: 1})
	ctx := context.Background()

	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
	jobs, err := c.Submit(ctx, []simd.RunRequest{{RunSpec: spec, Trace: true}}, true)
	if err != nil {
		t.Fatal(err)
	}
	st := jobs[0]
	if st.State != simd.StateDone {
		t.Fatalf("traced run ended %s: %s", st.State, st.Error)
	}
	if len(st.Artifacts) != 1 || !strings.HasPrefix(st.Artifacts[0], "trace-") {
		t.Fatalf("artifacts = %v, want one trace-* entry", st.Artifacts)
	}

	listed, err := c.List(ctx, "done")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != st.ID {
		t.Errorf("List(done) = %+v, want the finished job", listed)
	}
	if empty, err := c.List(ctx, "queued"); err != nil || len(empty) != 0 {
		t.Errorf("List(queued) = %+v, %v; want empty", empty, err)
	}
	var apiErr *APIError
	if _, err := c.List(ctx, "bogus"); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("List with bad state = %v, want HTTP 400", err)
	}

	blob, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "traceEvents") {
		t.Errorf("trace is not chrome://tracing JSON (%d bytes)", len(blob))
	}
	if _, err := c.Trace(ctx, "j-99999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("trace of unknown job = %v, want HTTP 404", err)
	}
}

// stubRun returns instantly-succeeding metrics for submit-path tests.
func stubRun(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
	return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
}

// newClusterClient wires the client to a cluster.Node handler instead
// of the bare service surface.
func newClusterClient(t *testing.T, cfg simd.Config) *Client {
	t.Helper()
	svc := simd.New(cfg)
	node, err := cluster.New(cluster.Config{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return New(srv.URL)
}

func TestClientQuotaExceededError(t *testing.T) {
	c := newClient(t, simd.Config{
		Workers: 1, Run: stubRun,
		Tenants: simd.TenantConfig{Quotas: map[string]simd.TenantQuota{
			"flood": {Rate: 0.001, Burst: 1},
		}},
	})
	ctx := context.Background()
	opts := SubmitOptions{Tenant: "flood"}

	spec := func(insts uint64) []simd.RunRequest {
		return []simd.RunRequest{{RunSpec: fvp.RunSpec{
			Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: insts,
		}}}
	}
	if _, err := c.SubmitWith(ctx, spec(1000), opts); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := c.SubmitWith(ctx, spec(2000), opts)
	var qe *QuotaExceededError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota submit: %v, want *QuotaExceededError", err)
	}
	if qe.Tenant != "flood" || qe.RetryAfter <= 0 || !qe.Temporary() {
		t.Fatalf("QuotaExceededError = %+v", qe)
	}
}

func TestClientClusterStatus(t *testing.T) {
	c := newClusterClient(t, simd.Config{Workers: 1, Run: stubRun})
	st, err := c.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != "" || len(st.Peers) != 1 || !st.Peers[0].Self {
		t.Fatalf("single-node cluster status = %+v", st)
	}
}

func TestClientForwardedError(t *testing.T) {
	// A fake cluster node that answers every by-ID GET with the
	// owner-unreachable 502.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cluster.ForwardPeerHeader, "node2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte(`{"error":"cluster: job owner \"node2\" unreachable: connection refused"}`))
	}))
	defer srv.Close()

	_, err := New(srv.URL).Get(context.Background(), "node2.j-00000001")
	var fe *ForwardedError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *ForwardedError", err)
	}
	if fe.Peer != "node2" || !fe.Temporary() {
		t.Fatalf("ForwardedError = %+v", fe)
	}
}

func TestClientSubmitWithStampsTenant(t *testing.T) {
	var got atomic.Value
	svc := simd.New(simd.Config{Workers: 1, Run: stubRun})
	inner := svc.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			raw, _ := io.ReadAll(r.Body)
			got.Store(string(raw))
			r.Body = io.NopCloser(strings.NewReader(string(raw)))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})

	c := New(srv.URL)
	reqs := []simd.RunRequest{
		{RunSpec: fvp.RunSpec{Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: 1000}},
		{Tenant: "explicit", RunSpec: fvp.RunSpec{Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: 2000}},
	}
	if _, err := c.SubmitWith(context.Background(), reqs, SubmitOptions{Wait: true, Tenant: "team-a"}); err != nil {
		t.Fatal(err)
	}
	body := got.Load().(string)
	if !strings.Contains(body, `"tenant":"team-a"`) || !strings.Contains(body, `"tenant":"explicit"`) {
		t.Fatalf("tenant stamping wrong: %s", body)
	}
	// The caller's slice must not be mutated.
	if reqs[0].Tenant != "" {
		t.Fatal("SubmitWith mutated the caller's requests")
	}
}
