// Package client is the Go client for the fvpd batch-simulation service
// (internal/simd). cmd/fvpsim's -server mode uses it to submit runs to a
// shared daemon instead of simulating locally.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"fvp"
	"fvp/internal/cluster"
	"fvp/internal/simd"
)

// APIError is a non-2xx response from the service.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the service's error text.
	Message string
	// RetryAfter is the parsed Retry-After hint on 503s (0 if absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fvpd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Temporary reports whether the request may succeed if retried (the
// service signaled backpressure, not rejection).
func (e *APIError) Temporary() bool { return e.StatusCode == http.StatusServiceUnavailable }

// QuotaExceededError is a 429: per-tenant admission control refused the
// submit. Unlike global backpressure (503), it names the throttled
// tenant — other tenants' submits would still be admitted.
type QuotaExceededError struct {
	// Tenant is the tenant the quota applied to.
	Tenant string
	// RetryAfter is the server's earliest-retry hint.
	RetryAfter time.Duration
	// Message is the service's error text.
	Message string
}

func (e *QuotaExceededError) Error() string {
	return fmt.Sprintf("fvpd: tenant %q over quota, retry in %s: %s", e.Tenant, e.RetryAfter, e.Message)
}

// Temporary reports that the submit may succeed once tokens refill.
func (e *QuotaExceededError) Temporary() bool { return true }

// ForwardedError is a 502 from a cluster node that could not reach the
// peer owning the addressed job: the job may exist, but its owner is
// down. Retrying asks the owner again; it does not reroute.
type ForwardedError struct {
	// Peer is the unreachable owner node's ID.
	Peer string
	// Message is the routing node's error text.
	Message string
}

func (e *ForwardedError) Error() string {
	return fmt.Sprintf("fvpd: job owner %q unreachable: %s", e.Peer, e.Message)
}

// Temporary reports that the owner may come back.
func (e *ForwardedError) Temporary() bool { return true }

// Client talks to one fvpd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (unless
// out is nil), converting non-2xx responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var envelope struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error != "" {
			apiErr.Message = envelope.Error
		} else {
			apiErr.Message = resp.Status
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			var secs int
			if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return &QuotaExceededError{
				Tenant:     resp.Header.Get("X-Fvpd-Tenant"),
				RetryAfter: apiErr.RetryAfter,
				Message:    apiErr.Message,
			}
		}
		if peer := resp.Header.Get(cluster.ForwardPeerHeader); resp.StatusCode == http.StatusBadGateway && peer != "" {
			return &ForwardedError{Peer: peer, Message: apiErr.Message}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitOptions is the options-struct form of Submit's knobs.
type SubmitOptions struct {
	// Wait blocks until every job finishes; the returned statuses then
	// carry results. Canceling ctx mid-wait disconnects, which cancels
	// the server-side jobs.
	Wait bool
	// Tenant attributes the runs to a tenant for admission control. It
	// is applied to every request that doesn't already name one.
	Tenant string
}

// Submit sends a batch of runs; see SubmitWith for the full option set.
func (c *Client) Submit(ctx context.Context, reqs []simd.RunRequest, wait bool) ([]simd.JobStatus, error) {
	return c.SubmitWith(ctx, reqs, SubmitOptions{Wait: wait})
}

// SubmitWith sends a batch of runs under the given options. A 429
// (per-tenant quota) surfaces as *QuotaExceededError.
func (c *Client) SubmitWith(ctx context.Context, reqs []simd.RunRequest, opts SubmitOptions) ([]simd.JobStatus, error) {
	if opts.Tenant != "" {
		stamped := make([]simd.RunRequest, len(reqs))
		copy(stamped, reqs)
		for i := range stamped {
			if stamped[i].Tenant == "" {
				stamped[i].Tenant = opts.Tenant
			}
		}
		reqs = stamped
	}
	path := "/v1/runs"
	if opts.Wait {
		path += "?wait=1"
	}
	var resp simd.SubmitResponse
	if err := c.do(ctx, http.MethodPost, path, struct {
		Runs []simd.RunRequest `json:"runs"`
	}{reqs}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Cluster fetches the server's ring membership and per-peer forwarding
// health (GET /v1/cluster).
func (c *Client) Cluster(ctx context.Context) (cluster.Status, error) {
	var st cluster.Status
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st)
	return st, err
}

// Run submits one spec in wait mode and returns its metrics — the remote
// equivalent of fvp.RunContext.
func (c *Client) Run(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
	return c.RunWith(ctx, spec, SubmitOptions{})
}

// RunWith is Run under submit options; Wait is implied.
func (c *Client) RunWith(ctx context.Context, spec fvp.RunSpec, opts SubmitOptions) (fvp.Metrics, error) {
	opts.Wait = true
	jobs, err := c.SubmitWith(ctx, []simd.RunRequest{{RunSpec: spec}}, opts)
	if err != nil {
		return fvp.Metrics{}, err
	}
	st := jobs[0]
	if st.State != simd.StateDone || st.Metrics == nil {
		return fvp.Metrics{}, fmt.Errorf("fvpd: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Metrics, nil
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (simd.JobStatus, error) {
	var st simd.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st)
	return st, err
}

// Poll polls a job until it reaches a terminal state or ctx fires.
func (c *Client) Poll(ctx context.Context, id string, interval time.Duration) (simd.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != simd.StateQueued && st.State != simd.StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, nil)
}

// List fetches the server's job listing, optionally filtered to one state
// ("queued", "running", "done", "failed", "canceled"; "" lists all).
func (c *Client) List(ctx context.Context, state string) ([]simd.JobStatus, error) {
	path := "/v1/runs"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	var out simd.JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Trace fetches a job's pipeline-trace artifact (submit the run with
// Trace set). The bytes are chrome://tracing / Perfetto JSON.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/runs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return b, nil
}

// Workloads lists the server's study list.
func (c *Client) Workloads(ctx context.Context) ([]fvp.WorkloadInfo, error) {
	var out []fvp.WorkloadInfo
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &out)
	return out, err
}

// Predictors lists the server's predictor configurations.
func (c *Client) Predictors(ctx context.Context) ([]simd.PredictorInfo, error) {
	var out []simd.PredictorInfo
	err := c.do(ctx, http.MethodGet, "/v1/predictors", nil, &out)
	return out, err
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) (simd.Health, error) {
	var h simd.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// MetricsText fetches the server's Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}
