// Package client is the Go client for the fvpd batch-simulation service
// (internal/simd). cmd/fvpsim's -server mode uses it to submit runs to a
// shared daemon instead of simulating locally.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"fvp"
	"fvp/internal/simd"
)

// APIError is a non-2xx response from the service.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the service's error text.
	Message string
	// RetryAfter is the parsed Retry-After hint on 503s (0 if absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fvpd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Temporary reports whether the request may succeed if retried (the
// service signaled backpressure, not rejection).
func (e *APIError) Temporary() bool { return e.StatusCode == http.StatusServiceUnavailable }

// Client talks to one fvpd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (unless
// out is nil), converting non-2xx responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var envelope struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error != "" {
			apiErr.Message = envelope.Error
		} else {
			apiErr.Message = resp.Status
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			var secs int
			if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a batch of runs. With wait=true the call blocks until
// every job finishes and the returned statuses carry results; canceling
// ctx mid-wait disconnects, which cancels the server-side jobs.
func (c *Client) Submit(ctx context.Context, reqs []simd.RunRequest, wait bool) ([]simd.JobStatus, error) {
	path := "/v1/runs"
	if wait {
		path += "?wait=1"
	}
	var resp simd.SubmitResponse
	if err := c.do(ctx, http.MethodPost, path, struct {
		Runs []simd.RunRequest `json:"runs"`
	}{reqs}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Run submits one spec in wait mode and returns its metrics — the remote
// equivalent of fvp.RunContext.
func (c *Client) Run(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
	jobs, err := c.Submit(ctx, []simd.RunRequest{{RunSpec: spec}}, true)
	if err != nil {
		return fvp.Metrics{}, err
	}
	st := jobs[0]
	if st.State != simd.StateDone || st.Metrics == nil {
		return fvp.Metrics{}, fmt.Errorf("fvpd: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Metrics, nil
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (simd.JobStatus, error) {
	var st simd.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st)
	return st, err
}

// Poll polls a job until it reaches a terminal state or ctx fires.
func (c *Client) Poll(ctx context.Context, id string, interval time.Duration) (simd.JobStatus, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != simd.StateQueued && st.State != simd.StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, nil)
}

// List fetches the server's job listing, optionally filtered to one state
// ("queued", "running", "done", "failed", "canceled"; "" lists all).
func (c *Client) List(ctx context.Context, state string) ([]simd.JobStatus, error) {
	path := "/v1/runs"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	var out simd.JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Trace fetches a job's pipeline-trace artifact (submit the run with
// Trace set). The bytes are chrome://tracing / Perfetto JSON.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/runs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return b, nil
}

// Workloads lists the server's study list.
func (c *Client) Workloads(ctx context.Context) ([]fvp.WorkloadInfo, error) {
	var out []fvp.WorkloadInfo
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &out)
	return out, err
}

// Predictors lists the server's predictor configurations.
func (c *Client) Predictors(ctx context.Context) ([]simd.PredictorInfo, error) {
	var out []simd.PredictorInfo
	err := c.do(ctx, http.MethodGet, "/v1/predictors", nil, &out)
	return out, err
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) (simd.Health, error) {
	var h simd.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// MetricsText fetches the server's Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}
