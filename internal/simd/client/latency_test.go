package client

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"fvp"
	"fvp/internal/simd"
	"fvp/internal/telemetry"
)

// TestSummarizeHistogramRoundTrip: rendering a telemetry histogram to
// Prometheus text and parsing it back recovers the totals exactly and
// the quantiles to bucket resolution — including summing across label
// sets of one family.
func TestSummarizeHistogramRoundTrip(t *testing.T) {
	v := telemetry.NewVec(telemetry.NewLatency)
	ok := v.With(`path="/v1/runs",outcome="ok"`)
	bad := v.With(`path="/v1/runs",outcome="server_error"`)
	for i := 0; i < 90; i++ {
		ok.Observe(0.001) // 1ms
	}
	for i := 0; i < 10; i++ {
		bad.Observe(0.5) // 500ms tail
	}
	var buf bytes.Buffer
	v.WriteProm(&buf, "fvpd_request_seconds", "help")

	sum, err := SummarizeHistogram(buf.String(), "fvpd_request_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 100 {
		t.Errorf("count = %d, want 100", sum.Count)
	}
	if want := 90*0.001 + 10*0.5; math.Abs(sum.Sum-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", sum.Sum, want)
	}
	// p50 sits in the bucket containing 1ms, p99 in the one containing
	// 500ms; log buckets bound each within a ×2 ratio.
	if sum.P50 <= 0.0005 || sum.P50 > 0.002 {
		t.Errorf("p50 = %g, want ~1ms", sum.P50)
	}
	if sum.P99 <= 0.25 || sum.P99 > 1.0 {
		t.Errorf("p99 = %g, want ~500ms", sum.P99)
	}

	if _, err := SummarizeHistogram(buf.String(), "fvpd_absent_seconds"); err == nil {
		t.Error("absent family did not error")
	}
}

// TestRequestLatencyFromServer: the helper reads a live service's
// exposition end to end.
func TestRequestLatencyFromServer(t *testing.T) {
	svc := simd.New(simd.Config{Workers: 1, Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
		return fvp.Metrics{IPC: 1, Cycles: 1, Insts: 1}, nil
	}})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	c := New(srv.URL)
	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: "fvp", WarmupInsts: 100, MeasureInsts: 1000}
	if _, err := c.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	sum, err := c.RequestLatency(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count == 0 || sum.P99 <= 0 {
		t.Fatalf("no latency recorded: %+v", sum)
	}
}
