// Package simd is the batch-simulation service behind cmd/fvpd: a
// bounded job queue with backpressure, a worker pool sized to the host,
// a content-addressed result cache with single-flight deduplication, and
// an HTTP/JSON API for submitting runs and polling results.
//
// The execution model is deliberately simple: every submitted RunSpec is
// normalized and hashed; identical specs share one simulation (whether
// they arrive concurrently or after a result is cached), and distinct
// specs queue behind a fixed-capacity run queue whose overflow surfaces
// to clients as 503 + Retry-After rather than unbounded memory growth.
package simd

import (
	"errors"

	"fvp"
)

// State is a job's lifecycle phase.
type State string

// Job states, in lifecycle order. Queued and Running are transient;
// Done, Failed, and Canceled are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// RunRequest is one unit of work submitted to the service: a façade
// RunSpec plus service-level knobs.
type RunRequest struct {
	fvp.RunSpec
	// Tenant attributes the run to a submitter for admission control and
	// fairness; "" is the anonymous tenant. Tenancy is a service-level
	// concern: it is not part of the spec's content address, so identical
	// specs from different tenants still share one simulation.
	Tenant string `json:"tenant,omitempty"`
	// Sampling is the versioned form of the sampled-simulation knobs,
	// replacing the embedded RunSpec's flat sample_* fields. The flat
	// fields are still accepted (the service answers them with a
	// Deprecation header); setting both is a validation error.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// TimeoutMS bounds the simulation's wall time; 0 means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace asks the run to record a pipeline trace artifact (Perfetto /
	// chrome://tracing JSON), retrievable from GET /v1/runs/{id}/trace.
	// Traces are only captured for single-region runs.
	Trace bool `json:"trace,omitempty"`
}

// SamplingSpec is the nested sampled-simulation block of a RunRequest.
// Fields mirror fvp.RunSpec's sample_* knobs one-to-one; see those for
// semantics.
type SamplingSpec struct {
	Units       int     `json:"units,omitempty"`
	UnitInsts   uint64  `json:"unit_insts,omitempty"`
	WarmupInsts uint64  `json:"warmup_insts,omitempty"`
	TargetCI    float64 `json:"target_ci,omitempty"`
	MaxUnits    int     `json:"max_units,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
}

// ErrSamplingConflict rejects a request that sets both the nested
// Sampling block and the deprecated flat sample_* fields.
var ErrSamplingConflict = errors.New(
	`simd: request sets both "sampling" and the deprecated flat sample_* fields; use "sampling" only`)

// legacySampling reports whether the request spells its sampling plan
// with the deprecated flat fields.
func (r RunRequest) legacySampling() bool {
	return r.Sampling == nil &&
		(r.SampleUnits != 0 || r.SampleUnitInsts != 0 || r.SampleWarmupInsts != 0 ||
			r.SampleTargetCI != 0 || r.SampleMaxUnits != 0 || r.SampleSeed != 0)
}

// Flattened folds the nested Sampling block into the embedded RunSpec's
// flat fields — the execution-side representation — erroring when both
// forms are present.
func (r RunRequest) Flattened() (RunRequest, error) {
	if r.Sampling == nil {
		return r, nil
	}
	if r.legacySampling() || r.SampleUnits != 0 || r.SampleUnitInsts != 0 ||
		r.SampleWarmupInsts != 0 || r.SampleTargetCI != 0 || r.SampleMaxUnits != 0 || r.SampleSeed != 0 {
		return r, ErrSamplingConflict
	}
	sp := r.Sampling
	r.SampleUnits = sp.Units
	r.SampleUnitInsts = sp.UnitInsts
	r.SampleWarmupInsts = sp.WarmupInsts
	r.SampleTargetCI = sp.TargetCI
	r.SampleMaxUnits = sp.MaxUnits
	r.SampleSeed = sp.Seed
	r.Sampling = nil
	return r, nil
}

// Progress reports how far a running simulation has gotten. The feed is
// the façade's interval observer, which samples the measured region only,
// so RetiredInsts counts measured-region retirements (warmup shows 0/target)
// and trails real time by at most one sampling interval.
type Progress struct {
	// RetiredInsts is the number of measured-region instructions retired
	// as of the last telemetry sample.
	RetiredInsts uint64 `json:"retired_insts"`
	// TargetInsts is the run's measured-region length.
	TargetInsts uint64 `json:"target_insts"`
	// Ratio is RetiredInsts/TargetInsts in [0,1].
	Ratio float64 `json:"ratio"`
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cached is true when the result was served from the content-addressed
	// cache or deduplicated onto an in-flight identical run.
	Cached bool        `json:"cached"`
	Spec   fvp.RunSpec `json:"spec"`
	// Tenant is the submitter the job is attributed to ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Node names the cluster node the job lives on; empty outside
	// cluster mode.
	Node string `json:"node,omitempty"`
	// Progress is present while State is running (followers report their
	// leader's progress).
	Progress *Progress `json:"progress,omitempty"`
	// Metrics is present once State is done.
	Metrics *fvp.Metrics `json:"metrics,omitempty"`
	// Artifacts names the stored artifacts attached to a done job (e.g.
	// "trace-<speckey>"); fetch via GET /v1/runs/{id}/trace.
	Artifacts []string `json:"artifacts,omitempty"`
	// Error is present when State is failed or canceled.
	Error string `json:"error,omitempty"`
}

// JobList is the body of GET /v1/runs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// SubmitResponse is the body of POST /v1/runs.
type SubmitResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// PredictorInfo is one row of GET /v1/predictors.
type PredictorInfo struct {
	Name         string `json:"name"`
	StorageBytes int    `json:"storage_bytes"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status    string `json:"status"`
	Workers   int    `json:"workers"`
	QueueFree int    `json:"queue_free"`
}

// apiError is the JSON error envelope of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}
