package simd

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fvp"
)

// fastSpec is a real simulation kept short enough for unit tests.
func fastSpec() fvp.RunSpec {
	return fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, WarmupInsts: 1_000, MeasureInsts: 2_000}
}

func TestSpecKeyNormalization(t *testing.T) {
	implicit := fvp.RunSpec{Workload: "omnetpp"}
	explicit := fvp.RunSpec{
		Workload: "omnetpp", Machine: fvp.Skylake, Predictor: fvp.PredNone,
		WarmupInsts: 100_000, MeasureInsts: 300_000,
	}
	if specKey(implicit) != specKey(explicit) {
		t.Error("spec with implicit defaults must hash equal to its explicit form")
	}
	other := explicit
	other.Predictor = fvp.PredFVP
	if specKey(explicit) == specKey(other) {
		t.Error("different predictors must hash differently")
	}
}

// TestSubmitServesSecondFromCache is the cache-hit fast path: an
// identical spec submitted after completion is terminal at submit time.
func TestSubmitServesSecondFromCache(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	first, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), first.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("first run: state=%s err=%v", st.State, err)
	}
	if st.Cached {
		t.Error("first run must not be cached")
	}

	second, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached || second.Metrics == nil {
		t.Fatalf("second run should be served from cache at submit time, got %+v", second)
	}
	if second.Metrics.IPC != st.Metrics.IPC {
		t.Error("cached metrics must match the simulated result")
	}
	snap := svc.Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestSingleFlightDedup hammers one RunSpec from 32 goroutines and
// asserts exactly one simulation executed — the rest ride the in-flight
// leader or the result cache.
func TestSingleFlightDedup(t *testing.T) {
	var sims atomic.Int64
	svc := New(Config{
		Workers: 4,
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			sims.Add(1)
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return fvp.Metrics{}, ctx.Err()
			}
			return fvp.Metrics{IPC: 2.5}, nil
		},
	})
	defer svc.Close()

	const n = 32
	var wg sync.WaitGroup
	statuses := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i], errs[i] = svc.Wait(context.Background(), st.ID)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if statuses[i].State != StateDone || statuses[i].Metrics == nil || statuses[i].Metrics.IPC != 2.5 {
			t.Fatalf("submit %d: state=%s metrics=%v", i, statuses[i].State, statuses[i].Metrics)
		}
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("%d simulations executed for one unique spec, want exactly 1", got)
	}
	snap := svc.Snapshot()
	if snap.CacheMisses != 1 || snap.CacheHits != n-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", snap.CacheHits, snap.CacheMisses, n-1)
	}
}

func TestQueueFullAllOrNothingBatch(t *testing.T) {
	release := make(chan struct{})
	svc := New(Config{
		Workers:   1,
		QueueSize: 2,
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			select {
			case <-release:
				return fvp.Metrics{IPC: 1}, nil
			case <-ctx.Done():
				return fvp.Metrics{}, ctx.Err()
			}
		},
	})
	defer svc.Close()
	defer close(release)

	// Occupy the worker, then fill one of two queue slots.
	specN := func(n uint64) RunRequest {
		s := fastSpec()
		s.WarmupInsts = n // distinct spec per n
		return RunRequest{RunSpec: s}
	}
	if _, err := svc.Submit(specN(10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return svc.Snapshot().JobsRunning == 1 })
	if _, err := svc.Submit(specN(20)); err != nil {
		t.Fatal(err)
	}

	// A 2-run batch needs 2 slots but only 1 is free: reject whole batch.
	if _, err := svc.SubmitBatch([]RunRequest{specN(30), specN(40)}); err != ErrQueueFull {
		t.Fatalf("over-capacity batch: err=%v, want ErrQueueFull", err)
	}
	if got := svc.Snapshot().JobsQueued; got != 1 {
		t.Errorf("rejected batch must not leak queue slots: queued=%d, want 1", got)
	}
	// A 2-run batch whose second entry dedups onto the first needs 1 slot.
	if _, err := svc.SubmitBatch([]RunRequest{specN(50), specN(50)}); err != nil {
		t.Errorf("dedupable batch should fit: %v", err)
	}
}

// TestCancelStopsSimulation submits an hours-long real simulation and
// cancels it; the cycle loop must observe the context and free the
// worker within a stats-poll interval, not at end of run.
func TestCancelStopsSimulation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	spec := fvp.RunSpec{Workload: "omnetpp", Predictor: fvp.PredFVP, MeasureInsts: 1_000_000_000}
	st, err := svc.Submit(RunRequest{RunSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return svc.Snapshot().JobsRunning == 1 })

	if !svc.Cancel(st.ID) {
		t.Fatal("cancel of a running job must succeed")
	}
	waitFor(t, func() bool {
		s := svc.Snapshot()
		return s.JobsRunning == 0 && s.JobsCanceled >= 1
	})
	final, _ := svc.Get(st.ID)
	if final.State != StateCanceled {
		t.Errorf("job state = %s, want canceled", final.State)
	}
	// The freed worker must pick up new work (fast real run).
	st2, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := svc.Wait(context.Background(), st2.ID); err != nil || got.State != StateDone {
		t.Errorf("post-cancel run: state=%s err=%v", got.State, err)
	}
}

// TestCancelFollowerKeepsLeader checks that canceling one deduplicated
// submitter does not kill the simulation others still wait on.
func TestCancelFollowerKeepsLeader(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	svc := New(Config{
		Workers: 1,
		Run: func(ctx context.Context, spec fvp.RunSpec) (fvp.Metrics, error) {
			close(started)
			select {
			case <-release:
				return fvp.Metrics{IPC: 9}, nil
			case <-ctx.Done():
				return fvp.Metrics{}, ctx.Err()
			}
		},
	})
	defer svc.Close()

	leader, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	follower, err := svc.Submit(RunRequest{RunSpec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Cached {
		t.Fatal("second identical submit must dedup onto the in-flight run")
	}

	if !svc.Cancel(follower.ID) {
		t.Fatal("canceling the follower must succeed")
	}
	close(release)
	st, err := svc.Wait(context.Background(), leader.ID)
	if err != nil || st.State != StateDone || st.Metrics.IPC != 9 {
		t.Errorf("leader must still finish: state=%s err=%v", st.State, err)
	}
	if fst, _ := svc.Get(follower.ID); fst.State != StateCanceled {
		t.Errorf("follower state = %s, want canceled", fst.State)
	}
}

func TestDrainFinishesQueuedWork(t *testing.T) {
	svc := New(Config{Workers: 1})
	sts, err := svc.SubmitBatch([]RunRequest{
		{RunSpec: fastSpec()},
		{RunSpec: fvp.RunSpec{Workload: "mcf", WarmupInsts: 1_000, MeasureInsts: 2_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, st := range sts {
		if final, _ := svc.Get(st.ID); final.State != StateDone {
			t.Errorf("job %s state = %s after drain, want done", st.ID, final.State)
		}
	}
	if _, err := svc.Submit(RunRequest{RunSpec: fastSpec()}); err != ErrClosed {
		t.Errorf("submit after drain: err=%v, want ErrClosed", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	_, err := svc.Submit(RunRequest{RunSpec: fvp.RunSpec{Workload: "omnetp"}})
	if err == nil {
		t.Fatal("misspelled workload must be rejected")
	}
	if !strings.Contains(err.Error(), `did you mean "omnetpp"`) {
		t.Errorf("error should carry a suggestion, got %q", err)
	}
}

// waitFor polls cond every 20ms — the test's stats-poll interval — and
// fails the test if it doesn't hold within 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
