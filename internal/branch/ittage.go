package branch

// ITTAGE predicts indirect-branch targets with the same tagged
// geometric-history structure as TAGE, but entries carry full targets
// instead of direction counters (Seznec & Michaud).
type ITTAGE struct {
	cfg  TAGEConfig
	base []ittEntry   // PC-indexed fallback
	tbl  [][]ittEntry // tagged history tables

	Lookups     uint64
	Mispredicts uint64
}

type ittEntry struct {
	tag    uint16
	target uint64
	conf   int8 // 2-bit confidence
	ucnt   uint8
}

// DefaultITTAGEConfig sizes the indirect predictor (smaller than the
// direction predictor, as indirect branches are rarer).
func DefaultITTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:  9,
		TableBits: 8,
		TagBits:   9,
		HistLens:  []uint{4, 12, 32, 64},
	}
}

// NewITTAGE builds an indirect-target predictor from cfg.
func NewITTAGE(cfg TAGEConfig) *ITTAGE {
	t := &ITTAGE{cfg: cfg}
	t.base = make([]ittEntry, 1<<cfg.BaseBits)
	t.tbl = make([][]ittEntry, len(cfg.HistLens))
	for i := range t.tbl {
		t.tbl[i] = make([]ittEntry, 1<<cfg.TableBits)
	}
	return t
}

// Reset restores the just-constructed state without reallocating the tables.
func (t *ITTAGE) Reset() {
	for i := range t.base {
		t.base[i] = ittEntry{}
	}
	for _, tbl := range t.tbl {
		for i := range tbl {
			tbl[i] = ittEntry{}
		}
	}
	t.Lookups = 0
	t.Mispredicts = 0
}

func (t *ITTAGE) baseIdx(pc uint64) uint64 {
	return (pc >> 2) & (1<<t.cfg.BaseBits - 1)
}

func (t *ITTAGE) idx(pc uint64, g *GlobalHistory, table int) uint64 {
	h := g.Fold(t.cfg.HistLens[table], t.cfg.TableBits)
	p := g.Path() & (1<<t.cfg.TableBits - 1)
	return ((pc >> 2) ^ h ^ p) & (1<<t.cfg.TableBits - 1)
}

func (t *ITTAGE) tag(pc uint64, g *GlobalHistory, table int) uint16 {
	h := g.Fold(t.cfg.HistLens[table], t.cfg.TagBits)
	return uint16(((pc >> 2) ^ (pc >> 12) ^ h) & (1<<t.cfg.TagBits - 1))
}

// ittState mirrors lookupState for the indirect predictor.
type ittState struct {
	provider int
	target   uint64
	hit      bool
}

// Predict returns the predicted target for the indirect branch at pc.
// ok is false when no table has any entry (cold predictor).
func (t *ITTAGE) Predict(pc uint64, g *GlobalHistory) (uint64, bool, ittState) {
	t.Lookups++
	st := ittState{provider: -1}
	for i := len(t.tbl) - 1; i >= 0; i-- {
		e := &t.tbl[i][t.idx(pc, g, i)]
		if e.tag == t.tag(pc, g, i) && e.target != 0 {
			st.provider = i
			st.target = e.target
			st.hit = true
			return e.target, true, st
		}
	}
	e := &t.base[t.baseIdx(pc)]
	if e.target != 0 {
		st.target = e.target
		st.hit = true
		return e.target, true, st
	}
	return 0, false, st
}

// Update trains the predictor with the resolved target.
func (t *ITTAGE) Update(pc uint64, g *GlobalHistory, st ittState, target uint64) {
	correct := st.hit && st.target == target
	if !correct {
		t.Mispredicts++
	}

	if st.provider >= 0 {
		e := &t.tbl[st.provider][t.idx(pc, g, st.provider)]
		if e.tag == t.tag(pc, g, st.provider) {
			if e.target == target {
				if e.conf < 3 {
					e.conf++
				}
				if e.ucnt < 3 {
					e.ucnt++
				}
			} else if e.conf > 0 {
				e.conf--
			} else {
				e.target = target
				if e.ucnt > 0 {
					e.ucnt--
				}
			}
		}
	} else {
		e := &t.base[t.baseIdx(pc)]
		if e.target == target {
			if e.conf < 3 {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		} else {
			e.target = target
		}
	}

	// Allocate a longer-history entry on a wrong or missing prediction.
	if !correct {
		start := st.provider + 1
		for i := start; i < len(t.tbl); i++ {
			e := &t.tbl[i][t.idx(pc, g, i)]
			if e.ucnt == 0 {
				e.tag = t.tag(pc, g, i)
				e.target = target
				e.conf = 0
				return
			}
		}
		for i := start; i < len(t.tbl); i++ {
			e := &t.tbl[i][t.idx(pc, g, i)]
			if e.ucnt > 0 {
				e.ucnt--
			}
		}
	}
}
