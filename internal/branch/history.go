// Package branch implements the front-end control-flow predictors of the
// simulated core: a TAGE conditional-direction predictor, an ITTAGE indirect
// target predictor and a return-address stack, all driven from a shared
// global history register.
//
// The global history register matters beyond branch prediction: FVP's
// context value predictor keys on "the outcome of the last 32 branches"
// (paper §IV-C), and the paper's argument for ignoring mispredicting-branch
// chains (§IV-A2) is precisely that value prediction and branch prediction
// share this history. Exposing one GlobalHistory implementation to both
// subsystems keeps that coupling honest.
package branch

// GlobalHistory is a shift register of conditional-branch outcomes plus a
// path history of branch PCs. It supports checkpoint/restore so the core can
// repair history on squashes.
type GlobalHistory struct {
	// bits holds the outcome history, most recent outcome in bit 0.
	bits uint64
	// path holds a folded path history of recent branch PCs.
	path uint64
}

// Push records the outcome of one conditional branch at pc.
func (g *GlobalHistory) Push(pc uint64, taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
	g.path = g.path<<3 ^ (pc >> 2)
}

// Bits returns the low n bits of outcome history (n ≤ 64).
func (g *GlobalHistory) Bits(n uint) uint64 {
	if n >= 64 {
		return g.bits
	}
	return g.bits & (1<<n - 1)
}

// Path returns the folded path history.
func (g *GlobalHistory) Path() uint64 { return g.path }

// Snapshot captures the current history for later restore.
func (g *GlobalHistory) Snapshot() GlobalHistory { return *g }

// Restore rewinds the history to a snapshot (used on pipeline squash).
func (g *GlobalHistory) Restore(s GlobalHistory) { *g = s }

// Fold compresses the low histLen bits of history into outBits bits by
// XOR-folding, the standard TAGE index/tag hashing step.
func (g *GlobalHistory) Fold(histLen, outBits uint) uint64 {
	if outBits == 0 {
		return 0
	}
	h := g.Bits(histLen)
	var folded uint64
	for h != 0 {
		folded ^= h & (1<<outBits - 1)
		h >>= outBits
	}
	return folded
}

// RAS is a fixed-depth return-address stack with wrap-around, matching the
// behaviour of hardware RAS structures (overflow silently overwrites the
// oldest entry; underflow predicts garbage, which shows up as a mispredict).
type RAS struct {
	entries []uint64
	top     int
	depth   int
}

// NewRAS returns a stack with the given number of entries.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		entries = 16
	}
	return &RAS{entries: make([]uint64, entries)}
}

// Reset empties the stack without reallocating it.
func (r *RAS) Reset() {
	for i := range r.entries {
		r.entries[i] = 0
	}
	r.top = 0
	r.depth = 0
}

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false when the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}
