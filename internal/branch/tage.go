package branch

// TAGE is a TAgged GEometric-history-length direction predictor (Seznec &
// Michaud). A bimodal base table backs N tagged tables indexed by PC hashed
// with geometrically increasing history lengths; the longest-history hit
// provides the prediction, with the "useful" bit steering allocation and an
// alternate-prediction fallback for weak newly-allocated entries.
type TAGE struct {
	cfg TAGEConfig

	base []int8 // bimodal counters, 2-bit
	tbl  [][]tageEntry

	// useAltOnNA is the Seznec counter that decides whether to trust a
	// weak (just-allocated) provider or its alternate prediction.
	useAltOnNA int8

	// stats
	Lookups     uint64
	Mispredicts uint64
}

type tageEntry struct {
	tag  uint16
	ctr  int8 // 3-bit signed counter: >=0 predicts taken
	ucnt uint8
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	// BaseBits is log2 of the bimodal table size.
	BaseBits uint
	// TableBits is log2 of each tagged table size.
	TableBits uint
	// TagBits is the per-table tag width.
	TagBits uint
	// HistLens lists the history length of each tagged table, shortest
	// first (geometric series in practice).
	HistLens []uint
}

// DefaultTAGEConfig is a 6-table configuration comparable to a mid-size
// TAGE-SC-L front end: geometric histories 4..64.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:  13,
		TableBits: 10,
		TagBits:   11,
		HistLens:  []uint{4, 8, 14, 24, 40, 64},
	}
}

// NewTAGE builds a predictor from cfg.
func NewTAGE(cfg TAGEConfig) *TAGE {
	t := &TAGE{cfg: cfg}
	t.base = make([]int8, 1<<cfg.BaseBits)
	t.tbl = make([][]tageEntry, len(cfg.HistLens))
	for i := range t.tbl {
		t.tbl[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	return t
}

// Reset restores the just-constructed state without reallocating the tables.
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = 0
	}
	for _, tbl := range t.tbl {
		for i := range tbl {
			tbl[i] = tageEntry{}
		}
	}
	t.useAltOnNA = 0
	t.Lookups = 0
	t.Mispredicts = 0
}

func (t *TAGE) baseIdx(pc uint64) uint64 {
	return (pc >> 2) & (1<<t.cfg.BaseBits - 1)
}

func (t *TAGE) idx(pc uint64, g *GlobalHistory, table int) uint64 {
	hl := t.cfg.HistLens[table]
	h := g.Fold(hl, t.cfg.TableBits)
	p := g.Path() & (1<<t.cfg.TableBits - 1)
	return ((pc >> 2) ^ (pc >> (2 + t.cfg.TableBits)) ^ h ^ p) & (1<<t.cfg.TableBits - 1)
}

func (t *TAGE) tag(pc uint64, g *GlobalHistory, table int) uint16 {
	hl := t.cfg.HistLens[table]
	h := g.Fold(hl, t.cfg.TagBits)
	h2 := g.Fold(hl, t.cfg.TagBits-1) << 1
	return uint16(((pc >> 2) ^ h ^ h2) & (1<<t.cfg.TagBits - 1))
}

// lookupState records where a prediction came from so Update can train the
// same entries even if tables changed in between (the core calls Update in
// retirement order with the lookup-time history snapshot).
type lookupState struct {
	provider int // table index of provider, -1 = bimodal
	altPred  bool
	provPred bool
	provWeak bool
	pred     bool
}

// Predict returns the predicted direction for the conditional branch at pc
// under history g. The returned state must be passed back to Update.
func (t *TAGE) Predict(pc uint64, g *GlobalHistory) (bool, lookupState) {
	t.Lookups++
	st := lookupState{provider: -1}
	st.altPred = t.base[t.baseIdx(pc)] >= 0
	altFrom := -1
	for i := len(t.tbl) - 1; i >= 0; i-- {
		e := &t.tbl[i][t.idx(pc, g, i)]
		if e.tag != t.tag(pc, g, i) {
			continue
		}
		if st.provider < 0 {
			st.provider = i
			st.provPred = e.ctr >= 0
			st.provWeak = e.ctr == 0 || e.ctr == -1
		} else if altFrom < 0 {
			altFrom = i
			st.altPred = e.ctr >= 0
		}
		if st.provider >= 0 && altFrom >= 0 {
			break
		}
	}
	if st.provider < 0 {
		st.pred = st.altPred
	} else if st.provWeak && t.useAltOnNA >= 0 {
		st.pred = st.altPred
	} else {
		st.pred = st.provPred
	}
	return st.pred, st
}

func satInc(c int8, max int8) int8 {
	if c < max {
		return c + 1
	}
	return c
}

func satDec(c int8, min int8) int8 {
	if c > min {
		return c - 1
	}
	return c
}

// Update trains the predictor with the resolved direction, using the
// history snapshot from lookup time. It also performs TAGE allocation when
// the provider mispredicted.
func (t *TAGE) Update(pc uint64, g *GlobalHistory, st lookupState, taken bool) {
	if st.pred != taken {
		t.Mispredicts++
	}

	// Train useAltOnNA when the provider was weak and disagreed with alt.
	if st.provider >= 0 && st.provWeak && st.provPred != st.altPred {
		if st.altPred == taken {
			t.useAltOnNA = satInc(t.useAltOnNA, 7)
		} else {
			t.useAltOnNA = satDec(t.useAltOnNA, -8)
		}
	}

	if st.provider >= 0 {
		e := &t.tbl[st.provider][t.idx(pc, g, st.provider)]
		if e.tag == t.tag(pc, g, st.provider) {
			if taken {
				e.ctr = satInc(e.ctr, 3)
			} else {
				e.ctr = satDec(e.ctr, -4)
			}
			// Useful bit: provider correct and alternate wrong.
			if st.provPred == taken && st.altPred != taken {
				if e.ucnt < 3 {
					e.ucnt++
				}
			} else if st.provPred != taken && st.altPred == taken && e.ucnt > 0 {
				e.ucnt--
			}
		}
	} else {
		i := t.baseIdx(pc)
		if taken {
			t.base[i] = satInc(t.base[i], 1)
		} else {
			t.base[i] = satDec(t.base[i], -2)
		}
	}

	// Allocate a longer-history entry on misprediction.
	if st.pred != taken && st.provider < len(t.tbl)-1 {
		start := st.provider + 1
		allocated := false
		for i := start; i < len(t.tbl); i++ {
			e := &t.tbl[i][t.idx(pc, g, i)]
			if e.ucnt == 0 {
				e.tag = t.tag(pc, g, i)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can succeed.
			for i := start; i < len(t.tbl); i++ {
				e := &t.tbl[i][t.idx(pc, g, i)]
				if e.ucnt > 0 {
					e.ucnt--
				}
			}
		}
	}
}

// MispredictRate returns mispredicts per lookup (0 when no lookups).
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}
