package branch

import "fvp/internal/isa"

// Unit bundles the direction predictor, indirect-target predictor and the
// return-address stack into the front-end branch unit the core consults once
// per fetched control-flow instruction.
//
// The trace-driven core knows the architecturally-correct path, so Unit's
// job is to decide *whether the front end would have followed it*: Predict
// returns the predicted outcome, the core compares it with the trace and
// charges a misprediction bubble when they differ.
type Unit struct {
	Dir      *TAGE
	Indirect *ITTAGE
	Ras      *RAS
	Hist     GlobalHistory
}

// NewUnit builds a branch unit with the given table configurations.
func NewUnit(dir, indirect TAGEConfig, rasEntries int) *Unit {
	return &Unit{
		Dir:      NewTAGE(dir),
		Indirect: NewITTAGE(indirect),
		Ras:      NewRAS(rasEntries),
	}
}

// NewDefaultUnit builds a unit with the default Skylake-like configuration.
func NewDefaultUnit() *Unit {
	return NewUnit(DefaultTAGEConfig(), DefaultITTAGEConfig(), 32)
}

// Reset restores every predictor to its just-constructed state so the unit
// can be reused across simulation runs without reallocating its tables.
func (u *Unit) Reset() {
	u.Dir.Reset()
	u.Indirect.Reset()
	u.Ras.Reset()
	u.Hist = GlobalHistory{}
}

// Outcome describes one prediction and carries the trainer state.
type Outcome struct {
	// PredTaken is the predicted direction (always true for
	// unconditional control flow).
	PredTaken bool
	// PredTarget is the predicted target when PredTaken (0 when the
	// target predictor had no entry).
	PredTarget uint64
	// Correct is true when both direction and target match the trace.
	Correct bool

	dirState lookupState
	ittState ittState
	isCond   bool
	isInd    bool
	histSnap GlobalHistory
}

// PredictAndTrain performs the front-end prediction for the resolved branch
// d, immediately trains the predictors with the architectural outcome, and
// updates global history. This retire-time-equivalent in-order train/update
// sequence is the standard idealization in trace-driven models: predictor
// state never sees wrong-path pollution, which slightly flatters all
// configurations equally.
func (u *Unit) PredictAndTrain(d *isa.DynInst) Outcome {
	o := Outcome{histSnap: u.Hist.Snapshot()}
	switch d.Op {
	case isa.OpBranch:
		o.isCond = true
		pred, st := u.Dir.Predict(d.PC, &u.Hist)
		o.dirState = st
		o.PredTaken = pred
		// Direct branch: target comes from the decoder, so a correct
		// direction implies a correct next PC.
		o.PredTarget = d.Target
		o.Correct = pred == d.Taken
		u.Dir.Update(d.PC, &o.histSnap, st, d.Taken)
		u.Hist.Push(d.PC, d.Taken)
	case isa.OpJump:
		o.PredTaken = true
		o.PredTarget = d.Target
		o.Correct = true
	case isa.OpCall:
		o.PredTaken = true
		o.PredTarget = d.Target
		o.Correct = true
		u.Ras.Push(d.PC + isa.InstBytes)
	case isa.OpRet:
		o.PredTaken = true
		tgt, ok := u.Ras.Pop()
		o.PredTarget = tgt
		o.Correct = ok && tgt == d.Target
	case isa.OpIndirect:
		o.isInd = true
		tgt, ok, st := u.Indirect.Predict(d.PC, &u.Hist)
		o.ittState = st
		o.PredTaken = true
		o.PredTarget = tgt
		o.Correct = ok && tgt == d.Target
		u.Indirect.Update(d.PC, &o.histSnap, st, d.Target)
	default:
		o.Correct = true
	}
	return o
}

// Warm is the functional-warmup tap: it trains the unit on one
// architectural control-flow instruction and reports whether the front end
// would have mispredicted it. Because PredictAndTrain already runs in order
// on the correct path (the trace-driven idealization), warming trains the
// direction/indirect tables, the RAS and global history exactly as a
// detailed run's fetch stage would — the only thing dropped is the timing
// charge, which the warmer approximates itself.
func (u *Unit) Warm(d *isa.DynInst) (mispredicted bool) {
	return !u.PredictAndTrain(d).Correct
}

// CondMispredictRate returns the conditional-branch mispredict rate so far.
func (u *Unit) CondMispredictRate() float64 { return u.Dir.MispredictRate() }
