package branch

import (
	"testing"
	"testing/quick"

	"fvp/internal/isa"
)

func TestGlobalHistoryPushBits(t *testing.T) {
	var g GlobalHistory
	g.Push(0x100, true)
	g.Push(0x104, false)
	g.Push(0x108, true)
	if got := g.Bits(3); got != 0b101 {
		t.Errorf("Bits(3) = %b, want 101", got)
	}
	if got := g.Bits(1); got != 1 {
		t.Errorf("Bits(1) = %b, want 1", got)
	}
}

func TestGlobalHistorySnapshotRestore(t *testing.T) {
	var g GlobalHistory
	g.Push(0x100, true)
	snap := g.Snapshot()
	g.Push(0x104, true)
	g.Push(0x108, false)
	g.Restore(snap)
	if g.Bits(64) != snap.Bits(64) || g.Path() != snap.Path() {
		t.Error("restore did not rewind history")
	}
}

// Property: folding never exceeds the output width.
func TestFoldWidthProperty(t *testing.T) {
	f := func(bits uint64, histLen, outBits uint8) bool {
		g := GlobalHistory{bits: bits}
		ob := uint(outBits%16) + 1
		folded := g.Fold(uint(histLen%64)+1, ob)
		return folded < 1<<ob
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty stack must report not-ok")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("got %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("got %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("the overwritten entry must be gone")
	}
}

// trainTAGE runs predict/update over a branch outcome function.
func trainTAGE(t *TAGE, g *GlobalHistory, pc uint64, n int, outcome func(i int) bool) (correct int) {
	for i := 0; i < n; i++ {
		taken := outcome(i)
		pred, st := t.Predict(pc, g)
		if pred == taken {
			correct++
		}
		snap := g.Snapshot()
		t.Update(pc, &snap, st, taken)
		g.Push(pc, taken)
	}
	return correct
}

func TestTAGEAlwaysTaken(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g GlobalHistory
	correct := trainTAGE(tg, &g, 0x400, 2000, func(int) bool { return true })
	if float64(correct)/2000 < 0.98 {
		t.Errorf("always-taken accuracy %d/2000", correct)
	}
}

func TestTAGEAlternating(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g GlobalHistory
	// T,N,T,N... perfectly captured by 1 bit of history.
	correct := trainTAGE(tg, &g, 0x800, 4000, func(i int) bool { return i%2 == 0 })
	if float64(correct)/4000 < 0.95 {
		t.Errorf("alternating accuracy %d/4000", correct)
	}
}

func TestTAGELongPattern(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g GlobalHistory
	// Period-7 pattern requires real history correlation.
	correct := trainTAGE(tg, &g, 0xC00, 8000, func(i int) bool { return i%7 == 3 })
	if float64(correct)/8000 < 0.9 {
		t.Errorf("period-7 accuracy %d/8000 = %.3f", correct, float64(correct)/8000)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g GlobalHistory
	state := uint64(12345)
	rnd := func(int) bool {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state&1 == 1
	}
	correct := trainTAGE(tg, &g, 0xF00, 4000, rnd)
	frac := float64(correct) / 4000
	if frac > 0.65 {
		t.Errorf("random branches predicted at %.3f — predictor is cheating", frac)
	}
}

func TestTAGEMispredictRate(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g GlobalHistory
	trainTAGE(tg, &g, 0x123, 1000, func(int) bool { return true })
	if tg.Lookups != 1000 {
		t.Errorf("lookups = %d", tg.Lookups)
	}
	if r := tg.MispredictRate(); r > 0.05 {
		t.Errorf("mispredict rate %.3f on constant branch", r)
	}
}

func TestITTAGELearnsTarget(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	var g GlobalHistory
	const pc, tgt = 0x900, 0x5000
	for i := 0; i < 50; i++ {
		_, _, st := it.Predict(pc, &g)
		it.Update(pc, &g, st, tgt)
	}
	got, ok, _ := it.Predict(pc, &g)
	if !ok || got != tgt {
		t.Errorf("target = %#x,%v want %#x", got, ok, tgt)
	}
}

func TestITTAGEHistoryCorrelatedTargets(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	var g GlobalHistory
	const pc = 0xA00
	// Target alternates with the preceding branch direction.
	correct := 0
	for i := 0; i < 6000; i++ {
		dir := i%2 == 0
		g.Push(0xB00, dir)
		want := uint64(0x6000)
		if dir {
			want = 0x7000
		}
		got, ok, st := it.Predict(pc, &g)
		if ok && got == want {
			correct++
		}
		it.Update(pc, &g, st, want)
	}
	if float64(correct)/6000 < 0.9 {
		t.Errorf("correlated-target accuracy %d/6000", correct)
	}
}

func TestUnitDirectBranches(t *testing.T) {
	u := NewDefaultUnit()
	// Unconditional direct jump is always correct.
	d := isa.DynInst{Op: isa.OpJump, PC: 0x100, Taken: true, Target: 0x200}
	if o := u.PredictAndTrain(&d); !o.Correct {
		t.Error("jump must always predict correctly")
	}
	// Call pushes RAS; matching return predicts correctly.
	c := isa.DynInst{Op: isa.OpCall, PC: 0x300, Taken: true, Target: 0x400}
	u.PredictAndTrain(&c)
	r := isa.DynInst{Op: isa.OpRet, PC: 0x404, Taken: true, Target: 0x304}
	if o := u.PredictAndTrain(&r); !o.Correct {
		t.Error("return after call must predict via RAS")
	}
	// Unbalanced return mispredicts.
	r2 := isa.DynInst{Op: isa.OpRet, PC: 0x408, Taken: true, Target: 0x999}
	if o := u.PredictAndTrain(&r2); o.Correct {
		t.Error("return with empty RAS must mispredict")
	}
}

func TestUnitConditionalTrainsHistory(t *testing.T) {
	u := NewDefaultUnit()
	d := isa.DynInst{Op: isa.OpBranch, PC: 0x500, Taken: true, Target: 0x600}
	before := u.Hist.Bits(64)
	u.PredictAndTrain(&d)
	if u.Hist.Bits(64) == before && u.Hist.Bits(1) != 1 {
		t.Error("conditional branch must push history")
	}
	// Train to convergence.
	correct := 0
	for i := 0; i < 500; i++ {
		o := u.PredictAndTrain(&d)
		if o.Correct {
			correct++
		}
	}
	if correct < 450 {
		t.Errorf("constant conditional learned %d/500", correct)
	}
}
