package suggest

import "testing"

func TestClosest(t *testing.T) {
	workloads := []string{"omnetpp", "cassandra", "sphinx3", "leela", "mcf"}
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"omnetp", "omnetpp", true},     // dropped letter
		{"omnet", "omnetpp", true},      // dropped suffix
		{"Cassanda", "cassandra", true}, // case-insensitive typo
		{"sphinx", "sphinx3", true},     // missing version digit
		{"zzzzzzzz", "", false},         // nothing plausible
		{"completely-wrong", "", false}, // nothing plausible
		{"mfc", "mcf", true},            // transposition (2 subs)
	}
	for _, c := range cases {
		got, ok := Closest(c.in, workloads)
		if ok != c.ok || got != c.want {
			t.Errorf("Closest(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestClosestPrefersEarlierOnTie(t *testing.T) {
	got, ok := Closest("fvp-x", []string{"fvp-a", "fvp-b"})
	if !ok || got != "fvp-a" {
		t.Errorf("tie should keep earliest candidate, got %q ok=%v", got, ok)
	}
}

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"stride", "strides", 1},
	}
	for _, c := range cases {
		if got := distance(c.a, c.b); got != c.want {
			t.Errorf("distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
