// Package suggest offers "did you mean" candidates for mistyped names.
// It backs the unknown-workload/-predictor errors of the fvp façade, so
// the CLI tools and the fvpd service's 400 responses share one notion of
// "closest valid name".
package suggest

import "strings"

// maxDistance bounds how far a candidate may be from the input before it
// stops being a plausible typo. A third of the input length (at least 2)
// admits dropped suffixes like "omnet" → "omnetpp" without proposing
// unrelated names for short inputs.
func maxDistance(name string) int {
	d := len(name) / 3
	if d < 2 {
		d = 2
	}
	return d
}

// Closest returns the candidate with the smallest edit distance to name,
// if any candidate is close enough to be a plausible typo. Matching is
// case-insensitive; ties keep the earliest candidate, so callers listing
// candidates in preference order get stable suggestions.
func Closest(name string, candidates []string) (string, bool) {
	lower := strings.ToLower(name)
	best, bestDist := "", maxDistance(name)+1
	for _, c := range candidates {
		d := distance(lower, strings.ToLower(c))
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, best != ""
}

// distance is the Levenshtein edit distance between a and b, computed with
// a single rolling row (candidate lists here are tiny, so O(len(a)·len(b))
// per pair is fine).
func distance(a, b string) int {
	if a == b {
		return 0
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			ins := row[j-1] + 1
			del := row[j] + 1
			sub := prev
			if a[i-1] != b[j-1] {
				sub++
			}
			prev = row[j]
			row[j] = min(ins, del, sub)
		}
	}
	return row[len(b)]
}
