package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

func TestFactoriesConstructible(t *testing.T) {
	specs := []Spec{
		SpecNone, SpecFVP, SpecFVPRegOnly, SpecFVPMemOnly, SpecFVPL1Miss,
		SpecFVPL1MissOnl, SpecFVPOracle, SpecFVPAllTypes, SpecFVPBrChains,
		SpecMR8KB, SpecMR1KB, SpecComp8KB, SpecComp1KB, SpecLVP, SpecStride,
	}
	for _, s := range specs {
		p := Factory(s)()
		if p == nil {
			t.Fatalf("factory %s returned nil", s)
		}
		if p.StorageBits() < 0 {
			t.Errorf("%s storage negative", s)
		}
	}
}

func TestUnknownSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown spec must panic")
		}
	}()
	Factory(Spec("nope"))
}

func TestRunOneProducesMetrics(t *testing.T) {
	w, _ := workload.ByName("hmmer")
	r := RunOne(w, ooo.Skylake(), nil, Options{WarmupInsts: 5000, MeasureInsts: 20000})
	if r.IPC <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.Stats.Retired != 20000 {
		t.Errorf("measured %d instructions, want 20000", r.Stats.Retired)
	}
	if r.Workload != "hmmer" || r.Category != workload.ISPEC06 {
		t.Errorf("labels: %+v", r)
	}
	if r.Predictor != "baseline" {
		t.Errorf("predictor label = %q", r.Predictor)
	}
}

func TestStatsDelta(t *testing.T) {
	a := ooo.RunStats{Cycles: 100, Retired: 50, RetiredLoads: 10}
	b := ooo.RunStats{Cycles: 300, Retired: 150, RetiredLoads: 40}
	d := statsDelta(a, b)
	if d.Cycles != 200 || d.Retired != 100 || d.RetiredLoads != 30 {
		t.Errorf("delta = %+v", d)
	}
}

func TestGeomean(t *testing.T) {
	mk := func(b, p float64) Pair {
		return Pair{Base: Result{IPC: b}, Pred: Result{IPC: p}}
	}
	pairs := []Pair{mk(1, 2), mk(1, 0.5)}
	if g := Geomean(pairs); math.Abs(g-1.0) > 1e-9 {
		t.Errorf("geomean of 2x and 0.5x = %v, want 1", g)
	}
	if g := Geomean(nil); g != 1 {
		t.Errorf("empty geomean = %v", g)
	}
	if s := mk(0, 5).Speedup(); s != 1 {
		t.Errorf("zero-baseline speedup = %v, want 1 (guarded)", s)
	}
}

func TestByCategoryGroups(t *testing.T) {
	pairs := []Pair{
		{Base: Result{Category: workload.ISPEC06, IPC: 1}, Pred: Result{IPC: 1}},
		{Base: Result{Category: workload.Server, IPC: 1}, Pred: Result{IPC: 1}},
		{Base: Result{Category: workload.Server, IPC: 1}, Pred: Result{IPC: 1}},
	}
	g := ByCategory(pairs)
	if len(g[workload.Server]) != 2 || len(g[workload.ISPEC06]) != 1 {
		t.Errorf("grouping wrong: %v", g)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "alltypes",
		"branchchains", "epoch", "tables"} {
		if !ids[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
	if _, ok := ExperimentByID("fig6"); !ok {
		t.Error("ExperimentByID(fig6) failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestStaticTables(t *testing.T) {
	r := NewRunner(Options{WarmupInsts: 1, MeasureInsts: 1})
	var buf bytes.Buffer
	if err := runTable1(r, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Value Table") || !strings.Contains(buf.String(), "1.2 KB") {
		t.Errorf("table1 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := runTable2(r, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Skylake-2X") || !strings.Contains(buf.String(), "ROB 448") {
		t.Errorf("table2 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := runTable3(r, &buf); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"ISPEC06", "Server", "mcf", "cassandra"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("table3 missing %q", s)
		}
	}
}

func TestRunnerCachesBaseline(t *testing.T) {
	r := NewRunner(Options{WarmupInsts: 2000, MeasureInsts: 5000})
	r.Workloads = r.Workloads[:2]
	a := r.Baseline(ooo.Skylake())
	b := r.Baseline(ooo.Skylake())
	if &a[0] != &b[0] {
		t.Error("baseline results must be cached")
	}
}

// TestSmallFig6EndToEnd runs the fig6 driver on a two-workload subset.
func TestSmallFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	r := NewRunner(Options{WarmupInsts: 20_000, MeasureInsts: 60_000})
	ws := make([]workload.Workload, 0, 2)
	for _, n := range []string{"omnetpp", "leela"} {
		w, _ := workload.ByName(n)
		ws = append(ws, w)
	}
	r.Workloads = ws
	var buf bytes.Buffer
	if err := runFig6(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Geomean") {
		t.Errorf("fig6 output:\n%s", out)
	}
}
