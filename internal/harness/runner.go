// Package harness runs workloads × core configs × predictors and derives
// the paper's metrics (IPC speedup over baseline, load coverage, accuracy),
// plus the per-figure experiment drivers for the evaluation section.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fvp/internal/core"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/telemetry"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// PredFactory builds a fresh predictor per run (predictors are stateful and
// single-core).
type PredFactory func() vp.Predictor

// Spec names the predictor configurations the evaluation uses.
type Spec string

// Predictor specs used across the experiments.
const (
	SpecNone         Spec = "baseline"
	SpecFVP          Spec = "FVP"
	SpecFVPRegOnly   Spec = "FVP-reg-only"
	SpecFVPMemOnly   Spec = "FVP-mem-only"
	SpecFVPL1Miss    Spec = "FVP-L1-Miss"
	SpecFVPL1MissOnl Spec = "FVP-L1-Miss-Only"
	SpecFVPOracle    Spec = "FVP-Oracle"
	SpecFVPAllTypes  Spec = "FVP-all-types"
	SpecFVPBrChains  Spec = "FVP-branch-chains"
	SpecMR8KB        Spec = "MR-8KB"
	SpecMR1KB        Spec = "MR-1KB"
	SpecComp8KB      Spec = "Composite-8KB"
	SpecComp1KB      Spec = "Composite-1KB"
	SpecLVP          Spec = "LVP"
	SpecStride       Spec = "Stride"
	SpecVTAGE        Spec = "VTAGE"
	SpecEVES         Spec = "EVES"
)

// Factory returns the constructor for a spec.
func Factory(s Spec) PredFactory {
	switch s {
	case SpecNone:
		return func() vp.Predictor { return vp.None{} }
	case SpecFVP:
		return func() vp.Predictor { return core.New(core.DefaultConfig()) }
	case SpecFVPRegOnly:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.DisableMR = true
			return core.New(c)
		}
	case SpecFVPMemOnly:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.MROnly = true
			return core.New(c)
		}
	case SpecFVPL1Miss:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.Policy = core.CritL1Miss
			return core.New(c)
		}
	case SpecFVPL1MissOnl:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.Policy = core.CritL1MissOnly
			return core.New(c)
		}
	case SpecFVPOracle:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.Policy = core.CritOracle
			return core.New(c)
		}
	case SpecFVPAllTypes:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.AllTypes = true
			return core.New(c)
		}
	case SpecFVPBrChains:
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.BranchChains = true
			return core.New(c)
		}
	case SpecMR8KB:
		return func() vp.Predictor { return vp.NewMR(vp.MR8KBConfig()) }
	case SpecMR1KB:
		return func() vp.Predictor { return vp.NewMR(vp.MR1KBConfig()) }
	case SpecComp8KB:
		return func() vp.Predictor { return vp.NewComposite8KB(7) }
	case SpecComp1KB:
		return func() vp.Predictor { return vp.NewComposite1KB(7) }
	case SpecLVP:
		return func() vp.Predictor { return vp.NewLVP(64, 2, 7) }
	case SpecStride:
		return func() vp.Predictor { return vp.NewStride(6) }
	case SpecVTAGE:
		return func() vp.Predictor { return vp.NewVTAGE(256, 96, 21) }
	case SpecEVES:
		return func() vp.Predictor { return vp.NewEVES(256, 80, 6, 23) }
	}
	panic("harness: unknown spec " + string(s))
}

// Result is the outcome of one (workload, core, predictor) run, measured
// after warmup.
type Result struct {
	Workload  string
	Category  workload.Category
	Core      string
	Predictor string
	// WarmupMode records which warmup path produced this result
	// ("detailed" or "functional").
	WarmupMode WarmupMode

	IPC      float64
	Coverage float64
	Accuracy float64
	Stats    ooo.RunStats
	Meter    vp.Meter

	// FFInsts counts instructions that were fast-forwarded functionally
	// (warmup in WarmupFunctional mode, plus the checkpoint scan of a
	// region-parallel run). Zero for a purely detailed run.
	FFInsts uint64
	// FFSeconds is the wall-clock spent fast-forwarding. Being a wall-time
	// measurement it is excluded from determinism comparisons.
	FFSeconds float64
	// Regions holds the per-region results of a region-parallel run
	// (nil when Options.Regions <= 1).
	Regions []RegionResult
	// Sampling holds the statistical summary of a sampled run
	// (nil when Options.Sampling is disabled).
	Sampling *SamplingReport
}

// Options controls run length.
type Options struct {
	// WarmupInsts retire before measurement starts.
	WarmupInsts uint64
	// MeasureInsts is the measured region length.
	MeasureInsts uint64
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// ReuseCores draws cores from a per-config pool and Resets them
	// between runs instead of constructing a fresh ~6 MB core per run.
	// Reset is observationally identical to construction (enforced by
	// the ooo reset-equivalence and harness determinism tests), so this
	// only changes allocation behavior, never results.
	ReuseCores bool

	// OnSample, if non-nil, streams per-interval telemetry samples from
	// the measured region (the tap attaches after warmup, so the series
	// covers exactly what the Result's deltas cover). The callback runs on
	// the simulating goroutine and must not block. Observation never
	// perturbs timing — the golden-stat tests hold results byte-identical
	// with it on or off.
	OnSample func(telemetry.Sample)
	// SampleInterval is the sampling period in cycles; 0 selects
	// ooo.DefaultObserverInterval.
	SampleInterval uint64
	// Tracer, if non-nil, receives per-instruction pipeline events from
	// the measured region (e.g. a telemetry.PipeTrace for Chrome trace
	// export). Like OnSample, it reads the machine without perturbing it.
	Tracer ooo.PipeTracer

	// WarmupMode selects detailed (default) or functional warmup.
	WarmupMode WarmupMode
	// Regions splits the measured region into this many contiguous
	// slices, each restored from an architectural checkpoint, warmed
	// independently (per WarmupMode) and detail-simulated in parallel;
	// the per-region stats are stitched into the Result. 0 or 1 keeps
	// the historical single-region path. Stitched results are
	// deterministic for a fixed region count regardless of worker count,
	// but differ from the single-region run (each region re-warms from
	// cold structures).
	Regions int
	// RegionWorkers bounds how many regions simulate concurrently
	// (0 = GOMAXPROCS); sampled runs reuse it to bound concurrent units.
	RegionWorkers int

	// Sampling, when enabled, replaces full-detail measurement with
	// SMARTS-style sampled simulation: only K systematic sample units are
	// detail-simulated and the Result carries a SamplingReport with
	// confidence intervals. Mutually exclusive with Regions > 1 and with
	// observation hooks (OnSample / Tracer), which assume a contiguous
	// measured stream.
	Sampling Sampling
}

// DefaultOptions is sized so predictors reach steady state while a full
// 60-workload sweep stays tractable.
func DefaultOptions() Options {
	return Options{WarmupInsts: 100_000, MeasureInsts: 300_000, ReuseCores: true}
}

// corePools holds one free-list of reusable cores per core configuration
// (ooo.Config is comparable, so it keys the map directly).
var corePools sync.Map // ooo.Config -> *sync.Pool

func acquireCore(cfg ooo.Config, pred vp.Predictor, src ooo.InstSource, mem *prog.Memory) *ooo.Core {
	pi, ok := corePools.Load(cfg)
	if !ok {
		pi, _ = corePools.LoadOrStore(cfg, &sync.Pool{})
	}
	if v := pi.(*sync.Pool).Get(); v != nil {
		c := v.(*ooo.Core)
		c.Reset(pred, src, mem)
		return c
	}
	return ooo.New(cfg, pred, src, mem)
}

func releaseCore(cfg ooo.Config, c *ooo.Core) {
	if pi, ok := corePools.Load(cfg); ok {
		pi.(*sync.Pool).Put(c)
	}
}

// statsDelta subtracts snapshots field-wise.
func statsDelta(a, b ooo.RunStats) ooo.RunStats {
	d := b
	d.Cycles -= a.Cycles
	d.Retired -= a.Retired
	d.RetiredLoads -= a.RetiredLoads
	d.RetiredStores -= a.RetiredStores
	d.Fetched -= a.Fetched
	d.BranchMispredicts -= a.BranchMispredicts
	d.VPFlushes -= a.VPFlushes
	d.MemOrderFlushes -= a.MemOrderFlushes
	d.Forwards -= a.Forwards
	d.RetireStallCycles -= a.RetireStallCycles
	d.EmptyWindowCycles -= a.EmptyWindowCycles
	for i := range d.LoadsByLevel {
		d.LoadsByLevel[i] -= a.LoadsByLevel[i]
	}
	d.StallHeadLoads -= a.StallHeadLoads
	d.StallHeadOther -= a.StallHeadOther
	d.SkippedCycles -= a.SkippedCycles
	d.SkipEvents -= a.SkipEvents
	for i := range d.Breakdown {
		d.Breakdown[i] -= a.Breakdown[i]
	}
	return d
}

func meterDelta(a, b vp.Meter) vp.Meter {
	return vp.Meter{
		Loads:          b.Loads - a.Loads,
		Insts:          b.Insts - a.Insts,
		PredictedLoads: b.PredictedLoads - a.PredictedLoads,
		PredictedOther: b.PredictedOther - a.PredictedOther,
		Correct:        b.Correct - a.Correct,
		Wrong:          b.Wrong - a.Wrong,
		Flushes:        b.Flushes - a.Flushes,
	}
}

// RunOne simulates one workload on one core with one predictor.
func RunOne(w workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) Result {
	r, _ := RunOneCtx(context.Background(), w, coreCfg, pf, opt)
	return r
}

// RunOneCtx is RunOne with cooperative cancellation: the simulation's
// cycle loop polls ctx and the partial run is abandoned (zero Result,
// ctx.Err()) when it fires. Both the warmup and the measured region honor
// the context, so a canceled service job stops consuming cycles promptly.
// Degenerate Options are rejected up front with an *InvalidOptionsError.
func RunOneCtx(ctx context.Context, w workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	if opt.Sampling.enabled() {
		return runSampledCtx(ctx, w, coreCfg, pf, opt)
	}
	if opt.regionCount() > 1 {
		return runRegionsCtx(ctx, w, coreCfg, pf, opt)
	}
	p := w.Build()
	ex := prog.NewExec(p)
	var pred vp.Predictor
	if pf != nil {
		pred = pf()
	}
	seg, err := runSegmentCtx(ctx, coreCfg, pred, ex, p.BuildMemory(), p.WarmRanges, opt, opt.MeasureInsts)
	if err != nil {
		return Result{}, err
	}
	name := "baseline"
	if pred != nil {
		name = pred.Name()
	}
	return Result{
		Workload:   w.Name,
		Category:   w.Category,
		Core:       coreCfg.Name,
		Predictor:  name,
		WarmupMode: opt.warmupMode(),
		IPC:        seg.stats.IPC(),
		Coverage:   seg.meter.Coverage(),
		Accuracy:   seg.meter.Accuracy(),
		Stats:      seg.stats,
		Meter:      seg.meter,
		FFInsts:    seg.ffInsts,
		FFSeconds:  seg.ffSeconds,
	}, nil
}

// segment is the measured outcome of one (warmup, measure) slice on one
// core.
type segment struct {
	stats     ooo.RunStats
	meter     vp.Meter
	ffInsts   uint64
	ffSeconds float64
}

// runSegmentCtx simulates one contiguous (warmup, measure) slice: it
// acquires a core over ex (whose architectural memory image is mem), warms
// caches and then the machine per opt.WarmupMode, and measures measure
// instructions. It is the shared engine of the single-region path and each
// region of a region-parallel run.
func runSegmentCtx(ctx context.Context, coreCfg ooo.Config, pred vp.Predictor, ex *prog.Exec, mem *prog.Memory, warmRanges []prog.WarmRange, opt Options, measure uint64) (segment, error) {
	var c *ooo.Core
	if opt.ReuseCores {
		c = acquireCore(coreCfg, pred, ex, mem)
		defer releaseCore(coreCfg, c)
	} else {
		c = ooo.New(coreCfg, pred, ex, mem)
	}
	c.WarmCaches(warmRanges)

	var seg segment
	if opt.warmupMode() == WarmupFunctional {
		tail := detailTail(opt.WarmupInsts)
		t0 := time.Now()
		seg.ffInsts = c.WarmFunctional(opt.WarmupInsts - tail)
		seg.ffSeconds = time.Since(t0).Seconds()
		// Detailed tail: re-converge timing-born predictor state (FVP
		// criticality, confidence counters) on the real pipeline just
		// before measurement — the classic sampled-simulation split of
		// functional warming plus a short detailed warmup.
		if _, err := c.RunCtx(ctx, c.Stats.Retired+tail); err != nil {
			return segment{}, err
		}
	} else if _, err := c.RunCtx(ctx, opt.WarmupInsts); err != nil {
		return segment{}, err
	}
	warmStats := c.Stats
	warmMeter := c.Meter
	if opt.OnSample != nil || opt.Tracer != nil {
		if opt.OnSample != nil {
			c.SetObserver(&telemetry.Sampler{OnSample: opt.OnSample, Discard: true}, opt.SampleInterval)
		}
		c.SetTracer(opt.Tracer)
		// Detach before the core returns to the pool, even on cancellation.
		defer func() {
			c.SetObserver(nil, 0)
			c.SetTracer(nil)
		}()
	}
	// The measure bound counts from what warmup actually retired: in
	// detailed mode that is exactly WarmupInsts (making this identical to
	// the historical WarmupInsts+MeasureInsts bound), in functional mode
	// retirement hasn't moved and the bound is just the measured length.
	if _, err := c.RunCtx(ctx, warmStats.Retired+measure); err != nil {
		return segment{}, err
	}
	c.FinishObservation()
	seg.stats = statsDelta(warmStats, c.Stats)
	seg.meter = meterDelta(warmMeter, c.Meter)
	return seg, nil
}

// RunSuite runs every workload in ws with the given core and predictor,
// in parallel, preserving input order.
func RunSuite(ws []workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) []Result {
	out, _ := RunSuiteCtx(context.Background(), ws, coreCfg, pf, opt)
	return out
}

// RunSuiteCtx is RunSuite with cooperative cancellation: every in-flight
// run polls ctx, and the first cancellation error is returned along with
// whatever results completed (canceled slots are zero Results).
func RunSuiteCtx(ctx context.Context, ws []workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) ([]Result, error) {
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	out := make([]Result, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = RunOneCtx(ctx, w, coreCfg, pf, opt)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Pair holds a baseline and predictor result for one workload.
type Pair struct {
	Base, Pred Result
}

// Speedup returns predictor IPC over baseline IPC.
func (p Pair) Speedup() float64 {
	if p.Base.IPC == 0 {
		return 1
	}
	return p.Pred.IPC / p.Base.IPC
}

// RunComparison runs baseline and predictor suites and pairs them up.
func RunComparison(ws []workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) []Pair {
	pairs, _ := RunComparisonCtx(context.Background(), ws, coreCfg, pf, opt)
	return pairs
}

// RunComparisonCtx is RunComparison with cooperative cancellation; both
// suites honor ctx and the first cancellation error is returned.
func RunComparisonCtx(ctx context.Context, ws []workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) ([]Pair, error) {
	base, err := RunSuiteCtx(ctx, ws, coreCfg, nil, opt)
	if err != nil {
		return nil, err
	}
	pred, err := RunSuiteCtx(ctx, ws, coreCfg, pf, opt)
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, len(ws))
	for i := range ws {
		pairs[i] = Pair{Base: base[i], Pred: pred[i]}
	}
	return pairs, nil
}

// Geomean returns the geometric mean of the pairs' speedups.
func Geomean(pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 1
	}
	sumLog := 0.0
	for _, p := range pairs {
		sumLog += logOf(p.Speedup())
	}
	return expOf(sumLog / float64(len(pairs)))
}

// MeanCoverage returns the arithmetic mean load coverage of the predictor
// runs.
func MeanCoverage(pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pairs {
		s += p.Pred.Coverage
	}
	return s / float64(len(pairs))
}

// ByCategory groups pairs by workload category.
func ByCategory(pairs []Pair) map[workload.Category][]Pair {
	m := make(map[workload.Category][]Pair)
	for _, p := range pairs {
		m[p.Base.Category] = append(m[p.Base.Category], p)
	}
	return m
}

func (r Result) String() string {
	return fmt.Sprintf("%-16s %-10s %-16s IPC=%.3f cov=%.1f%% acc=%.2f%%",
		r.Workload, r.Core, r.Predictor, r.IPC, r.Coverage*100, r.Accuracy*100)
}

// detailTailMax bounds the detailed slice at the end of a functional
// warmup window. One eighth of the window re-settles confidence counters
// and criticality tables without giving back the O(insts) win; the cap
// keeps paper-scale windows (tens of millions of instructions) from
// paying more than a fixed detailed cost.
const detailTailMax = 2048

// detailTail returns how many of warmup's final instructions run on the
// detailed pipeline when WarmupMode is functional.
func detailTail(warmup uint64) uint64 {
	tail := warmup / 8
	if tail > detailTailMax {
		tail = detailTailMax
	}
	return tail
}
