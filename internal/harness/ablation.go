package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fvp/internal/ooo"
)

// Ablation experiments: the design choices DESIGN.md calls out, each
// toggled off (or swept) against the default Skylake baseline, with FVP's
// gain re-measured under the variant. These extend the paper's evaluation
// (the paper holds the substrate fixed).

// ablationVariant is one baseline-system modification.
type ablationVariant struct {
	label string
	mk    func() ooo.Config
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"default Skylake", ooo.Skylake},
		{"no L1 stride prefetcher", func() ooo.Config {
			c := ooo.Skylake()
			c.Mem.StridePCBits = 0
			return c
		}},
		{"no L2/LLC stream prefetcher", func() ooo.Config {
			c := ooo.Skylake()
			c.Mem.Streams = 0
			return c
		}},
		{"no prefetching at all", func() ooo.Config {
			c := ooo.Skylake()
			c.Mem.StridePCBits = 0
			c.Mem.Streams = 0
			return c
		}},
		{"conservative mem disambiguation", func() ooo.Config {
			c := ooo.Skylake()
			c.ConservativeMemDisambiguation = true
			return c
		}},
		{"VP mispredict penalty 10", func() ooo.Config {
			c := ooo.Skylake()
			c.VPMispredictPenalty = 10
			return c
		}},
		{"VP mispredict penalty 40", func() ooo.Config {
			c := ooo.Skylake()
			c.VPMispredictPenalty = 40
			return c
		}},
	}
}

// runAblation measures, for each baseline variant, the variant's baseline
// IPC relative to default Skylake and FVP's gain under the variant.
func runAblation(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Baseline-system ablations (extension): how substrate choices move the baseline and FVP's benefit")
	def := r.Baseline(ooo.Skylake())
	defGeo := func(res []Result) float64 {
		pairs := make([]Pair, len(res))
		for i := range res {
			pairs[i] = Pair{Base: def[i], Pred: res[i]}
		}
		return Geomean(pairs)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tbaseline IPC vs default\tFVP gain under variant")
	for _, v := range ablationVariants() {
		cfg := v.mk()
		// Distinct cache key per variant so the Runner's baseline cache
		// doesn't collapse them.
		cfg.Name = v.label
		base := r.Baseline(cfg)
		pairs := r.Compare(cfg, SpecFVP)
		fmt.Fprintf(w, "%s\t%+.2f%%\t%s\n",
			v.label, (defGeo(base)-1)*100, pct(Geomean(pairs)))
	}
	w.Flush()
	return nil
}

// runBaselinePredictors compares every predictor family at its reference
// sizing on Skylake — the wider shoot-out behind Figs 10/11 (the paper
// reports that the Composite dominates EVES and DLVP; this regenerates the
// supporting comparison including the simple LVP/stride/VTAGE baselines).
func runBaselinePredictors(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Predictor shoot-out on Skylake (extension of Figs 10/11)")
	specs := []Spec{
		SpecLVP, SpecStride, SpecVTAGE, SpecEVES,
		SpecMR8KB, SpecComp8KB, SpecFVP,
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predictor\tstorage\tIPC gain\tcoverage\taccuracy")
	for _, s := range specs {
		pairs := r.Compare(ooo.Skylake(), s)
		bits := Factory(s)().StorageBits()
		acc, n := 0.0, 0
		for _, p := range pairs {
			if p.Pred.Meter.Correct+p.Pred.Meter.Wrong > 0 {
				acc += p.Pred.Accuracy
				n++
			}
		}
		if n > 0 {
			acc /= float64(n)
		}
		fmt.Fprintf(w, "%s\t%.1f KB\t%s\t%.0f%%\t%.2f%%\n",
			s, float64(bits)/8/1024, pct(Geomean(pairs)),
			MeanCoverage(pairs)*100, acc*100)
	}
	w.Flush()
	return nil
}
