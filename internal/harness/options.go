package harness

import (
	"fmt"
	"math"

	"fvp/internal/sample"
)

// WarmupMode selects how the warmup region is simulated.
type WarmupMode string

// Warmup modes.
const (
	// WarmupDetailed runs the warmup region through the full OOO model —
	// O(cycles), bit-identical to historical behavior. The zero value of
	// Options selects it.
	WarmupDetailed WarmupMode = "detailed"
	// WarmupFunctional drives the warmup region through the machine's
	// warming taps (ooo.Core.WarmFunctional) — O(instructions), trading a
	// bounded fidelity loss (see the warming-fidelity gate) for ~an order
	// of magnitude less warmup work.
	WarmupFunctional WarmupMode = "functional"
)

// WarmupModes lists the accepted mode names, for CLIs and validators.
func WarmupModes() []string {
	return []string{string(WarmupDetailed), string(WarmupFunctional)}
}

// InvalidOptionsError reports a degenerate Options field. It mirrors the
// façade's fvp.InvalidSpecError shape so service layers can translate
// field-for-field.
type InvalidOptionsError struct {
	// Field is the Options field at fault.
	Field string
	// Value is the offending value (when numeric).
	Value uint64
	// Limit is the bound that was exceeded, when one applies.
	Limit uint64
	// Reason says what is wrong.
	Reason string
}

// Error implements error.
func (e *InvalidOptionsError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("harness: invalid %s %d (limit %d): %s", e.Field, e.Value, e.Limit, e.Reason)
	}
	return fmt.Sprintf("harness: invalid %s: %s", e.Field, e.Reason)
}

// Validate rejects degenerate run shapes before any simulation work:
// an empty measured region, a warmup+measure total that overflows the
// instruction counter, a negative region count or worker bound, more
// regions than measured instructions, an unknown warmup mode, and
// per-interval observation combined with region-parallel runs (samples
// from concurrent regions would interleave meaninglessly).
func (o Options) Validate() error {
	if o.MeasureInsts == 0 {
		return &InvalidOptionsError{Field: "MeasureInsts", Reason: "measured region is empty"}
	}
	if o.WarmupInsts > math.MaxUint64-o.MeasureInsts {
		return &InvalidOptionsError{
			Field: "WarmupInsts", Value: o.WarmupInsts, Limit: math.MaxUint64 - o.MeasureInsts,
			Reason: "warmup + measure overflows the instruction counter",
		}
	}
	switch o.WarmupMode {
	case "", WarmupDetailed, WarmupFunctional:
	default:
		return &InvalidOptionsError{
			Field:  "WarmupMode",
			Reason: fmt.Sprintf("unknown mode %q (valid: %v)", o.WarmupMode, WarmupModes()),
		}
	}
	if o.Regions < 0 {
		return &InvalidOptionsError{Field: "Regions", Reason: "region count < 1"}
	}
	if o.RegionWorkers < 0 {
		return &InvalidOptionsError{Field: "RegionWorkers", Reason: "worker count < 0"}
	}
	if o.Regions > 1 {
		if uint64(o.Regions) > o.MeasureInsts {
			return &InvalidOptionsError{
				Field: "Regions", Value: uint64(o.Regions), Limit: o.MeasureInsts,
				Reason: "more regions than measured instructions",
			}
		}
		if o.OnSample != nil || o.Tracer != nil {
			return &InvalidOptionsError{
				Field:  "Regions",
				Reason: "per-interval observation requires a single region",
			}
		}
	}
	if err := o.validateSampling(); err != nil {
		return err
	}
	return nil
}

// validateSampling rejects degenerate sampling shapes: a unit count below
// the statistical minimum, a nonsensical CI target, a detailed budget that
// exceeds the population, and combinations with features that assume a
// contiguous measured stream.
func (o Options) validateSampling() error {
	s := o.Sampling
	if !s.enabled() {
		return nil
	}
	if s.Units < 0 || (s.Units > 0 && s.Units < sample.MinUnits) {
		return &InvalidOptionsError{
			Field: "Sampling.Units", Value: uint64(s.Units), Limit: sample.MinUnits,
			Reason: "at least two sample units are needed for a variance estimate",
		}
	}
	if s.TargetCI < 0 || s.TargetCI >= 1 {
		return &InvalidOptionsError{
			Field:  "Sampling.TargetCI",
			Reason: fmt.Sprintf("relative CI target %v outside [0, 1)", s.TargetCI),
		}
	}
	if s.MaxUnits < 0 {
		return &InvalidOptionsError{Field: "Sampling.MaxUnits", Reason: "unit cap < 0"}
	}
	if budget := uint64(s.units()) * s.unitInsts(); budget > o.MeasureInsts {
		return &InvalidOptionsError{
			Field: "Sampling.Units", Value: budget, Limit: o.MeasureInsts,
			Reason: "detailed budget units*unit_insts exceeds the measured region",
		}
	}
	if o.Regions > 1 {
		return &InvalidOptionsError{
			Field:  "Sampling",
			Reason: "sampling and region-parallel runs are mutually exclusive",
		}
	}
	if o.OnSample != nil || o.Tracer != nil {
		return &InvalidOptionsError{
			Field:  "Sampling",
			Reason: "per-interval observation requires a contiguous (non-sampled) run",
		}
	}
	return nil
}

// warmupMode resolves the default.
func (o Options) warmupMode() WarmupMode {
	if o.WarmupMode == "" {
		return WarmupDetailed
	}
	return o.WarmupMode
}

// regionCount resolves the default.
func (o Options) regionCount() int {
	if o.Regions < 1 {
		return 1
	}
	return o.Regions
}
