package harness

import (
	"os"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

// TestFig10Subset checks the area-sensitivity direction on a gainer subset
// (calibration probe; FVP_TUNE=1).
func TestFig10Subset(t *testing.T) {
	if os.Getenv("FVP_TUNE") == "" {
		t.Skip("calibration probe; set FVP_TUNE=1 to run")
	}
	subset := []string{"omnetpp", "astar", "soplex", "cassandra", "tpce", "hmmer", "mcf", "leela"}
	r := NewRunner(Options{WarmupInsts: 80_000, MeasureInsts: 200_000})
	r.Workloads = nil
	for _, n := range subset {
		w, _ := workload.ByName(n)
		r.Workloads = append(r.Workloads, w)
	}
	for _, s := range []Spec{SpecFVP, SpecComp8KB, SpecComp1KB, SpecMR8KB, SpecMR1KB} {
		pairs := r.Compare(ooo.Skylake(), s)
		t.Logf("%-14s %+0.2f%% cov=%.0f%%", s, (Geomean(pairs)-1)*100, MeanCoverage(pairs)*100)
	}
}
