package harness

import (
	"context"
	"runtime"
	"sync"
	"time"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// RegionResult is the measured outcome of one slice of a region-parallel
// run.
type RegionResult struct {
	// Index is the region's position (0-based, in program order).
	Index int
	// StartSeq is the architectural sequence number the region's
	// checkpoint was taken at; warmup runs from here, measurement from
	// here plus the warmup length.
	StartSeq uint64
	// IPC is the region's measured IPC.
	IPC float64
	// Stats and Meter cover the region's measured slice only.
	Stats ooo.RunStats
	Meter vp.Meter
	// FFInsts / FFSeconds are the region's own functional-warmup costs
	// (the shared checkpoint scan is accounted in the Result).
	FFInsts   uint64
	FFSeconds float64
}

// runRegionsCtx is the region-parallel path of RunOneCtx: one functional
// pass over the program takes K architectural checkpoints at measured-
// region boundaries; each region is then restored, warmed per WarmupMode
// and detail-simulated on its own core, concurrently up to RegionWorkers;
// the per-region stats are stitched by field-wise addition. Stitching is
// exact for additive counters, so the aggregate IPC is the instruction-
// weighted mean of the region IPCs; the fidelity report (see
// RegionFidelity) quantifies the gap to a monolithic run.
func runRegionsCtx(ctx context.Context, w workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) (Result, error) {
	k := opt.regionCount()
	p := w.Build()
	step := opt.MeasureInsts / uint64(k) // Validate guarantees step >= 1.

	// Checkpoint scan: pure architectural execution takes a checkpoint
	// every step instructions. Region i restores at seq i*step, warms the
	// W instructions immediately preceding its measured slice, and then
	// measures [W + i*step, W + (i+1)*step) — so the measured slices are
	// consecutive and their union is exactly the monolithic run's measured
	// span [W, W+M).
	t0 := time.Now()
	ex := prog.NewExec(p)
	cps := make([]*prog.Checkpoint, k)
	for i := range cps {
		cps[i] = ex.Checkpoint()
		if i < k-1 {
			ex.Run(step, nil)
		}
	}
	scanInsts := ex.Seq()
	scanSeconds := time.Since(t0).Seconds()

	workers := opt.RegionWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	regions := make([]RegionResult, k)
	errs := make([]error, k)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			measure := step
			if i == k-1 {
				measure = opt.MeasureInsts - step*uint64(k-1)
			}
			var pred vp.Predictor
			if pf != nil {
				pred = pf()
			}
			exR := cps[i].Restore()
			seg, err := runSegmentCtx(ctx, coreCfg, pred, exR, cps[i].Memory(), p.WarmRanges, opt, measure)
			if err != nil {
				errs[i] = err
				return
			}
			regions[i] = RegionResult{
				Index:     i,
				StartSeq:  cps[i].Seq(),
				IPC:       seg.stats.IPC(),
				Stats:     seg.stats,
				Meter:     seg.meter,
				FFInsts:   seg.ffInsts,
				FFSeconds: seg.ffSeconds,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	var st ooo.RunStats
	var mt vp.Meter
	ffInsts := scanInsts
	ffSeconds := scanSeconds
	for i := range regions {
		st = statsAdd(st, regions[i].Stats)
		mt = meterAdd(mt, regions[i].Meter)
		ffInsts += regions[i].FFInsts
		ffSeconds += regions[i].FFSeconds
	}

	name := "baseline"
	if pf != nil {
		name = pf().Name()
	}
	return Result{
		Workload:   w.Name,
		Category:   w.Category,
		Core:       coreCfg.Name,
		Predictor:  name,
		WarmupMode: opt.warmupMode(),
		IPC:        st.IPC(),
		Coverage:   mt.Coverage(),
		Accuracy:   mt.Accuracy(),
		Stats:      st,
		Meter:      mt,
		FFInsts:    ffInsts,
		FFSeconds:  ffSeconds,
		Regions:    regions,
	}, nil
}

// statsAdd sums snapshots field-wise (the inverse pairing of statsDelta).
func statsAdd(a, b ooo.RunStats) ooo.RunStats {
	d := a
	d.Cycles += b.Cycles
	d.Retired += b.Retired
	d.RetiredLoads += b.RetiredLoads
	d.RetiredStores += b.RetiredStores
	d.Fetched += b.Fetched
	d.BranchMispredicts += b.BranchMispredicts
	d.VPFlushes += b.VPFlushes
	d.MemOrderFlushes += b.MemOrderFlushes
	d.Forwards += b.Forwards
	d.RetireStallCycles += b.RetireStallCycles
	d.EmptyWindowCycles += b.EmptyWindowCycles
	for i := range d.LoadsByLevel {
		d.LoadsByLevel[i] += b.LoadsByLevel[i]
	}
	d.StallHeadLoads += b.StallHeadLoads
	d.StallHeadOther += b.StallHeadOther
	d.SkippedCycles += b.SkippedCycles
	d.SkipEvents += b.SkipEvents
	for i := range d.Breakdown {
		d.Breakdown[i] += b.Breakdown[i]
	}
	return d
}

func meterAdd(a, b vp.Meter) vp.Meter {
	return vp.Meter{
		Loads:          a.Loads + b.Loads,
		Insts:          a.Insts + b.Insts,
		PredictedLoads: a.PredictedLoads + b.PredictedLoads,
		PredictedOther: a.PredictedOther + b.PredictedOther,
		Correct:        a.Correct + b.Correct,
		Wrong:          a.Wrong + b.Wrong,
		Flushes:        a.Flushes + b.Flushes,
	}
}

// RegionFidelity compares a region-stitched result against a monolithic
// run of the same spec: it returns the relative IPC error
// |stitched - mono| / mono. The warming-fidelity gate in CI holds the
// geomean of this error across the golden matrix under its threshold.
func RegionFidelity(stitched, mono Result) float64 {
	if mono.IPC == 0 {
		return 0
	}
	d := stitched.IPC - mono.IPC
	if d < 0 {
		d = -d
	}
	return d / mono.IPC
}
