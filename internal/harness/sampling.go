package harness

import (
	"context"
	"runtime"
	"sync"
	"time"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/sample"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// DefaultSampleWarmupInsts is the per-unit warmup window of a sampled run
// when Sampling.WarmupInsts is 0. Each unit restores an architectural
// checkpoint into a cold machine, so the warmup must rebuild not just
// caches but the long-history structures — BTB and value tables spanning
// a workload's whole handler working set — whose time constants are far
// longer than a unit. Empirically the sampled IPC converges on the
// full-detail IPC at ~200k warmed instructions across the golden matrix
// (shorter windows leave a systematic bias on the big-footprint
// workloads); the window is clamped near the stream start. Because this
// cost is per-unit and fixed, sampling pays off when MeasureInsts is much
// larger than Units × (WarmupInsts + UnitInsts) — paper-scale regions.
const DefaultSampleWarmupInsts = 200_000

// Sampling configures SMARTS-style sampled simulation of the measured
// region: instead of detail-simulating all MeasureInsts instructions, K
// sample units at systematic positions are simulated in detail (each
// restored from an architectural checkpoint and re-warmed), the gaps are
// covered by the functional checkpoint scan, and the per-unit results are
// aggregated into a population estimate with a 95% confidence interval.
// The zero value disables sampling.
type Sampling struct {
	// Units is the sample-unit count K. 0 with a TargetCI set starts the
	// auto-tune loop at sample.DefaultUnits; 0 without one disables
	// sampling. Minimum sample.MinUnits (a single unit has no variance
	// estimate).
	Units int
	// UnitInsts is the detailed length of each unit
	// (0 = sample.DefaultUnitInsts).
	UnitInsts uint64
	// WarmupInsts is the per-unit warmup run before each unit's measured
	// slice — functional bulk plus detailed tail, exactly like a
	// WarmupFunctional run's warmup (0 = DefaultSampleWarmupInsts).
	WarmupInsts uint64
	// TargetCI, when > 0, auto-tunes: the unit count doubles until the
	// IPC estimate's relative 95% CI half-width is <= TargetCI (e.g. 0.02
	// for ±2%) or MaxUnits is reached.
	TargetCI float64
	// MaxUnits caps auto-tune growth (0 = sample.DefaultMaxUnits). The cap
	// is additionally clamped to MeasureInsts/UnitInsts.
	MaxUnits int
	// Seed selects the systematic phase: units sit at the same
	// seed-derived offset within each frame. Results are deterministic for
	// a fixed Seed regardless of worker count.
	Seed uint64
}

// enabled reports whether the options request a sampled run.
func (s Sampling) enabled() bool { return s.Units != 0 || s.TargetCI != 0 }

// units resolves the starting unit count.
func (s Sampling) units() int {
	if s.Units == 0 {
		return sample.DefaultUnits
	}
	return s.Units
}

// unitInsts resolves the per-unit detailed length.
func (s Sampling) unitInsts() uint64 {
	if s.UnitInsts == 0 {
		return sample.DefaultUnitInsts
	}
	return s.UnitInsts
}

// warmupInsts resolves the per-unit warmup window.
func (s Sampling) warmupInsts() uint64 {
	if s.WarmupInsts == 0 {
		return DefaultSampleWarmupInsts
	}
	return s.WarmupInsts
}

// SampleUnitResult is the measured outcome of one detailed sample unit.
type SampleUnitResult struct {
	// Index is the unit's plan position.
	Index int
	// StartSeq is the absolute dynamic-instruction position of the unit's
	// first measured instruction (warmup region included).
	StartSeq uint64
	// WarmupInsts is the unit's actual warmup length (clamped near the
	// stream start).
	WarmupInsts uint64
	// IPC is the unit's measured IPC.
	IPC float64
	// Stats and Meter cover the unit's measured slice only.
	Stats ooo.RunStats
	Meter vp.Meter
	// FFInsts / FFSeconds are the unit's own functional-warmup costs
	// (the shared checkpoint scan is accounted in the Result).
	FFInsts   uint64
	FFSeconds float64
}

// SamplingReport is the statistical summary attached to a sampled run's
// Result. The point metrics on the Result itself (IPC, Stats, Meter) are
// the instruction-weighted stitch of the units; the Metric fields here
// carry the per-unit mean, standard error, and 95% CI the fidelity and
// coverage gates consume.
type SamplingReport struct {
	// PlannedUnits, UnitInsts, WarmupInsts, Seed and TargetCI echo the
	// plan of the final round.
	PlannedUnits int
	UnitInsts    uint64
	WarmupInsts  uint64
	Seed         uint64
	TargetCI     float64
	// Rounds counts auto-tune iterations (1 when TargetCI is 0).
	Rounds int
	// Converged is false only when auto-tune hit its unit cap with the
	// IPC interval still wider than TargetCI.
	Converged bool
	// SampledInsts counts the instructions measured in detail across
	// units — the detailed fraction is SampledInsts/MeasureInsts.
	SampledInsts uint64
	// IPC, Coverage and Accuracy are the per-unit population estimates.
	IPC      sample.Metric
	Coverage sample.Metric
	Accuracy sample.Metric
	// Units holds the final round's per-unit results, in plan order.
	Units []SampleUnitResult
}

// runSampledCtx is the sampled path of RunOneCtx: one architectural pass
// over the program takes a checkpoint at each planned unit's warmup start;
// each unit is then restored, functionally warmed (with the standard
// detailed tail) and detail-simulated on its own core, concurrently up to
// RegionWorkers; the per-unit stats are stitched and estimated. When
// TargetCI is set, sample.AutoTune re-plans with a doubled unit count
// until the IPC interval meets the target.
func runSampledCtx(ctx context.Context, w workload.Workload, coreCfg ooo.Config, pf PredFactory, opt Options) (Result, error) {
	sp := opt.Sampling
	p := w.Build()

	var (
		units     []SampleUnitResult
		ffInsts   uint64
		ffSeconds float64
	)
	round := func(plan sample.Plan) ([]float64, error) {
		rs, scanInsts, scanSeconds, err := runSampleRound(ctx, p, coreCfg, pf, opt, plan)
		if err != nil {
			return nil, err
		}
		units = rs
		ffInsts += scanInsts
		ffSeconds += scanSeconds
		values := make([]float64, len(rs))
		for i, u := range rs {
			values[i] = u.IPC
			ffInsts += u.FFInsts
			ffSeconds += u.FFSeconds
		}
		return values, nil
	}

	cfg := sample.Config{
		MeasureInsts: opt.MeasureInsts,
		Units:        sp.units(),
		UnitInsts:    sp.unitInsts(),
		Seed:         sp.Seed,
	}
	out, err := sample.AutoTune(cfg, sp.TargetCI, sp.MaxUnits, round)
	if err != nil {
		return Result{}, err
	}

	var st ooo.RunStats
	var mt vp.Meter
	coverage := make([]float64, len(units))
	accuracy := make([]float64, len(units))
	for i := range units {
		st = statsAdd(st, units[i].Stats)
		mt = meterAdd(mt, units[i].Meter)
		coverage[i] = units[i].Meter.Coverage()
		accuracy[i] = units[i].Meter.Accuracy()
	}

	name := "baseline"
	if pf != nil {
		name = pf().Name()
	}
	return Result{
		Workload:  w.Name,
		Category:  w.Category,
		Core:      coreCfg.Name,
		Predictor: name,
		// Sampled units always warm through the functional taps; record
		// the path that actually ran rather than the (unused) run-level
		// warmup mode.
		WarmupMode: WarmupFunctional,
		IPC:        st.IPC(),
		Coverage:   mt.Coverage(),
		Accuracy:   mt.Accuracy(),
		Stats:      st,
		Meter:      mt,
		FFInsts:    ffInsts,
		FFSeconds:  ffSeconds,
		Sampling: &SamplingReport{
			PlannedUnits: len(out.Plan.Units),
			UnitInsts:    out.Plan.UnitInsts,
			WarmupInsts:  sp.warmupInsts(),
			Seed:         sp.Seed,
			TargetCI:     sp.TargetCI,
			Rounds:       out.Rounds,
			Converged:    out.Converged,
			SampledInsts: st.Retired,
			IPC:          out.Metric,
			Coverage:     sample.Estimate(coverage),
			Accuracy:     sample.Estimate(accuracy),
			Units:        units,
		},
	}, nil
}

// runSampleRound simulates one planned round: the checkpoint scan plus the
// parallel per-unit detail simulations. It returns the per-unit results in
// plan order along with the scan's fast-forward accounting.
func runSampleRound(ctx context.Context, p *prog.Program, coreCfg ooo.Config, pf PredFactory, opt Options, plan sample.Plan) ([]SampleUnitResult, uint64, float64, error) {
	warm := opt.Sampling.warmupInsts()

	// Checkpoint scan: pure architectural execution visits each unit's
	// warmup start in ascending order. Unit i's measured slice begins at
	// absolute position WarmupInsts + Start_i; its warmup begins warm
	// instructions earlier, clamped at the stream start (only reachable
	// when the run-level warmup region is shorter than the unit warmup).
	t0 := time.Now()
	ex := prog.NewExec(p)
	cps := make([]*prog.Checkpoint, len(plan.Units))
	warms := make([]uint64, len(plan.Units))
	for i, u := range plan.Units {
		measureStart := opt.WarmupInsts + u.Start
		warms[i] = warm
		if warms[i] > measureStart {
			warms[i] = measureStart
		}
		if at := measureStart - warms[i]; at > ex.Seq() {
			ex.Run(at-ex.Seq(), nil)
		}
		cps[i] = ex.Checkpoint()
	}
	scanInsts := ex.Seq()
	scanSeconds := time.Since(t0).Seconds()

	workers := opt.RegionWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	units := make([]SampleUnitResult, len(plan.Units))
	errs := make([]error, len(plan.Units))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range plan.Units {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var pred vp.Predictor
			if pf != nil {
				pred = pf()
			}
			unitOpt := opt
			unitOpt.WarmupMode = WarmupFunctional
			unitOpt.WarmupInsts = warms[i]
			exU := cps[i].Restore()
			seg, err := runSegmentCtx(ctx, coreCfg, pred, exU, cps[i].Memory(), p.WarmRanges, unitOpt, plan.Units[i].Len)
			if err != nil {
				errs[i] = err
				return
			}
			units[i] = SampleUnitResult{
				Index:       i,
				StartSeq:    cps[i].Seq() + warms[i],
				WarmupInsts: warms[i],
				IPC:         seg.stats.IPC(),
				Stats:       seg.stats,
				Meter:       seg.meter,
				FFInsts:     seg.ffInsts,
				FFSeconds:   seg.ffSeconds,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	return units, scanInsts, scanSeconds, nil
}
