package harness

import (
	"errors"
	"math"
	"os"
	"reflect"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/telemetry"
	"fvp/internal/workload"
)

func TestSamplingOptionsValidate(t *testing.T) {
	base := Options{WarmupInsts: 10_000, MeasureInsts: 100_000}
	with := func(s Sampling) Options { o := base; o.Sampling = s; return o }
	cases := []struct {
		name  string
		opt   Options
		field string // "" = valid
	}{
		{"one unit", with(Sampling{Units: 1}), "Sampling.Units"},
		{"negative units", with(Sampling{Units: -2}), "Sampling.Units"},
		{"target >= 1", with(Sampling{TargetCI: 1.5}), "Sampling.TargetCI"},
		{"negative target", with(Sampling{Units: 4, TargetCI: -0.1}), "Sampling.TargetCI"},
		{"negative cap", with(Sampling{Units: 4, MaxUnits: -1}), "Sampling.MaxUnits"},
		{"budget over population", with(Sampling{Units: 4, UnitInsts: 30_000}), "Sampling.Units"},
		{"sampling with regions", func() Options {
			o := with(Sampling{Units: 4})
			o.Regions = 2
			return o
		}(), "Sampling"},
		{"sampling with observer", func() Options {
			o := with(Sampling{Units: 4})
			o.OnSample = func(telemetry.Sample) {}
			return o
		}(), "Sampling"},
		{"sampling with tracer", func() Options {
			o := with(Sampling{Units: 4})
			o.Tracer = &telemetry.PipeTrace{}
			return o
		}(), "Sampling"},
		{"valid units", with(Sampling{Units: 8}), ""},
		{"valid target only", with(Sampling{TargetCI: 0.02}), ""},
		{"valid full", with(Sampling{Units: 4, UnitInsts: 2_000, WarmupInsts: 1_000, TargetCI: 0.05, MaxUnits: 32, Seed: 7}), ""},
		{"disabled zero value", base, ""},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var ie *InvalidOptionsError
		if !errors.As(err, &ie) {
			t.Errorf("%s: got %v, want *InvalidOptionsError", c.name, err)
			continue
		}
		if ie.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, ie.Field, c.field)
		}
	}
}

// Sampled-run structure: K units in plan order, each measuring ~UnitInsts,
// stitched stats equal to the field-wise sum, a populated report, and a
// detailed budget far below the measured region.
func TestSampledRunStructure(t *testing.T) {
	w, _ := workload.ByName("omnetpp")
	opt := Options{
		WarmupInsts: 5_000, MeasureInsts: 200_000, ReuseCores: true,
		Sampling: Sampling{Units: 8, UnitInsts: 1_000, WarmupInsts: 2_000, Seed: 1},
	}
	r := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	sr := r.Sampling
	if sr == nil {
		t.Fatal("sampled run returned no SamplingReport")
	}
	if sr.PlannedUnits != 8 || len(sr.Units) != 8 {
		t.Fatalf("planned %d units with %d results, want 8", sr.PlannedUnits, len(sr.Units))
	}
	if sr.Rounds != 1 || !sr.Converged {
		t.Errorf("fixed-K run: rounds=%d converged=%v", sr.Rounds, sr.Converged)
	}
	var sum ooo.RunStats
	prevStart := uint64(0)
	for i, u := range sr.Units {
		if u.Index != i {
			t.Errorf("unit %d: Index = %d", i, u.Index)
		}
		if i > 0 && u.StartSeq <= prevStart {
			t.Errorf("unit %d: StartSeq %d not increasing past %d", i, u.StartSeq, prevStart)
		}
		prevStart = u.StartSeq
		// Width-granular retirement may overshoot each unit's bound by up
		// to a commit group.
		if u.Stats.Retired < 1_000 || u.Stats.Retired > 1_000+16 {
			t.Errorf("unit %d: measured %d insts, want ~1000", i, u.Stats.Retired)
		}
		if u.IPC <= 0 {
			t.Errorf("unit %d: IPC = %v", i, u.IPC)
		}
		if u.WarmupInsts != 2_000 {
			t.Errorf("unit %d: warmed %d insts, want 2000", i, u.WarmupInsts)
		}
		sum = statsAdd(sum, u.Stats)
	}
	if !reflect.DeepEqual(sum, r.Stats) {
		t.Errorf("stitched stats != sum of units:\n got: %+v\nwant: %+v", r.Stats, sum)
	}
	if sr.SampledInsts != r.Stats.Retired {
		t.Errorf("SampledInsts = %d, stitched Retired = %d", sr.SampledInsts, r.Stats.Retired)
	}
	// The whole point: detailed work is a small fraction of the region.
	if sr.SampledInsts > opt.MeasureInsts/10 {
		t.Errorf("sampled %d of %d insts — not actually sampling", sr.SampledInsts, opt.MeasureInsts)
	}
	if r.FFInsts == 0 {
		t.Error("sampled run reported no fast-forwarded instructions (checkpoint scan missing?)")
	}
	if sr.IPC.Mean <= 0 || sr.IPC.StdErr < 0 {
		t.Errorf("IPC estimate %+v", sr.IPC)
	}
	if r.WarmupMode != WarmupFunctional {
		t.Errorf("WarmupMode = %q, want functional", r.WarmupMode)
	}
}

// For a fixed seed, the sampled result must not depend on how many workers
// executed the units.
func TestSamplingDeterministicAcrossWorkers(t *testing.T) {
	w, _ := workload.ByName("gcc")
	base := Options{
		WarmupInsts: 5_000, MeasureInsts: 120_000, ReuseCores: true,
		Sampling: Sampling{Units: 6, UnitInsts: 1_000, WarmupInsts: 2_000, Seed: 3},
	}
	var ref Result
	for i, workers := range []int{1, 2, 4} {
		opt := base
		opt.RegionWorkers = workers
		got := stripWallClock(RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt))
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged from workers=1:\n got: %+v\nwant: %+v", workers, got, ref)
		}
	}
	// And the same run twice must reproduce bit-for-bit.
	again := stripWallClock(RunOne(w, ooo.Skylake(), Factory(SpecFVP), base))
	base.RegionWorkers = 1
	if !reflect.DeepEqual(again, ref) {
		t.Error("same seed reran differently")
	}
}

// A different seed must move the systematic phase (and so, in general, the
// per-unit observations).
func TestSamplingSeedSensitive(t *testing.T) {
	w, _ := workload.ByName("mcf")
	opt := Options{
		WarmupInsts: 2_000, MeasureInsts: 80_000, ReuseCores: true,
		Sampling: Sampling{Units: 4, UnitInsts: 500, Seed: 1},
	}
	a := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	opt.Sampling.Seed = 2
	b := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	if a.Sampling.Units[0].StartSeq == b.Sampling.Units[0].StartSeq {
		t.Error("adjacent seeds placed unit 0 identically")
	}
}

// Auto-tune must grow K until the IPC interval meets the target, and the
// report must reflect the growth.
func TestSamplingAutoTune(t *testing.T) {
	w, _ := workload.ByName("hmmer")
	opt := Options{
		WarmupInsts: 2_000, MeasureInsts: 300_000, ReuseCores: true,
		Sampling: Sampling{Units: 2, UnitInsts: 1_000, TargetCI: 0.05, MaxUnits: 64, Seed: 9},
	}
	r := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	sr := r.Sampling
	if sr == nil {
		t.Fatal("no report")
	}
	if !sr.Converged {
		t.Fatalf("did not converge: relCI %.4f at K=%d after %d rounds",
			sr.IPC.RelCI, sr.PlannedUnits, sr.Rounds)
	}
	if sr.IPC.RelCI > opt.Sampling.TargetCI {
		t.Errorf("converged with relCI %.4f > target %.2f", sr.IPC.RelCI, opt.Sampling.TargetCI)
	}
	if len(sr.Units) != sr.PlannedUnits {
		t.Errorf("report has %d units, planned %d", len(sr.Units), sr.PlannedUnits)
	}
}

// samplingFidelityWorkloads is the golden matrix of the sampling gate —
// the same 13 workloads the warming-fidelity gate covers.
var samplingFidelityWorkloads = fidelityWorkloads

// TestSamplingFidelityGate holds sampled IPC within 2% geomean of the
// full-detail run across the golden workloads. Like the warming gate it is
// opt-in via FVP_SAMPLING_GATE=1 (CI's sampling-fidelity job) — a full
// sweep at gate sizes is too slow for the every-push test job.
func TestSamplingFidelityGate(t *testing.T) {
	if os.Getenv("FVP_SAMPLING_GATE") == "" {
		t.Skip("set FVP_SAMPLING_GATE=1 to run the sampling-fidelity gate")
	}
	// The region must be long enough for sampling to be meaningful (and
	// for the per-unit warmup, which rebuilds long-history machine state,
	// to fit between units); the gate runs at 1M measured instructions
	// with the default 200k-inst unit warmup.
	const (
		warm    = 50_000
		measure = 1_000_000
	)
	sumLog := 0.0
	for _, name := range samplingFidelityWorkloads {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("golden workload %q missing", name)
		}
		full := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
			Options{WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true})
		sampled := RunOne(w, ooo.Skylake(), Factory(SpecFVP), Options{
			WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true,
			Sampling: Sampling{Units: 16, UnitInsts: 2_000, Seed: 1},
		})
		rel := math.Abs(sampled.IPC-full.IPC) / full.IPC
		t.Logf("%-12s full %.4f sampled %.4f (%.2f%% off, relCI %.2f%%, %dx detail reduction)",
			name, full.IPC, sampled.IPC, rel*100, sampled.Sampling.IPC.RelCI*100,
			measure/sampled.Sampling.SampledInsts)
		sumLog += math.Log1p(rel)
	}
	geo := math.Expm1(sumLog / float64(len(samplingFidelityWorkloads)))
	t.Logf("geomean |dIPC| = %.3f%%", geo*100)
	if geo > 0.02 {
		t.Errorf("sampling fidelity gate: geomean |dIPC| %.3f%% > 2%%", geo*100)
	}
}

// TestSamplingCICoverage checks the confidence interval is honest: over a
// fixed list of seeds on one workload, the sampled 95% interval must
// contain the full-detail IPC in at least ~90% of runs. The seed list is
// fixed, so the test is deterministic — the margin below 95% absorbs the
// conservative-but-not-exact SRS variance estimator and the finite seed
// count, not run-to-run noise.
func TestSamplingCICoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep is slow")
	}
	const (
		warm    = 10_000
		measure = 120_000
		seeds   = 20
	)
	w, _ := workload.ByName("omnetpp")
	full := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
		Options{WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true})
	hits := 0
	for seed := uint64(0); seed < seeds; seed++ {
		r := RunOne(w, ooo.Skylake(), Factory(SpecFVP), Options{
			WarmupInsts: warm, MeasureInsts: measure, ReuseCores: true,
			Sampling: Sampling{Units: 12, UnitInsts: 1_000, Seed: seed},
		})
		m := r.Sampling.IPC
		if math.Abs(m.Mean-full.IPC) <= m.CIHalf {
			hits++
		} else {
			t.Logf("seed %d: interval %.4f±%.4f misses full-detail IPC %.4f",
				seed, m.Mean, m.CIHalf, full.IPC)
		}
	}
	t.Logf("coverage: %d/%d intervals contain the full-detail IPC", hits, seeds)
	if hits < 18 { // 90% of 20
		t.Errorf("CI coverage %d/%d below the 90%% floor", hits, seeds)
	}
}
