package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

func samplePairs() []Pair {
	mk := func(name string, cat workload.Category, b, p float64) Pair {
		var bd ooo.CycleBreakdown
		bd[ooo.CycRetiring] = 60
		bd[ooo.CycMemDRAM] = 30
		bd[ooo.CycFrontend] = 10
		return Pair{
			Base: Result{Workload: name, Category: cat, Core: "Skylake", IPC: b},
			Pred: Result{
				Workload: name, Category: cat, Core: "Skylake",
				Predictor: "FVP", IPC: p, Coverage: 0.25, Accuracy: 0.999,
				Stats: ooo.RunStats{Cycles: 100, Breakdown: bd},
			},
		}
	}
	return []Pair{
		mk("omnetpp", workload.ISPEC06, 1.0, 1.2),
		mk("leela", workload.SPEC17, 0.4, 0.4),
	}
}

func TestRecords(t *testing.T) {
	recs := Records(samplePairs())
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Speedup < 1.19 || r.Speedup > 1.21 {
		t.Errorf("speedup = %v", r.Speedup)
	}
	if r.Retiring != 0.6 || r.Frontend != 0.1 {
		t.Errorf("cycle shares: %+v", r)
	}
	if r.MemStall != 0.3 {
		t.Errorf("mem stall share = %v", r.MemStall)
	}
}

func TestWriteJSONRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Records(samplePairs())); err != nil {
		t.Fatal(err)
	}
	var back []ReportRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Workload != "leela" {
		t.Errorf("roundtrip: %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Records(samplePairs())); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,category") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "omnetpp,ISPEC06,Skylake,FVP,1.0000,1.2000") {
		t.Errorf("row: %s", lines[1])
	}
}
