package harness

import "math"

func logOf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

func expOf(x float64) float64 { return math.Exp(x) }
