package harness

import (
	"os"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

// TestScalingSubset prints SKL vs 2X FVP gains for the main gainer
// workloads (bring-up instrumentation).
func TestScalingSubset(t *testing.T) {
	if os.Getenv("FVP_TUNE") == "" {
		t.Skip("calibration probe; set FVP_TUNE=1 to run")
	}
	opt := Options{WarmupInsts: 80_000, MeasureInsts: 250_000}
	for _, n := range []string{"omnetpp", "astar", "soplex", "sphinx3", "namd", "cassandra", "tpce", "milc"} {
		w, _ := workload.ByName(n)
		b1 := RunOne(w, ooo.Skylake(), nil, opt)
		f1 := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
		b2 := RunOne(w, ooo.Skylake2X(), nil, opt)
		f2 := RunOne(w, ooo.Skylake2X(), Factory(SpecFVP), opt)
		t.Logf("%-10s SKL %.2f->%.2f (%+.1f%% cov%.0f) 2X %.2f->%.2f (%+.1f%% cov%.0f) stall:%d/%d",
			n, b1.IPC, f1.IPC, (f1.IPC/b1.IPC-1)*100, f1.Coverage*100,
			b2.IPC, f2.IPC, (f2.IPC/b2.IPC-1)*100, f2.Coverage*100,
			b2.Stats.RetireStallCycles, b2.Stats.Cycles)
	}
}
