package harness

import (
	"os"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

// TestTuningProbe runs a handful of representative workloads with baseline
// and FVP and logs the metrics; it only asserts sanity (IPC > 0). Used
// during bring-up to eyeball per-kernel behaviour: run with -v.
func TestTuningProbe(t *testing.T) {
	if os.Getenv("FVP_TUNE") == "" {
		t.Skip("calibration probe; set FVP_TUNE=1 to run")
	}
	names := []string{"omnetpp", "mcf", "cassandra", "leela", "wrf", "libquantum", "hmmer"}
	opt := Options{WarmupInsts: 60_000, MeasureInsts: 150_000}
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %s", n)
		}
		base := RunOne(w, ooo.Skylake(), nil, opt)
		fvp := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
		if base.IPC <= 0 || fvp.IPC <= 0 {
			t.Fatalf("%s: zero IPC (base=%.3f fvp=%.3f)", n, base.IPC, fvp.IPC)
		}
		t.Logf("%-12s base=%.3f fvp=%.3f speedup=%+.2f%% cov=%.1f%% acc=%.1f%% flush=%d brM=%d fwd=%d lvl=%v stall=%d/%d",
			n, base.IPC, fvp.IPC, (fvp.IPC/base.IPC-1)*100,
			fvp.Coverage*100, fvp.Accuracy*100, fvp.Stats.VPFlushes,
			base.Stats.BranchMispredicts, base.Stats.Forwards,
			base.Stats.LoadsByLevel, base.Stats.RetireStallCycles, base.Stats.Cycles)
	}
}
