package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"fvp/internal/core"
	"fvp/internal/ooo"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

// Experiment is one reproducible unit of the paper's evaluation section.
type Experiment struct {
	// ID is the command-line handle ("fig6", "table1", "epoch", ...).
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Run executes the experiment and writes its table to out.
	Run func(r *Runner, out io.Writer) error
}

// Runner memoizes suite results per (core config, predictor spec) so
// experiments sharing a suite — every figure reuses the baseline, and
// fig6/fig7/fig8/fig9/fig13 all need the plain FVP arm — simulate each one
// exactly once per process.
type Runner struct {
	Opt Options
	// Workloads defaults to the full 60-entry list; tests shrink it.
	Workloads []workload.Workload

	ctx    context.Context
	err    error
	suites map[suiteKey][]Result
	// suiteRuns counts actual suite simulations (memo misses). Tests use it
	// to assert that repeated Compare calls do zero new runs.
	suiteRuns int
}

// suiteKey identifies one memoized suite: the core configuration by name
// and the predictor arm by spec (or by caller-chosen label for closure
// factories — see CompareWith).
type suiteKey struct {
	core string
	spec Spec
}

// NewRunner builds a runner over the full study list.
func NewRunner(opt Options) *Runner {
	return NewRunnerCtx(context.Background(), opt)
}

// NewRunnerCtx builds a runner whose suite runs honor ctx. Because the
// Experiment.Run signature has no error channel for cancellation, the
// first ctx error is latched on the runner — check Err after running.
func NewRunnerCtx(ctx context.Context, opt Options) *Runner {
	return &Runner{
		Opt:       opt,
		Workloads: workload.All(),
		ctx:       ctx,
		suites:    make(map[suiteKey][]Result),
	}
}

// Err reports the first cancellation error hit by a suite run, if any.
func (r *Runner) Err() error { return r.err }

// SuiteRuns reports how many suites were actually simulated (memo misses).
func (r *Runner) SuiteRuns() int { return r.suiteRuns }

// Baseline returns (memoized) baseline results for a core config.
func (r *Runner) Baseline(cfg ooo.Config) []Result {
	return r.memoSuite(cfg, SpecNone, nil)
}

// Compare runs the spec's predictor suite — memoized per (cfg.Name, spec) —
// and pairs it with the (equally memoized) baseline.
func (r *Runner) Compare(cfg ooo.Config, spec Spec) []Pair {
	return r.pair(cfg, r.memoSuite(cfg, spec, Factory(spec)))
}

// CompareWith is Compare for ad-hoc predictor factories that have no Spec
// (parameter sweeps). label keys the memo alongside the named specs, so it
// must uniquely describe the factory's configuration.
func (r *Runner) CompareWith(cfg ooo.Config, label string, pf PredFactory) []Pair {
	return r.pair(cfg, r.memoSuite(cfg, Spec(label), pf))
}

func (r *Runner) pair(cfg ooo.Config, pred []Result) []Pair {
	base := r.Baseline(cfg)
	pairs := make([]Pair, len(base))
	for i := range base {
		pairs[i] = Pair{Base: base[i], Pred: pred[i]}
	}
	return pairs
}

func (r *Runner) memoSuite(cfg ooo.Config, spec Spec, pf PredFactory) []Result {
	key := suiteKey{core: cfg.Name, spec: spec}
	if res, ok := r.suites[key]; ok {
		return res
	}
	ctx := r.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r.suiteRuns++
	res, err := RunSuiteCtx(ctx, r.Workloads, cfg, pf, r.Opt)
	if err != nil && r.err == nil {
		r.err = err
	}
	// A cancelled run is cached too: the runner is poisoned (err latched)
	// and every later call would be cancelled the same way.
	r.suites[key] = res
	return res
}

func pct(x float64) string { return fmt.Sprintf("%+.2f%%", (x-1)*100) }

// categoryTable prints per-category geomean speedup and mean coverage, plus
// the overall geomean — the Fig-6/7 format.
func categoryTable(out io.Writer, pairs []Pair, withCoverage bool) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	byCat := ByCategory(pairs)
	if withCoverage {
		fmt.Fprintln(w, "category\tIPC gain\tcoverage")
	} else {
		fmt.Fprintln(w, "category\tIPC gain")
	}
	for _, c := range workload.Categories() {
		ps := byCat[c]
		if len(ps) == 0 {
			continue
		}
		if withCoverage {
			fmt.Fprintf(w, "%s\t%s\t%.0f%%\n", c, pct(Geomean(ps)), MeanCoverage(ps)*100)
		} else {
			fmt.Fprintf(w, "%s\t%s\n", c, pct(Geomean(ps)))
		}
	}
	if withCoverage {
		fmt.Fprintf(w, "Geomean\t%s\t%.0f%%\n", pct(Geomean(pairs)), MeanCoverage(pairs)*100)
	} else {
		fmt.Fprintf(w, "Geomean\t%s\n", pct(Geomean(pairs)))
	}
	w.Flush()
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: FVP storage requirements", Run: runTable1},
		{ID: "table2", Title: "Table II: core parameters", Run: runTable2},
		{ID: "table3", Title: "Table III: study list", Run: runTable3},
		{ID: "fig6", Title: "Fig 6: FVP performance and coverage on Skylake", Run: runFig6},
		{ID: "fig7", Title: "Fig 7: FVP performance and coverage on Skylake-2X", Run: runFig7},
		{ID: "fig8", Title: "Fig 8: per-workload IPC and coverage on Skylake", Run: runFig8},
		{ID: "fig9", Title: "Fig 9: per-workload FVP on Skylake vs Skylake-2X", Run: runFig9},
		{ID: "fig10", Title: "Fig 10: prior-art comparison on Skylake", Run: runFig10},
		{ID: "fig11", Title: "Fig 11: prior-art comparison on Skylake-2X", Run: runFig11},
		{ID: "fig12", Title: "Fig 12: sensitivity to criticality criteria", Run: runFig12},
		{ID: "fig13", Title: "Fig 13: contribution of FVP components", Run: runFig13},
		{ID: "alltypes", Title: "§VI-A2: predicting all instruction types", Run: runAllTypes},
		{ID: "branchchains", Title: "§VI-A3: predicting branch mis-prediction chains", Run: runBranchChains},
		{ID: "epoch", Title: "§VI-C1: criticality-epoch sensitivity", Run: runEpoch},
		{ID: "tables", Title: "§VI-D: table-size sensitivity", Run: runTableSizes},
		{ID: "stalls", Title: "extension: top-down cycle breakdown with and without FVP", Run: runStalls},
		{ID: "ablation", Title: "extension: baseline-substrate ablations (prefetchers, disambiguation, VP penalty)", Run: runAblation},
		{ID: "baselines", Title: "extension: full predictor shoot-out incl. LVP/stride/VTAGE/EVES", Run: runBaselinePredictors},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(_ *Runner, out io.Writer) error {
	f := core.New(core.DefaultConfig())
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "structure\tentries\tbits\tbytes")
	total := 0
	for _, it := range f.StorageBreakdown() {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\n", it.Name, it.Entries, it.Bits, float64(it.Bits)/8)
		total += it.Bits
	}
	fmt.Fprintf(w, "Total\t\t%d\t%.0f (≈%.1f KB)\n", total, float64(total)/8, float64(total)/8/1024)
	w.Flush()
	return nil
}

func runTable2(_ *Runner, out io.Writer) error {
	for _, cfg := range []ooo.Config{ooo.Skylake(), ooo.Skylake2X()} {
		fmt.Fprintf(out, "%s:\n", cfg.Name)
		fmt.Fprintf(out, "  front end: %d-wide fetch, depth %d, mispredict penalty %d\n",
			cfg.FetchWidth, cfg.FrontEndDepth, cfg.BranchMispredictPenalty)
		fmt.Fprintf(out, "  window: ROB %d, IQ %d, LQ %d, SQ %d, retire %d-wide\n",
			cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize, cfg.RetireWidth)
		fmt.Fprintf(out, "  ports: %d ALU, %d load, %d store, %d FP, %d branch\n",
			cfg.ALUPorts, cfg.LoadPorts, cfg.StorePorts, cfg.FPPorts, cfg.BranchPorts)
		fmt.Fprintf(out, "  caches: L1D %dKB/%dw (%d cyc), L2 %dKB/%dw (%d cyc), LLC %dMB/%dw (%d cyc)\n",
			cfg.Mem.L1D.SizeBytes>>10, cfg.Mem.L1D.Ways, cfg.Mem.L1D.Latency,
			cfg.Mem.L2.SizeBytes>>10, cfg.Mem.L2.Ways, cfg.Mem.L2.Latency,
			cfg.Mem.LLC.SizeBytes>>20, cfg.Mem.LLC.Ways, cfg.Mem.LLC.Latency)
		fmt.Fprintf(out, "  memory: %d channels DDR4, VP mispredict penalty %d\n",
			cfg.Mem.Dram.Channels, cfg.VPMispredictPenalty)
	}
	return nil
}

func runTable3(r *Runner, out io.Writer) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	byCat := make(map[workload.Category][]string)
	for _, wl := range r.Workloads {
		byCat[wl.Category] = append(byCat[wl.Category], wl.Name)
	}
	fmt.Fprintln(w, "category\tcount\tbenchmarks")
	for _, c := range workload.Categories() {
		names := byCat[c]
		sort.Strings(names)
		fmt.Fprintf(w, "%s\t%d\t%v\n", c, len(names), names)
	}
	w.Flush()
	return nil
}

func runFig6(r *Runner, out io.Writer) error {
	pairs := r.Compare(ooo.Skylake(), SpecFVP)
	fmt.Fprintln(out, "FVP on Skylake (paper: FSPEC 2.6%, ISPEC 4.6%, Server 5.7%, SPEC17 0.9%, geomean 3.3% @ 25% coverage)")
	categoryTable(out, pairs, true)
	return nil
}

func runFig7(r *Runner, out io.Writer) error {
	pairs := r.Compare(ooo.Skylake2X(), SpecFVP)
	fmt.Fprintln(out, "FVP on Skylake-2X (paper: FSPEC 7.0%, ISPEC 15.1%, Server 11.7%, SPEC17 2.5%, geomean 8.6% @ 24% coverage)")
	categoryTable(out, pairs, true)
	return nil
}

func runFig8(r *Runner, out io.Writer) error {
	pairs := r.Compare(ooo.Skylake(), SpecFVP)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tcategory\tIPC ratio\tcoverage")
	for _, p := range pairs {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.0f%%\n",
			p.Base.Workload, p.Base.Category, p.Speedup(), p.Pred.Coverage*100)
	}
	w.Flush()
	return nil
}

func runFig9(r *Runner, out io.Writer) error {
	sky := r.Compare(ooo.Skylake(), SpecFVP)
	sky2 := r.Compare(ooo.Skylake2X(), SpecFVP)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tSkylake+FVP/Skylake\tSkylake2X+FVP/Skylake2X")
	for i := range sky {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", sky[i].Base.Workload, sky[i].Speedup(), sky2[i].Speedup())
	}
	fmt.Fprintf(w, "Geomean\t%.3f\t%.3f\n", Geomean(sky), Geomean(sky2))
	w.Flush()
	return nil
}

func priorArt(r *Runner, cfg ooo.Config, out io.Writer) error {
	specs := []Spec{SpecMR8KB, SpecComp8KB, SpecFVP, SpecMR1KB, SpecComp1KB}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predictor\tstorage\tIPC gain\tcoverage")
	for _, s := range specs {
		pairs := r.Compare(cfg, s)
		bits := Factory(s)().StorageBits()
		fmt.Fprintf(w, "%s\t%.1f KB\t%s\t%.0f%%\n",
			s, float64(bits)/8/1024, pct(Geomean(pairs)), MeanCoverage(pairs)*100)
	}
	w.Flush()
	return nil
}

func runFig10(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Prior art on Skylake (paper: MR-8KB 3.8%@18%, Comp-8KB 3.9%@39%, FVP 3.3%@25%, MR-1KB 1.1%@11%, Comp-1KB 1.7%@24%)")
	return priorArt(r, ooo.Skylake(), out)
}

func runFig11(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Prior art on Skylake-2X (paper: MR-8KB 8.2%, Comp-8KB 8.7%, FVP 8.6%, MR-1KB 3.2%, Comp-1KB 4.7%)")
	return priorArt(r, ooo.Skylake2X(), out)
}

func runFig12(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Criticality criteria on Skylake (paper: L1-Miss-Only 0.0%@6%, L1-Miss 2.1%@15%, FVP 3.3%@25%, Oracle 3.87%@19%)")
	specs := []Spec{SpecFVPL1MissOnl, SpecFVPL1Miss, SpecFVP, SpecFVPOracle}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tIPC gain\tcoverage")
	for _, s := range specs {
		pairs := r.Compare(ooo.Skylake(), s)
		fmt.Fprintf(w, "%s\t%s\t%.0f%%\n", s, pct(Geomean(pairs)), MeanCoverage(pairs)*100)
	}
	w.Flush()
	return nil
}

func runFig13(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "Component contribution on Skylake (paper: register deps — FSPEC 2.10%, ISPEC 2.14%, Server 0.42%, SPEC17 0.29%; memory deps — FSPEC 0.46%, ISPEC 2.42%, Server 5.28%, SPEC17 0.63%)")
	reg := r.Compare(ooo.Skylake(), SpecFVPRegOnly)
	mem := r.Compare(ooo.Skylake(), SpecFVPMemOnly)
	full := r.Compare(ooo.Skylake(), SpecFVP)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "category\tregister deps\tmemory deps\tfull FVP")
	byR, byM, byF := ByCategory(reg), ByCategory(mem), ByCategory(full)
	for _, c := range workload.Categories() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", c,
			pct(Geomean(byR[c])), pct(Geomean(byM[c])), pct(Geomean(byF[c])))
	}
	fmt.Fprintf(w, "Geomean\t%s\t%s\t%s\n",
		pct(Geomean(reg)), pct(Geomean(mem)), pct(Geomean(full)))
	w.Flush()
	return nil
}

func runAllTypes(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "§VI-A2 (paper: predicting non-loads adds nothing, can degrade slightly)")
	loads := r.Compare(ooo.Skylake(), SpecFVP)
	all := r.Compare(ooo.Skylake(), SpecFVPAllTypes)
	fmt.Fprintf(out, "FVP loads-only: %s    FVP all-types: %s\n",
		pct(Geomean(loads)), pct(Geomean(all)))
	return nil
}

func runBranchChains(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "§VI-A3 (paper: targeting mispredicting-branch chains adds 0.5% coverage, 0.05% speedup)")
	def := r.Compare(ooo.Skylake(), SpecFVP)
	br := r.Compare(ooo.Skylake(), SpecFVPBrChains)
	fmt.Fprintf(out, "FVP: %s @ %.1f%% cov    FVP+branch-chains: %s @ %.1f%% cov\n",
		pct(Geomean(def)), MeanCoverage(def)*100,
		pct(Geomean(br)), MeanCoverage(br)*100)
	return nil
}

func runEpoch(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "§VI-C1: criticality-epoch sweep (paper: best ≈ 400k retirements; very small and very large both lose)")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "epoch\tIPC gain")
	for _, epoch := range []uint64{25_000, 100_000, 400_000, 1_600_000, 6_400_000} {
		epoch := epoch
		pf := func() vp.Predictor {
			c := core.DefaultConfig()
			c.Epoch = epoch
			return core.New(c)
		}
		pairs := r.CompareWith(ooo.Skylake(), fmt.Sprintf("FVP-epoch-%d", epoch), pf)
		fmt.Fprintf(w, "%d\t%s\n", epoch, pct(Geomean(pairs)))
	}
	w.Flush()
	return nil
}

// runStalls prints the per-category top-down cycle accounting for the
// baseline and under FVP — it makes visible *where* FVP's cycles come from
// (mem-DRAM and store-fwd stalls shrink; retiring grows).
func runStalls(r *Runner, out io.Writer) error {
	pairs := r.Compare(ooo.Skylake(), SpecFVP)
	type agg struct{ base, pred ooo.CycleBreakdown }
	cats := map[workload.Category]*agg{}
	for _, p := range pairs {
		a := cats[p.Base.Category]
		if a == nil {
			a = &agg{}
			cats[p.Base.Category] = a
		}
		for i := range a.base {
			a.base[i] += p.Base.Stats.Breakdown[i]
			a.pred[i] += p.Pred.Stats.Breakdown[i]
		}
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "category")
	for _, n := range ooo.BucketNames {
		fmt.Fprintf(w, "	%s", n)
	}
	fmt.Fprintln(w)
	for _, c := range workload.Categories() {
		a := cats[c]
		if a == nil {
			continue
		}
		sum := func(b ooo.CycleBreakdown) (t float64) {
			for _, v := range b {
				t += float64(v)
			}
			return
		}
		bt, pt := sum(a.base), sum(a.pred)
		fmt.Fprintf(w, "%s base", c)
		for _, v := range a.base {
			fmt.Fprintf(w, "	%.0f%%", 100*float64(v)/bt)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%s +FVP", c)
		for _, v := range a.pred {
			fmt.Fprintf(w, "	%.0f%%", 100*float64(v)/pt)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return nil
}

func runTableSizes(r *Runner, out io.Writer) error {
	fmt.Fprintln(out, "§VI-D: table sizes (paper: VT 48→96 + VF 40→128 ≈ +1%; beyond that flat; CIT size nearly irrelevant)")
	type cfgRow struct {
		label           string
		vt, vf, cit, lt int
	}
	rows := []cfgRow{
		{"VT 24 / VF 20 / CIT 32", 24, 20, 32, 2},
		{"VT 48 / VF 40 / CIT 32 (default)", 48, 40, 32, 2},
		{"VT 96 / VF 128 / CIT 32", 96, 128, 32, 2},
		{"VT 192 / VF 256 / CIT 32", 192, 256, 32, 2},
		{"VT 48 / VF 40 / CIT 8", 48, 40, 8, 2},
		{"VT 48 / VF 40 / CIT 16", 48, 40, 16, 2},
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tIPC gain\tcoverage")
	for _, row := range rows {
		row := row
		pf := func() vp.Predictor {
			c := core.DefaultConfig()
			c.VTEntries = row.vt
			c.MR.VFEntries = row.vf
			c.CITEntries = row.cit
			c.LTEntries = row.lt
			return core.New(c)
		}
		pairs := r.CompareWith(ooo.Skylake(), "FVP-"+row.label, pf)
		fmt.Fprintf(w, "%s\t%s\t%.0f%%\n", row.label, pct(Geomean(pairs)), MeanCoverage(pairs)*100)
	}
	w.Flush()
	return nil
}
