package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"fvp/internal/ooo"
)

// ReportRecord is the flat, machine-readable form of one comparison row —
// what a plotting script consumes to redraw the paper's figures.
type ReportRecord struct {
	Workload  string  `json:"workload"`
	Category  string  `json:"category"`
	Core      string  `json:"core"`
	Predictor string  `json:"predictor"`
	BaseIPC   float64 `json:"base_ipc"`
	PredIPC   float64 `json:"pred_ipc"`
	Speedup   float64 `json:"speedup"`
	Coverage  float64 `json:"coverage"`
	Accuracy  float64 `json:"accuracy"`
	VPFlushes uint64  `json:"vp_flushes"`

	// Top-down cycle shares of the predictor run (fractions of cycles).
	Retiring float64 `json:"retiring"`
	MemStall float64 `json:"mem_stall"`
	Frontend float64 `json:"frontend"`

	// Simulator-speed meters of the predictor run: how many of its cycles
	// were idle-elided (clock-jumped) and what fraction of all cycles that
	// is. High SkipRatio = memory-bound workload the fast path accelerates
	// most; 0 under -tags ooo_noskip.
	SkippedCycles uint64  `json:"skipped_cycles"`
	SkipRatio     float64 `json:"skip_ratio"`

	// WarmupMode records how the runs were warmed; FFInstsPerSec is the
	// fast-forward throughput of the predictor run (0 for purely detailed
	// runs).
	WarmupMode    string  `json:"warmup_mode,omitempty"`
	FFInstsPerSec float64 `json:"ff_insts_per_sec,omitempty"`

	// Sampled-run statistics of the predictor run (all zero for full-detail
	// runs): the final unit count, the detailed instruction budget actually
	// measured, and the relative 95% CI half-width of the per-unit IPC
	// estimate.
	SampleUnits  int     `json:"sample_units,omitempty"`
	SampledInsts uint64  `json:"sampled_insts,omitempty"`
	IPCRelCI     float64 `json:"ipc_rel_ci,omitempty"`
}

// Records flattens comparison pairs into report rows.
func Records(pairs []Pair) []ReportRecord {
	out := make([]ReportRecord, len(pairs))
	for i, p := range pairs {
		cycles := float64(p.Pred.Stats.Cycles)
		if cycles == 0 {
			cycles = 1
		}
		mem := float64(p.Pred.Stats.Breakdown[ooo.CycMemL1] +
			p.Pred.Stats.Breakdown[ooo.CycMemL2] +
			p.Pred.Stats.Breakdown[ooo.CycMemLLC] +
			p.Pred.Stats.Breakdown[ooo.CycMemDRAM] +
			p.Pred.Stats.Breakdown[ooo.CycStoreFwd])
		out[i] = ReportRecord{
			Workload:  p.Base.Workload,
			Category:  string(p.Base.Category),
			Core:      p.Base.Core,
			Predictor: p.Pred.Predictor,
			BaseIPC:   p.Base.IPC,
			PredIPC:   p.Pred.IPC,
			Speedup:   p.Speedup(),
			Coverage:  p.Pred.Coverage,
			Accuracy:  p.Pred.Accuracy,
			VPFlushes: p.Pred.Stats.VPFlushes,
			Retiring:  float64(p.Pred.Stats.Breakdown[ooo.CycRetiring]) / cycles,
			MemStall:  mem / cycles,
			Frontend:  float64(p.Pred.Stats.Breakdown[ooo.CycFrontend]) / cycles,

			SkippedCycles: p.Pred.Stats.SkippedCycles,
			SkipRatio:     float64(p.Pred.Stats.SkippedCycles) / cycles,

			WarmupMode: string(p.Pred.WarmupMode),
		}
		if p.Pred.FFSeconds > 0 {
			out[i].FFInstsPerSec = float64(p.Pred.FFInsts) / p.Pred.FFSeconds
		}
		if sr := p.Pred.Sampling; sr != nil {
			out[i].SampleUnits = sr.PlannedUnits
			out[i].SampledInsts = sr.SampledInsts
			out[i].IPCRelCI = sr.IPC.RelCI
		}
	}
	return out
}

// WriteJSON emits records as an indented JSON array.
func WriteJSON(w io.Writer, recs []ReportRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteCSV emits records as a CSV table with a header row.
func WriteCSV(w io.Writer, recs []ReportRecord) error {
	if _, err := fmt.Fprintln(w,
		"workload,category,core,predictor,base_ipc,pred_ipc,speedup,coverage,accuracy,vp_flushes,retiring,mem_stall,frontend,skipped_cycles,skip_ratio,warmup_mode,ff_insts_per_sec,sample_units,sampled_insts,ipc_rel_ci"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%.4f,%.4f,%.4f,%d,%.4f,%s,%.0f,%d,%d,%.4f\n",
			r.Workload, r.Category, r.Core, r.Predictor, r.BaseIPC, r.PredIPC,
			r.Speedup, r.Coverage, r.Accuracy, r.VPFlushes,
			r.Retiring, r.MemStall, r.Frontend, r.SkippedCycles, r.SkipRatio,
			r.WarmupMode, r.FFInstsPerSec, r.SampleUnits, r.SampledInsts, r.IPCRelCI); err != nil {
			return err
		}
	}
	return nil
}
