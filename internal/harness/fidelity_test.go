package harness

import (
	"math"
	"os"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

// fidelityWorkloads mirrors the golden matrix's 13-entry slice of the
// study list (internal/ooo/golden_test.go): every builder template and
// category, with the DRAM-bound pointer chasers double-covered.
var fidelityWorkloads = []string{
	"omnetpp", "mcf", "gcc", "hmmer", "sjeng", "libquantum",
	"milc", "sphinx3", "leela", "lbm", "cassandra", "hadoop",
	"mcf-17",
}

// TestWarmingFidelityGate is the CI warming-fidelity differential: for
// each golden-matrix workload it measures the same region twice — once
// after detailed warmup, once after functional warmup — and gates the
// geomean relative IPC error under 1%. A second gate holds the stitched
// region-parallel result (K=4, functional warmup) within 2% of the
// monolithic run. Env-gated because it simulates the matrix four times;
// CI runs it with FVP_FIDELITY_GATE=1.
func TestWarmingFidelityGate(t *testing.T) {
	if os.Getenv("FVP_FIDELITY_GATE") == "" {
		t.Skip("set FVP_FIDELITY_GATE=1 to run the warming-fidelity differential (CI job)")
	}
	const warmup, measure = 50_000, 100_000

	warmLog := 0.0
	regionLog := 0.0
	for _, name := range fidelityWorkloads {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown fidelity workload %q", name)
		}
		det := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
			Options{WarmupInsts: warmup, MeasureInsts: measure})
		fun := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
			Options{WarmupInsts: warmup, MeasureInsts: measure, WarmupMode: WarmupFunctional})
		stitched := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
			Options{WarmupInsts: warmup, MeasureInsts: measure,
				WarmupMode: WarmupFunctional, Regions: 4})

		warmErr := RegionFidelity(fun, det)
		regionErr := RegionFidelity(stitched, det)
		t.Logf("%-12s detailed %.4f functional %.4f (%.2f%%) stitched K=4 %.4f (%.2f%%)",
			name, det.IPC, fun.IPC, warmErr*100, stitched.IPC, regionErr*100)
		warmLog += math.Log1p(warmErr)
		regionLog += math.Log1p(regionErr)
	}
	n := float64(len(fidelityWorkloads))
	warmGeo := math.Expm1(warmLog / n)
	regionGeo := math.Expm1(regionLog / n)
	t.Logf("geomean |ΔIPC|: functional warmup %.3f%%, stitched regions %.3f%%",
		warmGeo*100, regionGeo*100)
	if warmGeo > 0.01 {
		t.Errorf("functional-warmup fidelity %.3f%% exceeds the 1%% gate", warmGeo*100)
	}
	if regionGeo > 0.02 {
		t.Errorf("region-stitched fidelity %.3f%% exceeds the 2%% gate", regionGeo*100)
	}
}
