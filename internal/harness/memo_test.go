package harness

import (
	"reflect"
	"testing"

	"fvp/internal/core"
	"fvp/internal/ooo"
	"fvp/internal/vp"
)

func memoRunner() *Runner {
	r := NewRunner(Options{WarmupInsts: 5_000, MeasureInsts: 10_000})
	r.Workloads = r.Workloads[:3]
	return r
}

// TestCompareMemoized asserts the suite memo: a second Compare with the
// same (config, spec) — from the same or a different experiment — performs
// zero new suite runs and returns identical results.
func TestCompareMemoized(t *testing.T) {
	r := memoRunner()
	cfg := ooo.Skylake()

	first := r.Compare(cfg, SpecFVP)
	runs := r.SuiteRuns()
	if runs != 2 { // baseline + FVP
		t.Fatalf("first Compare did %d suite runs, want 2", runs)
	}
	second := r.Compare(cfg, SpecFVP)
	if got := r.SuiteRuns(); got != runs {
		t.Fatalf("repeat Compare did %d new suite runs, want 0", got-runs)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized Compare returned different pairs")
	}

	// The baseline is shared across specs on the same config...
	r.Compare(cfg, SpecMR8KB)
	if got := r.SuiteRuns(); got != runs+1 {
		t.Fatalf("new spec on cached config did %d new runs, want 1", got-runs)
	}
	// ...and a different core config misses on both arms.
	r.Compare(ooo.Skylake2X(), SpecFVP)
	if got := r.SuiteRuns(); got != runs+3 {
		t.Fatalf("new config did %d new runs, want 2", got-runs-1)
	}
	if r.Err() != nil {
		t.Fatalf("runner error: %v", r.Err())
	}
}

// TestCompareWithMemoized covers the closure-factory path used by the
// epoch and table-size sweeps: rows are keyed by label, so the same label
// memoizes and distinct labels do not collide.
func TestCompareWithMemoized(t *testing.T) {
	r := memoRunner()
	cfg := ooo.Skylake()
	pf := func(epoch uint64) PredFactory {
		return func() vp.Predictor {
			c := core.DefaultConfig()
			c.Epoch = epoch
			return core.New(c)
		}
	}

	a := r.CompareWith(cfg, "FVP-epoch-100000", pf(100_000))
	runs := r.SuiteRuns()
	b := r.CompareWith(cfg, "FVP-epoch-100000", pf(100_000))
	if got := r.SuiteRuns(); got != runs {
		t.Fatalf("repeat CompareWith did %d new suite runs, want 0", got-runs)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("memoized CompareWith returned different pairs")
	}
	r.CompareWith(cfg, "FVP-epoch-400000", pf(400_000))
	if got := r.SuiteRuns(); got != runs+1 {
		t.Fatalf("distinct label did %d new runs, want 1", got-runs)
	}
}

// TestMemoizedMatchesFresh guards against the memo changing results: a
// memo-hit Compare must equal what a fresh runner computes from scratch.
func TestMemoizedMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("fresh-vs-memo comparison skipped in -short mode")
	}
	cfg := ooo.Skylake()
	warm := memoRunner()
	warm.Compare(cfg, SpecFVP) // populate
	memod := warm.Compare(cfg, SpecFVP)

	fresh := memoRunner().Compare(cfg, SpecFVP)
	if !reflect.DeepEqual(memod, fresh) {
		t.Fatal("memoized pairs differ from a fresh runner's")
	}
}
