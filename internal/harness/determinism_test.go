package harness

// RunSuite must be a pure function of (workloads, config, predictor,
// options): the same suite run at any parallelism level produces identical
// Result slices in input order. This is the guard against shared-state leaks
// from the core-pooling/allocation-reuse work — a core returned dirty to the
// pool, or predictor state bleeding between concurrent runs, shows up here
// as a cross-parallelism diff. CI runs this under -race.

import (
	"reflect"
	"runtime"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/workload"
)

func determinismWorkloads(t *testing.T) []workload.Workload {
	t.Helper()
	names := []string{"omnetpp", "mcf", "gcc", "hmmer", "milc", "lbm", "sjeng", "sphinx3"}
	ws := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestRunSuiteDeterministicAcrossParallelism(t *testing.T) {
	ws := determinismWorkloads(t)
	opt := Options{
		WarmupInsts:  5_000,
		MeasureInsts: 20_000,
		ReuseCores:   true, // exercise the core pool under contention
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, spec := range []Spec{SpecNone, SpecFVP} {
		var pf PredFactory
		if spec != SpecNone {
			pf = Factory(spec)
		}
		var ref []Result
		for _, par := range levels {
			opt.Parallelism = par
			got := RunSuite(ws, ooo.Skylake(), pf, opt)
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				for i := range got {
					if !reflect.DeepEqual(got[i], ref[i]) {
						t.Errorf("%s: parallelism %d diverged from parallelism %d on %s:\n got: %+v\nwant: %+v",
							spec, par, levels[0], got[i].Workload, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestReuseCoresMatchesFresh pins the pooled path to the non-pooled one:
// core reuse is an allocation optimization and must never change results.
func TestReuseCoresMatchesFresh(t *testing.T) {
	ws := determinismWorkloads(t)[:4]
	base := Options{WarmupInsts: 5_000, MeasureInsts: 20_000, Parallelism: 2}

	fresh, pooled := base, base
	fresh.ReuseCores = false
	pooled.ReuseCores = true

	pf := Factory(SpecFVP)
	a := RunSuite(ws, ooo.Skylake(), pf, fresh)
	// Two pooled passes: the second is guaranteed to draw Reset cores.
	RunSuite(ws, ooo.Skylake(), pf, pooled)
	b := RunSuite(ws, ooo.Skylake(), pf, pooled)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("pooled RunSuite diverged from fresh-core RunSuite:\n got: %+v\nwant: %+v", b, a)
	}
}
