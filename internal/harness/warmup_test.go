package harness

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/telemetry"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

func TestOptionsValidate(t *testing.T) {
	ok := Options{WarmupInsts: 100, MeasureInsts: 100}
	cases := []struct {
		name  string
		opt   Options
		field string // "" = valid
	}{
		{"zero measure", Options{WarmupInsts: 100}, "MeasureInsts"},
		{"overflow", Options{WarmupInsts: math.MaxUint64, MeasureInsts: 2}, "WarmupInsts"},
		{"negative regions", Options{MeasureInsts: 100, Regions: -1}, "Regions"},
		{"negative workers", Options{MeasureInsts: 100, RegionWorkers: -1}, "RegionWorkers"},
		{"regions > measure", Options{MeasureInsts: 3, Regions: 4}, "Regions"},
		{"bad mode", Options{MeasureInsts: 100, WarmupMode: "fnctional"}, "WarmupMode"},
		{"observer with regions", Options{MeasureInsts: 100, Regions: 2,
			OnSample: func(telemetry.Sample) {}}, "Regions"},
		{"tracer with regions", Options{MeasureInsts: 100, Regions: 2,
			Tracer: &telemetry.PipeTrace{}}, "Regions"},
		{"valid default", ok, ""},
		{"valid functional", Options{MeasureInsts: 1, WarmupMode: WarmupFunctional}, ""},
		{"valid regions", Options{WarmupInsts: 10, MeasureInsts: 100, Regions: 4, RegionWorkers: 2}, ""},
		{"observer single region", Options{MeasureInsts: 100, Regions: 1,
			OnSample: func(telemetry.Sample) {}}, ""},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var ie *InvalidOptionsError
		if !errors.As(err, &ie) {
			t.Errorf("%s: got %v, want *InvalidOptionsError", c.name, err)
			continue
		}
		if ie.Field != c.field {
			t.Errorf("%s: field = %q, want %q", c.name, ie.Field, c.field)
		}
		if ie.Error() == "" {
			t.Errorf("%s: empty error text", c.name)
		}
	}
}

func TestRunOneRejectsInvalidOptions(t *testing.T) {
	w, _ := workload.ByName("hmmer")
	_, err := RunOneCtx(context.Background(), w, ooo.Skylake(), nil, Options{})
	var ie *InvalidOptionsError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *InvalidOptionsError", err)
	}
}

// Explicit WarmupDetailed must be the zero value's path, byte-identical.
func TestExplicitDetailedMatchesDefault(t *testing.T) {
	w, _ := workload.ByName("omnetpp")
	opt := Options{WarmupInsts: 5_000, MeasureInsts: 20_000}
	a := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	opt.WarmupMode = WarmupDetailed
	b := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("explicit detailed diverged from default:\n got: %+v\nwant: %+v", b, a)
	}
}

// Functional warmup must warm the requested instruction count, leave the
// measured region the same length, and land within a loose IPC band of the
// detailed-warmup run (the tight 1% geomean bound is the CI fidelity gate;
// this is the always-on sanity rail).
func TestFunctionalWarmupSmoke(t *testing.T) {
	for _, spec := range []Spec{SpecNone, SpecFVP, SpecMR8KB, SpecComp8KB} {
		var pf PredFactory
		if spec != SpecNone {
			pf = Factory(spec)
		}
		w, _ := workload.ByName("omnetpp")
		det := RunOne(w, ooo.Skylake(), pf, Options{WarmupInsts: 20_000, MeasureInsts: 50_000})
		fun := RunOne(w, ooo.Skylake(), pf, Options{
			WarmupInsts: 20_000, MeasureInsts: 50_000, WarmupMode: WarmupFunctional,
		})
		// The warmup window splits into a functional bulk and a short
		// detailed tail; FFInsts counts only the former.
		if want := 20_000 - detailTail(20_000); fun.FFInsts != want {
			t.Errorf("%s: FFInsts = %d, want %d", spec, fun.FFInsts, want)
		}
		if det.FFInsts != 0 {
			t.Errorf("%s: detailed run reported FFInsts = %d", spec, det.FFInsts)
		}
		// Retirement is width-granular, so the measured region may
		// overshoot its bound by up to a commit group.
		if fun.Stats.Retired < 50_000 || fun.Stats.Retired > 50_000+16 {
			t.Errorf("%s: measured %d insts, want ~50000", spec, fun.Stats.Retired)
		}
		if fun.IPC <= 0 {
			t.Fatalf("%s: functional-warmup IPC = %v", spec, fun.IPC)
		}
		if rel := math.Abs(fun.IPC-det.IPC) / det.IPC; rel > 0.10 {
			t.Errorf("%s: functional IPC %.4f vs detailed %.4f (%.1f%% off)",
				spec, fun.IPC, det.IPC, rel*100)
		}
	}
}

// Functional warmup must be deterministic like everything else.
func TestFunctionalWarmupDeterministic(t *testing.T) {
	w, _ := workload.ByName("mcf")
	opt := Options{WarmupInsts: 10_000, MeasureInsts: 30_000, WarmupMode: WarmupFunctional, ReuseCores: true}
	a := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	b := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	a.FFSeconds, b.FFSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("functional warmup nondeterministic:\n got: %+v\nwant: %+v", b, a)
	}
}

// stripWallClock zeroes the wall-time fields that legitimately vary
// between identical runs.
func stripWallClock(r Result) Result {
	r.FFSeconds = 0
	for i := range r.Regions {
		r.Regions[i].FFSeconds = 0
	}
	if r.Sampling != nil {
		sr := *r.Sampling
		sr.Units = append([]SampleUnitResult(nil), sr.Units...)
		for i := range sr.Units {
			sr.Units[i].FFSeconds = 0
		}
		r.Sampling = &sr
	}
	return r
}

// For a fixed region count, the stitched result must not depend on how
// many workers executed the regions.
func TestRegionsDeterministicAcrossWorkers(t *testing.T) {
	w, _ := workload.ByName("gcc")
	base := Options{
		WarmupInsts: 5_000, MeasureInsts: 40_000,
		Regions: 4, WarmupMode: WarmupFunctional, ReuseCores: true,
	}
	var ref Result
	for i, workers := range []int{1, 2, 4} {
		opt := base
		opt.RegionWorkers = workers
		got := stripWallClock(RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt))
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged from workers=1:\n got: %+v\nwant: %+v", workers, got, ref)
		}
	}
}

// Region structure: K regions, consecutive StartSeqs, measured lengths
// summing to MeasureInsts, stitched stats equal to the field-wise sum.
func TestRegionStitching(t *testing.T) {
	w, _ := workload.ByName("omnetpp")
	opt := Options{WarmupInsts: 5_000, MeasureInsts: 35_000, Regions: 3, ReuseCores: true}
	r := RunOne(w, ooo.Skylake(), Factory(SpecFVP), opt)
	if len(r.Regions) != 3 {
		t.Fatalf("got %d regions, want 3", len(r.Regions))
	}
	step := opt.MeasureInsts / 3
	var sum ooo.RunStats
	var mt vp.Meter
	for i, reg := range r.Regions {
		if reg.Index != i {
			t.Errorf("region %d: Index = %d", i, reg.Index)
		}
		if want := uint64(i) * step; reg.StartSeq != want {
			t.Errorf("region %d: StartSeq = %d, want %d", i, reg.StartSeq, want)
		}
		want := step
		if i == 2 {
			want = opt.MeasureInsts - 2*step
		}
		// Width-granular retirement may overshoot each region's bound by
		// up to a commit group.
		if reg.Stats.Retired < want || reg.Stats.Retired > want+16 {
			t.Errorf("region %d: measured %d insts, want ~%d", i, reg.Stats.Retired, want)
		}
		if reg.IPC <= 0 {
			t.Errorf("region %d: IPC = %v", i, reg.IPC)
		}
		sum = statsAdd(sum, reg.Stats)
		mt = meterAdd(mt, reg.Meter)
	}
	if !reflect.DeepEqual(sum, r.Stats) {
		t.Errorf("stitched stats != sum of regions:\n got: %+v\nwant: %+v", r.Stats, sum)
	}
	if !reflect.DeepEqual(mt, r.Meter) {
		t.Errorf("stitched meter != sum of regions:\n got: %+v\nwant: %+v", r.Meter, mt)
	}
	if r.Stats.Retired < opt.MeasureInsts || r.Stats.Retired > opt.MeasureInsts+3*16 {
		t.Errorf("stitched Retired = %d, want ~%d", r.Stats.Retired, opt.MeasureInsts)
	}
	if r.FFInsts == 0 {
		t.Error("region run reported no fast-forwarded instructions (checkpoint scan missing?)")
	}
}

// Region-stitched IPC must stay close to the monolithic run of the same
// spec — the fidelity number the CI gate tracks.
func TestRegionFidelityBand(t *testing.T) {
	w, _ := workload.ByName("hmmer")
	mono := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
		Options{WarmupInsts: 10_000, MeasureInsts: 60_000})
	stitched := RunOne(w, ooo.Skylake(), Factory(SpecFVP),
		Options{WarmupInsts: 10_000, MeasureInsts: 60_000, Regions: 4, WarmupMode: WarmupFunctional})
	if fid := RegionFidelity(stitched, mono); fid > 0.10 {
		t.Errorf("region fidelity %.2f%% off monolithic (stitched %.4f vs %.4f)",
			fid*100, stitched.IPC, mono.IPC)
	}
}

// The warmup benchmarks time the warmup work itself — core reset and
// source construction happen with the timer stopped, mirroring how the
// harness pools cores across runs.
const benchWarmInsts = 100_000

func benchWarmup(b *testing.B, warm func(c *ooo.Core)) {
	b.Helper()
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	ex := prog.NewExec(p)
	c := ooo.New(ooo.Skylake(), vp.None{}, ex, p.BuildMemory())
	b.SetBytes(benchWarmInsts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ex = prog.NewExec(p)
		c.Reset(vp.None{}, ex, p.BuildMemory())
		b.StartTimer()
		warm(c)
	}
}

func BenchmarkWarmupFunctional(b *testing.B) {
	benchWarmup(b, func(c *ooo.Core) { c.WarmFunctional(benchWarmInsts) })
}

func BenchmarkWarmupDetailed(b *testing.B) {
	benchWarmup(b, func(c *ooo.Core) { c.Run(benchWarmInsts) })
}
