// Package trace provides a compact binary encoding of dynamic micro-op
// streams, so workload traces can be dumped once (cmd/tracegen) and
// replayed into the timing model without re-executing the functional
// simulator. The format is a varint-delta encoding: sequence numbers and
// PCs are strongly local, so traces compress to a few bytes per
// instruction.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fvp/internal/isa"
)

// magic identifies the stream format; bump version on layout changes.
var magic = [4]byte{'F', 'V', 'P', '1'}

// flag bits of the per-record header.
const (
	fHasDest uint8 = 1 << iota
	fHasMem
	fTaken
	fHasTarget
)

// Writer encodes dynamic instructions to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	n      uint64
	closed bool
}

// NewWriter starts a stream on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func putUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append encodes one instruction. Instructions must be appended in
// sequence order.
func (w *Writer) Append(d *isa.DynInst) error {
	if w.closed {
		return errors.New("trace: writer closed")
	}
	var flags uint8
	if d.HasDest() {
		flags |= fHasDest
	}
	if d.Op.IsMem() {
		flags |= fHasMem
	}
	if d.Taken {
		flags |= fTaken
	}
	if d.Op.IsBranch() {
		flags |= fHasTarget
	}
	if err := w.w.WriteByte(uint8(d.Op)); err != nil {
		return err
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.w.WriteByte(uint8(d.Dst)); err != nil {
		return err
	}
	if err := w.w.WriteByte(uint8(d.Src1)); err != nil {
		return err
	}
	if err := w.w.WriteByte(uint8(d.Src2)); err != nil {
		return err
	}
	if err := putUvarint(w.w, zigzag(int64(d.PC)-int64(w.lastPC))); err != nil {
		return err
	}
	w.lastPC = d.PC
	if flags&fHasMem != 0 {
		if err := putUvarint(w.w, d.Addr); err != nil {
			return err
		}
	}
	if flags&(fHasDest|fHasMem) != 0 {
		if err := putUvarint(w.w, d.Value); err != nil {
			return err
		}
	}
	if flags&fHasTarget != 0 {
		if err := putUvarint(w.w, zigzag(int64(d.Target)-int64(d.PC))); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// Count returns the number of instructions appended.
func (w *Writer) Count() uint64 { return w.n }

// Flush completes the stream.
func (w *Writer) Flush() error {
	w.closed = true
	return w.w.Flush()
}

// Reader decodes a stream produced by Writer. It implements the core's
// InstSource.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	seq    uint64
	err    error
}

// NewReader validates the header and positions at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	return &Reader{r: br}, nil
}

// Err returns the terminal error, if any (nil after clean EOF).
func (r *Reader) Err() error { return r.err }

// Next decodes the next instruction into d; false at EOF or error.
func (r *Reader) Next(d *isa.DynInst) bool {
	if r.err != nil {
		return false
	}
	op, err := r.r.ReadByte()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			r.err = err
		}
		return false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	var regs [3]byte
	for i := range regs {
		regs[i], err = r.r.ReadByte()
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
	}
	*d = isa.DynInst{
		Seq:  r.seq,
		Op:   isa.Op(op),
		Dst:  isa.Reg(regs[0]),
		Src1: isa.Reg(regs[1]),
		Src2: isa.Reg(regs[2]),
	}
	dpc, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated pc: %w", err)
		return false
	}
	d.PC = uint64(int64(r.lastPC) + unzigzag(dpc))
	r.lastPC = d.PC
	if flags&fHasMem != 0 {
		if d.Addr, err = binary.ReadUvarint(r.r); err != nil {
			r.err = fmt.Errorf("trace: truncated addr: %w", err)
			return false
		}
		d.MemSize = 8
	}
	if flags&(fHasDest|fHasMem) != 0 {
		if d.Value, err = binary.ReadUvarint(r.r); err != nil {
			r.err = fmt.Errorf("trace: truncated value: %w", err)
			return false
		}
	}
	d.Taken = flags&fTaken != 0
	if flags&fHasTarget != 0 {
		dt, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated target: %w", err)
			return false
		}
		d.Target = uint64(int64(d.PC) + unzigzag(dt))
	}
	r.seq++
	return true
}
