package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fvp/internal/isa"
)

func sample() []isa.DynInst {
	return []isa.DynInst{
		{Seq: 0, PC: 0x400000, Op: isa.OpALU, Dst: 1, Src1: 2, Value: 42},
		{Seq: 1, PC: 0x400004, Op: isa.OpLoad, Dst: 3, Src1: 1, Addr: 0x8000, Value: 7, MemSize: 8},
		{Seq: 2, PC: 0x400008, Op: isa.OpStore, Src1: 1, Src2: 3, Addr: 0x8008, Value: 7, MemSize: 8},
		{Seq: 3, PC: 0x40000C, Op: isa.OpBranch, Src1: 3, Taken: true, Target: 0x400000},
		{Seq: 4, PC: 0x400000, Op: isa.OpBranch, Src1: 3, Taken: false, Target: 0x400010},
		{Seq: 5, PC: 0x400004, Op: isa.OpNop},
	}
}

func roundTrip(t *testing.T, insts []isa.DynInst) []isa.DynInst {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Append(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []isa.DynInst
	var d isa.DynInst
	for r.Next(&d) {
		out = append(out, d)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("decoded %d of %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.PC != b.PC || a.Op != b.Op || a.Dst != b.Dst || a.Src1 != b.Src1 ||
			a.Src2 != b.Src2 || a.Taken != b.Taken || a.Seq != b.Seq {
			t.Errorf("record %d: got %+v want %+v", i, b, a)
		}
		if a.Op.IsMem() && (a.Addr != b.Addr || a.Value != b.Value) {
			t.Errorf("record %d memory fields: got %+v want %+v", i, b, a)
		}
		if a.HasDest() && a.Value != b.Value {
			t.Errorf("record %d value: got %d want %d", i, b.Value, a.Value)
		}
		if a.Op.IsBranch() && a.Target != b.Target {
			t.Errorf("record %d target: got %#x want %#x", i, b.Target, a.Target)
		}
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := sample()
	for i := range in {
		w.Append(&in[i])
	}
	if w.Count() != uint64(len(in)) {
		t.Errorf("count = %d", w.Count())
	}
}

func TestAppendAfterFlushFails(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	d := sample()[0]
	if err := w.Append(&d); err == nil {
		t.Error("append after flush must fail")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic must be rejected")
	}
	if _, err := NewReader(strings.NewReader("FV")); err == nil {
		t.Error("short header must be rejected")
	}
}

func TestTruncatedStreamReportsError(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := sample()
	for i := range in {
		w.Append(&in[i])
	}
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var d isa.DynInst
	for r.Next(&d) {
	}
	if r.Err() == nil {
		t.Error("truncated stream must surface an error")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag roundtrip %d -> %d", v, got)
		}
	}
}

// Property: arbitrary well-formed instructions roundtrip.
func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint32, ops []uint8, vals []uint64) bool {
		n := len(pcs)
		if len(ops) < n {
			n = len(ops)
		}
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		in := make([]isa.DynInst, n)
		for i := 0; i < n; i++ {
			op := isa.Op(ops[i] % uint8(isa.NumOps))
			in[i] = isa.DynInst{
				Seq: uint64(i), PC: uint64(pcs[i]) &^ 3, Op: op,
				Dst: isa.Reg(vals[i] % 32), Src1: isa.Reg(vals[i] >> 5 % 32),
				Value: vals[i],
			}
			if op.IsMem() {
				in[i].Addr = vals[i] &^ 7
				in[i].MemSize = 8
			}
			if op.IsBranch() {
				in[i].Taken = vals[i]&1 == 1
				in[i].Target = uint64(pcs[i]+4) &^ 3
			}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for i := range in {
			if w.Append(&in[i]) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var d isa.DynInst
		for i := 0; i < n; i++ {
			if !r.Next(&d) {
				return false
			}
			if d.PC != in[i].PC || d.Op != in[i].Op || d.Taken != in[i].Taken {
				return false
			}
		}
		return !r.Next(&d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompactness(t *testing.T) {
	// The varint-delta format should average well under 16 bytes per
	// instruction on looping code.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := sample()
	for i := 0; i < 1000; i++ {
		for j := range in {
			w.Append(&in[j])
		}
	}
	w.Flush()
	perInst := float64(buf.Len()) / 6000
	if perInst > 16 {
		t.Errorf("%.1f bytes per instruction — encoding too fat", perInst)
	}
}
