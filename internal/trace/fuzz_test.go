package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fvp/internal/isa"
)

// decodeFuzzInsts maps arbitrary fuzz bytes onto a dynamic instruction
// stream: twelve bytes per record, spread across every field the format
// encodes, with Seq assigned in order (the writer requires it).
func decodeFuzzInsts(data []byte) []isa.DynInst {
	const bytesPerInst = 12
	n := len(data) / bytesPerInst
	if n > 512 {
		n = 512
	}
	out := make([]isa.DynInst, 0, n)
	pc := uint64(0x40_0000)
	for i := 0; i < n; i++ {
		rec := data[i*bytesPerInst : (i+1)*bytesPerInst]
		d := isa.DynInst{
			Seq:  uint64(i),
			Op:   isa.Op(rec[0] % uint8(isa.NumOps)),
			Dst:  isa.Reg(rec[1] % isa.NumArchRegs),
			Src1: isa.Reg(rec[2] % isa.NumArchRegs),
			Src2: isa.Reg(rec[3] % isa.NumArchRegs),
		}
		// PCs wander both directions to exercise the zigzag delta.
		pc += uint64(int64(int8(rec[4]))) * isa.InstBytes
		d.PC = pc
		d.Taken = rec[5]&1 != 0
		if d.Op.IsMem() {
			d.Addr = binary.LittleEndian.Uint64(rec[4:12]) &^ 7
			d.MemSize = 8
		}
		if d.HasDest() || d.Op.IsMem() {
			d.Value = binary.LittleEndian.Uint64(rec[4:12]) >> 3
		}
		if d.Op.IsBranch() {
			d.Target = pc + uint64(int64(int8(rec[6])))*isa.InstBytes
		}
		out = append(out, d)
	}
	return out
}

// normalize maps an instruction onto the subset of fields the format
// preserves, so a round-tripped record can be compared exactly: Value is
// only carried for dest-writing or memory ops, Addr/MemSize only for memory
// ops, Target only for control flow.
func normalize(d isa.DynInst) isa.DynInst {
	if !d.HasDest() && !d.Op.IsMem() {
		d.Value = 0
	}
	if !d.Op.IsMem() {
		d.Addr = 0
		d.MemSize = 0
	}
	if !d.Op.IsBranch() {
		d.Target = 0
	}
	return d
}

// FuzzTraceRoundTrip drives arbitrary instruction streams through the
// varint-delta codec: every encodable field must survive encode→decode
// bit-exactly, and the reader must consume exactly the stream the writer
// produced (clean EOF, no error, no panic).
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 1, 2, 0, 255, 1, 7, 0, 0, 0, 0, 0})                                      // load, negative pc delta
	f.Add([]byte{7, 0, 1, 2, 8, 0, 3, 0, 0, 0, 0, 0})                                        // store
	f.Add([]byte{8, 0, 4, 0, 1, 1, 250, 0, 0, 0, 0, 0, 10, 0, 0, 0, 2, 0, 1, 0, 0, 0, 0, 0}) // branch taken + call
	f.Add([]byte{12, 0, 9, 0, 100, 0, 200, 255, 255, 255, 255, 255})                         // indirect, huge operand
	f.Fuzz(func(t *testing.T, data []byte) {
		insts := decodeFuzzInsts(data)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for i := range insts {
			if err := w.Append(&insts[i]); err != nil {
				t.Fatalf("Append inst %d: %v", i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if w.Count() != uint64(len(insts)) {
			t.Fatalf("writer count %d, appended %d", w.Count(), len(insts))
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		var got isa.DynInst
		for i := range insts {
			if !r.Next(&got) {
				t.Fatalf("reader stopped at record %d of %d (err: %v)", i, len(insts), r.Err())
			}
			want := normalize(insts[i])
			if got != want {
				t.Fatalf("record %d mismatch:\n got: %+v\nwant: %+v", i, got, want)
			}
		}
		if r.Next(&got) {
			t.Fatalf("reader produced record beyond the %d written", len(insts))
		}
		if err := r.Err(); err != nil {
			t.Fatalf("reader error after clean stream: %v", err)
		}
	})
}

// FuzzTraceReader hands both decoders raw attacker-controlled bytes: each
// must reject or truncate without panicking with sticky errors, and — since
// MemReader is the hand-unrolled hot-path twin of Reader — the two must
// decode the identical prefix of any stream identically, diverging only at
// the point either reports an error.
func FuzzTraceReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FVP1"))
	f.Add([]byte("FVP1\x06\x02\x01\x02\x00\x10\x20\x30"))
	f.Add([]byte("XXXX\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, rErr := NewReader(bytes.NewReader(data))
		mr, mrErr := NewMemReader(append([]byte(nil), data...), false)
		if (rErr == nil) != (mrErr == nil) {
			t.Fatalf("header acceptance diverged: Reader %v, MemReader %v", rErr, mrErr)
		}
		if rErr != nil {
			return // malformed header rejected cleanly by both
		}
		var d, md isa.DynInst
		for i := 0; i < 4096; i++ {
			ok, mok := r.Next(&d), mr.Next(&md)
			if ok != mok {
				t.Fatalf("record %d: Reader ok=%v, MemReader ok=%v (errs %v / %v)",
					i, ok, mok, r.Err(), mr.Err())
			}
			if !ok {
				break
			}
			if d != md {
				t.Fatalf("record %d diverged:\n Reader:    %+v\n MemReader: %+v", i, d, md)
			}
		}
		if (r.Err() == nil) != (mr.Err() == nil) {
			t.Fatalf("terminal state diverged: Reader %v, MemReader %v", r.Err(), mr.Err())
		}
		if r.Err() != nil && r.Next(&d) {
			t.Fatal("reader returned a record after a terminal error")
		}
		if mr.Err() != nil && mr.Next(&md) {
			t.Fatal("mem reader returned a record after a terminal error")
		}
	})
}
