package trace

import (
	"bytes"
	"testing"

	"fvp/internal/isa"
)

// encode packs insts into an in-memory stream (header included).
func encode(t *testing.T, insts []isa.DynInst) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Append(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMemReaderMatchesReader pins the contract mem.go documents: MemReader
// and the io.Reader-based Reader decode the identical stream into identical
// instructions, record for record and field for field.
func TestMemReaderMatchesReader(t *testing.T) {
	data := encode(t, sample())

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMemReader(data, false)
	if err != nil {
		t.Fatal(err)
	}
	var a, b isa.DynInst
	for i := 0; ; i++ {
		okA, okB := r.Next(&a), mr.Next(&b)
		if okA != okB {
			t.Fatalf("record %d: Reader ok=%v, MemReader ok=%v", i, okA, okB)
		}
		if !okA {
			break
		}
		if a != b {
			t.Errorf("record %d: Reader %+v, MemReader %+v", i, a, b)
		}
	}
	if r.Err() != nil || mr.Err() != nil {
		t.Fatalf("errors after EOF: Reader %v, MemReader %v", r.Err(), mr.Err())
	}
}

// TestMemReaderLoop checks the splice a looping reader performs at the end
// of the buffer: sequence numbers keep counting monotonically across the
// rewind while every other field repeats the recorded window exactly.
func TestMemReaderLoop(t *testing.T) {
	in := sample()
	mr, err := NewMemReader(encode(t, in), true)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	var d isa.DynInst
	for i := 0; i < rounds*len(in); i++ {
		if !mr.Next(&d) {
			t.Fatalf("looping reader ran dry at record %d: %v", i, mr.Err())
		}
		if d.Seq != uint64(i) {
			t.Fatalf("record %d: seq %d, want monotonic %d", i, d.Seq, i)
		}
		want := in[i%len(in)]
		want.Seq = uint64(i)
		if d != want {
			t.Errorf("record %d: got %+v want %+v", i, d, want)
		}
	}
}

// TestMemReaderEmptyLoopRejected: a header-only trace cannot drive a
// looping reader (it would spin forever producing nothing).
func TestMemReaderEmptyLoopRejected(t *testing.T) {
	data := encode(t, nil)
	if _, err := NewMemReader(data, true); err == nil {
		t.Error("looping over an empty trace must be rejected")
	}
	if _, err := NewMemReader(data, false); err != nil {
		t.Errorf("non-looping empty trace: %v", err)
	}
}

// TestRecordStopsAtSourceEnd: Record reports a short count when the source
// runs dry, and the recorded prefix decodes back to the source's output.
func TestRecordStopsAtSourceEnd(t *testing.T) {
	in := sample()
	src := &sliceSource{insts: in}
	data, n, err := Record(src, uint64(len(in))+100)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(in)) {
		t.Fatalf("recorded %d, want %d", n, len(in))
	}
	mr, err := NewMemReader(data, false)
	if err != nil {
		t.Fatal(err)
	}
	var d isa.DynInst
	for i := 0; mr.Next(&d); i++ {
		want := in[i]
		want.Seq = uint64(i) // readers assign seq themselves
		if d != want {
			t.Errorf("record %d: got %+v want %+v", i, d, want)
		}
	}
	if mr.Err() != nil {
		t.Fatal(mr.Err())
	}
}

// sliceSource replays a fixed slice through the generator interface.
type sliceSource struct {
	insts []isa.DynInst
	pos   int
}

func (s *sliceSource) Next(d *isa.DynInst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*d = s.insts[s.pos]
	s.pos++
	return true
}
