package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"fvp/internal/isa"
)

// MemReader decodes a packed trace held entirely in memory. It is the
// hot-path replay source: Next is allocation-free, does no I/O and no
// bufio indirection — decoding a record is a handful of byte loads and
// varint folds, an order of magnitude cheaper than generating the same
// micro-op functionally. With loop set, the reader rewinds at the end of
// the buffer and keeps the sequence numbering monotonic, so a finite
// recorded window can drive an arbitrarily long benchmark run the way the
// infinite functional generator does.
//
// MemReader and Reader decode the identical stream identically
// (TestMemReaderMatchesReader); the core's replay-equivalence and the
// golden replay matrix pin the timing model to bit-identical results on
// either source.
type MemReader struct {
	data []byte // record bytes (header stripped)
	pos  int
	last uint64 // previous record's PC (delta base)
	seq  uint64
	loop bool
	err  error
}

// NewMemReader validates the stream header and positions at the first
// record. The buffer is aliased, not copied.
func NewMemReader(data []byte, loop bool) (*MemReader, error) {
	if len(data) < len(magic) || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic in %d-byte buffer", len(data))
	}
	if loop && len(data) == len(magic) {
		return nil, fmt.Errorf("trace: cannot loop an empty trace")
	}
	return &MemReader{data: data[len(magic):], loop: loop}, nil
}

// Record encodes up to n instructions from src into a packed in-memory
// trace (header included) and returns the buffer and the count actually
// recorded (short only when src runs dry). It is the one-step path from a
// functional generator to a replayable buffer: record a steady-state
// window once, then drive arbitrarily long benchmark runs from a looping
// MemReader over it.
func Record(src interface{ Next(*isa.DynInst) bool }, n uint64) ([]byte, uint64, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		return nil, 0, err
	}
	var d isa.DynInst
	var i uint64
	for i = 0; i < n; i++ {
		if !src.Next(&d) {
			break
		}
		if err := w.Append(&d); err != nil {
			return nil, i, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, i, err
	}
	return buf.Bytes(), i, nil
}

// LoadFile reads a packed trace file into memory and returns a MemReader
// over it.
func LoadFile(path string, loop bool) (*MemReader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewMemReader(data, loop)
}

// Err returns the terminal error, if any (nil after clean EOF).
func (r *MemReader) Err() error { return r.err }

// corrupt records a decode failure and terminates the stream.
func (r *MemReader) corrupt(what string) bool {
	r.err = fmt.Errorf("trace: truncated %s at offset %d", what, r.pos)
	return false
}

// uvarintAt decodes a varint from data at pos without the slice-header
// construction and call overhead of binary.Uvarint — this is the inner
// loop of hot-path replay, where most operands (PC deltas, small values)
// fit one byte and take the early return. Semantics match binary.Uvarint
// exactly: ok is false on truncation and on 64-bit overflow.
func uvarintAt(data []byte, pos int) (v uint64, next int, ok bool) {
	if pos < len(data) {
		if b := data[pos]; b < 0x80 {
			return uint64(b), pos + 1, true
		}
	}
	var s uint
	for i := pos; i < len(data); i++ {
		b := data[i]
		if i-pos == binary.MaxVarintLen64 {
			return 0, pos, false // overflow
		}
		if b < 0x80 {
			if i-pos == binary.MaxVarintLen64-1 && b > 1 {
				return 0, pos, false // overflow
			}
			return v | uint64(b)<<s, i + 1, true
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, pos, false // truncated
}

// Next decodes the next instruction into d; false at EOF (non-looping) or
// on a corrupt record.
func (r *MemReader) Next(d *isa.DynInst) bool {
	if r.err != nil {
		return false
	}
	data := r.data
	pos := r.pos
	if pos >= len(data) {
		if !r.loop || len(data) == 0 {
			return false
		}
		// Rewind: PC deltas restart from the same base the recording
		// started at; seq keeps counting so the stream stays in program
		// order across the splice.
		pos = 0
		r.last = 0
	}
	if pos+5 > len(data) {
		r.pos = pos
		return r.corrupt("record")
	}
	op := data[pos]
	flags := data[pos+1]
	*d = isa.DynInst{
		Seq:  r.seq,
		Op:   isa.Op(op),
		Dst:  isa.Reg(data[pos+2]),
		Src1: isa.Reg(data[pos+3]),
		Src2: isa.Reg(data[pos+4]),
	}
	pos += 5
	dpc, pos, ok := uvarintAt(data, pos)
	if !ok {
		r.pos = pos
		return r.corrupt("pc")
	}
	d.PC = uint64(int64(r.last) + unzigzag(dpc))
	r.last = d.PC
	if flags&fHasMem != 0 {
		if d.Addr, pos, ok = uvarintAt(data, pos); !ok {
			r.pos = pos
			return r.corrupt("addr")
		}
		d.MemSize = 8
	}
	if flags&(fHasDest|fHasMem) != 0 {
		if d.Value, pos, ok = uvarintAt(data, pos); !ok {
			r.pos = pos
			return r.corrupt("value")
		}
	}
	d.Taken = flags&fTaken != 0
	if flags&fHasTarget != 0 {
		var dt uint64
		if dt, pos, ok = uvarintAt(data, pos); !ok {
			r.pos = pos
			return r.corrupt("target")
		}
		d.Target = uint64(int64(d.PC) + unzigzag(dt))
	}
	r.pos = pos
	r.seq++
	return true
}
