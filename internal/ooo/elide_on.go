//go:build !ooo_noskip

package ooo

// elisionBuild selects the idle-cycle elision fast path (elide.go) at
// build time. Build with -tags ooo_noskip to force the per-cycle ticking
// loop for differential testing.
const elisionBuild = true
