package ooo_test

// Layout-equivalence matrix for the packed-trace replay path: every golden
// case is re-run with the instruction stream recorded once into the binary
// trace format (internal/trace) and replayed from memory, then compared
// against the SAME testdata/golden_stats.json snapshot the generator-driven
// matrix pins. Passing means two things at once: the trace codec round-trips
// every field the timing model reads, and the SoA core is source-agnostic —
// bit-identical stats whether micro-ops arrive from the functional generator
// or from a MemReader. This is the guarantee that lets fvpbench and the
// cycle-loop benchmarks use replay as their default input.

import (
	"reflect"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/trace"
	"fvp/internal/workload"
)

// replayGoldenSlack is how far past the retirement budget each recording
// extends: fetch runs ahead of retirement by at most the ROB plus the fetch
// buffer (a few hundred micro-ops), so the replayed source must never run
// dry before the run's goldenInsts-th retirement.
const replayGoldenSlack = 8_192

func TestGoldenStatsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay matrix skipped in -short mode")
	}
	want := loadGolden(t)
	for _, name := range goldenWorkloads {
		wl, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown golden workload %q", name)
		}
		const recInsts = goldenInsts + replayGoldenSlack
		data, n, err := trace.Record(prog.NewExec(wl.Build()), recInsts)
		if err != nil || n < recInsts {
			t.Fatalf("record %s: got %d/%d insts, err %v", name, n, recInsts, err)
		}
		for _, cfg := range goldenCores() {
			for _, pred := range goldenPredictors {
				wl, cfg, pred, data := wl, cfg, pred, data
				key := goldenKey(wl.Name, cfg.Name, pred)
				t.Run(key, func(t *testing.T) {
					t.Parallel()
					src, err := trace.NewMemReader(data, false)
					if err != nil {
						t.Fatal(err)
					}
					p := wl.Build()
					c := ooo.New(cfg, goldenPredictor(pred), src, p.BuildMemory())
					c.WarmCaches(p.WarmRanges)
					st := c.Run(goldenInsts)
					st.SkippedCycles = 0
					st.SkipEvents = 0
					exp, ok := want[key]
					if !ok {
						t.Fatalf("no golden record for %s (run with -update)", key)
					}
					if !reflect.DeepEqual(st, exp.Stats) {
						t.Errorf("replayed RunStats diverged from golden:\n got: %+v\nwant: %+v", st, exp.Stats)
					}
					if c.Meter != exp.Meter {
						t.Errorf("replayed vp.Meter diverged from golden:\n got: %+v\nwant: %+v", c.Meter, exp.Meter)
					}
				})
			}
		}
	}
}
