package ooo

import (
	"testing"

	"fvp/internal/core"
	"fvp/internal/isa"
	"fvp/internal/prog"
	"fvp/internal/workload"
)

func TestConservativeDisambiguationNoViolations(t *testing.T) {
	cfg := Skylake()
	cfg.ConservativeMemDisambiguation = true
	w, _ := workload.ByName("cassandra") // store/load heavy
	p := w.Build()
	c := New(cfg, nil, prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st := c.Run(60_000)
	if st.MemOrderFlushes != 0 {
		t.Errorf("conservative mode must never violate ordering (flushes=%d)",
			st.MemOrderFlushes)
	}
	if st.Forwards == 0 {
		t.Error("forwarding must still work in conservative mode")
	}

	// Conservative ordering cannot be faster than aggressive speculation.
	c2 := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	c2.WarmCaches(p.WarmRanges)
	st2 := c2.Run(60_000)
	if st.IPC() > st2.IPC()*1.02 {
		t.Errorf("conservative IPC %.3f beats aggressive %.3f", st.IPC(), st2.IPC())
	}
}

func TestCycleBreakdownSumsToCycles(t *testing.T) {
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	c := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st := c.Run(50_000)
	var sum uint64
	for _, v := range st.Breakdown {
		sum += v
	}
	if sum != st.Cycles {
		t.Errorf("breakdown sums to %d, cycles %d", sum, st.Cycles)
	}
	if st.Breakdown[CycRetiring] == 0 {
		t.Error("no retiring cycles recorded")
	}
	if st.Breakdown[CycMemDRAM] == 0 {
		t.Error("a DRAM-bound kernel must show mem-DRAM stalls")
	}
}

func TestCallRetThroughCore(t *testing.T) {
	b := prog.NewBuilder("callret")
	b.MovI(1, 0)
	b.Jump("main")
	b.Label("fn")
	b.AddI(1, 1, 1)
	b.Ret()
	b.Label("main")
	b.Label("loop")
	b.Call("fn")
	b.Call("fn")
	b.AddI(2, 2, 1)
	b.Jump("loop")
	p := b.MustBuild()
	c := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	st := c.Run(20_000)
	// Call/return pairs are RAS-predicted: mispredicts must be rare.
	if st.BranchMispredicts > st.Retired/100 {
		t.Errorf("call/ret mispredicts %d of %d retired", st.BranchMispredicts, st.Retired)
	}
	if st.IPC() < 1.0 {
		t.Errorf("call/ret loop IPC %.2f", st.IPC())
	}
}

func TestIndirectJumpPredictedByITTAGE(t *testing.T) {
	// An indirect jump alternating between two targets, correlated with
	// a preceding conditional branch pattern.
	b := prog.NewBuilder("ijmp")
	b.MovI(3, 0)
	b.Label("loop")
	b.AddI(3, 3, 1)
	b.And(4, 3, 1) // parity
	// Patterned conditional: gives ITTAGE history to correlate with.
	b.BEZ(4, "even")
	b.MovI(5, 8) // target index of "odd" label... computed below
	b.Jump("dispatch")
	b.Label("even")
	b.MovI(5, 11) // target index of "even2"
	b.Label("dispatch")
	b.JumpReg(5)
	b.Label("odd2") // index 8
	b.Nop()
	b.Nop()
	b.Label("even2") // index 11 (odd2 + nop + nop -> 9,10, so even2 = 11)
	b.Jump("loop")
	p := b.MustBuild()
	if idx, _ := p.IndexOf(p.PCOf(8)); idx != 8 {
		t.Fatal("layout assumption broken")
	}
	c := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	st := c.Run(30_000)
	rate := float64(st.BranchMispredicts) / float64(st.Retired)
	if rate > 0.05 {
		t.Errorf("correlated indirect jump mispredict rate %.3f", rate)
	}
}

func TestMRLinkedPredictionEndToEnd(t *testing.T) {
	// The cassandra kernel exercises the full MR path: after enough
	// iterations FVP renames the spill reload through the Value File.
	w, _ := workload.ByName("cassandra")
	p := w.Build()
	f := core.New(core.DefaultConfig())
	c := New(Skylake(), f, prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	c.Run(400_000)
	if f.MRPredictions == 0 {
		t.Fatal("no MR predictions on a spill-heavy server kernel")
	}
	if acc := c.Meter.Accuracy(); acc < 0.98 {
		t.Errorf("MR-heavy accuracy %.3f below the paper's ≥99%% regime", acc)
	}
}

func TestOraclePolicyEndToEnd(t *testing.T) {
	w, _ := workload.ByName("omnetpp")
	p := w.Build()
	cfg := core.DefaultConfig()
	cfg.Policy = core.CritOracle
	f := core.New(cfg)
	c := New(Skylake(), f, prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	c.Run(400_000)
	if f.RootsSeen == 0 {
		t.Error("oracle policy found no roots — the DDG walk never marked PCs")
	}
	if c.Meter.PredictedLoads == 0 {
		t.Error("oracle policy produced no predictions")
	}
}

func TestIQLimitThrottlesMixedWork(t *testing.T) {
	// Serial slow loads mixed with independent ALU work: a big IQ lets
	// the ALUs drain around the waiting loads; a tiny IQ clogs.
	mk := func(iq int) float64 {
		cfg := Skylake()
		cfg.IQSize = iq
		// Independent DRAM loads, each with a dependent ALU: the ALUs
		// park in the IQ for the whole memory latency, so a tiny IQ
		// strangles the load MLP.
		insts := make([]isa.DynInst, 24_000)
		for i := range insts {
			r := isa.Reg(1 + (i/2)%8)
			if i%2 == 0 {
				insts[i] = isa.DynInst{
					Seq: uint64(i), PC: 0x400000, Op: isa.OpLoad,
					Dst: r, Src1: 9,
					Addr: uint64(0x40000000 + i*8256), Value: 1, MemSize: 8, // odd line stride: spreads DRAM banks
				}
			} else {
				insts[i] = isa.DynInst{
					Seq: uint64(i), PC: 0x400004,
					Op: isa.OpALU, Dst: isa.Reg(20 + i%4), Src1: r, Value: uint64(i),
				}
			}
		}
		c := New(cfg, nil, &sliceSource{insts: insts}, nil)
		st := c.Run(24_000)
		return st.IPC()
	}
	if small, big := mk(4), mk(97); small >= big*0.9 {
		t.Errorf("IQ=4 IPC %.3f not well below IQ=97 IPC %.3f", small, big)
	}
}

func TestTinyLQThrottlesLoads(t *testing.T) {
	mk := func(lq int) float64 {
		cfg := Skylake()
		cfg.LQSize = lq
		insts := make([]isa.DynInst, 20_000)
		for i := range insts {
			insts[i] = isa.DynInst{
				Seq: uint64(i), PC: 0x400000 + uint64(i%8)*4, Op: isa.OpLoad,
				Dst: isa.Reg(1 + i%4), Src1: 9,
				Addr: uint64(0x40000000 + i*64), Value: 1, MemSize: 8,
			}
		}
		c := New(cfg, nil, &sliceSource{insts: insts}, nil)
		st := c.Run(20_000)
		return st.IPC()
	}
	if small, big := mk(4), mk(64); small >= big {
		t.Errorf("LQ=4 IPC %.3f not below LQ=64 IPC %.3f", small, big)
	}
}

func TestICachePressureSlowsFetch(t *testing.T) {
	// A huge code footprint (sequential walk through many lines, restarted)
	// must show I-cache misses and frontend stalls.
	b := prog.NewBuilder("bigcode")
	for i := 0; i < 40_000; i++ {
		b.AddI(isa.Reg(1+i%8), isa.Reg(1+i%8), 1)
	}
	b.Halt()
	p := b.MustBuild()
	c := New(Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	st := c.Run(120_000)
	h := c.Hierarchy()
	if h.L1I.Stats.Misses == 0 {
		t.Fatal("160 KB of code must miss a 64 KB L1I")
	}
	if st.IPC() > 3.5 {
		t.Errorf("I-cache-bound code IPC %.2f — fetch stalls not charged", st.IPC())
	}
}
