package ooo

import "testing"

func TestSkylakeTableII(t *testing.T) {
	c := Skylake()
	// The headline Table-II numbers, asserted so config drift is caught.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch width", c.FetchWidth, 4},
		{"ROB", c.ROBSize, 224},
		{"IQ", c.IQSize, 97},
		{"LQ", c.LQSize, 64},
		{"SQ", c.SQSize, 60},
		{"retire width", c.RetireWidth, 8},
		{"load ports", c.LoadPorts, 2},
		{"ALU ports", c.ALUPorts, 4},
		{"L1D bytes", c.Mem.L1D.SizeBytes, 32 << 10},
		{"L2 bytes", c.Mem.L2.SizeBytes, 256 << 10},
		{"LLC bytes", c.Mem.LLC.SizeBytes, 8 << 20},
		{"L1D latency", int(c.Mem.L1D.Latency), 5},
		{"L2 latency", int(c.Mem.L2.Latency), 15},
		{"LLC latency", int(c.Mem.LLC.Latency), 40},
		{"DRAM channels", c.Mem.Dram.Channels, 2},
		{"mispredict penalty", int(c.BranchMispredictPenalty), 20},
		{"VP penalty", int(c.VPMispredictPenalty), 20},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
}

func TestSkylake2XDoublesResources(t *testing.T) {
	a, b := Skylake(), Skylake2X()
	if b.ROBSize != 2*a.ROBSize || b.IQSize != 2*a.IQSize ||
		b.LQSize != 2*a.LQSize || b.SQSize != 2*a.SQSize {
		t.Error("window resources must double")
	}
	if b.FetchWidth != 2*a.FetchWidth || b.RetireWidth != 2*a.RetireWidth ||
		b.ALUPorts != 2*a.ALUPorts || b.LoadPorts != 2*a.LoadPorts {
		t.Error("bandwidths must double")
	}
	// The cache/memory system itself is unchanged (§V)…
	if b.Mem.LLC.SizeBytes != a.Mem.LLC.SizeBytes || b.Mem.Dram.Channels != a.Mem.Dram.Channels {
		t.Error("the memory system is not scaled")
	}
	// …except miss-level parallelism, which tracks core bandwidth.
	if b.Mem.L1D.MSHRs != 2*a.Mem.L1D.MSHRs {
		t.Error("MSHRs scale with the core")
	}
}

func TestLatencyForClasses(t *testing.T) {
	c := Skylake()
	if c.latencyFor(classIMul) != c.IMulLat || c.latencyFor(classIDiv) != c.IDivLat ||
		c.latencyFor(classFP) != c.FPLat || c.latencyFor(classFPDiv) != c.FPDivLat ||
		c.latencyFor(classALU) != c.ALULat {
		t.Error("latency class mapping broken")
	}
}

func TestBucketNamesComplete(t *testing.T) {
	for i, n := range BucketNames {
		if n == "" {
			t.Errorf("bucket %d unnamed", i)
		}
	}
}
