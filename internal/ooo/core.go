package ooo

import (
	"fvp/internal/branch"
	"fvp/internal/isa"
	"fvp/internal/memdep"
	"fvp/internal/memsys"
	"fvp/internal/prog"
	"fvp/internal/vp"
)

// InstSource supplies the dynamic instruction stream (prog.Exec implements
// it; trace replays do too).
type InstSource interface {
	Next(*isa.DynInst) bool
}

// instruction states inside the window.
const (
	sWaiting   uint8 = iota // in IQ, sources not all available
	sWaitStore              // load matched an older store whose data is pending
	sIssued                 // executing, doneAt set (0 for stores awaiting data)
	sDone                   // result available
)

// fetchEnt is a fetched-but-not-renamed micro-op. Replayed entries keep the
// branch outcome and history snapshot from their first fetch so predictors
// are not double-trained on flush replay.
type fetchEnt struct {
	d        isa.DynInst
	readyAt  uint64
	mispred  bool
	histSnap uint64
	replayed bool
}

// Core is the cycle-level out-of-order machine.
type Core struct {
	cfg  Config
	hier *memsys.Hierarchy
	bu   *branch.Unit
	ss   *memdep.StoreSets
	pred vp.Predictor
	ctx  vp.Ctx

	src     InstSource
	srcDone bool
	// replay/fetchQ are consumed from rpHead/fqHead instead of re-slicing,
	// so the backing arrays are reused instead of reallocated as the
	// queues drain and refill.
	replay  []fetchEnt // flush replay queue (oldest first)
	rpHead  int
	fetchQ  []fetchEnt
	fqHead  int
	pending *fetchEnt // fetched from source but stalled on the I-cache
	// fetchScratch backs nextInst's non-pending returns so fetching does
	// not heap-allocate per micro-op. pending may point here; it is always
	// consumed before nextInst overwrites the scratch.
	fetchScratch fetchEnt

	// w is the struct-of-arrays reorder buffer (see soa.go); head/count
	// are the circular-buffer cursors over its slots.
	w     window
	head  int
	count int

	// Rename state: per architectural register, the in-flight producer
	// and the last-writer PC (speculative + retired images for repair).
	regProd  [isa.NumArchRegs]srcDep
	regPC    [isa.NumArchRegs]uint64
	retRegPC [isa.NumArchRegs]uint64

	// Occupancy counters for the LQ/SQ/IQ partitions of the window. These
	// are the slab occupancy counters the Observer samples — occupancy is
	// maintained incrementally at rename/retire/flush, never by walking
	// window structures.
	lqCount, sqCount, iqCount int

	now             uint64
	fetchStallUntil uint64
	lastFetchLine   uint64
	// redirect: fetch stalls behind an unresolved mispredicted branch.
	redirectSeq    uint64
	redirectActive bool

	// shadow is the retired architectural memory image (DLVP's early
	// probe target); overlayed on top of the program's initial image.
	shadow *prog.Memory

	// oracle criticality: PC set populated by backward walks from
	// retirement stalls, cleared on the same epoch cadence as the CIT.
	oracleSet    []uint16
	oracleMask   uint64
	lastStallSeq uint64
	retiredCount uint64

	// mispredicting-branch chain PCs (§VI-A3 signal).
	brChain     []uint16
	brChainMask uint64

	// Event-driven scheduler state (see sched.go).
	readyQ     []schedRef   // waiting entries that may issue
	issueCand  []schedRef   // per-cycle scratch: readyQ in window order
	deps       [][]schedRef // per-slot subscribers woken at completion
	done       doneHeap     // scheduled completions
	pendStores []schedRef   // issued stores awaiting their data operand
	waiters    []schedRef   // loads deferred behind an older store
	wbCand     []schedRef   // per-cycle scratch for stageWriteback
	ldWin      seqRing      // in-window loads, program order
	stWin      seqRing      // in-window stores, program order
	squashBuf  []fetchEnt   // applyFlush scratch, swapped with replay

	// Observability taps (see observer.go). nextSample is the cycle the
	// next interval sample is due; ^0 when no observer is attached, so the
	// per-cycle check is one compare that never fires.
	obs         Observer
	obsInterval uint64
	nextSample  uint64
	trc         PipeTracer

	// Idle-cycle elision (see elide.go). elide caches the effective switch
	// (build tag AND config); activity is reset at the top of every cycle
	// and set by any stage action that can change future machine state —
	// the cycle loop may clock-jump only when a cycle ends with no
	// activity and an empty ready queue.
	elide    bool
	activity bool

	Meter vp.Meter
	Stats RunStats
}

// RunStats aggregates timing-model events.
type RunStats struct {
	Cycles        uint64
	Retired       uint64
	RetiredLoads  uint64
	RetiredStores uint64
	Fetched       uint64

	BranchMispredicts uint64
	VPFlushes         uint64
	MemOrderFlushes   uint64
	Forwards          uint64

	RetireStallCycles uint64
	EmptyWindowCycles uint64

	LoadsByLevel [4]uint64
	// StallHeadLoads/StallHeadOther classify retirement-stall cycles by
	// whether the blocking (oldest unfinished) instruction is a load.
	StallHeadLoads uint64
	StallHeadOther uint64
	// Breakdown attributes every simulated cycle to one top-down bucket.
	Breakdown CycleBreakdown

	// SkippedCycles counts the cycles the loop clock-jumped instead of
	// ticking (always a subset of Cycles; 0 under -tags ooo_noskip or
	// Config.DisableIdleElision) and SkipEvents the number of jumps. They
	// describe the simulator, not the simulated machine: every skipped
	// cycle is still present in Cycles and the stall breakdown, which stay
	// byte-identical to the ticking loop.
	SkippedCycles uint64
	SkipEvents    uint64
}

// Stall buckets for the top-down cycle accounting.
const (
	// CycRetiring: at least one instruction committed this cycle.
	CycRetiring = iota
	// CycMemL1..CycMemDRAM: retirement blocked by a load in flight to
	// the given level.
	CycMemL1
	CycMemL2
	CycMemLLC
	CycMemDRAM
	// CycStoreFwd: retirement blocked by a load waiting on a store's data.
	CycStoreFwd
	// CycExec: retirement blocked by a non-load executing (ALU/FP chain).
	CycExec
	// CycDependency: the head has not even issued (waiting on sources or
	// structural back-pressure).
	CycDependency
	// CycFrontend: the window is empty (fetch stalls: redirects, I-cache
	// misses, flush refills).
	CycFrontend
	numCycleBuckets
)

// CycleBreakdown counts cycles per bucket; it sums to Cycles.
type CycleBreakdown [numCycleBuckets]uint64

// BucketNames labels the breakdown in reports.
var BucketNames = [numCycleBuckets]string{
	"retiring", "mem-L1", "mem-L2", "mem-LLC", "mem-DRAM",
	"store-fwd", "exec", "dependency", "frontend",
}

// IPC returns retired instructions per cycle.
func (s *RunStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// New builds a core. pred may be nil for the no-value-prediction baseline.
// initMem is the program's initial memory image used to answer early-probe
// reads (the core clones it; the caller's copy is not modified).
func New(cfg Config, pred vp.Predictor, src InstSource, initMem *prog.Memory) *Core {
	if pred == nil {
		pred = vp.None{}
	}
	c := &Core{
		cfg:  cfg,
		hier: memsys.New(cfg.Mem),
		bu:   branch.NewDefaultUnit(),
		ss:   memdep.New(cfg.SSITBits, cfg.LFSTBits),
		pred: pred,
		src:  src,
	}
	c.w.init(cfg.ROBSize)
	if initMem != nil {
		c.shadow = initMem.Clone()
	} else {
		c.shadow = prog.NewMemory()
	}
	const oracleEntries = 1024
	c.oracleSet = make([]uint16, oracleEntries)
	c.oracleMask = oracleEntries - 1
	const brChainEntries = 256
	c.brChain = make([]uint16, brChainEntries)
	c.brChainMask = brChainEntries - 1

	c.deps = make([][]schedRef, cfg.ROBSize)
	c.ldWin.init(cfg.LQSize)
	c.stWin.init(cfg.SQSize)
	c.nextSample = ^uint64(0)
	c.elide = elisionBuild && !cfg.DisableIdleElision

	c.ctx.MemPeek = c.shadow.Read
	c.ctx.CacheLevel = func(addr uint64) int { return int(c.hier.ProbeLevel(addr)) }
	return c
}

// Reset restores the core to the state New produces for the same config with
// the given predictor, instruction source and initial memory image, reusing
// every allocation (window slabs, caches, predictor tables, scheduler
// queues). A reset core must be observationally identical to a fresh one —
// the harness pools cores across runs on the strength of that equivalence,
// and TestResetEquivalence enforces it.
func (c *Core) Reset(pred vp.Predictor, src InstSource, initMem *prog.Memory) {
	if pred == nil {
		pred = vp.None{}
	}
	c.hier.Reset()
	c.bu.Reset()
	c.ss.Reset()
	c.pred = pred
	c.src = src
	c.srcDone = false

	c.replay = c.replay[:0]
	c.rpHead = 0
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.pending = nil
	c.fetchScratch = fetchEnt{}

	c.w.reset()
	c.head = 0
	c.count = 0
	c.regProd = [isa.NumArchRegs]srcDep{}
	c.regPC = [isa.NumArchRegs]uint64{}
	c.retRegPC = [isa.NumArchRegs]uint64{}
	c.lqCount, c.sqCount, c.iqCount = 0, 0, 0

	c.now = 0
	c.fetchStallUntil = 0
	c.lastFetchLine = 0
	c.redirectSeq = 0
	c.redirectActive = false

	if initMem != nil {
		c.shadow = initMem.Clone()
	} else {
		c.shadow = prog.NewMemory()
	}
	clear16(c.oracleSet)
	c.lastStallSeq = 0
	c.retiredCount = 0
	clear16(c.brChain)

	c.readyQ = c.readyQ[:0]
	c.issueCand = c.issueCand[:0]
	for i := range c.deps {
		c.deps[i] = c.deps[i][:0]
	}
	c.done = c.done[:0]
	c.pendStores = c.pendStores[:0]
	c.waiters = c.waiters[:0]
	c.wbCand = c.wbCand[:0]
	c.ldWin.init(c.cfg.LQSize)
	c.stWin.init(c.cfg.SQSize)
	c.squashBuf = c.squashBuf[:0]

	c.obs = nil
	c.obsInterval = 0
	c.nextSample = ^uint64(0)
	c.trc = nil
	c.activity = false // elide is config-derived and survives Reset

	c.Meter = vp.Meter{}
	c.Stats = RunStats{}

	c.ctx = vp.Ctx{}
	c.ctx.MemPeek = c.shadow.Read
	c.ctx.CacheLevel = func(addr uint64) int { return int(c.hier.ProbeLevel(addr)) }
}

// WarmCaches pre-installs the program's steady-state ranges into the
// hierarchy so the measured region is not dominated by compulsory misses.
func (c *Core) WarmCaches(ranges []prog.WarmRange) {
	for _, r := range ranges {
		lvl := memsys.Level(r.Level)
		if lvl < memsys.LvlL1 || lvl > memsys.LvlLLC {
			continue
		}
		c.hier.Warm(r.Base, r.Bytes, lvl)
	}
}

// Hierarchy exposes the memory system for inspection (tests, stats).
func (c *Core) Hierarchy() *memsys.Hierarchy { return c.hier }

// Branch exposes the branch unit for inspection.
func (c *Core) Branch() *branch.Unit { return c.bu }

// StoreSets exposes the disambiguation predictor for inspection.
func (c *Core) StoreSets() *memdep.StoreSets { return c.ss }

func (c *Core) idx(i int) int { return (c.head + i) % len(c.w.inst) }

// distFromHead returns the window position of rob slot ri (0 = head).
func (c *Core) distFromHead(ri int) int {
	return (ri - c.head + len(c.w.inst)) % len(c.w.inst)
}

// destAvail reports when slot i's register result is usable by consumers,
// accounting for value prediction (including MR store links).
func (c *Core) destAvail(i int) (uint64, bool) {
	avail := ^uint64(0)
	ok := false
	if c.w.state[i] == sDone {
		avail, ok = c.w.doneAt[i], true
	}
	if c.w.flags[i]&fPredicted != 0 {
		p := &c.w.pred[i]
		if p.link >= 0 {
			li := int(p.link)
			if c.w.seq[li] == p.linkSeq {
				if c.w.state[li] == sDone {
					if da := c.w.doneAt[li]; !ok || da < avail {
						avail, ok = da, true
					}
				}
			} else {
				// Linked store already retired: data was ready
				// no later than the link's own availability.
				if !ok || p.availAt < avail {
					avail, ok = p.availAt, true
				}
			}
		} else if !ok || p.availAt < avail {
			avail, ok = p.availAt, true
		}
	}
	return avail, ok
}

// srcReady reports whether source s of slot i is available at cycle now,
// and the cycle it became available.
func (c *Core) srcReady(i, s int, now uint64) (uint64, bool) {
	d := &c.w.src[2*i+s]
	if !d.hasProd {
		return d.availAt, d.availAt <= now
	}
	pi := int(d.prodIdx)
	if c.w.seq[pi] != d.prodSeq {
		// Producer retired (slot recycled): value long available.
		d.hasProd = false
		d.availAt = 0
		return 0, true
	}
	avail, ok := c.destAvail(pi)
	if ok && avail <= now {
		return avail, true
	}
	return avail, false
}

// ready reports whether all sources of slot i are available at now; it also
// records the last-arriving producer for criticality walks.
func (c *Core) ready(i int, now uint64) bool {
	var latest uint64
	latestProd := int32(-1)
	for s := 0; s < 2; s++ {
		d := &c.w.src[2*i+s]
		if d.availAt == 0 && !d.hasProd {
			continue
		}
		avail, ok := c.srcReady(i, s, now)
		if !ok {
			return false
		}
		if avail >= latest {
			latest = avail
			// Re-read hasProd: srcReady clears it when the producer
			// retired.
			if d.hasProd {
				latestProd = d.prodIdx
			}
		}
	}
	cold := &c.w.cold[i]
	cold.crit = latestProd
	if latestProd >= 0 {
		cold.critSeq = c.w.seq[latestProd]
	}
	return true
}
