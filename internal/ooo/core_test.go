package ooo

import (
	"testing"

	"fvp/internal/isa"
	"fvp/internal/prog"
	"fvp/internal/vp"
)

// sliceSource replays a fixed instruction slice.
type sliceSource struct {
	insts []isa.DynInst
	pos   int
}

func (s *sliceSource) Next(d *isa.DynInst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*d = s.insts[s.pos]
	s.pos++
	return true
}

// repeatChain builds n iterations of a serial ALU chain (each op depends on
// the previous through r1).
func repeatChain(n int) *sliceSource {
	insts := make([]isa.DynInst, n)
	for i := range insts {
		insts[i] = isa.DynInst{
			Seq: uint64(i), PC: 0x400000 + uint64(i%16)*4,
			Op: isa.OpALU, Dst: 1, Src1: 1, Value: uint64(i),
		}
	}
	return &sliceSource{insts: insts}
}

// repeatIndep builds n independent single-cycle ops.
func repeatIndep(n int) *sliceSource {
	insts := make([]isa.DynInst, n)
	for i := range insts {
		insts[i] = isa.DynInst{
			Seq: uint64(i), PC: 0x400000 + uint64(i%16)*4,
			Op: isa.OpALU, Dst: isa.Reg(1 + i%8), Value: uint64(i),
		}
	}
	return &sliceSource{insts: insts}
}

func TestSerialChainIPCNearOne(t *testing.T) {
	c := New(Skylake(), nil, repeatChain(20000), nil)
	st := c.Run(20000)
	ipc := st.IPC()
	// A 1-cycle serial chain caps IPC at 1.
	if ipc > 1.05 {
		t.Errorf("serial chain IPC %.3f > 1", ipc)
	}
	if ipc < 0.85 {
		t.Errorf("serial chain IPC %.3f — scheduling overhead too high", ipc)
	}
}

func TestIndependentOpsReachWidth(t *testing.T) {
	c := New(Skylake(), nil, repeatIndep(40000), nil)
	st := c.Run(40000)
	// 4-wide rename, 4 ALU ports: IPC should approach 4.
	if st.IPC() < 3.3 {
		t.Errorf("independent ops IPC %.3f, want ≈4", st.IPC())
	}
}

func TestSkylake2XDoublesIndependentThroughput(t *testing.T) {
	c1 := New(Skylake(), nil, repeatIndep(40000), nil)
	st1 := c1.Run(40000)
	ipc1 := st1.IPC()
	c2 := New(Skylake2X(), nil, repeatIndep(40000), nil)
	st2 := c2.Run(40000)
	ipc2 := st2.IPC()
	if ipc2 < ipc1*1.7 {
		t.Errorf("2X IPC %.2f not ≈2× Skylake %.2f", ipc2, ipc1)
	}
}

func TestLongLatencyDivideThrottles(t *testing.T) {
	insts := make([]isa.DynInst, 4000)
	for i := range insts {
		insts[i] = isa.DynInst{
			Seq: uint64(i), PC: 0x400000, Op: isa.OpIDiv,
			Dst: 1, Src1: 1, Value: 1,
		}
	}
	c := New(Skylake(), nil, &sliceSource{insts: insts}, nil)
	st := c.Run(4000)
	// Serial divides: ~IDivLat cycles each.
	wantMax := 1.0 / float64(Skylake().IDivLat-2)
	if st.IPC() > wantMax*1.3 {
		t.Errorf("divide chain IPC %.4f, want ≈%.4f", st.IPC(), wantMax)
	}
}

// buildBranchTrace alternates a perfectly-patterned conditional branch.
func buildBranchTrace(n int, takenEvery int) *sliceSource {
	insts := make([]isa.DynInst, n)
	for i := range insts {
		if i%2 == 0 {
			insts[i] = isa.DynInst{
				Seq: uint64(i), PC: 0x400000, Op: isa.OpALU, Dst: 1, Value: uint64(i),
			}
		} else {
			taken := (i/2)%takenEvery == 0
			d := isa.DynInst{
				Seq: uint64(i), PC: 0x400010, Op: isa.OpBranch, Taken: taken,
			}
			if taken {
				d.Target = 0x400000
			} else {
				d.Target = 0x400014
			}
			insts[i] = d
		}
	}
	return &sliceSource{insts: insts}
}

func TestPredictableBranchesAreCheap(t *testing.T) {
	c := New(Skylake(), nil, buildBranchTrace(30000, 4), nil)
	st := c.Run(30000)
	rate := float64(st.BranchMispredicts) / float64(st.Retired/2)
	if rate > 0.05 {
		t.Errorf("period-4 branch mispredict rate %.3f", rate)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// Pseudo-random branches: heavy mispredicts must depress IPC well
	// below the predictable-branch case.
	mkTrace := func(rnd bool) *sliceSource {
		n := 30000
		insts := make([]isa.DynInst, n)
		state := uint64(99)
		for i := range insts {
			if i%2 == 0 {
				insts[i] = isa.DynInst{Seq: uint64(i), PC: 0x400000, Op: isa.OpALU, Dst: 1, Value: uint64(i)}
				continue
			}
			taken := true
			if rnd {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				taken = state&1 == 1
			}
			d := isa.DynInst{Seq: uint64(i), PC: 0x400010, Op: isa.OpBranch, Taken: taken, Target: 0x400000}
			insts[i] = d
		}
		return &sliceSource{insts: insts}
	}
	stEasy := New(Skylake(), nil, mkTrace(false), nil).Run(30000)
	stHard := New(Skylake(), nil, mkTrace(true), nil).Run(30000)
	if stHard.IPC() > stEasy.IPC()*0.7 {
		t.Errorf("random branches IPC %.2f vs predictable %.2f — penalty not modelled",
			stHard.IPC(), stEasy.IPC())
	}
	if stHard.BranchMispredicts < 3000 {
		t.Errorf("mispredicts = %d, expected thousands", stHard.BranchMispredicts)
	}
}

// loadChainTrace: serial loads (each load's address comes from the previous
// load's value through a register).
func loadChainTrace(n int) *sliceSource {
	insts := make([]isa.DynInst, n)
	for i := range insts {
		insts[i] = isa.DynInst{
			Seq: uint64(i), PC: 0x400000, Op: isa.OpLoad,
			Dst: 1, Src1: 1, Addr: uint64(0x100000 + (i%8)*64), Value: 7, MemSize: 8,
		}
	}
	return &sliceSource{insts: insts}
}

func TestSerialLoadsPayL1Latency(t *testing.T) {
	c := New(Skylake(), nil, loadChainTrace(8000), nil)
	c.WarmCaches([]prog.WarmRange{{Base: 0x100000, Bytes: 4096, Level: 0}})
	st := c.Run(8000)
	// Serial L1 hits: ~5 cycles each.
	got := float64(st.Cycles) / float64(st.Retired)
	if got < 4.5 || got > 6.5 {
		t.Errorf("serial L1 loads: %.2f cycles per load, want ≈5", got)
	}
}

// constPredictor always predicts a fixed value for loads.
type constPredictor struct {
	vp.None
	value   uint64
	predict bool
}

func (p *constPredictor) Lookup(d *isa.DynInst, _ *vp.Ctx) vp.Prediction {
	if p.predict && d.Op.IsLoad() {
		return vp.Prediction{Valid: true, Value: p.value}
	}
	return vp.Prediction{}
}

func (p *constPredictor) Name() string { return "const" }

func TestCorrectValuePredictionBreaksChain(t *testing.T) {
	base := New(Skylake(), nil, loadChainTrace(8000), nil)
	base.WarmCaches([]prog.WarmRange{{Base: 0x100000, Bytes: 4096, Level: 0}})
	stBase := base.Run(8000)

	pred := New(Skylake(), &constPredictor{value: 7, predict: true}, loadChainTrace(8000), nil)
	pred.WarmCaches([]prog.WarmRange{{Base: 0x100000, Bytes: 4096, Level: 0}})
	stPred := pred.Run(8000)

	if stPred.IPC() < stBase.IPC()*2 {
		t.Errorf("perfect prediction IPC %.2f vs base %.2f — chain not broken",
			stPred.IPC(), stBase.IPC())
	}
	if pred.Meter.Wrong != 0 {
		t.Errorf("correct predictions flagged wrong: %d", pred.Meter.Wrong)
	}
	if pred.Meter.Correct == 0 {
		t.Error("no predictions validated")
	}
}

func TestWrongValuePredictionFlushes(t *testing.T) {
	pred := New(Skylake(), &constPredictor{value: 999, predict: true}, loadChainTrace(4000), nil)
	pred.WarmCaches([]prog.WarmRange{{Base: 0x100000, Bytes: 4096, Level: 0}})
	st := pred.Run(4000)
	if st.VPFlushes == 0 {
		t.Fatal("wrong predictions must flush")
	}
	if pred.Meter.Correct != 0 {
		t.Errorf("wrong-value predictor validated correct %d times", pred.Meter.Correct)
	}
	// Mispredicting every load must be slower than no prediction.
	base := New(Skylake(), nil, loadChainTrace(4000), nil)
	base.WarmCaches([]prog.WarmRange{{Base: 0x100000, Bytes: 4096, Level: 0}})
	stBase := base.Run(4000)
	if st.IPC() >= stBase.IPC() {
		t.Errorf("all-wrong prediction IPC %.3f ≥ baseline %.3f", st.IPC(), stBase.IPC())
	}
}

// fwdTrace: store to an address, some filler, then a load of that address —
// repeatedly, with the load close enough to forward.
func fwdTrace(n int) *sliceSource {
	var insts []isa.DynInst
	seq := uint64(0)
	add := func(d isa.DynInst) {
		d.Seq = seq
		seq++
		insts = append(insts, d)
	}
	for i := 0; len(insts) < n; i++ {
		addr := uint64(0x200000 + (i%4)*8)
		add(isa.DynInst{PC: 0x400000, Op: isa.OpALU, Dst: 2, Value: uint64(i)})
		add(isa.DynInst{PC: 0x400004, Op: isa.OpStore, Src1: 1, Src2: 2, Addr: addr, Value: uint64(i), MemSize: 8})
		add(isa.DynInst{PC: 0x400008, Op: isa.OpALU, Dst: 3, Value: 1})
		add(isa.DynInst{PC: 0x40000C, Op: isa.OpLoad, Dst: 4, Src1: 1, Addr: addr, Value: uint64(i), MemSize: 8})
	}
	return &sliceSource{insts: insts}
}

func TestStoreToLoadForwarding(t *testing.T) {
	c := New(Skylake(), nil, fwdTrace(8000), nil)
	st := c.Run(8000)
	if st.Forwards == 0 {
		t.Fatal("no store→load forwarding observed")
	}
	if st.MemOrderFlushes > st.Forwards/4 {
		t.Errorf("too many ordering flushes (%d) vs forwards (%d)",
			st.MemOrderFlushes, st.Forwards)
	}
}

func TestForwardingNotifiesPredictor(t *testing.T) {
	rec := &recordingPredictor{}
	c := New(Skylake(), rec, fwdTrace(4000), nil)
	c.Run(4000)
	if rec.forwards == 0 {
		t.Error("predictor did not observe forwarding events")
	}
	if rec.forwardLoadPC != 0x40000C || rec.forwardStorePC != 0x400004 {
		t.Errorf("forward pair = %#x←%#x", rec.forwardLoadPC, rec.forwardStorePC)
	}
}

type recordingPredictor struct {
	vp.None
	forwards       int
	forwardLoadPC  uint64
	forwardStorePC uint64
	trains         int
	nearHead       int
}

func (r *recordingPredictor) Name() string { return "recording" }

func (r *recordingPredictor) OnForward(loadPC, storePC uint64) {
	r.forwards++
	r.forwardLoadPC, r.forwardStorePC = loadPC, storePC
}

func (r *recordingPredictor) Train(d *isa.DynInst, _ *vp.Ctx, info vp.TrainInfo) {
	r.trains++
	if info.NearHead {
		r.nearHead++
	}
}

func TestTrainCalledPerExecution(t *testing.T) {
	rec := &recordingPredictor{}
	c := New(Skylake(), rec, repeatIndep(5000), nil)
	c.Run(5000)
	if rec.trains < 5000 {
		t.Errorf("trains = %d, want ≥ retired count", rec.trains)
	}
}

func TestRetireStallSignalsNearHead(t *testing.T) {
	rec := &recordingPredictor{}
	// Serial DRAM loads stall retirement; their executions happen at the
	// ROB head.
	c := New(Skylake(), rec, loadChainTrace(2000), nil)
	c.Run(2000)
	if rec.nearHead == 0 {
		t.Error("no near-head executions flagged under retirement stalls")
	}
}

func TestRunStatsIPCZeroSafe(t *testing.T) {
	var st RunStats
	if st.IPC() != 0 {
		t.Error("zero stats IPC must be 0")
	}
}
