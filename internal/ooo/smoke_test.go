package ooo

import (
	"testing"

	"fvp/internal/prog"
)

// buildLoop returns a simple counted loop: sum += a[i] over a small array,
// wrapped so the executor restarts forever.
func buildLoop(t testing.TB) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("smoke-loop")
	const base = 0x10000
	const n = 64
	for i := 0; i < n; i++ {
		b.InitMem(base+uint64(i*8), uint64(i*3+1))
	}
	b.InitReg(1, base) // r1 = array base
	b.MovI(2, n)       // r2 = count
	b.MovI(3, 0)       // r3 = sum
	b.Label("loop")
	b.Load(4, 1, 0) // r4 = *r1
	b.Add(3, 3, 4)  // sum += r4
	b.AddI(1, 1, 8) // r1 += 8
	b.SubI(2, 2, 1) // r2--
	b.BNZ(2, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestSmokeBaselineRuns(t *testing.T) {
	p := buildLoop(t)
	ex := prog.NewExec(p)
	c := New(Skylake(), nil, ex, p.BuildMemory())
	st := c.Run(20000)
	if st.Retired < 20000 {
		t.Fatalf("retired %d, want 20000", st.Retired)
	}
	ipc := st.IPC()
	if ipc < 0.3 || ipc > 4.0 {
		t.Fatalf("implausible IPC %.3f (cycles=%d)", ipc, st.Cycles)
	}
	t.Logf("IPC=%.3f cycles=%d loads=%d brMiss=%d fwd=%d stall=%d empty=%d loadsByLvl=%v",
		ipc, st.Cycles, st.RetiredLoads, st.BranchMispredicts, st.Forwards,
		st.RetireStallCycles, st.EmptyWindowCycles, st.LoadsByLevel)
}
