package ooo_test

// Observability must be free of Heisenberg effects: attaching an observer or
// tracer may read the machine but must never shift its timing. These tests
// re-run golden matrix cells with taps attached and demand byte-identical
// RunStats/Meter against testdata/golden_stats.json — the same bar the
// scheduler rewrite had to clear.

import (
	"testing"

	"fvp/internal/isa"
	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/workload"
)

// countingObserver exercises the callback path without retaining anything.
type countingObserver struct {
	calls int
	last  uint64
}

func (o *countingObserver) OnInterval(s ooo.IntervalSnapshot) {
	o.calls++
	o.last = s.Cycle
}

// countingTracer exercises every tracer call site.
type countingTracer struct {
	events [ooo.EvFlush + 1]int
}

func (t *countingTracer) PipeEvent(ev ooo.TraceEvent, cycle uint64, d *isa.DynInst, arg uint64) {
	t.events[ev]++
}

// observedGoldenCase is runGoldenCase with taps attached.
func observedGoldenCase(wl workload.Workload, cfg ooo.Config, pred string) (goldenRecord, *countingObserver, *countingTracer) {
	p := wl.Build()
	c := ooo.New(cfg, goldenPredictor(pred), prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	obs := &countingObserver{}
	trc := &countingTracer{}
	c.SetObserver(obs, 1_000)
	c.SetTracer(trc)
	st := c.Run(goldenInsts)
	c.FinishObservation()
	// Like runGoldenCase: the skip meters are simulator-speed counters, not
	// machine state, and observer boundaries clip jumps, so their values
	// legitimately differ between observed and unobserved runs.
	st.SkippedCycles = 0
	st.SkipEvents = 0
	return goldenRecord{
		Key:      goldenKey(wl.Name, cfg.Name, pred),
		Stats:    st,
		Meter:    c.Meter,
		Coverage: c.Meter.Coverage(),
	}, obs, trc
}

// TestObserverNonPerturbing runs a golden slice with an observer and tracer
// attached and checks the stats still match the checked-in snapshot exactly.
func TestObserverNonPerturbing(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison skipped in -short mode")
	}
	want := loadGolden(t)
	for _, name := range []string{"mcf", "omnetpp", "libquantum", "hadoop"} {
		wl, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		for _, pred := range goldenPredictors {
			wl, pred := wl, pred
			key := goldenKey(wl.Name, "Skylake", pred)
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				exp, ok := want[key]
				if !ok {
					t.Fatalf("golden snapshot missing %s", key)
				}
				got, obs, trc := observedGoldenCase(wl, ooo.Skylake(), pred)
				if got.Stats != exp.Stats {
					t.Errorf("observed run perturbed stats:\n got %+v\nwant %+v", got.Stats, exp.Stats)
				}
				if got.Meter != exp.Meter {
					t.Errorf("observed run perturbed meter:\n got %+v\nwant %+v", got.Meter, exp.Meter)
				}
				if obs.calls < 2 {
					t.Errorf("observer fired %d times, want baseline + samples", obs.calls)
				}
				if obs.last != got.Stats.Cycles {
					t.Errorf("final observation at cycle %d, run ended at %d", obs.last, got.Stats.Cycles)
				}
				if trc.events[ooo.EvFetch] == 0 || trc.events[ooo.EvRetire] == 0 {
					t.Errorf("tracer saw no fetch/retire events: %v", trc.events)
				}
				if trc.events[ooo.EvRetire] != int(got.Stats.Retired) {
					t.Errorf("tracer saw %d retires, stats say %d", trc.events[ooo.EvRetire], got.Stats.Retired)
				}
			})
		}
	}
}

// TestObserverDetach checks SetObserver(nil) restores the never-fire
// sentinel and Reset clears taps, so pooled cores cannot leak observers
// across runs.
func TestObserverDetach(t *testing.T) {
	wl, _ := workload.ByName("mcf")
	p := wl.Build()
	c := ooo.New(ooo.Skylake(), nil, prog.NewExec(p), p.BuildMemory())
	obs := &countingObserver{}
	c.SetObserver(obs, 100)
	baseline := obs.calls
	if baseline != 1 {
		t.Fatalf("attach fired %d callbacks, want exactly the baseline", baseline)
	}
	c.SetObserver(nil, 0)
	c.Run(2_000)
	if obs.calls != baseline {
		t.Errorf("detached observer still fired: %d calls", obs.calls)
	}
}
