// Package ooo implements the trace-driven, cycle-level out-of-order core
// model: fetch (with I-cache and branch prediction), rename (RAT plus the
// RAT-PC last-writer extension FVP needs), dispatch into ROB/IQ/LQ/SQ,
// port-constrained issue, a load/store queue with store→load forwarding and
// store-sets disambiguation, value-prediction integration with
// validation-triggered flushes, and in-order retirement with
// retirement-stall detection.
package ooo

import (
	"fvp/internal/cache"
	"fvp/internal/dram"
	"fvp/internal/memsys"
)

// Config holds every structural and timing parameter of the core.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// Front end.
	FetchWidth int
	// FrontEndDepth is the fetch→rename latency in cycles.
	FrontEndDepth uint64
	// FetchBufferSize bounds fetched-but-not-renamed micro-ops.
	FetchBufferSize int
	// BranchMispredictPenalty is the redirect bubble after a resolved
	// mispredicted branch (paper: 20).
	BranchMispredictPenalty uint64

	// Window.
	RenameWidth int
	ROBSize     int
	IQSize      int
	LQSize      int
	SQSize      int
	RetireWidth int

	// Execution ports (issue budget per cycle per class).
	ALUPorts    int
	LoadPorts   int
	StorePorts  int // store-address issue slots
	FPPorts     int
	BranchPorts int

	// Latencies (cycles from issue to result).
	ALULat     uint64
	IMulLat    uint64
	IDivLat    uint64
	FPLat      uint64
	FPDivLat   uint64
	ForwardLat uint64 // store→load forwarding latency

	// Value prediction.
	VPMispredictPenalty uint64 // paper: 20 cycles

	// Memory-order machinery.
	MemFlushPenalty uint64 // ordering-violation machine clear
	SSITBits        uint
	LFSTBits        uint
	// ConservativeMemDisambiguation makes loads wait for every older
	// store's address instead of speculating with store-sets (an
	// ablation of the Table-II "aggressive memory disambiguation").
	ConservativeMemDisambiguation bool

	// DisableIdleElision forces the per-cycle ticking loop even in builds
	// where idle-cycle elision is compiled in (see elide.go). The modeled
	// machine is identical either way — elision is a simulator-speed
	// optimization, proven bit-exact by the golden-stat matrix and the
	// tick-equivalence tests, which use this switch to run both paths in
	// one process. The `ooo_noskip` build tag is the equivalent
	// compile-time escape hatch.
	DisableIdleElision bool

	// Memory hierarchy.
	Mem memsys.Config
}

// skylakeMem returns the Table-II hierarchy: 32 KB/8w L1D (5 cyc), 64 KB/8w
// L1I, 256 KB/16w private L2 (15 cyc round trip), 8 MB/16w LLC (40 cyc),
// two channels of DDR4-2133, stride prefetch at L1 and stream prefetch into
// L2/LLC.
func skylakeMem() memsys.Config {
	return memsys.Config{
		L1I:             cache.Config{Name: "L1I", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, Latency: 0, MSHRs: 8},
		L1D:             cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 5, MSHRs: 10},
		L2:              cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 16, LineBytes: 64, Latency: 15, MSHRs: 16},
		LLC:             cache.Config{Name: "LLC", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, Latency: 40, MSHRs: 32},
		Dram:            dram.DDR4_2133(),
		StridePCBits:    8,
		StrideDegree:    2,
		Streams:         16,
		StreamDepth:     4,
		MemReturnCycles: 20,
	}
}

// Skylake returns the paper's baseline core (Table II): 4-wide, 224-entry
// ROB, 97-entry IQ, 64/60 LQ/SQ, 8 execution ports, 8-wide retire.
func Skylake() Config {
	return Config{
		Name:                    "Skylake",
		FetchWidth:              4,
		FrontEndDepth:           5,
		FetchBufferSize:         32,
		BranchMispredictPenalty: 20,
		RenameWidth:             4,
		ROBSize:                 224,
		IQSize:                  97,
		LQSize:                  64,
		SQSize:                  60,
		RetireWidth:             8,
		ALUPorts:                4,
		LoadPorts:               2,
		StorePorts:              3,
		FPPorts:                 3,
		BranchPorts:             2,
		ALULat:                  1,
		IMulLat:                 3,
		IDivLat:                 20,
		FPLat:                   4,
		FPDivLat:                14,
		ForwardLat:              5,
		VPMispredictPenalty:     20,
		MemFlushPenalty:         20,
		SSITBits:                12,
		LFSTBits:                8,
		Mem:                     skylakeMem(),
	}
}

// Skylake2X returns the futuristic scaled-up baseline: 8-wide with all
// out-of-order resources and execution bandwidth doubled relative to
// Skylake (§V). The cache/memory system is unchanged, which is what exposes
// the larger core to data-dependence bottlenecks.
func Skylake2X() Config {
	c := Skylake()
	c.Name = "Skylake-2X"
	c.FetchWidth *= 2
	c.FetchBufferSize *= 2
	c.RenameWidth *= 2
	c.ROBSize *= 2
	c.IQSize *= 2
	c.LQSize *= 2
	c.SQSize *= 2
	c.RetireWidth *= 2
	c.ALUPorts *= 2
	c.LoadPorts *= 2
	c.StorePorts *= 2
	c.FPPorts *= 2
	c.BranchPorts *= 2
	// "All the execution resources and bandwidths are doubled" (§V):
	// miss-level parallelism scales with the core.
	c.Mem.L1D.MSHRs *= 2
	c.Mem.L2.MSHRs *= 2
	c.Mem.LLC.MSHRs *= 2
	return c
}

// latencyFor returns the issue→result latency class for non-memory ops.
func (c *Config) latencyFor(opClass int) uint64 {
	switch opClass {
	case classIMul:
		return c.IMulLat
	case classIDiv:
		return c.IDivLat
	case classFP:
		return c.FPLat
	case classFPDiv:
		return c.FPDivLat
	default:
		return c.ALULat
	}
}

// Port classes used by the issue stage.
const (
	classALU = iota
	classIMul
	classIDiv
	classFP
	classFPDiv
	classLoad
	classStore
	classBranch
	classNop
)
