package ooo

import (
	"context"

	"fvp/internal/isa"
	"fvp/internal/memsys"
	"fvp/internal/vp"
)

// cancelCheckMask gates how often RunCtx polls the context: every
// (cancelCheckMask+1) cycles. 4096 cycles is ~µs of wall time, far below
// any caller-visible deadline, while keeping the poll off the hot path.
const cancelCheckMask = 4095

// Run simulates until the total retired-instruction count reaches
// maxRetired (or the source is exhausted) and returns the cumulative run
// statistics. Run may be called repeatedly with growing targets — the
// warmup/measure protocol snapshots Stats between calls.
func (c *Core) Run(maxRetired uint64) RunStats {
	st, _ := c.RunCtx(context.Background(), maxRetired)
	return st
}

// RunCtx is Run with cooperative cancellation: the cycle loop polls ctx
// every few thousand simulated cycles and returns early with ctx.Err()
// when it fires, leaving Stats at the point of interruption. This is what
// lets a service-side job honor per-request deadlines and graceful
// shutdown without killing the worker goroutine.
func (c *Core) RunCtx(ctx context.Context, maxRetired uint64) (RunStats, error) {
	done := ctx.Done()
	// The cancel poll counts loop iterations, not cycles: with idle-cycle
	// elision one iteration can cover thousands of cycles, so a cycle-based
	// gate would poll too rarely on jump-heavy runs (and Cycles&mask==0
	// would additionally skew with the jump lengths).
	var iter uint64
	for c.Stats.Retired < maxRetired {
		if done != nil && iter&cancelCheckMask == 0 {
			select {
			case <-done:
				return c.Stats, ctx.Err()
			default:
			}
		}
		iter++
		c.now++
		c.Stats.Cycles++
		c.activity = false
		c.stageRetire()
		c.stageWriteback()
		c.stageIssue()
		c.stageRename()
		c.stageFetch()
		if c.Stats.Cycles >= c.nextSample {
			c.sample()
		}
		if c.srcDone && c.count == 0 && len(c.fetchQ)-c.fqHead == 0 &&
			len(c.replay)-c.rpHead == 0 && c.pending == nil {
			break
		}
		// Inert cycle and nothing armed for issue: jump the clock to the
		// next event horizon (bit-exact; see elide.go).
		if c.elide && !c.activity && len(c.readyQ) == 0 {
			c.elideIdle()
		}
	}
	return c.Stats, nil
}

// classOf maps an op to its issue-port class.
func classOf(op isa.Op) int {
	switch op {
	case isa.OpALU:
		return classALU
	case isa.OpIMul:
		return classIMul
	case isa.OpIDiv:
		return classIDiv
	case isa.OpFP:
		return classFP
	case isa.OpFPDiv:
		return classFPDiv
	case isa.OpLoad:
		return classLoad
	case isa.OpStore:
		return classStore
	case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet, isa.OpIndirect:
		return classBranch
	default:
		return classNop
	}
}

// ---------------------------------------------------------------- retire

func (c *Core) stageRetire() {
	retired := 0
	for retired < c.cfg.RetireWidth && c.count > 0 {
		h := c.head
		if c.w.state[h] != sDone || c.w.doneAt[h] > c.now {
			break
		}
		c.commit(h)
		c.head = (c.head + 1) % len(c.w.inst)
		c.count--
		retired++
	}
	if retired > 0 {
		c.activity = true
		c.Stats.Breakdown[CycRetiring]++
		return
	}
	if c.count == 0 {
		c.Stats.EmptyWindowCycles++
		c.Stats.Breakdown[CycFrontend]++
		return
	}
	c.Stats.RetireStallCycles++
	h := c.head
	if c.w.inst[h].Op.IsLoad() {
		c.Stats.StallHeadLoads++
	} else {
		c.Stats.StallHeadOther++
	}
	c.Stats.Breakdown[c.classifyStall(h)]++
	if c.w.seq[h] != c.lastStallSeq {
		c.lastStallSeq = c.w.seq[h]
		c.oracleWalk()
	}
}

// classifyStall attributes a retirement-stall cycle to slot i's blocker.
func (c *Core) classifyStall(i int) int {
	switch c.w.state[i] {
	case sWaitStore:
		return CycStoreFwd
	case sIssued, sDone:
		isLoad := c.w.inst[i].Op.IsLoad()
		if isLoad && c.w.flags[i]&fIssuedToMem != 0 {
			switch c.w.cold[i].lvl {
			case memsys.LvlL1:
				return CycMemL1
			case memsys.LvlL2:
				return CycMemL2
			case memsys.LvlLLC:
				return CycMemLLC
			default:
				return CycMemDRAM
			}
		}
		if isLoad {
			return CycStoreFwd
		}
		return CycExec
	default:
		return CycDependency
	}
}

func (c *Core) commit(i int) {
	d := &c.w.inst[i]
	fl := c.w.flags[i]
	if c.trc != nil {
		c.trc.PipeEvent(EvRetire, c.now, d, 0)
	}
	c.Stats.Retired++
	c.Meter.Insts++
	switch {
	case d.Op.IsLoad():
		c.Stats.RetiredLoads++
		c.Meter.Loads++
		if fl&fPredicted != 0 {
			c.Meter.PredictedLoads++
		}
		if fl&fIssuedToMem != 0 {
			c.Stats.LoadsByLevel[c.w.cold[i].lvl]++
		} else {
			c.Stats.LoadsByLevel[memsys.LvlL1]++
		}
		c.lqCount--
		c.ldWin.popFront()
	case d.Op.IsStore():
		c.Stats.RetiredStores++
		c.shadow.Write(d.Addr, d.Value)
		c.hier.Store(c.now, d.Addr)
		c.ss.CompleteStore(d.PC, d.Seq)
		c.sqCount--
		c.stWin.popFront()
	default:
		if fl&fPredicted != 0 {
			c.Meter.PredictedOther++
		}
	}
	if d.HasDest() {
		c.retRegPC[d.Dst] = d.PC
	}
	c.pred.OnRetire(d)
	c.retiredCount++
	if c.retiredCount%oracleEpoch == 0 {
		clear16(c.oracleSet)
		clear16(c.brChain)
	}
}

// oracleEpoch matches the CIT criticality epoch so the oracle table follows
// the same phase cadence.
const oracleEpoch = 400_000

func clear16(t []uint16) {
	for i := range t {
		t[i] = 0
	}
}

func pcTag16(pc uint64) uint16 {
	t := uint16(pc>>2) ^ uint16(pc>>18)
	if t == 0 {
		t = 1
	}
	return t
}

func (c *Core) oracleInsert(pc uint64) { c.oracleSet[(pc>>2)&c.oracleMask] = pcTag16(pc) }

func (c *Core) oracleHit(pc uint64) bool {
	return c.oracleSet[(pc>>2)&c.oracleMask] == pcTag16(pc)
}

func (c *Core) brChainInsert(pc uint64) { c.brChain[(pc>>2)&c.brChainMask] = pcTag16(pc) }

func (c *Core) brChainHit(pc uint64) bool {
	return c.brChain[(pc>>2)&c.brChainMask] == pcTag16(pc)
}

// oracleWalk marks the PCs of the last-arriving dependence chain rooted at
// the stalled head — the graph-buffering oracle of §VI-C: a DDG backward
// walk from the retirement bottleneck.
func (c *Core) oracleWalk() {
	i := c.head
	for step := 0; step < 64; step++ {
		c.oracleInsert(c.w.inst[i].PC)
		next := -1
		// Prefer a still-blocking producer; otherwise the recorded
		// last-arriving one.
		for s := 0; s < 2; s++ {
			d := &c.w.src[2*i+s]
			if !d.hasProd {
				continue
			}
			pi := int(d.prodIdx)
			if c.w.seq[pi] != d.prodSeq {
				continue
			}
			if avail, ok := c.destAvail(pi); !ok || avail > c.now {
				next = pi
				break
			}
		}
		if next < 0 {
			if cold := &c.w.cold[i]; cold.crit >= 0 && c.w.seq[cold.crit] == cold.critSeq {
				next = int(cold.crit)
			}
		}
		if next < 0 || next == i {
			return
		}
		i = next
	}
}

// ------------------------------------------------------------- writeback

// flushReq records the oldest squash demanded this cycle.
type flushReq struct {
	active    bool
	dist      int // distance from head of the faulting entry
	inclusive bool
	penalty   uint64
}

func (f *flushReq) request(dist int, inclusive bool, penalty uint64) {
	if !f.active || dist < f.dist {
		*f = flushReq{active: true, dist: dist, inclusive: inclusive, penalty: penalty}
	}
}

// stageWriteback used to scan the whole window; it now examines only the
// entries that can change state this cycle: completions whose scheduled
// doneAt is due (popped from the done heap), issued stores still awaiting
// their data operand, and loads deferred behind an older store. Candidates
// are processed oldest-first so same-cycle completions happen in the exact
// order the full scan produced (predictor training is order-sensitive), and
// cascades inside one cycle (producer completes -> pending store resolves ->
// deferred load forwards) resolve because producers always sort earlier than
// their in-window consumers.
func (c *Core) stageWriteback() {
	var flush flushReq
	cand := c.wbCand[:0]
	for len(c.done) > 0 && c.done[0].at <= c.now {
		ev := c.done.pop()
		ei := int(ev.idx)
		// Drop events whose entry was squashed or re-issued with a
		// different completion time since the event was scheduled.
		if c.w.seq[ei] == ev.seq && c.w.state[ei] == sIssued && c.w.doneAt[ei] == ev.at {
			cand = append(cand, schedRef{idx: ev.idx, seq: ev.seq})
		}
	}
	cand = append(cand, c.pendStores...)
	c.pendStores = c.pendStores[:0]
	cand = append(cand, c.waiters...)
	c.waiters = c.waiters[:0]
	if len(cand) == 0 {
		c.wbCand = cand
		return
	}
	sortWindowOrder(cand)
	for _, ref := range cand {
		ri := int(ref.idx)
		if c.w.seq[ri] != ref.seq {
			continue // squashed since the ref was taken
		}
		switch c.w.state[ri] {
		case sIssued:
			if c.w.doneAt[ri] == 0 && c.w.inst[ri].Op.IsStore() {
				// Address resolved; waiting for store data.
				if avail, ok := c.srcReady(ri, 1, c.now); ok {
					dr := c.w.cold[ri].addrKnownAt
					if avail > dr {
						dr = avail
					}
					if c.now > dr {
						dr = c.now
					}
					c.w.doneAt[ri] = dr
				}
			}
			switch da := c.w.doneAt[ri]; {
			case da != 0 && da <= c.now:
				c.complete(ri, &flush)
			case da == 0:
				c.pendStores = append(c.pendStores, ref)
			default:
				c.scheduleDone(ri)
			}
		case sWaitStore:
			c.retryWaitStore(ri)
			switch {
			case c.w.state[ri] == sIssued && c.w.doneAt[ri] != 0 && c.w.doneAt[ri] <= c.now:
				c.complete(ri, &flush)
			case c.w.state[ri] == sIssued:
				c.scheduleDone(ri)
			case c.w.state[ri] == sWaiting:
				// Released by address disambiguation: eligible for
				// this cycle's issue stage, like the full scan.
				c.armIssue(ri)
			default:
				c.waiters = append(c.waiters, ref)
			}
		}
	}
	c.wbCand = cand[:0]
	if flush.active {
		c.applyFlush(flush)
	}
}

// retryWaitStore advances a load that deferred on an older store's data.
func (c *Core) retryWaitStore(ri int) {
	cold := &c.w.cold[ri]
	si := int(cold.waitIdx)
	if c.w.seq[si] != cold.waitSeq {
		// The store retired: its data is in the cache by now.
		done, lvl := c.hier.Load(c.now, c.w.inst[ri].Addr, c.w.inst[ri].PC)
		c.w.state[ri] = sIssued
		c.w.doneAt[ri] = done
		cold.lvl = lvl
		c.w.flags[ri] |= fIssuedToMem
		return
	}
	stCold := &c.w.cold[si]
	if stCold.addrKnownAt != 0 && stCold.addrKnownAt <= c.now && c.w.inst[si].Addr != c.w.inst[ri].Addr {
		// The load was parked behind an unresolved store (conservative
		// disambiguation) that turned out not to alias: release it back
		// to the scheduler as soon as the address disambiguates.
		c.w.state[ri] = sWaiting
		c.w.flags[ri] |= fInIQ
		c.iqCount++
		return
	}
	if stDone := c.w.doneAt[si]; stDone != 0 && stDone <= c.now {
		start := stDone
		if c.now > start {
			start = c.now
		}
		c.w.state[ri] = sIssued
		c.w.doneAt[ri] = start + c.cfg.ForwardLat
		cold.fwdFromSeq = c.w.seq[si]
		c.Stats.Forwards++
		c.pred.OnForward(c.w.inst[ri].PC, c.w.inst[si].PC)
	}
}

// complete finishes execution of slot ri: validation, training, branch
// resolution.
func (c *Core) complete(ri int, flush *flushReq) {
	c.activity = true
	c.w.state[ri] = sDone
	d := &c.w.inst[ri]
	cold := &c.w.cold[ri]
	if c.trc != nil {
		c.trc.PipeEvent(EvComplete, c.w.doneAt[ri], d, 0)
	}
	dist := c.distFromHead(ri)
	nearHead := dist < c.cfg.RetireWidth

	info := vp.TrainInfo{NearHead: nearHead}
	fl := c.w.flags[ri]
	if d.Op.IsLoad() {
		info.Forwarded = cold.fwdFromSeq != 0
		if fl&fIssuedToMem != 0 {
			info.L1Miss = cold.lvl > memsys.LvlL1
			info.LLCMiss = cold.lvl == memsys.LvlMem
		}
	}
	info.OracleCritical = c.oracleHit(d.PC)
	info.MispredictedBranchChain = c.brChainHit(d.PC)

	if fl&(fPredicted|fValidated) == fPredicted {
		c.w.flags[ri] = fl | fValidated
		correct := cold.predValue == d.Value
		info.WasPredicted = true
		info.Correct = correct
		if c.trc != nil {
			ev := EvVPWrong
			if correct {
				ev = EvVPCorrect
			}
			c.trc.PipeEvent(ev, c.now, d, cold.predValue)
		}
		if correct {
			c.Meter.Correct++
		} else {
			c.Meter.Wrong++
			c.Meter.Flushes++
			c.Stats.VPFlushes++
			flush.request(dist, false, c.cfg.VPMispredictPenalty)
		}
	}

	c.ctx.Hist = cold.histSnap
	c.ctx.Parents = cold.parents
	c.ctx.NumParents = int(cold.nparents)
	c.pred.Train(d, &c.ctx, info)

	if d.Op.IsStore() {
		c.ss.CompleteStore(d.PC, d.Seq)
	}
	if fl&fBrMispredict != 0 && c.redirectActive && c.redirectSeq == d.Seq {
		c.redirectActive = false
		resume := c.w.doneAt[ri] + c.cfg.BranchMispredictPenalty
		if resume > c.fetchStallUntil {
			c.fetchStallUntil = resume
		}
	}
	c.wakeDependents(ri)
}
