package ooo

// Event-driven scheduler state. The cycle loop used to re-scan the whole
// in-flight window every cycle in stageIssue and stageWriteback; the
// structures here replace those scans with wakeup events so each cycle only
// touches entries whose state can actually change:
//
//   - readyQ holds the waiting entries that might issue this cycle. An entry
//     leaves it when it issues, or parks on its producers' dependent lists
//     (deps) when a source is not available; completion of a producer wakes
//     its dependents back into readyQ.
//   - done is a min-heap of scheduled completions: every doneAt assignment
//     pushes one event, and stageWriteback pops only the events due now.
//   - pendStores / waiters are the (small) sets the model genuinely
//     re-examines every cycle: stores whose address issued but whose data
//     operand is still in flight, and loads deferred behind an older store.
//   - ldWin / stWin mirror the in-window loads and stores in program order,
//     so store-forwarding search, violation scans and findStoreBySeq touch
//     only memory operations instead of the whole window.
//
// All references are int32 slot indices into the window slabs (soa.go) plus
// the slot's seq for staleness disambiguation — no pointers into window
// state anywhere in the scheduler. Everything here is bookkeeping on top of
// the same per-entry predicates the full scans evaluated; the golden-stat
// tests pin the simulated machine to bit-identical behavior.

// schedRef names a window slot at a point in time. The seq disambiguates a
// slot that was squashed and re-renamed since the reference was taken; stale
// references are dropped wherever they surface.
type schedRef struct {
	seq uint64
	idx int32
}

// doneEv is one scheduled completion.
type doneEv struct {
	at  uint64
	seq uint64
	idx int32
}

// doneHeap is a binary min-heap of completions ordered by (at, seq). It is
// hand-rolled (no container/heap) to keep push/pop allocation-free.
type doneHeap []doneEv

func (h doneHeap) less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].seq < h[j].seq)
}

func (h *doneHeap) push(ev doneEv) {
	*h = append(*h, ev)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *doneHeap) pop() doneEv {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	*h = a[:n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && a.less(l, s) {
			s = l
		}
		if r < n && a.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		a[i], a[s] = a[s], a[i]
		i = s
	}
	return top
}

// seqRing is a growable ring buffer of schedRefs kept in program (seq)
// order: pushBack at rename, popFront at retire, popBack on squash.
type seqRing struct {
	buf  []schedRef
	head int
	n    int
}

func (r *seqRing) init(capacity int) {
	if capacity < 4 {
		capacity = 4
	}
	if cap(r.buf) < capacity {
		r.buf = make([]schedRef, capacity)
	}
	r.buf = r.buf[:cap(r.buf)]
	r.head, r.n = 0, 0
}

func (r *seqRing) len() int { return r.n }

func (r *seqRing) at(i int) schedRef { return r.buf[(r.head+i)%len(r.buf)] }

func (r *seqRing) pushBack(ref schedRef) {
	if r.n == len(r.buf) {
		grown := make([]schedRef, 2*len(r.buf))
		for i := 0; i < r.n; i++ {
			grown[i] = r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ref
	r.n++
}

func (r *seqRing) popFront() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

func (r *seqRing) popBack() { r.n-- }

// searchSeq returns the smallest position whose seq is >= seq (r.len() when
// none), using the ring's program-order invariant.
func (r *seqRing) searchSeq(seq uint64) int {
	lo, hi := 0, r.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.at(mid).seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// scheduleDone records that slot ri finishes executing at its doneAt. A new
// completion event is machine activity: the idle-elision horizon must be
// recomputed against it (see elide.go).
func (c *Core) scheduleDone(ri int) {
	c.activity = true
	c.done.push(doneEv{at: c.w.doneAt[ri], seq: c.w.seq[ri], idx: int32(ri)})
}

// armIssue puts a waiting slot into the ready queue (idempotent). Arming
// is activity: the entry gets an issue attempt next cycle.
func (c *Core) armIssue(ri int) {
	if c.w.flags[ri]&fInReadyQ == 0 {
		c.activity = true
		c.w.flags[ri] |= fInReadyQ
		c.readyQ = append(c.readyQ, schedRef{idx: int32(ri), seq: c.w.seq[ri]})
	}
}

// parkIssue removes a source-blocked slot from the ready queue and
// subscribes it to every producer whose completion could make the missing
// source available. addrOnly restricts the subscription to source 0 (stores
// issue on the address operand alone). A predicted producer whose value
// rides on an MR-linked store becomes available when that store completes —
// possibly before the producer itself executes — so the entry subscribes to
// both. If nothing is actually blocking (can only happen transiently), the
// entry is re-armed instead so it is never stranded.
func (c *Core) parkIssue(ri int, addrOnly bool) {
	c.w.flags[ri] &^= fInReadyQ
	me := schedRef{idx: int32(ri), seq: c.w.seq[ri]}
	nsrc := 2
	if addrOnly {
		nsrc = 1
	}
	parked := false
	for s := 0; s < nsrc; s++ {
		d := &c.w.src[2*ri+s]
		if !d.hasProd {
			continue
		}
		pi := int(d.prodIdx)
		if c.w.seq[pi] != d.prodSeq {
			continue // producer retired: source available
		}
		if avail, ok := c.destAvail(pi); ok && avail <= c.now {
			continue
		}
		c.deps[pi] = append(c.deps[pi], me)
		parked = true
		if c.w.flags[pi]&fPredicted != 0 {
			if ls := c.w.pred[pi].link; ls >= 0 {
				li := int(ls)
				if c.w.seq[li] == c.w.pred[pi].linkSeq && c.w.state[li] != sDone {
					c.deps[li] = append(c.deps[li], me)
				}
			}
		}
	}
	if !parked {
		c.armIssue(ri)
	}
}

// wakeDependents moves the completed slot's subscribers back into the
// ready queue. Stale subscriptions (squashed or already-issued entries) are
// dropped.
func (c *Core) wakeDependents(ri int) {
	dl := c.deps[ri]
	if len(dl) == 0 {
		return
	}
	for i := range dl {
		ref := dl[i]
		ei := int(ref.idx)
		if c.w.seq[ei] == ref.seq && c.w.state[ei] == sWaiting {
			c.armIssue(ei)
		}
	}
	c.deps[ri] = dl[:0]
}

// sortWindowOrder orders refs oldest-first. Sequence numbers increase
// strictly in window order (replayed micro-ops keep their original seq and
// their original order), so sorting by seq reproduces the program-order walk
// the full-window scans performed. Insertion sort: the per-cycle inputs are
// small, nearly sorted already, and it allocates nothing.
func sortWindowOrder(refs []schedRef) {
	for i := 1; i < len(refs); i++ {
		r := refs[i]
		j := i - 1
		for j >= 0 && refs[j].seq > r.seq {
			refs[j+1] = refs[j]
			j--
		}
		refs[j+1] = r
	}
}
