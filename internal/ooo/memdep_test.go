package ooo

import (
	"testing"

	"fvp/internal/isa"
)

// aliasTrace builds iterations where a store's address depends on slow work
// (an IDiv chain) while a younger load to the same address is immediately
// ready — the canonical memory-order-violation trap.
func aliasTrace(n int) *sliceSource {
	var insts []isa.DynInst
	seq := uint64(0)
	add := func(d isa.DynInst) {
		d.Seq = seq
		seq++
		insts = append(insts, d)
	}
	for i := 0; len(insts) < n; i++ {
		addr := uint64(0x300000 + (i%2)*64)
		// Slow address computation for the store (serial divide).
		add(isa.DynInst{PC: 0x400000, Op: isa.OpIDiv, Dst: 2, Src1: 2, Value: 1})
		add(isa.DynInst{PC: 0x400004, Op: isa.OpStore, Src1: 2, Src2: 3, Addr: addr, Value: uint64(i), MemSize: 8})
		// The aliasing load is ready immediately.
		add(isa.DynInst{PC: 0x400008, Op: isa.OpLoad, Dst: 4, Src1: 9, Addr: addr, Value: uint64(i), MemSize: 8})
		add(isa.DynInst{PC: 0x40000C, Op: isa.OpALU, Dst: 5, Src1: 4, Value: uint64(i)})
	}
	return &sliceSource{insts: insts}
}

func TestStoreSetsLearnFromViolations(t *testing.T) {
	c := New(Skylake(), nil, aliasTrace(40_000), nil)
	st := c.Run(40_000)
	if st.MemOrderFlushes == 0 {
		t.Fatal("the alias trap must trigger at least one ordering violation")
	}
	if c.StoreSets().Violations == 0 {
		t.Fatal("violations must train the store-sets predictor")
	}
	// After training, the load waits for the store: violations stop and
	// forwarding takes over. Check the tail behaviour by re-running and
	// comparing flush density early vs late.
	if st.Forwards == 0 {
		t.Error("trained store sets should produce forwarding, not violations")
	}
	if st.MemOrderFlushes > st.Forwards {
		t.Errorf("violations (%d) should be rarer than forwards (%d) once trained",
			st.MemOrderFlushes, st.Forwards)
	}
}

func TestViolationFlushChargesPenalty(t *testing.T) {
	// With the disambiguation predictor effectively disabled (tiny SSIT
	// keyed so learning is wiped every flush... we instead compare against
	// conservative mode, which never violates).
	aggr := New(Skylake(), nil, aliasTrace(20_000), nil)
	stA := aggr.Run(20_000)

	cfg := Skylake()
	cfg.ConservativeMemDisambiguation = true
	cons := New(cfg, nil, aliasTrace(20_000), nil)
	stC := cons.Run(20_000)

	if stC.MemOrderFlushes != 0 {
		t.Errorf("conservative mode flushed %d times", stC.MemOrderFlushes)
	}
	// Both should complete with plausible IPC; aggressive may win or lose
	// slightly here, but neither should collapse.
	if stA.IPC() < 0.05 || stC.IPC() < 0.05 {
		t.Errorf("IPC collapse: aggressive %.3f conservative %.3f", stA.IPC(), stC.IPC())
	}
}

func TestForwardedLoadSkipsCache(t *testing.T) {
	c := New(Skylake(), nil, fwdTrace(8_000), nil)
	st := c.Run(8_000)
	// Forwarded loads are not demand cache accesses; most loads here
	// forward, so the hierarchy should see few demand loads.
	demand := c.Hierarchy().DemandLoads[0] + c.Hierarchy().DemandLoads[1] +
		c.Hierarchy().DemandLoads[2] + c.Hierarchy().DemandLoads[3]
	if demand > st.RetiredLoads/2 {
		t.Errorf("demand loads %d vs retired loads %d — forwarding not bypassing the cache",
			demand, st.RetiredLoads)
	}
}

func TestVPFlushReplayConvergence(t *testing.T) {
	// A predictor that is wrong exactly once per PC would flush once and
	// recover; the constPredictor is *always* wrong, so the pipeline must
	// still make forward progress (replays must not re-predict the same
	// squashed instance forever).
	pred := &constPredictor{value: 0xDEAD, predict: true}
	c := New(Skylake(), pred, loadChainTrace(3_000), nil)
	st := c.Run(3_000)
	if st.Retired < 3_000 {
		t.Fatalf("pipeline live-locked: retired %d", st.Retired)
	}
	if st.VPFlushes == 0 {
		t.Error("expected flushes")
	}
}
