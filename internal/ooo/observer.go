package ooo

import (
	"fvp/internal/isa"
	"fvp/internal/vp"
)

// This file is the core's observability surface: an interval Observer the
// cycle loop samples on a fixed cadence, and a PipeTracer that receives
// per-instruction stage events. Both are strictly read-only taps — they see
// pointers into live state but the core never lets them change its timing —
// and both are engineered to cost nothing when unset: the observer check is
// one uint64 compare per cycle against a sentinel that never fires, and every
// tracer call site is behind a nil guard. TestObserverNonPerturbing pins the
// golden-stat matrix byte-identical with an observer attached.

// DefaultObserverInterval is the sampling cadence when SetObserver is given
// an interval of 0: fine enough to resolve phase behavior over a 300k-inst
// measured region, coarse enough that sampling cost is unmeasurable.
const DefaultObserverInterval = 10_000

// IntervalSnapshot is the core state handed to an Observer at each sample
// point. Stats and Meter point at the core's live accumulators and are only
// valid for the duration of the callback; observers that retain data must
// copy it.
type IntervalSnapshot struct {
	// Cycle is the core's current cycle (same clock as Stats.Cycles).
	Cycle uint64
	// Stats is the cumulative run-stat accumulator since core construction.
	Stats *RunStats
	// Meter is the cumulative value-prediction meter.
	Meter *vp.Meter
	// ROBOcc/IQOcc/LQOcc/SQOcc are the window occupancies at the sample
	// instant.
	ROBOcc, IQOcc, LQOcc, SQOcc int
}

// Observer receives interval snapshots from the cycle loop. The first
// callback fires from SetObserver itself (the attach baseline, before any
// observed cycle); subsequent ones fire every interval cycles, and
// FinishObservation delivers a final snapshot so partial tail intervals are
// not lost. Observers run on the simulating goroutine and must not block.
type Observer interface {
	OnInterval(IntervalSnapshot)
}

// TraceEvent tags one PipeTracer callback.
type TraceEvent uint8

// Pipeline trace events, in the order a micro-op experiences them.
const (
	// EvFetch: the micro-op entered the fetch buffer (fires again on
	// flush-replay refetch).
	EvFetch TraceEvent = iota
	// EvRename: renamed into the window.
	EvRename
	// EvIssue: left the issue queue for an execution port.
	EvIssue
	// EvComplete: result produced (writeback); cycle is the completion time.
	EvComplete
	// EvRetire: committed in order.
	EvRetire
	// EvPredict: a value prediction was accepted at rename; arg is the
	// predicted value (0 for store-linked predictions still in flight).
	EvPredict
	// EvVPCorrect / EvVPWrong: prediction validated at completion.
	EvVPCorrect
	EvVPWrong
	// EvFlush: the window was squashed from d's position; arg is the number
	// of squashed window entries. d may be nil when the flush point already
	// left the window.
	EvFlush
)

// TraceEventNames labels TraceEvent values in exports.
var TraceEventNames = [...]string{
	"fetch", "rename", "issue", "complete", "retire",
	"vp-predict", "vp-correct", "vp-wrong", "flush",
}

// PipeTracer receives per-instruction pipeline stage events. d points at the
// live window entry and is only valid for the duration of the call. Tracers
// run on the simulating goroutine; implementations bound their own memory.
type PipeTracer interface {
	PipeEvent(ev TraceEvent, cycle uint64, d *isa.DynInst, arg uint64)
}

// SetObserver attaches (or, with nil, detaches) an interval observer. An
// interval of 0 selects DefaultObserverInterval. Attaching immediately
// delivers one snapshot — the baseline the first interval's deltas are
// measured against — so an observer attached mid-run (the harness attaches
// after warmup) sees only the region it observed.
func (c *Core) SetObserver(o Observer, interval uint64) {
	c.obs = o
	if o == nil {
		c.obsInterval = 0
		c.nextSample = ^uint64(0)
		return
	}
	if interval == 0 {
		interval = DefaultObserverInterval
	}
	c.obsInterval = interval
	c.nextSample = c.Stats.Cycles + interval
	o.OnInterval(c.snapshot())
}

// FinishObservation delivers the final (possibly partial) interval snapshot.
// Callers invoke it after the last Run/RunCtx call of an observed region;
// the observer is left attached.
func (c *Core) FinishObservation() {
	if c.obs == nil {
		return
	}
	c.obs.OnInterval(c.snapshot())
	c.nextSample = c.Stats.Cycles + c.obsInterval
}

// SetTracer attaches (or, with nil, detaches) a pipeline tracer.
func (c *Core) SetTracer(t PipeTracer) { c.trc = t }

func (c *Core) snapshot() IntervalSnapshot {
	return IntervalSnapshot{
		Cycle:  c.Stats.Cycles,
		Stats:  &c.Stats,
		Meter:  &c.Meter,
		ROBOcc: c.count,
		IQOcc:  c.iqCount,
		LQOcc:  c.lqCount,
		SQOcc:  c.sqCount,
	}
}

// sample fires the due interval callback; the cycle loop calls it through a
// single always-false-when-detached compare on nextSample.
func (c *Core) sample() {
	c.obs.OnInterval(c.snapshot())
	c.nextSample = c.Stats.Cycles + c.obsInterval
}
