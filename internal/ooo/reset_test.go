package ooo_test

// Reset-equivalence: a Reset core must be indistinguishable from a freshly
// constructed one. The harness pools cores across RunOne calls on the
// strength of this property, so it is tested directly: run workload A on a
// core, Reset it for workload B, and demand bit-identical stats versus a
// fresh core running B. The cross-workload order maximizes the chance that
// leaked state (cache lines, predictor counters, scheduler queues, shadow
// memory) changes an observable count.

import (
	"reflect"
	"testing"

	"fvp/internal/ooo"
	"fvp/internal/prog"
	"fvp/internal/vp"
	"fvp/internal/workload"
)

const resetInsts = 15_000

func runFresh(t *testing.T, name string, cfg ooo.Config, pred string) (ooo.RunStats, vp.Meter) {
	t.Helper()
	wl, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	p := wl.Build()
	c := ooo.New(cfg, goldenPredictor(pred), prog.NewExec(p), p.BuildMemory())
	c.WarmCaches(p.WarmRanges)
	st := c.Run(resetInsts)
	return st, c.Meter
}

func TestResetEquivalence(t *testing.T) {
	// One pooled core cycles through dissimilar workloads and predictor
	// arms; every leg must match a fresh core bit-for-bit.
	legs := []struct {
		workload string
		pred     string
	}{
		{"mcf", "FVP"},    // pointer-chasing, heavy DRAM traffic
		{"hmmer", "none"}, // compute-bound, no value prediction
		{"omnetpp", "MR"}, // branchy, MR store links
		{"mcf", "FVP"},    // repeat leg 1: reuse after reuse
	}
	for _, cfg := range []ooo.Config{ooo.Skylake(), ooo.Skylake2X()} {
		var pooled *ooo.Core
		for i, leg := range legs {
			wl, ok := workload.ByName(leg.workload)
			if !ok {
				t.Fatalf("unknown workload %q", leg.workload)
			}
			p := wl.Build()
			if pooled == nil {
				pooled = ooo.New(cfg, goldenPredictor(leg.pred), prog.NewExec(p), p.BuildMemory())
			} else {
				pooled.Reset(goldenPredictor(leg.pred), prog.NewExec(p), p.BuildMemory())
			}
			pooled.WarmCaches(p.WarmRanges)
			gotStats := pooled.Run(resetInsts)
			gotMeter := pooled.Meter

			wantStats, wantMeter := runFresh(t, leg.workload, cfg, leg.pred)
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Errorf("%s leg %d (%s/%s): reset core RunStats diverged from fresh core:\n got: %+v\nwant: %+v",
					cfg.Name, i, leg.workload, leg.pred, gotStats, wantStats)
			}
			if gotMeter != wantMeter {
				t.Errorf("%s leg %d (%s/%s): reset core Meter diverged from fresh core:\n got: %+v\nwant: %+v",
					cfg.Name, i, leg.workload, leg.pred, gotMeter, wantMeter)
			}
		}
	}
}
