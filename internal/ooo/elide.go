package ooo

// Idle-cycle elision: the cycle loop's clock jump over provably-empty
// cycles.
//
// Memory-bound workloads spend long stretches with the window stalled
// behind a DRAM miss at the ROB head — hundreds of consecutive loop
// iterations in which no stage can change machine state. The event-driven
// scheduler (sched.go) already knows when the next interesting cycle is:
// every in-flight completion sits in the done heap, and the only other
// time-driven wake-ups are the fetch-stall resume cycle, the fetch-queue
// head's rename-ready cycle, and the observer's next sample boundary.
// When a cycle ends having done nothing, the loop jumps the clock to one
// cycle before the earliest of those horizons and bulk-accounts the
// skipped cycles into the same stall counters the ticking loop would have
// incremented one at a time.
//
// The jump is legal only when the cycle was provably inert, which the
// core tracks with a single per-cycle `activity` flag plus the ready
// queue's emptiness:
//
//   - activity is set by retirement, completion (complete), scheduling a
//     completion (scheduleDone), arming an entry for issue (armIssue),
//     any issue (issueLoad/issueStore/the ALU path), rename, a fetched
//     micro-op, and a window flush (applyFlush). If any of those happened
//     this cycle, the next cycle may react to it — tick normally.
//   - the ready queue must be empty: port-blocked or store-set-gated
//     entries "stay armed" and are legitimately re-examined every cycle
//     (their per-cycle ready() re-check records criticality state the
//     oracle walk reads), so a non-empty queue always ticks.
//
// Under those two conditions every remaining per-cycle poll is provably
// inert until the horizon: pending stores resolve only when their data
// producer's completion pops from the done heap; deferred loads release
// only on a store's completion (heap), a store's address resolution (the
// cycle after the store issues — an activity cycle), or the store's
// retirement (an activity cycle); and fetch/rename stay blocked until the
// fetch-stall or fetch-queue horizon, or an activity event frees a
// structural resource. What may never be skipped over, and never is:
//
//   - flush requests — flushes happen inside stages, which only run on
//     ticked cycles, and every flush marks activity;
//   - retire-window progress — a retirable head means its completion
//     marked activity this cycle or retirement did last cycle;
//   - observer boundaries — the horizon clamps to nextSample, so interval
//     samples fire on exactly the cycle they would have, with identical
//     bulk-accounted counters.
//
// The result is enforced byte-identical to the ticking loop by the
// golden-stat matrix and TestElisionTickEquivalence; `-tags ooo_noskip`
// (or Config.DisableIdleElision at runtime) forces the ticking path for
// differential testing.

// ElisionEnabled reports whether this build compiles the clock-jumping
// fast path (false under -tags ooo_noskip). A core additionally honors
// Config.DisableIdleElision at runtime.
func ElisionEnabled() bool { return elisionBuild }

// nextEventHorizon returns the earliest future cycle at which the machine
// can next change state (or must be observed), and whether any such bound
// exists. Called only at the end of an inert cycle, so the done heap's
// head — if any — is strictly in the future (stageWriteback popped
// everything due this cycle).
func (c *Core) nextEventHorizon() (uint64, bool) {
	h := ^uint64(0)
	if len(c.done) > 0 {
		h = c.done[0].at
	}
	if c.fetchStallUntil > c.now && c.fetchStallUntil < h {
		h = c.fetchStallUntil
	}
	if c.fqHead < len(c.fetchQ) {
		if ra := c.fetchQ[c.fqHead].readyAt; ra > c.now && ra < h {
			h = ra
		}
	}
	// Never jump across a sample boundary: the observer must see the
	// machine at exactly its interval cycle. nextSample is ^0 when no
	// observer is attached, so this clamp never binds then.
	if c.nextSample < h {
		h = c.nextSample
	}
	if h == ^uint64(0) {
		// No bound: a machine with nothing in flight and nothing fetchable
		// either terminates at the loop's drain check or spins — the
		// ticking loop's behavior, which elision must not change.
		return 0, false
	}
	return h, true
}

// elideIdle clock-jumps an inert machine to the cycle before the next
// event horizon, bulk-accounting the skipped cycles exactly as the ticking
// loop would have: the head's stall classification is frozen (nothing can
// change it during an inert stretch — classifyStall reads only head state
// the stages would have to tick to modify), so k skipped cycles add k to
// the same counters k ticked iterations would have. The loop's next
// iteration then ticks into the horizon cycle itself and runs all stages
// normally.
func (c *Core) elideIdle() {
	h, ok := c.nextEventHorizon()
	if !ok || h <= c.now+1 {
		return
	}
	k := h - c.now - 1
	c.now += k
	c.Stats.Cycles += k
	c.Stats.SkippedCycles += k
	c.Stats.SkipEvents++
	if c.count == 0 {
		c.Stats.EmptyWindowCycles += k
		c.Stats.Breakdown[CycFrontend] += k
		return
	}
	hd := c.head
	c.Stats.RetireStallCycles += k
	if c.w.inst[hd].Op.IsLoad() {
		c.Stats.StallHeadLoads += k
	} else {
		c.Stats.StallHeadOther += k
	}
	c.Stats.Breakdown[c.classifyStall(hd)] += k
	// No oracleWalk here: the ticking loop walks once per new stall-head
	// seq, and this head already stalled (and walked) on the cycle that
	// preceded the jump — lastStallSeq == the head's seq.
}
