package ooo

import "fvp/internal/isa"

// ------------------------------------------------------------------ issue

// portBudget is the per-cycle issue bandwidth per class.
type portBudget struct {
	alu, load, store, fp, br int
}

func (c *Core) budget() portBudget {
	return portBudget{
		alu:   c.cfg.ALUPorts,
		load:  c.cfg.LoadPorts,
		store: c.cfg.StorePorts,
		fp:    c.cfg.FPPorts,
		br:    c.cfg.BranchPorts,
	}
}

func (b *portBudget) take(class int) bool {
	var p *int
	switch class {
	case classLoad:
		p = &b.load
	case classStore:
		p = &b.store
	case classFP, classFPDiv:
		p = &b.fp
	case classBranch:
		p = &b.br
	case classNop:
		return true
	default:
		p = &b.alu
	}
	if *p <= 0 {
		return false
	}
	*p--
	return true
}

// stageIssue used to scan the whole window; it now walks only the ready
// queue. Entries whose sources turn out unavailable park on their producers'
// dependence lists (parkIssue) and re-enter the queue when a producer
// completes. Entries that are source-ready but blocked on a port or the
// store-sets gate stay armed and are re-examined every cycle: the full scan
// re-evaluated ready() for them each cycle, and ready() records the
// last-arriving producer (criticality state the oracle walk reads), so their
// per-cycle re-check is part of the modeled machine, not an optimization
// choice. Candidates are processed oldest-first with the shared port budget,
// exactly like the program-order scan.
func (c *Core) stageIssue() {
	if len(c.readyQ) == 0 {
		return
	}
	b := c.budget()
	cand := c.issueCand[:0]
	for _, ref := range c.readyQ {
		ei := int(ref.idx)
		if c.w.seq[ei] == ref.seq && c.w.state[ei] == sWaiting && c.w.flags[ei]&fInReadyQ != 0 {
			cand = append(cand, ref)
		}
	}
	c.readyQ = c.readyQ[:0]
	sortWindowOrder(cand)
	for _, ref := range cand {
		ri := int(ref.idx)
		if c.w.seq[ri] != ref.seq || c.w.state[ri] != sWaiting {
			continue // squashed by a flush earlier in this pass
		}
		class := classOf(c.w.inst[ri].Op)
		switch class {
		case classStore:
			// Store-address issue needs only the address source.
			if _, ok := c.srcReady(ri, 0, c.now); !ok {
				c.parkIssue(ri, true)
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			c.w.flags[ri] &^= fInReadyQ
			c.issueStore(ri)
		case classLoad:
			if !c.ready(ri, c.now) {
				c.parkIssue(ri, false)
				continue
			}
			if !c.loadMayIssue(ri) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			c.w.flags[ri] &^= fInReadyQ
			c.issueLoad(ri)
		default:
			if !c.ready(ri, c.now) {
				c.parkIssue(ri, false)
				continue
			}
			if !b.take(class) {
				c.readyQ = append(c.readyQ, ref) // stay armed
				continue
			}
			c.w.flags[ri] &^= fInReadyQ | fInIQ
			c.w.cold[ri].issueAt = c.now
			c.w.state[ri] = sIssued
			c.w.doneAt[ri] = c.now + c.cfg.latencyFor(class)
			c.iqCount--
			if c.trc != nil {
				c.trc.PipeEvent(EvIssue, c.now, &c.w.inst[ri], 0)
			}
			c.scheduleDone(ri)
		}
	}
	c.issueCand = cand[:0]
}

// loadMayIssue applies the store-sets gate: a load predicted dependent on a
// specific store waits until that store has produced its data.
func (c *Core) loadMayIssue(ri int) bool {
	cold := &c.w.cold[ri]
	if cold.ssWaitIdx < 0 {
		return true
	}
	si := int(cold.ssWaitIdx)
	if c.w.seq[si] != cold.ssWaitSeq {
		cold.ssWaitIdx = -1 // the store left the window
		return true
	}
	if c.w.state[si] == sDone ||
		(c.w.state[si] == sIssued && c.w.doneAt[si] != 0 && c.w.doneAt[si] <= c.now) {
		cold.ssWaitIdx = -1
		return true
	}
	return false
}

func (c *Core) issueStore(ri int) {
	c.activity = true
	cold := &c.w.cold[ri]
	cold.issueAt = c.now
	c.w.state[ri] = sIssued
	cold.addrKnownAt = c.now + 1
	c.w.doneAt[ri] = 0 // pending data; stageWriteback resolves
	c.w.flags[ri] &^= fInIQ
	c.iqCount--
	if c.trc != nil {
		c.trc.PipeEvent(EvIssue, c.now, &c.w.inst[ri], 0)
	}
	// If data is already available the store completes next cycle.
	if avail, ok := c.srcReady(ri, 1, c.now); ok {
		dr := cold.addrKnownAt
		if avail > dr {
			dr = avail
		}
		c.w.doneAt[ri] = dr
	}
	if c.w.doneAt[ri] != 0 {
		c.scheduleDone(ri)
	} else {
		c.pendStores = append(c.pendStores, schedRef{idx: int32(ri), seq: c.w.seq[ri]})
	}
	c.scanViolations(ri)
}

// scanViolations runs when a store's address resolves: any younger load
// that already obtained data without seeing this store is a memory-order
// violation (machine clear + store-sets training). Younger deferred loads
// re-link to this store if it is a better (younger) match.
func (c *Core) scanViolations(ri int) {
	stSeq := c.w.seq[ri]
	stAddr := c.w.inst[ri].Addr
	var flush flushReq
	// Walk only the in-window loads younger than the store, oldest first —
	// the same visit order the full window scan produced.
	for j := c.ldWin.searchSeq(stSeq + 1); j < c.ldWin.len(); j++ {
		li := int(c.ldWin.at(j).idx)
		if c.w.inst[li].Addr != stAddr {
			continue
		}
		switch c.w.state[li] {
		case sIssued, sDone:
			if c.w.cold[li].fwdFromSeq < stSeq {
				c.ss.Violation(c.w.inst[li].PC, c.w.inst[ri].PC)
				c.Stats.MemOrderFlushes++
				flush.request(c.distFromHead(li), true, c.cfg.MemFlushPenalty)
			}
		case sWaitStore:
			if lc := &c.w.cold[li]; lc.waitSeq < stSeq {
				lc.waitIdx = int32(ri)
				lc.waitSeq = stSeq
			}
		}
	}
	if flush.active {
		c.applyFlush(flush)
	}
}

func (c *Core) issueLoad(ri int) {
	c.activity = true
	cold := &c.w.cold[ri]
	cold.issueAt = c.now
	c.w.flags[ri] &^= fInIQ
	c.iqCount--
	ld := &c.w.inst[ri]
	if c.trc != nil {
		c.trc.PipeEvent(EvIssue, c.now, ld, 0)
	}

	// Search older stores youngest-first for a same-address match with a
	// resolved address; speculate past unresolved addresses (aggressive
	// disambiguation — the store-sets gate already ran). The store ring
	// holds exactly the in-window stores in program order, so the walk
	// touches only stores instead of every older window entry.
	for j := c.stWin.searchSeq(ld.Seq) - 1; j >= 0; j-- {
		si := int(c.stWin.at(j).idx)
		stCold := &c.w.cold[si]
		if c.w.state[si] == sWaiting || stCold.addrKnownAt == 0 || stCold.addrKnownAt > c.now {
			if c.cfg.ConservativeMemDisambiguation {
				// Conservative policy: an unresolved older store
				// blocks the load entirely.
				c.w.state[ri] = sWaitStore
				cold.waitIdx = int32(si)
				cold.waitSeq = c.w.seq[si]
				c.waiters = append(c.waiters, schedRef{idx: int32(ri), seq: ld.Seq})
				return
			}
			continue // address unknown: speculate past
		}
		if c.w.inst[si].Addr != ld.Addr {
			continue
		}
		// Conflicting older store found.
		if c.w.state[si] == sDone || (c.w.doneAt[si] != 0 && c.w.doneAt[si] <= c.now) {
			c.w.state[ri] = sIssued
			c.w.doneAt[ri] = c.now + c.cfg.ForwardLat
			cold.fwdFromSeq = c.w.seq[si]
			c.Stats.Forwards++
			c.pred.OnForward(ld.PC, c.w.inst[si].PC)
			c.scheduleDone(ri)
		} else {
			c.w.state[ri] = sWaitStore
			cold.waitIdx = int32(si)
			cold.waitSeq = c.w.seq[si]
			c.waiters = append(c.waiters, schedRef{idx: int32(ri), seq: ld.Seq})
		}
		return
	}
	done, lvl := c.hier.Load(c.now, ld.Addr, ld.PC)
	c.w.state[ri] = sIssued
	c.w.doneAt[ri] = done
	cold.lvl = lvl
	c.w.flags[ri] |= fIssuedToMem
	c.scheduleDone(ri)
}

// ----------------------------------------------------------------- rename

func (c *Core) stageRename() {
	// Per-cycle value-prediction bandwidth: the paper's Value Table
	// predicts up to LoadPorts loads per cycle (§IV-C).
	vpBudget := c.cfg.LoadPorts
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fqHead >= len(c.fetchQ) || c.fetchQ[c.fqHead].readyAt > c.now {
			return
		}
		if c.count >= c.cfg.ROBSize || c.iqCount >= c.cfg.IQSize {
			return
		}
		fe := &c.fetchQ[c.fqHead]
		if fe.d.Op.IsLoad() && c.lqCount >= c.cfg.LQSize {
			return
		}
		if fe.d.Op.IsStore() && c.sqCount >= c.cfg.SQSize {
			return
		}
		c.rename(fe, &vpBudget)
		c.fqHead++
		if c.fqHead == len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fqHead = 0
		}
	}
}

func (c *Core) rename(fe *fetchEnt, vpBudget *int) {
	c.activity = true
	slot := (c.head + c.count) % len(c.w.inst)
	// Drop dependence subscriptions left by the slot's previous occupant
	// (only squashed entries leave any; completion already drains the list).
	c.deps[slot] = c.deps[slot][:0]
	c.w.reinit(slot, &fe.d, fe.histSnap)
	d := &c.w.inst[slot]
	cold := &c.w.cold[slot]

	// Source lookup through the RAT; parent PCs through RAT-PC.
	srcRegs := [2]isa.Reg{d.Src1, d.Src2}
	for s, r := range srcRegs {
		if r == isa.RegZero {
			continue
		}
		rp := c.regProd[r]
		if rp.hasProd && c.w.seq[rp.prodIdx] == rp.prodSeq {
			c.w.src[2*slot+s] = srcDep{prodIdx: rp.prodIdx, prodSeq: rp.prodSeq, hasProd: true}
		}
		if pc := c.regPC[r]; pc != 0 {
			dup := false
			for k := 0; k < int(cold.nparents); k++ {
				if cold.parents[k] == pc {
					dup = true
					break
				}
			}
			if !dup && cold.nparents < 2 {
				cold.parents[cold.nparents] = pc
				cold.nparents++
			}
		}
	}

	// Memory-dependence prediction (store sets).
	switch {
	case d.Op.IsLoad():
		if waitSeq, ok := c.ss.DispatchLoad(d.PC); ok {
			if si, found := c.findStoreBySeq(waitSeq); found {
				cold.ssWaitIdx = si
				cold.ssWaitSeq = waitSeq
			}
		}
		c.lqCount++
		c.ldWin.pushBack(schedRef{idx: int32(slot), seq: d.Seq})
	case d.Op.IsStore():
		c.ss.DispatchStore(d.PC, d.Seq)
		c.sqCount++
		c.stWin.pushBack(schedRef{idx: int32(slot), seq: d.Seq})
	}

	// Value prediction lookup. Every instruction accesses the predictor
	// (stores deposit their identity in MR's Value File); accepting a
	// prediction is limited by the per-cycle budget.
	c.ctx.Hist = fe.histSnap
	c.ctx.Parents = cold.parents
	c.ctx.NumParents = int(cold.nparents)
	p := c.pred.Lookup(d, &c.ctx)
	if p.Valid && *vpBudget > 0 {
		switch {
		case p.StoreLinked:
			if si, found := c.findStoreBySeq(p.StoreSeq); found {
				c.w.flags[slot] |= fPredicted
				cold.predValue = c.w.inst[si].Value
				c.w.pred[slot].link = si
				c.w.pred[slot].linkSeq = c.w.seq[si]
				*vpBudget--
			} else if p.DataReady {
				c.w.flags[slot] |= fPredicted
				cold.predValue = p.Value
				c.w.pred[slot].availAt = c.now
				*vpBudget--
			}
		default:
			c.w.flags[slot] |= fPredicted
			cold.predValue = p.Value
			c.w.pred[slot].availAt = c.now
			*vpBudget--
		}
	}

	// Mispredicting branch: remember its producers for the §VI-A3 signal.
	if fe.mispred {
		c.w.flags[slot] |= fBrMispredict
		c.Stats.BranchMispredicts++
		for k := 0; k < int(cold.nparents); k++ {
			c.brChainInsert(cold.parents[k])
		}
	}

	// RAT update.
	if d.HasDest() {
		c.regProd[d.Dst] = srcDep{prodIdx: int32(slot), prodSeq: d.Seq, hasProd: true}
		c.regPC[d.Dst] = d.PC
	}
	c.count++
	c.iqCount++
	if c.trc != nil {
		c.trc.PipeEvent(EvRename, c.now, d, 0)
		if c.w.flags[slot]&fPredicted != 0 {
			c.trc.PipeEvent(EvPredict, c.now, d, cold.predValue)
		}
	}
	// Newly renamed entries enter the ready queue; the first issue attempt
	// parks them on their producers if the sources are not yet available.
	c.armIssue(slot)
}

// findStoreBySeq locates an in-window store by sequence number (false when
// it already retired, never existed, or names a non-store). The store ring
// is seq-ordered, so a binary search replaces the window walk.
func (c *Core) findStoreBySeq(seq uint64) (int32, bool) {
	if pos := c.stWin.searchSeq(seq); pos < c.stWin.len() {
		if ref := c.stWin.at(pos); ref.seq == seq {
			return ref.idx, true
		}
	}
	return 0, false
}

// ------------------------------------------------------------------ fetch

func (c *Core) stageFetch() {
	if c.now < c.fetchStallUntil || c.redirectActive {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferSize {
			return
		}
		if len(c.fetchQ) == cap(c.fetchQ) && c.fqHead > 0 {
			// Compact the consumed prefix so the buffer's backing
			// array is reused instead of regrown.
			live := copy(c.fetchQ, c.fetchQ[c.fqHead:])
			c.fetchQ = c.fetchQ[:live]
			c.fqHead = 0
		}
		fe, ok := c.nextInst()
		if !ok {
			return
		}
		// Any fetched micro-op is activity — including the I-cache-miss
		// path below, which parks it as the pending holdover.
		c.activity = true
		// Instruction cache: charge a stall when fetch crosses into an
		// uncached line.
		line := fe.d.PC >> 6
		if line != c.lastFetchLine {
			done, _ := c.hier.Fetch(c.now, fe.d.PC)
			c.lastFetchLine = line
			if done > c.now {
				c.fetchStallUntil = done
				c.pending = fe
				return
			}
		}
		if !fe.replayed {
			if fe.d.Op.IsBranch() {
				fe.histSnap = c.bu.Hist.Bits(32)
				out := c.bu.PredictAndTrain(&fe.d)
				fe.mispred = !out.Correct
			} else {
				fe.histSnap = c.bu.Hist.Bits(32)
			}
		}
		fe.readyAt = c.now + c.cfg.FrontEndDepth
		c.fetchQ = append(c.fetchQ, *fe)
		c.Stats.Fetched++
		if c.trc != nil {
			c.trc.PipeEvent(EvFetch, c.now, &c.fetchQ[len(c.fetchQ)-1].d, 0)
		}
		if fe.mispred {
			// Fetch stops behind the mispredicted branch until it
			// resolves.
			c.redirectActive = true
			c.redirectSeq = fe.d.Seq
			return
		}
	}
}

// nextInst obtains the next micro-op in program order: the I-cache-stalled
// holdover, then the flush-replay queue, then the trace source.
func (c *Core) nextInst() (*fetchEnt, bool) {
	if c.pending != nil {
		fe := c.pending
		c.pending = nil
		return fe, true
	}
	if c.rpHead < len(c.replay) {
		c.fetchScratch = c.replay[c.rpHead]
		c.rpHead++
		if c.rpHead == len(c.replay) {
			c.replay = c.replay[:0]
			c.rpHead = 0
		}
		return &c.fetchScratch, true
	}
	if c.srcDone {
		return nil, false
	}
	c.fetchScratch = fetchEnt{}
	if !c.src.Next(&c.fetchScratch.d) {
		c.srcDone = true
		return nil, false
	}
	return &c.fetchScratch, true
}

// ------------------------------------------------------------------ flush

// applyFlush squashes the window from the request point, queues the
// squashed micro-ops (plus everything in the front end) for replay, repairs
// the RAT images and charges the refetch penalty.
func (c *Core) applyFlush(f flushReq) {
	c.activity = true
	start := f.dist
	if !f.inclusive {
		start++
	}
	if start >= c.count {
		// Nothing younger in the window; still clear the front end and
		// charge the penalty.
		start = c.count
	}
	if c.trc != nil {
		var first *isa.DynInst
		if start < c.count {
			first = &c.w.inst[c.idx(start)]
		}
		c.trc.PipeEvent(EvFlush, c.now, first, uint64(c.count-start))
	}

	// Truncate the load/store rings to the surviving window. The boundary
	// seq must be captured before the squash loop invalidates slot seqs.
	if start < c.count {
		bseq := c.w.seq[c.idx(start)]
		for c.ldWin.len() > 0 && c.ldWin.at(c.ldWin.len()-1).seq >= bseq {
			c.ldWin.popBack()
		}
		for c.stWin.len() > 0 && c.stWin.at(c.stWin.len()-1).seq >= bseq {
			c.stWin.popBack()
		}
	}

	squashed := c.squashBuf[:0]
	for j := start; j < c.count; j++ {
		ri := c.idx(j)
		squashed = append(squashed, fetchEnt{
			d:        c.w.inst[ri],
			mispred:  c.w.flags[ri]&fBrMispredict != 0,
			histSnap: c.w.cold[ri].histSnap,
			replayed: true,
		})
		switch op := c.w.inst[ri].Op; {
		case op.IsLoad():
			c.lqCount--
		case op.IsStore():
			c.sqCount--
		}
		if c.w.flags[ri]&fInIQ != 0 {
			c.iqCount--
		}
		// Invalidate the slot so stale prodIdx references miscompare.
		c.w.seq[ri] = ^uint64(0)
		c.w.inst[ri].Seq = ^uint64(0)
		c.w.state[ri] = sDone
	}
	c.count = start

	for i := c.fqHead; i < len(c.fetchQ); i++ {
		fe := c.fetchQ[i]
		fe.replayed = true
		squashed = append(squashed, fe)
	}
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	if c.pending != nil {
		// The I-cache holdover was never predicted or renamed; it goes
		// back as a fresh fetch.
		squashed = append(squashed, *c.pending)
		c.pending = nil
	}
	// Prepend by swapping buffers: the unread replay tail moves behind the
	// squashed micro-ops, and the old replay array becomes the next
	// flush's scratch space.
	squashed = append(squashed, c.replay[c.rpHead:]...)
	c.squashBuf = c.replay[:0]
	c.replay = squashed
	c.rpHead = 0

	// Rebuild speculative RAT/RAT-PC from the retired images plus the
	// surviving window.
	for r := range c.regProd {
		c.regProd[r] = srcDep{}
		c.regPC[r] = c.retRegPC[r]
	}
	for j := 0; j < c.count; j++ {
		ri := c.idx(j)
		d := &c.w.inst[ri]
		if d.HasDest() {
			c.regProd[d.Dst] = srcDep{prodIdx: int32(ri), prodSeq: d.Seq, hasProd: true}
			c.regPC[d.Dst] = d.PC
		}
	}

	// A redirect pending on a squashed branch is re-established when the
	// branch is refetched.
	if c.redirectActive {
		found := false
		for j := 0; j < c.count; j++ {
			if c.w.seq[c.idx(j)] == c.redirectSeq {
				found = true
				break
			}
		}
		if !found {
			c.redirectActive = false
		}
	}

	c.ss.Flush()
	c.pred.OnFlush()
	c.lastFetchLine = ^uint64(0)
	if resume := c.now + f.penalty; resume > c.fetchStallUntil {
		c.fetchStallUntil = resume
	}
}
