package ooo

import "fvp/internal/isa"

// ------------------------------------------------------------------ issue

// portBudget is the per-cycle issue bandwidth per class.
type portBudget struct {
	alu, load, store, fp, br int
}

func (c *Core) budget() portBudget {
	return portBudget{
		alu:   c.cfg.ALUPorts,
		load:  c.cfg.LoadPorts,
		store: c.cfg.StorePorts,
		fp:    c.cfg.FPPorts,
		br:    c.cfg.BranchPorts,
	}
}

func (b *portBudget) take(class int) bool {
	var p *int
	switch class {
	case classLoad:
		p = &b.load
	case classStore:
		p = &b.store
	case classFP, classFPDiv:
		p = &b.fp
	case classBranch:
		p = &b.br
	case classNop:
		return true
	default:
		p = &b.alu
	}
	if *p <= 0 {
		return false
	}
	*p--
	return true
}

func (c *Core) stageIssue() {
	b := c.budget()
	for i := 0; i < c.count; i++ {
		ri := c.idx(i)
		e := &c.rob[ri]
		if e.state != sWaiting {
			continue
		}
		class := classOf(e.d.Op)
		switch class {
		case classStore:
			// Store-address issue needs only the address source.
			if _, ok := c.srcReady(e, 0, c.now); !ok {
				continue
			}
			if !b.take(class) {
				continue
			}
			c.issueStore(ri, e)
		case classLoad:
			if !c.ready(e, c.now) {
				continue
			}
			if !c.loadMayIssue(e) {
				continue
			}
			if !b.take(class) {
				continue
			}
			c.issueLoad(ri, e)
		default:
			if !c.ready(e, c.now) {
				continue
			}
			if !b.take(class) {
				continue
			}
			e.issueAt = c.now
			e.state = sIssued
			e.doneAt = c.now + c.cfg.latencyFor(class)
			e.inIQ = false
			c.iqCount--
		}
	}
}

// loadMayIssue applies the store-sets gate: a load predicted dependent on a
// specific store waits until that store has produced its data.
func (c *Core) loadMayIssue(e *rent) bool {
	if e.ssWaitIdx < 0 {
		return true
	}
	st := &c.rob[e.ssWaitIdx]
	if st.d.Seq != e.ssWaitSeq {
		e.ssWaitIdx = -1 // the store left the window
		return true
	}
	if st.state == sDone || (st.state == sIssued && st.doneAt != 0 && st.doneAt <= c.now) {
		e.ssWaitIdx = -1
		return true
	}
	return false
}

func (c *Core) issueStore(ri int, e *rent) {
	e.issueAt = c.now
	e.state = sIssued
	e.addrKnownAt = c.now + 1
	e.doneAt = 0 // pending data; stageWriteback resolves
	e.inIQ = false
	c.iqCount--
	// If data is already available the store completes next cycle.
	if avail, ok := c.srcReady(e, 1, c.now); ok {
		dr := e.addrKnownAt
		if avail > dr {
			dr = avail
		}
		e.doneAt = dr
	}
	c.scanViolations(ri, e)
}

// scanViolations runs when a store's address resolves: any younger load
// that already obtained data without seeing this store is a memory-order
// violation (machine clear + store-sets training). Younger deferred loads
// re-link to this store if it is a better (younger) match.
func (c *Core) scanViolations(ri int, st *rent) {
	dist := c.distFromHead(ri)
	var flush flushReq
	for j := dist + 1; j < c.count; j++ {
		li := c.idx(j)
		le := &c.rob[li]
		if !le.d.Op.IsLoad() || le.d.Addr != st.d.Addr {
			continue
		}
		switch le.state {
		case sIssued, sDone:
			if le.fwdFromSeq < st.d.Seq {
				c.ss.Violation(le.d.PC, st.d.PC)
				c.Stats.MemOrderFlushes++
				flush.request(j, true, c.cfg.MemFlushPenalty)
			}
		case sWaitStore:
			if le.waitStoreSeq < st.d.Seq {
				le.waitStore = ri
				le.waitStoreSeq = st.d.Seq
			}
		}
	}
	if flush.active {
		c.applyFlush(flush)
	}
}

func (c *Core) issueLoad(ri int, e *rent) {
	e.issueAt = c.now
	e.inIQ = false
	c.iqCount--

	// Search older stores youngest-first for a same-address match with a
	// resolved address; speculate past unresolved addresses (aggressive
	// disambiguation — the store-sets gate already ran).
	dist := c.distFromHead(ri)
	for j := dist - 1; j >= 0; j-- {
		si := c.idx(j)
		st := &c.rob[si]
		if !st.d.Op.IsStore() {
			continue
		}
		if st.state == sWaiting || st.addrKnownAt == 0 || st.addrKnownAt > c.now {
			if c.cfg.ConservativeMemDisambiguation {
				// Conservative policy: an unresolved older store
				// blocks the load entirely.
				e.state = sWaitStore
				e.waitStore = si
				e.waitStoreSeq = st.d.Seq
				return
			}
			continue // address unknown: speculate past
		}
		if st.d.Addr != e.d.Addr {
			continue
		}
		// Conflicting older store found.
		if st.state == sDone || (st.doneAt != 0 && st.doneAt <= c.now) {
			e.state = sIssued
			e.doneAt = c.now + c.cfg.ForwardLat
			e.fwdFromSeq = st.d.Seq
			c.Stats.Forwards++
			c.pred.OnForward(e.d.PC, st.d.PC)
		} else {
			e.state = sWaitStore
			e.waitStore = si
			e.waitStoreSeq = st.d.Seq
		}
		return
	}
	done, lvl := c.hier.Load(c.now, e.d.Addr, e.d.PC)
	e.state = sIssued
	e.doneAt = done
	e.lvl = lvl
	e.issuedToMem = true
}

// ----------------------------------------------------------------- rename

func (c *Core) stageRename() {
	// Per-cycle value-prediction bandwidth: the paper's Value Table
	// predicts up to LoadPorts loads per cycle (§IV-C).
	vpBudget := c.cfg.LoadPorts
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if len(c.fetchQ) == 0 || c.fetchQ[0].readyAt > c.now {
			return
		}
		if c.count >= c.cfg.ROBSize || c.iqCount >= c.cfg.IQSize {
			return
		}
		fe := &c.fetchQ[0]
		if fe.d.Op.IsLoad() && c.lqCount >= c.cfg.LQSize {
			return
		}
		if fe.d.Op.IsStore() && c.sqCount >= c.cfg.SQSize {
			return
		}
		c.rename(fe, &vpBudget)
		c.fetchQ = c.fetchQ[1:]
	}
}

func (c *Core) rename(fe *fetchEnt, vpBudget *int) {
	slot := (c.head + c.count) % len(c.rob)
	e := &c.rob[slot]
	*e = rent{
		d:         fe.d,
		state:     sWaiting,
		inIQ:      true,
		linkStore: -1,
		waitStore: -1,
		ssWaitIdx: -1,
		critProd:  -1,
		histSnap:  fe.histSnap,
	}
	d := &e.d

	// Source lookup through the RAT; parent PCs through RAT-PC.
	srcRegs := [2]isa.Reg{d.Src1, d.Src2}
	for s, r := range srcRegs {
		if r == isa.RegZero {
			continue
		}
		rp := c.regProd[r]
		if rp.hasProd && c.rob[rp.prodIdx].d.Seq == rp.prodSeq {
			e.src[s] = srcDep{prodIdx: rp.prodIdx, prodSeq: rp.prodSeq, hasProd: true}
		}
		if pc := c.regPC[r]; pc != 0 {
			dup := false
			for k := 0; k < e.nparents; k++ {
				if e.parents[k] == pc {
					dup = true
					break
				}
			}
			if !dup && e.nparents < 2 {
				e.parents[e.nparents] = pc
				e.nparents++
			}
		}
	}

	// Memory-dependence prediction (store sets).
	switch {
	case d.Op.IsLoad():
		if waitSeq, ok := c.ss.DispatchLoad(d.PC); ok {
			if si, found := c.findStoreBySeq(waitSeq); found {
				e.ssWaitIdx = si
				e.ssWaitSeq = waitSeq
			}
		}
		c.lqCount++
	case d.Op.IsStore():
		c.ss.DispatchStore(d.PC, d.Seq)
		c.sqCount++
	}

	// Value prediction lookup. Every instruction accesses the predictor
	// (stores deposit their identity in MR's Value File); accepting a
	// prediction is limited by the per-cycle budget.
	c.ctx.Hist = fe.histSnap
	c.ctx.Parents = e.parents
	c.ctx.NumParents = e.nparents
	p := c.pred.Lookup(d, &c.ctx)
	if p.Valid && *vpBudget > 0 {
		switch {
		case p.StoreLinked:
			if si, found := c.findStoreBySeq(p.StoreSeq); found {
				st := &c.rob[si]
				e.predicted = true
				e.predValue = st.d.Value
				e.linkStore = si
				e.fwdPredSeq = st.d.Seq
				*vpBudget--
			} else if p.DataReady {
				e.predicted = true
				e.predValue = p.Value
				e.predAvailAt = c.now
				*vpBudget--
			}
		default:
			e.predicted = true
			e.predValue = p.Value
			e.predAvailAt = c.now
			*vpBudget--
		}
	}

	// Mispredicting branch: remember its producers for the §VI-A3 signal.
	if fe.mispred {
		e.brMispredict = true
		c.Stats.BranchMispredicts++
		for k := 0; k < e.nparents; k++ {
			c.brChainInsert(e.parents[k])
		}
	}

	// RAT update.
	if e.d.HasDest() {
		c.regProd[d.Dst] = srcDep{prodIdx: slot, prodSeq: d.Seq, hasProd: true}
		c.regPC[d.Dst] = d.PC
	}
	c.count++
	c.iqCount++
}

// findStoreBySeq locates an in-window store by sequence number (nil when it
// already retired or never existed).
func (c *Core) findStoreBySeq(seq uint64) (int, bool) {
	for j := c.count - 1; j >= 0; j-- {
		ri := c.idx(j)
		e := &c.rob[ri]
		if e.d.Seq == seq {
			if e.d.Op.IsStore() {
				return ri, true
			}
			return 0, false
		}
		if e.d.Seq < seq {
			return 0, false
		}
	}
	return 0, false
}

// ------------------------------------------------------------------ fetch

func (c *Core) stageFetch() {
	if c.now < c.fetchStallUntil || c.redirectActive {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(c.fetchQ) >= c.cfg.FetchBufferSize {
			return
		}
		fe, ok := c.nextInst()
		if !ok {
			return
		}
		// Instruction cache: charge a stall when fetch crosses into an
		// uncached line.
		line := fe.d.PC >> 6
		if line != c.lastFetchLine {
			done, _ := c.hier.Fetch(c.now, fe.d.PC)
			c.lastFetchLine = line
			if done > c.now {
				c.fetchStallUntil = done
				c.pending = fe
				return
			}
		}
		if !fe.replayed {
			if fe.d.Op.IsBranch() {
				fe.histSnap = c.bu.Hist.Bits(32)
				out := c.bu.PredictAndTrain(&fe.d)
				fe.mispred = !out.Correct
			} else {
				fe.histSnap = c.bu.Hist.Bits(32)
			}
		}
		fe.readyAt = c.now + c.cfg.FrontEndDepth
		c.fetchQ = append(c.fetchQ, *fe)
		c.Stats.Fetched++
		if fe.mispred {
			// Fetch stops behind the mispredicted branch until it
			// resolves.
			c.redirectActive = true
			c.redirectSeq = fe.d.Seq
			return
		}
	}
}

// nextInst obtains the next micro-op in program order: the I-cache-stalled
// holdover, then the flush-replay queue, then the trace source.
func (c *Core) nextInst() (*fetchEnt, bool) {
	if c.pending != nil {
		fe := c.pending
		c.pending = nil
		return fe, true
	}
	if len(c.replay) > 0 {
		fe := c.replay[0]
		c.replay = c.replay[1:]
		return &fe, true
	}
	if c.srcDone {
		return nil, false
	}
	var fe fetchEnt
	if !c.src.Next(&fe.d) {
		c.srcDone = true
		return nil, false
	}
	return &fe, true
}

// ------------------------------------------------------------------ flush

// applyFlush squashes the window from the request point, queues the
// squashed micro-ops (plus everything in the front end) for replay, repairs
// the RAT images and charges the refetch penalty.
func (c *Core) applyFlush(f flushReq) {
	start := f.dist
	if !f.inclusive {
		start++
	}
	if start >= c.count {
		// Nothing younger in the window; still clear the front end and
		// charge the penalty.
		start = c.count
	}

	squashed := make([]fetchEnt, 0, c.count-start+len(c.fetchQ)+1)
	for j := start; j < c.count; j++ {
		e := &c.rob[c.idx(j)]
		squashed = append(squashed, fetchEnt{
			d:        e.d,
			mispred:  e.brMispredict,
			histSnap: e.histSnap,
			replayed: true,
		})
		switch {
		case e.d.Op.IsLoad():
			c.lqCount--
		case e.d.Op.IsStore():
			c.sqCount--
		}
		if e.inIQ {
			c.iqCount--
		}
		// Invalidate the slot so stale prodIdx references miscompare.
		e.d.Seq = ^uint64(0)
		e.state = sDone
	}
	c.count = start

	for i := range c.fetchQ {
		fe := c.fetchQ[i]
		fe.replayed = true
		squashed = append(squashed, fe)
	}
	c.fetchQ = c.fetchQ[:0]
	if c.pending != nil {
		// The I-cache holdover was never predicted or renamed; it goes
		// back as a fresh fetch.
		squashed = append(squashed, *c.pending)
		c.pending = nil
	}
	c.replay = append(squashed, c.replay...)

	// Rebuild speculative RAT/RAT-PC from the retired images plus the
	// surviving window.
	for r := range c.regProd {
		c.regProd[r] = srcDep{}
		c.regPC[r] = c.retRegPC[r]
	}
	for j := 0; j < c.count; j++ {
		ri := c.idx(j)
		e := &c.rob[ri]
		if e.d.HasDest() {
			c.regProd[e.d.Dst] = srcDep{prodIdx: ri, prodSeq: e.d.Seq, hasProd: true}
			c.regPC[e.d.Dst] = e.d.PC
		}
	}

	// A redirect pending on a squashed branch is re-established when the
	// branch is refetched.
	if c.redirectActive {
		found := false
		for j := 0; j < c.count; j++ {
			if c.rob[c.idx(j)].d.Seq == c.redirectSeq {
				found = true
				break
			}
		}
		if !found {
			c.redirectActive = false
		}
	}

	c.ss.Flush()
	c.pred.OnFlush()
	c.lastFetchLine = ^uint64(0)
	if resume := c.now + f.penalty; resume > c.fetchStallUntil {
		c.fetchStallUntil = resume
	}
}
